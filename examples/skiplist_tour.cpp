// A guided tour of the §3 case study: how the SpecTM skip list splits work between
// short and ordinary transactions, across the meta-data layouts of Figure 3.
//
// Prints the tower-level distribution (which determines the short/full split: with
// p = 1/2 levels, 75% of towers have level <= 2 and take the short paths), then
// race-tests each layout variant and reports per-variant throughput and STM abort
// rates side by side.
//
// Run: ./build/examples/skiplist_tour [threads]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/structures/skip_tm_short.h"
#include "src/tm/txdesc.h"
#include "src/tm/variants.h"

namespace {

using namespace spectm;

void PrintLevelDistribution() {
  Xorshift128Plus rng(2024);
  constexpr int kSamples = 1 << 20;
  int counts[33] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.NextSkipListLevel(32)];
  }
  std::printf("tower level distribution (p = 1/2):\n");
  double short_path = 0;
  for (int lvl = 1; lvl <= 6; ++lvl) {
    const double pct = 100.0 * counts[lvl] / kSamples;
    std::printf("  level %d: %5.1f%%  %s\n", lvl, pct,
                lvl <= 2 ? "-> short transaction (2-4 locations)"
                         : "-> ordinary transaction fall-back");
    if (lvl <= 2) {
      short_path += pct;
    }
  }
  std::printf("  => %.0f%% of inserts/removes run entirely as short transactions "
              "(paper: ~75%%)\n\n",
              short_path);
}

template <typename Family>
void RunVariant(const char* name, int threads, double seconds) {
  SpecSkipList<Family> list;
  constexpr std::uint64_t kKeyRange = 1 << 16;
  for (std::uint64_t k = 0; k < kKeyRange; k += 2) {
    list.Insert(k);
  }

  const TxStatsRegistry::Totals before = TxStatsRegistry::Snapshot();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xorshift128Plus rng(static_cast<std::uint64_t>(t) * 53 + 11);
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t key = rng.NextBounded(kKeyRange);
        const std::uint32_t p = rng.NextPercent();
        if (p < 80) {
          list.Contains(key);
        } else if (p < 90) {
          list.Insert(key);
        } else {
          list.Remove(key);
        }
        ++local;
      }
      ops += local;
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) {
    w.join();
  }
  const TxStatsRegistry::Totals after = TxStatsRegistry::Snapshot();
  const std::uint64_t commits = after.commits - before.commits;
  const std::uint64_t aborts = after.aborts - before.aborts;
  std::printf("  %-14s %7.2f Mops/s   %9llu commits  %7llu aborts (%.3f%%)\n", name,
              static_cast<double>(ops.load()) / seconds / 1e6,
              static_cast<unsigned long long>(commits),
              static_cast<unsigned long long>(aborts),
              100.0 * static_cast<double>(aborts) /
                  static_cast<double>(commits + aborts ? commits + aborts : 1));
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;

  std::printf("SpecTM skip list tour (Section 3 case study)\n\n");
  PrintLevelDistribution();

  std::printf("80/10/10 lookup/insert/remove, %d threads, 1.5s per variant:\n", threads);
  RunVariant<Val>("val-short", threads, 1.5);
  RunVariant<TvarG>("tvar-short-g", threads, 1.5);
  RunVariant<TvarL>("tvar-short-l", threads, 1.5);
  RunVariant<OrecG>("orec-short-g", threads, 1.5);
  RunVariant<OrecL>("orec-short-l", threads, 1.5);

  std::printf("\nNote how the layouts only change meta-data placement (Figure 3); the\n"
              "data-structure code is IDENTICAL for all five variants — that is the\n"
              "point of SpecTM's family-templated design.\n");
  return 0;
}
