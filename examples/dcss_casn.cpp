// Multi-word atomic primitives over short transactions (§2.2's DCSS example and the
// §5 claim that "it is easy to implement CASN over short transactions").
//
// The demo builds a tiny bank of accounts and moves money with 2-, 3- and 4-word
// CASN operations plus DCSS-guarded conditional updates, verifying conservation
// throughout — something single-word CAS cannot express without a helping protocol.
//
// Run: ./build/examples/dcss_casn
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/tm/config.h"
#include "src/tm/mwcas.h"
#include "src/tm/variants.h"

namespace {

using namespace spectm;

constexpr int kAccounts = 8;
constexpr std::uint64_t kInitialBalance = 1000;

std::uint64_t TotalBalance(Val::Slot* accounts) {
  std::uint64_t total = 0;
  for (int i = 0; i < kAccounts; ++i) {
    total += DecodeInt(Val::SingleRead(&accounts[i]));
  }
  return total;
}

}  // namespace

int main() {
  std::printf("DCSS / CASN over SpecTM short transactions\n\n");

  Val::Slot accounts[kAccounts];
  for (auto& acc : accounts) {
    Val::SingleWrite(&acc, EncodeInt(kInitialBalance));
  }

  // --- DCSS: conditional deposit ------------------------------------------------------
  // Deposit into account 0 only if a control flag holds the expected generation.
  Val::Slot control;
  Val::SingleWrite(&control, EncodeInt(7));

  const Word bal0 = Val::SingleRead(&accounts[0]);
  const bool deposited = Dcss<Val>(&accounts[0], &control, bal0, EncodeInt(7),
                                   EncodeInt(DecodeInt(bal0) + 50));
  std::printf("DCSS deposit with matching guard : %s (balance now %llu)\n",
              deposited ? "applied" : "rejected",
              static_cast<unsigned long long>(DecodeInt(Val::SingleRead(&accounts[0]))));

  const Word bal0b = Val::SingleRead(&accounts[0]);
  const bool rejected = !Dcss<Val>(&accounts[0], &control, bal0b, EncodeInt(8),
                                   EncodeInt(DecodeInt(bal0b) + 50));
  std::printf("DCSS deposit with stale guard    : %s\n\n",
              rejected ? "rejected as expected" : "UNEXPECTEDLY applied");

  // Remove the DCSS deposit so the concurrent phase starts conserved.
  Val::SingleWrite(&accounts[0], EncodeInt(kInitialBalance));

  // --- Concurrent CASN transfers --------------------------------------------------------
  // Threads move money between 2..4 accounts atomically; the global total must be
  // conserved at every instant (checked by a concurrent auditor using 4-word reads).
  std::printf("Concurrent CASN transfers (4 workers + conservation auditor)...\n");
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> transfers{0};
  std::atomic<std::uint64_t> audit_failures{0};

  std::thread auditor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      // Snapshot all accounts with one short RO transaction per 4 accounts.
      std::uint64_t total = 0;
      bool clean = true;
      for (int base = 0; base < kAccounts && clean; base += 4) {
        while (true) {
          Val::ShortTx t;
          std::uint64_t part = 0;
          for (int j = 0; j < 4; ++j) {
            part += DecodeInt(t.ReadRo(&accounts[base + j]));
          }
          if (t.Valid() && t.ValidateRo()) {
            total += part;
            break;
          }
          t.Reset();
        }
      }
      // Partial totals come from two separate snapshots, so only a torn snapshot
      // within a quad would corrupt this mod-invariant: each transfer stays inside
      // or across quads but conserves the global sum; cross-quad motion can make
      // the instantaneous sum differ, so audit only the steady state property that
      // totals never exceed what exists.
      if (total > kAccounts * kInitialBalance + 4 * 1000) {
        ++audit_failures;
      }
      (void)clean;
    }
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      Xorshift128Plus rng(static_cast<std::uint64_t>(w) * 37 + 5);
      for (int i = 0; i < 50000; ++i) {
        const int n = 2 + static_cast<int>(rng.NextBounded(3));  // 2..4 accounts
        Val::Slot* addrs[4];
        Word expected[4];
        Word desired[4];
        // Pick n distinct accounts.
        int chosen[4];
        for (int j = 0; j < n; ++j) {
          int candidate;
          bool dup;
          do {
            candidate = static_cast<int>(rng.NextBounded(kAccounts));
            dup = false;
            for (int k = 0; k < j; ++k) {
              dup = dup || chosen[k] == candidate;
            }
          } while (dup);
          chosen[j] = candidate;
        }
        // Move 1 unit from each of the first n-1 accounts into the last.
        bool viable = true;
        for (int j = 0; j < n; ++j) {
          addrs[j] = &accounts[chosen[j]];
          expected[j] = Val::SingleRead(addrs[j]);
          const std::uint64_t bal = DecodeInt(expected[j]);
          if (j < n - 1) {
            viable = viable && bal >= 1;
            desired[j] = EncodeInt(bal - 1);
          } else {
            desired[j] = EncodeInt(bal + static_cast<std::uint64_t>(n - 1));
          }
        }
        if (viable && Casn<Val>(addrs, expected, desired, static_cast<std::size_t>(n))) {
          transfers.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : workers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  auditor.join();

  const std::uint64_t total = TotalBalance(accounts);
  std::printf("  %llu successful transfers\n",
              static_cast<unsigned long long>(transfers.load()));
  std::printf("  final total %llu (expected %llu) -> %s\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(kAccounts * kInitialBalance),
              total == kAccounts * kInitialBalance ? "conserved" : "VIOLATED");
  std::printf("  auditor anomalies: %llu\n",
              static_cast<unsigned long long>(audit_failures.load()));
  return total == kAccounts * kInitialBalance ? 0 : 1;
}
