// Quickstart: the paper's running example (§2) end-to-end.
//
// Builds the bounded double-ended queue twice — once over the traditional
// transactional API (§2.1) and once over SpecTM short transactions (§2.2) — runs
// producers and consumers against both, and times the difference. Also shows the
// paper-faithful C-style facade (Figure 2) executing the §2.2 PopLeft verbatim.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/structures/dequeue.h"
#include "src/tm/compat.h"
#include "src/tm/config.h"
#include "src/tm/variants.h"

namespace {

using namespace spectm;

// The paper's §2.2 PopLeft, via the Figure 2 facade, on a raw slot array.
Word PaperPopLeft(Val::Slot* left_idx, Val::Slot* items, std::size_t n) {
  compat::TX_RECORD<Val> t;
restart:
  t.Restart();
  const std::uint64_t li = DecodeInt(compat::ToWord(compat::Tx_RW_R1(&t, left_idx)));
  const Word result = compat::ToWord(compat::Tx_RW_R2(&t, &items[li % n]));
  if (!compat::Tx_RW_2_Is_Valid(&t)) {
    goto restart;
  }
  if (result != 0) {
    compat::Tx_RW_2_Commit(&t, compat::ToPtr(EncodeInt((li + 1) % n)),
                           compat::ToPtr(Word{0}));
  } else {
    compat::Tx_RW_2_Abort(&t);
  }
  return result;
}

template <typename Queue>
double RunProducersConsumers(const char* label) {
  Queue q(4096);
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr std::uint64_t kItemsPerProducer = 200000;

  std::atomic<std::uint64_t> consumed{0};
  std::atomic<std::uint64_t> checksum{0};
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (std::uint64_t i = 1; i <= kItemsPerProducer; ++i) {
        while (!q.PushRight(EncodeInt(i))) {
          // queue momentarily full; spin
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (consumed.load(std::memory_order_acquire) <
             kProducers * kItemsPerProducer) {
        const Word w = q.PopLeft();
        if (w != 0) {
          checksum.fetch_add(DecodeInt(w), std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_acq_rel);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  const std::uint64_t expected =
      kProducers * (kItemsPerProducer * (kItemsPerProducer + 1) / 2);
  std::printf("  %-28s %8.0f kops/s   checksum %s\n", label,
              static_cast<double>(consumed.load()) / secs / 1e3,
              checksum.load() == expected ? "OK" : "MISMATCH");
  return secs;
}

}  // namespace

int main() {
  std::printf("SpecTM quickstart: the paper's double-ended queue (Section 2)\n\n");

  std::printf("Producer/consumer over the two APIs:\n");
  RunProducersConsumers<TmDequeue<Val>>("traditional STM (2.1)");
  RunProducersConsumers<SpecDequeue<Val>>("SpecTM short tx (2.2)");

  std::printf("\nPaper-faithful Figure 2 facade (PopLeft transcription):\n");
  constexpr std::size_t kSlots = 8;
  Val::Slot left_idx;
  Val::Slot items[kSlots];
  Val::RawWrite(&left_idx, EncodeInt(0));
  for (std::size_t i = 0; i < 3; ++i) {
    Val::RawWrite(&items[i], EncodeInt(100 + i));
  }
  for (int i = 0; i < 4; ++i) {
    const Word w = PaperPopLeft(&left_idx, items, kSlots);
    if (w != 0) {
      std::printf("  PopLeft -> %llu\n",
                  static_cast<unsigned long long>(DecodeInt(w)));
    } else {
      std::printf("  PopLeft -> empty\n");
    }
  }
  return 0;
}
