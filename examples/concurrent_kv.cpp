// A miniature in-memory key-value store index — the workload class the paper
// motivates ("the central role of these data structures in key-value stores and
// in-memory database indices", §1).
//
// Demonstrates the intended SpecTM deployment: the index's fast paths run over
// val-short structures, a mixed read-mostly workload hammers it from several
// threads, and the example reports throughput plus the STM's own commit/abort
// accounting.
//
// Run: ./build/examples/concurrent_kv [threads] [seconds]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/structures/hash_tm_short.h"
#include "src/structures/skip_tm_short.h"
#include "src/tm/txdesc.h"
#include "src/tm/variants.h"

namespace {

using namespace spectm;

// Two indices over the same logical keyspace, as a real store would keep: a hash
// index for point lookups and a skip-list index for ordered scans.
struct MiniStore {
  SpecHashSet<Val> point_index{1 << 14};
  SpecSkipList<Val> ordered_index;

  bool Put(std::uint64_t key) {
    const bool fresh = point_index.Insert(key);
    if (fresh) {
      ordered_index.Insert(key);
    }
    return fresh;
  }

  bool Erase(std::uint64_t key) {
    const bool existed = point_index.Remove(key);
    if (existed) {
      ordered_index.Remove(key);
    }
    return existed;
  }

  bool Get(std::uint64_t key) { return point_index.Contains(key); }
};

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 2.0;

  MiniStore store;
  constexpr std::uint64_t kKeyRange = 1 << 16;
  for (std::uint64_t k = 0; k < kKeyRange; k += 2) {
    store.Put(k);
  }

  std::printf("mini KV store: %d threads, %.1fs, %llu-key space, 90/5/5 get/put/erase\n",
              threads, seconds, static_cast<unsigned long long>(kKeyRange));

  const TxStatsRegistry::Totals before = TxStatsRegistry::Snapshot();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> gets{0}, puts{0}, erases{0}, hits{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xorshift128Plus rng(static_cast<std::uint64_t>(t) * 101 + 17);
      std::uint64_t local_gets = 0, local_puts = 0, local_erases = 0, local_hits = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t key = rng.NextBounded(kKeyRange);
        const std::uint32_t p = rng.NextPercent();
        if (p < 90) {
          local_hits += store.Get(key) ? 1 : 0;
          ++local_gets;
        } else if (p < 95) {
          store.Put(key);
          ++local_puts;
        } else {
          store.Erase(key);
          ++local_erases;
        }
      }
      gets += local_gets;
      puts += local_puts;
      erases += local_erases;
      hits += local_hits;
    });
  }
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) {
    w.join();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  const TxStatsRegistry::Totals after = TxStatsRegistry::Snapshot();

  const double total_ops =
      static_cast<double>(gets.load() + puts.load() + erases.load());
  const std::uint64_t commits = after.commits - before.commits;
  const std::uint64_t aborts = after.aborts - before.aborts;
  std::printf("  throughput : %.2f Mops/s\n", total_ops / elapsed / 1e6);
  std::printf("  ops        : %llu gets (%.1f%% hit), %llu puts, %llu erases\n",
              static_cast<unsigned long long>(gets.load()),
              100.0 * static_cast<double>(hits.load()) /
                  static_cast<double>(gets.load() ? gets.load() : 1),
              static_cast<unsigned long long>(puts.load()),
              static_cast<unsigned long long>(erases.load()));
  std::printf("  STM        : %llu commits, %llu aborts (%.3f%% abort rate)\n",
              static_cast<unsigned long long>(commits),
              static_cast<unsigned long long>(aborts),
              100.0 * static_cast<double>(aborts) /
                  static_cast<double>(commits + aborts ? commits + aborts : 1));
  return 0;
}
