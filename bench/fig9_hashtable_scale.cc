// Figure 9: "Hash table, 64k values, 16k buckets, 128-way" — (a) 98%, (b) 90%,
// (c) 10% lookups.
//
// Expected shape (§4.4.2): val-short matches lock-free and beats BaseTM by 60–70% at
// 98%; at 10% lookups contention makes orec-short-l's encounter-time locking lose
// its edge over orec-full-l's commit-time locking (locks acquired by transactions
// that later abort) — the ETL/CTL effect isolated further in abl_etl_vs_ctl.
#include <memory>

#include "bench/set_bench.h"
#include "src/structures/hash_lockfree.h"
#include "src/structures/hash_tm_full.h"
#include "src/structures/hash_tm_short.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

constexpr std::size_t kBuckets = 16384;

void RunPanel(const char* title, int lookup_pct, bool include_global) {
  WorkloadConfig cfg;
  cfg.key_range = 65536;
  cfg.lookup_pct = lookup_pct;

  const std::vector<int> threads = bench::ThreadSweep();
  std::vector<bench::Series> series;
  auto sweep = [&](const char* name, auto make_set) {
    bench::Series s{name, {}};
    for (int t : threads) {
      s.ops_per_sec.push_back(bench::MeasureCell(make_set, cfg, t));
    }
    series.push_back(std::move(s));
  };

  sweep("lock-free", [] { return std::make_unique<LockFreeHashSet>(kBuckets); });
  sweep("val-short", [] { return std::make_unique<SpecHashSet<Val>>(kBuckets); });
  if (include_global) {
    sweep("orec-full-g", [] { return std::make_unique<TmHashSet<OrecG>>(kBuckets); });
  }
  sweep("tvar-short-l", [] { return std::make_unique<SpecHashSet<TvarL>>(kBuckets); });
  sweep("orec-short-l", [] { return std::make_unique<SpecHashSet<OrecL>>(kBuckets); });
  sweep("orec-full-l", [] { return std::make_unique<TmHashSet<OrecL>>(kBuckets); });

  bench::PrintThroughputFigure(title, threads, series);
}

}  // namespace
}  // namespace spectm

int main() {
  spectm::RunPanel("Figure 9(a): hash table, 16k buckets, 98% lookups", 98,
                   /*include_global=*/true);
  spectm::RunPanel("Figure 9(b): hash table, 16k buckets, 90% lookups", 90,
                   /*include_global=*/false);
  spectm::RunPanel("Figure 9(c): hash table, 16k buckets, 10% lookups", 10,
                   /*include_global=*/false);
  return 0;
}
