// Transactional KV service scenario: batched requests over the sharded
// embedding-table store (src/svc), Zipfian hot-key skew, per-batch latency
// percentiles — writes BENCH_svc_kv.json.
//
// Timed section: (engine family x batch size x zipf theta) cells running the
// seeded request loop (70/20/10 get/put/scan) with every batch one
// transaction; rows carry ops/s (keys touched), abort rate at BATCH
// granularity, descriptors_per_op (attempts / keys — the amortization
// statistic, < 1 by construction), and p50/p99/p999 batch latency in rdtsc
// cycles from the fixed-bucket log-scale histogram (svc/latency.h), merged
// across worker-thread histograms.
//
// Deterministic probe section (single-threaded, thread-local ValProbe/TxStats
// deltas — the abl_readset_layout idiom at service granularity):
//   * amortization rows per family: exactly one descriptor activation per
//     batch (attempts == batches, descriptors_per_op == 1/batch_size);
//   * a region-local stripe row (svc-val): a one-shard batch under
//     cross-stripe churn — stripe_skips > 0 with zero validation walks, the
//     partitioned counter absorbing a realistic service batch;
//   * a wide-batch SIMD row (svc-orec): the passive local-clock engine's
//     per-read revalidation over a 64-key batch log reaching the 4-entry
//     gather kernel (simd_batches > 0 where the ISA has it);
//   * a snapshot row (svc-snapshot): a read-only batch pinned across mid-batch
//     churn — snapshot_reads > 0, version_hops > 0, validation_walks == 0,
//     and snapshot_probe_aborts == 0 (the acceptance columns).
//
// Single-core caveat as with every trajectory file: numbers from a 1-core
// container prove plumbing and probe wiring, not separations (bench/README.md).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/set_bench.h"
#include "src/benchsupport/runner.h"
#include "src/benchsupport/table.h"
#include "src/svc/driver.h"
#include "src/svc/kv_store.h"
#include "src/svc/latency.h"
#include "src/tm/txdesc.h"
#include "src/tm/validate_batch.h"
#include "src/tm/valstrategy.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

constexpr std::uint64_t kKeySpace = 1ULL << 14;
constexpr std::size_t kBatchSizes[] = {8, 64};
constexpr double kThetas[] = {0.5, 0.99};
constexpr int kGetPct = 70;
constexpr int kPutPct = 20;

int ThreadCount() {
  const std::vector<int> sweep = bench::ThreadSweep();
  return sweep.back();
}

template <typename Family>
void RunServiceCell(JsonReport& report, TextTable& table, const char* variant,
                    const char* clock, const char* strategy,
                    std::size_t batch_size, double theta, int threads) {
  svc::KvStore<Family> store;
  {
    svc::DriverConfig fill;
    fill.key_space = kKeySpace;
    fill.batch_size = 256;
    svc::RequestDriver<Family> prefill(store, fill);
    prefill.Prefill();
  }

  std::vector<double> samples;
  std::uint64_t commits = 0, aborts = 0, total_keys = 0;
  double duration_s = 0.0;
  svc::LatencyHistogram merged;
  for (int run = 0; run < BenchRuns(); ++run) {
    std::vector<svc::LatencyHistogram> hists(static_cast<std::size_t>(threads));
    const TxStatsRegistry::Totals before = TxStatsRegistry::Snapshot();
    const ThroughputResult r = RunThroughput(
        threads, BenchDurationMs(),
        [&store, &hists, batch_size, theta, run](int tid,
                                                 const std::atomic<bool>& stop) {
          svc::DriverConfig cfg;
          cfg.key_space = kKeySpace;
          cfg.zipf_theta = theta;
          cfg.batch_size = batch_size;
          cfg.get_pct = kGetPct;
          cfg.put_pct = kPutPct;
          cfg.seed = 0xc0ffee ^ (static_cast<std::uint64_t>(run) << 32) ^
                     (static_cast<std::uint64_t>(tid) * 1000003ULL);
          svc::RequestDriver<Family> driver(store, cfg);
          svc::LatencyHistogram& hist = hists[static_cast<std::size_t>(tid)];
          std::uint64_t ops = 0;
          while (!stop.load(std::memory_order_relaxed)) {
            ops += driver.Step(&hist, &svc::CycleNow);
          }
          return ops;
        });
    const TxStatsRegistry::Totals after = TxStatsRegistry::Snapshot();
    samples.push_back(r.ops_per_sec);
    commits += after.commits - before.commits;
    aborts += after.aborts - before.aborts;
    total_keys += r.total_ops;
    duration_s += r.duration_s;
    for (const svc::LatencyHistogram& h : hists) {
      merged.Merge(h);
    }
  }

  const std::uint64_t attempts = commits + aborts;
  BenchRecord r;
  r.variant = variant;
  r.clock = clock;
  r.workload = "kv-batch";
  r.strategy = strategy;
  r.threads = threads;
  r.lookup_pct = kGetPct;
  r.ops_per_sec = AggregateRuns(samples);
  r.abort_rate = attempts == 0 ? 0.0
                               : static_cast<double>(aborts) /
                                     static_cast<double>(attempts);
  r.commits = commits;
  r.aborts = aborts;
  r.duration_s = duration_s;
  r.has_svc = true;
  r.batch_size = static_cast<int>(batch_size);
  r.zipf_theta = theta;
  r.batches = attempts;
  r.descriptors_per_op = total_keys == 0
                             ? 0.0
                             : static_cast<double>(attempts) /
                                   static_cast<double>(total_keys);
  r.p50 = merged.P50();
  r.p99 = merged.P99();
  r.p999 = merged.P999();
  report.Add(r);

  table.AddRow({std::string(variant) + "/" + strategy,
                std::to_string(batch_size), TextTable::Num(theta, 2),
                TextTable::Num(r.ops_per_sec / 1e6, 3),
                TextTable::Num(r.abort_rate * 100.0, 2),
                TextTable::Num(r.descriptors_per_op, 4),
                std::to_string(r.p50), std::to_string(r.p99),
                std::to_string(r.p999)});
}

// Amortization probe: single-threaded, exact — attempts delta over M batches
// of size B must be exactly M, with real per-batch cycle latencies.
template <typename Family>
void RunAmortizationProbe(JsonReport& report, TextTable& table,
                          const char* variant, const char* clock,
                          const char* strategy) {
  constexpr std::size_t kBatch = 32;
  constexpr std::uint64_t kBatches = 64;
  svc::KvStore<Family> store;
  std::uint64_t keys[kBatch], vals[kBatch];
  for (std::size_t i = 0; i < kBatch; ++i) {
    keys[i] = i * 3;
    vals[i] = i + 1;
  }
  store.BatchPut(keys, vals, kBatch);

  TxStats& stats = DescOf<typename Family::DomainTag>().stats;
  svc::LatencyHistogram hist;
  const std::uint64_t commits_before = stats.commits.load(std::memory_order_relaxed);
  const std::uint64_t aborts_before = stats.aborts.load(std::memory_order_relaxed);
  for (std::uint64_t b = 0; b < kBatches; ++b) {
    const std::uint64_t t0 = svc::CycleNow();
    store.BatchUpdate(keys, kBatch,
                      [](std::size_t, std::uint64_t old_v, bool) { return old_v + 1; });
    hist.Record(svc::CycleNow() - t0);
  }
  const std::uint64_t attempts =
      stats.commits.load(std::memory_order_relaxed) - commits_before +
      stats.aborts.load(std::memory_order_relaxed) - aborts_before;

  BenchRecord r;
  r.variant = variant;
  r.clock = clock;
  r.workload = "amortization-probe";
  r.strategy = strategy;
  r.threads = 1;
  r.lookup_pct = 0;
  r.commits = attempts;
  r.has_svc = true;
  r.batch_size = static_cast<int>(kBatch);
  r.batches = attempts;
  r.descriptors_per_op =
      static_cast<double>(attempts) / static_cast<double>(kBatches * kBatch);
  r.p50 = hist.P50();
  r.p99 = hist.P99();
  r.p999 = hist.P999();
  report.Add(r);
  table.AddRow({std::string(variant) + "/" + strategy, std::to_string(kBatch),
                std::to_string(kBatches), std::to_string(attempts),
                TextTable::Num(r.descriptors_per_op, 4), std::to_string(r.p50),
                std::to_string(r.p99)});
}

// Region-local stripe probe (svc-val): a batch confined to one shard's pages
// under cross-stripe churn — the partitioned counter absorbs every would-be
// walk (stripe_skips > 0, validation_walks == 0).
void RunStripeProbe(JsonReport& report, TextTable& table) {
  using F = SvcVal;
  using Probe = F::Full::Probe;
  svc::KvStore<F> store;
  std::vector<std::uint64_t> all(1024), vals(1024);
  for (std::uint64_t k = 0; k < 1024; ++k) {
    all[k] = k;
    vals[k] = k + 1;
  }
  store.BatchPut(all.data(), vals.data(), all.size());

  std::vector<std::uint64_t> local;
  for (std::uint64_t k = 0; k < 1024 && local.size() < 32; ++k) {
    if (store.ShardOf(k) == 0) {
      local.push_back(k);
    }
  }
  std::size_t churn_shard = 0;
  for (std::size_t s = 0; s < store.shards(); ++s) {
    if (svc::KvStore<F>::StripeOfShard(s) != svc::KvStore<F>::StripeOfShard(0)) {
      churn_shard = s;
      break;
    }
  }
  F::Slot* churn = store.StripeProbeSlot(churn_shard);
  F::SingleWrite(churn, EncodeInt(1));

  const Probe::Counters before = Probe::Get();
  std::vector<std::uint64_t> out(local.size());
  store.BatchGet(local.data(), local.size(), out.data(), nullptr,
                 [&](std::size_t i) {
                   if (i % 4 == 3) {
                     F::SingleWrite(churn, EncodeInt(2 + i));
                   }
                 });
  const Probe::Counters after = Probe::Get();

  BenchRecord r;
  r.variant = "svc-val";
  r.clock = "none";
  r.workload = "region-local-probe";
  r.strategy = "partitioned";
  r.threads = 1;
  r.lookup_pct = 100;
  r.has_probes = true;
  r.counter_skips = after.counter_skips - before.counter_skips;
  r.bloom_skips = after.bloom_skips - before.bloom_skips;
  r.validation_walks = after.validation_walks - before.validation_walks;
  r.strategy_switches = after.strategy_switches - before.strategy_switches;
  r.has_stripes = true;
  r.stripe_skips = after.stripe_skips - before.stripe_skips;
  r.stripe_bumps = after.stripe_bumps - before.stripe_bumps;
  r.cross_stripe_walks = after.cross_stripe_walks - before.cross_stripe_walks;
  r.has_svc = true;
  r.batch_size = static_cast<int>(local.size());
  r.batches = 1;
  r.descriptors_per_op = 1.0 / static_cast<double>(local.size());
  report.Add(r);
  table.AddRow({"svc-val/region-local", std::to_string(local.size()),
                std::to_string(r.stripe_skips), std::to_string(r.stripe_bumps),
                std::to_string(r.cross_stripe_walks),
                std::to_string(r.validation_walks)});
}

// Wide-batch SIMD probe (svc-orec): the passive engine revalidates the growing
// read log on every read, so a 64-key batch drives the gathered batch kernel.
void RunSimdProbe(JsonReport& report, TextTable& table) {
  using F = SvcOrec;
  using Probe = F::Full::Probe;
  svc::KvStore<F> store;
  constexpr std::size_t kWide = 64;
  std::uint64_t keys[kWide], vals[kWide], out[kWide];
  for (std::size_t i = 0; i < kWide; ++i) {
    keys[i] = i * 7;
    vals[i] = i;
  }
  store.BatchPut(keys, vals, kWide);

  SetSimdEnabled(SimdAvailable());
  const Probe::Counters before = Probe::Get();
  store.BatchGet(keys, kWide, out, nullptr);
  const Probe::Counters after = Probe::Get();

  BenchRecord r;
  r.variant = "svc-orec";
  r.clock = "local";
  r.workload = "wide-batch-probe";
  r.strategy = "baseline";
  r.threads = 1;
  r.lookup_pct = 100;
  r.has_layout = true;
  r.layout = "hashed";
  r.simd = SimdAvailable() ? "simd" : "scalar";
  r.simd_batches = after.simd_batches - before.simd_batches;
  r.scalar_checks = after.scalar_checks - before.scalar_checks;
  r.has_svc = true;
  r.batch_size = static_cast<int>(kWide);
  r.batches = 1;
  r.descriptors_per_op = 1.0 / static_cast<double>(kWide);
  report.Add(r);
  table.AddRow({"svc-orec/wide-batch", std::to_string(kWide), r.simd,
                std::to_string(r.simd_batches), std::to_string(r.scalar_checks)});
}

// Snapshot probe (svc-snapshot): a read-only batch pinned across mid-batch
// churn — served off the version chains, never walking, never aborting.
void RunSnapshotProbe(JsonReport& report, TextTable& table) {
  using F = SvcSnapshot;
  using Probe = F::Full::Probe;
  svc::KvStore<F> store;
  constexpr std::size_t kBatch = 32;
  std::uint64_t keys[kBatch], vals[kBatch], out[kBatch];
  for (std::size_t i = 0; i < kBatch; ++i) {
    keys[i] = i * 5;
    vals[i] = 1000 + i;
  }
  store.BatchPut(keys, vals, kBatch);
  F::Slot* victim = store.DebugValueSlotOf(keys[kBatch - 1]);

  TxStats& stats = DescOf<F::DomainTag>().stats;
  const std::uint64_t aborts_before = stats.aborts.load(std::memory_order_relaxed);
  const Probe::Counters before = Probe::Get();
  store.BatchGet(keys, kBatch, out, nullptr, [&](std::size_t i) {
    if (i % 8 == 1 && victim != nullptr) {
      // Overwrites a key the pinned batch reads LAST: served past the head.
      F::SingleWrite(victim, EncodeInt(90000 + i));
    }
  });
  const Probe::Counters after = Probe::Get();

  BenchRecord r;
  r.variant = "svc-snapshot";
  r.clock = "none";
  r.workload = "snapshot-probe";
  r.strategy = "snapshot";
  r.threads = 1;
  r.lookup_pct = 100;
  r.has_probes = true;
  r.validation_walks = after.validation_walks - before.validation_walks;
  r.has_mvcc = true;
  r.snapshot_reads = after.snapshot_reads - before.snapshot_reads;
  r.version_hops = after.version_hops - before.version_hops;
  r.versions_retired = after.versions_retired - before.versions_retired;
  r.chain_splices = after.chain_splices - before.chain_splices;
  r.snapshot_probe_aborts =
      stats.aborts.load(std::memory_order_relaxed) - aborts_before;
  r.has_svc = true;
  r.batch_size = static_cast<int>(kBatch);
  r.batches = 1;
  r.descriptors_per_op = 1.0 / static_cast<double>(kBatch);
  report.Add(r);
  table.AddRow({"svc-snapshot/pinned", std::to_string(kBatch),
                std::to_string(r.snapshot_reads), std::to_string(r.version_hops),
                std::to_string(r.validation_walks),
                std::to_string(r.snapshot_probe_aborts)});
}

bool Run(const std::string& json_path) {
  const int threads = ThreadCount();
  JsonReport report("svc_kv");

  std::printf("\nKV service scenario — %llu keys, %d/%d/%d get/put/scan, "
              "%d threads, one transaction per batch\n",
              static_cast<unsigned long long>(kKeySpace), kGetPct, kPutPct,
              100 - kGetPct - kPutPct, threads);
  TextTable timed({"family/strategy", "batch", "theta", "Mkeys/s", "abort%",
                   "desc/op", "p50cyc", "p99cyc", "p999cyc"});
  for (const std::size_t batch : kBatchSizes) {
    for (const double theta : kThetas) {
      RunServiceCell<SvcOrec>(report, timed, "svc-orec", "local", "baseline",
                              batch, theta, threads);
      RunServiceCell<SvcOrecPart>(report, timed, "svc-orec-part", "local",
                                  "partitioned", batch, theta, threads);
      RunServiceCell<SvcVal>(report, timed, "svc-val", "none", "partitioned",
                             batch, theta, threads);
      RunServiceCell<SvcSnapshot>(report, timed, "svc-snapshot", "none",
                                  "snapshot", batch, theta, threads);
    }
  }
  std::fputs(timed.ToString().c_str(), stdout);

  std::printf("\ndeterministic probe rows — single-threaded, thread-local deltas\n");
  TextTable amort({"family/strategy", "batch", "batches", "attempts", "desc/op",
                   "p50cyc", "p99cyc"});
  RunAmortizationProbe<SvcOrec>(report, amort, "svc-orec", "local", "baseline");
  RunAmortizationProbe<SvcOrecPart>(report, amort, "svc-orec-part", "local",
                                    "partitioned");
  RunAmortizationProbe<SvcVal>(report, amort, "svc-val", "none", "partitioned");
  RunAmortizationProbe<SvcSnapshot>(report, amort, "svc-snapshot", "none",
                                    "snapshot");
  std::fputs(amort.ToString().c_str(), stdout);

  TextTable stripes({"probe", "batch", "stripe-skips", "stripe-bumps",
                     "x-stripe-walks", "walks"});
  RunStripeProbe(report, stripes);
  std::fputs(stripes.ToString().c_str(), stdout);

  TextTable simd({"probe", "batch", "body", "simd-batches", "scalar-checks"});
  RunSimdProbe(report, simd);
  std::fputs(simd.ToString().c_str(), stdout);

  TextTable snap({"probe", "batch", "snap-reads", "hops", "walks",
                  "probe-aborts"});
  RunSnapshotProbe(report, snap);
  std::fputs(snap.ToString().c_str(), stdout);

  SetSimdEnabled(SimdAvailable());
  return json_path.empty() || report.WriteFile(json_path);
}

}  // namespace
}  // namespace spectm

int main(int argc, char** argv) {
  const std::string json_path =
      spectm::JsonPathFromArgs(argc, argv, "BENCH_svc_kv.json");
  return spectm::Run(json_path) ? 0 : 1;
}
