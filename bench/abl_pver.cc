// Ablation E (§6 future work): the pointer-embedded-version layout ("pver") and the
// eager-locking value-based STM ("val-eager") against the paper's evaluated
// variants.
//
//   pver   — "pointer-only STM designs which use additional spare bits in the
//            pointers as orecs": one word per location like `val`, but 15 spare high
//            bits hold a real version number, so read validation is version-based
//            and needs neither the §2.4 special cases nor commit counters.
//   eager  — "a value-based STM that locks words when reading": full transactions
//            with zero validation machinery, at the price of read-read conflicts.
//
// Expected: pver within a few percent of val-short (one extra shift per access, no
// counter even in the general case); val-eager competitive at low contention and
// collapsing as lookups contend on hot words.
#include <memory>

#include "bench/set_bench.h"
#include "src/structures/hash_lockfree.h"
#include "src/structures/hash_tm_full.h"
#include "src/structures/hash_tm_short.h"
#include "src/tm/pver.h"
#include "src/tm/val_eager.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

constexpr std::size_t kBuckets = 16384;

void RunPanel(const char* title, int lookup_pct) {
  WorkloadConfig cfg;
  cfg.key_range = 65536;
  cfg.lookup_pct = lookup_pct;

  const std::vector<int> threads = bench::ThreadSweep();
  std::vector<bench::Series> series;
  auto sweep = [&](const char* name, auto make_set) {
    bench::Series s{name, {}};
    for (int t : threads) {
      s.ops_per_sec.push_back(bench::MeasureCell(make_set, cfg, t));
    }
    series.push_back(std::move(s));
  };

  sweep("lock-free", [] { return std::make_unique<LockFreeHashSet>(kBuckets); });
  sweep("val-short", [] { return std::make_unique<SpecHashSet<Val>>(kBuckets); });
  sweep("pver-short", [] { return std::make_unique<SpecHashSet<Pver>>(kBuckets); });
  sweep("val-short (global ctr)",
        [] { return std::make_unique<SpecHashSet<ValGlobalCounter>>(kBuckets); });
  sweep("val-eager (full)",
        [] { return std::make_unique<TmHashSet<ValEager>>(kBuckets); });

  bench::PrintThroughputFigure(title, threads, series);
}

}  // namespace
}  // namespace spectm

int main() {
  spectm::RunPanel("Ablation E: §6 designs — pver & val-eager, hash table, 90% lookups",
                   90);
  spectm::RunPanel("Ablation E: §6 designs — pver & val-eager, hash table, 10% lookups",
                   10);
  return 0;
}
