// Figure 1: "Throughput of operations on a hash table (90% lookups), normalized to
// optimized sequential code."
//
// Series (top to bottom in the paper): CAS (lock-free), SpecTM-Short-TVar-Val
// (val-short), SpecTM-Short-TVar (tvar-short-g), SpecTM-Short (orec-short-g),
// BaseTM (orec-full-g). Expected shape: BaseTM under 0.5x at one thread; the
// specialized variants close the gap to CAS, with val-short essentially matching it.
#include <memory>

#include "bench/set_bench.h"
#include "src/structures/hash_lockfree.h"
#include "src/structures/hash_seq.h"
#include "src/structures/hash_tm_full.h"
#include "src/structures/hash_tm_short.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

constexpr std::size_t kBuckets = 16384;

void Run() {
  WorkloadConfig cfg;
  cfg.key_range = 65536;
  cfg.lookup_pct = 90;

  const std::vector<int> threads = bench::ThreadSweep();

  const double seq = bench::MeasureSequentialBaseline(
      [] { return std::make_unique<SeqHashSet>(kBuckets); }, cfg);

  std::vector<bench::Series> series;
  auto sweep = [&](const char* name, auto make_set) {
    bench::Series s{name, {}};
    for (int t : threads) {
      s.ops_per_sec.push_back(bench::MeasureCell(make_set, cfg, t));
    }
    series.push_back(std::move(s));
  };

  sweep("CAS", [] { return std::make_unique<LockFreeHashSet>(kBuckets); });
  sweep("SpecTM-Short-TVar-Val", [] { return std::make_unique<SpecHashSet<Val>>(kBuckets); });
  sweep("SpecTM-Short-TVar", [] { return std::make_unique<SpecHashSet<TvarG>>(kBuckets); });
  sweep("SpecTM-Short", [] { return std::make_unique<SpecHashSet<OrecG>>(kBuckets); });
  sweep("BaseTM", [] { return std::make_unique<TmHashSet<OrecG>>(kBuckets); });

  bench::PrintNormalizedFigure(
      "Figure 1: hash table, 64k keys, 16k buckets, 90% lookups — throughput "
      "normalized to sequential",
      threads, seq, series);
}

}  // namespace
}  // namespace spectm

int main() {
  spectm::Run();
  return 0;
}
