// Figure 8: "Skip list, 64k values, 128-way system" — (a) 98%, (b) 90%, (c) 10%
// lookups. At high thread counts contention on the shared timestamp makes the local
// (per-orec) clock variants the interesting ones (§4.4.2), so the 90%/10% panels
// focus on *-l as the paper does.
//
// Expected shape: val-short at 95–97% of lock-free, 2–2.5x over BaseTM at 98%;
// tvar-short-l / orec-short-l best among versioned variants at 90%; everything
// scales poorly at 10% (including lock-free), with relative order preserved.
#include <memory>

#include "bench/set_bench.h"
#include "src/structures/skip_lockfree.h"
#include "src/structures/skip_tm_full.h"
#include "src/structures/skip_tm_short.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

void RunPanel(const char* title, int lookup_pct, bool include_global) {
  WorkloadConfig cfg;
  cfg.key_range = 65536;
  cfg.lookup_pct = lookup_pct;

  const std::vector<int> threads = bench::ThreadSweep();
  std::vector<bench::Series> series;
  auto sweep = [&](const char* name, auto make_set) {
    bench::Series s{name, {}};
    for (int t : threads) {
      s.ops_per_sec.push_back(bench::MeasureCell(make_set, cfg, t));
    }
    series.push_back(std::move(s));
  };

  sweep("lock-free", [] { return std::make_unique<LockFreeSkipList>(); });
  sweep("val-short", [] { return std::make_unique<SpecSkipList<Val>>(); });
  if (include_global) {
    sweep("tvar-short-g", [] { return std::make_unique<SpecSkipList<TvarG>>(); });
    sweep("orec-short-g", [] { return std::make_unique<SpecSkipList<OrecG>>(); });
    sweep("orec-full-g", [] { return std::make_unique<TmSkipList<OrecG>>(); });
  }
  sweep("tvar-short-l", [] { return std::make_unique<SpecSkipList<TvarL>>(); });
  sweep("orec-short-l", [] { return std::make_unique<SpecSkipList<OrecL>>(); });
  sweep("orec-full-l", [] { return std::make_unique<TmSkipList<OrecL>>(); });

  bench::PrintThroughputFigure(title, threads, series);
}

}  // namespace
}  // namespace spectm

int main() {
  spectm::RunPanel("Figure 8(a): skip list, 64k values, 98% lookups", 98,
                   /*include_global=*/true);
  spectm::RunPanel("Figure 8(b): skip list, 64k values, 90% lookups", 90,
                   /*include_global=*/false);
  spectm::RunPanel("Figure 8(c): skip list, 64k values, 10% lookups", 10,
                   /*include_global=*/false);
  return 0;
}
