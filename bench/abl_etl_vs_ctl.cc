// Ablation C (§4.4.2): encounter-time locking (short RW transactions) vs commit-time
// locking (full transactions) under rising contention.
//
// "As the contention increases, the ETL implementation leads to more locks being
// acquired by later aborted transactions, whereas the CTL implementation does not
// acquire the locks in the first place." We shrink the key range (raising conflict
// probability on the bucket chains) with a 0%-lookup workload and compare the two
// locking disciplines over identical meta-data (orec-l), reporting throughput and
// the abort rate observed by the STM.
#include <memory>

#include "bench/set_bench.h"
#include "src/structures/hash_tm_full.h"
#include "src/structures/hash_tm_short.h"
#include "src/tm/txdesc.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

struct CellResult {
  double mops;
  double abort_ratio;  // aborts / (commits + aborts)
};

template <typename MakeSet>
CellResult MeasureWithAborts(const MakeSet& make_set, const WorkloadConfig& cfg,
                             int threads) {
  const TxStatsRegistry::Totals before = TxStatsRegistry::Snapshot();
  const double ops = bench::MeasureCell(make_set, cfg, threads);
  const TxStatsRegistry::Totals after = TxStatsRegistry::Snapshot();
  const double commits = static_cast<double>(after.commits - before.commits);
  const double aborts = static_cast<double>(after.aborts - before.aborts);
  const double total = commits + aborts;
  return CellResult{ops / 1e6, total > 0 ? aborts / total : 0.0};
}

void Run() {
  const std::vector<int> threads = bench::ThreadSweep();
  const int max_threads = threads.back();

  std::printf("\nAblation C: ETL (short) vs CTL (full) under contention "
              "(hash table, 0%% lookups, %d threads)\n",
              max_threads);
  TextTable table({"key range", "ETL Mops/s", "ETL abort%", "CTL Mops/s",
                   "CTL abort%"});
  for (std::uint64_t range : {65536ULL, 4096ULL, 512ULL, 64ULL}) {
    WorkloadConfig cfg;
    cfg.key_range = range;
    cfg.lookup_pct = 0;
    // Fixed small bucket count keeps chains (and thus conflict windows) long.
    const std::size_t buckets = 256;
    const CellResult etl = MeasureWithAborts(
        [&] { return std::make_unique<SpecHashSet<OrecL>>(buckets); }, cfg,
        max_threads);
    const CellResult ctl = MeasureWithAborts(
        [&] { return std::make_unique<TmHashSet<OrecL>>(buckets); }, cfg, max_threads);
    table.AddRow({std::to_string(range), TextTable::Num(etl.mops, 3),
                  TextTable::Num(etl.abort_ratio * 100, 1),
                  TextTable::Num(ctl.mops, 3),
                  TextTable::Num(ctl.abort_ratio * 100, 1)});
  }
  std::fputs(table.ToString().c_str(), stdout);
}

}  // namespace
}  // namespace spectm

int main() {
  spectm::Run();
  return 0;
}
