// Read-set / metadata layout ablation (this PR's tentpole sweep): measures the
// three layout mechanisms end to end and writes BENCH_readset_layout.json.
//
// Axes:
//   * validation body — "simd" (AVX2 gather-compare over the SoA lanes) vs
//     "scalar", toggled per cell via SetSimdEnabled(); rows carry the ValProbe
//     simd_batches / scalar_checks deltas from a deterministic probe pass as
//     evidence of which body ran. On machines without AVX2 the simd rows
//     honestly degenerate to scalar (simd_batches == 0).
//   * orec-table indexing — "hashed" (seed) vs "striped" (orec.h kStriped,
//     adjacent addresses to guaranteed-distinct cache lines), over hash tables
//     with swept chain length (buckets = keys / chain), i.e. swept read-set
//     size per transaction: chains of ~2 barely validate, chains of ~32 walk
//     read sets long enough for both the batch kernel and table locality to
//     matter.
//   * WriteSet bloom — every cell reports the wset_bloom_misses delta: the
//     read-after-write lookups (one per transactional read) absorbed by the
//     descriptor-resident filter without a hash probe.
//
// Ring-saturation rows (the ROADMAP item): btree range scans over the
// bloom-strategy local-clock family, swept scan width, against concurrent
// writer churn for the throughput cell, plus a deterministic single-threaded
// saturation probe whose thread-local WriterRing failure deltas become the
// ring_* columns: ring_intersect_fails rising with scan width (while
// stale/window fails stay flat) is the bloom-saturation signature the 128-bit
// striped ring exists to push out; compare against the pre-PR 32-bit ring by
// the width at which intersect-failures dominate.
//
// MVCC snapshot rows (PR 9): the same btree scans once more under the val-snap
// family, whose scanner is a pinned-snapshot RO transaction reading version
// chains instead of validating — the walk and abort columns stay zero at every
// width (including the 256-wide cell that saturates the ring above), while
// versions_retired/chain_splices evidence writers threading displaced values
// onto chains and the trims bounding them.
//
// Single-core caveat as with every trajectory file: numbers from a 1-core
// container prove plumbing and probe wiring, not separations (bench/README.md).
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "bench/set_bench.h"
#include "src/structures/btree_tm.h"
#include "src/structures/hash_tm_full.h"
#include "src/tm/validate_batch.h"
#include "src/tm/valstrategy.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

constexpr std::uint64_t kKeyRange = 8192;
constexpr int kChainLens[] = {2, 8, 32};
constexpr int kScanWidths[] = {16, 64, 256};
constexpr int kLookupPct = 90;  // read-dominant: the wset-bloom common case

struct LayoutProbes {
  std::uint64_t simd_batches = 0;
  std::uint64_t scalar_checks = 0;
  std::uint64_t wset_lookups = 0;
  std::uint64_t wset_bloom_misses = 0;
};

// Deterministic single-threaded probe pass (ValProbe and the WriteSet stats are
// thread-local/descriptor-resident, so the timed cell's worker counters are
// unreachable): a read-heavy op mix over the same set shape, long enough that
// multi-entry read logs hit the batch kernel.
template <typename Family>
LayoutProbes MeasureProbes(std::size_t buckets) {
  using Probe = typename Family::Full::Probe;
  TmHashSet<Family> set(buckets);
  Xorshift128Plus rng(0x1a70);
  for (std::uint64_t k = 0; k < kKeyRange; k += 2) {
    set.Insert(k);
  }
  const typename Probe::Counters before = Probe::Get();
  const WriteSet::Stats wset_before = DescOf<typename Family::DomainTag>().wset.stats();
  for (int i = 0; i < 2048; ++i) {
    const std::uint64_t key = rng.NextBounded(kKeyRange);
    const std::uint64_t roll = rng.NextBounded(100);
    if (roll < kLookupPct) {
      set.Contains(key);
    } else if (roll % 2 == 0) {
      set.Insert(key);
    } else {
      set.Remove(key);
    }
  }
  const typename Probe::Counters after = Probe::Get();
  const WriteSet::Stats wset_after = DescOf<typename Family::DomainTag>().wset.stats();
  LayoutProbes p;
  p.simd_batches = after.simd_batches - before.simd_batches;
  p.scalar_checks = after.scalar_checks - before.scalar_checks;
  p.wset_lookups = wset_after.lookups - wset_before.lookups;
  p.wset_bloom_misses = wset_after.bloom_misses - wset_before.bloom_misses;
  return p;
}

template <typename Family>
void RunChainCell(JsonReport& report, TextTable& table, const char* layout,
                  bool simd, int chain_len, int threads) {
  SetSimdEnabled(simd);
  const std::size_t buckets = static_cast<std::size_t>(
      kKeyRange / static_cast<std::uint64_t>(chain_len));
  auto make_set = [buckets] { return std::make_unique<TmHashSet<Family>>(buckets); };
  WorkloadConfig cfg;
  cfg.key_range = kKeyRange;
  cfg.lookup_pct = kLookupPct;
  const bench::CellResult cell = bench::MeasureCellDetailed(make_set, cfg, threads);
  const LayoutProbes probes = MeasureProbes<Family>(buckets);

  BenchRecord r;
  r.variant = "orec-full-l";
  r.clock = "local";
  r.workload = "read-heavy";
  r.threads = threads;
  r.lookup_pct = kLookupPct;
  r.ops_per_sec = cell.ops_per_sec;
  r.abort_rate = cell.abort_rate;
  r.commits = cell.commits;
  r.aborts = cell.aborts;
  r.duration_s = cell.duration_s;
  r.has_layout = true;
  r.layout = layout;
  r.simd = simd ? "simd" : "scalar";
  r.chain_len = chain_len;
  r.simd_batches = probes.simd_batches;
  r.scalar_checks = probes.scalar_checks;
  r.wset_bloom_misses = probes.wset_bloom_misses;
  report.Add(r);

  table.AddRow({std::string(layout) + "/" + r.simd, std::to_string(chain_len),
                TextTable::Num(cell.ops_per_sec / 1e6, 3),
                TextTable::Num(cell.abort_rate * 100.0, 2),
                std::to_string(probes.simd_batches),
                std::to_string(probes.scalar_checks),
                std::to_string(probes.wset_bloom_misses) + "/" +
                    std::to_string(probes.wset_lookups)});
}

// The metadata word governing a slot: the orec for orec layouts (hash-scattered
// shared table), the data word itself for the val layout — which is why the
// address-region counter stripes inherit structural locality only there.
template <typename Family>
std::atomic<Word>* MetadataWordOf(typename Family::Slot& s) {
  if constexpr (std::is_same_v<typename Family::Slot, ValSlot>) {
    return &s.word;
  } else {
    return &Family::Layout::OrecOf(s);
  }
}

// Btree range-scan cell: thread 0 scans [lo, lo+width], the remaining threads
// churn inserts/removes so the domain counter moves and the ring fills. Ring
// failure counters are thread-local (like every probe in this tree), so the
// saturation columns come from the deterministic probe pass below, not the
// timed cell. Swept over the bloom-only and partitioned families so the
// committed JSON diffs per-stripe skips directly against intersect-failures.
template <typename F, typename Summary, typename Probe>
void RunScanCell(JsonReport& report, TextTable& table, const char* variant,
                 const char* clock, const char* strategy, int scan_width,
                 int threads) {
  SetSimdEnabled(SimdAvailable());

  const int runs = BenchRuns(3);
  const int duration_ms = BenchDurationMs(300);
  std::vector<double> samples;
  bench::CellResult cell;
  for (int run = 0; run < runs; ++run) {
    TmBTree<F> tree;
    for (std::uint64_t k = 0; k < kKeyRange; k += 2) {
      tree.Insert(k);
    }
    const TxStatsRegistry::Totals before = TxStatsRegistry::Snapshot();
    const ThroughputResult r = RunThroughput(
        threads, duration_ms, [&](int tid, const std::atomic<bool>& stop) {
          Xorshift128Plus rng(0x5ca9 + static_cast<std::uint64_t>(tid) * 7919);
          std::uint64_t ops = 0;
          while (!stop.load(std::memory_order_relaxed)) {
            if (tid == 0) {
              const std::uint64_t lo = rng.NextBounded(kKeyRange - scan_width);
              tree.RangeCount(lo, lo + static_cast<std::uint64_t>(scan_width));
            } else {
              const std::uint64_t key = rng.NextBounded(kKeyRange);
              if (rng.Next() & 1) {
                tree.Insert(key);
              } else {
                tree.Remove(key);
              }
            }
            ++ops;
          }
          return ops;
        });
    const TxStatsRegistry::Totals after = TxStatsRegistry::Snapshot();
    samples.push_back(r.ops_per_sec);
    cell.commits += after.commits - before.commits;
    cell.aborts += after.aborts - before.aborts;
    cell.duration_s += r.duration_s;
  }
  // Deterministic saturation probe: one transaction of the family's fixed
  // strategy reads `scan_width` contiguous slots while a single-op writer —
  // outside the read set, in a counter stripe DISJOINT from the scanned slots'
  // stripes where one exists (always on the val layout: a contiguous pool
  // occupies few 4 KiB regions; effectively never at width 256 on the
  // hash-scattered orec table, which is the point of comparing them) — bumps
  // the counter every 4th read. Each subsequent read then exercises the
  // family's skip ladder against an ever-fuller read set: the bloom family
  // probes the ring (intersect-failures rising with width IS filter
  // saturation), the partitioned family absorbs the same traffic with its
  // stripe vector (stripe_skips rising instead). Runs on this thread, so this
  // thread's probe and fail counters capture it exactly.
  const WriterRing::FailCounts ring_before = Summary::Fails();
  const typename Probe::Counters probe_before = Probe::Get();
  {
    std::vector<typename F::Slot> pool(static_cast<std::size_t>(scan_width));
    // 32 KiB of candidate slots spans every 4 KiB stripe, so a stripe-disjoint
    // churn target exists whenever the scanned pool leaves one free.
    std::vector<typename F::Slot> churn_pool(4096);
    for (auto& s : pool) {
      F::RawWrite(&s, EncodeInt(1));
    }
    for (auto& s : churn_pool) {
      F::RawWrite(&s, EncodeInt(1));
    }
    unsigned occupied = 0;
    for (auto& s : pool) {
      occupied |= 1u << CounterStripeOf(MetadataWordOf<F>(s));
    }
    typename F::Slot* churn = &churn_pool.back();
    for (auto& s : churn_pool) {
      if (((occupied >> CounterStripeOf(MetadataWordOf<F>(s))) & 1u) == 0) {
        churn = &s;
        break;
      }
    }
    typename F::FullTx tx;
    do {
      tx.Start();
      for (int i = 0; i < scan_width; ++i) {
        tx.Read(&pool[static_cast<std::size_t>(i)]);
        if (i % 4 == 3) {
          F::SingleWrite(churn, EncodeInt(static_cast<std::uint64_t>(i)));
        }
      }
    } while (!tx.Commit());
  }
  const WriterRing::FailCounts ring_after = Summary::Fails();
  const typename Probe::Counters probe_after = Probe::Get();
  cell.ops_per_sec = AggregateRuns(samples);
  const std::uint64_t attempts = cell.commits + cell.aborts;
  cell.abort_rate = attempts == 0
                        ? 0.0
                        : static_cast<double>(cell.aborts) /
                              static_cast<double>(attempts);

  BenchRecord r;
  r.variant = variant;
  r.clock = clock;
  r.workload = "range-scan";
  r.strategy = strategy;
  r.threads = threads;
  r.ops_per_sec = cell.ops_per_sec;
  r.abort_rate = cell.abort_rate;
  r.commits = cell.commits;
  r.aborts = cell.aborts;
  r.duration_s = cell.duration_s;
  r.has_layout = true;
  r.layout = "hashed";
  r.simd = SimdAvailable() ? "simd" : "scalar";
  r.scan_width = scan_width;
  r.ring_window_fails = ring_after.window - ring_before.window;
  r.ring_stale_fails = ring_after.stale - ring_before.stale;
  r.ring_intersect_fails = ring_after.intersect - ring_before.intersect;
  r.has_stripes = true;
  r.stripe_skips = probe_after.stripe_skips - probe_before.stripe_skips;
  r.stripe_bumps = probe_after.stripe_bumps - probe_before.stripe_bumps;
  r.cross_stripe_walks =
      probe_after.cross_stripe_walks - probe_before.cross_stripe_walks;
  report.Add(r);

  table.AddRow({std::string(variant) + "/" + strategy,
                std::to_string(scan_width),
                TextTable::Num(cell.ops_per_sec / 1e6, 3),
                TextTable::Num(cell.abort_rate * 100.0, 2),
                std::to_string(r.stripe_skips),
                std::to_string(r.cross_stripe_walks),
                std::to_string(r.ring_intersect_fails),
                std::to_string(r.ring_stale_fails),
                std::to_string(r.ring_window_fails)});
}

// MVCC snapshot rows: the same btree scan-vs-churn shape as RunScanCell, but
// under ValSnap the scanner is a pinned-snapshot RO transaction — it reads
// version chains instead of validating, so its walk and abort columns must
// stay ZERO at every width, against the bloom rows above where width 256 is
// exactly where intersect-failures take over. The deterministic probe churns a
// slot in the SAME counter stripe as the scanned pool (the counter families'
// worst case): snapshot reads never consult the counter, so stripe placement
// is irrelevant — the zero-walk column is that claim as evidence. Two churn
// targets split the protocol's two sides: a never-read slot overwritten past
// the chain bound drives trims (versions_retired / chain_splices), and a
// once-written re-read slot drives chain traversal (version_hops) without ever
// outrunning the pinned stamp, so no read falls off a truncated chain.
void RunSnapshotCell(JsonReport& report, TextTable& table, int scan_width,
                     int threads) {
  using F = ValSnap;
  using Probe = ValProbe<ValDomainTag>;
  SetSimdEnabled(SimdAvailable());

  const int runs = BenchRuns(3);
  const int duration_ms = BenchDurationMs(300);
  std::vector<double> samples;
  bench::CellResult cell;
  for (int run = 0; run < runs; ++run) {
    TmBTree<F> tree;
    for (std::uint64_t k = 0; k < kKeyRange; k += 2) {
      tree.Insert(k);
    }
    const TxStatsRegistry::Totals before = TxStatsRegistry::Snapshot();
    const ThroughputResult r = RunThroughput(
        threads, duration_ms, [&](int tid, const std::atomic<bool>& stop) {
          Xorshift128Plus rng(0x5ca9 + static_cast<std::uint64_t>(tid) * 7919);
          std::uint64_t ops = 0;
          while (!stop.load(std::memory_order_relaxed)) {
            if (tid == 0) {
              const std::uint64_t lo = rng.NextBounded(kKeyRange - scan_width);
              tree.RangeCount(lo, lo + static_cast<std::uint64_t>(scan_width));
            } else {
              const std::uint64_t key = rng.NextBounded(kKeyRange);
              if (rng.Next() & 1) {
                tree.Insert(key);
              } else {
                tree.Remove(key);
              }
            }
            ++ops;
          }
          return ops;
        });
    const TxStatsRegistry::Totals after = TxStatsRegistry::Snapshot();
    samples.push_back(r.ops_per_sec);
    cell.commits += after.commits - before.commits;
    cell.aborts += after.aborts - before.aborts;
    cell.duration_s += r.duration_s;
  }

  const typename Probe::Counters probe_before = Probe::Get();
  const TxStatsRegistry::Totals probe_stats_before = TxStatsRegistry::Snapshot();
  {
    std::vector<F::Slot> pool(static_cast<std::size_t>(scan_width));
    std::vector<F::Slot> churn_pool(4096);
    for (auto& s : pool) {
      F::RawWrite(&s, EncodeInt(1));
    }
    for (auto& s : churn_pool) {
      F::RawWrite(&s, EncodeInt(1));
    }
    unsigned occupied = 0;
    for (auto& s : pool) {
      occupied |= 1u << CounterStripeOf(&s.word);
    }
    // SAME-stripe churn targets (the inverse of RunScanCell's hunt): any
    // scanned pool wide enough occupies every stripe, so the first candidates
    // qualify immediately.
    F::Slot* churn_deep = &churn_pool.front();
    F::Slot* churn_read = &churn_pool.back();
    bool deep_found = false;
    for (auto& s : churn_pool) {
      if (((occupied >> CounterStripeOf(&s.word)) & 1u) != 0) {
        if (!deep_found) {
          churn_deep = &s;
          deep_found = true;
        } else if (&s != churn_deep) {
          churn_read = &s;
          break;
        }
      }
    }
    F::FullTx tx;
    tx.Start();
    bool seeded = false;
    for (int i = 0; i < scan_width; ++i) {
      tx.Read(&pool[static_cast<std::size_t>(i)]);
      if (i % 4 == 3) {
        F::SingleWrite(churn_deep, EncodeInt(static_cast<std::uint64_t>(i)));
        if (!seeded) {
          F::SingleWrite(churn_read, EncodeInt(7));
          seeded = true;
        }
        tx.Read(churn_read);  // one hop down its two-node chain, every time
      }
    }
    const bool committed = tx.Commit();  // RO snapshot commit: validates nothing
    if (!committed) {
      std::fprintf(stderr, "snapshot probe: RO commit failed (width %d)\n",
                   scan_width);
    }
  }
  const typename Probe::Counters probe_after = Probe::Get();
  const TxStatsRegistry::Totals probe_stats_after = TxStatsRegistry::Snapshot();

  cell.ops_per_sec = AggregateRuns(samples);
  const std::uint64_t attempts = cell.commits + cell.aborts;
  cell.abort_rate = attempts == 0
                        ? 0.0
                        : static_cast<double>(cell.aborts) /
                              static_cast<double>(attempts);

  BenchRecord r;
  r.variant = "btree-val";
  r.clock = "none";
  r.workload = "range-scan";
  r.strategy = "snapshot";
  r.threads = threads;
  r.ops_per_sec = cell.ops_per_sec;
  r.abort_rate = cell.abort_rate;
  r.commits = cell.commits;
  r.aborts = cell.aborts;
  r.duration_s = cell.duration_s;
  r.has_layout = true;
  r.layout = "hashed";
  r.simd = SimdAvailable() ? "simd" : "scalar";
  r.scan_width = scan_width;
  r.has_probes = true;
  r.counter_skips = probe_after.counter_skips - probe_before.counter_skips;
  r.bloom_skips = probe_after.bloom_skips - probe_before.bloom_skips;
  r.validation_walks =
      probe_after.validation_walks - probe_before.validation_walks;
  r.strategy_switches =
      probe_after.strategy_switches - probe_before.strategy_switches;
  r.has_mvcc = true;
  r.snapshot_reads = probe_after.snapshot_reads - probe_before.snapshot_reads;
  r.version_hops = probe_after.version_hops - probe_before.version_hops;
  r.versions_retired =
      probe_after.versions_retired - probe_before.versions_retired;
  r.chain_splices = probe_after.chain_splices - probe_before.chain_splices;
  // The acceptance column: the pinned scan plus its interleaved same-stripe
  // single-op writers, in isolation, abort exactly never.
  r.snapshot_probe_aborts = probe_stats_after.aborts - probe_stats_before.aborts;
  report.Add(r);

  table.AddRow({"btree-val/snapshot", std::to_string(scan_width),
                TextTable::Num(cell.ops_per_sec / 1e6, 3),
                TextTable::Num(cell.abort_rate * 100.0, 2),
                std::to_string(r.snapshot_reads),
                std::to_string(r.version_hops),
                std::to_string(r.versions_retired),
                std::to_string(r.chain_splices),
                std::to_string(r.validation_walks),
                std::to_string(r.snapshot_probe_aborts)});
}

bool Run(const std::string& json_path) {
  const std::vector<int> threads = bench::ThreadSweep();
  const int max_threads = threads.back();
  JsonReport report("readset_layout");

  std::printf("\nread-set layout sweep — orec-full-l hash table, %llu keys, "
              "%d%% lookups, %d threads\n",
              static_cast<unsigned long long>(kKeyRange), kLookupPct, max_threads);
  TextTable chain_table({"layout/body", "chain", "Mops/s", "abort%",
                         "simd-batches", "scalar-checks", "wset-bloom-miss"});
  for (const int chain : kChainLens) {
    for (const bool simd : {false, true}) {
      RunChainCell<OrecL>(report, chain_table, "hashed", simd, chain, max_threads);
      RunChainCell<OrecLStriped>(report, chain_table, "striped", simd, chain,
                                 max_threads);
    }
  }
  std::fputs(chain_table.ToString().c_str(), stdout);

  const int scan_threads = max_threads > 1 ? max_threads : 2;
  std::printf("\nring saturation vs partitioned counters — btree range scans, "
              "%d threads (1 scanner + writers)\n", scan_threads);
  TextTable scan_table({"family/strategy", "scan-width", "Mops/s", "abort%",
                        "stripe-skips", "x-stripe-walks", "ring-intersect",
                        "ring-stale", "ring-window"});
  for (const int width : kScanWidths) {
    // Summary must be the ENGINE's instantiation (the partitioned flag is part
    // of the type, and each instantiation owns its own counters/fail blocks).
    RunScanCell<OrecLBloom, OrecLBloom::Full::Summary, ValProbe<OrecLBloomTag>>(
        report, scan_table, "btree-orec-l", "local", "bloom", width, scan_threads);
    RunScanCell<ValBloom, GlobalCounterBloomValidation::Summary,
                ValProbe<ValDomainTag>>(report, scan_table, "btree-val", "none",
                                        "bloom", width, scan_threads);
    RunScanCell<ValPart, GlobalCounterBloomValidation::Summary,
                ValProbe<ValDomainTag>>(report, scan_table, "btree-val", "none",
                                        "partitioned", width, scan_threads);
  }
  std::fputs(scan_table.ToString().c_str(), stdout);

  std::printf("\nMVCC snapshot scans — btree range scans under val-snap, "
              "%d threads (1 pinned-snapshot scanner + writers)\n", scan_threads);
  TextTable snap_table({"family/strategy", "scan-width", "Mops/s", "abort%",
                        "snap-reads", "hops", "retired", "splices", "walks",
                        "probe-aborts"});
  for (const int width : kScanWidths) {
    RunSnapshotCell(report, snap_table, width, scan_threads);
  }
  std::fputs(snap_table.ToString().c_str(), stdout);

  SetSimdEnabled(SimdAvailable());  // leave the process default restored
  return json_path.empty() || report.WriteFile(json_path);
}

}  // namespace
}  // namespace spectm

int main(int argc, char** argv) {
  const std::string json_path =
      spectm::JsonPathFromArgs(argc, argv, "BENCH_readset_layout.json");
  return spectm::Run(json_path) ? 0 : 1;
}
