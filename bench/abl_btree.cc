// Ablation D (§6 future work): the transactional B+-tree across meta-data layouts
// and clock policies.
//
// B-tree transactions have much larger read sets than hash/skip-list operations
// (every node on the root-to-leaf path contributes its routing keys), so this is
// the regime where the -l variants' per-read revalidation bites hardest, and where
// the global clock's cheap read validation pays — the same trade-off as Figure
// 10(b)'s long chains, on the paper's proposed future structure. Range scans make
// the effect extreme.
#include <memory>

#include "bench/set_bench.h"
#include "src/common/rng.h"
#include "src/structures/btree_tm.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

void RunPointOps(const char* title, int lookup_pct) {
  WorkloadConfig cfg;
  cfg.key_range = 65536;
  cfg.lookup_pct = lookup_pct;

  const std::vector<int> threads = bench::ThreadSweep();
  std::vector<bench::Series> series;
  auto sweep = [&](const char* name, auto make_set) {
    bench::Series s{name, {}};
    for (int t : threads) {
      s.ops_per_sec.push_back(bench::MeasureCell(make_set, cfg, t));
    }
    series.push_back(std::move(s));
  };

  sweep("btree val", [] { return std::make_unique<TmBTree<Val>>(); });
  sweep("btree tvar-g", [] { return std::make_unique<TmBTree<TvarG>>(); });
  sweep("btree tvar-l", [] { return std::make_unique<TmBTree<TvarL>>(); });
  sweep("btree orec-g", [] { return std::make_unique<TmBTree<OrecG>>(); });
  sweep("btree orec-l", [] { return std::make_unique<TmBTree<OrecL>>(); });

  bench::PrintThroughputFigure(title, threads, series);
}

template <typename Family>
double MeasureScans(int threads) {
  const int runs = BenchRuns(3);
  const int duration_ms = BenchDurationMs(300);
  std::vector<double> samples;
  for (int run = 0; run < runs; ++run) {
    auto tree = std::make_unique<TmBTree<Family>>();
    for (std::uint64_t k = 0; k < 65536; k += 2) {
      tree->Insert(k);
    }
    const ThroughputResult r = RunThroughput(
        threads, duration_ms, [&](int tid, const std::atomic<bool>& stop) {
          Xorshift128Plus rng(static_cast<std::uint64_t>(tid) * 31 + 7);
          std::uint64_t ops = 0;
          while (!stop.load(std::memory_order_relaxed)) {
            if (rng.NextPercent() < 90) {
              // Short range scan: ~64 keys.
              const std::uint64_t lo = rng.NextBounded(65536 - 128);
              tree->RangeCount(lo, lo + 127);
            } else {
              tree->Insert(rng.NextBounded(65536));
            }
            ++ops;
          }
          return ops;
        });
    samples.push_back(r.ops_per_sec);
  }
  return AggregateRuns(samples);
}

void RunScans() {
  const std::vector<int> threads = bench::ThreadSweep();
  std::printf("\nAblation D: B+-tree range scans (90%% 128-key scans, 10%% inserts)\n");
  TextTable table({"threads", "val (kops/s)", "tvar-g (kops/s)", "tvar-l (kops/s)",
                   "orec-g (kops/s)", "orec-l (kops/s)"});
  for (int t : threads) {
    table.AddRow({std::to_string(t), TextTable::Num(MeasureScans<Val>(t) / 1e3, 1),
                  TextTable::Num(MeasureScans<TvarG>(t) / 1e3, 1),
                  TextTable::Num(MeasureScans<TvarL>(t) / 1e3, 1),
                  TextTable::Num(MeasureScans<OrecG>(t) / 1e3, 1),
                  TextTable::Num(MeasureScans<OrecL>(t) / 1e3, 1)});
  }
  std::fputs(table.ToString().c_str(), stdout);
}

}  // namespace
}  // namespace spectm

int main() {
  spectm::RunPointOps("Ablation D: B+-tree point operations, 90% lookups", 90);
  spectm::RunScans();
  return 0;
}
