// Ablation A (§2.4 design choice): the cost of making value-based validation safe in
// the general case.
//
// The paper's val-short relies on three special cases to run with NO commit counter;
// for general-purpose code it suggests a global commit counter (Dalessandro et al.)
// or per-thread distributed counters. This bench quantifies that choice on the
// val-short hash table: non-reuse (free) vs global counter (one shared cache line
// bumped per writer commit) vs per-thread counters (cheap bump, full scan per
// validation).
//
// Expected shape: non-reuse fastest; global counter loses under high update rates
// (shared-line contention); per-thread counters recover writer scalability at a
// read-side cost.
#include <memory>

#include "bench/set_bench.h"
#include "src/structures/hash_tm_short.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

constexpr std::size_t kBuckets = 16384;

void RunPanel(const char* title, int lookup_pct) {
  WorkloadConfig cfg;
  cfg.key_range = 65536;
  cfg.lookup_pct = lookup_pct;

  const std::vector<int> threads = bench::ThreadSweep();
  std::vector<bench::Series> series;
  auto sweep = [&](const char* name, auto make_set) {
    bench::Series s{name, {}};
    for (int t : threads) {
      s.ops_per_sec.push_back(bench::MeasureCell(make_set, cfg, t));
    }
    series.push_back(std::move(s));
  };

  sweep("val-short (non-reuse)",
        [] { return std::make_unique<SpecHashSet<Val>>(kBuckets); });
  sweep("val-short (global counter)",
        [] { return std::make_unique<SpecHashSet<ValGlobalCounter>>(kBuckets); });
  sweep("val-short (per-thread counters)",
        [] { return std::make_unique<SpecHashSet<ValPerThreadCounter>>(kBuckets); });

  bench::PrintThroughputFigure(title, threads, series);
}

}  // namespace
}  // namespace spectm

int main() {
  spectm::RunPanel("Ablation A: val validation modes, hash table, 90% lookups", 90);
  spectm::RunPanel("Ablation A: val validation modes, hash table, 10% lookups", 10);
  return 0;
}
