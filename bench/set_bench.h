// Shared machinery for the integer-set figure benchmarks (§4.4): run a lookup/
// insert/remove mix against a freshly pre-filled set for each (variant, thread-count)
// cell, aggregate with the paper's 6-run statistic, and print the figure's series as
// a text table.
//
// Environment knobs (quick CI pass vs. paper-style runs):
//   SPECTM_BENCH_RUNS — repetitions per cell (default 3; paper uses 6)
//   SPECTM_BENCH_MS   — milliseconds per run (default 300)
//   SPECTM_BENCH_THREADS — comma-free max thread count for sweeps (default 8)
#ifndef SPECTM_BENCH_SET_BENCH_H_
#define SPECTM_BENCH_SET_BENCH_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/benchsupport/runner.h"
#include "src/benchsupport/table.h"
#include "src/benchsupport/workload.h"
#include "src/common/rng.h"
#include "src/tm/txdesc.h"

namespace spectm::bench {

inline std::vector<int> ThreadSweep() {
  int max_threads = 8;
  if (const char* env = std::getenv("SPECTM_BENCH_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) {
      max_threads = parsed;
    }
  }
  std::vector<int> sweep;
  for (int t = 1; t <= max_threads; t *= 2) {
    sweep.push_back(t);
  }
  return sweep;
}

// One measurement cell: fresh set, prefill to half the key range, timed mixed
// workload, repeated and aggregated — plus transaction-level statistics for the
// JSON report: abort rate and raw commit/abort counts, taken as TxStatsRegistry
// deltas around the timed region (prefill transactions are excluded by snapshotting
// after prefill; the two snapshots sit outside the timed region and cost nothing).
// Requires that only one variant runs at a time — true for every bench in this
// tree, which measure cells strictly sequentially.
struct CellResult {
  double ops_per_sec = 0.0;
  double abort_rate = 0.0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  double duration_s = 0.0;
};

// Generalized cell: `mix(ops_done)` yields the lookup percentage for the next
// operation, so phase-shifting workloads (bench/abl_adaptive_val) share this
// prefill/snapshot/aggregate machinery with the fixed-mix cells.
template <typename MakeSet, typename MixFn>
CellResult MeasureCellWithMix(const MakeSet& make_set, const WorkloadConfig& cfg,
                              int threads, const MixFn& mix) {
  const int runs = BenchRuns(3);
  const int duration_ms = BenchDurationMs(300);
  CellResult cell;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(runs));
  for (int run = 0; run < runs; ++run) {
    auto set = make_set();
    PrefillHalf(*set, cfg);
    const TxStatsRegistry::Totals before = TxStatsRegistry::Snapshot();
    const ThroughputResult r = RunThroughput(
        threads, duration_ms, [&](int tid, const std::atomic<bool>& stop) {
          Xorshift128Plus rng(cfg.seed + static_cast<std::uint64_t>(tid) * 7919 + 13 +
                              static_cast<std::uint64_t>(run) * 104729);
          std::uint64_t ops = 0;
          while (!stop.load(std::memory_order_relaxed)) {
            const std::uint64_t key = PickKey(rng, cfg.key_range);
            switch (PickOp(rng, mix(ops))) {
              case SetOp::kLookup:
                set->Contains(key);
                break;
              case SetOp::kInsert:
                set->Insert(key);
                break;
              case SetOp::kRemove:
                set->Remove(key);
                break;
            }
            ++ops;
          }
          return ops;
        });
    const TxStatsRegistry::Totals after = TxStatsRegistry::Snapshot();
    samples.push_back(r.ops_per_sec);
    cell.commits += after.commits - before.commits;
    cell.aborts += after.aborts - before.aborts;
    cell.duration_s += r.duration_s;
  }
  cell.ops_per_sec = AggregateRuns(samples);
  const std::uint64_t attempts = cell.commits + cell.aborts;
  cell.abort_rate =
      attempts == 0 ? 0.0 : static_cast<double>(cell.aborts) / static_cast<double>(attempts);
  return cell;
}

template <typename MakeSet>
CellResult MeasureCellDetailed(const MakeSet& make_set, const WorkloadConfig& cfg,
                               int threads) {
  return MeasureCellWithMix(make_set, cfg, threads,
                            [&](std::uint64_t /*ops*/) { return cfg.lookup_pct; });
}

// Throughput-only convenience used by the figure benches.
template <typename MakeSet>
double MeasureCell(const MakeSet& make_set, const WorkloadConfig& cfg, int threads) {
  return MeasureCellDetailed(make_set, cfg, threads).ops_per_sec;
}

// Single-threaded sequential baseline for normalization (Figure 1's "1.0 =
// sequential" axis).
template <typename MakeSet>
double MeasureSequentialBaseline(const MakeSet& make_set, const WorkloadConfig& cfg) {
  return MeasureCell(make_set, cfg, /*threads=*/1);
}

struct Series {
  std::string name;
  std::vector<double> ops_per_sec;  // one entry per thread count
};

// Prints a figure: rows = thread counts, one column per variant, in Mops/s.
inline void PrintThroughputFigure(const std::string& title,
                                  const std::vector<int>& threads,
                                  const std::vector<Series>& series) {
  std::printf("\n%s\n", title.c_str());
  std::vector<std::string> header{"threads"};
  for (const Series& s : series) {
    header.push_back(s.name + " (Mops/s)");
  }
  TextTable table(header);
  for (std::size_t row = 0; row < threads.size(); ++row) {
    std::vector<std::string> cells{std::to_string(threads[row])};
    for (const Series& s : series) {
      cells.push_back(TextTable::Num(s.ops_per_sec[row] / 1e6, 3));
    }
    table.AddRow(std::move(cells));
  }
  std::fputs(table.ToString().c_str(), stdout);
}

// Prints a figure normalized to a sequential baseline (Figure 1 style).
inline void PrintNormalizedFigure(const std::string& title,
                                  const std::vector<int>& threads,
                                  double sequential_baseline,
                                  const std::vector<Series>& series) {
  std::printf("\n%s\n(1.0 = optimized sequential code, %.3f Mops/s)\n", title.c_str(),
              sequential_baseline / 1e6);
  std::vector<std::string> header{"threads"};
  for (const Series& s : series) {
    header.push_back(s.name);
  }
  TextTable table(header);
  for (std::size_t row = 0; row < threads.size(); ++row) {
    std::vector<std::string> cells{std::to_string(threads[row])};
    for (const Series& s : series) {
      cells.push_back(TextTable::Num(s.ops_per_sec[row] / sequential_baseline, 2));
    }
    table.AddRow(std::move(cells));
  }
  std::fputs(table.ToString().c_str(), stdout);
}

}  // namespace spectm::bench

#endif  // SPECTM_BENCH_SET_BENCH_H_
