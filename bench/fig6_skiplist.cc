// Figure 6: "Skip list, 64k values, 16 cores" — (a) 90% lookups, (b) 10% lookups.
//
// Series include the fine-grained configuration "orec-full-g (fine)": the same
// decomposed operations as the short variants but over the ordinary STM API —
// showing that decomposition alone, without the specialized implementation, does
// not pay (§4.4.1).
//
// Expected shape: val-short ~ lock-free, outperforming BaseTM (orec-full-g) by
// 60–80%; tvar-short-g slightly behind lock-free; tvar-full-l poor due to
// incremental validation; (fine) no better than orec-full-g.
#include <memory>

#include "bench/set_bench.h"
#include "src/structures/skip_lockfree.h"
#include "src/structures/skip_tm_full.h"
#include "src/structures/skip_tm_short.h"
#include "src/tm/fine_grained.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

void RunPanel(const char* title, int lookup_pct, bool extended_series) {
  WorkloadConfig cfg;
  cfg.key_range = 65536;
  cfg.lookup_pct = lookup_pct;

  const std::vector<int> threads = bench::ThreadSweep();
  std::vector<bench::Series> series;
  auto sweep = [&](const char* name, auto make_set) {
    bench::Series s{name, {}};
    for (int t : threads) {
      s.ops_per_sec.push_back(bench::MeasureCell(make_set, cfg, t));
    }
    series.push_back(std::move(s));
  };

  sweep("lock-free", [] { return std::make_unique<LockFreeSkipList>(); });
  sweep("val-short", [] { return std::make_unique<SpecSkipList<Val>>(); });
  sweep("tvar-short-g", [] { return std::make_unique<SpecSkipList<TvarG>>(); });
  sweep("orec-short-g", [] { return std::make_unique<SpecSkipList<OrecG>>(); });
  sweep("orec-full-g", [] { return std::make_unique<TmSkipList<OrecG>>(); });
  if (extended_series) {
    sweep("tvar-full-l", [] { return std::make_unique<TmSkipList<TvarL>>(); });
    sweep("orec-full-g (fine)",
          [] { return std::make_unique<SpecSkipList<FineGrainedFamily<OrecG>>>(); });
  }

  bench::PrintThroughputFigure(title, threads, series);
}

}  // namespace
}  // namespace spectm

int main() {
  spectm::RunPanel("Figure 6(a): skip list, 64k values, 90% lookups", 90,
                   /*extended_series=*/true);
  spectm::RunPanel("Figure 6(b): skip list, 64k values, 10% lookups", 10,
                   /*extended_series=*/false);
  return 0;
}
