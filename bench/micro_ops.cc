// google-benchmark micro-op suite over the engine primitives: per-operation cost of
// single reads/CAS, short RO/RW transactions and full transactions for each
// meta-data layout. Complements fig5_single_thread (which reproduces the paper's
// exact normalization) with standard benchmark tooling.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/common/cacheline.h"
#include "src/common/rng.h"
#include "src/tm/config.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

constexpr std::uint32_t kArraySize = 1024;

template <typename Family>
struct Fixture {
  std::vector<CacheAligned<typename Family::Slot>> slots{kArraySize};
  Fixture() {
    for (std::uint32_t i = 0; i < kArraySize; ++i) {
      Family::RawWrite(&slots[i].value, EncodeInt(i + 1));
    }
  }
  typename Family::Slot* At(std::uint32_t i) { return &slots[i % kArraySize].value; }
};

template <typename Family>
void BM_SingleRead(benchmark::State& state) {
  Fixture<Family> f;
  Xorshift128Plus rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Family::SingleRead(f.At(static_cast<std::uint32_t>(rng.Next()))));
  }
}

template <typename Family>
void BM_SingleCas(benchmark::State& state) {
  Fixture<Family> f;
  Xorshift128Plus rng(2);
  for (auto _ : state) {
    auto* slot = f.At(static_cast<std::uint32_t>(rng.Next()));
    const Word v = Family::SingleRead(slot);
    benchmark::DoNotOptimize(Family::SingleCas(slot, v, v));
  }
}

template <typename Family>
void BM_ShortRw2(benchmark::State& state) {
  Fixture<Family> f;
  Xorshift128Plus rng(3);
  for (auto _ : state) {
    const auto base = static_cast<std::uint32_t>(rng.Next());
    typename Family::ShortTx t;
    const Word a = t.ReadRw(f.At(base));
    const Word b = t.ReadRw(f.At(base + 1));
    t.CommitRw({a, b});
  }
}

template <typename Family>
void BM_ShortRo2(benchmark::State& state) {
  Fixture<Family> f;
  Xorshift128Plus rng(4);
  for (auto _ : state) {
    const auto base = static_cast<std::uint32_t>(rng.Next());
    typename Family::ShortTx t;
    benchmark::DoNotOptimize(t.ReadRo(f.At(base)));
    benchmark::DoNotOptimize(t.ReadRo(f.At(base + 1)));
    benchmark::DoNotOptimize(t.ValidateRo());
  }
}

template <typename Family>
void BM_FullTxRw2(benchmark::State& state) {
  Fixture<Family> f;
  Xorshift128Plus rng(5);
  typename Family::FullTx tx;
  for (auto _ : state) {
    const auto base = static_cast<std::uint32_t>(rng.Next());
    do {
      tx.Start();
      const Word a = tx.Read(f.At(base));
      const Word b = tx.Read(f.At(base + 1));
      tx.Write(f.At(base), a);
      tx.Write(f.At(base + 1), b);
    } while (!tx.Commit());
  }
}

BENCHMARK(BM_SingleRead<OrecG>);
BENCHMARK(BM_SingleRead<TvarG>);
BENCHMARK(BM_SingleRead<Val>);
BENCHMARK(BM_SingleCas<OrecG>);
BENCHMARK(BM_SingleCas<TvarG>);
BENCHMARK(BM_SingleCas<Val>);
BENCHMARK(BM_ShortRw2<OrecG>);
BENCHMARK(BM_ShortRw2<OrecL>);
BENCHMARK(BM_ShortRw2<TvarG>);
BENCHMARK(BM_ShortRw2<TvarL>);
BENCHMARK(BM_ShortRw2<Val>);
BENCHMARK(BM_ShortRo2<OrecG>);
BENCHMARK(BM_ShortRo2<TvarG>);
BENCHMARK(BM_ShortRo2<Val>);
BENCHMARK(BM_FullTxRw2<OrecG>);
BENCHMARK(BM_FullTxRw2<OrecL>);
BENCHMARK(BM_FullTxRw2<TvarG>);
BENCHMARK(BM_FullTxRw2<TvarL>);
BENCHMARK(BM_FullTxRw2<Val>);

}  // namespace
}  // namespace spectm

BENCHMARK_MAIN();
