// Micro-op suite over the engine primitives: per-operation throughput of single
// reads/CAS, short RO/RW transactions and full transactions for each meta-data
// layout. Complements fig5_single_thread (which reproduces the paper's exact
// normalization).
//
// Runs on the in-tree runner.h throughput loop — no external benchmark library —
// so it always builds, honors the SPECTM_BENCH_* knobs, and can emit through the
// standard JSON pipeline (--json <path> / SPECTM_BENCH_JSON; no JSON by default).
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/benchsupport/runner.h"
#include "src/benchsupport/table.h"
#include "src/common/cacheline.h"
#include "src/common/rng.h"
#include "src/tm/config.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

constexpr std::uint32_t kArraySize = 1024;

template <typename Family>
struct Fixture {
  std::vector<CacheAligned<typename Family::Slot>> slots{kArraySize};
  Fixture() {
    for (std::uint32_t i = 0; i < kArraySize; ++i) {
      Family::RawWrite(&slots[i].value, EncodeInt(i + 1));
    }
  }
  typename Family::Slot* At(std::uint32_t i) { return &slots[i % kArraySize].value; }
};

// Keeps a result from being optimized away without google-benchmark's helper.
inline void Consume(Word v) { asm volatile("" : : "r"(v) : "memory"); }

// Measures `op(fixture, rng)` single-threaded through the runner.h loop and
// returns ops/sec aggregated with the paper statistic.
template <typename Family, typename Op>
double MeasureOp(const Op& op) {
  const int runs = BenchRuns(3);
  const int duration_ms = BenchDurationMs(100);
  std::vector<double> samples;
  for (int run = 0; run < runs; ++run) {
    Fixture<Family> fixture;
    const ThroughputResult r = RunThroughput(
        /*threads=*/1, duration_ms, [&](int /*tid*/, const std::atomic<bool>& stop) {
          Xorshift128Plus rng(0x5eed + static_cast<std::uint64_t>(run));
          std::uint64_t ops = 0;
          while (!stop.load(std::memory_order_relaxed)) {
            op(fixture, rng);
            ++ops;
          }
          return ops;
        });
    samples.push_back(r.ops_per_sec);
  }
  return AggregateRuns(std::move(samples));
}

template <typename Family>
void SingleReadOp(Fixture<Family>& f, Xorshift128Plus& rng) {
  Consume(Family::SingleRead(f.At(static_cast<std::uint32_t>(rng.Next()))));
}

template <typename Family>
void SingleCasOp(Fixture<Family>& f, Xorshift128Plus& rng) {
  auto* slot = f.At(static_cast<std::uint32_t>(rng.Next()));
  const Word v = Family::SingleRead(slot);
  Consume(Family::SingleCas(slot, v, v));
}

template <typename Family>
void ShortRw2Op(Fixture<Family>& f, Xorshift128Plus& rng) {
  const auto base = static_cast<std::uint32_t>(rng.Next());
  typename Family::ShortTx t;
  const Word a = t.ReadRw(f.At(base));
  const Word b = t.ReadRw(f.At(base + 1));
  t.CommitRw({a, b});
}

template <typename Family>
void ShortRo2Op(Fixture<Family>& f, Xorshift128Plus& rng) {
  const auto base = static_cast<std::uint32_t>(rng.Next());
  typename Family::ShortTx t;
  Consume(t.ReadRo(f.At(base)));
  Consume(t.ReadRo(f.At(base + 1)));
  Consume(t.ValidateRo() ? 1 : 0);
}

template <typename Family>
void FullRw2Op(Fixture<Family>& f, Xorshift128Plus& rng) {
  const auto base = static_cast<std::uint32_t>(rng.Next());
  typename Family::FullTx tx;
  do {
    tx.Start();
    const Word a = tx.Read(f.At(base));
    const Word b = tx.Read(f.At(base + 1));
    tx.Write(f.At(base), a);
    tx.Write(f.At(base + 1), b);
  } while (!tx.Commit());
}

struct Cell {
  std::string family;
  std::string op;
  double ops_per_sec;
};

template <typename Family>
void MeasureFamily(const char* name, bool short_api, std::vector<Cell>& out) {
  out.push_back({name, "single-read", MeasureOp<Family>(SingleReadOp<Family>)});
  out.push_back({name, "single-cas", MeasureOp<Family>(SingleCasOp<Family>)});
  if (short_api) {
    out.push_back({name, "short-rw2", MeasureOp<Family>(ShortRw2Op<Family>)});
    out.push_back({name, "short-ro2", MeasureOp<Family>(ShortRo2Op<Family>)});
  }
  out.push_back({name, "full-rw2", MeasureOp<Family>(FullRw2Op<Family>)});
}

bool Run(const std::string& json_path) {
  std::vector<Cell> cells;
  MeasureFamily<OrecG>("orec-g", /*short_api=*/true, cells);
  MeasureFamily<OrecL>("orec-l", /*short_api=*/true, cells);
  MeasureFamily<TvarG>("tvar-g", /*short_api=*/true, cells);
  MeasureFamily<TvarL>("tvar-l", /*short_api=*/true, cells);
  MeasureFamily<Val>("val", /*short_api=*/true, cells);
  MeasureFamily<ValAdaptive>("val-adaptive", /*short_api=*/true, cells);
  MeasureFamily<OrecLAdaptive>("orec-l-adaptive", /*short_api=*/true, cells);

  std::printf("\nMicro-op throughput, single thread (Mops/s)\n");
  TextTable table({"family", "single-read", "single-cas", "short-rw2", "short-ro2",
                   "full-rw2"});
  JsonReport report("micro_ops");
  std::string current;
  std::vector<std::string> row;
  auto flush_row = [&] {
    if (!row.empty()) {
      row.resize(6);
      table.AddRow(row);
      row.clear();
    }
  };
  for (const Cell& c : cells) {
    if (c.family != current) {
      flush_row();
      current = c.family;
      row = {c.family, "", "", "", "", ""};
    }
    const std::size_t col = c.op == "single-read"   ? 1
                            : c.op == "single-cas"  ? 2
                            : c.op == "short-rw2"   ? 3
                            : c.op == "short-ro2"   ? 4
                                                    : 5;
    row[col] = TextTable::Num(c.ops_per_sec / 1e6, 3);

    BenchRecord r;
    r.variant = c.family;
    r.clock = "-";
    r.workload = c.op;
    r.threads = 1;
    r.ops_per_sec = c.ops_per_sec;
    report.Add(r);
  }
  flush_row();
  std::fputs(table.ToString().c_str(), stdout);

  return json_path.empty() || report.WriteFile(json_path);
}

}  // namespace
}  // namespace spectm

int main(int argc, char** argv) {
  // No JSON by default: micro-op numbers are not part of the checked-in perf
  // trajectory; pass --json (or SPECTM_BENCH_JSON) to emit them.
  const std::string json_path = spectm::JsonPathFromArgs(argc, argv, "");
  return spectm::Run(json_path) ? 0 : 1;
}
