// Ablation B (§4.1 design choice): global version clock vs per-orec local versions,
// swept over the update rate.
//
// The global clock makes reads cheap (one snapshot comparison) but every writer
// commit increments one shared cache line; local versions cost nothing at commit
// but force full-transaction reads to revalidate their read set after every read.
// The crossover as lookups fall is the effect behind the *-g/*-l split in Figures
// 7–9.
#include <memory>

#include "bench/set_bench.h"
#include "src/structures/hash_tm_full.h"
#include "src/structures/hash_tm_short.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

constexpr std::size_t kBuckets = 16384;

void Run() {
  const std::vector<int> threads = bench::ThreadSweep();
  const int max_threads = threads.back();

  std::printf("\nAblation B: clock policy vs update rate (hash table, %d threads)\n",
              max_threads);
  TextTable table({"lookup%", "orec-short-g", "orec-short-l", "orec-full-g",
                   "orec-full-l"});
  for (int lookup_pct : {98, 90, 50, 10}) {
    WorkloadConfig cfg;
    cfg.key_range = 65536;
    cfg.lookup_pct = lookup_pct;
    const double sg = bench::MeasureCell(
        [] { return std::make_unique<SpecHashSet<OrecG>>(kBuckets); }, cfg, max_threads);
    const double sl = bench::MeasureCell(
        [] { return std::make_unique<SpecHashSet<OrecL>>(kBuckets); }, cfg, max_threads);
    const double fg = bench::MeasureCell(
        [] { return std::make_unique<TmHashSet<OrecG>>(kBuckets); }, cfg, max_threads);
    const double fl = bench::MeasureCell(
        [] { return std::make_unique<TmHashSet<OrecL>>(kBuckets); }, cfg, max_threads);
    table.AddRow({std::to_string(lookup_pct), TextTable::Num(sg / 1e6, 3),
                  TextTable::Num(sl / 1e6, 3), TextTable::Num(fg / 1e6, 3),
                  TextTable::Num(fl / 1e6, 3)});
  }
  std::printf("(Mops/s)\n%s", table.ToString().c_str());
}

}  // namespace
}  // namespace spectm

int main() {
  spectm::Run();
  return 0;
}
