// Clock-policy scalability ablation: GV4 pass-on-failure (+ thread-local sample
// cache) vs the naive fetch_add global clock vs per-orec local versions, swept over
// thread counts on the hash-table workload.
//
// The paper's §4.1 and Figures 7–9 identify the shared commit clock as the
// scalability limiter of the *-g variants; TL2's GV4 scheme removes the CAS-retry
// convoy (a failed clock advance adopts the racing timestamp) and the sample cache
// removes the shared-line load from the transaction-start path of threads that just
// committed. This bench quantifies both against the naive baseline, on a write-heavy
// mix (where the clock is hottest) and a read-heavy mix (where Sample() dominates).
//
// Output: the usual text table, plus a machine-readable JSON report (default
// BENCH_clock_scale.json, override with --json <path> or SPECTM_BENCH_JSON) —
// the first entry of this repo's BENCH_*.json perf trajectory.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/set_bench.h"
#include "src/structures/hash_tm_full.h"
#include "src/structures/hash_tm_short.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

constexpr std::size_t kBuckets = 16384;

struct Cell {
  std::string variant;
  std::string clock;
  bench::CellResult result;
};

template <typename MakeSet>
Cell Measure(const char* variant, const char* clock, const MakeSet& make_set,
             const WorkloadConfig& cfg, int threads) {
  return Cell{variant, clock, bench::MeasureCellDetailed(make_set, cfg, threads)};
}

bool Run(const std::string& json_path) {
  const std::vector<int> threads = bench::ThreadSweep();
  JsonReport report("clock_scale");

  for (const int lookup_pct : {10, 90}) {
    WorkloadConfig cfg;
    cfg.key_range = 65536;
    cfg.lookup_pct = lookup_pct;

    std::printf("\nClock-policy scaling (hash table, %d%% lookups)\n", lookup_pct);
    TextTable table({"threads", "short-gv4", "short-naive", "full-gv4", "full-naive",
                     "full-local", "abort% (full-gv4)"});

    for (const int t : threads) {
      std::vector<Cell> cells;
      cells.push_back(Measure("orec-short", OrecG::Clock::kName,
                              [] { return std::make_unique<SpecHashSet<OrecG>>(kBuckets); },
                              cfg, t));
      cells.push_back(Measure("orec-short", OrecGNaive::Clock::kName,
                              [] { return std::make_unique<SpecHashSet<OrecGNaive>>(kBuckets); },
                              cfg, t));
      cells.push_back(Measure("orec-full", OrecG::Clock::kName,
                              [] { return std::make_unique<TmHashSet<OrecG>>(kBuckets); },
                              cfg, t));
      cells.push_back(Measure("orec-full", OrecGNaive::Clock::kName,
                              [] { return std::make_unique<TmHashSet<OrecGNaive>>(kBuckets); },
                              cfg, t));
      cells.push_back(Measure("orec-full", OrecL::Clock::kName,
                              [] { return std::make_unique<TmHashSet<OrecL>>(kBuckets); },
                              cfg, t));

      for (const Cell& c : cells) {
        BenchRecord r;
        r.variant = c.variant;
        r.clock = c.clock;
        r.threads = t;
        r.lookup_pct = lookup_pct;
        r.ops_per_sec = c.result.ops_per_sec;
        r.abort_rate = c.result.abort_rate;
        r.commits = c.result.commits;
        r.aborts = c.result.aborts;
        r.duration_s = c.result.duration_s;
        report.Add(r);
      }

      table.AddRow({std::to_string(t),
                    TextTable::Num(cells[0].result.ops_per_sec / 1e6, 3),
                    TextTable::Num(cells[1].result.ops_per_sec / 1e6, 3),
                    TextTable::Num(cells[2].result.ops_per_sec / 1e6, 3),
                    TextTable::Num(cells[3].result.ops_per_sec / 1e6, 3),
                    TextTable::Num(cells[4].result.ops_per_sec / 1e6, 3),
                    TextTable::Num(cells[2].result.abort_rate * 100.0, 2)});
    }
    std::printf("(Mops/s)\n%s", table.ToString().c_str());
  }

  return json_path.empty() || report.WriteFile(json_path);
}

}  // namespace
}  // namespace spectm

int main(int argc, char** argv) {
  const std::string json_path =
      spectm::JsonPathFromArgs(argc, argv, "BENCH_clock_scale.json");
  return spectm::Run(json_path) ? 0 : 1;
}
