// Figure 10: "Hash table, with short and long chains in each bucket, 128-way system"
// — (a) 98% lookups, 64k buckets (0.5-entry chains); (b) 90% lookups, 1k buckets
// (32-entry chains).
//
// Expected shape: val-short matches lock-free in both regimes. With long chains the
// *-full-l variants scale poorly: "their read sets become large, increasing costs of
// incremental validation" (§4.4.2).
#include <memory>

#include "bench/set_bench.h"
#include "src/structures/hash_lockfree.h"
#include "src/structures/hash_tm_full.h"
#include "src/structures/hash_tm_short.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

void RunPanel(const char* title, int lookup_pct, std::size_t buckets) {
  WorkloadConfig cfg;
  cfg.key_range = 65536;
  cfg.lookup_pct = lookup_pct;

  const std::vector<int> threads = bench::ThreadSweep();
  std::vector<bench::Series> series;
  auto sweep = [&](const char* name, auto make_set) {
    bench::Series s{name, {}};
    for (int t : threads) {
      s.ops_per_sec.push_back(bench::MeasureCell(make_set, cfg, t));
    }
    series.push_back(std::move(s));
  };

  sweep("lock-free", [&] { return std::make_unique<LockFreeHashSet>(buckets); });
  sweep("val-short", [&] { return std::make_unique<SpecHashSet<Val>>(buckets); });
  sweep("tvar-short-l", [&] { return std::make_unique<SpecHashSet<TvarL>>(buckets); });
  sweep("orec-short-l", [&] { return std::make_unique<SpecHashSet<OrecL>>(buckets); });
  sweep("orec-full-l", [&] { return std::make_unique<TmHashSet<OrecL>>(buckets); });

  bench::PrintThroughputFigure(title, threads, series);
}

}  // namespace
}  // namespace spectm

int main() {
  spectm::RunPanel(
      "Figure 10(a): hash table, 64k buckets (0.5-entry chains), 98% lookups", 98,
      65536);
  spectm::RunPanel(
      "Figure 10(b): hash table, 1k buckets (32-entry chains), 90% lookups", 90, 1024);
  return 0;
}
