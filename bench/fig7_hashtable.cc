// Figure 7: "Hash table, 64k values, 16k buckets, 16-cores" — (a) 90% lookups,
// (b) 10% lookups.
//
// Hash-table operations are much shorter than skip-list ones, so centralized state
// (the shared global clock of the *-g variants) has a larger scalability impact
// (§4.4.1). Expected shape: val-short ~ lock-free (2.5–3x over orec-full-g in (a));
// *-g variants flatten as update rate grows; *-l variants trade single-thread speed
// for scalability.
#include <memory>

#include "bench/set_bench.h"
#include "src/structures/hash_lockfree.h"
#include "src/structures/hash_tm_full.h"
#include "src/structures/hash_tm_short.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

constexpr std::size_t kBuckets = 16384;

void RunPanel(const char* title, int lookup_pct) {
  WorkloadConfig cfg;
  cfg.key_range = 65536;
  cfg.lookup_pct = lookup_pct;

  const std::vector<int> threads = bench::ThreadSweep();
  std::vector<bench::Series> series;
  auto sweep = [&](const char* name, auto make_set) {
    bench::Series s{name, {}};
    for (int t : threads) {
      s.ops_per_sec.push_back(bench::MeasureCell(make_set, cfg, t));
    }
    series.push_back(std::move(s));
  };

  sweep("lock-free", [] { return std::make_unique<LockFreeHashSet>(kBuckets); });
  sweep("val-short", [] { return std::make_unique<SpecHashSet<Val>>(kBuckets); });
  sweep("tvar-short-g", [] { return std::make_unique<SpecHashSet<TvarG>>(kBuckets); });
  sweep("tvar-short-l", [] { return std::make_unique<SpecHashSet<TvarL>>(kBuckets); });
  sweep("orec-short-g", [] { return std::make_unique<SpecHashSet<OrecG>>(kBuckets); });
  sweep("orec-short-l", [] { return std::make_unique<SpecHashSet<OrecL>>(kBuckets); });
  sweep("orec-full-g", [] { return std::make_unique<TmHashSet<OrecG>>(kBuckets); });
  sweep("orec-full-l", [] { return std::make_unique<TmHashSet<OrecL>>(kBuckets); });

  bench::PrintThroughputFigure(title, threads, series);
}

}  // namespace
}  // namespace spectm

int main() {
  spectm::RunPanel("Figure 7(a): hash table, 64k values, 16k buckets, 90% lookups", 90);
  spectm::RunPanel("Figure 7(b): hash table, 64k values, 16k buckets, 10% lookups", 10);
  return 0;
}
