// Adaptive validation engine ablation (valstrategy.h): fixed strategies
// (incremental / counter-skip / bloom) vs the EWMA-adaptive engine, on the two
// layouts whose full transactions pay per-read O(read-set) revalidation — the
// local-clock orec family (§4.1's "-l" cost) and the counter-validated val layout
// (Figure 5's dominant cost).
//
// Three workloads over a hash table with deliberately long chains (1024 buckets,
// 16k keys => ~8-node chains, so full-transaction read sets are large enough for
// validation strategy to matter):
//   read-heavy   90% lookups — counter-skip country; also the "no regression vs
//                always-incremental" acceptance sweep
//   write-heavy  10% lookups — constant counter movement; bloom country
//   phase-shift  alternating 25 ms RO bursts (95% lookups) and RW bursts (5%) —
//                the workload the EWMA switch exists for
//
// Besides the multi-threaded throughput cells, each (family, strategy) row runs
// a deterministic single-threaded probe pass (see MeasureProbes) whose ValProbe
// deltas are emitted as evidence columns: counter_skips / bloom_skips /
// validation_walks prove the row's mechanism actually fires, and the adaptive
// rows additionally prove the EWMA switch transitions (strategy_switches > 0).
//
// Output: text tables plus BENCH_adaptive_val.json (override with --json <path>
// or SPECTM_BENCH_JSON) through the standard JSON pipeline (bench/README.md).
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/set_bench.h"
#include "src/common/health.h"
#include "src/structures/hash_tm_full.h"
#include "src/tm/orec.h"
#include "src/tm/serial.h"
#include "src/tm/valstrategy.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

constexpr std::size_t kBuckets = 1024;
constexpr std::uint64_t kKeyRange = 16384;
constexpr int kPhaseMs = 25;
constexpr int kRoPhaseLookupPct = 95;
constexpr int kRwPhaseLookupPct = 5;

struct WorkloadSpec {
  const char* name;
  int lookup_pct;  // -1 => phase-shifting mix
};

constexpr WorkloadSpec kWorkloads[] = {
    {"read-heavy", 90},
    {"write-heavy", 10},
    {"phase-shift", -1},
};

int PhaseLookupPct(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  return (elapsed / kPhaseMs) % 2 == 0 ? kRoPhaseLookupPct : kRwPhaseLookupPct;
}

// One timed cell for the phase-shifting workload: every worker flips between the
// RO and RW mixes on a shared wall-clock schedule (re-checked every 32 ops), so
// all threads burst together and the abort-rate EWMA actually sees phases. The
// cell machinery itself is the shared MeasureCellWithMix.
template <typename MakeSet>
bench::CellResult MeasurePhaseCell(const MakeSet& make_set, const WorkloadConfig& cfg,
                                   int threads) {
  const auto phase_start = std::chrono::steady_clock::now();
  thread_local int lookup_pct = kRoPhaseLookupPct;
  return bench::MeasureCellWithMix(make_set, cfg, threads,
                                   [&](std::uint64_t ops) {
                                     if (ops % 32 == 0) {
                                       lookup_pct = PhaseLookupPct(phase_start);
                                     }
                                     return lookup_pct;
                                   });
}

struct ProbeDeltas {
  std::uint64_t counter_skips = 0;
  std::uint64_t bloom_skips = 0;
  std::uint64_t validation_walks = 0;
  std::uint64_t strategy_switches = 0;
};

// Bloom signature of a family slot: the metadata word the engines hash — the
// (shared-table) orec for orec layouts, the value word itself for the val layout.
template <typename Family, typename = void>
struct SlotBloom {
  static Bloom128 Of(typename Family::Slot* s) {
    return AddrBloom128(&s->word);
  }
};
template <typename Family>
struct SlotBloom<Family, std::void_t<typename Family::Layout>> {
  static Bloom128 Of(typename Family::Slot* s) {
    return AddrBloom128(&Family::Layout::OrecOf(*s));
  }
};

// Deterministic probe pass (ValProbe counters are thread-local, so the timed
// cells' worker counts are unreachable — and on a 1-core container, scheduler-
// driven interleaving makes probabilistic evidence flaky). Each step exercises
// one mechanism the columns claim, exactly like the unit tests do:
//   1. a quiet multi-read transaction  -> counter_skips (stable-counter skip)
//   2. a bloom-disjoint single-op write between two reads -> bloom_skips under
//      the bloom strategy (other strategies walk: validation_walks)
//   3. (adaptive rows) an abort burst then a quiet run -> the EWMA crosses its
//      bands and strategy_switches records the transitions
template <typename Family>
ProbeDeltas MeasureProbes(bool adaptive_transitions) {
  using Probe = typename Family::Full::Probe;
  using FullTx = typename Family::FullTx;
  std::vector<typename Family::Slot> pool(66);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    Family::RawWrite(&pool[i], EncodeInt(i + 1));
  }
  typename Family::Slot* a = &pool[64];
  typename Family::Slot* b = &pool[65];
  // A write target whose bloom misses {a, b}, so the bloom pre-filter can prove
  // disjointness (64 candidates make a miss essentially impossible; if every one
  // collides the step degrades to a walk and the column honestly reads 0).
  Bloom128 read_bloom = SlotBloom<Family>::Of(a);
  read_bloom |= SlotBloom<Family>::Of(b);
  typename Family::Slot* disjoint = &pool[0];
  for (std::size_t i = 0; i < 64; ++i) {
    if (!SlotBloom<Family>::Of(&pool[i]).Intersects(read_bloom)) {
      disjoint = &pool[i];
      break;
    }
  }

  const typename Probe::Counters start_counters = Probe::Get();
  // (1) stable counter: second read and commit skip the walk.
  {
    FullTx tx;
    do {
      tx.Start();
      tx.Read(a);
      tx.Read(b);
    } while (!tx.Commit());
  }
  // (2) moved-but-disjoint counter: the single-op write bumps the domain counter
  // between the two reads; the bloom strategy pre-filters it, others walk.
  {
    FullTx tx;
    do {
      tx.Start();
      tx.Read(a);
      Family::SingleWrite(disjoint, EncodeInt(7));
      tx.Read(b);
    } while (!tx.Commit());
  }
  // (3) EWMA band crossings: user aborts are genuine abort-EWMA events, so a
  // burst of them walks the adaptive engine into the incremental band and a
  // quiet commit run decays it back to counter-skip — each band edge crossed at
  // a Start() records a strategy switch.
  if (adaptive_transitions) {
    for (int i = 0; i < 64; ++i) {
      FullTx tx;
      tx.Start();
      tx.Read(a);
      tx.AbortTx();
      tx.Commit();
    }
    for (int i = 0; i < 256; ++i) {
      FullTx tx;
      do {
        tx.Start();
        tx.Read(a);
      } while (!tx.Commit());
    }
  }
  const typename Probe::Counters end_counters = Probe::Get();

  ProbeDeltas d;
  d.counter_skips = end_counters.counter_skips - start_counters.counter_skips;
  d.bloom_skips = end_counters.bloom_skips - start_counters.bloom_skips;
  d.validation_walks = end_counters.validation_walks - start_counters.validation_walks;
  d.strategy_switches =
      end_counters.strategy_switches - start_counters.strategy_switches;
  return d;
}

struct Row {
  std::string strategy;
  bench::CellResult result;
  ProbeDeltas probes;
  bool has_probes = true;
};

template <typename Family>
Row MeasureFamily(const char* strategy, const WorkloadSpec& wl, int threads) {
  auto make_set = [] { return std::make_unique<TmHashSet<Family>>(kBuckets); };
  WorkloadConfig cfg;
  cfg.key_range = kKeyRange;
  cfg.lookup_pct = wl.lookup_pct < 0 ? kRoPhaseLookupPct : wl.lookup_pct;

  Row row;
  row.strategy = strategy;
  row.result = wl.lookup_pct < 0 ? MeasurePhaseCell(make_set, cfg, threads)
                                 : bench::MeasureCellDetailed(make_set, cfg, threads);
  // The passive baseline (OrecL) deliberately carries zero instrumentation, so
  // emitting all-zero probe columns for it would read as "never validates";
  // mark its probes absent instead.
  row.has_probes = Family::kValMode != ValMode::kPassive;
  if (row.has_probes) {
    row.probes = MeasureProbes<Family>(std::string(strategy) == "adaptive");
  }
  return row;
}

void EmitGroup(JsonReport& report, const char* variant, const char* clock,
               const WorkloadSpec& wl, int threads, const std::vector<Row>& rows) {
  std::printf("\n%s — %s (hash table, %zu buckets, %llu keys, %d threads)\n", variant,
              wl.name, kBuckets, static_cast<unsigned long long>(kKeyRange), threads);
  TextTable table({"strategy", "Mops/s", "abort%", "ctr-skips", "bloom-skips",
                   "walks", "strat-switches"});
  for (const Row& row : rows) {
    BenchRecord r;
    r.variant = variant;
    r.clock = clock;
    r.workload = wl.name;
    r.strategy = row.strategy;
    r.threads = threads;
    r.lookup_pct = wl.lookup_pct;
    r.ops_per_sec = row.result.ops_per_sec;
    r.abort_rate = row.result.abort_rate;
    r.commits = row.result.commits;
    r.aborts = row.result.aborts;
    r.duration_s = row.result.duration_s;
    r.has_probes = row.has_probes;
    r.counter_skips = row.probes.counter_skips;
    r.bloom_skips = row.probes.bloom_skips;
    r.validation_walks = row.probes.validation_walks;
    r.strategy_switches = row.probes.strategy_switches;
    report.Add(r);

    auto probe_cell = [&](std::uint64_t v) {
      return row.has_probes ? std::to_string(v) : std::string("-");
    };
    table.AddRow({row.strategy, TextTable::Num(row.result.ops_per_sec / 1e6, 3),
                  TextTable::Num(row.result.abort_rate * 100.0, 2),
                  probe_cell(row.probes.counter_skips),
                  probe_cell(row.probes.bloom_skips),
                  probe_cell(row.probes.validation_walks),
                  probe_cell(row.probes.strategy_switches)});
  }
  std::fputs(table.ToString().c_str(), stdout);
}

// --- Pathological-contention section (two-phase contention manager) -----------------
//
// A deterministic livelock script, same single-threaded probe-pass idiom as
// MeasureProbes: an ADVERSARY LOCK planted on the victim's orec makes every
// optimistic attempt conflict-abort — the shape phase 2 of the contention
// manager (src/tm/serial.h) exists for. The adversary retreats only once the
// CM answers the storm (first escalation observed), or — with the watchdog
// disabled via SetSerialEscalationStreak(0) — only after a fixed budget of
// 4x the default threshold. So the escalation-on row's max_abort_streak reads
// "what the CM bounds" (threshold + the one serial attempt that still hit the
// planted lock), while the escalation-off row's reads "how long the adversary
// persisted" — it scales with the storm, i.e. is unbounded in the storm
// length, which is the paper's livelock argument in one column.
struct PathCell {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t escalations = 0;
  std::uint64_t serial_commits = 0;
  std::uint64_t max_abort_streak = 0;
  std::uint64_t backoff_spins = 0;
  // Health-watchdog deltas; all zero unless built with SPECTM_HEALTH (the
  // disabled probe is a constexpr all-zero, so no gating is needed here).
  std::uint64_t health_samples = 0;
  std::uint64_t health_storms = 0;
  std::uint64_t degrade_enters = 0;
  std::uint64_t degrade_exits = 0;
  std::uint64_t throttled_escalations = 0;
};

PathCell RunPathologicalPass(bool escalation_on) {
  using F = OrecLAdaptive;
  using Tag = OrecLAdaptTag;
  using Probe = CmProbe<Tag>;

  SetSerialEscalationStreak(escalation_on ? kSerialEscalationStreak : 0);
  static F::Slot victim;
  F::RawWrite(&victim, EncodeInt(1));
  std::atomic<Word>& orec = F::Layout::OrecOf(victim);
  TxDesc adversary;  // owns the planted lock; never runs a transaction itself

  constexpr int kStorms = 3;
  const std::uint64_t adversary_budget = 4 * kSerialEscalationStreak;
  Probe::Reset();
  const typename Probe::Counters start = Probe::Get();
  const health::Counters hstart = health::HealthProbe<Tag>::Get();
  PathCell cell;

  for (int storm = 0; storm < kStorms; ++storm) {
    const std::uint64_t esc_base = Probe::Get().escalations;
    const Word saved = orec.load(std::memory_order_relaxed);
    orec.store(MakeOrecLocked(&adversary), std::memory_order_release);
    bool planted = true;
    std::uint64_t failed_attempts = 0;
    while (true) {
      // The budget fallback also applies with escalation on: an SPECTM_HEALTH
      // build may degrade mid-storm and THROTTLE the escalation this loop is
      // waiting for (by design — the throttle delta is the row's evidence), so
      // the adversary must eventually relent on attempts alone.
      const bool answered = escalation_on
                                ? (Probe::Get().escalations > esc_base ||
                                   failed_attempts >= adversary_budget)
                                : failed_attempts >= adversary_budget;
      if (planted && answered) {
        orec.store(saved, std::memory_order_release);
        planted = false;
      }
      F::FullTx tx;
      tx.Start();
      tx.Read(&victim);
      tx.Write(&victim, EncodeInt(static_cast<std::uint64_t>(storm) + 2));
      if (tx.Commit()) {
        ++cell.commits;
        break;
      }
      ++cell.aborts;
      ++failed_attempts;
    }
    // Quiet commits between storms drain the post-serial cooldown, so every
    // storm faces the 1x threshold (the steady-state per-storm bound, not the
    // hysteresis-doubled one).
    for (std::uint32_t i = 0; i < kSerialCooldownCommits; ++i) {
      F::FullTx tx;
      do {
        tx.Start();
        tx.Read(&victim);
      } while (!tx.Commit());
      ++cell.commits;
    }
  }

  const typename Probe::Counters end = Probe::Get();
  cell.escalations = end.escalations - start.escalations;
  cell.serial_commits = end.serial_commits - start.serial_commits;
  cell.max_abort_streak = end.max_abort_streak;
  cell.backoff_spins = end.backoff_spins - start.backoff_spins;
  const health::Counters hend = health::HealthProbe<Tag>::Get();
  cell.health_samples = hend.samples - hstart.samples;
  cell.health_storms = hend.storms - hstart.storms;
  cell.degrade_enters = hend.degrade_enters - hstart.degrade_enters;
  cell.degrade_exits = hend.degrade_exits - hstart.degrade_exits;
  cell.throttled_escalations =
      hend.throttled_escalations - hstart.throttled_escalations;
  return cell;
}

void RunPathologicalSection(JsonReport& report) {
  std::printf(
      "\norec-full-l — pathological (planted adversary lock, %d storms, "
      "escalation threshold %llu)\n",
      3, static_cast<unsigned long long>(kSerialEscalationStreak));
  std::vector<std::string> header{"cm",           "commits",    "aborts",
                                  "escalations",  "serial-commits",
                                  "max-streak",   "backoff-spins"};
  if (health::kEnabled) {
    header.insert(header.end(), {"hwin", "degr-in", "thr-esc"});
  }
  TextTable table(std::move(header));
  struct {
    const char* name;
    bool on;
  } rows[] = {{"escalation-on", true}, {"escalation-off", false}};
  for (const auto& spec : rows) {
    const PathCell cell = RunPathologicalPass(spec.on);
    BenchRecord r;
    r.variant = "orec-full-l";
    r.clock = "local";
    r.workload = "pathological";
    r.strategy = spec.name;
    r.threads = 1;
    r.lookup_pct = 0;
    r.commits = cell.commits;
    r.aborts = cell.aborts;
    r.abort_rate = static_cast<double>(cell.aborts) /
                   static_cast<double>(cell.commits + cell.aborts);
    r.has_cm = true;
    r.escalations = cell.escalations;
    r.serial_commits = cell.serial_commits;
    r.max_abort_streak = cell.max_abort_streak;
    r.backoff_spins = cell.backoff_spins;
    r.has_health = health::kEnabled;
    r.health_samples = cell.health_samples;
    r.health_storms = cell.health_storms;
    r.degrade_enters = cell.degrade_enters;
    r.degrade_exits = cell.degrade_exits;
    r.throttled_escalations = cell.throttled_escalations;
    report.Add(r);
    std::vector<std::string> row{spec.name, std::to_string(cell.commits),
                                 std::to_string(cell.aborts),
                                 std::to_string(cell.escalations),
                                 std::to_string(cell.serial_commits),
                                 std::to_string(cell.max_abort_streak),
                                 std::to_string(cell.backoff_spins)};
    if (health::kEnabled) {
      row.insert(row.end(), {std::to_string(cell.health_samples),
                             std::to_string(cell.degrade_enters),
                             std::to_string(cell.throttled_escalations)});
    }
    table.AddRow(std::move(row));
  }
  SetSerialEscalationStreak(kSerialEscalationStreak);  // restore the default
  std::fputs(table.ToString().c_str(), stdout);
}

bool Run(const std::string& json_path) {
  const std::vector<int> threads = bench::ThreadSweep();
  const int max_threads = threads.back();
  JsonReport report("adaptive_val");

  for (const WorkloadSpec& wl : kWorkloads) {
    // Local-clock orec family: OrecL (kPassive — no writer summary at all) is the
    // always-incremental baseline the acceptance sweep compares against.
    std::vector<Row> orec_rows;
    orec_rows.push_back(MeasureFamily<OrecL>("incremental", wl, max_threads));
    orec_rows.push_back(
        MeasureFamily<OrecLCounterSkip>("counter-skip", wl, max_threads));
    orec_rows.push_back(MeasureFamily<OrecLBloom>("bloom", wl, max_threads));
    orec_rows.push_back(MeasureFamily<OrecLAdaptive>("adaptive", wl, max_threads));
    EmitGroup(report, "orec-full-l", "local", wl, max_threads, orec_rows);

    // Counter-validated val layout: same strategy sweep over one protocol.
    std::vector<Row> val_rows;
    val_rows.push_back(MeasureFamily<ValIncremental>("incremental", wl, max_threads));
    val_rows.push_back(MeasureFamily<ValCounterSkip>("counter-skip", wl, max_threads));
    val_rows.push_back(MeasureFamily<ValBloom>("bloom", wl, max_threads));
    val_rows.push_back(MeasureFamily<ValAdaptive>("adaptive", wl, max_threads));
    EmitGroup(report, "val-full", "none", wl, max_threads, val_rows);
  }

  RunPathologicalSection(report);

  return json_path.empty() || report.WriteFile(json_path);
}

}  // namespace
}  // namespace spectm

int main(int argc, char** argv) {
  const std::string json_path =
      spectm::JsonPathFromArgs(argc, argv, "BENCH_adaptive_val.json");
  return spectm::Run(json_path) ? 0 : 1;
}
