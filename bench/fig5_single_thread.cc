// Figure 5: "Single thread performance of SpecTM" — normalized execution time of
// short transactions over a padded array, for array sizes half the L1 / L2 / L3
// cache (128 / 1024 / 32768 cache-line-aligned elements).
//
// Transaction kinds (as in the paper): Tx_Single_Read; read-only transactions over 2
// and 4 consecutive items; read-write transactions over 1, 2 and 4 consecutive
// items. Read-only results are normalized to plain loads; read-write results to one
// hardware CAS per item ("sequential code that performs a single-word CAS
// instruction on each of the 1, 2, and 4 items").
//
// Variants: orec-full-g (BaseTM), val-full (per-read value revalidation — the paper
// notes its read-set validation "dominates execution time"), orec-short-g,
// tvar-short-g, val-short. Expected shape: 3x–10x for BaseTM; short variants close
// to 1x, with val-short cheapest.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <string>
#include <vector>

#include "src/benchsupport/table.h"
#include "src/common/cacheline.h"
#include "src/common/rng.h"
#include "src/tm/config.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

inline void DoNotOptimize(Word v) { asm volatile("" : : "r"(v) : "memory"); }

int Iterations() {
  if (const char* env = std::getenv("SPECTM_BENCH_ITERS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) {
      return parsed;
    }
  }
  return 400000;
}

// Pre-generated random start indices shared by every variant so index-generation
// cost and access pattern are identical across the comparison.
std::vector<std::uint32_t> MakeIndices(std::uint32_t array_size) {
  std::vector<std::uint32_t> idx(65536);
  Xorshift128Plus rng(0xf15);
  for (auto& i : idx) {
    i = static_cast<std::uint32_t>(rng.NextBounded(array_size));
  }
  return idx;
}

template <typename Body>
double MeasureNs(int iters, const Body& body) {
  // Warm-up pass to fault in the array and warm the caches.
  for (int i = 0; i < iters / 8; ++i) {
    body(i);
  }
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    body(i);
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() / iters;
}

// One cache-line-aligned transactional word per element (the paper pads to L2 line
// boundaries so that array size controls cache residency exactly).
template <typename Family>
struct PaddedArray {
  std::vector<CacheAligned<typename Family::Slot>> slots;

  explicit PaddedArray(std::uint32_t n) : slots(n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      Family::RawWrite(&slots[i].value, EncodeInt(i + 1));
    }
  }
  typename Family::Slot* At(std::uint32_t i) { return &slots[i].value; }
};

struct SeqArray {
  std::vector<CacheAligned<std::atomic<Word>>> slots;

  explicit SeqArray(std::uint32_t n) : slots(n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      slots[i].value.store(EncodeInt(i + 1), std::memory_order_relaxed);
    }
  }
};

enum class OpKind { kSingleRead, kRo2, kRo4, kRw1, kRw2, kRw4 };

const char* OpName(OpKind op) {
  switch (op) {
    case OpKind::kSingleRead:
      return "single-read";
    case OpKind::kRo2:
      return "RO-2";
    case OpKind::kRo4:
      return "RO-4";
    case OpKind::kRw1:
      return "RW-1";
    case OpKind::kRw2:
      return "RW-2";
    case OpKind::kRw4:
      return "RW-4";
  }
  return "?";
}

int OpWidth(OpKind op) {
  switch (op) {
    case OpKind::kSingleRead:
    case OpKind::kRw1:
      return 1;
    case OpKind::kRo2:
    case OpKind::kRw2:
      return 2;
    case OpKind::kRo4:
    case OpKind::kRw4:
      return 4;
  }
  return 1;
}

bool IsReadOnly(OpKind op) {
  return op == OpKind::kSingleRead || op == OpKind::kRo2 || op == OpKind::kRo4;
}

// Sequential baselines: plain loads for read shapes, one hardware CAS per item for
// read-write shapes.
double MeasureSeq(SeqArray& arr, const std::vector<std::uint32_t>& indices, OpKind op,
                  int iters) {
  const std::uint32_t n = static_cast<std::uint32_t>(arr.slots.size());
  const int width = OpWidth(op);
  if (IsReadOnly(op)) {
    return MeasureNs(iters, [&](int i) {
      const std::uint32_t base = indices[static_cast<std::size_t>(i) % indices.size()];
      Word sum = 0;
      for (int j = 0; j < width; ++j) {
        sum += arr.slots[(base + static_cast<std::uint32_t>(j)) % n].value.load(
            std::memory_order_acquire);
      }
      DoNotOptimize(sum);
    });
  }
  return MeasureNs(iters, [&](int i) {
    const std::uint32_t base = indices[static_cast<std::size_t>(i) % indices.size()];
    for (int j = 0; j < width; ++j) {
      auto& word = arr.slots[(base + static_cast<std::uint32_t>(j)) % n].value;
      Word cur = word.load(std::memory_order_relaxed);
      word.compare_exchange_strong(cur, cur, std::memory_order_acq_rel,
                                   std::memory_order_relaxed);
    }
  });
}

// Short-transaction variants (orec-short-g, tvar-short-g, val-short).
template <typename Family>
double MeasureShort(PaddedArray<Family>& arr, const std::vector<std::uint32_t>& indices,
                    OpKind op, int iters) {
  const std::uint32_t n = static_cast<std::uint32_t>(arr.slots.size());
  const int width = OpWidth(op);
  if (op == OpKind::kSingleRead) {
    return MeasureNs(iters, [&](int i) {
      const std::uint32_t base = indices[static_cast<std::size_t>(i) % indices.size()];
      DoNotOptimize(Family::SingleRead(arr.At(base)));
    });
  }
  if (IsReadOnly(op)) {
    return MeasureNs(iters, [&](int i) {
      const std::uint32_t base = indices[static_cast<std::size_t>(i) % indices.size()];
      typename Family::ShortTx t;
      Word sum = 0;
      for (int j = 0; j < width; ++j) {
        sum += t.ReadRo(arr.At((base + static_cast<std::uint32_t>(j)) % n));
      }
      DoNotOptimize(sum);
      DoNotOptimize(static_cast<Word>(t.ValidateRo()));
    });
  }
  return MeasureNs(iters, [&](int i) {
    const std::uint32_t base = indices[static_cast<std::size_t>(i) % indices.size()];
    typename Family::ShortTx t;
    Word vals[4];
    for (int j = 0; j < width; ++j) {
      vals[j] = t.ReadRw(arr.At((base + static_cast<std::uint32_t>(j)) % n));
    }
    switch (width) {
      case 1:
        t.CommitRw({vals[0]});
        break;
      case 2:
        t.CommitRw({vals[0], vals[1]});
        break;
      default:
        t.CommitRw({vals[0], vals[1], vals[2], vals[3]});
        break;
    }
  });
}

// Full-transaction variants (orec-full-g = BaseTM, val-full).
template <typename Family>
double MeasureFull(PaddedArray<Family>& arr, const std::vector<std::uint32_t>& indices,
                   OpKind op, int iters) {
  const std::uint32_t n = static_cast<std::uint32_t>(arr.slots.size());
  const int width = OpWidth(op);
  const bool read_only = IsReadOnly(op);
  return MeasureNs(iters, [&](int i) {
    const std::uint32_t base = indices[static_cast<std::size_t>(i) % indices.size()];
    typename Family::FullTx tx;
    do {
      tx.Start();
      Word sum = 0;
      for (int j = 0; j < width; ++j) {
        auto* slot = arr.At((base + static_cast<std::uint32_t>(j)) % n);
        const Word v = tx.Read(slot);
        if (!read_only) {
          tx.Write(slot, v);
        }
        sum += v;
      }
      DoNotOptimize(sum);
    } while (!tx.Commit());
  });
}

void RunForSize(std::uint32_t array_size, const char* cache_note) {
  const int iters = Iterations();
  const auto indices = MakeIndices(array_size);

  SeqArray seq_arr(array_size);
  PaddedArray<OrecG> orec_arr(array_size);
  PaddedArray<TvarG> tvar_arr(array_size);
  PaddedArray<Val> val_arr(array_size);

  std::printf("\nFigure 5: single-thread normalized execution time — %u elements (%s)\n",
              array_size, cache_note);
  TextTable table({"op", "sequential", "orec-full-g", "val-full", "orec-short-g",
                   "tvar-short-g", "val-short"});
  for (OpKind op : {OpKind::kSingleRead, OpKind::kRo2, OpKind::kRo4, OpKind::kRw1,
                    OpKind::kRw2, OpKind::kRw4}) {
    const double seq_ns = MeasureSeq(seq_arr, indices, op, iters);
    const double full_orec = MeasureFull<OrecG>(orec_arr, indices, op, iters);
    const double full_val = MeasureFull<Val>(val_arr, indices, op, iters);
    const double short_orec = MeasureShort<OrecG>(orec_arr, indices, op, iters);
    const double short_tvar = MeasureShort<TvarG>(tvar_arr, indices, op, iters);
    const double short_val = MeasureShort<Val>(val_arr, indices, op, iters);
    table.AddRow({OpName(op), TextTable::Num(seq_ns, 1) + "ns",
                  TextTable::Num(full_orec / seq_ns, 2),
                  TextTable::Num(full_val / seq_ns, 2),
                  TextTable::Num(short_orec / seq_ns, 2),
                  TextTable::Num(short_tvar / seq_ns, 2),
                  TextTable::Num(short_val / seq_ns, 2)});
  }
  std::fputs(table.ToString().c_str(), stdout);
}

}  // namespace
}  // namespace spectm

int main() {
  spectm::RunForSize(128, "half of a 32KB L1 cache");      // Figure 5(a)
  spectm::RunForSize(1024, "half of a 256KB L2 cache");    // Figure 5(b)
  spectm::RunForSize(32768, "half of an 8MB L3 cache");    // Figure 5(c)
  return 0;
}
