#!/usr/bin/env python3
"""Offline markdown link checker for the docs CI job.

Checks every inline link in the given markdown files:
  * relative file links must resolve to an existing file or directory
    (relative to the containing file);
  * fragment links (`#anchor`, `file.md#anchor`) must name a heading that
    exists in the target file, using GitHub's heading-slug rules;
  * external schemes (http/https/mailto) are skipped — CI runners must not
    need network access for a docs check.

Usage: check_md_links.py FILE.md [FILE.md ...]
Exits non-zero listing every broken link.
"""

import re
import sys
from pathlib import Path

INLINE_LINK = re.compile(r"(?<!\!)\[(?P<text>[^\]]*)\]\((?P<target>[^)\s]+)\)")
FENCE = re.compile(r"^(```|~~~)")
HEADING = re.compile(r"^#{1,6}\s+(?P<title>.+?)\s*#*\s*$")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def strip_fenced_blocks(lines):
    out, in_fence = [], False
    for line in lines:
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else line)
    return out


def github_slug(title):
    # GitHub's anchor algorithm: lowercase, drop everything but word chars,
    # spaces and hyphens, then spaces -> hyphens. Inline code/emphasis markers
    # are dropped with the punctuation.
    slug = title.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def headings_of(path):
    slugs, counts = set(), {}
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError:
        return slugs
    for line in strip_fenced_blocks(lines):
        m = HEADING.match(line)
        if not m:
            continue
        slug = github_slug(m.group("title"))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(md_path):
    errors = []
    lines = md_path.read_text(encoding="utf-8").splitlines()
    for lineno, line in enumerate(strip_fenced_blocks(lines), start=1):
        for m in INLINE_LINK.finditer(line):
            target = m.group("target")
            if target.startswith(SKIP_SCHEMES):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = (md_path.parent / path_part).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{md_path}:{lineno}: broken link '{target}' "
                        f"(no such file: {resolved})")
                    continue
                anchor_host = resolved
            else:
                anchor_host = md_path
            if fragment:
                if anchor_host.is_dir():
                    errors.append(
                        f"{md_path}:{lineno}: fragment on a directory link "
                        f"'{target}'")
                elif fragment.lower() not in headings_of(anchor_host):
                    errors.append(
                        f"{md_path}:{lineno}: broken anchor '#{fragment}' "
                        f"in {anchor_host}")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_errors = []
    for name in argv[1:]:
        path = Path(name)
        if not path.exists():
            all_errors.append(f"{name}: file to check does not exist")
            continue
        all_errors.extend(check_file(path))
    for err in all_errors:
        print(err, file=sys.stderr)
    checked = len(argv) - 1
    if not all_errors:
        print(f"check_md_links: {checked} file(s) OK")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
