// Version-management policy units: clock monotonicity, per-domain isolation, and
// the local policy's per-orec version arithmetic.
#include "src/tm/clock.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "src/tm/orec.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

TEST(GlobalClock, CommitVersionsAreUniqueAndMonotone) {
  using Clock = GlobalClockPolicy<struct ClockTestTagA>;
  const Word first = Clock::NextCommitVersion();
  const Word second = Clock::NextCommitVersion();
  EXPECT_EQ(second, first + 1);
  EXPECT_GE(Clock::Sample(), second);
}

TEST(GlobalClock, DomainsAreIsolated) {
  using ClockA = GlobalClockPolicy<struct ClockTestTagB>;
  using ClockB = GlobalClockPolicy<struct ClockTestTagC>;
  const Word a0 = ClockA::Sample();
  ClockB::NextCommitVersion();
  ClockB::NextCommitVersion();
  EXPECT_EQ(ClockA::Sample(), a0) << "clock domains must not share state";
}

// Uniqueness under concurrency is a NAIVE-policy guarantee (fetch_add): GV4 commits
// may deliberately share timestamps (pass-on-failure), which clock_gv4_test covers.
TEST(GlobalClock, ConcurrentDrawsNeverCollide) {
  using Clock = GlobalClockNaive<struct ClockTestTagD>;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::vector<Word>> drawn(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      drawn[static_cast<std::size_t>(t)].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        drawn[static_cast<std::size_t>(t)].push_back(Clock::NextCommitVersion());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // Uniqueness: total distinct values == total draws (they form a permutation of a
  // contiguous range, so max - min + 1 == count suffices with per-thread sorting).
  Word min_v = ~Word{0}, max_v = 0;
  std::size_t count = 0;
  for (const auto& v : drawn) {
    for (Word w : v) {
      min_v = std::min(min_v, w);
      max_v = std::max(max_v, w);
      ++count;
    }
    // Per-thread draws must be strictly increasing.
    for (std::size_t i = 1; i < v.size(); ++i) {
      ASSERT_LT(v[i - 1], v[i]);
    }
  }
  EXPECT_EQ(max_v - min_v + 1, count);
}

TEST(LocalClock, ReleaseAdvancesPerOrec) {
  using Clock = LocalClockPolicy<struct ClockTestTagE>;
  EXPECT_FALSE(Clock::kHasGlobalClock);
  // version 7 released -> version 8, independent of any shared state.
  EXPECT_EQ(Clock::ReleaseVersion(0, MakeOrecVersion(7)), 8u);
  EXPECT_EQ(Clock::ReleaseVersion(12345, MakeOrecVersion(0)), 1u);
}

TEST(GlobalClockRelease, UsesCommitTimestamp) {
  using Clock = GlobalClockPolicy<struct ClockTestTagF>;
  EXPECT_TRUE(Clock::kHasGlobalClock);
  EXPECT_EQ(Clock::ReleaseVersion(42, MakeOrecVersion(7)), 42u)
      << "global-clock releases ignore the old per-orec version";
}

}  // namespace
}  // namespace spectm
