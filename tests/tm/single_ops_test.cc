// Linearizability of single-operation transactions (§2.2): "the Tx_Single_*
// operations are linearizable and so if read r1 sees a value written by a
// transaction TxA then a subsequent read r2 must see all TxA's writes."
//
// The mechanism behind the property: a committing transaction holds each location's
// lock until that location's own release store, so a single read can never observe
// the pre-commit value of one location after having observed the post-commit value
// of another — it waits on the lock instead.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/tm/config.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

template <typename Family>
class SingleOpLinearizability : public ::testing::Test {};

using AllFamilies = ::testing::Types<OrecG, OrecL, TvarG, TvarL, Val, ValGlobalCounter,
                                     ValPerThreadCounter>;
TYPED_TEST_SUITE(SingleOpLinearizability, AllFamilies);

// Writers atomically set {a, b} to the same increasing value via short RW2
// transactions. A reader performing r1 = read(a) THEN r2 = read(b) must never see
// r2 < r1: if r1 already shows commit k, commit k's write to b must be visible (or
// the read must wait on b's lock).
TYPED_TEST(SingleOpLinearizability, SubsequentReadSeesWholeCommit) {
  using F = TypeParam;
  typename F::Slot a, b;
  F::SingleWrite(&a, EncodeInt(0));
  F::SingleWrite(&b, EncodeInt(0));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> reads_done{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t ra = DecodeInt(F::SingleRead(&a));
        const std::uint64_t rb = DecodeInt(F::SingleRead(&b));
        if (rb < ra) {
          violations.fetch_add(1);
        }
        ++local;
      }
      reads_done.fetch_add(local);
    });
  }

  std::vector<std::thread> writers;
  std::atomic<std::uint64_t> next{1};
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < 30000; ++i) {
        const std::uint64_t k = next.fetch_add(1, std::memory_order_relaxed);
        while (true) {
          typename F::ShortTx t;
          // Write a FIRST: the dangerous interleaving is a visible before b.
          const Word va = t.ReadRw(&a);
          t.ReadRw(&b);
          if (!t.Valid()) {
            t.Abort();
            continue;
          }
          // Only move values forward so the reader invariant is monotone.
          const std::uint64_t cur = DecodeInt(va);
          const std::uint64_t val = k > cur ? k : cur;
          t.CommitRw({EncodeInt(val), EncodeInt(val)});
          break;
        }
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(reads_done.load(), 0u);
}

// Single writes must be immediately visible to single reads on another thread
// (message passing through a transactional word).
TYPED_TEST(SingleOpLinearizability, MessagePassing) {
  using F = TypeParam;
  typename F::Slot flag, data;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> bad{0};

  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (DecodeInt(F::SingleRead(&flag)) == 1) {
        if (DecodeInt(F::SingleRead(&data)) != 42) {
          bad.fetch_add(1);
        }
        break;
      }
    }
  });
  F::SingleWrite(&data, EncodeInt(42));
  F::SingleWrite(&flag, EncodeInt(1));
  done.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_EQ(bad.load(), 0u);
}

// SingleCas failure must report the actual current value (not a stale one).
TYPED_TEST(SingleOpLinearizability, FailedCasReturnsCurrentValue) {
  using F = TypeParam;
  typename F::Slot a;
  F::SingleWrite(&a, EncodeInt(10));
  const Word observed = F::SingleCas(&a, EncodeInt(99), EncodeInt(0));
  EXPECT_EQ(DecodeInt(observed), 10u);
  EXPECT_EQ(DecodeInt(F::SingleRead(&a)), 10u);
}

}  // namespace
}  // namespace spectm
