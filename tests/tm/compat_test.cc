// Exercises the paper-faithful Figure 2 facade, including a transcription of the
// paper's PopLeft (§2.2) and DCSS (§2.2) examples.
#include "src/tm/compat.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "src/tm/config.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

using compat::Ptr;
using compat::ToPtr;
using compat::ToWord;
using compat::TX_RECORD;

TEST(Compat, SingleOps) {
  Val::Slot s;
  EXPECT_EQ(compat::Tx_Single_Read(&s), nullptr);
  int dummy;
  compat::Tx_Single_Write(&s, &dummy);
  EXPECT_EQ(compat::Tx_Single_Read(&s), &dummy);
  int other;
  EXPECT_EQ(compat::Tx_Single_CAS(&s, &dummy, &other), static_cast<Ptr>(&dummy));
  EXPECT_EQ(compat::Tx_Single_Read(&s), &other);
}

TEST(Compat, RwShortTransaction) {
  Val::Slot a, b;
  compat::Tx_Single_Write(&a, ToPtr(EncodeInt(1)));
  compat::Tx_Single_Write(&b, ToPtr(EncodeInt(2)));

  TX_RECORD<> t;
  const Ptr va = compat::Tx_RW_R1(&t, &a);
  const Ptr vb = compat::Tx_RW_R2(&t, &b);
  ASSERT_TRUE(compat::Tx_RW_2_Is_Valid(&t));
  compat::Tx_RW_2_Commit(&t, vb, va);  // swap
  EXPECT_EQ(DecodeInt(ToWord(compat::Tx_Single_Read(&a))), 2u);
  EXPECT_EQ(DecodeInt(ToWord(compat::Tx_Single_Read(&b))), 1u);
}

TEST(Compat, RoShortTransaction) {
  Val::Slot a, b;
  compat::Tx_Single_Write(&a, ToPtr(EncodeInt(7)));
  compat::Tx_Single_Write(&b, ToPtr(EncodeInt(8)));
  TX_RECORD<> t;
  EXPECT_EQ(DecodeInt(ToWord(compat::Tx_RO_R1(&t, &a))), 7u);
  EXPECT_EQ(DecodeInt(ToWord(compat::Tx_RO_R2(&t, &b))), 8u);
  EXPECT_TRUE(compat::Tx_RO_2_Is_Valid(&t));
}

// The paper's DCSS function, transcribed nearly verbatim from §2.2.
bool PaperDcss(Val::Slot* a1, Val::Slot* a2, Ptr o1, Ptr o2, Ptr n1) {
  TX_RECORD<> t;
restart:
  t.Restart();
  if (compat::Tx_RO_R1(&t, a1) == o1 && compat::Tx_RO_R2(&t, a2) == o2 &&
      compat::Tx_Upgrade_RO_1_To_RW_1(&t)) {
    if (compat::Tx_RO_2_RW_1_Commit(&t, n1)) {
      return true;
    }
  } else if (compat::Tx_RO_2_Is_Valid(&t)) {
    return false;
  }
  goto restart;
}

TEST(Compat, PaperDcssSemantics) {
  Val::Slot a1, a2;
  compat::Tx_Single_Write(&a1, ToPtr(EncodeInt(1)));
  compat::Tx_Single_Write(&a2, ToPtr(EncodeInt(2)));

  EXPECT_TRUE(PaperDcss(&a1, &a2, ToPtr(EncodeInt(1)), ToPtr(EncodeInt(2)),
                        ToPtr(EncodeInt(42))));
  EXPECT_EQ(DecodeInt(ToWord(compat::Tx_Single_Read(&a1))), 42u);

  EXPECT_FALSE(PaperDcss(&a1, &a2, ToPtr(EncodeInt(1)), ToPtr(EncodeInt(2)),
                         ToPtr(EncodeInt(13))));
  EXPECT_EQ(DecodeInt(ToWord(compat::Tx_Single_Read(&a1))), 42u);
}

// The facade over an orec-based family behaves identically.
TEST(Compat, WorksOverOrecFamily) {
  OrecG::Slot a;
  compat::Tx_Single_Write<OrecG>(&a, ToPtr(EncodeInt(3)));
  TX_RECORD<OrecG> t;
  const Ptr v = compat::Tx_RW_R1<OrecG>(&t, &a);
  ASSERT_TRUE(compat::Tx_RW_1_Is_Valid<OrecG>(&t));
  compat::Tx_RW_1_Commit<OrecG>(&t, ToPtr(ToWord(v) + EncodeInt(1)));
  EXPECT_EQ(DecodeInt(ToWord(compat::Tx_Single_Read<OrecG>(&a))), 4u);
}

TEST(Compat, ConcurrentCompatIncrements) {
  Val::Slot counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      TX_RECORD<> rec;
      for (int i = 0; i < kPerThread; ++i) {
        while (true) {
          const Ptr v = compat::Tx_RW_R1(&rec, &counter);
          if (!compat::Tx_RW_1_Is_Valid(&rec)) {
            compat::Tx_RW_1_Abort(&rec);
            continue;
          }
          compat::Tx_RW_1_Commit(&rec, ToPtr(ToWord(v) + EncodeInt(1)));
          break;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(DecodeInt(ToWord(compat::Tx_Single_Read(&counter))),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace spectm
