// Exhaustive arity coverage for the Figure 2 facade: every numbered function
// (R1..R4, 1..4_Is_Valid, 1..4_Commit, 1..4_Abort, the RO_x_RW_y commit matrix, and
// all four upgrade combinations) executes against live data at least once.
#include <gtest/gtest.h>

#include "src/tm/compat.h"
#include "src/tm/config.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

using compat::Ptr;
using compat::ToPtr;
using compat::ToWord;
using compat::TX_RECORD;

class CompatArity : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i) {
      compat::Tx_Single_Write(&slots_[i], ToPtr(EncodeInt(static_cast<std::uint64_t>(i) + 1)));
    }
  }

  std::uint64_t Value(int i) {
    return DecodeInt(ToWord(compat::Tx_Single_Read(&slots_[i])));
  }

  Val::Slot slots_[4];
};

TEST_F(CompatArity, Rw1Through4CommitPaths) {
  {
    TX_RECORD<> t;
    const Ptr v1 = compat::Tx_RW_R1(&t, &slots_[0]);
    ASSERT_TRUE(compat::Tx_RW_1_Is_Valid(&t));
    compat::Tx_RW_1_Commit(&t, ToPtr(ToWord(v1) + EncodeInt(10)));
    EXPECT_EQ(Value(0), 11u);
  }
  {
    TX_RECORD<> t;
    compat::Tx_RW_R1(&t, &slots_[0]);
    compat::Tx_RW_R2(&t, &slots_[1]);
    ASSERT_TRUE(compat::Tx_RW_2_Is_Valid(&t));
    compat::Tx_RW_2_Commit(&t, ToPtr(EncodeInt(21)), ToPtr(EncodeInt(22)));
    EXPECT_EQ(Value(0), 21u);
    EXPECT_EQ(Value(1), 22u);
  }
  {
    TX_RECORD<> t;
    compat::Tx_RW_R1(&t, &slots_[0]);
    compat::Tx_RW_R2(&t, &slots_[1]);
    compat::Tx_RW_R3(&t, &slots_[2]);
    ASSERT_TRUE(compat::Tx_RW_3_Is_Valid(&t));
    compat::Tx_RW_3_Commit(&t, ToPtr(EncodeInt(31)), ToPtr(EncodeInt(32)),
                           ToPtr(EncodeInt(33)));
    EXPECT_EQ(Value(2), 33u);
  }
  {
    TX_RECORD<> t;
    compat::Tx_RW_R1(&t, &slots_[0]);
    compat::Tx_RW_R2(&t, &slots_[1]);
    compat::Tx_RW_R3(&t, &slots_[2]);
    compat::Tx_RW_R4(&t, &slots_[3]);
    ASSERT_TRUE(compat::Tx_RW_4_Is_Valid(&t));
    compat::Tx_RW_4_Commit(&t, ToPtr(EncodeInt(41)), ToPtr(EncodeInt(42)),
                           ToPtr(EncodeInt(43)), ToPtr(EncodeInt(44)));
    EXPECT_EQ(Value(0), 41u);
    EXPECT_EQ(Value(3), 44u);
  }
}

TEST_F(CompatArity, Rw1Through4AbortPaths) {
  {
    TX_RECORD<> t;
    compat::Tx_RW_R1(&t, &slots_[0]);
    compat::Tx_RW_1_Abort(&t);
    EXPECT_EQ(Value(0), 1u);
  }
  {
    TX_RECORD<> t;
    compat::Tx_RW_R1(&t, &slots_[0]);
    compat::Tx_RW_R2(&t, &slots_[1]);
    compat::Tx_RW_2_Abort(&t);
    EXPECT_EQ(Value(1), 2u);
  }
  {
    TX_RECORD<> t;
    compat::Tx_RW_R1(&t, &slots_[0]);
    compat::Tx_RW_R2(&t, &slots_[1]);
    compat::Tx_RW_R3(&t, &slots_[2]);
    compat::Tx_RW_3_Abort(&t);
    EXPECT_EQ(Value(2), 3u);
  }
  {
    TX_RECORD<> t;
    compat::Tx_RW_R1(&t, &slots_[0]);
    compat::Tx_RW_R2(&t, &slots_[1]);
    compat::Tx_RW_R3(&t, &slots_[2]);
    compat::Tx_RW_R4(&t, &slots_[3]);
    compat::Tx_RW_4_Abort(&t);
    EXPECT_EQ(Value(3), 4u);
  }
  // After every abort the slots must be acquirable again.
  TX_RECORD<> t;
  compat::Tx_RW_R1(&t, &slots_[0]);
  compat::Tx_RW_R2(&t, &slots_[1]);
  compat::Tx_RW_R3(&t, &slots_[2]);
  compat::Tx_RW_R4(&t, &slots_[3]);
  EXPECT_TRUE(compat::Tx_RW_4_Is_Valid(&t));
  compat::Tx_RW_4_Abort(&t);
}

TEST_F(CompatArity, Ro1Through4Validation) {
  TX_RECORD<> t;
  EXPECT_EQ(DecodeInt(ToWord(compat::Tx_RO_R1(&t, &slots_[0]))), 1u);
  EXPECT_TRUE(compat::Tx_RO_1_Is_Valid(&t));
  EXPECT_EQ(DecodeInt(ToWord(compat::Tx_RO_R2(&t, &slots_[1]))), 2u);
  EXPECT_TRUE(compat::Tx_RO_2_Is_Valid(&t));
  EXPECT_EQ(DecodeInt(ToWord(compat::Tx_RO_R3(&t, &slots_[2]))), 3u);
  EXPECT_TRUE(compat::Tx_RO_3_Is_Valid(&t));
  EXPECT_EQ(DecodeInt(ToWord(compat::Tx_RO_R4(&t, &slots_[3]))), 4u);
  EXPECT_TRUE(compat::Tx_RO_4_Is_Valid(&t));

  compat::Tx_Single_Write(&slots_[2], ToPtr(EncodeInt(99)));
  EXPECT_FALSE(compat::Tx_RO_4_Is_Valid(&t)) << "stale RO set must fail validation";
}

TEST_F(CompatArity, MixedCommitMatrix) {
  // RO_1 + RW_1 via upgrade of the single read.
  {
    TX_RECORD<> t;
    compat::Tx_RO_R1(&t, &slots_[0]);
    ASSERT_TRUE(compat::Tx_Upgrade_RO_1_To_RW_1(&t));
    EXPECT_TRUE(compat::Tx_RO_1_RW_1_Commit(&t, ToPtr(EncodeInt(10))));
    EXPECT_EQ(Value(0), 10u);
  }
  // RO_2 + RW_1: upgrade the second read (Tx_Upgrade_RO_2_To_RW_1).
  {
    TX_RECORD<> t;
    compat::Tx_RO_R1(&t, &slots_[1]);
    compat::Tx_RO_R2(&t, &slots_[2]);
    ASSERT_TRUE(compat::Tx_Upgrade_RO_2_To_RW_1(&t));
    EXPECT_TRUE(compat::Tx_RO_2_RW_1_Commit(&t, ToPtr(EncodeInt(20))));
    EXPECT_EQ(Value(2), 20u);
    EXPECT_EQ(Value(1), 2u) << "RO-only location must be untouched";
  }
  // RO_1 + RW_2: both reads upgraded in order (RO_1 -> RW_1, RO_2 -> RW_2).
  {
    TX_RECORD<> t;
    compat::Tx_RO_R1(&t, &slots_[0]);
    compat::Tx_RO_R2(&t, &slots_[3]);
    ASSERT_TRUE(compat::Tx_Upgrade_RO_1_To_RW_1(&t));
    ASSERT_TRUE(compat::Tx_Upgrade_RO_2_To_RW_2(&t));
    EXPECT_TRUE(compat::Tx_RO_1_RW_2_Commit(&t, ToPtr(EncodeInt(30)),
                                            ToPtr(EncodeInt(31))));
    EXPECT_EQ(Value(0), 30u);
    EXPECT_EQ(Value(3), 31u);
  }
  // RO_2 + RW_2: two pure reads, one RW read, one upgrade (Tx_Upgrade_RO_1_To_RW_2).
  {
    TX_RECORD<> t;
    compat::Tx_RO_R1(&t, &slots_[1]);
    compat::Tx_RO_R2(&t, &slots_[2]);
    TX_RECORD<>* rec = &t;
    // First RW access comes from a fresh RW read on another slot...
    const Ptr v = compat::Tx_RW_R1(rec, &slots_[0]);
    (void)v;
    ASSERT_TRUE(compat::Tx_RW_1_Is_Valid(rec));
    // ...then upgrade RO index 1 into RW index 2.
    ASSERT_TRUE(compat::Tx_Upgrade_RO_1_To_RW_2(rec));
    EXPECT_TRUE(compat::Tx_RO_2_RW_2_Commit(rec, ToPtr(EncodeInt(40)),
                                            ToPtr(EncodeInt(41))));
    EXPECT_EQ(Value(0), 40u);
    EXPECT_EQ(Value(1), 41u);
    EXPECT_EQ(Value(2), 20u) << "the remaining RO location keeps its prior value";
  }
}

TEST_F(CompatArity, FailedUpgradeInvalidates) {
  TX_RECORD<> t;
  compat::Tx_RO_R1(&t, &slots_[0]);
  compat::Tx_Single_Write(&slots_[0], ToPtr(EncodeInt(77)));
  EXPECT_FALSE(compat::Tx_Upgrade_RO_1_To_RW_1(&t))
      << "upgrade of a changed location must fail";
}

TEST_F(CompatArity, R1RestartSemantics) {
  // Tx_RO_R1 always starts a fresh attempt — including after a VALIDATED RO-only
  // transaction, which leaves the record live (validation serves in place of
  // commit) with its RO set populated.
  {
    TX_RECORD<> t;
    compat::Tx_RO_R1(&t, &slots_[0]);
    compat::Tx_RO_R2(&t, &slots_[1]);
    ASSERT_TRUE(compat::Tx_RO_2_Is_Valid(&t));  // RO-only "commit"
    compat::Tx_RO_R1(&t, &slots_[2]);           // reuse: must re-arm, not append
    EXPECT_EQ(t.tx.RoCount(), 1u);
    EXPECT_TRUE(compat::Tx_RO_1_Is_Valid(&t));
  }
  // Tx_RW_R1 re-arms a finished record but preserves a live attempt's RO set (the
  // mixed RO_x_RW_y forms route their first RW access through it).
  {
    TX_RECORD<> t;
    compat::Tx_RW_R1(&t, &slots_[0]);
    compat::Tx_RW_1_Commit(&t, ToPtr(EncodeInt(50)));
    compat::Tx_RW_R1(&t, &slots_[1]);  // after commit: fresh attempt
    EXPECT_EQ(t.tx.RwCount(), 1u);
    EXPECT_EQ(t.tx.RoCount(), 0u);
    compat::Tx_RW_1_Abort(&t);

    compat::Tx_RO_R1(&t, &slots_[2]);
    compat::Tx_RW_R1(&t, &slots_[3]);  // mid-attempt: RO set must survive
    EXPECT_EQ(t.tx.RoCount(), 1u);
    EXPECT_EQ(t.tx.RwCount(), 1u);
    EXPECT_TRUE(compat::Tx_RO_1_RW_1_Commit(&t, ToPtr(EncodeInt(60))));
    EXPECT_EQ(Value(3), 60u);
  }
}

}  // namespace
}  // namespace spectm
