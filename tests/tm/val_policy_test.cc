// Unit tests for the value-based validation policies (§2.4): the non-reuse default,
// the global commit counter (Dalessandro et al.), and the distributed per-thread
// counters — plus the writer-side protocol ordering they rely on.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/tm/config.h"
#include "src/tm/val_word.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

TEST(ValPolicies, NonReuseIsAlwaysStable) {
  const Word s = NonReuseValidation::Sample();
  NonReuseValidation::OnWriterCommit(nullptr);
  EXPECT_TRUE(NonReuseValidation::Stable(s));
}

TEST(ValPolicies, GlobalCounterDetectsCommits) {
  const Word s = GlobalCounterValidation::Sample();
  EXPECT_TRUE(GlobalCounterValidation::Stable(s));
  GlobalCounterValidation::OnWriterCommit(nullptr);
  EXPECT_FALSE(GlobalCounterValidation::Stable(s));
  const Word s2 = GlobalCounterValidation::Sample();
  EXPECT_TRUE(GlobalCounterValidation::Stable(s2));
}

TEST(ValPolicies, PerThreadCountersDetectOwnCommit) {
  TxDesc& desc = DescOf<ValDomainTag>();
  const Word s = PerThreadCounterValidation::Sample();
  PerThreadCounterValidation::OnWriterCommit(&desc);
  EXPECT_FALSE(PerThreadCounterValidation::Stable(s));
}

TEST(ValPolicies, PerThreadCountersDetectOtherThreadsCommits) {
  const Word s = PerThreadCounterValidation::Sample();
  std::thread other([] {
    PerThreadCounterValidation::OnWriterCommit(&DescOf<ValDomainTag>());
  });
  other.join();
  EXPECT_FALSE(PerThreadCounterValidation::Stable(s));
}

TEST(ValPolicies, PerThreadSumIsMonotone) {
  Word last = PerThreadCounterValidation::Sample();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 1000; ++i) {
        PerThreadCounterValidation::OnWriterCommit(&DescOf<ValDomainTag>());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const Word now = PerThreadCounterValidation::Sample();
  EXPECT_GE(now, last + 4000);
}

// The engine-level guarantee the counters provide: an RO2 pair validated under a
// counter policy must never observe values from two different committed states even
// when values recycle (A -> B -> A churn), which NonReuseValidation by design does
// not promise. This hammers exactly that pattern.
template <typename Family>
void RunAbaChurn() {
  typename Family::Slot x, y;
  Family::SingleWrite(&x, EncodeInt(0));
  Family::SingleWrite(&y, EncodeInt(0));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&] {
      // Writers toggle BOTH words between 0 and 1 together: values recycle
      // constantly, so validation cannot lean on non-reuse.
      for (int i = 0; i < 30000; ++i) {
        while (true) {
          typename Family::ShortTx t;
          const Word vx = t.ReadRw(&x);
          t.ReadRw(&y);
          if (!t.Valid()) {
            t.Abort();
            continue;
          }
          const Word next = vx == EncodeInt(0) ? EncodeInt(1) : EncodeInt(0);
          t.CommitRw({next, next});
          break;
        }
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        typename Family::ShortTx t;
        const Word vx = t.ReadRo(&x);
        const Word vy = t.ReadRo(&y);
        if (!t.Valid() || !t.ValidateRo()) {
          continue;
        }
        if (vx != vy) {
          torn.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_EQ(torn.load(), 0u);
}

TEST(ValPolicies, GlobalCounterKeepsPairsConsistentUnderValueRecycling) {
  RunAbaChurn<ValGlobalCounter>();
}

TEST(ValPolicies, PerThreadCountersKeepPairsConsistentUnderValueRecycling) {
  RunAbaChurn<ValPerThreadCounter>();
}

// Note: the same churn under plain `Val` (NonReuseValidation) happens to pass too,
// because the writers here lock BOTH words (case 1 of §2.4) — every transaction
// updates everything it reads. The counter modes exist for programs outside the
// three special cases; this test documents that they are at least as strong.
TEST(ValPolicies, NonReuseSafeWhenWritersLockEverything) { RunAbaChurn<Val>(); }

// The bloom-ring policy and the adaptive engine must be exactly as strong as the
// plain counter under value recycling — skips may only fire when provably safe.
TEST(ValPolicies, BloomRingKeepsPairsConsistentUnderValueRecycling) {
  RunAbaChurn<ValBloom>();
}

TEST(ValPolicies, AdaptiveEngineKeepsPairsConsistentUnderValueRecycling) {
  RunAbaChurn<ValAdaptive>();
}

}  // namespace
}  // namespace spectm
