// GV5 (load-only commit stamps + max-bump release + reader-side clock catch-up)
// and the GV6 EWMA hybrid: probe-verified hot-path properties and end-to-end
// behavior through the OrecGv5/OrecGv6 families.
#include "src/tm/clock.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/tm/config.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

TEST(Gv5Clock, CommitStampsAreLoadOnly) {
  using Clock = GlobalClockGv5<struct Gv5TagA>;
  using Probe = ClockProbe<struct Gv5TagA>;
  Probe::Reset();
  const CommitStamp a = Clock::NextCommitStamp();
  const CommitStamp b = Clock::NextCommitStamp();
  // wv = clock + 1 without advancing: repeated draws return the same non-unique
  // stamp, and the clock itself never moves.
  EXPECT_EQ(a.wv, b.wv);
  EXPECT_FALSE(a.unique);
  EXPECT_FALSE(b.unique);
  EXPECT_EQ(Probe::Get().rmw_draws, 0u) << "GV5 commit draws must never CAS";
  EXPECT_EQ(Probe::Get().nocas_draws, 2u);
}

TEST(Gv5Clock, ReleaseVersionRestoresPerOrecMonotonicity) {
  using Clock = GlobalClockGv5<struct Gv5TagB>;
  // wv ahead of the orec: plain wv release (the normal case).
  EXPECT_EQ(Clock::ReleaseVersion(12, MakeOrecVersion(9)), 12u);
  // Stale wv (another committer already pushed this orec past it): bump past the
  // old version so validators can still tell the commits apart.
  EXPECT_EQ(Clock::ReleaseVersion(5, MakeOrecVersion(9)), 10u);
  EXPECT_EQ(Clock::ReleaseVersion(10, MakeOrecVersion(9)), 10u);
}

// Acceptance: an entire writer workload under the GV5 family draws ZERO clock
// RMWs on the commit path (every draw is a load), for full transactions, short
// transactions, and single ops alike.
TEST(Gv5Clock, WriterCommitsDrawNoCas) {
  using F = OrecGv5;
  using Probe = ClockProbe<OrecGv5Tag>;
  static F::Slot a, b;

  Probe::Reset();
  F::SingleWrite(&a, EncodeInt(1));
  F::SingleCas(&a, EncodeInt(1), EncodeInt(2));
  {
    F::ShortTx tx;
    const Word va = tx.ReadRw(&a);
    const Word vb = tx.ReadRw(&b);
    ASSERT_TRUE(tx.Valid());
    tx.CommitRw({va, vb});
  }
  F::FullTx tx;
  do {
    tx.Start();
    tx.Write(&b, EncodeInt(7));
  } while (!tx.Commit());

  EXPECT_EQ(Probe::Get().rmw_draws, 0u)
      << "no GV5 commit path may touch the clock with an RMW";
  EXPECT_EQ(Probe::Get().nocas_draws, 4u)
      << "each of the four committing writers drew exactly one load-only stamp";
}

TEST(Gv5Clock, SequentialCommitsToOneSlotStayDistinguishable) {
  // Two same-wv commits to one location must still advance its version (the
  // max-bump), or short-tx RO validation could be fooled.
  using F = OrecGv5;
  static F::Slot s;
  F::SingleWrite(&s, EncodeInt(1));
  const Word v1 = OrecVersionOf(F::Layout::OrecOf(s).load());
  F::SingleWrite(&s, EncodeInt(2));
  const Word v2 = OrecVersionOf(F::Layout::OrecOf(s).load());
  EXPECT_GT(v2, v1) << "version must advance even though both draws shared wv";
}

TEST(Gv5Clock, StaleReadDragsTheClockForward) {
  // A full-tx reader that trips over a version ahead of its snapshot must pull the
  // clock up (the CAS-max catch-up) and then succeed via extension.
  using F = OrecGv5;
  using Clock = GlobalClockGv5<OrecGv5Tag>;
  using Probe = ClockProbe<OrecGv5Tag>;
  static F::Slot s;
  F::SingleWrite(&s, EncodeInt(41));
  F::SingleWrite(&s, EncodeInt(42));
  const Word published = OrecVersionOf(F::Layout::OrecOf(s).load());
  ASSERT_GT(published, Clock::Clock().load())
      << "precondition: versions run ahead of the GV5 clock";

  Probe::Reset();
  F::FullTx tx;
  Word v = 0;
  do {
    tx.Start();
    v = tx.Read(&s);
  } while (!tx.Commit());
  EXPECT_EQ(DecodeInt(v), 42u);
  EXPECT_GE(Probe::Get().stale_advances, 1u) << "the reader must have caught the clock up";
  EXPECT_GE(Clock::Clock().load(), published);
}

TEST(Gv6Clock, EwmaFlipsBetweenGv4AndGv5Draws) {
  using Clock = GlobalClockGv6<OrecGv6Tag>;
  using Probe = ClockProbe<OrecGv6Tag>;
  TxStats& stats = DescOf<OrecGv6Tag>().stats;

  // Quiet phase: EWMA below the exit threshold -> load-only GV5 draws.
  while (AbortEwmaQ16(stats) != 0) {
    UpdateAbortEwma(stats, false);
  }
  Clock::NextCommitStamp();  // settle the hysteretic mode bit into GV5
  Probe::Reset();
  const CommitStamp quiet = Clock::NextCommitStamp();
  EXPECT_FALSE(quiet.unique);
  EXPECT_EQ(Probe::Get().nocas_draws, 1u);
  EXPECT_EQ(Probe::Get().rmw_draws, 0u);
  EXPECT_EQ(Probe::Get().mode_flips, 0u);

  // Contended phase: EWMA rises through the enter threshold -> GV4 CAS draws
  // (one recorded flip).
  while (AbortEwmaQ16(stats) < Clock::kGv4EnterThresholdQ16) {
    UpdateAbortEwma(stats, true);
  }
  const CommitStamp contended = Clock::NextCommitStamp();
  // Never unique, even on a won CAS: the hybrid's GV5 draws do not RMW the
  // clock, so "CAS won at rv+1" cannot imply "no commit since rv" and the TL2
  // unique-stamp shortcut must stay off for every GV6 stamp.
  EXPECT_FALSE(contended.unique);
  EXPECT_EQ(Probe::Get().rmw_draws, 1u);
  EXPECT_EQ(Probe::Get().nocas_draws, 1u) << "no further load-only draws";
  EXPECT_EQ(Probe::Get().mode_flips, 1u);

  // Back to quiet: the flip reverses once the EWMA falls below the EXIT
  // threshold.
  while (AbortEwmaQ16(stats) != 0) {
    UpdateAbortEwma(stats, false);
  }
  Clock::NextCommitStamp();
  EXPECT_EQ(Probe::Get().nocas_draws, 2u);
  EXPECT_EQ(Probe::Get().rmw_draws, 1u);
  EXPECT_EQ(Probe::Get().mode_flips, 2u);
}

// The hysteresis dead band (ROADMAP: "consider hysteresis to stop border
// flapping"): an EWMA hovering BETWEEN the exit and enter thresholds must leave
// the mode wherever it last was — a border workload no longer alternates draw
// flavors on every outcome wiggle.
TEST(Gv6Clock, DeadBandDoesNotFlap) {
  using Clock = GlobalClockGv6<OrecGv6Tag>;
  using Probe = ClockProbe<OrecGv6Tag>;
  TxStats& stats = DescOf<OrecGv6Tag>().stats;

  // Park the EWMA inside the dead band [exit, enter).
  const std::uint32_t mid =
      (Clock::kGv4ExitThresholdQ16 + Clock::kGv4EnterThresholdQ16) / 2;

  // Enter GV4 mode first (rise above enter), then wiggle within the band.
  while (AbortEwmaQ16(stats) < Clock::kGv4EnterThresholdQ16) {
    UpdateAbortEwma(stats, true);
  }
  Clock::NextCommitStamp();
  Probe::Reset();
  for (int i = 0; i < 64; ++i) {
    // Pin the EWMA to wiggle around the old single threshold's position (which
    // sat at today's enter edge): alternating just-under/just-over values inside
    // the band — the single-threshold design flipped on every such wiggle.
    const std::uint32_t wiggle = mid + (i % 2 == 0 ? -64 : +64);
    stats.abort_ewma_q16.store(wiggle, std::memory_order_relaxed);
    ASSERT_GE(AbortEwmaQ16(stats), Clock::kGv4ExitThresholdQ16);
    ASSERT_LT(AbortEwmaQ16(stats), Clock::kGv4EnterThresholdQ16);
    Clock::NextCommitStamp();
  }
  EXPECT_EQ(Probe::Get().mode_flips, 0u)
      << "in-band wiggling must never flip the draw flavor";
  EXPECT_EQ(Probe::Get().nocas_draws, 0u) << "mode stuck to GV4 inside the band";

  // Leaving the band through the bottom finally flips, once.
  while (AbortEwmaQ16(stats) >= Clock::kGv4ExitThresholdQ16) {
    UpdateAbortEwma(stats, false);
  }
  Clock::NextCommitStamp();
  EXPECT_EQ(Probe::Get().mode_flips, 1u);
}

TEST(Gv6Clock, ConcurrentMixedDrawsKeepCounterCorrect) {
  // End-to-end: increments through the GV6 family from racing threads (whose
  // descriptors sit in different EWMA states) must not lose updates.
  using F = OrecGv6;
  static F::Slot counter;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      // Half the threads start with a polluted EWMA so both draw flavors mix.
      TxStats& stats = DescOf<OrecGv6Tag>().stats;
      for (int i = 0; i < 64; ++i) {
        UpdateAbortEwma(stats, t % 2 == 0);
      }
      for (int i = 0; i < kPerThread; ++i) {
        F::FullTx tx;
        do {
          tx.Start();
          const Word v = tx.Read(&counter);
          if (!tx.ok()) {
            continue;
          }
          tx.Write(&counter, EncodeInt(DecodeInt(v) + 1));
        } while (!tx.Commit());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(DecodeInt(F::SingleRead(&counter)),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace spectm
