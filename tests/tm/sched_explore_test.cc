// Systematic interleaving exploration of the commit protocols
// (src/common/sched.h over the PR 6/7 fail-point plants): bounded exhaustive
// enumeration of the two-thread crossing-committers commit window for all
// four engines (OrecL/Val x full/short) asserting the balance invariant on
// EVERY explored schedule, exhaustive exploration of the serial-gate drain,
// byte-identical replay with identical probe counters, and a planted-bug
// canary — a validate-before-bump mini-TM (the PR-2 skew, resurrected in
// miniature) that the explorer MUST find within the preemption bound and the
// shrinker must cut to a handful of decisions.
#include "src/common/sched.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/epoch/epoch.h"
#include "src/svc/kv_store.h"
#include "src/tm/config.h"
#include "src/tm/serial.h"
#include "src/tm/txdesc.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

#if !defined(SPECTM_SCHED)

static_assert(!sched::kEnabled,
              "sched_explore_test only runs under SPECTM_SCHED; the OFF build "
              "must see the disabled constexpr surface");

#else  // SPECTM_SCHED

using sched::Controller;
using sched::Explorer;
using sched::Trace;

// ---- The crossing-committers window, on the real engines ---------------------------
//
// Two transactions read BOTH slots and each writes a different one:
//   T0: a = a + b + 1        T1: b = a + b + 1
// from (0, 0). The serializable outcomes are exactly (1,2) and (2,1); the
// write-skew outcome (1,1) — both commit against the initial snapshot — is
// what the bump-before-validate discipline forbids. Every explored schedule
// must land in the serializable set.

template <typename Family>
std::function<void()> FullCrossingBody(typename Family::Slot* a,
                                       typename Family::Slot* b, bool write_a) {
  return [a, b, write_a] {
    Family::Full::Atomically([a, b, write_a](typename Family::FullTx& tx) {
      const Word va = tx.Read(a);
      if (!tx.ok()) {
        return;
      }
      const Word vb = tx.Read(b);
      if (!tx.ok()) {
        return;
      }
      tx.Write(write_a ? a : b, EncodeInt(DecodeInt(va) + DecodeInt(vb) + 1));
    });
  };
}

template <typename Family>
std::function<void()> ShortCrossingBody(typename Family::Slot* a,
                                        typename Family::Slot* b, bool write_a) {
  return [a, b, write_a] {
    typename Family::Slot* own = write_a ? a : b;
    typename Family::Slot* other = write_a ? b : a;
    while (true) {
      typename Family::ShortTx tx;
      const Word vr = tx.ReadRw(own);
      if (!tx.Valid()) {
        sched::Yield();
        continue;
      }
      const Word vo = tx.ReadRo(other);
      if (!tx.Valid()) {
        sched::Yield();
        continue;
      }
      if (tx.CommitMixed({EncodeInt(DecodeInt(vr) + DecodeInt(vo) + 1)})) {
        return;
      }
      sched::Yield();  // conflicted: hand the window to the peer before retrying
    }
  };
}

// Runs the bounded exhaustive exploration for one engine/shape and asserts
// the balance invariant held on every schedule.
template <typename Family>
void ExploreCrossingWindow(bool short_shape) {
  // Slots and their storage live across all schedules; values reset per run.
  auto* a = new typename Family::Slot();
  auto* b = new typename Family::Slot();
  auto make_bodies = [&]() {
    Family::SingleWrite(a, EncodeInt(0));
    Family::SingleWrite(b, EncodeInt(0));
    std::vector<std::function<void()>> bodies;
    if (short_shape) {
      bodies.push_back(ShortCrossingBody<Family>(a, b, /*write_a=*/true));
      bodies.push_back(ShortCrossingBody<Family>(a, b, /*write_a=*/false));
    } else {
      bodies.push_back(FullCrossingBody<Family>(a, b, /*write_a=*/true));
      bodies.push_back(FullCrossingBody<Family>(a, b, /*write_a=*/false));
    }
    return bodies;
  };
  std::set<std::pair<std::uint64_t, std::uint64_t>> outcomes;
  auto check = [&] {
    const std::uint64_t ra = DecodeInt(Family::SingleRead(a));
    const std::uint64_t rb = DecodeInt(Family::SingleRead(b));
    outcomes.insert({ra, rb});
    return (ra == 1 && rb == 2) || (ra == 2 && rb == 1);
  };
  Explorer::Options opt;
  opt.preemption_bound = 2;
  opt.stop_on_violation = true;
  const Explorer::Result res = Explorer::Explore(make_bodies, check, opt);
  EXPECT_FALSE(res.violation_found)
      << "write-skew (or torn state) reached on schedule: "
      << sched::FormatTrace(res.violation_trace);
  EXPECT_TRUE(res.frontier_exhausted);
  EXPECT_EQ(res.truncated, 0u) << "a schedule hit the point cap (runaway spin?)";
  EXPECT_EQ(res.divergences, 0u) << "a prefix failed to reproduce: nondeterminism";
  EXPECT_GT(res.schedules, 20u) << "the window produced almost no schedules";
  // Both serializable orders must actually be reachable within the bound —
  // otherwise the exploration never drove the commit window both ways.
  EXPECT_EQ(outcomes.size(), 2u);
}

TEST(SchedExploreEngines, OrecFullCrossingCommitWindow) {
  ExploreCrossingWindow<OrecL>(/*short_shape=*/false);
}

TEST(SchedExploreEngines, ValFullCrossingCommitWindow) {
  ExploreCrossingWindow<Val>(/*short_shape=*/false);
}

TEST(SchedExploreEngines, OrecShortCrossingCommitWindow) {
  ExploreCrossingWindow<OrecL>(/*short_shape=*/true);
}

TEST(SchedExploreEngines, ValShortCrossingCommitWindow) {
  ExploreCrossingWindow<Val>(/*short_shape=*/true);
}

// ---- The serial-gate drain ---------------------------------------------------------
//
// One thread takes the serialization token and drains the gate; the other
// announces itself as a committer (retreating and retrying while the token is
// held). Exhaustively explored mutual exclusion: no schedule may ever see a
// committer inside the gate while the serial section runs. The plants inside
// SerialGate itself (kSerialGateEnter in the Dekker window, the drain spin,
// token release) are the decision points.

struct SchedGateExploreTag {};

TEST(SchedExploreGate, SerialDrainExcludesCommittersOnEverySchedule) {
  using Gate = SerialGate<SchedGateExploreTag>;
  std::atomic<int> in_serial{0};
  std::atomic<int> committers_inside{0};
  std::atomic<bool> violation{false};
  std::vector<int> event_log;
  auto make_bodies = [&]() {
    in_serial.store(0);
    committers_inside.store(0);
    violation.store(false);
    event_log.clear();
    std::vector<std::function<void()>> bodies;
    bodies.push_back([&] {  // the serial side
      TxDesc* self = &DescOf<SchedGateExploreTag>();
      Gate::AcquireSerial(self);
      if (committers_inside.load() != 0) {
        violation.store(true);  // drain returned with a committer still inside
      }
      in_serial.store(1);
      event_log.push_back(1);
      sched::TestPoint(sched::kTestPointBase + 1);  // solo window: widest temptation
      if (committers_inside.load() != 0) {
        violation.store(true);
      }
      in_serial.store(0);
      Gate::ReleaseSerial(self);
    });
    bodies.push_back([&] {  // the committer side, two gate round-trips
      TxDesc* self = &DescOf<SchedGateExploreTag>();
      for (int round = 0; round < 2; ++round) {
        while (true) {
          if (Gate::TryEnterCommitter(self)) {
            committers_inside.fetch_add(1);
            if (in_serial.load() != 0) {
              violation.store(true);  // passed the gate during the serial section
            }
            event_log.push_back(2);
            sched::TestPoint(sched::kTestPointBase + 2);
            if (in_serial.load() != 0) {
              violation.store(true);
            }
            committers_inside.fetch_sub(1);
            Gate::ExitCommitter(self);
            break;
          }
          sched::Yield();  // token held: fail fast, let the serial side finish
        }
      }
    });
    return bodies;
  };
  std::set<std::vector<int>> orders;
  auto check = [&] {
    orders.insert(event_log);
    return !violation.load();
  };
  Explorer::Options opt;
  opt.preemption_bound = 3;
  const Explorer::Result res = Explorer::Explore(make_bodies, check, opt);
  EXPECT_FALSE(res.violation_found)
      << "gate exclusion broke on: " << sched::FormatTrace(res.violation_trace);
  EXPECT_TRUE(res.frontier_exhausted);
  EXPECT_EQ(res.divergences, 0u);
  EXPECT_EQ(res.truncated, 0u);
  // The exploration must have driven the committer through BOTH sides of the
  // serial section (before it and after it), or the drain was never raced.
  EXPECT_GE(orders.size(), 2u);
}

// Three threads at the gate: one serial side against TWO independent
// committers (PR 9 satellite — the two-thread drain above can never exercise
// a committer arriving while another committer is already inside during the
// drain scan). Same invariant, every schedule, bound 3 (the ROADMAP
// carry-over: bound 2 cannot preempt the drain scan once per committer AND
// split the two committers' windows in one schedule).
TEST(SchedExploreGate, ThreeThreadDrainExcludesBothCommitters) {
  using Gate = SerialGate<SchedGateExploreTag>;
  std::atomic<int> in_serial{0};
  std::atomic<int> committers_inside{0};
  std::atomic<bool> violation{false};
  auto committer_body = [&](int tag) {
    return [&, tag] {
      TxDesc* self = &DescOf<SchedGateExploreTag>();
      while (true) {
        if (Gate::TryEnterCommitter(self)) {
          committers_inside.fetch_add(1);
          if (in_serial.load() != 0) {
            violation.store(true);
          }
          sched::TestPoint(sched::kTestPointBase + tag);
          if (in_serial.load() != 0) {
            violation.store(true);
          }
          committers_inside.fetch_sub(1);
          Gate::ExitCommitter(self);
          return;
        }
        sched::Yield();
      }
    };
  };
  auto make_bodies = [&]() {
    in_serial.store(0);
    committers_inside.store(0);
    violation.store(false);
    std::vector<std::function<void()>> bodies;
    bodies.push_back([&] {
      TxDesc* self = &DescOf<SchedGateExploreTag>();
      Gate::AcquireSerial(self);
      if (committers_inside.load() != 0) {
        violation.store(true);
      }
      in_serial.store(1);
      sched::TestPoint(sched::kTestPointBase + 1);
      if (committers_inside.load() != 0) {
        violation.store(true);
      }
      in_serial.store(0);
      Gate::ReleaseSerial(self);
    });
    bodies.push_back(committer_body(2));
    bodies.push_back(committer_body(3));
    return bodies;
  };
  auto check = [&] { return !violation.load(); };
  Explorer::Options opt;
  opt.preemption_bound = 3;
  opt.stop_on_violation = true;
  const Explorer::Result res = Explorer::Explore(make_bodies, check, opt);
  EXPECT_FALSE(res.violation_found)
      << "three-thread gate exclusion broke on: "
      << sched::FormatTrace(res.violation_trace);
  EXPECT_TRUE(res.frontier_exhausted);
  EXPECT_EQ(res.divergences, 0u);
  EXPECT_EQ(res.truncated, 0u);
  EXPECT_GT(res.schedules, 20u);
}

// ---- Batch-granularity retry through the service store (PR 10) ---------------------
//
// Two threads run whole-batch read-modify-writes over the SAME two keys of a
// KvStore: T0 adds (+1, +2), T1 adds (+10, +20), both from (0, 0). A batch is
// ONE transaction, so retry-at-batch-granularity must make each batch atomic
// as a unit on every schedule: the only reachable final state is (11, 22).
// A torn batch (one key's delta applied without the other) or a lost update
// (a batch re-applying against a stale read) surfaces as any other pair.
TEST(SchedExploreSvc, BatchRetryNeverCommitsATornBatch) {
  using F = Val;
  constexpr std::uint64_t kA = 3, kB = 11;
  std::unique_ptr<svc::KvStore<F>> store;
  auto transfer_body = [&store](std::uint64_t da, std::uint64_t db) {
    return [&store, da, db] {
      const std::uint64_t keys[2] = {kA, kB};
      store->BatchTransact(
          keys, 2,
          [da, db](std::uint64_t* vals, const std::vector<bool>& found,
                   std::size_t) {
            if (found[0]) {
              vals[0] += da;
            }
            if (found[1]) {
              vals[1] += db;
            }
          });
    };
  };
  auto make_bodies = [&] {
    svc::KvStore<F>::Config cfg;
    cfg.shards = 2;  // tiny store: the exploration rebuilds it per schedule
    cfg.buckets_per_shard = 4;
    store = std::make_unique<svc::KvStore<F>>(cfg);
    store->Put(kA, 0);
    store->Put(kB, 0);
    std::vector<std::function<void()>> bodies;
    bodies.push_back(transfer_body(1, 2));
    bodies.push_back(transfer_body(10, 20));
    return bodies;
  };
  std::set<std::pair<std::uint64_t, std::uint64_t>> outcomes;
  auto check = [&] {
    F::Slot* a = store->DebugValueSlotOf(kA);
    F::Slot* b = store->DebugValueSlotOf(kB);
    if (a == nullptr || b == nullptr) {
      return false;  // a torn insert lost a key entirely
    }
    const std::uint64_t ra = DecodeInt(F::RawRead(a));
    const std::uint64_t rb = DecodeInt(F::RawRead(b));
    outcomes.insert({ra, rb});
    return ra == 11 && rb == 22;
  };
  Explorer::Options opt;
  opt.preemption_bound = 2;
  opt.stop_on_violation = true;
  const Explorer::Result res = Explorer::Explore(make_bodies, check, opt);
  EXPECT_FALSE(res.violation_found)
      << "a torn or lost batch committed on: "
      << sched::FormatTrace(res.violation_trace);
  EXPECT_TRUE(res.frontier_exhausted);
  EXPECT_EQ(res.divergences, 0u);
  EXPECT_EQ(res.truncated, 0u) << "a schedule hit the point cap (runaway retry?)";
  EXPECT_GT(res.schedules, 20u);
  // Every explored schedule converged to the single serializable total.
  EXPECT_EQ(outcomes.size(), 1u);
}

// ---- Epoch advance/retire and the MVCC done-stamp race (PR 9) ----------------------
//
// (1) A guarded reader against a retire-then-advance writer: no schedule may
// free the object while the reader's guard is active — the kEpochRetire /
// kEpochAdvance plants (PR 8) plus Enter's publish-then-recheck handshake are
// the decision points, explored exhaustively at bound 2.
TEST(SchedExploreEpoch, AdvanceNeverFreesUnderAForeignGuard) {
  struct Shared {
    EpochManager* mgr = nullptr;
    std::atomic<bool> linked{true};  // cleared by the writer just before Retire
    std::atomic<bool> freed{false};
    std::atomic<bool> violation{false};
  };
  auto* sh = new Shared;
  auto make_bodies = [sh]() {
    delete sh->mgr;  // previous schedule's manager; its threads have exited
    sh->mgr = new EpochManager;
    sh->linked.store(true);
    sh->freed.store(false);
    sh->violation.store(false);
    std::vector<std::function<void()>> bodies;
    bodies.push_back([sh] {  // the guarded reader
      EpochManager::Guard g(*sh->mgr);
      sched::TestPoint(sched::kTestPointBase + 11);
      // Only a guard that demonstrably predates the retire makes a claim: if
      // the object is still linked here, the retire (which follows the unlink
      // in the writer's program order) lands in a bag stamped no older than
      // this guard's entry epoch, so no advance may free it until we exit.
      // A guard entered after the unlink may legitimately see freed==true.
      if (sh->linked.load()) {
        if (sh->freed.load()) {
          sh->violation.store(true);
        }
        sched::TestPoint(sched::kTestPointBase + 12);
        if (sh->freed.load()) {
          sh->violation.store(true);
        }
      }
    });
    bodies.push_back([sh] {  // unlink, retire, then force advances
      {
        EpochManager::Guard g(*sh->mgr);
        sh->linked.store(false);
        sh->mgr->Retire(static_cast<void*>(&sh->freed), [](void* p) {
          static_cast<std::atomic<bool>*>(p)->store(true);
        });
      }
      sh->mgr->ReclaimAllForTesting();
    });
    return bodies;
  };
  auto check = [sh] { return !sh->violation.load(); };
  Explorer::Options opt;
  opt.preemption_bound = 2;
  opt.stop_on_violation = true;
  const Explorer::Result res = Explorer::Explore(make_bodies, check, opt);
  EXPECT_FALSE(res.violation_found)
      << "an epoch advance freed under a live guard on: "
      << sched::FormatTrace(res.violation_trace);
  EXPECT_TRUE(res.frontier_exhausted);
  EXPECT_EQ(res.divergences, 0u);
  EXPECT_EQ(res.truncated, 0u);
}

// (2) The MVCC snapshot against single-op writer churn: a pinned reader must
// see ONE stable value across repeated reads of a slot the writer overwrites
// between them, on every schedule. Decision points: the writer's publish
// window (kVersionRetire on trims, kDoneStampAdvance on every done-stamp
// scan) and the reader's chain walk — the races the two-step pin and the
// lazy-stamp protocol exist for.
TEST(SchedExploreMvcc, PinnedSnapshotIsStableAcrossWriterChurn) {
  auto* s = new ValSnap::Slot();
  std::atomic<bool> violation{false};
  auto make_bodies = [&]() {
    ValSnap::SingleWrite(s, EncodeInt(1));
    violation.store(false);
    std::vector<std::function<void()>> bodies;
    bodies.push_back([&] {  // snapshot reader: two reads, one cut
      ValSnap::Full::Atomically([&](ValSnap::FullTx& tx) {
        const Word v1 = tx.Read(s);
        if (!tx.ok()) {
          return;
        }
        sched::TestPoint(sched::kTestPointBase + 21);
        const Word v2 = tx.Read(s);
        if (!tx.ok()) {
          return;
        }
        if (v1 != v2) {
          violation.store(true);  // the snapshot moved mid-transaction
        }
      });
    });
    bodies.push_back([&] {  // single-op writer churn across the reader
      ValSnap::SingleWrite(s, EncodeInt(2));
      ValSnap::SingleWrite(s, EncodeInt(3));
    });
    return bodies;
  };
  auto check = [&] {
    return !violation.load() && DecodeInt(ValSnap::SingleRead(s)) == 3u;
  };
  Explorer::Options opt;
  opt.preemption_bound = 2;
  opt.stop_on_violation = true;
  const Explorer::Result res = Explorer::Explore(make_bodies, check, opt);
  EXPECT_FALSE(res.violation_found)
      << "snapshot instability (or lost write) on: "
      << sched::FormatTrace(res.violation_trace);
  EXPECT_TRUE(res.frontier_exhausted);
  EXPECT_EQ(res.divergences, 0u);
  EXPECT_EQ(res.truncated, 0u);
  EXPECT_GT(res.schedules, 10u);
}

// ---- Replay determinism on a real engine schedule ----------------------------------
//
// Same seed => identical decision trace, identical body-retry counters,
// identical final slot values, across two full executions (satellite: replay
// determinism with probe counters).

TEST(SchedExploreReplay, EngineScheduleReplaysByteIdentically) {
  auto* a = new OrecL::Slot();
  auto* b = new OrecL::Slot();
  struct Observed {
    Trace trace;
    std::array<std::uint64_t, 2> body_runs{};
    std::uint64_t final_a = 0, final_b = 0;
  };
  auto run_once = [&](std::uint64_t seed) {
    Observed obs;
    OrecL::SingleWrite(a, EncodeInt(0));
    OrecL::SingleWrite(b, EncodeInt(0));
    std::array<std::uint64_t, 2> runs{};
    std::vector<std::function<void()>> bodies;
    for (int tid = 0; tid < 2; ++tid) {
      const bool write_a = tid == 0;
      bodies.push_back([a, b, write_a, tid, &runs] {
        OrecL::Full::Atomically([&](OrecL::FullTx& tx) {
          ++runs[static_cast<std::size_t>(tid)];  // attempts = 1 + aborts
          const Word va = tx.Read(a);
          if (!tx.ok()) {
            return;
          }
          const Word vb = tx.Read(b);
          if (!tx.ok()) {
            return;
          }
          tx.Write(write_a ? a : b, EncodeInt(DecodeInt(va) + DecodeInt(vb) + 1));
        });
      });
    }
    sched::RandomWalkPolicy policy(seed);
    const sched::RunRecord rec = Controller::Instance().Run(std::move(bodies), policy);
    obs.trace = sched::TraceOf(rec);
    obs.body_runs = runs;
    obs.final_a = DecodeInt(OrecL::SingleRead(a));
    obs.final_b = DecodeInt(OrecL::SingleRead(b));
    return obs;
  };
  const Observed first = run_once(0xdec1de);
  const Observed second = run_once(0xdec1de);
  ASSERT_EQ(first.trace.size(), second.trace.size());
  for (std::size_t i = 0; i < first.trace.size(); ++i) {
    EXPECT_EQ(first.trace[i].site, second.trace[i].site) << "decision " << i;
    EXPECT_EQ(first.trace[i].thread, second.trace[i].thread) << "decision " << i;
  }
  EXPECT_EQ(first.body_runs, second.body_runs);
  EXPECT_EQ(first.final_a, second.final_a);
  EXPECT_EQ(first.final_b, second.final_b);
  EXPECT_FALSE(first.trace.empty());
}

// ---- The planted-bug canary --------------------------------------------------------
//
// A miniature NOrec-with-skip model: two locations, a commit counter, and a
// counter-stability skip check. The CORRECT variant bumps before the skip
// check (own_idx == sample + 1 => only our own bump happened — the repo's
// own-index rule); the BUGGY variant checks counter == sample BEFORE bumping,
// which lets two crossing committers both skip validation against each
// other's un-stored writes: write-skew (1,1). The explorer must find the skew
// in the buggy variant within preemption bound 2 and prove its absence in the
// correct one; the shrinker must reduce the failing trace to <= 8 decisions;
// the trace must replay byte-identically.

struct MiniLoc {
  std::atomic<int> val{0};
  std::atomic<int> lock{0};  // holds owner id (1 or 2); 0 = free
};

struct MiniTm {
  std::atomic<int> counter{0};
  MiniLoc a, b;
  bool buggy = false;

  void Reset() {
    counter.store(0);
    a.val.store(0);
    a.lock.store(0);
    b.val.store(0);
    b.lock.store(0);
  }
};

std::function<void()> MiniTxBody(MiniTm* tm, bool write_a) {
  return [tm, write_a] {
    MiniLoc* own = write_a ? &tm->a : &tm->b;
    MiniLoc* other = write_a ? &tm->b : &tm->a;
    const int id = write_a ? 1 : 2;
    const int base = sched::kTestPointBase + id * 100;
    while (true) {
      sched::TestPoint(base + 0);
      const int sample = tm->counter.load();
      if (own->lock.load() != 0 || other->lock.load() != 0) {
        sched::Yield();
        continue;  // read phase fails fast past a committing peer
      }
      const int v_own = own->val.load();
      const int v_other = other->val.load();
      sched::TestPoint(base + 1);
      int expected = 0;
      if (!own->lock.compare_exchange_strong(expected, id)) {
        sched::Yield();
        continue;
      }
      // Value-based validation walk; a foreign lock is a conflict.
      auto walk = [&] {
        return other->lock.load() == 0 && other->val.load() == v_other &&
               own->val.load() == v_own;
      };
      bool ok;
      if (tm->buggy) {
        // WRONG ORDER: skip check first, bump after. Two committers can both
        // observe "counter unchanged" before either bump lands.
        sched::TestPoint(base + 2);
        ok = tm->counter.load() == sample || walk();
        sched::TestPoint(base + 3);
        tm->counter.fetch_add(1);
      } else {
        tm->counter.fetch_add(1);  // own bump FIRST (bump-before-validate)
        sched::TestPoint(base + 2);
        ok = tm->counter.load() == sample + 1 || walk();
        sched::TestPoint(base + 3);
      }
      if (ok) {
        own->val.store(v_own + v_other + 1);
        sched::TestPoint(base + 4);
        own->lock.store(0);
        return;
      }
      own->lock.store(0);
      sched::Yield();  // aborted: let the conflicting peer finish
    }
  };
}

class SchedCanaryTest : public ::testing::Test {
 protected:
  MiniTm tm_;

  std::vector<std::function<void()>> MakeBodies() {
    tm_.Reset();
    return {MiniTxBody(&tm_, true), MiniTxBody(&tm_, false)};
  }

  bool Serializable() const {
    const int ra = tm_.a.val.load();
    const int rb = tm_.b.val.load();
    return (ra == 1 && rb == 2) || (ra == 2 && rb == 1);
  }

  Explorer::Result Explore(bool buggy, int bound) {
    tm_.buggy = buggy;
    Explorer::Options opt;
    opt.preemption_bound = bound;
    return Explorer::Explore([&] { return MakeBodies(); },
                             [&] { return Serializable(); }, opt);
  }
};

TEST_F(SchedCanaryTest, CorrectOrderHasNoSkewAcrossTheWholeBoundedTree) {
  // One bound DEEPER than what suffices to break the buggy variant: the
  // correct order must survive strictly more schedules than the bug needs.
  const Explorer::Result res = Explore(/*buggy=*/false, /*bound=*/3);
  EXPECT_FALSE(res.violation_found)
      << "the CORRECT model skewed on: " << sched::FormatTrace(res.violation_trace);
  EXPECT_TRUE(res.frontier_exhausted);
  EXPECT_EQ(res.divergences, 0u);
  EXPECT_GT(res.schedules, 50u);
}

TEST_F(SchedCanaryTest, ExplorerFindsThePlantedSkewAndShrinksIt) {
  const Explorer::Result res = Explore(/*buggy=*/true, /*bound=*/2);
  ASSERT_TRUE(res.violation_found)
      << "the canary survived " << res.schedules
      << " schedules — the explorer is blind to the planted bug";
  EXPECT_EQ(tm_.a.val.load(), 1);
  EXPECT_EQ(tm_.b.val.load(), 1);

  // Byte-identical replay of the failing schedule from its trace alone.
  {
    sched::ReplayPolicy replay(res.violation_trace);
    const sched::RunRecord rec =
        Controller::Instance().Run(MakeBodies(), replay, 1u << 20);
    EXPECT_EQ(replay.divergence, 0u) << "the failing trace did not reproduce";
    EXPECT_FALSE(Serializable()) << "replay lost the violation";
    const Trace again = sched::TraceOf(rec);
    ASSERT_EQ(again.size(), res.violation_trace.size());
    for (std::size_t i = 0; i < again.size(); ++i) {
      EXPECT_EQ(again[i].site, res.violation_trace[i].site);
      EXPECT_EQ(again[i].thread, res.violation_trace[i].thread);
    }
  }

  // Greedy minimization: the skew needs only the start choice plus two
  // preemptions; everything else is default-reconstructible.
  auto verify = [&](const Trace& t) {
    sched::ReplayPolicy replay(t);
    Controller::Instance().Run(MakeBodies(), replay, 1u << 20);
    return !Serializable();
  };
  const Trace shrunk = sched::ShrinkTrace(res.violation_trace, verify);
  EXPECT_TRUE(verify(shrunk)) << "shrunk trace lost the failure";
  EXPECT_LE(shrunk.size(), 8u)
      << "shrinker left " << shrunk.size()
      << " decisions: " << sched::FormatTrace(shrunk);
}

#endif  // SPECTM_SCHED

}  // namespace
}  // namespace spectm
