// Adaptive validation engine (valstrategy.h): EWMA tracking, strategy choice and
// transitions, the writer-summary bloom ring, and the probe-verified hot-path
// claims — counter skips firing on unchanged-counter RO reads (short and full
// transactions, orec and val layouts) and bloom skips rescuing stale counters when
// the intervening write traffic is disjoint.
#include "src/tm/valstrategy.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "src/structures/hash_tm_full.h"
#include "src/tm/config.h"
#include "src/tm/txdesc.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

TEST(AbortEwma, TracksOutcomesAndDecaysToZero) {
  TxStats stats;
  EXPECT_EQ(AbortEwmaQ16(stats), 0u);

  // Commits keep it at zero.
  for (int i = 0; i < 10; ++i) {
    UpdateAbortEwma(stats, /*aborted=*/false);
  }
  EXPECT_EQ(AbortEwmaQ16(stats), 0u);

  // A run of aborts drives it toward 100%...
  for (int i = 0; i < 100; ++i) {
    UpdateAbortEwma(stats, /*aborted=*/true);
  }
  EXPECT_GT(AbortEwmaQ16(stats), kEwmaBloomMaxQ16) << "sustained aborts look contended";

  // ...and a long abort-free run decays it all the way back to zero (the rounded
  // decrement must not stall at a small residue).
  for (int i = 0; i < 400; ++i) {
    UpdateAbortEwma(stats, /*aborted=*/false);
  }
  EXPECT_EQ(AbortEwmaQ16(stats), 0u);
}

TEST(AbortEwma, SingleAbortDoesNotFlipTheStrategy) {
  TxStats stats;
  UpdateAbortEwma(stats, /*aborted=*/true);
  // One abort from a cold start: 1/16 of full scale = 4096 Q16 — above the
  // counter-skip band but below the incremental band.
  EXPECT_LT(AbortEwmaQ16(stats), kEwmaBloomMaxQ16);
}

TEST(ChooseStrategy, FixedModesIgnoreTheEwma) {
  for (const std::uint32_t ewma : {0u, 10000u, 65535u}) {
    EXPECT_EQ(ChooseStrategy(ValMode::kPassive, true, ewma), ValStrategy::kIncremental);
    EXPECT_EQ(ChooseStrategy(ValMode::kIncremental, true, ewma),
              ValStrategy::kIncremental);
    EXPECT_EQ(ChooseStrategy(ValMode::kCounterSkip, true, ewma),
              ValStrategy::kCounterSkip);
    EXPECT_EQ(ChooseStrategy(ValMode::kBloom, true, ewma), ValStrategy::kBloom);
  }
}

TEST(ChooseStrategy, AdaptiveBandsAndRingClamp) {
  EXPECT_EQ(ChooseStrategy(ValMode::kAdaptive, true, 0), ValStrategy::kCounterSkip);
  EXPECT_EQ(ChooseStrategy(ValMode::kAdaptive, true, kEwmaCounterSkipMaxQ16 - 1),
            ValStrategy::kCounterSkip);
  EXPECT_EQ(ChooseStrategy(ValMode::kAdaptive, true, kEwmaCounterSkipMaxQ16),
            ValStrategy::kBloom);
  EXPECT_EQ(ChooseStrategy(ValMode::kAdaptive, true, kEwmaBloomMaxQ16 - 1),
            ValStrategy::kBloom);
  EXPECT_EQ(ChooseStrategy(ValMode::kAdaptive, true, kEwmaBloomMaxQ16),
            ValStrategy::kIncremental);
  // Without a bloom ring the middle band clamps to counter-skip, never bloom.
  EXPECT_EQ(ChooseStrategy(ValMode::kAdaptive, false, kEwmaCounterSkipMaxQ16),
            ValStrategy::kCounterSkip);
  EXPECT_EQ(ChooseStrategy(ValMode::kBloom, false, 0), ValStrategy::kCounterSkip);
}

TEST(ChooseStrategy, PoorSkipEfficacyFallsBackToIncremental) {
  // When skips stopped paying for themselves, adaptive mode walks regardless of
  // the abort band; fixed modes are unaffected.
  EXPECT_EQ(ChooseStrategy(ValMode::kAdaptive, true, 0, kSkipEwmaMinQ16 - 1),
            ValStrategy::kIncremental);
  EXPECT_EQ(ChooseStrategy(ValMode::kAdaptive, true, 0, kSkipEwmaMinQ16),
            ValStrategy::kCounterSkip);
  EXPECT_EQ(ChooseStrategy(ValMode::kCounterSkip, true, 0, 0),
            ValStrategy::kCounterSkip);
}

// Stripe-wise complement: a bloom guaranteed disjoint from `b` with bits in
// every stripe (so the probe consults all four lanes).
Bloom128 BloomNot(const Bloom128& b) {
  Bloom128 r;
  for (int s = 0; s < Bloom128::kStripes; ++s) {
    r.s[s] = ~b.s[s];
  }
  return r;
}

TEST(WriterRingTest, DisjointAndIntersectingRanges) {
  WriterRing ring;
  WriterRing::FailCounts fails;
  int x = 0, y = 0;
  const Bloom128 bx = AddrBloom128(&x);
  const Bloom128 by = AddrBloom128(&y);

  ring.Publish(1, bx);
  // Reader whose bloom misses bx: skip allowed over (0, 1].
  EXPECT_TRUE(ring.RangeDisjoint(0, 1, BloomNot(bx), &fails));
  // Reader whose bloom contains a bit of bx: must walk.
  EXPECT_FALSE(ring.RangeDisjoint(0, 1, bx, &fails));

  // Unpublished index in the range: must walk (tag mismatch).
  EXPECT_FALSE(ring.RangeDisjoint(0, 2, BloomNot(bx), &fails));

  ring.Publish(2, by);
  Bloom128 both = bx;
  both |= by;
  EXPECT_TRUE(ring.RangeDisjoint(0, 2, BloomNot(both), &fails));

  // Oversized ranges never skip.
  EXPECT_FALSE(
      ring.RangeDisjoint(0, WriterRing::kMaxSkipRange + 1, BloomNot(bx), &fails));
  EXPECT_EQ(fails.window, 1u);

  // A recycled slot (same slot index, different commit index) fails the tag check.
  const Word recycled = 1 + (Word{1} << WriterRing::kLog2Slots);
  ring.Publish(recycled, bx);
  EXPECT_FALSE(ring.RangeDisjoint(0, 1, BloomNot(bx), &fails))
      << "slot now carries a newer tag";
}

// The stripe-skipping probe: a reader with bits in only ONE stripe must still
// catch an unpublished commit (tag freshness is judged on consulted stripes) and
// an intersecting one, while genuinely disjoint same-stripe traffic passes.
TEST(WriterRingTest, SingleStripeProbeStaysSound) {
  WriterRing ring;
  WriterRing::FailCounts fails;
  Bloom128 read;
  read.s[2] = 1u << 7;  // reader occupies stripe 2 only

  // Unpublished commit in range: stale tag seen through stripe 2's lane.
  EXPECT_FALSE(ring.RangeDisjoint(0, 1, read, &fails));

  Bloom128 w_other;
  w_other.s[0] = 1u << 3;  // writer bits entirely in a stripe the reader skips
  ring.Publish(1, w_other);
  EXPECT_TRUE(ring.RangeDisjoint(0, 1, read, &fails));

  Bloom128 w_hit;
  w_hit.s[2] = 1u << 7;  // same stripe, same bit: possible overlap
  ring.Publish(2, w_hit);
  EXPECT_FALSE(ring.RangeDisjoint(0, 2, read, &fails));

  // The failure taxonomy classified both failures.
  EXPECT_GE(fails.stale, 1u);
  EXPECT_GE(fails.intersect, 1u);
}

// Acceptance: the short-tx counter skip fires on unchanged-counter RO reads — the
// second RO read of a short transaction must skip the prefix walk when no writer
// committed since the sample (orec layout, fixed counter-skip family).
TEST(CounterSkip, ShortTxOrecRoReadsSkipOnStableCounter) {
  using F = OrecLCounterSkip;
  using Probe = ValProbe<OrecLCounterTag>;
  static F::Slot a, b;
  F::SingleWrite(&a, EncodeInt(1));
  F::SingleWrite(&b, EncodeInt(2));

  Probe::Reset();
  F::ShortTx tx;
  EXPECT_EQ(DecodeInt(tx.ReadRo(&a)), 1u);
  EXPECT_EQ(DecodeInt(tx.ReadRo(&b)), 2u);
  EXPECT_TRUE(tx.Valid());
  EXPECT_TRUE(tx.ValidateRo());
  tx.Abort();

  EXPECT_GE(Probe::Get().counter_skips, 2u)
      << "2nd read and final ValidateRo must both skip on the unchanged counter";
  EXPECT_EQ(Probe::Get().validation_walks, 0u)
      << "no RO-prefix walk may happen while the counter is stable";
}

// Same property through the val layout's persistent ShortTx sample.
TEST(CounterSkip, ShortTxValRoReadsSkipOnStableCounter) {
  using F = ValGlobalCounter;
  using Probe = ValProbe<ValDomainTag>;
  static F::Slot a, b;
  F::SingleWrite(&a, EncodeInt(5));
  F::SingleWrite(&b, EncodeInt(6));

  Probe::Reset();
  F::ShortTx tx;
  EXPECT_EQ(DecodeInt(tx.ReadRo(&a)), 5u);
  EXPECT_EQ(DecodeInt(tx.ReadRo(&b)), 6u);
  EXPECT_TRUE(tx.Valid());
  tx.Abort();

  EXPECT_GE(Probe::Get().counter_skips, 1u);
  EXPECT_EQ(Probe::Get().validation_walks, 0u)
      << "ValShortTx revalidated the whole RO set despite a stable counter";
}

// When the counter moves between reads, the skip must NOT fire: the engine walks
// (and the values are still intact, so the transaction stays valid).
TEST(CounterSkip, MovedCounterForcesTheWalk) {
  using F = OrecLCounterSkip;
  using Probe = ValProbe<OrecLCounterTag>;
  static F::Slot a, b, unrelated;
  F::SingleWrite(&a, EncodeInt(1));
  F::SingleWrite(&b, EncodeInt(2));

  Probe::Reset();
  F::ShortTx tx;
  EXPECT_EQ(DecodeInt(tx.ReadRo(&a)), 1u);
  F::SingleWrite(&unrelated, EncodeInt(9));  // bumps the domain counter
  EXPECT_EQ(DecodeInt(tx.ReadRo(&b)), 2u);
  EXPECT_TRUE(tx.Valid()) << "disjoint write must not invalidate, only force a walk";
  tx.Abort();

  EXPECT_GE(Probe::Get().validation_walks, 1u)
      << "a moved counter with no bloom strategy must walk the prefix";
}

// Returns a slot (out of `pool`) whose orec bloom is disjoint from `read_bloom`,
// so bloom-skip tests are deterministic under ASLR (hash bits depend on addresses).
template <typename Family, std::size_t N>
typename Family::Slot* FindBloomDisjointSlot(typename Family::Slot (&pool)[N],
                                             const Bloom128& read_bloom) {
  for (auto& s : pool) {
    if (!AddrBloom128(&Family::Layout::OrecOf(s)).Intersects(read_bloom)) {
      return &s;
    }
  }
  return nullptr;
}

// Bloom strategy: a writer that commits to locations DISJOINT from the read set
// moves the counter but must not force a walk — the ring pre-filter skips it.
TEST(BloomSkip, DisjointWriterTrafficSkipsTheWalk) {
  using F = OrecLBloom;
  using Probe = ValProbe<OrecLBloomTag>;
  static F::Slot a, b;
  static F::Slot pool[64];
  F::SingleWrite(&a, EncodeInt(1));
  F::SingleWrite(&b, EncodeInt(2));

  Bloom128 read_bloom = AddrBloom128(&F::Layout::OrecOf(a));
  read_bloom |= AddrBloom128(&F::Layout::OrecOf(b));
  F::Slot* disjoint = FindBloomDisjointSlot<F>(pool, read_bloom);
  ASSERT_NE(disjoint, nullptr) << "64 candidates always contain a disjoint bloom";

  Probe::Reset();
  F::ShortTx tx;
  EXPECT_EQ(DecodeInt(tx.ReadRo(&a)), 1u);
  F::SingleWrite(disjoint, EncodeInt(7));  // moves the counter, disjoint bloom
  EXPECT_EQ(DecodeInt(tx.ReadRo(&b)), 2u);
  EXPECT_TRUE(tx.Valid());
  tx.Abort();

  EXPECT_GE(Probe::Get().bloom_skips, 1u)
      << "disjoint intervening commit must be absorbed by the ring pre-filter";
  EXPECT_EQ(Probe::Get().validation_walks, 0u);
}

// Bloom strategy, overlap case: a writer that DOES hit the read set must be
// caught — the skip may not fire and the transaction must invalidate.
TEST(BloomSkip, OverlappingWriterIsDetected) {
  using F = OrecLBloom;
  static F::Slot a, b;
  F::SingleWrite(&a, EncodeInt(1));
  F::SingleWrite(&b, EncodeInt(2));

  F::ShortTx tx;
  EXPECT_EQ(DecodeInt(tx.ReadRo(&a)), 1u);
  F::SingleWrite(&a, EncodeInt(99));  // overlaps the read set
  tx.ReadRo(&b);
  EXPECT_FALSE(tx.Valid()) << "a changed read-set entry must invalidate the tx";
  tx.Abort();
}

// Full-transaction (local-clock) counter skip: with no concurrent writers, a
// read-heavy full transaction over the counter-skip family must do zero walks
// after the first read — the O(read-set) per-read revalidation collapses.
TEST(CounterSkip, FullTxLocalClockReadsSkipOnStableCounter) {
  using F = OrecLCounterSkip;
  using Probe = ValProbe<OrecLCounterTag>;
  static F::Slot slots[16];
  for (int i = 0; i < 16; ++i) {
    F::SingleWrite(&slots[i], EncodeInt(static_cast<std::uint64_t>(i)));
  }

  Probe::Reset();
  F::FullTx tx;
  bool done = false;
  while (!done) {
    tx.Start();
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(DecodeInt(tx.Read(&slots[i])), static_cast<std::uint64_t>(i));
    }
    done = tx.Commit();
  }
  EXPECT_GE(Probe::Get().counter_skips, 14u);
  EXPECT_EQ(Probe::Get().validation_walks, 0u)
      << "quiescent read-heavy full tx must never walk under counter-skip";
}

// Acceptance: the EWMA switch actually transitions strategies. Drive the
// descriptor's EWMA across the bands and observe the adaptive family start
// attempts under different strategies.
TEST(AdaptiveStrategy, EwmaDrivesStrategyTransitions) {
  using F = OrecLAdaptive;
  using Probe = ValProbe<OrecLAdaptTag>;
  static F::Slot a;
  F::SingleWrite(&a, EncodeInt(1));
  TxStats& stats = DescOf<OrecLAdaptTag>().stats;
  stats.skip_ewma_q16.store(65536u);  // skips paying: isolate the abort signal

  // Phase 1: clean history -> counter-skip.
  while (AbortEwmaQ16(stats) != 0) {
    UpdateAbortEwma(stats, false);
  }
  Probe::Reset();
  {
    F::ShortTx tx;
    tx.ReadRo(&a);
    EXPECT_TRUE(tx.ValidateRo());
    tx.Abort();
  }
  EXPECT_EQ(Probe::Get().last_strategy, ValStrategy::kCounterSkip);

  // Phase 2: moderate abort pressure -> bloom.
  while (AbortEwmaQ16(stats) < kEwmaCounterSkipMaxQ16) {
    UpdateAbortEwma(stats, true);
  }
  ASSERT_LT(AbortEwmaQ16(stats), kEwmaBloomMaxQ16);
  {
    F::ShortTx tx;
    tx.ReadRo(&a);
    tx.Abort();
  }
  EXPECT_EQ(Probe::Get().last_strategy, ValStrategy::kBloom);

  // Phase 3: heavy abort pressure -> incremental.
  while (AbortEwmaQ16(stats) < kEwmaBloomMaxQ16) {
    UpdateAbortEwma(stats, true);
  }
  {
    F::ShortTx tx;
    tx.ReadRo(&a);
    tx.Abort();
  }
  EXPECT_EQ(Probe::Get().last_strategy, ValStrategy::kIncremental);

  EXPECT_GE(Probe::Get().strategy_switches, 2u)
      << "the probe must have recorded both band crossings";

  // Phase 4: pressure subsides -> back to counter-skip (full transactions pick the
  // strategy at Start() the same way).
  while (AbortEwmaQ16(stats) != 0) {
    UpdateAbortEwma(stats, false);
  }
  F::FullTx tx;
  do {
    tx.Start();
    tx.Read(&a);
  } while (!tx.Commit());
  EXPECT_EQ(Probe::Get().last_strategy, ValStrategy::kCounterSkip);
  EXPECT_GE(Probe::Get().strategy_switches, 3u);
}

// The val layout's adaptive engine takes the same decisions through its
// ValidationPolicy counter.
TEST(AdaptiveStrategy, ValAdaptiveSkipsWhenQuiescent) {
  using F = ValAdaptive;
  using Probe = ValProbe<ValDomainTag>;
  static F::Slot a, b;
  F::SingleWrite(&a, EncodeInt(3));
  F::SingleWrite(&b, EncodeInt(4));
  TxStats& stats = DescOf<ValDomainTag>().stats;
  stats.skip_ewma_q16.store(65536u);
  while (AbortEwmaQ16(stats) != 0) {
    UpdateAbortEwma(stats, false);
  }

  Probe::Reset();
  F::FullTx tx;
  Word va = 0, vb = 0;
  do {
    tx.Start();
    va = tx.Read(&a);
    vb = tx.Read(&b);
  } while (!tx.Commit());
  EXPECT_EQ(DecodeInt(va), 3u);
  EXPECT_EQ(DecodeInt(vb), 4u);
  EXPECT_EQ(Probe::Get().last_strategy, ValStrategy::kCounterSkip);
  EXPECT_GE(Probe::Get().counter_skips, 1u);
  EXPECT_EQ(Probe::Get().validation_walks, 0u);
}

// Skip-efficacy feedback, end to end: when the counter moves between every
// pair of reads, the adaptive engine must decay toward incremental — and the
// periodic probe must keep re-trying a skip so it can recover in quiet phases.
TEST(AdaptiveStrategy, PoorEfficacyDecaysToIncrementalAndProbesBack) {
  using F = OrecLAdaptive;
  using Probe = ValProbe<OrecLAdaptTag>;
  static F::Slot a, b, churn;
  F::SingleWrite(&a, EncodeInt(1));
  F::SingleWrite(&b, EncodeInt(2));
  TxStats& stats = DescOf<OrecLAdaptTag>().stats;
  while (AbortEwmaQ16(stats) != 0) {
    UpdateAbortEwma(stats, false);
  }
  stats.skip_ewma_q16.store(65536u);

  // Defeat every skip: a disjoint write between the two RO reads moves the
  // counter each attempt, so each attempt walks (efficacy miss).
  for (int i = 0; i < 200; ++i) {
    F::ShortTx tx;
    tx.ReadRo(&a);
    F::SingleWrite(&churn, EncodeInt(static_cast<std::uint64_t>(i)));
    tx.ReadRo(&b);
    EXPECT_TRUE(tx.Valid());
    tx.Reset();  // fresh attempt; strategy re-chosen from the decayed EWMA
  }
  EXPECT_LT(SkipEwmaQ16(stats), kSkipEwmaMinQ16) << "misses must decay the EWMA";
  {
    F::ShortTx tx;
    tx.ReadRo(&a);
    tx.Abort();
  }
  // The engine may be in a probe attempt (1 in kSkipProbePeriod); retry a few
  // times to observe the steady incremental choice.
  int incremental_seen = 0;
  for (int i = 0; i < 8; ++i) {
    F::ShortTx tx;
    tx.ReadRo(&a);
    tx.Abort();
    incremental_seen += Probe::Get().last_strategy == ValStrategy::kIncremental;
  }
  EXPECT_GE(incremental_seen, 6) << "poor efficacy must steer attempts to walking";

  // Quiet phase: probes fire every kSkipProbePeriod attempts, hit, and pull the
  // EWMA back up until skips are the steady choice again.
  for (int i = 0; i < 600; ++i) {
    F::ShortTx tx;
    tx.ReadRo(&a);
    tx.ReadRo(&b);
    EXPECT_TRUE(tx.Valid());
    tx.Abort();
  }
  EXPECT_GE(SkipEwmaQ16(stats), kSkipEwmaMinQ16)
      << "probe hits in a quiet phase must restore skip efficacy";
  {
    F::ShortTx tx;
    tx.ReadRo(&a);
    tx.Abort();
    EXPECT_EQ(Probe::Get().last_strategy, ValStrategy::kCounterSkip);
  }
}

// Multi-threaded sanity for the bloom ring under real concurrency: disjoint-slot
// writers churn while RO pairs are read; pairs must stay consistent and at least
// some reads should be absorbed by skips. (The heavyweight cross-family battery
// lives in concurrency_test.cc, which includes the new families.)
TEST(BloomSkip, ConcurrentDisjointChurnKeepsPairsConsistent) {
  using F = OrecLBloom;
  static F::Slot pair_a, pair_b;
  static F::Slot churn[8];
  F::SingleWrite(&pair_a, EncodeInt(0));
  F::SingleWrite(&pair_b, EncodeInt(0));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      const Word v = EncodeInt(static_cast<std::uint64_t>(i) + 1);
      while (true) {
        F::ShortTx tx;
        tx.ReadRw(&pair_a);
        tx.ReadRw(&pair_b);
        if (!tx.Valid()) {
          tx.Abort();
          continue;
        }
        tx.CommitRw({v, v});
        break;
      }
      F::SingleWrite(&churn[i % 8], EncodeInt(static_cast<std::uint64_t>(i)));
    }
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      F::ShortTx tx;
      const Word va = tx.ReadRo(&pair_a);
      const Word vb = tx.ReadRo(&pair_b);
      if (!tx.Valid() || !tx.ValidateRo()) {
        continue;
      }
      if (va != vb) {
        torn.fetch_add(1);
      }
    }
  });
  writer.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(torn.load(), 0u);
}

// Linked-structure regression for the commit-time skip protocol: concurrent
// inserts/removes on a transactional hash set must keep (successful inserts -
// successful removes) equal to the final cardinality. The crossing-committer
// write skew this pins down (two committers whose read sets cross each other's
// write sets both skipping/passing validation) manifests exactly as a lost
// unlink: a Remove returns true while its victim stays reachable, breaking this
// balance — and later corrupting the heap via a double retire. Fixed by the
// bump-before-validate + own-index commit discipline (valstrategy.h).
template <typename Family>
void RunLinkedSetBalanceCheck(std::uint64_t seed) {
  TmHashSet<Family> set(64);
  constexpr int kWorkers = 4;
  constexpr int kOpsPerThread = 120000;
  constexpr std::uint64_t kKeys = 512;
  std::vector<std::int64_t> balance(kWorkers, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&, t] {
      Xorshift128Plus rng(seed + static_cast<std::uint64_t>(t) * 7919);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t k = rng.NextBounded(kKeys);
        if (rng.Next() & 1) {
          if (set.Insert(k)) {
            ++balance[static_cast<std::size_t>(t)];
          }
        } else {
          if (set.Remove(k)) {
            --balance[static_cast<std::size_t>(t)];
          }
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  std::int64_t expected = 0;
  for (const std::int64_t b : balance) {
    expected += b;
  }
  std::int64_t present = 0;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    present += set.Contains(k) ? 1 : 0;
  }
  EXPECT_EQ(present, expected)
      << "insert/remove balance diverged from the set cardinality: a commit "
         "skipped validation past a crossing committer (lost unlink/insert)";
}

TEST(CommitSkipProtocol, LinkedSetBalanceOrecLBloom) {
  RunLinkedSetBalanceCheck<OrecLBloom>(0xb100f);
}

TEST(CommitSkipProtocol, LinkedSetBalanceOrecLCounterSkip) {
  RunLinkedSetBalanceCheck<OrecLCounterSkip>(0xc075);
}

TEST(CommitSkipProtocol, LinkedSetBalanceValBloom) {
  RunLinkedSetBalanceCheck<ValBloom>(0x7a1b);
}

TEST(CommitSkipProtocol, LinkedSetBalanceValAdaptive) {
  RunLinkedSetBalanceCheck<ValAdaptive>(0xada9);
}

// Crossing-committers regression, re-derived for the PARTITIONED skip protocol:
// the per-stripe commit skip (expected = anchor + own-bump contribution per
// READ-occupied stripe) must keep two crossing committers from write-skewing
// past each other exactly as the global own-index test did — a lost unlink
// breaks the insert/remove balance below. Both partitioned families run in the
// TSan smoke subset via this test binary.
TEST(CommitSkipProtocol, LinkedSetBalanceOrecLPart) {
  RunLinkedSetBalanceCheck<OrecLPart>(0x9a47);
}

TEST(CommitSkipProtocol, LinkedSetBalanceValPart) {
  RunLinkedSetBalanceCheck<ValPart>(0x57a1);
}

// --- Partitioned NOrec: per-stripe counters -------------------------------------

// The sharded bump: PublishAndBump moves exactly the masked stripe counters plus
// the global counter (the ring index / own_idx), nothing else.
TEST(PartitionedSkip, StripeCountersShardTheBump) {
  struct StripeUnitTag {};
  using S = WriterSummary<StripeUnitTag>;
  const StripeSample before = S::StripeSampleNow();
  const Word global_before = S::Sample();
  int anchor_obj = 0;
  const Word own_idx = S::PublishAndBump(AddrBloom128(&anchor_obj), 0b0101u);
  EXPECT_EQ(own_idx, global_before + 1);
  EXPECT_EQ(S::StripeNow(0), before.v[0] + 1);
  EXPECT_EQ(S::StripeNow(1), before.v[1]);
  EXPECT_EQ(S::StripeNow(2), before.v[2] + 1);
  EXPECT_EQ(S::StripeNow(3), before.v[3]);
  EXPECT_EQ(S::Sample(), global_before + 1);
}

// Returns a slot from `pool` whose counter stripe is NOT in `occupied_mask`
// (metadata word = the val-layout data word). The pool must span enough 4 KiB
// regions that every stripe occurs in it.
template <std::size_t N>
ValSlot* FindStripeDisjointValSlot(ValSlot (&pool)[N], unsigned occupied_mask) {
  for (auto& s : pool) {
    if (((occupied_mask >> CounterStripeOf(&s.word)) & 1u) == 0) {
      return &s;
    }
  }
  return nullptr;
}

// Acceptance: disjoint-STRIPE writer traffic moves the global counter but not
// the reader's occupied stripes — the partitioned skip fires with zero walks and
// without ever consulting the ring.
TEST(PartitionedSkip, DisjointStripeChurnSkipsWithoutWalks) {
  using F = ValPart;
  using Probe = ValProbe<ValDomainTag>;
  static F::Slot pair_a, pair_b;
  static F::Slot pool[4096];  // 32 KiB of slots: every 4 KiB stripe occurs
  F::SingleWrite(&pair_a, EncodeInt(1));
  F::SingleWrite(&pair_b, EncodeInt(2));
  const unsigned occupied =
      (1u << CounterStripeOf(&pair_a.word)) | (1u << CounterStripeOf(&pair_b.word));
  F::Slot* churn = FindStripeDisjointValSlot(pool, occupied);
  ASSERT_NE(churn, nullptr);
  F::SingleWrite(churn, EncodeInt(3));

  Probe::Reset();
  F::ShortTx tx;
  EXPECT_EQ(DecodeInt(tx.ReadRo(&pair_a)), 1u);
  F::SingleWrite(churn, EncodeInt(7));  // bumps the global counter, other stripe
  EXPECT_EQ(DecodeInt(tx.ReadRo(&pair_b)), 2u);
  EXPECT_TRUE(tx.Valid());
  tx.Abort();

  EXPECT_GE(Probe::Get().stripe_skips, 1u)
      << "disjoint-stripe traffic must be absorbed by the stripe vector";
  EXPECT_EQ(Probe::Get().validation_walks, 0u);
  EXPECT_EQ(Probe::Get().cross_stripe_walks, 0u);
  EXPECT_GE(Probe::Get().stripe_bumps, 1u) << "the churn writer bumped its stripe";
}

// Same property through the hash-scattered orec table (stripes there are
// effectively random per orec, but with a two-entry read set a disjoint stripe
// still exists and the skip must fire).
TEST(PartitionedSkip, OrecLayoutDisjointStripeChurnSkips) {
  using F = OrecLPart;
  using Probe = ValProbe<OrecLPartTag>;
  static F::Slot a, b;
  static F::Slot pool[256];
  F::SingleWrite(&a, EncodeInt(1));
  F::SingleWrite(&b, EncodeInt(2));
  const unsigned occupied = (1u << CounterStripeOf(&F::Layout::OrecOf(a))) |
                            (1u << CounterStripeOf(&F::Layout::OrecOf(b)));
  F::Slot* churn = nullptr;
  for (auto& s : pool) {
    if (((occupied >> CounterStripeOf(&F::Layout::OrecOf(s))) & 1u) == 0) {
      churn = &s;
      break;
    }
  }
  ASSERT_NE(churn, nullptr) << "256 hash-scattered orecs always hit a free stripe";

  Probe::Reset();
  F::ShortTx tx;
  EXPECT_EQ(DecodeInt(tx.ReadRo(&a)), 1u);
  F::SingleWrite(churn, EncodeInt(9));
  EXPECT_EQ(DecodeInt(tx.ReadRo(&b)), 2u);
  EXPECT_TRUE(tx.Valid());
  tx.Abort();

  EXPECT_GE(Probe::Get().stripe_skips, 1u);
  EXPECT_EQ(Probe::Get().validation_walks, 0u);
}

// Same-stripe but bloom-disjoint traffic: the stripe vector cannot prove
// anything (an occupied stripe moved), so the engine must fall back to the ring
// — which still absorbs the walk because the churn bloom misses the read bloom.
TEST(PartitionedSkip, SameStripeDisjointTrafficFallsBackToRing) {
  using F = ValPart;
  using Probe = ValProbe<ValDomainTag>;
  static F::Slot pair_a, pair_b;
  static F::Slot pool[4096];
  F::SingleWrite(&pair_a, EncodeInt(1));
  F::SingleWrite(&pair_b, EncodeInt(2));
  Bloom128 read_bloom = AddrBloom128(&pair_a.word);
  read_bloom |= AddrBloom128(&pair_b.word);
  const unsigned occupied =
      (1u << CounterStripeOf(&pair_a.word)) | (1u << CounterStripeOf(&pair_b.word));
  F::Slot* churn = nullptr;
  for (auto& s : pool) {
    if (((occupied >> CounterStripeOf(&s.word)) & 1u) != 0 &&
        !AddrBloom128(&s.word).Intersects(read_bloom)) {
      churn = &s;
      break;
    }
  }
  ASSERT_NE(churn, nullptr);

  Probe::Reset();
  F::ShortTx tx;
  EXPECT_EQ(DecodeInt(tx.ReadRo(&pair_a)), 1u);
  F::SingleWrite(churn, EncodeInt(5));  // moves an OCCUPIED stripe, disjoint bloom
  EXPECT_EQ(DecodeInt(tx.ReadRo(&pair_b)), 2u);
  EXPECT_TRUE(tx.Valid());
  tx.Abort();

  EXPECT_EQ(Probe::Get().stripe_skips, 0u)
      << "a moved occupied stripe must not stripe-skip";
  EXPECT_GE(Probe::Get().bloom_skips, 1u) << "the ring is the fallback";
  EXPECT_EQ(Probe::Get().validation_walks, 0u);
}

// Correctness under the partitioned family: a write that actually hits the read
// set must still invalidate the reader (stripe check fails, ring intersects, the
// walk sees the changed value).
TEST(PartitionedSkip, SameLocationWriteIsDetected) {
  using F = ValPart;
  static F::Slot pair_a, pair_b;
  F::SingleWrite(&pair_a, EncodeInt(1));
  F::SingleWrite(&pair_b, EncodeInt(2));

  F::ShortTx tx;
  EXPECT_EQ(DecodeInt(tx.ReadRo(&pair_a)), 1u);
  F::SingleWrite(&pair_a, EncodeInt(99));
  tx.ReadRo(&pair_b);
  EXPECT_FALSE(tx.Valid()) << "a changed read-set entry must invalidate the tx";
  tx.Abort();
}

// Commit-time partitioned skip: a committing writer whose read-occupied stripes
// saw only its own bump (foreign traffic entirely in other stripes) skips its
// final walk via the per-stripe expected-increment test.
TEST(PartitionedSkip, CommitSkipSurvivesDisjointStripeTraffic) {
  using F = ValPart;
  using Probe = ValProbe<ValDomainTag>;
  static F::Slot read_slot, write_slot;
  static F::Slot pool[4096];
  F::SingleWrite(&read_slot, EncodeInt(4));
  F::SingleWrite(&write_slot, EncodeInt(5));
  const unsigned occupied = 1u << CounterStripeOf(&read_slot.word);
  F::Slot* churn = FindStripeDisjointValSlot(pool, occupied);
  ASSERT_NE(churn, nullptr);

  Probe::Reset();
  F::FullTx tx;
  Word v = 0;
  do {
    tx.Start();
    v = tx.Read(&read_slot);
    F::SingleWrite(churn, EncodeInt(11));  // foreign bump, disjoint stripe
    tx.Write(&write_slot, EncodeInt(6));
  } while (!tx.Commit());
  EXPECT_EQ(DecodeInt(v), 4u);
  EXPECT_GE(Probe::Get().stripe_skips, 1u)
      << "the commit must skip through the per-stripe test, not walk";
  EXPECT_EQ(Probe::Get().validation_walks, 0u);
}

// --- Strategy-band hysteresis (the GV6 enter/exit dead-band pattern) ------------

TEST(ChooseStrategy, AbortBandEdgesAreHysteretic) {
  const std::uint32_t lower_band =
      (kEwmaCounterSkipExitQ16 + kEwmaCounterSkipMaxQ16) / 2;
  // Inside the counter-skip/bloom dead band the previous choice sticks — the
  // single-threshold design flipped here on every EWMA wiggle.
  EXPECT_EQ(ChooseStrategy(ValMode::kAdaptive, true, lower_band, 65536u,
                           /*has_prev=*/true, ValStrategy::kCounterSkip),
            ValStrategy::kCounterSkip);
  EXPECT_EQ(ChooseStrategy(ValMode::kAdaptive, true, lower_band, 65536u,
                           /*has_prev=*/true, ValStrategy::kBloom),
            ValStrategy::kBloom);
  // Leaving through the exit edge flips back.
  EXPECT_EQ(ChooseStrategy(ValMode::kAdaptive, true, kEwmaCounterSkipExitQ16 - 1,
                           65536u, /*has_prev=*/true, ValStrategy::kBloom),
            ValStrategy::kCounterSkip);
  // Upper (bloom/incremental) band behaves the same way.
  const std::uint32_t upper_band = (kEwmaBloomExitQ16 + kEwmaBloomMaxQ16) / 2;
  EXPECT_EQ(ChooseStrategy(ValMode::kAdaptive, true, upper_band, 65536u,
                           /*has_prev=*/true, ValStrategy::kIncremental),
            ValStrategy::kIncremental);
  EXPECT_EQ(ChooseStrategy(ValMode::kAdaptive, true, upper_band, 65536u,
                           /*has_prev=*/true, ValStrategy::kBloom),
            ValStrategy::kBloom);
  EXPECT_EQ(ChooseStrategy(ValMode::kAdaptive, true, kEwmaBloomExitQ16 - 1, 65536u,
                           /*has_prev=*/true, ValStrategy::kIncremental),
            ValStrategy::kBloom);
}

TEST(ChooseStrategy, SkipEfficacyRecoveryIsHysteretic) {
  const std::uint32_t in_band = (kSkipEwmaMinQ16 + kSkipEwmaRecoverQ16) / 2;
  // A thread that fell back to walking needs the RECOVER threshold to resume...
  EXPECT_EQ(ChooseStrategy(ValMode::kAdaptive, true, 0, in_band,
                           /*has_prev=*/true, ValStrategy::kIncremental),
            ValStrategy::kIncremental);
  // ...while a thread still skipping keeps skipping at the same efficacy.
  EXPECT_EQ(ChooseStrategy(ValMode::kAdaptive, true, 0, in_band,
                           /*has_prev=*/true, ValStrategy::kCounterSkip),
            ValStrategy::kCounterSkip);
  EXPECT_EQ(ChooseStrategy(ValMode::kAdaptive, true, 0, kSkipEwmaRecoverQ16,
                           /*has_prev=*/true, ValStrategy::kIncremental),
            ValStrategy::kCounterSkip);
}

// End-to-end flap regression, mirroring clock_gv56_test's DeadBandDoesNotFlap:
// an abort EWMA wiggling INSIDE the dead band must not alternate the strategy
// attempts start with; leaving the band through the exit edge flips exactly once.
TEST(StrategyHysteresis, InBandEwmaWiggleDoesNotFlap) {
  using F = OrecLAdaptive;
  using Probe = ValProbe<OrecLAdaptTag>;
  static F::Slot a;
  F::SingleWrite(&a, EncodeInt(1));
  TxStats& stats = DescOf<OrecLAdaptTag>().stats;
  stats.skip_ewma_q16.store(65536u);  // isolate the abort-band signal

  // Rise through the enter edge: attempts settle on bloom.
  while (AbortEwmaQ16(stats) < kEwmaCounterSkipMaxQ16) {
    UpdateAbortEwma(stats, true);
  }
  {
    F::ShortTx tx;
    tx.ReadRo(&a);
    tx.Abort();
  }
  ASSERT_EQ(Probe::Get().last_strategy, ValStrategy::kBloom);

  const std::uint64_t switches_before = Probe::Get().strategy_switches;
  const std::uint32_t mid =
      (kEwmaCounterSkipExitQ16 + kEwmaCounterSkipMaxQ16) / 2;
  for (int i = 0; i < 64; ++i) {
    // Wiggle around the old single threshold's position (today's enter edge sits
    // where the memoryless band edge sat): alternating values inside the band —
    // the memoryless chooser alternated strategies on every such wiggle.
    const std::uint32_t wiggle = mid + (i % 2 == 0 ? -64 : +64);
    stats.abort_ewma_q16.store(wiggle, std::memory_order_relaxed);
    ASSERT_GE(AbortEwmaQ16(stats), kEwmaCounterSkipExitQ16);
    ASSERT_LT(AbortEwmaQ16(stats), kEwmaCounterSkipMaxQ16);
    F::ShortTx tx;
    tx.ReadRo(&a);  // pure-RO attempt: its Abort() leaves the EWMA untouched
    tx.Abort();
    EXPECT_EQ(Probe::Get().last_strategy, ValStrategy::kBloom)
        << "in-band wiggling must never flip the strategy";
  }
  EXPECT_EQ(Probe::Get().strategy_switches, switches_before);

  // Falling through the exit edge finally flips, once.
  stats.abort_ewma_q16.store(kEwmaCounterSkipExitQ16 - 1,
                             std::memory_order_relaxed);
  {
    F::ShortTx tx;
    tx.ReadRo(&a);
    tx.Abort();
  }
  EXPECT_EQ(Probe::Get().last_strategy, ValStrategy::kCounterSkip);
  EXPECT_EQ(Probe::Get().strategy_switches, switches_before + 1);
}

}  // namespace
}  // namespace spectm
