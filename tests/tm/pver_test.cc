// Semantics specific to the pointer-embedded-version layout (pver, §6): word
// encoding, version advancement on every commit path, version-based RO validation
// that tolerates value recycling, and payload-width enforcement.
#include "src/tm/pver.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/tm/config.h"

namespace spectm {
namespace {

TEST(PverEncoding, RoundTrip) {
  for (Word ver : {0ULL, 1ULL, 32767ULL}) {
    for (Word payload : {Word{0}, EncodeInt(1), EncodeInt((1ULL << 45) - 1)}) {
      const Word w = MakePverWord(ver, payload);
      EXPECT_FALSE(PverIsLocked(w));
      EXPECT_EQ(PverVersionOf(w), ver & 0x7fff);
      EXPECT_EQ(PverPayloadOf(w), payload);
    }
  }
}

TEST(PverEncoding, BumpIncrementsVersionAndSwapsPayload) {
  const Word w = MakePverWord(5, EncodeInt(10));
  const Word b = PverBump(w, EncodeInt(20));
  EXPECT_EQ(PverVersionOf(b), 6u);
  EXPECT_EQ(DecodeInt(PverPayloadOf(b)), 20u);
}

TEST(PverEncoding, VersionWrapsAt15Bits) {
  const Word w = MakePverWord(32767, EncodeInt(1));
  const Word b = PverBump(w, EncodeInt(1));
  EXPECT_EQ(PverVersionOf(b), 0u) << "15-bit version must wrap, not corrupt payload";
  EXPECT_EQ(DecodeInt(PverPayloadOf(b)), 1u);
}

TEST(Pver, EveryCommitPathBumpsTheVersion) {
  PverSlot s;
  const auto version = [&] { return PverVersionOf(s.word.load()); };
  const Word v0 = version();

  Pver::SingleWrite(&s, EncodeInt(1));
  EXPECT_EQ(version(), v0 + 1);

  Pver::SingleCas(&s, EncodeInt(1), EncodeInt(2));
  EXPECT_EQ(version(), v0 + 2);

  {
    Pver::ShortTx t;
    t.ReadRw(&s);
    ASSERT_TRUE(t.Valid());
    t.CommitRw({EncodeInt(3)});
  }
  EXPECT_EQ(version(), v0 + 3);

  {
    Pver::FullTx tx;
    do {
      tx.Start();
      tx.Write(&s, EncodeInt(4));
    } while (!tx.Commit());
  }
  EXPECT_EQ(version(), v0 + 4);

  // Aborts must NOT bump.
  {
    Pver::ShortTx t;
    t.ReadRw(&s);
    t.Abort();
  }
  EXPECT_EQ(version(), v0 + 4);

  // Failed SingleCas must NOT bump.
  Pver::SingleCas(&s, EncodeInt(999), EncodeInt(5));
  EXPECT_EQ(version(), v0 + 4);
}

// The whole point of the embedded version: RO validation detects value RECYCLING
// (A -> B -> A), which value-based validation without counters cannot.
TEST(Pver, RoValidationDetectsValueRecycling) {
  PverSlot s;
  Pver::SingleWrite(&s, EncodeInt(7));

  Pver::ShortTx t;
  EXPECT_EQ(DecodeInt(t.ReadRo(&s)), 7u);
  ASSERT_TRUE(t.Valid());

  // Recycle the value: 7 -> 8 -> 7. The payload is back, the version is not.
  Pver::SingleWrite(&s, EncodeInt(8));
  Pver::SingleWrite(&s, EncodeInt(7));

  EXPECT_FALSE(t.ValidateRo())
      << "embedded versions must catch ABA that value comparison would miss";
}

TEST(Pver, RawWritePreservesVersion) {
  PverSlot s;
  Pver::SingleWrite(&s, EncodeInt(1));  // version 1
  const Word before = PverVersionOf(s.word.load());
  Pver::RawWrite(&s, EncodeInt(2));
  EXPECT_EQ(PverVersionOf(s.word.load()), before);
  EXPECT_EQ(DecodeInt(Pver::RawRead(&s)), 2u);
}

TEST(Pver, ConcurrentMixedApiCounter) {
  PverSlot s;
  constexpr int kThreads = 6;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (t % 2 == 0) {
          while (true) {
            Pver::ShortTx tx;
            const Word v = tx.ReadRw(&s);
            if (!tx.Valid()) {
              tx.Abort();
              continue;
            }
            tx.CommitRw({EncodeInt(DecodeInt(v) + 1)});
            break;
          }
        } else {
          while (true) {
            const Word v = Pver::SingleRead(&s);
            if (Pver::SingleCas(&s, v, EncodeInt(DecodeInt(v) + 1)) == v) {
              break;
            }
          }
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(DecodeInt(Pver::SingleRead(&s)),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace spectm
