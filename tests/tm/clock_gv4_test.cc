// GV4 pass-on-failure clock + thread-local sample cache: timestamp invariants under
// concurrency, cache freshness/staleness rules, and the hot-path properties the
// clock probes exist to prove (read-only commits never touch the shared clock RMW).
#include "src/tm/clock.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "src/tm/variants.h"

namespace spectm {
namespace {

TEST(Gv4Clock, SequentialDrawsAreUniqueAndMonotone) {
  using Clock = GlobalClockGv4<struct Gv4TagA>;
  const CommitStamp a = Clock::NextCommitStamp();
  const CommitStamp b = Clock::NextCommitStamp();
  // Uncontended CASes always win: unique, consecutive stamps, exactly like naive.
  EXPECT_TRUE(a.unique);
  EXPECT_TRUE(b.unique);
  EXPECT_EQ(b.wv, a.wv + 1);
}

TEST(Gv4Clock, ConcurrentDrawsAreMonotonePerThreadAndUniqueWhenFlagged) {
  using Clock = GlobalClockGv4<struct Gv4TagB>;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::vector<CommitStamp>> drawn(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& mine = drawn[static_cast<std::size_t>(t)];
      mine.reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        mine.push_back(Clock::NextCommitStamp());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const Word final_clock = Clock::Clock().load();
  std::set<Word> unique_stamps;
  std::uint64_t total = 0;
  for (const auto& mine : drawn) {
    for (std::size_t i = 0; i < mine.size(); ++i) {
      ++total;
      // No stamp can exceed the clock, and every stamp is positive.
      ASSERT_GE(final_clock, mine[i].wv);
      ASSERT_GT(mine[i].wv, 0u);
      // Per-thread draws are strictly increasing: a successful CAS advances past
      // everything seen, and an adopted stamp is the racing advance, which is also
      // past our previous draw.
      if (i > 0) {
        ASSERT_LT(mine[i - 1].wv, mine[i].wv);
      }
      // Unique-flagged stamps never collide across threads: each one won a CAS
      // installing exactly that value, and the clock never repeats values.
      if (mine[i].unique) {
        ASSERT_TRUE(unique_stamps.insert(mine[i].wv).second)
            << "two stamps flagged unique share wv=" << mine[i].wv;
      }
    }
  }
  // Pass-on-failure means the clock advances at most once per draw; every advance
  // corresponds to exactly one unique-flagged stamp.
  EXPECT_EQ(static_cast<Word>(unique_stamps.size()), final_clock);
  EXPECT_LE(final_clock, total);
}

TEST(Gv4Clock, SampleCacheIsMultiUseWithBoundedStaleness) {
  using Clock = GlobalClockGv4<struct Gv4TagC>;
  using Probe = ClockProbe<struct Gv4TagC>;
  const CommitStamp stamp = Clock::NextCommitStamp();

  // The cache serves exactly kClockSampleReuse Sample() calls after a commit...
  Probe::Reset();
  for (int i = 0; i < kClockSampleReuse; ++i) {
    EXPECT_EQ(Clock::Sample(), stamp.wv) << "Sample() #" << i << " is the cached wv";
  }
  EXPECT_EQ(Probe::Get().cached_samples, static_cast<std::uint64_t>(kClockSampleReuse))
      << "the probe proves every one of the bounded reuses was a cache hit";
  EXPECT_EQ(Probe::Get().shared_loads, 0u) << "cache hits must not touch the shared line";

  // ...and the (K+1)-th call reloads the shared line: staleness is bounded.
  const Word reloaded = Clock::Sample();
  EXPECT_EQ(Probe::Get().shared_loads, 1u) << "cache reuse is bounded, not unlimited";
  EXPECT_EQ(reloaded, stamp.wv);
}

TEST(Gv4Clock, SampleCacheStalenessWindowEndsAtReuseBound) {
  // Staleness bound, observed end to end: other threads race the clock forward
  // after our commit; our samples may lag for at most kClockSampleReuse calls, then
  // MUST reflect the advanced clock.
  using Clock = GlobalClockGv4<struct Gv4TagC2>;
  const CommitStamp mine = Clock::NextCommitStamp();
  std::thread other([] {
    for (int i = 0; i < 100; ++i) {
      Clock::NextCommitStamp();
    }
  });
  other.join();

  for (int i = 0; i < kClockSampleReuse; ++i) {
    EXPECT_EQ(Clock::Sample(), mine.wv) << "within the staleness window";
  }
  const Word fresh = Clock::Sample();
  EXPECT_GE(fresh, mine.wv + 100) << "past the bound, other threads' commits are seen";
  EXPECT_LE(fresh, Clock::Clock().load());
}

TEST(Gv4Clock, CachedSampleNeverExceedsTheClock) {
  // Opacity precondition: rv must never run AHEAD of the shared clock (a too-large
  // rv would admit in-flight commits without validation). A cached rv may lag — that
  // only costs extensions — so the invariant to pin is Sample() <= Clock().
  using Clock = GlobalClockGv4<struct Gv4TagD>;
  const CommitStamp mine = Clock::NextCommitStamp();
  // Other threads race the clock forward after our commit.
  std::vector<std::thread> others;
  for (int t = 0; t < 4; ++t) {
    others.emplace_back([] {
      for (int i = 0; i < 1000; ++i) {
        Clock::NextCommitStamp();
      }
    });
  }
  for (auto& t : others) {
    t.join();
  }
  const Word sampled = Clock::Sample();  // served from our (now stale) cache
  EXPECT_EQ(sampled, mine.wv);
  EXPECT_LE(sampled, Clock::Clock().load());
}

TEST(Gv4Clock, StaleCachedSnapshotStillObservesNewerCommits) {
  // Behavioral opacity check for the cache: a transaction that starts with a lagging
  // cached rv must still read values committed at higher timestamps correctly (via
  // timebase extension), never a torn or stale state.
  using Slot = OrecG::Slot;
  static Slot slot;  // static: OrecLayout hashes the address into the domain's table

  // Prime this thread's cache at a low timestamp.
  OrecG::FullTx warm;
  do {
    warm.Start();
    warm.Write(&slot, EncodeInt(1));
  } while (!warm.Commit());

  // Another thread commits a newer value (and advances the clock well past us).
  std::thread writer([&] {
    OrecG::FullTx tx;
    do {
      tx.Start();
      tx.Write(&slot, EncodeInt(42));
    } while (!tx.Commit());
    for (int i = 0; i < 100; ++i) {
      GlobalClockGv4<OrecGTag>::NextCommitStamp();
    }
  });
  writer.join();

  // Our Start() consumes the stale cached rv; the read must extend and return the
  // writer's value.
  OrecG::FullTx reader;
  Word v = 0;
  do {
    reader.Start();
    v = reader.Read(&slot);
  } while (!reader.Commit());
  EXPECT_EQ(DecodeInt(v), 42u);
}

TEST(ClockProbe, ReadOnlyCommitsDrawNoTimestamp) {
  // Acceptance criterion: the read-only commit path performs zero clock RMWs, for
  // both full and short transactions, under GV4 and naive policies alike.
  using Probe = ClockProbe<OrecGTag>;
  using ProbeNaive = ClockProbe<OrecGNaiveTag>;
  static OrecG::Slot slot_g;
  static OrecGNaive::Slot slot_n;

  // Seed both domains with one committed value (draws timestamps; not measured).
  OrecG::SingleWrite(&slot_g, EncodeInt(7));
  OrecGNaive::SingleWrite(&slot_n, EncodeInt(7));

  Probe::Reset();
  ProbeNaive::Reset();

  // Full-transaction read-only commits.
  for (int i = 0; i < 10; ++i) {
    OrecG::FullTx tx;
    do {
      tx.Start();
      tx.Read(&slot_g);
    } while (!tx.Commit());
    OrecGNaive::FullTx txn;
    do {
      txn.Start();
      txn.Read(&slot_n);
    } while (!txn.Commit());
  }
  // Short-transaction read-only paths (validation serves in place of commit) and
  // an aborted empty RW transaction (releases nothing, draws nothing).
  {
    OrecG::ShortTx stx;
    stx.ReadRo(&slot_g);
    EXPECT_TRUE(stx.ValidateRo());
    stx.Abort();
    OrecG::ShortTx empty;
    EXPECT_TRUE(empty.CommitRw({}));
  }

  EXPECT_EQ(Probe::Get().rmw_draws, 0u)
      << "read-only commits must never touch the shared clock RMW";
  EXPECT_EQ(ProbeNaive::Get().rmw_draws, 0u);

  // Control: a writing commit draws exactly one timestamp.
  OrecG::FullTx writer;
  do {
    writer.Start();
    writer.Write(&slot_g, EncodeInt(8));
  } while (!writer.Commit());
  EXPECT_EQ(Probe::Get().rmw_draws, 1u);
}

TEST(ClockProbe, SingleOpsDrawOnlyWhenTheyUpdate) {
  using Probe = ClockProbe<OrecGTag>;
  static OrecG::Slot slot;
  OrecG::SingleWrite(&slot, EncodeInt(1));

  Probe::Reset();
  EXPECT_EQ(DecodeInt(OrecG::SingleRead(&slot)), 1u);
  EXPECT_EQ(Probe::Get().rmw_draws, 0u) << "single reads are version-free";

  // Failed CAS: observes a mismatch, publishes nothing, draws nothing.
  OrecG::SingleCas(&slot, EncodeInt(9), EncodeInt(2));
  EXPECT_EQ(Probe::Get().rmw_draws, 0u);

  // Successful CAS and plain write each draw one.
  OrecG::SingleCas(&slot, EncodeInt(1), EncodeInt(2));
  EXPECT_EQ(Probe::Get().rmw_draws, 1u);
  OrecG::SingleWrite(&slot, EncodeInt(3));
  EXPECT_EQ(Probe::Get().rmw_draws, 2u);
}

TEST(Gv4Clock, ConcurrentTransfersPreserveInvariant) {
  // End-to-end opacity/serializability smoke for FullTm over GV4: randomized
  // transfers between accounts keep the total constant; concurrent read-only
  // transactions must always observe the full sum.
  constexpr int kAccounts = 16;
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr std::uint64_t kInitial = 1000;
  static OrecG::Slot accounts[kAccounts];
  for (auto& a : accounts) {
    OrecG::RawWrite(&a, EncodeInt(kInitial));
  }
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      std::uint64_t x = 0x9e3779b9ULL * static_cast<std::uint64_t>(w + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const int from = static_cast<int>(x % kAccounts);
        const int to = static_cast<int>((x >> 8) % kAccounts);
        if (from == to) {
          continue;
        }
        OrecG::FullTx tx;
        bool done = false;
        while (!done) {
          tx.Start();
          const Word a = tx.Read(&accounts[from]);
          const Word b = tx.Read(&accounts[to]);
          if (!tx.ok()) {
            tx.Commit();  // poisoned: applies backoff, returns false
            continue;
          }
          if (DecodeInt(a) > 0) {
            tx.Write(&accounts[from], EncodeInt(DecodeInt(a) - 1));
            tx.Write(&accounts[to], EncodeInt(DecodeInt(b) + 1));
          }
          done = tx.Commit();
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        OrecG::FullTx tx;
        std::uint64_t sum = 0;
        bool ok = true;
        do {
          tx.Start();
          sum = 0;
          ok = true;
          for (auto& a : accounts) {
            const Word v = tx.Read(&a);
            if (!tx.ok()) {
              ok = false;
              break;
            }
            sum += DecodeInt(v);
          }
        } while (!tx.Commit() || !ok);
        if (sum != kAccounts * kInitial) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop.store(true);
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0) << "a reader observed a torn transfer";

  std::uint64_t final_sum = 0;
  for (auto& a : accounts) {
    final_sum += DecodeInt(OrecG::RawRead(&a));
  }
  EXPECT_EQ(final_sum, kAccounts * kInitial);
}

}  // namespace
}  // namespace spectm
