// Tests for the short-transaction contract checker (§2.2 / §6): every Figure 2
// usage rule must be detected, and correct programs must pass through unperturbed.
#include "src/tm/checked_tx.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/tm/config.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

template <typename Family>
class CheckedTxSuite : public ::testing::Test {};

using Families = ::testing::Types<OrecG, TvarG, Val>;
TYPED_TEST_SUITE(CheckedTxSuite, Families);

TYPED_TEST(CheckedTxSuite, CleanTransactionHasNoViolations) {
  using F = TypeParam;
  typename F::Slot a, b;
  F::SingleWrite(&a, EncodeInt(1));
  F::SingleWrite(&b, EncodeInt(2));
  CheckedShortTx<F> t;
  const Word va = t.ReadRw(&a);
  const Word vb = t.ReadRw(&b);
  ASSERT_TRUE(t.Valid());
  EXPECT_TRUE(t.CommitRw({vb, va}));
  EXPECT_TRUE(t.Violations().empty()) << t.ViolationReport();
  EXPECT_EQ(DecodeInt(F::SingleRead(&a)), 2u);
}

TYPED_TEST(CheckedTxSuite, DetectsTooManyWrites) {
  using F = TypeParam;
  std::vector<typename F::Slot> slots(kMaxShortWrites + 1);
  CheckedShortTx<F> t;
  for (int i = 0; i < kMaxShortWrites; ++i) {
    t.ReadRw(&slots[static_cast<std::size_t>(i)]);
  }
  EXPECT_TRUE(t.Violations().empty());
  t.ReadRw(&slots[static_cast<std::size_t>(kMaxShortWrites)]);
  ASSERT_EQ(t.Violations().size(), 1u);
  EXPECT_EQ(t.Violations()[0], TxViolation::kTooManyWrites);
  t.Abort();
}

TYPED_TEST(CheckedTxSuite, DetectsTooManyReads) {
  using F = TypeParam;
  std::vector<typename F::Slot> slots(kMaxShortReads + 1);
  CheckedShortTx<F> t;
  for (int i = 0; i < kMaxShortReads; ++i) {
    t.ReadRo(&slots[static_cast<std::size_t>(i)]);
  }
  t.ReadRo(&slots[static_cast<std::size_t>(kMaxShortReads)]);
  ASSERT_FALSE(t.Violations().empty());
  EXPECT_EQ(t.Violations().back(), TxViolation::kTooManyReads);
}

TYPED_TEST(CheckedTxSuite, DetectsDuplicateLocation) {
  using F = TypeParam;
  typename F::Slot a;
  CheckedShortTx<F> t;
  t.ReadRw(&a);
  t.ReadRw(&a);
  ASSERT_FALSE(t.Violations().empty());
  EXPECT_EQ(t.Violations().back(), TxViolation::kDuplicateLocation);
  t.Abort();
}

TYPED_TEST(CheckedTxSuite, DetectsRoRwOverlap) {
  using F = TypeParam;
  typename F::Slot a;
  CheckedShortTx<F> t;
  t.ReadRw(&a);
  t.ReadRo(&a);  // "The two sets of locations must be disjoint" (§2.2)
  ASSERT_FALSE(t.Violations().empty());
  EXPECT_EQ(t.Violations().back(), TxViolation::kRoRwOverlap);
  t.Abort();
}

TYPED_TEST(CheckedTxSuite, DetectsUseAfterFinish) {
  using F = TypeParam;
  typename F::Slot a, b;
  CheckedShortTx<F> t;
  t.ReadRw(&a);
  EXPECT_TRUE(t.CommitRw({EncodeInt(1)}));
  t.ReadRw(&b);
  ASSERT_FALSE(t.Violations().empty());
  EXPECT_EQ(t.Violations().back(), TxViolation::kUseAfterFinish);
}

TYPED_TEST(CheckedTxSuite, DetectsCommitArityMismatch) {
  using F = TypeParam;
  typename F::Slot a, b;
  CheckedShortTx<F> t;
  t.ReadRw(&a);
  t.ReadRw(&b);
  EXPECT_FALSE(t.CommitRw({EncodeInt(1)}));  // two RW accesses, one value
  ASSERT_FALSE(t.Violations().empty());
  EXPECT_EQ(t.Violations().back(), TxViolation::kCommitArityMismatch);
  // The wrapper must have aborted cleanly: the slots are unlocked for other txs.
  typename F::ShortTx t2;
  t2.ReadRw(&a);
  EXPECT_TRUE(t2.Valid());
  t2.Abort();
}

TYPED_TEST(CheckedTxSuite, DetectsBadUpgradeIndex) {
  using F = TypeParam;
  typename F::Slot a;
  CheckedShortTx<F> t;
  t.ReadRo(&a);
  EXPECT_FALSE(t.UpgradeRoToRw(3));
  ASSERT_FALSE(t.Violations().empty());
  EXPECT_EQ(t.Violations().back(), TxViolation::kUpgradeBadIndex);
}

TYPED_TEST(CheckedTxSuite, DetectsRepeatedUpgrade) {
  using F = TypeParam;
  typename F::Slot a;
  F::SingleWrite(&a, EncodeInt(4));
  CheckedShortTx<F> t;
  t.ReadRo(&a);
  EXPECT_TRUE(t.UpgradeRoToRw(0));
  EXPECT_FALSE(t.UpgradeRoToRw(0));
  ASSERT_FALSE(t.Violations().empty());
  EXPECT_EQ(t.Violations().back(), TxViolation::kUpgradeRepeated);
  t.Abort();
}

TYPED_TEST(CheckedTxSuite, DetectsCommitWhileInvalid) {
  using F = TypeParam;
  typename F::Slot a;
  F::SingleWrite(&a, EncodeInt(1));
  // Invalidate by having ANOTHER THREAD hold the location's lock: a short
  // transaction may only conflict with other threads' records (one live record per
  // thread per domain is the engine contract).
  std::atomic<bool> locked{false};
  std::atomic<bool> release{false};
  std::thread blocker_thread([&] {
    typename F::ShortTx blocker;
    blocker.ReadRw(&a);
    ASSERT_TRUE(blocker.Valid());
    locked.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
    }
    blocker.Abort();
  });
  while (!locked.load(std::memory_order_acquire)) {
  }

  CheckedShortTx<F> t;
  t.ReadRw(&a);  // conflicts: underlying tx invalid
  EXPECT_FALSE(t.Valid());
  EXPECT_FALSE(t.CommitRw({EncodeInt(9)}));
  ASSERT_FALSE(t.Violations().empty());
  EXPECT_EQ(t.Violations().back(), TxViolation::kCommitWhileInvalid);

  release.store(true, std::memory_order_release);
  blocker_thread.join();
}

TYPED_TEST(CheckedTxSuite, ViolationsPersistAcrossReset) {
  using F = TypeParam;
  typename F::Slot a;
  CheckedShortTx<F> t;
  t.ReadRw(&a);
  t.ReadRw(&a);  // duplicate
  ASSERT_FALSE(t.Violations().empty());
  t.Reset();
  EXPECT_FALSE(t.Violations().empty()) << "programmer errors must survive Reset";
  // But the record itself is usable again.
  EXPECT_EQ(t.RwCount(), 0u);
}

}  // namespace
}  // namespace spectm
