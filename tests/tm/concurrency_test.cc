// Multi-threaded correctness tests for every TM family: atomicity (no lost updates,
// no torn multi-word writes), consistency of read snapshots, and interoperation of
// the short, full, and single-op APIs under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/tm/config.h"
#include "src/tm/pver.h"
#include "src/tm/val_eager.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

constexpr int kThreads = 8;

template <typename Family>
class TmConcurrency : public ::testing::Test {};

// The list includes the PR-2 additions: the GV5/GV6 clock families (shared
// non-unique timestamps + reader-side clock catch-up under real races) and the
// adaptive/bloom validation families over both layouts (writer-summary publication
// racing counter-skip/bloom-skip readers). All of it runs under TSan in CI.
using AllFamilies =
    ::testing::Types<OrecG, OrecL, TvarG, TvarL, Val, ValGlobalCounter,
                     ValPerThreadCounter, Pver, ValEager, OrecGv5, OrecGv6,
                     OrecLBloom, OrecLAdaptive, ValBloom, ValAdaptive>;
TYPED_TEST_SUITE(TmConcurrency, AllFamilies);

// No lost updates: every committed full transaction's increment must survive.
TYPED_TEST(TmConcurrency, FullTxCounterNoLostUpdates) {
  using F = TypeParam;
  typename F::Slot counter;
  constexpr int kIncrementsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        typename F::FullTx tx;
        do {
          tx.Start();
          const Word v = tx.Read(&counter);
          if (!tx.ok()) {
            continue;
          }
          tx.Write(&counter, EncodeInt(DecodeInt(v) + 1));
        } while (!tx.Commit());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(DecodeInt(F::SingleRead(&counter)),
            static_cast<std::uint64_t>(kThreads) * kIncrementsPerThread);
}

// Same property through the short RW path (encounter-time locking).
TYPED_TEST(TmConcurrency, ShortRwCounterNoLostUpdates) {
  using F = TypeParam;
  typename F::Slot counter;
  constexpr int kIncrementsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        while (true) {
          typename F::ShortTx tx;
          const Word v = tx.ReadRw(&counter);
          if (!tx.Valid()) {
            tx.Abort();
            continue;
          }
          tx.CommitRw({EncodeInt(DecodeInt(v) + 1)});
          break;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(DecodeInt(F::SingleRead(&counter)),
            static_cast<std::uint64_t>(kThreads) * kIncrementsPerThread);
}

// SingleCas must behave exactly like hardware CAS under contention.
TYPED_TEST(TmConcurrency, SingleCasCounterNoLostUpdates) {
  using F = TypeParam;
  typename F::Slot counter;
  constexpr int kIncrementsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        while (true) {
          const Word v = F::SingleRead(&counter);
          if (F::SingleCas(&counter, v, EncodeInt(DecodeInt(v) + 1)) == v) {
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(DecodeInt(F::SingleRead(&counter)),
            static_cast<std::uint64_t>(kThreads) * kIncrementsPerThread);
}

// Short and full transactions must serialize against each other on the same data.
TYPED_TEST(TmConcurrency, MixedApiCounterNoLostUpdates) {
  using F = TypeParam;
  typename F::Slot counter;
  constexpr int kIncrementsPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        if (t % 2 == 0) {
          typename F::FullTx tx;
          do {
            tx.Start();
            const Word v = tx.Read(&counter);
            if (!tx.ok()) {
              continue;
            }
            tx.Write(&counter, EncodeInt(DecodeInt(v) + 1));
          } while (!tx.Commit());
        } else {
          while (true) {
            typename F::ShortTx tx;
            const Word v = tx.ReadRw(&counter);
            if (!tx.Valid()) {
              tx.Abort();
              continue;
            }
            tx.CommitRw({EncodeInt(DecodeInt(v) + 1)});
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(DecodeInt(F::SingleRead(&counter)),
            static_cast<std::uint64_t>(kThreads) * kIncrementsPerThread);
}

// Torn-write detection: writers commit {v, v} pairs through short RW2 transactions;
// RO2 readers must never observe two different values.
TYPED_TEST(TmConcurrency, ShortRoReadsSeeConsistentPairs) {
  using F = TypeParam;
  typename F::Slot a, b;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> reads_ok{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kThreads / 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        typename F::ShortTx tx;
        const Word va = tx.ReadRo(&a);
        const Word vb = tx.ReadRo(&b);
        if (!tx.Valid() || !tx.ValidateRo()) {
          continue;
        }
        if (va != vb) {
          torn.fetch_add(1);
        }
        reads_ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads / 2; ++w) {
    writers.emplace_back([&, w] {
      Xorshift128Plus rng(static_cast<std::uint64_t>(w) + 77);
      for (int i = 0; i < 20000; ++i) {
        // Monotonically fresh values: the non-re-use property the val layout's
        // default validation relies on (§2.4 case 3). 46 random bits keep the
        // encoded value inside pver's 48-bit payload field (its narrowest family).
        const Word v = EncodeInt(rng.Next() >> 18);
        while (true) {
          typename F::ShortTx tx;
          tx.ReadRw(&a);
          tx.ReadRw(&b);
          if (!tx.Valid()) {
            tx.Abort();
            continue;
          }
          tx.CommitRw({v, v});
          break;
        }
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(reads_ok.load(), 0u);
}

// Same invariant via the full-transaction API (tests opacity / snapshot validity).
TYPED_TEST(TmConcurrency, FullTxReadsSeeConsistentPairs) {
  using F = TypeParam;
  typename F::Slot a, b;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kThreads / 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        typename F::FullTx tx;
        Word va = 0, vb = 0;
        do {
          tx.Start();
          va = tx.Read(&a);
          vb = tx.Read(&b);
        } while (!tx.Commit());
        if (va != vb) {
          torn.fetch_add(1);
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads / 2; ++w) {
    writers.emplace_back([&, w] {
      Xorshift128Plus rng(static_cast<std::uint64_t>(w) + 99);
      for (int i = 0; i < 20000; ++i) {
        const Word v = EncodeInt(rng.Next() >> 18);  // 46 bits: fits pver payloads
        typename F::FullTx tx;
        do {
          tx.Start();
          tx.Write(&a, v);
          tx.Write(&b, v);
        } while (!tx.Commit());
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_EQ(torn.load(), 0u);
}

// Bank invariant: transfers between accounts must preserve the total, observed by
// concurrent full-tx readers scanning all accounts.
TYPED_TEST(TmConcurrency, BankTransfersPreserveTotal) {
  using F = TypeParam;
  constexpr int kAccounts = 16;
  constexpr std::uint64_t kInitial = 1000;
  std::vector<typename F::Slot> accounts(kAccounts);
  for (auto& acc : accounts) {
    F::SingleWrite(&acc, EncodeInt(kInitial));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad_totals{0};

  std::vector<std::thread> auditors;
  for (int r = 0; r < 2; ++r) {
    auditors.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        typename F::FullTx tx;
        std::uint64_t total = 0;
        bool good = true;
        do {
          tx.Start();
          total = 0;
          good = true;
          for (auto& acc : accounts) {
            const Word v = tx.Read(&acc);
            if (!tx.ok()) {
              good = false;
              break;
            }
            total += DecodeInt(v);
          }
        } while (!tx.Commit() || !good);
        if (total != kAccounts * kInitial) {
          bad_totals.fetch_add(1);
        }
      }
    });
  }

  std::vector<std::thread> transferrers;
  for (int w = 0; w < kThreads - 2; ++w) {
    transferrers.emplace_back([&, w] {
      Xorshift128Plus rng(static_cast<std::uint64_t>(w) * 31 + 5);
      for (int i = 0; i < 20000; ++i) {
        const auto from = rng.NextBounded(kAccounts);
        auto to = rng.NextBounded(kAccounts);
        if (to == from) {
          to = (to + 1) % kAccounts;
        }
        // Transfer via a short RW2 transaction.
        while (true) {
          typename F::ShortTx tx;
          const Word vf = tx.ReadRw(&accounts[from]);
          const Word vt = tx.ReadRw(&accounts[to]);
          if (!tx.Valid()) {
            tx.Abort();
            continue;
          }
          const std::uint64_t f = DecodeInt(vf);
          const std::uint64_t amount = f > 0 ? 1 + rng.NextBounded(f) : 0;
          tx.CommitRw({EncodeInt(f - amount), EncodeInt(DecodeInt(vt) + amount)});
          break;
        }
      }
    });
  }
  for (auto& t : transferrers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : auditors) {
    t.join();
  }
  EXPECT_EQ(bad_totals.load(), 0u);

  std::uint64_t final_total = 0;
  for (auto& acc : accounts) {
    final_total += DecodeInt(F::SingleRead(&acc));
  }
  EXPECT_EQ(final_total, kAccounts * kInitial);
}

// The upgrade path under contention: concurrent conditional increments built from
// RO reads + upgrade must neither lose updates nor fire on stale guards.
TYPED_TEST(TmConcurrency, UpgradePathConditionalIncrements) {
  using F = TypeParam;
  typename F::Slot guard_slot, counter;
  F::SingleWrite(&guard_slot, EncodeInt(1));  // guard always satisfied
  constexpr int kPerThread = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        while (true) {
          typename F::ShortTx tx;
          const Word g = tx.ReadRo(&guard_slot);
          const Word c = tx.ReadRo(&counter);
          if (!tx.Valid() || DecodeInt(g) != 1) {
            tx.Reset();
            continue;
          }
          if (!tx.UpgradeRoToRw(1)) {
            tx.Reset();
            continue;
          }
          if (tx.CommitMixed({EncodeInt(DecodeInt(c) + 1)})) {
            break;
          }
          tx.Reset();
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(DecodeInt(F::SingleRead(&counter)),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace spectm
