#include "src/tm/mwcas.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/tm/config.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

template <typename Family>
class MwcasTest : public ::testing::Test {};

using AllFamilies = ::testing::Types<OrecG, OrecL, TvarG, TvarL, Val, ValGlobalCounter,
                                     ValPerThreadCounter>;
TYPED_TEST_SUITE(MwcasTest, AllFamilies);

TYPED_TEST(MwcasTest, DcssSucceedsWhenBothMatch) {
  using F = TypeParam;
  typename F::Slot a1, a2;
  F::SingleWrite(&a1, EncodeInt(1));
  F::SingleWrite(&a2, EncodeInt(2));
  EXPECT_TRUE((Dcss<F>(&a1, &a2, EncodeInt(1), EncodeInt(2), EncodeInt(10))));
  EXPECT_EQ(DecodeInt(F::SingleRead(&a1)), 10u);
  EXPECT_EQ(DecodeInt(F::SingleRead(&a2)), 2u) << "DCSS must not modify a2";
}

TYPED_TEST(MwcasTest, DcssFailsOnFirstMismatch) {
  using F = TypeParam;
  typename F::Slot a1, a2;
  F::SingleWrite(&a1, EncodeInt(5));
  F::SingleWrite(&a2, EncodeInt(2));
  EXPECT_FALSE((Dcss<F>(&a1, &a2, EncodeInt(1), EncodeInt(2), EncodeInt(10))));
  EXPECT_EQ(DecodeInt(F::SingleRead(&a1)), 5u);
}

TYPED_TEST(MwcasTest, DcssFailsOnSecondMismatch) {
  using F = TypeParam;
  typename F::Slot a1, a2;
  F::SingleWrite(&a1, EncodeInt(1));
  F::SingleWrite(&a2, EncodeInt(9));
  EXPECT_FALSE((Dcss<F>(&a1, &a2, EncodeInt(1), EncodeInt(2), EncodeInt(10))));
  EXPECT_EQ(DecodeInt(F::SingleRead(&a1)), 1u);
}

TYPED_TEST(MwcasTest, CasnAllWidths) {
  using F = TypeParam;
  for (std::size_t n = 1; n <= 4; ++n) {
    std::vector<typename F::Slot> slots(4);
    typename F::Slot* addrs[4];
    Word expected[4];
    Word desired[4];
    for (std::size_t i = 0; i < n; ++i) {
      F::SingleWrite(&slots[i], EncodeInt(i + 1));
      addrs[i] = &slots[i];
      expected[i] = EncodeInt(i + 1);
      desired[i] = EncodeInt(100 + i);
    }
    EXPECT_TRUE((Casn<F>(addrs, expected, desired, n))) << "width " << n;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(F::SingleRead(&slots[i]), desired[i]);
    }
  }
}

TYPED_TEST(MwcasTest, CasnFailsAtomically) {
  using F = TypeParam;
  std::vector<typename F::Slot> slots(3);
  typename F::Slot* addrs[3];
  Word expected[3];
  Word desired[3];
  for (std::size_t i = 0; i < 3; ++i) {
    F::SingleWrite(&slots[i], EncodeInt(i));
    addrs[i] = &slots[i];
    expected[i] = EncodeInt(i);
    desired[i] = EncodeInt(50 + i);
  }
  expected[2] = EncodeInt(999);  // mismatch on the last location
  EXPECT_FALSE((Casn<F>(addrs, expected, desired, 3)));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(DecodeInt(F::SingleRead(&slots[i])), i) << "partial CASN visible";
  }
}

// Concurrent CASN-based increments on disjoint pairs must be atomic: both words of a
// pair always carry the same count.
TYPED_TEST(MwcasTest, ConcurrentCasnKeepsPairsInSync) {
  using F = TypeParam;
  typename F::Slot a, b;
  constexpr int kThreads = 6;
  constexpr int kPerThread = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      typename F::Slot* addrs[2] = {&a, &b};
      for (int i = 0; i < kPerThread; ++i) {
        while (true) {
          const Word va = F::SingleRead(&a);
          const Word vb = F::SingleRead(&b);
          if (va != vb) {
            continue;  // raced between the two single reads; resample
          }
          const Word expected[2] = {va, vb};
          const Word next = EncodeInt(DecodeInt(va) + 1);
          const Word desired[2] = {next, next};
          if (Casn<F>(addrs, expected, desired, 2)) {
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(DecodeInt(F::SingleRead(&a)),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(F::SingleRead(&a), F::SingleRead(&b));
}

}  // namespace
}  // namespace spectm
