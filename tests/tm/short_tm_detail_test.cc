// Engine-detail tests for short transactions: version restoration on abort, the
// invisible-read property, lock observability across APIs, orec encoding, and the
// OrecTable hash distribution.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/tm/config.h"
#include "src/tm/orec.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

// --- Orec word encoding ------------------------------------------------------------------

TEST(OrecEncoding, VersionRoundTrip) {
  for (Word v : {0ULL, 1ULL, 42ULL, (1ULL << 62) - 1}) {
    const Word w = MakeOrecVersion(v);
    EXPECT_FALSE(OrecIsLocked(w));
    EXPECT_EQ(OrecVersionOf(w), v);
  }
}

TEST(OrecEncoding, LockedCarriesOwner) {
  TxDesc& desc = DescOf<struct EncodingTestTag>();
  const Word w = MakeOrecLocked(&desc);
  EXPECT_TRUE(OrecIsLocked(w));
  EXPECT_EQ(OrecOwnerOf(w), &desc);
}

TEST(OrecTable, DeterministicMapping) {
  OrecTable table(10);
  int x;
  EXPECT_EQ(&table.ForAddr(&x), &table.ForAddr(&x));
  EXPECT_EQ(table.Size(), 1024u);
}

TEST(OrecTable, SpreadsSequentialAddresses) {
  OrecTable table(10);
  std::vector<std::uint64_t> arena(4096);
  std::set<const void*> distinct;
  for (const auto& w : arena) {
    distinct.insert(&table.ForAddr(&w));
  }
  // Fibonacci hashing on sequential addresses should spread across most buckets.
  EXPECT_GT(distinct.size(), 700u);
}

// The striped table's whole point (orec.h): an orec occupies the SAME
// partitioned-counter stripe as every data address that maps to it, so
// stripe-keyed validation agrees whether it keys off data words or orecs.
TEST(OrecTable, StripedOrecSharesCounterStripeWithItsData) {
  OrecTableT<OrecStriping::kStriped> table;  // clamps to >= kMinStripedLog2
  std::vector<std::uint64_t> arena(1u << 14);
  for (const auto& w : arena) {
    EXPECT_EQ(CounterStripeOf(&table.ForAddr(&w)), CounterStripeOf(&w))
        << "orec stripe diverges from data stripe for " << &w;
  }
}

// Same-region addresses must still scatter across lines WITHIN their segment
// (the in-segment Fibonacci hash), or the striped table would serialize every
// structurally local read set onto a handful of orecs.
TEST(OrecTable, StripedSpreadsWithinSegment) {
  OrecTableT<OrecStriping::kStriped> table;
  std::vector<std::uint64_t> arena(512);  // one 4 KiB region's worth of words
  std::set<const void*> distinct;
  for (const auto& w : arena) {
    distinct.insert(&table.ForAddr(&w));
  }
  EXPECT_GT(distinct.size(), 300u);
}

// --- Abort semantics ----------------------------------------------------------------------

template <typename Family>
class ShortTmDetail : public ::testing::Test {};

using AllFamilies = ::testing::Types<OrecG, OrecL, TvarG, TvarL, Val>;
TYPED_TEST_SUITE(ShortTmDetail, AllFamilies);

// Aborting an RW transaction must restore meta-data exactly: a reader that recorded
// the location BEFORE the aborted transaction must still validate successfully
// afterwards (an abort publishes nothing, so it must not look like a commit).
TYPED_TEST(ShortTmDetail, AbortIsInvisibleToReaders) {
  using F = TypeParam;
  typename F::Slot a;
  F::SingleWrite(&a, EncodeInt(5));

  typename F::ShortTx reader;
  EXPECT_EQ(DecodeInt(reader.ReadRo(&a)), 5u);

  // Another thread locks and aborts.
  std::thread t([&] {
    typename F::ShortTx w;
    EXPECT_EQ(DecodeInt(w.ReadRw(&a)), 5u);
    ASSERT_TRUE(w.Valid());
    w.Abort();
  });
  t.join();

  EXPECT_TRUE(reader.ValidateRo())
      << "an aborted RW transaction must leave no observable trace";
}

// ...whereas a committed RW transaction must invalidate that same reader.
TYPED_TEST(ShortTmDetail, CommitIsVisibleToReaders) {
  using F = TypeParam;
  typename F::Slot a;
  F::SingleWrite(&a, EncodeInt(5));

  typename F::ShortTx reader;
  EXPECT_EQ(DecodeInt(reader.ReadRo(&a)), 5u);

  std::thread t([&] {
    typename F::ShortTx w;
    w.ReadRw(&a);
    ASSERT_TRUE(w.Valid());
    w.CommitRw({EncodeInt(6)});
  });
  t.join();

  EXPECT_FALSE(reader.ValidateRo());
}

// Invisible reads: a read-only transaction must not block or abort concurrent
// writers in any way (§4.1 "We use invisible reads").
TYPED_TEST(ShortTmDetail, RoReadsDoNotBlockWriters) {
  using F = TypeParam;
  typename F::Slot a;
  F::SingleWrite(&a, EncodeInt(1));

  typename F::ShortTx reader;
  reader.ReadRo(&a);
  ASSERT_TRUE(reader.Valid());

  // Writers on another thread proceed freely while the RO record is live.
  std::thread t([&] {
    for (int i = 0; i < 100; ++i) {
      typename F::ShortTx w;
      const Word v = w.ReadRw(&a);
      ASSERT_TRUE(w.Valid()) << "RO reader must be invisible to writers";
      w.CommitRw({EncodeInt(DecodeInt(v) + 1)});
    }
  });
  t.join();
  EXPECT_EQ(DecodeInt(F::SingleRead(&a)), 101u);
  EXPECT_FALSE(reader.ValidateRo());
}

// A lock held by an RW transaction must make concurrent RW readers fail fast
// (conservative deadlock avoidance, §2.2/§2.4) rather than block.
TYPED_TEST(ShortTmDetail, ConflictFailsFast) {
  using F = TypeParam;
  typename F::Slot a;
  std::atomic<bool> locked{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    typename F::ShortTx w;
    w.ReadRw(&a);
    locked.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
    }
    w.Abort();
  });
  while (!locked.load(std::memory_order_acquire)) {
  }

  typename F::ShortTx contender;
  contender.ReadRw(&a);
  EXPECT_FALSE(contender.Valid());
  contender.Abort();

  typename F::ShortTx ro;
  ro.ReadRo(&a);
  EXPECT_FALSE(ro.Valid()) << "RO reads treat locked locations conservatively";

  release.store(true, std::memory_order_release);
  holder.join();
}

// Partial-arity transactions: every RW width from 1 to kMaxShortWrites commits the
// right values in access order.
TYPED_TEST(ShortTmDetail, AllRwArities) {
  using F = TypeParam;
  std::vector<typename F::Slot> slots(kMaxShortWrites);
  for (int width = 1; width <= kMaxShortWrites; ++width) {
    for (int i = 0; i < width; ++i) {
      F::SingleWrite(&slots[static_cast<std::size_t>(i)], EncodeInt(0));
    }
    typename F::ShortTx t;
    for (int i = 0; i < width; ++i) {
      t.ReadRw(&slots[static_cast<std::size_t>(i)]);
    }
    ASSERT_TRUE(t.Valid());
    switch (width) {
      case 1:
        t.CommitRw({EncodeInt(1)});
        break;
      case 2:
        t.CommitRw({EncodeInt(1), EncodeInt(2)});
        break;
      case 3:
        t.CommitRw({EncodeInt(1), EncodeInt(2), EncodeInt(3)});
        break;
      default:
        t.CommitRw({EncodeInt(1), EncodeInt(2), EncodeInt(3), EncodeInt(4)});
        break;
    }
    for (int i = 0; i < width; ++i) {
      EXPECT_EQ(DecodeInt(F::SingleRead(&slots[static_cast<std::size_t>(i)])),
                static_cast<std::uint64_t>(i) + 1)
          << "width " << width << " slot " << i;
    }
  }
}

// A ShortTx destroyed without Commit/Abort must release its locks (RAII safety
// net), so the location stays usable.
TYPED_TEST(ShortTmDetail, DestructorReleasesLocks) {
  using F = TypeParam;
  typename F::Slot a;
  F::SingleWrite(&a, EncodeInt(3));
  {
    typename F::ShortTx t;
    t.ReadRw(&a);
    ASSERT_TRUE(t.Valid());
    // No commit, no abort: scope exit must clean up.
  }
  typename F::ShortTx t2;
  EXPECT_EQ(DecodeInt(t2.ReadRw(&a)), 3u);
  EXPECT_TRUE(t2.Valid());
  t2.Abort();
}

}  // namespace
}  // namespace spectm
