// Semantics specific to the eager-locking value STM (val-eager, §6): read-locking,
// read-read conflicts, idempotent re-acquisition, and interoperation with val-short
// transactions on the same words.
#include "src/tm/val_eager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/tm/config.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

TEST(ValEager, ReadLocksTheWord) {
  ValEager::Slot a;
  ValEager::SingleWrite(&a, EncodeInt(1));

  ValEager::FullTx tx;
  tx.Start();
  EXPECT_EQ(DecodeInt(tx.Read(&a)), 1u);
  ASSERT_TRUE(tx.ok());

  // Another thread's transaction must conflict on the same word even read-only.
  std::atomic<bool> other_failed{false};
  std::thread other([&] {
    ValEager::FullTx tx2;
    tx2.Start();
    tx2.Read(&a);
    other_failed.store(!tx2.ok());
    tx2.Commit();
  });
  other.join();
  EXPECT_TRUE(other_failed.load()) << "eager reads must lock (read-read conflict)";
  EXPECT_TRUE(tx.Commit());
}

TEST(ValEager, RepeatAccessIsIdempotent) {
  ValEager::Slot a;
  ValEager::SingleWrite(&a, EncodeInt(3));
  ValEager::FullTx tx;
  do {
    tx.Start();
    EXPECT_EQ(DecodeInt(tx.Read(&a)), 3u);
    EXPECT_EQ(DecodeInt(tx.Read(&a)), 3u);  // same entry, no self-deadlock
    tx.Write(&a, EncodeInt(4));
    EXPECT_EQ(DecodeInt(tx.Read(&a)), 4u);  // read-after-write
    tx.Write(&a, EncodeInt(5));
  } while (!tx.Commit());
  EXPECT_EQ(DecodeInt(ValEager::SingleRead(&a)), 5u);
}

TEST(ValEager, CommitReleasesReadOnlyWordsUnchanged) {
  ValEager::Slot a;
  ValEager::SingleWrite(&a, EncodeInt(9));
  ValEager::FullTx tx;
  do {
    tx.Start();
    tx.Read(&a);
  } while (!tx.Commit());
  EXPECT_EQ(DecodeInt(ValEager::SingleRead(&a)), 9u);
  // The word must be unlocked again: a val-short transaction can acquire it.
  ValEager::ShortTx t;
  EXPECT_EQ(DecodeInt(t.ReadRw(&a)), 9u);
  EXPECT_TRUE(t.Valid());
  t.Abort();
}

TEST(ValEager, UserAbortRestoresEverything) {
  ValEager::Slot a, b;
  ValEager::SingleWrite(&a, EncodeInt(1));
  ValEager::SingleWrite(&b, EncodeInt(2));
  ValEager::FullTx tx;
  tx.Start();
  tx.Read(&a);
  tx.Write(&b, EncodeInt(99));
  tx.AbortTx();
  EXPECT_FALSE(tx.Commit());
  EXPECT_EQ(DecodeInt(ValEager::SingleRead(&a)), 1u);
  EXPECT_EQ(DecodeInt(ValEager::SingleRead(&b)), 2u);
}

TEST(ValEager, InteropWithValShortOnSameWords) {
  ValEager::Slot a;
  ValEager::SingleWrite(&a, EncodeInt(0));
  constexpr int kThreads = 6;
  constexpr int kPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (t % 2 == 0) {
          // Eager full-transaction increment.
          ValEager::FullTx tx;
          do {
            tx.Start();
            const Word v = tx.Read(&a);
            if (!tx.ok()) {
              continue;
            }
            tx.Write(&a, EncodeInt(DecodeInt(v) + 1));
          } while (!tx.Commit());
        } else {
          // val-short increment against the same word.
          while (true) {
            ValEager::ShortTx tx;
            const Word v = tx.ReadRw(&a);
            if (!tx.Valid()) {
              tx.Abort();
              continue;
            }
            tx.CommitRw({EncodeInt(DecodeInt(v) + 1)});
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(DecodeInt(ValEager::SingleRead(&a)),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ValEager, NoValidationMeansNoAbortOnceAcquired) {
  // Once every word is acquired, nothing can invalidate the transaction: commit is
  // guaranteed. (This is the "simplified programming model" — contrast with the
  // failed-validation paths every other engine's tests need.)
  ValEager::Slot a, b, c;
  ValEager::FullTx tx;
  tx.Start();
  tx.Read(&a);
  tx.Read(&b);
  tx.Write(&c, EncodeInt(7));
  ASSERT_TRUE(tx.ok());
  EXPECT_TRUE(tx.Commit()) << "acquired transactions must always commit";
  EXPECT_EQ(DecodeInt(ValEager::SingleRead(&c)), 7u);
}

}  // namespace
}  // namespace spectm
