// Regression anchor for pver's version-wrap protection (pver.h): the embedded
// version wraps after exactly 2^15 = 32768 committed updates, so raw word equality
// alone would accept a read log entry whose location absorbed exactly that many
// commits — with the payload also returning to the original value — inside ONE
// read-validate window. The epoch-stamped window guard closes that hole: writers
// advance the domain epoch before every version bump, and a validator rejects any
// window whose stamp has drifted by a full version period. These tests pin the
// boundary from both sides: one commit short of the wrap is detected by equality,
// the exact wrap (formerly the documented blind spot) and every multiple of it are
// detected by the guard, and a re-stamped retry window validates normally again.
#include "src/tm/pver.h"

#include <gtest/gtest.h>

#include "src/tm/config.h"

namespace spectm {
namespace {

constexpr int kVersionBits = 64 - kPverVersionShift;
constexpr std::uint64_t kWrapCommits = std::uint64_t{1} << kVersionBits;

TEST(PverWrap, VersionFieldIs15Bits) {
  // The wrap period is a compile-time property of the layout; if someone widens
  // or narrows the field, the guard horizon and these tests must be revisited.
  EXPECT_EQ(kVersionBits, 15);
  EXPECT_EQ(kWrapCommits, 32768u);
  EXPECT_EQ(kPverVersionPeriod, kWrapCommits);
  // PverBump wraps modulo 2^15 — version kWrapCommits-1 + 1 == 0.
  const Word top = MakePverWord(kWrapCommits - 1, EncodeInt(1));
  EXPECT_EQ(PverVersionOf(PverBump(top, EncodeInt(1))), 0u);
}

TEST(PverWrap, OneCommitShortOfWrapIsDetected) {
  PverSlot slot;
  PverShortTm::SingleWrite(&slot, EncodeInt(1));

  PverShortTm::ShortTx tx;
  EXPECT_EQ(DecodeInt(tx.ReadRo(&slot)), 1u);
  ASSERT_TRUE(tx.Valid());

  // 32767 commits, ending back at the original payload: version differs by
  // kWrapCommits-1, so plain equality still catches it (the epoch guard has not
  // tripped yet — the window saw fewer commits than a full period).
  for (std::uint64_t i = 0; i < kWrapCommits - 2; ++i) {
    PverShortTm::SingleWrite(&slot, EncodeInt(2));
  }
  PverShortTm::SingleWrite(&slot, EncodeInt(1));
  EXPECT_FALSE(tx.ValidateRo()) << "a non-wrap number of commits must be detected";
  tx.Abort();
}

TEST(PverWrap, ExactWrapWithRecycledPayloadIsDetected) {
  PverSlot slot;
  PverShortTm::SingleWrite(&slot, EncodeInt(1));

  PverShortTm::ShortTx tx;
  EXPECT_EQ(DecodeInt(tx.ReadRo(&slot)), 1u);
  ASSERT_TRUE(tx.Valid());

  // Exactly 2^15 commits with the payload returning to its original value: the
  // word is bit-for-bit identical to the logged one. This was the documented
  // blind spot before the epoch-stamped window guard; the validator must now
  // reject the window because its stamp has drifted by a full version period.
  for (std::uint64_t i = 0; i < kWrapCommits - 1; ++i) {
    PverShortTm::SingleWrite(&slot, EncodeInt(2));
  }
  PverShortTm::SingleWrite(&slot, EncodeInt(1));
  EXPECT_FALSE(tx.ValidateRo())
      << "an exact version wrap inside one read-validate window must be detected";
  tx.Abort();
}

TEST(PverWrap, DetectionSurvivesPastTheWrap) {
  PverSlot slot;
  PverShortTm::SingleWrite(&slot, EncodeInt(1));

  PverShortTm::ShortTx tx;
  EXPECT_EQ(DecodeInt(tx.ReadRo(&slot)), 1u);
  ASSERT_TRUE(tx.Valid());

  // TWO full periods of commits, again recycling the payload: the word is once
  // more bit-identical, and the guard must keep failing the window no matter how
  // many multiples of the period elapse (the drift only grows).
  for (std::uint64_t i = 0; i < 2 * kWrapCommits - 1; ++i) {
    PverShortTm::SingleWrite(&slot, EncodeInt(2));
  }
  PverShortTm::SingleWrite(&slot, EncodeInt(1));
  EXPECT_FALSE(tx.ValidateRo())
      << "detection must survive arbitrarily far past the first wrap";
  tx.Abort();
}

TEST(PverWrap, RetryWindowRestampsAndValidates) {
  PverSlot slot;
  PverShortTm::SingleWrite(&slot, EncodeInt(1));

  PverShortTm::ShortTx tx;
  (void)tx.ReadRo(&slot);
  for (std::uint64_t i = 0; i < kWrapCommits - 1; ++i) {
    PverShortTm::SingleWrite(&slot, EncodeInt(2));
  }
  PverShortTm::SingleWrite(&slot, EncodeInt(1));
  ASSERT_FALSE(tx.ValidateRo());

  // The guard is a property of the WINDOW, not the word: the retry attempt
  // stamps afresh at its first read and must validate normally.
  tx.Reset();
  EXPECT_EQ(DecodeInt(tx.ReadRo(&slot)), 1u);
  EXPECT_TRUE(tx.Valid());
  EXPECT_TRUE(tx.ValidateRo());
  tx.Abort();
}

TEST(PverWrap, FullTmReadValidationDetectsTheWrap) {
  PverSlot slot;
  PverSlot other;
  PverShortTm::SingleWrite(&slot, EncodeInt(1));
  PverShortTm::SingleWrite(&other, EncodeInt(7));

  PverFullTm::Tx tx;
  tx.Start();
  EXPECT_EQ(DecodeInt(tx.Read(&slot)), 1u);
  ASSERT_TRUE(tx.ok());

  // Recycle the logged word across exactly one full period while the full
  // transaction's read-validate window stays open; the incremental validation
  // run by the NEXT read must fail the attempt via the epoch guard even though
  // the logged word re-reads bit-identical.
  for (std::uint64_t i = 0; i < kWrapCommits - 1; ++i) {
    PverShortTm::SingleWrite(&slot, EncodeInt(2));
  }
  PverShortTm::SingleWrite(&slot, EncodeInt(1));
  (void)tx.Read(&other);
  EXPECT_FALSE(tx.ok()) << "full-tm incremental validation must detect the wrap";
  EXPECT_FALSE(tx.Commit());
}

}  // namespace
}  // namespace spectm
