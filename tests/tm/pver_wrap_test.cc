// Regression documentation for pver's 15-bit version wrap hazard (pver.h): the
// embedded version wraps after exactly 2^15 = 32768 committed updates, so a read
// log entry whose location absorbs exactly that many commits — with the payload
// also returning to the original value — inside ONE read-validate window passes
// validation despite having changed. These tests pin the hazard boundary: one
// commit short of the wrap is detected, the exact wrap is not. If the epoch-stamp
// fix (see the pver.h comment trail) lands, the Wrap test flips and must be
// rewritten to assert detection.
#include "src/tm/pver.h"

#include <gtest/gtest.h>

#include "src/tm/config.h"

namespace spectm {
namespace {

constexpr int kVersionBits = 64 - kPverVersionShift;
constexpr std::uint64_t kWrapCommits = std::uint64_t{1} << kVersionBits;

TEST(PverWrap, VersionFieldIs15Bits) {
  // The hazard window is a compile-time property of the layout; if someone widens
  // or narrows the field, the wrap tests below must be revisited.
  EXPECT_EQ(kVersionBits, 15);
  EXPECT_EQ(kWrapCommits, 32768u);
  // PverBump wraps modulo 2^15 — version kWrapCommits-1 + 1 == 0.
  const Word top = MakePverWord(kWrapCommits - 1, EncodeInt(1));
  EXPECT_EQ(PverVersionOf(PverBump(top, EncodeInt(1))), 0u);
}

TEST(PverWrap, OneCommitShortOfWrapIsDetected) {
  PverSlot slot;
  PverShortTm::SingleWrite(&slot, EncodeInt(1));

  PverShortTm::ShortTx tx;
  EXPECT_EQ(DecodeInt(tx.ReadRo(&slot)), 1u);
  ASSERT_TRUE(tx.Valid());

  // 32767 commits, ending back at the original payload: version differs by
  // kWrapCommits-1, so validation still catches it.
  for (std::uint64_t i = 0; i < kWrapCommits - 2; ++i) {
    PverShortTm::SingleWrite(&slot, EncodeInt(2));
  }
  PverShortTm::SingleWrite(&slot, EncodeInt(1));
  EXPECT_FALSE(tx.ValidateRo()) << "a non-wrap number of commits must be detected";
  tx.Abort();
}

TEST(PverWrap, ExactWrapWithRecycledPayloadIsInvisible) {
  PverSlot slot;
  PverShortTm::SingleWrite(&slot, EncodeInt(1));

  PverShortTm::ShortTx tx;
  EXPECT_EQ(DecodeInt(tx.ReadRo(&slot)), 1u);
  ASSERT_TRUE(tx.Valid());

  // Exactly 2^15 commits with the payload returning to its original value: the
  // word is bit-for-bit identical to the logged one. THIS IS THE DOCUMENTED
  // HAZARD — validation cannot see it. The paper's §4.1 position on narrow
  // counters accepts the bound (the window for a short transaction is
  // sub-microsecond; 32768 commits cannot fit in it on real hardware — this test
  // holds the window open artificially).
  for (std::uint64_t i = 0; i < kWrapCommits - 1; ++i) {
    PverShortTm::SingleWrite(&slot, EncodeInt(2));
  }
  PverShortTm::SingleWrite(&slot, EncodeInt(1));
  EXPECT_TRUE(tx.ValidateRo())
      << "if this fails, the wrap hazard has been fixed — update pver.h's comment "
         "trail and rewrite this test to assert detection instead";
  tx.Abort();
}

}  // namespace
}  // namespace spectm
