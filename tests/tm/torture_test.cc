// Fail-point torture: the linked-set balance invariant (adaptive_val_test.cc)
// re-run under deterministic fault injection. Plain stress tests hit the
// protocol's razor-edge windows by luck; here the fail-point layer
// (src/common/failpoint.h) turns luck into a schedule — forced aborts at the
// sandwich/validate/lock sites, injected delays inside the publication
// sequence — all from a fixed seed, so a failing schedule replays.
//
// Without SPECTM_FAILPOINTS the injection schedules compile away and this
// file still runs the un-injected baseline, so the binary is meaningful in
// every build mode (the CI tsan smoke subset includes it).
#include "src/common/failpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sched.h"
#include "src/structures/hash_tm_full.h"
#include "src/tm/serial.h"
#include "src/tm/txdesc.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

// Smaller than adaptive_val_test's battery: this binary runs several
// schedules per family and rides in the TSan smoke subset.
constexpr int kWorkers = 4;
constexpr int kOpsPerThread = 20000;
constexpr std::uint64_t kKeys = 128;

struct TortureResult {
  std::int64_t balance_delta = 0;   // (present - expected): 0 iff sound
  std::uint64_t escalations = 0;    // CmProbe totals over all workers
  std::uint64_t serial_commits = 0;
  std::uint64_t max_abort_streak = 0;
};

template <typename Family>
TortureResult RunTortureBalance(std::uint64_t seed) {
  using Probe = CmProbe<typename Family::DomainTag>;
  TmHashSet<Family> set(32);
  std::vector<std::int64_t> balance(kWorkers, 0);
  std::atomic<std::uint64_t> escalations{0};
  std::atomic<std::uint64_t> serial_commits{0};
  std::atomic<std::uint64_t> max_streak{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&, t] {
      Probe::Reset();
      Xorshift128Plus rng(seed + static_cast<std::uint64_t>(t) * 7919);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t k = rng.NextBounded(kKeys);
        if (rng.Next() & 1) {
          if (set.Insert(k)) {
            ++balance[static_cast<std::size_t>(t)];
          }
        } else {
          if (set.Remove(k)) {
            --balance[static_cast<std::size_t>(t)];
          }
        }
      }
      const auto probe = Probe::Get();
      escalations.fetch_add(probe.escalations);
      serial_commits.fetch_add(probe.serial_commits);
      std::uint64_t seen = max_streak.load();
      while (probe.max_abort_streak > seen &&
             !max_streak.compare_exchange_weak(seen, probe.max_abort_streak)) {
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  std::int64_t expected = 0;
  for (const std::int64_t b : balance) {
    expected += b;
  }
  std::int64_t present = 0;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    present += set.Contains(k) ? 1 : 0;
  }
  TortureResult r;
  r.balance_delta = present - expected;
  r.escalations = escalations.load();
  r.serial_commits = serial_commits.load();
  r.max_abort_streak = max_streak.load();
  return r;
}

class TortureTest : public ::testing::Test {
 protected:
  void TearDown() override {
#if defined(SPECTM_FAILPOINTS)
    failpoint::DisarmAll();
    failpoint::ResetHits();
#endif
    SetSerialEscalationStreak(kSerialEscalationStreak);
  }
};

TEST_F(TortureTest, BaselineOrecAdaptive) {
  EXPECT_EQ(RunTortureBalance<OrecLAdaptive>(0x7041).balance_delta, 0);
}

TEST_F(TortureTest, BaselineValAdaptive) {
  EXPECT_EQ(RunTortureBalance<ValAdaptive>(0x7042).balance_delta, 0);
}

TEST_F(TortureTest, BaselineValPart) {
  EXPECT_EQ(RunTortureBalance<ValPart>(0x7043).balance_delta, 0);
}

#if defined(SPECTM_FAILPOINTS)

// Forced aborts at the decision sites: every read's sandwich re-check, every
// skip/walk decision, every lock CAS can spuriously "conflict". The engines
// must treat an injected abort exactly like a real one — token released, locks
// restored, logs replayed on retry — or the balance diverges.
TEST_F(TortureTest, ForcedAbortScheduleKeepsBalance) {
  failpoint::SetSeed(0xabf0);
  failpoint::Arm(failpoint::Site::kPostReadPreSandwich, /*abort_pct=*/4);
  failpoint::Arm(failpoint::Site::kPreValidate, /*abort_pct=*/3);
  failpoint::Arm(failpoint::Site::kLockAcquire, /*abort_pct=*/4);
  EXPECT_EQ(RunTortureBalance<OrecLAdaptive>(0x7141).balance_delta, 0);
  EXPECT_EQ(RunTortureBalance<ValAdaptive>(0x7142).balance_delta, 0);
  EXPECT_GT(failpoint::Hits(failpoint::Site::kLockAcquire), 0u)
      << "the schedule never actually fired — the torture was a no-op";
}

#if defined(SPECTM_SCHED)

// Scheduler-driven publication windows: under SPECTM_SCHED the cooperative
// controller OWNS the interleaving — every planted site, including the
// stripe-bump -> counter-bump -> ring-publish sequence, is a schedule point
// where the seeded random walk can park a committer mid-publication and run
// every other worker through the half-published window. Unlike the spin-delay
// variant below this needs no second core to interleave (the PR 6 caveat) and
// the whole run is deterministic and replayable from the seed.
template <typename Family>
std::int64_t RunSchedTortureBalance(std::uint64_t seed, int workers, int ops,
                                    bool* point_limit_hit) {
  TmHashSet<Family> set(32);
  std::vector<std::int64_t> balance(static_cast<std::size_t>(workers), 0);
  std::vector<std::function<void()>> bodies;
  for (int t = 0; t < workers; ++t) {
    bodies.push_back([&, t] {
      Xorshift128Plus rng(seed + static_cast<std::uint64_t>(t) * 7919);
      for (int i = 0; i < ops; ++i) {
        const std::uint64_t k = rng.NextBounded(kKeys);
        if (rng.Next() & 1) {
          if (set.Insert(k)) {
            ++balance[static_cast<std::size_t>(t)];
          }
        } else {
          if (set.Remove(k)) {
            --balance[static_cast<std::size_t>(t)];
          }
        }
      }
    });
  }
  sched::RandomWalkPolicy policy(seed ^ 0x5c4edull);
  const sched::RunRecord rec =
      sched::Controller::Instance().Run(std::move(bodies), policy);
  *point_limit_hit = rec.point_limit_hit;
  std::int64_t expected = 0;
  for (const std::int64_t b : balance) {
    expected += b;
  }
  std::int64_t present = 0;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    present += set.Contains(k) ? 1 : 0;
  }
  return present - expected;
}

TEST_F(TortureTest, PublicationWindowScheduleKeepsBalance) {
  bool truncated = false;
  EXPECT_EQ(RunSchedTortureBalance<ValPart>(0x7243, kWorkers, 300, &truncated), 0);
  EXPECT_FALSE(truncated) << "the run hit the point cap (livelocked schedule?)";
  EXPECT_EQ(RunSchedTortureBalance<OrecLBloom>(0x7244, kWorkers, 300, &truncated), 0);
  EXPECT_FALSE(truncated) << "the run hit the point cap (livelocked schedule?)";
}

#else  // !SPECTM_SCHED

// Delay injection inside the publication sequence (stripe bumps -> counter
// bump -> ring publish): widens exactly the tail/crossing-committer windows
// the bump-before-validate discipline (docs/VALIDATION.md) must cover.
// Spin delays, NOT yields: the pauses run while commit locks are held, and on
// a single-core host a yielding lock holder hands its whole quantum to peers
// that spin in backoff against its locks — the run crawls through the
// scheduler instead of through the protocol. Spins are cheap there and still
// widen the windows wherever a second core can actually interleave. (Under
// SPECTM_SCHED this test is replaced by the scheduler-driven variant above,
// which interleaves the same windows deterministically on any core count.)
TEST_F(TortureTest, PublicationDelayScheduleKeepsBalance) {
  failpoint::SetSeed(0xde1a);
  failpoint::Arm(failpoint::Site::kPreStripeBump, /*abort_pct=*/0,
                 /*delay_pct=*/25, /*delay_spins=*/400);
  failpoint::Arm(failpoint::Site::kPreBump, /*abort_pct=*/0,
                 /*delay_pct=*/25, /*delay_spins=*/400);
  failpoint::Arm(failpoint::Site::kPreRingPublish, /*abort_pct=*/0,
                 /*delay_pct=*/25, /*delay_spins=*/400);
  EXPECT_EQ(RunTortureBalance<ValPart>(0x7243).balance_delta, 0);
  EXPECT_EQ(RunTortureBalance<OrecLBloom>(0x7244).balance_delta, 0);
}

#endif  // SPECTM_SCHED

// Exception-storm harness: same linked-set balance invariant, but the armed
// sites THROW (failpoint::InjectedFault) instead of returning an abort
// verdict, so recovery runs through the C++ unwind path — TxUnwindGuard /
// ShortTx destructor — rather than the engines' return-coded abort branches.
// Every throw site precedes the attempt's releasing stores and the unwind
// publishes nothing, so a thrown op is exactly "the op did not happen": the
// worker catches the fault, leaves its balance untouched, and moves on. Any
// leaked orec/val lock or serial-gate token would deadlock or corrupt the
// concurrent workers; any half-published commit would break the balance.
template <typename Family>
TortureResult RunExceptionStormBalance(std::uint64_t seed,
                                       std::uint64_t* faults_out) {
  using Probe = CmProbe<typename Family::DomainTag>;
  TmHashSet<Family> set(32);
  std::vector<std::int64_t> balance(kWorkers, 0);
  std::atomic<std::uint64_t> faults{0};
  std::atomic<std::uint64_t> escalations{0};
  std::atomic<std::uint64_t> serial_commits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&, t] {
      Probe::Reset();
      Xorshift128Plus rng(seed + static_cast<std::uint64_t>(t) * 7919);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t k = rng.NextBounded(kKeys);
        try {
          if (rng.Next() & 1) {
            if (set.Insert(k)) {
              ++balance[static_cast<std::size_t>(t)];
            }
          } else {
            if (set.Remove(k)) {
              --balance[static_cast<std::size_t>(t)];
            }
          }
        } catch (const failpoint::InjectedFault&) {
          faults.fetch_add(1);  // aborted-by-unwind: the op did not happen
        }
      }
      const auto probe = Probe::Get();
      escalations.fetch_add(probe.escalations);
      serial_commits.fetch_add(probe.serial_commits);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // Disarm before the verification sweep: it must observe, not participate.
  failpoint::DisarmAll();
  std::int64_t expected = 0;
  for (const std::int64_t b : balance) {
    expected += b;
  }
  std::int64_t present = 0;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    present += set.Contains(k) ? 1 : 0;
  }
  *faults_out = faults.load();
  TortureResult r;
  r.balance_delta = present - expected;
  r.escalations = escalations.load();
  r.serial_commits = serial_commits.load();
  return r;
}

// Throws at the encounter/validate/lock sites under both metadata families,
// with escalation enabled so some throws land inside serial attempts (the
// token-release unwind is exercised under load, not just in the directed
// exception_safety_test). The gate must read clean after the storm — a leaked
// committer flag or owner pointer is invisible to the balance check but wedges
// the next AcquireSerial forever.
TEST_F(TortureTest, ExceptionStormScheduleKeepsBalance) {
  SetSerialEscalationStreak(4);
  failpoint::SetSeed(0xe5c4);
  failpoint::ArmThrow(failpoint::Site::kPostReadPreSandwich, /*throw_pct=*/2);
  failpoint::ArmThrow(failpoint::Site::kPreValidate, /*throw_pct=*/2);
  failpoint::ArmThrow(failpoint::Site::kLockAcquire, /*throw_pct=*/3);
  std::uint64_t faults = 0;
  const TortureResult orec = RunExceptionStormBalance<OrecLAdaptive>(0xe141, &faults);
  EXPECT_EQ(orec.balance_delta, 0)
      << "an unwound attempt published state or broke a peer";
  EXPECT_GT(faults, 0u) << "the storm never threw — the schedule was a no-op";
  EXPECT_EQ(SerialGate<typename OrecLAdaptive::DomainTag>::SerialOwner(), nullptr);
  EXPECT_EQ(SerialGate<typename OrecLAdaptive::DomainTag>::AnnouncedCommitters(), 0u);

  failpoint::SetSeed(0xe5c5);
  failpoint::ArmThrow(failpoint::Site::kPostReadPreSandwich, /*throw_pct=*/2);
  failpoint::ArmThrow(failpoint::Site::kPreValidate, /*throw_pct=*/2);
  failpoint::ArmThrow(failpoint::Site::kLockAcquire, /*throw_pct=*/3);
  const TortureResult val = RunExceptionStormBalance<ValAdaptive>(0xe142, &faults);
  EXPECT_EQ(val.balance_delta, 0)
      << "an unwound attempt published state or broke a peer";
  EXPECT_GT(faults, 0u) << "the storm never threw — the schedule was a no-op";
  EXPECT_EQ(SerialGate<typename ValAdaptive::DomainTag>::SerialOwner(), nullptr);
  EXPECT_EQ(SerialGate<typename ValAdaptive::DomainTag>::AnnouncedCommitters(), 0u);
}

// The interop schedule: a low threshold plus a high forced-conflict rate
// drives real escalations, so serial transactions commit INTERLEAVED with
// optimistic ones — forced aborts keep firing inside serial attempts too
// (token released, re-escalated, retried). The invariant must survive the
// mixing, and the probes must show the escalation path actually ran.
TEST_F(TortureTest, EscalationScheduleInteropsSeriallyAndOptimistically) {
  SetSerialEscalationStreak(3);
  failpoint::SetSeed(0x5e71);
  failpoint::Arm(failpoint::Site::kLockAcquire, /*abort_pct=*/30);
  const TortureResult r = RunTortureBalance<OrecLAdaptive>(0x7345);
  EXPECT_EQ(r.balance_delta, 0)
      << "serial/optimistic interleaving corrupted the set";
  EXPECT_GT(r.escalations, 0u) << "the schedule never escalated";
  EXPECT_GT(r.serial_commits, 0u) << "no escalated attempt ever committed";
  EXPECT_GE(r.max_abort_streak, 3u);
}

#endif  // SPECTM_FAILPOINTS

}  // namespace
}  // namespace spectm
