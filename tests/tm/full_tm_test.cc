// Engine-level tests for the full (BaseTM) transaction paths that the cross-variant
// suites don't isolate: timebase extension, large write sets through the hash write
// set, read-only commit shortcuts, lock-release on abort, and shared-orec-table
// collisions.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/tm/config.h"
#include "src/tm/layout.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

// --- Timebase extension (global clock only) -------------------------------------------

// A transaction that reads, then observes other commits advancing the clock, then
// reads a freshly-updated location must extend rather than abort (Riegel et al.):
// the first read stays valid, so extension succeeds and the transaction commits.
TEST(FullTmExtension, ReadAfterClockAdvanceExtends) {
  using F = OrecG;
  F::Slot a, b;
  F::SingleWrite(&a, EncodeInt(1));

  typename F::FullTx tx;
  tx.Start();
  EXPECT_EQ(DecodeInt(tx.Read(&a)), 1u);

  // Other "transactions" commit meanwhile, pushing b's version past this tx's rv.
  for (int i = 0; i < 5; ++i) {
    F::SingleWrite(&b, EncodeInt(10 + static_cast<std::uint64_t>(i)));
  }

  const Word vb = tx.Read(&b);  // must trigger extension, not failure
  EXPECT_TRUE(tx.ok());
  EXPECT_EQ(DecodeInt(vb), 14u);
  EXPECT_TRUE(tx.Commit());
}

// If the already-read location changed, extension must fail and the reader aborts.
TEST(FullTmExtension, ExtensionFailsWhenReadSetStale) {
  using F = OrecG;
  F::Slot a, b;
  F::SingleWrite(&a, EncodeInt(1));

  typename F::FullTx tx;
  tx.Start();
  EXPECT_EQ(DecodeInt(tx.Read(&a)), 1u);

  F::SingleWrite(&a, EncodeInt(2));  // invalidates the read set
  F::SingleWrite(&b, EncodeInt(3));  // pushes b past rv

  tx.Read(&b);
  EXPECT_FALSE(tx.ok());
  EXPECT_FALSE(tx.Commit());
}

// --- Write-set behaviour ----------------------------------------------------------------

template <typename Family>
class FullTmSuite : public ::testing::Test {};

using AllFamilies = ::testing::Types<OrecG, OrecL, TvarG, TvarL, Val>;
TYPED_TEST_SUITE(FullTmSuite, AllFamilies);

TYPED_TEST(FullTmSuite, LargeWriteSetCommitsAtomically) {
  using F = TypeParam;
  constexpr int kSlots = 1000;  // far beyond the write-set hash's initial capacity
  std::vector<typename F::Slot> slots(kSlots);
  typename F::FullTx tx;
  do {
    tx.Start();
    for (int i = 0; i < kSlots; ++i) {
      tx.Write(&slots[static_cast<std::size_t>(i)], EncodeInt(static_cast<std::uint64_t>(i) + 1));
    }
  } while (!tx.Commit());
  for (int i = 0; i < kSlots; ++i) {
    EXPECT_EQ(DecodeInt(F::SingleRead(&slots[static_cast<std::size_t>(i)])),
              static_cast<std::uint64_t>(i) + 1);
  }
}

TYPED_TEST(FullTmSuite, OverwriteInWriteSetKeepsLastValue) {
  using F = TypeParam;
  typename F::Slot a;
  typename F::FullTx tx;
  do {
    tx.Start();
    for (std::uint64_t v = 1; v <= 100; ++v) {
      tx.Write(&a, EncodeInt(v));
    }
  } while (!tx.Commit());
  EXPECT_EQ(DecodeInt(F::SingleRead(&a)), 100u);
}

TYPED_TEST(FullTmSuite, ReadOnlyTransactionLeavesNoTrace) {
  using F = TypeParam;
  typename F::Slot a;
  F::SingleWrite(&a, EncodeInt(7));
  // A read-only transaction must not disturb concurrent writers in any way that a
  // subsequent RW transaction could observe (versions, locks, values).
  for (int i = 0; i < 10; ++i) {
    typename F::FullTx tx;
    do {
      tx.Start();
      tx.Read(&a);
    } while (!tx.Commit());
  }
  typename F::ShortTx t;
  EXPECT_EQ(DecodeInt(t.ReadRw(&a)), 7u);
  EXPECT_TRUE(t.Valid());
  t.Abort();
}

TYPED_TEST(FullTmSuite, FailedCommitRestoresLocks) {
  using F = TypeParam;
  typename F::Slot a, b;
  F::SingleWrite(&a, EncodeInt(1));
  F::SingleWrite(&b, EncodeInt(1));

  // Read a, then have another thread change it, then try to write b: commit-time
  // validation fails; afterwards BOTH locations must be unlocked and unchanged (b)
  // or carry the concurrent update (a).
  typename F::FullTx tx;
  tx.Start();
  const Word va = tx.Read(&a);
  EXPECT_EQ(DecodeInt(va), 1u);
  std::thread interferer([&] { F::SingleWrite(&a, EncodeInt(2)); });
  interferer.join();
  tx.Write(&b, EncodeInt(99));
  EXPECT_FALSE(tx.Commit()) << "stale read set must fail validation";

  EXPECT_EQ(DecodeInt(F::SingleRead(&a)), 2u);
  EXPECT_EQ(DecodeInt(F::SingleRead(&b)), 1u) << "failed commit must not publish";
  // Locks must be free: a fresh short tx can acquire both immediately.
  typename F::ShortTx t;
  t.ReadRw(&a);
  t.ReadRw(&b);
  EXPECT_TRUE(t.Valid());
  t.Abort();
}

TYPED_TEST(FullTmSuite, BlindWriteWithoutRead) {
  using F = TypeParam;
  typename F::Slot a;
  F::SingleWrite(&a, EncodeInt(5));
  typename F::FullTx tx;
  do {
    tx.Start();
    tx.Write(&a, EncodeInt(6));  // no prior read of a
  } while (!tx.Commit());
  EXPECT_EQ(DecodeInt(F::SingleRead(&a)), 6u);
}

// --- Shared-orec-table collisions --------------------------------------------------------

// Finds two distinct slots in an array that hash to the same ownership record, then
// runs a transaction writing both: the engine must handle re-locking its own orec.
TEST(FullTmCollision, TwoSlotsOneOrec) {
  using F = OrecG;
  using Layout = OrecLayout<OrecGTag>;
  // Fibonacci hashing is low-discrepancy on sequential addresses: the first near-
  // return of the golden-ratio rotation tight enough for a 2^20-bucket table occurs
  // at a lag around F(31) = 1,346,269 slots, so the probe arena must exceed that.
  constexpr int kProbe = 1700000;
  static std::vector<F::Slot> arena(kProbe);  // static: the table hash uses addresses
  std::unordered_map<const void*, int> seen;
  seen.reserve(kProbe);
  int first = -1, second = -1;
  for (int i = 0; i < kProbe && second < 0; ++i) {
    const void* orec = &Layout::OrecOf(arena[static_cast<std::size_t>(i)]);
    const auto [it, inserted] = seen.emplace(orec, i);
    if (!inserted) {
      first = it->second;
      second = i;
    }
  }
  ASSERT_GE(second, 0) << "no orec collision found in probe range";

  typename F::FullTx tx;
  do {
    tx.Start();
    tx.Write(&arena[static_cast<std::size_t>(first)], EncodeInt(11));
    tx.Write(&arena[static_cast<std::size_t>(second)], EncodeInt(22));
  } while (!tx.Commit());
  EXPECT_EQ(DecodeInt(F::SingleRead(&arena[static_cast<std::size_t>(first)])), 11u);
  EXPECT_EQ(DecodeInt(F::SingleRead(&arena[static_cast<std::size_t>(second)])), 22u);

  // Short transactions hit the same collision path via kAlreadyOwned entries.
  typename F::ShortTx t;
  const Word v1 = t.ReadRw(&arena[static_cast<std::size_t>(first)]);
  const Word v2 = t.ReadRw(&arena[static_cast<std::size_t>(second)]);
  ASSERT_TRUE(t.Valid());
  EXPECT_EQ(DecodeInt(v1), 11u);
  EXPECT_EQ(DecodeInt(v2), 22u);
  t.CommitRw({EncodeInt(33), EncodeInt(44)});
  EXPECT_EQ(DecodeInt(F::SingleRead(&arena[static_cast<std::size_t>(second)])), 44u);
}

}  // namespace
}  // namespace spectm
