// SoA read log (src/common/soa_log.h) and the batch validation kernel
// (src/tm/validate_batch.h): growth/persistence invariants, the SIMD-vs-scalar
// equivalence contract (identical pass/fail decisions AND identical mismatch-
// handler call sequences on randomized logs), equivalence against an
// array-of-structs reference walk written the seed's way, probe-proven execution
// of whichever body the build/CPU provides, and end-to-end determinism of an
// engine driven through both bodies.
#include "src/common/soa_log.h"
#include "src/tm/validate_batch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/structures/hash_tm_full.h"
#include "src/tm/config.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

// Restores the runtime SIMD switch on scope exit so test order never matters.
struct SimdGuard {
  bool saved = SimdEnabled();
  ~SimdGuard() { SetSimdEnabled(saved); }
};

TEST(SoaReadLog, PushClearAndLaneContents) {
  SoaReadLog log;
  std::vector<std::atomic<Word>> words(8);
  for (std::size_t i = 0; i < words.size(); ++i) {
    log.PushBack(&words[i], Word{100 + i});
  }
  ASSERT_EQ(log.Size(), words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(log.PtrAt(i), &words[i]);
    EXPECT_EQ(log.WordAt(i), Word{100 + i});
    EXPECT_EQ(log.Ptrs()[i], &words[i]);
    EXPECT_EQ(log.Words()[i], Word{100 + i});
  }
  log.Clear();
  EXPECT_TRUE(log.Empty());
  EXPECT_EQ(log.Size(), 0u);
}

TEST(SoaReadLog, GrowthPreservesEntriesAndCapacityPersistsAcrossClear) {
  SoaReadLog log;
  const std::size_t initial_capacity = log.Capacity();
  EXPECT_EQ(initial_capacity, SoaReadLog::kChunkEntries);

  const std::size_t n = 3 * SoaReadLog::kChunkEntries + 17;
  std::vector<std::atomic<Word>> words(n);
  for (std::size_t i = 0; i < n; ++i) {
    log.PushBack(&words[i], Word{i} * 3);
  }
  ASSERT_EQ(log.Size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(log.PtrAt(i), &words[i]) << "growth must relocate both lanes";
    ASSERT_EQ(log.WordAt(i), Word{i} * 3);
  }

  const std::size_t grown_capacity = log.Capacity();
  EXPECT_GE(grown_capacity, n);
  log.Clear();
  EXPECT_EQ(log.Capacity(), grown_capacity)
      << "Clear() must persist capacity across attempts (no realloc churn)";
}

// Reference validation written exactly like the seed's AoS loop, against a local
// array-of-structs copy of the log.
struct AosEntry {
  std::atomic<Word>* ptr;
  Word expected;
};

template <typename MismatchFn>
bool AosReferenceValidate(const std::vector<AosEntry>& entries,
                          MismatchFn&& mismatch) {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Word w = entries[i].ptr->load(std::memory_order_acquire);
    if (w != entries[i].expected && !mismatch(i, w)) {
      return false;
    }
  }
  return true;
}

// One randomized scenario: `n` words, some entries deliberately mismatched, a
// subset of the mismatches "tolerated" (standing in for the engines' locked-by-
// self displaced-word check). Returns (result, mismatch-handler call sequence).
struct ScenarioResult {
  bool pass = false;
  std::vector<std::pair<std::size_t, Word>> handler_calls;
};

ScenarioResult RunKernel(const std::vector<std::atomic<Word>>& words,
                         const SoaReadLog& log,
                         const std::vector<bool>& tolerated,
                         std::uint64_t& simd_batches,
                         std::uint64_t& scalar_checks) {
  ScenarioResult r;
  r.pass = ValidateEqualSpan(
      log.Ptrs(), log.Words(), log.Size(), simd_batches, scalar_checks,
      [&](std::size_t i, Word observed) {
        r.handler_calls.emplace_back(i, observed);
        return tolerated[i];
      });
  (void)words;
  return r;
}

TEST(ValidateBatch, SimdAndScalarAgreeOnRandomizedLogs) {
  SimdGuard guard;
  Xorshift128Plus rng(0x51AD);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.NextBounded(40);
    std::vector<std::atomic<Word>> words(n);
    SoaReadLog log;
    std::vector<AosEntry> aos;
    std::vector<bool> tolerated(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      const Word stored = rng.Next();
      words[i].store(stored, std::memory_order_relaxed);
      Word expected = stored;
      if (rng.NextBounded(100) < 30) {  // mismatch
        expected = stored + 1 + rng.NextBounded(5);
        tolerated[i] = rng.NextBounded(2) == 0;
      }
      log.PushBack(&words[i], expected);
      aos.push_back(AosEntry{&words[i], expected});
    }

    std::uint64_t simd_batches = 0, scalar_checks = 0;

    SetSimdEnabled(false);
    const ScenarioResult scalar =
        RunKernel(words, log, tolerated, simd_batches, scalar_checks);

    SetSimdEnabled(true);  // no-op when unavailable; kernel then stays scalar
    const ScenarioResult simd =
        RunKernel(words, log, tolerated, simd_batches, scalar_checks);

    // Reference decision from the seed-shaped AoS loop.
    std::vector<std::pair<std::size_t, Word>> ref_calls;
    const bool ref_pass = AosReferenceValidate(aos, [&](std::size_t i, Word w) {
      ref_calls.emplace_back(i, w);
      return tolerated[i];
    });

    ASSERT_EQ(scalar.pass, ref_pass) << "trial " << trial;
    ASSERT_EQ(simd.pass, ref_pass) << "trial " << trial;
    ASSERT_EQ(scalar.handler_calls, ref_calls)
        << "scalar body must see mismatches in reference order, trial " << trial;
    ASSERT_EQ(simd.handler_calls, ref_calls)
        << "SIMD body must see identical mismatches in identical order, trial "
        << trial;
  }
}

TEST(ValidateBatch, ProbeProvesTheActiveBodyRan) {
  SimdGuard guard;
  constexpr std::size_t kEntries = 64;
  std::vector<std::atomic<Word>> words(kEntries);
  SoaReadLog log;
  for (std::size_t i = 0; i < kEntries; ++i) {
    words[i].store(Word{7} * i, std::memory_order_relaxed);
    log.PushBack(&words[i], Word{7} * i);
  }
  auto never = [](std::size_t, Word) { return false; };

  // Forced scalar: every entry is a scalar check, zero SIMD batches.
  {
    SetSimdEnabled(false);
    std::uint64_t simd_batches = 0, scalar_checks = 0;
    EXPECT_TRUE(ValidateEqualSpan(log.Ptrs(), log.Words(), log.Size(),
                                  simd_batches, scalar_checks, never));
    EXPECT_EQ(simd_batches, 0u);
    EXPECT_EQ(scalar_checks, kEntries);
  }

  // SIMD enabled: where the build and CPU provide the body, all 64 entries run
  // as 16 gather batches; otherwise the kernel honestly stays scalar.
  {
    SetSimdEnabled(true);
    std::uint64_t simd_batches = 0, scalar_checks = 0;
    EXPECT_TRUE(ValidateEqualSpan(log.Ptrs(), log.Words(), log.Size(),
                                  simd_batches, scalar_checks, never));
    if (SimdAvailable()) {
      EXPECT_EQ(simd_batches, kEntries / kSimdBatchWidth)
          << "the AVX2 body must have processed every full batch";
      EXPECT_EQ(scalar_checks, 0u);
    } else {
      EXPECT_EQ(simd_batches, 0u);
      EXPECT_EQ(scalar_checks, kEntries);
    }
  }

  // Ragged tail: 4k + 3 entries split between the two bodies.
  {
    SetSimdEnabled(true);
    log.PushBack(&words[0], Word{0});
    log.PushBack(&words[1], Word{7});
    log.PushBack(&words[2], Word{14});
    std::uint64_t simd_batches = 0, scalar_checks = 0;
    EXPECT_TRUE(ValidateEqualSpan(log.Ptrs(), log.Words(), log.Size(),
                                  simd_batches, scalar_checks, never));
    if (SimdAvailable()) {
      EXPECT_EQ(simd_batches, kEntries / kSimdBatchWidth);
      EXPECT_EQ(scalar_checks, 3u);
    } else {
      EXPECT_EQ(scalar_checks, kEntries + 3);
    }
  }
}

#ifdef SPECTM_NO_SIMD
TEST(ValidateBatch, ForcedScalarBuildHasNoSimd) {
  EXPECT_FALSE(SimdAvailable());
  EXPECT_FALSE(SimdEnabled());
  SetSimdEnabled(true);  // must clamp to unavailable
  EXPECT_FALSE(SimdEnabled());
}
#endif

// End-to-end determinism: the same single-threaded operation sequence against
// the per-read-revalidating local-clock family must produce identical results
// and identical commit counts with the SIMD body on and off — the engines'
// abort decisions may not depend on which body validated.
TEST(ValidateBatch, EngineDecisionsIdenticalAcrossBodies) {
  SimdGuard guard;
  auto run = [](bool simd) {
    SetSimdEnabled(simd);
    TmHashSet<OrecL> set(16);  // few buckets => long chains => big read sets
    Xorshift128Plus rng(0xE0E0);
    std::vector<bool> results;
    for (int i = 0; i < 4000; ++i) {
      const std::uint64_t key = rng.NextBounded(512);
      switch (rng.NextBounded(3)) {
        case 0:
          results.push_back(set.Insert(key));
          break;
        case 1:
          results.push_back(set.Remove(key));
          break;
        default:
          results.push_back(set.Contains(key));
          break;
      }
    }
    return results;
  };
  const std::vector<bool> with_simd = run(true);
  const std::vector<bool> without = run(false);
  EXPECT_EQ(with_simd, without);
}

}  // namespace
}  // namespace spectm
