// Cross-variant smoke tests: every TM family must support the same basic single-
// thread semantics. Deeper per-engine and concurrency tests live in the dedicated
// test files; this suite is the canary that all ten engine instantiations compile
// and agree on fundamentals.
#include <gtest/gtest.h>

#include "src/tm/config.h"
#include "src/tm/pver.h"
#include "src/tm/val_eager.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

template <typename Family>
class TmFamilySmoke : public ::testing::Test {};

using AllFamilies = ::testing::Types<OrecG, OrecL, TvarG, TvarL, Val, ValGlobalCounter,
                                     ValPerThreadCounter, Pver, ValEager>;
TYPED_TEST_SUITE(TmFamilySmoke, AllFamilies);

TYPED_TEST(TmFamilySmoke, SingleOpsRoundTrip) {
  using F = TypeParam;
  typename F::Slot s;
  EXPECT_EQ(F::SingleRead(&s), 0u);
  F::SingleWrite(&s, EncodeInt(123));
  EXPECT_EQ(DecodeInt(F::SingleRead(&s)), 123u);
}

TYPED_TEST(TmFamilySmoke, SingleCasSemantics) {
  using F = TypeParam;
  typename F::Slot s;
  F::SingleWrite(&s, EncodeInt(1));
  // Matching expectation: swaps and returns the expected value.
  EXPECT_EQ(F::SingleCas(&s, EncodeInt(1), EncodeInt(2)), EncodeInt(1));
  EXPECT_EQ(DecodeInt(F::SingleRead(&s)), 2u);
  // Mismatch: no change, returns observed value.
  EXPECT_EQ(F::SingleCas(&s, EncodeInt(7), EncodeInt(9)), EncodeInt(2));
  EXPECT_EQ(DecodeInt(F::SingleRead(&s)), 2u);
}

TYPED_TEST(TmFamilySmoke, FullTxReadWriteCommit) {
  using F = TypeParam;
  typename F::Slot a, b;
  F::SingleWrite(&a, EncodeInt(10));
  F::SingleWrite(&b, EncodeInt(20));

  typename F::FullTx tx;
  do {
    tx.Start();
    const Word va = tx.Read(&a);
    const Word vb = tx.Read(&b);
    if (!tx.ok()) {
      continue;
    }
    tx.Write(&a, EncodeInt(DecodeInt(va) + 1));
    tx.Write(&b, EncodeInt(DecodeInt(vb) + 1));
  } while (!tx.Commit());

  EXPECT_EQ(DecodeInt(F::SingleRead(&a)), 11u);
  EXPECT_EQ(DecodeInt(F::SingleRead(&b)), 21u);
}

TYPED_TEST(TmFamilySmoke, FullTxReadsOwnWrites) {
  using F = TypeParam;
  typename F::Slot a;
  typename F::FullTx tx;
  do {
    tx.Start();
    tx.Write(&a, EncodeInt(5));
    EXPECT_EQ(DecodeInt(tx.Read(&a)), 5u);
    tx.Write(&a, EncodeInt(6));
    EXPECT_EQ(DecodeInt(tx.Read(&a)), 6u);
  } while (!tx.Commit());
  EXPECT_EQ(DecodeInt(F::SingleRead(&a)), 6u);
}

TYPED_TEST(TmFamilySmoke, FullTxUserAbortDiscardsWrites) {
  using F = TypeParam;
  typename F::Slot a;
  F::SingleWrite(&a, EncodeInt(1));
  typename F::FullTx tx;
  tx.Start();
  tx.Write(&a, EncodeInt(99));
  tx.AbortTx();
  EXPECT_FALSE(tx.Commit());
  EXPECT_EQ(DecodeInt(F::SingleRead(&a)), 1u);
}

TYPED_TEST(TmFamilySmoke, ShortRwTxCommit) {
  using F = TypeParam;
  typename F::Slot a, b;
  F::SingleWrite(&a, EncodeInt(3));
  F::SingleWrite(&b, EncodeInt(4));

  typename F::ShortTx t;
  const Word va = t.ReadRw(&a);
  const Word vb = t.ReadRw(&b);
  ASSERT_TRUE(t.Valid());
  t.CommitRw({EncodeInt(DecodeInt(vb)), EncodeInt(DecodeInt(va))});  // swap

  EXPECT_EQ(DecodeInt(F::SingleRead(&a)), 4u);
  EXPECT_EQ(DecodeInt(F::SingleRead(&b)), 3u);
}

TYPED_TEST(TmFamilySmoke, ShortRwTxAbortRestores) {
  using F = TypeParam;
  typename F::Slot a;
  F::SingleWrite(&a, EncodeInt(8));
  {
    typename F::ShortTx t;
    EXPECT_EQ(DecodeInt(t.ReadRw(&a)), 8u);
    ASSERT_TRUE(t.Valid());
    t.Abort();
  }
  EXPECT_EQ(DecodeInt(F::SingleRead(&a)), 8u);
  // The location must be unlocked again: a fresh transaction can acquire it.
  typename F::ShortTx t2;
  EXPECT_EQ(DecodeInt(t2.ReadRw(&a)), 8u);
  EXPECT_TRUE(t2.Valid());
  t2.CommitRw({EncodeInt(9)});
  EXPECT_EQ(DecodeInt(F::SingleRead(&a)), 9u);
}

TYPED_TEST(TmFamilySmoke, ShortRoTxValidates) {
  using F = TypeParam;
  typename F::Slot a, b;
  F::SingleWrite(&a, EncodeInt(1));
  F::SingleWrite(&b, EncodeInt(2));
  typename F::ShortTx t;
  EXPECT_EQ(DecodeInt(t.ReadRo(&a)), 1u);
  EXPECT_EQ(DecodeInt(t.ReadRo(&b)), 2u);
  ASSERT_TRUE(t.Valid());
  EXPECT_TRUE(t.ValidateRo());
}

TYPED_TEST(TmFamilySmoke, ShortRoDetectsInterveningWrite) {
  using F = TypeParam;
  typename F::Slot a;
  F::SingleWrite(&a, EncodeInt(1));
  typename F::ShortTx t;
  EXPECT_EQ(DecodeInt(t.ReadRo(&a)), 1u);
  F::SingleWrite(&a, EncodeInt(2));
  EXPECT_FALSE(t.ValidateRo());
}

TYPED_TEST(TmFamilySmoke, UpgradeAndMixedCommit) {
  using F = TypeParam;
  typename F::Slot guard_slot, target;
  F::SingleWrite(&guard_slot, EncodeInt(7));
  F::SingleWrite(&target, EncodeInt(0));

  // Mostly-read-write pattern (§2.4 case 2): one RO location, one upgraded RW.
  typename F::ShortTx t;
  const Word g = t.ReadRo(&guard_slot);
  const Word tv = t.ReadRo(&target);
  ASSERT_TRUE(t.Valid());
  ASSERT_EQ(DecodeInt(g), 7u);
  ASSERT_EQ(DecodeInt(tv), 0u);
  ASSERT_TRUE(t.UpgradeRoToRw(1));  // target becomes RW index 0
  ASSERT_TRUE(t.CommitMixed({EncodeInt(1)}));
  EXPECT_EQ(DecodeInt(F::SingleRead(&target)), 1u);
  EXPECT_EQ(DecodeInt(F::SingleRead(&guard_slot)), 7u);
}

TYPED_TEST(TmFamilySmoke, MixedCommitFailsOnRoConflict) {
  using F = TypeParam;
  typename F::Slot ro_slot, rw_slot;
  F::SingleWrite(&ro_slot, EncodeInt(5));
  F::SingleWrite(&rw_slot, EncodeInt(0));

  typename F::ShortTx t;
  EXPECT_EQ(DecodeInt(t.ReadRo(&ro_slot)), 5u);
  EXPECT_EQ(DecodeInt(t.ReadRw(&rw_slot)), 0u);
  ASSERT_TRUE(t.Valid());
  F::SingleWrite(&ro_slot, EncodeInt(6));  // invalidate the RO entry
  EXPECT_FALSE(t.CommitMixed({EncodeInt(1)}));
  EXPECT_EQ(DecodeInt(F::SingleRead(&rw_slot)), 0u) << "failed commit must not publish";
}

TYPED_TEST(TmFamilySmoke, ShortAndFullInteroperate) {
  using F = TypeParam;
  typename F::Slot a;
  F::SingleWrite(&a, EncodeInt(1));

  // Full tx writes; short tx must observe the committed value.
  typename F::FullTx tx;
  do {
    tx.Start();
    const Word v = tx.Read(&a);
    if (!tx.ok()) {
      continue;
    }
    tx.Write(&a, EncodeInt(DecodeInt(v) + 10));
  } while (!tx.Commit());

  typename F::ShortTx t;
  EXPECT_EQ(DecodeInt(t.ReadRw(&a)), 11u);
  ASSERT_TRUE(t.Valid());
  t.CommitRw({EncodeInt(12)});

  // And the full tx sees the short tx's commit.
  typename F::FullTx tx2;
  Word seen = 0;
  do {
    tx2.Start();
    seen = tx2.Read(&a);
  } while (!tx2.Commit());
  EXPECT_EQ(DecodeInt(seen), 12u);
}

}  // namespace
}  // namespace spectm
