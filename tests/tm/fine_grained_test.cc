// Tests for the fine-grained adapter (src/tm/fine_grained.h): the short-transaction
// interface implemented over ordinary transactions. Unlike genuine short
// transactions, its reads do not lock — so commits can fail — and the structures
// must observe that through the bool returns.
#include "src/tm/fine_grained.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/tm/config.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

using Fine = FineGrainedFamily<OrecG>;

TEST(FineGrained, ShortTxFacadeCommits) {
  Fine::Slot a, b;
  Fine::SingleWrite(&a, EncodeInt(1));
  Fine::SingleWrite(&b, EncodeInt(2));
  Fine::ShortTx t;
  const Word va = t.ReadRw(&a);
  const Word vb = t.ReadRw(&b);
  ASSERT_TRUE(t.Valid());
  EXPECT_TRUE(t.CommitRw({vb, va}));
  EXPECT_EQ(DecodeInt(Fine::SingleRead(&a)), 2u);
  EXPECT_EQ(DecodeInt(Fine::SingleRead(&b)), 1u);
}

TEST(FineGrained, CommitFailsOnInterveningWrite) {
  Fine::Slot a;
  Fine::SingleWrite(&a, EncodeInt(1));
  Fine::ShortTx t;
  const Word v = t.ReadRw(&a);  // full-tx read: does NOT lock
  ASSERT_TRUE(t.Valid());
  EXPECT_EQ(DecodeInt(v), 1u);

  std::thread interferer([&] { Fine::SingleWrite(&a, EncodeInt(2)); });
  interferer.join();

  EXPECT_FALSE(t.CommitRw({EncodeInt(9)}))
      << "fine-grained commits must fail commit-time validation";
  EXPECT_EQ(DecodeInt(Fine::SingleRead(&a)), 2u) << "failed commit published nothing";
}

TEST(FineGrained, SinglesAreFullTransactions) {
  Fine::Slot a;
  Fine::SingleWrite(&a, EncodeInt(5));
  EXPECT_EQ(DecodeInt(Fine::SingleRead(&a)), 5u);
  EXPECT_EQ(Fine::SingleCas(&a, EncodeInt(5), EncodeInt(6)), EncodeInt(5));
  EXPECT_EQ(DecodeInt(Fine::SingleRead(&a)), 6u);
  EXPECT_EQ(Fine::SingleCas(&a, EncodeInt(99), EncodeInt(0)), EncodeInt(6));
  EXPECT_EQ(DecodeInt(Fine::SingleRead(&a)), 6u);
}

TEST(FineGrained, UpgradePathWritesUpgradedSlot) {
  Fine::Slot guard_slot, target;
  Fine::SingleWrite(&guard_slot, EncodeInt(1));
  Fine::SingleWrite(&target, EncodeInt(0));
  Fine::ShortTx t;
  EXPECT_EQ(DecodeInt(t.ReadRo(&guard_slot)), 1u);
  EXPECT_EQ(DecodeInt(t.ReadRo(&target)), 0u);
  ASSERT_TRUE(t.UpgradeRoToRw(1));
  EXPECT_TRUE(t.CommitMixed({EncodeInt(7)}));
  EXPECT_EQ(DecodeInt(Fine::SingleRead(&target)), 7u);
  EXPECT_EQ(DecodeInt(Fine::SingleRead(&guard_slot)), 1u);
}

TEST(FineGrained, ResetSupportsRestartLoops) {
  Fine::Slot a;
  Fine::SingleWrite(&a, EncodeInt(0));
  Fine::ShortTx t;
  for (int round = 0; round < 3; ++round) {
    const Word v = t.ReadRw(&a);
    ASSERT_TRUE(t.Valid());
    ASSERT_TRUE(t.CommitRw({EncodeInt(DecodeInt(v) + 1)}));
    t.Reset();
  }
  EXPECT_EQ(DecodeInt(Fine::SingleRead(&a)), 3u);
}

TEST(FineGrained, ConcurrentIncrementsRemainAtomic) {
  Fine::Slot counter;
  constexpr int kThreads = 6;
  constexpr int kPerThread = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        while (true) {
          Fine::ShortTx tx;
          const Word v = tx.ReadRw(&counter);
          if (!tx.Valid()) {
            tx.Abort();
            continue;
          }
          if (tx.CommitRw({EncodeInt(DecodeInt(v) + 1)})) {
            break;
          }
          tx.Reset();
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(DecodeInt(Fine::SingleRead(&counter)),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace spectm
