// MVCC snapshot reads (src/tm/mvcc.h, ValSnap): read-only transactions pin a
// snapshot stamp and serve every read from the per-slot version chains — no
// validation walks, no aborts, regardless of concurrent same-stripe writers.
// Probe-asserted here: snapshot_reads > 0 with validation_walks == 0 under
// writer churn; the chain-bound overflow fallback; pin-based retirement (a
// dropped node a pinned reader could still reach is deferred, never recycled);
// write promotion; and a TSan-targeted consistency battery over ValSnap.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/epoch/epoch.h"
#include "src/tm/config.h"
#include "src/tm/mvcc.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

using F = ValSnap;
using Probe = ValProbe<ValDomainTag>;

std::uint64_t RoAbortsNow() {
  return F::Full::StatsForCurrentThread().aborts.load(std::memory_order_relaxed);
}

// --- The tentpole property, deterministically ---------------------------------------

// A snapshot transaction keeps reading its start-time state while single-op
// writers commit over the very slots it scans — and pays ZERO validation
// walks and zero aborts for it. The writers hit the same counter stripe as
// the reads (same slots), which under every other precise family would abort
// or at least force full read-set walks.
TEST(SnapshotReads, SeeStartStateDespiteInterleavedWriters) {
  constexpr int kSlots = 8;
  // Slots here (and below) have static duration: committed writers hang
  // version chains off them, and chain nodes are reclaimed by later publishes,
  // not by slot destruction — a slot dying with history attached would strand
  // its nodes (LeakSanitizer-visible). Static slots keep every node reachable.
  static F::Slot a[kSlots];
  for (int i = 0; i < kSlots; ++i) {
    F::SingleWrite(&a[i], EncodeInt(static_cast<Word>(i)));
  }
  Probe::Reset();
  const std::uint64_t aborts_before = RoAbortsNow();

  F::FullTx tx;
  tx.Start();
  for (int i = 0; i < kSlots; ++i) {
    EXPECT_EQ(DecodeInt(tx.Read(&a[i])), static_cast<Word>(i));
    ASSERT_TRUE(tx.ok());
    // A writer commits over the NEXT slot before the snapshot gets there —
    // and over this one, for depth: the chain must carry the old value.
    F::SingleWrite(&a[(i + 1) % kSlots], EncodeInt(1000 + static_cast<Word>(i)));
  }
  // Re-read everything: still the start-time values, however hot the churn.
  for (int i = 0; i < kSlots; ++i) {
    EXPECT_EQ(DecodeInt(tx.Read(&a[i])), static_cast<Word>(i));
    ASSERT_TRUE(tx.ok());
  }
  EXPECT_TRUE(tx.Commit());

  const Probe::Counters& c = Probe::Get();
  EXPECT_GT(c.snapshot_reads, 0u);
  EXPECT_GT(c.version_hops, 0u) << "no read ever traversed a chain node";
  EXPECT_EQ(c.validation_walks, 0u) << "a snapshot RO transaction validated";
  EXPECT_EQ(RoAbortsNow(), aborts_before) << "a snapshot RO transaction aborted";
}

// Same property through the short-transaction API: RO reads are single chain
// traversals at the pinned stamp, with no incremental revalidation.
TEST(SnapshotReads, ShortRoReadsAreChainReadsWithoutValidation) {
  static F::Slot x, y;
  F::SingleWrite(&x, EncodeInt(7));
  F::SingleWrite(&y, EncodeInt(9));
  Probe::Reset();

  F::ShortTx tx;
  EXPECT_EQ(DecodeInt(tx.ReadRo(&x)), 7u);
  F::SingleWrite(&x, EncodeInt(70));  // commits after the pin: invisible
  F::SingleWrite(&y, EncodeInt(90));
  EXPECT_EQ(DecodeInt(tx.ReadRo(&x)), 7u);
  EXPECT_EQ(DecodeInt(tx.ReadRo(&y)), 9u);
  EXPECT_TRUE(tx.Valid());

  const Probe::Counters& c = Probe::Get();
  EXPECT_EQ(c.snapshot_reads, 3u);
  EXPECT_EQ(c.validation_walks, 0u)
      << "short snapshot reads must not revalidate the RO log";
  EXPECT_GE(c.version_hops, 2u);
}

// --- Write promotion ----------------------------------------------------------------

// The snapshot cut cannot extend to a write: the first Write() promotes the
// attempt, which must fail when a writer committed over a snapshot read.
TEST(SnapshotPromotion, FirstWriteValidatesAndFailsOnConflict) {
  static F::Slot x, out;
  F::SingleWrite(&x, EncodeInt(1));
  F::SingleWrite(&out, EncodeInt(0));

  F::FullTx tx;
  tx.Start();
  EXPECT_EQ(DecodeInt(tx.Read(&x)), 1u);
  F::SingleWrite(&x, EncodeInt(2));  // invalidates the snapshot value "now"
  tx.Write(&out, EncodeInt(99));     // promotion: must detect the conflict
  EXPECT_FALSE(tx.ok());
  EXPECT_FALSE(tx.Commit());
  EXPECT_EQ(DecodeInt(F::SingleRead(&out)), 0u) << "a failed promotion published";
}

TEST(SnapshotPromotion, CleanPromotionCommitsAndPublishesVersions) {
  static F::Slot x, out;
  F::SingleWrite(&x, EncodeInt(5));
  F::SingleWrite(&out, EncodeInt(1));

  F::FullTx tx;
  tx.Start();
  const Word vx = tx.Read(&x);
  tx.Write(&out, EncodeInt(DecodeInt(vx) + 10));
  ASSERT_TRUE(tx.ok());
  EXPECT_TRUE(tx.Commit());
  EXPECT_EQ(DecodeInt(F::SingleRead(&out)), 15u);
  // The commit displaced EncodeInt(1) onto out's chain: a later snapshot that
  // pinned before this commit would still find it. Chain head must be stamped.
  mvcc::VersionNode* head = out.versions.load(std::memory_order_acquire);
  ASSERT_NE(head, nullptr);
  EXPECT_NE(head->stamp.load(std::memory_order_acquire), mvcc::kUnstamped);
  EXPECT_EQ(DecodeInt(head->word), 1u);
}

// Promotion through the short API rides the first lock (ReadRw / upgrade).
TEST(SnapshotPromotion, ShortFirstLockValidatesSnapshotLog) {
  static F::Slot x, out;
  F::SingleWrite(&x, EncodeInt(3));
  F::SingleWrite(&out, EncodeInt(0));

  {
    F::ShortTx tx;
    EXPECT_EQ(DecodeInt(tx.ReadRo(&x)), 3u);
    F::SingleWrite(&x, EncodeInt(4));
    tx.ReadRw(&out);  // first lock: promotion validates the RO log and fails
    EXPECT_FALSE(tx.Valid());
  }
  EXPECT_EQ(DecodeInt(F::SingleRead(&out)), 0u);

  {
    F::ShortTx tx;
    EXPECT_EQ(DecodeInt(tx.ReadRo(&x)), 4u);
    const Word vo = tx.ReadRw(&out);
    ASSERT_TRUE(tx.Valid());
    EXPECT_TRUE(tx.CommitMixed({EncodeInt(DecodeInt(vo) + 42)}));
  }
  EXPECT_EQ(DecodeInt(F::SingleRead(&out)), 42u);
}

// --- Chain bound: overflow fallback and retirement ----------------------------------

// A chain truncated below the snapshot is the one case a snapshot read cannot
// serve: the reader refreshes its pin (one validation walk over what it
// already read) and continues at the new snapshot — it does not abort.
TEST(SnapshotChains, OverflowFallsBackToRefreshedSnapshot) {
  static F::Slot stable, hot;
  F::SingleWrite(&stable, EncodeInt(11));
  F::SingleWrite(&hot, EncodeInt(0));
  Probe::Reset();

  F::FullTx tx;
  tx.Start();
  EXPECT_EQ(DecodeInt(tx.Read(&stable)), 11u);
  // Overflow hot's chain past kMaxVersions while the snapshot is pinned below
  // all of it: the surviving suffix's floors all exceed the pin.
  for (int i = 1; i <= mvcc::kMaxVersions + 4; ++i) {
    F::SingleWrite(&hot, EncodeInt(static_cast<Word>(i)));
  }
  EXPECT_LE(mvcc::ChainLength(hot.versions), mvcc::kMaxVersions);
  const Word latest = static_cast<Word>(mvcc::kMaxVersions + 4);
  // The read must succeed at a refreshed snapshot (stable was not overwritten,
  // so the refresh validation passes) and return the current value.
  EXPECT_EQ(DecodeInt(tx.Read(&hot)), latest);
  ASSERT_TRUE(tx.ok());
  EXPECT_EQ(DecodeInt(tx.Read(&stable)), 11u);
  EXPECT_TRUE(tx.Commit());

  const Probe::Counters& c = Probe::Get();
  EXPECT_GE(c.validation_walks, 1u) << "the refresh path never walked";
  EXPECT_GE(c.chain_splices, 1u) << "the bound never spliced the chain";
  EXPECT_GT(c.versions_retired, 0u);
}

// Retirement is pin-bounded: a node dropped from a chain while its stamp
// exceeds the done stamp (a pinned reader could still reach it) parks on the
// deferred list instead of being recycled, and drains once the pin lifts.
TEST(SnapshotChains, RetirementDefersNodesAPinnedReaderCouldReach) {
  static F::Slot hot;
  F::SingleWrite(&hot, EncodeInt(0));
  // Settle earlier deferred traffic from this thread so the counts below are
  // attributable: with no pin, one more publish drains everything stale.
  F::SingleWrite(&hot, EncodeInt(0));
  ASSERT_EQ(mvcc::Pool().DeferredCount(), 0u);

  F::FullTx tx;
  tx.Start();
  EXPECT_EQ(DecodeInt(tx.Read(&hot)), 0u);  // pin S below everything that follows
  for (int i = 1; i <= mvcc::kMaxVersions + 6; ++i) {
    F::SingleWrite(&hot, EncodeInt(static_cast<Word>(i)));
  }
  // Bound-truncation dropped nodes stamped AFTER the pin: all deferred.
  EXPECT_GT(mvcc::Pool().DeferredCount(), 0u)
      << "overflow drops were recycled under a live pin";
  EXPECT_TRUE(tx.Commit());  // unpins

  // With the pin lifted the next publish's drain reclaims the parked nodes.
  F::SingleWrite(&hot, EncodeInt(777));
  EXPECT_EQ(mvcc::Pool().DeferredCount(), 0u);
}

// The abort path repairs a half-published chain by tombstoning, never by
// popping: an aborted writer's displaced-value node must be unreachable to
// every snapshot (empty validity interval), while the slot value is restored.
TEST(SnapshotChains, AbortedWriterLeavesNoSelectableVersion) {
  static F::Slot x;
  F::SingleWrite(&x, EncodeInt(21));

  // A short RW attempt locks x (displacing 21), then aborts.
  {
    F::ShortTx tx;
    EXPECT_EQ(DecodeInt(tx.ReadRw(&x)), 21u);
    ASSERT_TRUE(tx.Valid());
    tx.Abort();
  }
  EXPECT_EQ(DecodeInt(F::SingleRead(&x)), 21u);
  // Any chain head must be stamped (no dangling unstamped node), and a fresh
  // snapshot must read 21 — the abort published nothing selectable.
  mvcc::VersionNode* head = x.versions.load(std::memory_order_acquire);
  if (head != nullptr) {
    EXPECT_NE(head->stamp.load(std::memory_order_acquire), mvcc::kUnstamped);
  }
  F::FullTx ro;
  ro.Start();
  EXPECT_EQ(DecodeInt(ro.Read(&x)), 21u);
  EXPECT_TRUE(ro.Commit());
}

// --- Guard nesting (epoch.h re-entrancy, carried by this PR) ------------------------

TEST(EpochGuardNesting, InnerGuardDoesNotRetractActivity) {
  EpochManager mgr;
  std::atomic<bool> freed{false};
  {
    EpochManager::Guard outer(mgr);
    {
      EpochManager::Guard inner(mgr);  // same thread, same manager: depth bump
    }
    // The outer guard must STILL be active: an object retired now by another
    // thread can not be freed while we remain inside.
    std::thread t([&] {
      EpochManager::Guard g(mgr);
      mgr.Retire(&freed, [](void* p) {
        static_cast<std::atomic<bool>*>(p)->store(true);
      });
    });
    t.join();
    mgr.ReclaimAllForTesting();  // advances are blocked by our activity word
    EXPECT_FALSE(freed.load()) << "inner Guard exit retracted the outer guard";
  }
  mgr.ReclaimAllForTesting();
  EXPECT_TRUE(freed.load());
}

// A chain node that leaves the pool's bounded free list must go through the
// epoch manager, never straight back to the allocator: a snapshot reader that
// loaded a chain pointer just before the node's unlink may still dereference
// its stamp word once (mvcc.h "selection-dead is not touch-dead").
TEST(NodePoolReclamation, FreeListOverflowRoutesThroughTheEpochManager) {
  EpochManager& mgr = GlobalEpochManager();
  mgr.ReclaimAllForTesting();
  const std::uint64_t freed_before = mgr.FreedCount();
  constexpr std::size_t kOverflow = 32;
  {
    mvcc::NodePool pool;
    for (std::size_t i = 0; i < mvcc::NodePool::kMaxFree + kOverflow; ++i) {
      pool.Recycle(new mvcc::VersionNode);
    }
    // The overflow nodes are retired (pending or already epoch-freed), not
    // raw-deleted; the kMaxFree resident nodes stay type-stable in the pool.
    EXPECT_GE((mgr.FreedCount() - freed_before) + mgr.PendingCount(), kOverflow);
    mgr.ReclaimAllForTesting();
    EXPECT_GE(mgr.FreedCount() - freed_before, kOverflow);
  }
}

// The reader-side half of the same contract: while any guard is held (a
// pinned snapshot transaction holds one for its whole duration), nodes
// retired by writers must NOT reach the allocator.
TEST(NodePoolReclamation, AHeldGuardBlocksRetiredNodeFrees) {
  EpochManager& mgr = GlobalEpochManager();
  mgr.ReclaimAllForTesting();
  const std::uint64_t freed_before = mgr.FreedCount();
  {
    EpochManager::Guard reader(mgr);  // stands in for a pinned snapshot tx
    std::thread writer([] {
      mvcc::NodePool pool;
      for (std::size_t i = 0; i < mvcc::NodePool::kMaxFree + 32; ++i) {
        pool.Recycle(new mvcc::VersionNode);
      }
    });
    writer.join();
    mgr.ReclaimAllForTesting();  // frees nothing: our guard pins the epoch
    EXPECT_EQ(mgr.FreedCount(), freed_before)
        << "a retired chain node was freed under a live guard";
  }
  mgr.ReclaimAllForTesting();
  EXPECT_GE(mgr.FreedCount() - freed_before, 32u);
}

// --- Concurrency battery (run under TSan in CI) -------------------------------------

// Writers move value between two slots keeping x + y constant; snapshot
// readers assert the invariant on every read pair. Any torn snapshot, any
// misordered publish, any premature node recycle shows up as a violated sum
// (or as a TSan report on the chain accesses).
TEST(SnapshotConcurrency, ScannersSeeConsistentCutsUnderTransfer) {
  constexpr int kTransfers = 4000;
  constexpr int kScans = 4000;
  constexpr Word kTotal = 1000;
  static auto* x = new F::Slot();
  static auto* y = new F::Slot();
  F::SingleWrite(x, EncodeInt(kTotal));
  F::SingleWrite(y, EncodeInt(0));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad_sums{0};

  std::thread writer([&] {
    for (int i = 0; i < kTransfers; ++i) {
      F::Full::Atomically([&](F::FullTx& tx) {
        const Word vx = tx.Read(x);
        if (!tx.ok()) {
          return;
        }
        const Word vy = tx.Read(y);
        if (!tx.ok()) {
          return;
        }
        if (DecodeInt(vx) == 0) {
          return;
        }
        tx.Write(x, EncodeInt(DecodeInt(vx) - 1));
        tx.Write(y, EncodeInt(DecodeInt(vy) + 1));
      });
    }
    stop.store(true, std::memory_order_release);
  });
  std::thread scanner([&] {
    for (int i = 0; i < kScans && !stop.load(std::memory_order_acquire); ++i) {
      F::Full::Atomically([&](F::FullTx& tx) {
        const Word vx = tx.Read(x);
        if (!tx.ok()) {
          return;
        }
        const Word vy = tx.Read(y);
        if (!tx.ok()) {
          return;
        }
        if (DecodeInt(vx) + DecodeInt(vy) != kTotal) {
          bad_sums.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  });
  std::thread short_scanner([&] {
    for (int i = 0; i < kScans && !stop.load(std::memory_order_acquire); ++i) {
      while (true) {
        F::ShortTx tx;
        const Word vx = tx.ReadRo(x);
        if (!tx.Valid()) {
          continue;
        }
        const Word vy = tx.ReadRo(y);
        if (!tx.Valid()) {
          continue;
        }
        if (DecodeInt(vx) + DecodeInt(vy) != kTotal) {
          bad_sums.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
    }
  });
  writer.join();
  scanner.join();
  short_scanner.join();
  EXPECT_EQ(bad_sums.load(), 0u) << "a snapshot saw a torn transfer";
  EXPECT_EQ(DecodeInt(F::SingleRead(x)) + DecodeInt(F::SingleRead(y)), kTotal);
}

// Single-op churn against full-transaction snapshot scans: exercises the
// single-op publish path (displace -> bump -> publish -> store) under real
// concurrency, with single-op readers spinning out publish windows.
TEST(SnapshotConcurrency, SingleOpChurnKeepsChainsSoundForScanners) {
  constexpr int kWrites = 6000;
  constexpr int kScans = 3000;
  static auto* s = new F::Slot();
  F::SingleWrite(s, EncodeInt(0));
  std::atomic<std::uint64_t> regressions{0};

  std::thread writer([&] {
    for (int i = 1; i <= kWrites; ++i) {
      F::SingleWrite(s, EncodeInt(static_cast<Word>(i)));
    }
  });
  std::thread scanner([&] {
    Word last = 0;
    for (int i = 0; i < kScans; ++i) {
      F::Full::Atomically([&](F::FullTx& tx) {
        const Word v = tx.Read(s);
        if (!tx.ok()) {
          return;
        }
        // The writer only increments: any later snapshot reading an EARLIER
        // value than a previous snapshot would break monotonicity.
        if (DecodeInt(v) < last) {
          regressions.fetch_add(1, std::memory_order_relaxed);
        }
        last = DecodeInt(v);
      });
    }
  });
  std::thread single_reader([&] {
    Word last = 0;
    for (int i = 0; i < kScans; ++i) {
      const Word v = DecodeInt(F::SingleRead(s));
      if (v < last) {
        regressions.fetch_add(1, std::memory_order_relaxed);
      }
      last = v;
    }
  });
  writer.join();
  scanner.join();
  single_reader.join();
  EXPECT_EQ(regressions.load(), 0u);
  EXPECT_EQ(DecodeInt(F::SingleRead(s)), static_cast<Word>(kWrites));
}

}  // namespace
}  // namespace spectm
