// Regression tests for short-transaction capacity overflow: exceeding
// kMaxShortReads/kMaxShortWrites is a §2.2 contract violation, but it must
// invalidate the transaction (normal Valid()/Abort()/restart path), never push past
// the fixed-size InlineVec bounds — which in release builds used to be undefined
// behavior (out-of-bounds write into the stack-allocated ShortTx record).
#include <gtest/gtest.h>

#include "src/tm/config.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

// ---- Orec-based short transactions --------------------------------------------------

TEST(ShortTxOverflow, RwOverflowInvalidatesInsteadOfCorrupting) {
  static OrecG::Slot slots[kMaxShortWrites + 1];
  OrecG::ShortTx tx;
  for (int i = 0; i < kMaxShortWrites; ++i) {
    tx.ReadRw(&slots[i]);
    ASSERT_TRUE(tx.Valid());
  }
  EXPECT_EQ(tx.RwCount(), static_cast<std::size_t>(kMaxShortWrites));
  EXPECT_EQ(tx.ReadRw(&slots[kMaxShortWrites]), 0u);
  EXPECT_FALSE(tx.Valid());
  EXPECT_EQ(tx.RwCount(), static_cast<std::size_t>(kMaxShortWrites))
      << "the overflowing access must not be recorded";
  tx.Abort();

  // The abort must have released every lock: single-op writes (which spin on locked
  // orecs) and a fresh short transaction must both proceed.
  for (auto& s : slots) {
    OrecG::SingleWrite(&s, EncodeInt(5));
    EXPECT_EQ(DecodeInt(OrecG::SingleRead(&s)), 5u);
  }
  OrecG::ShortTx retry;
  EXPECT_EQ(DecodeInt(retry.ReadRw(&slots[0])), 5u);
  EXPECT_TRUE(retry.Valid());
  EXPECT_TRUE(retry.CommitRw({EncodeInt(6)}));
  EXPECT_EQ(DecodeInt(OrecG::SingleRead(&slots[0])), 6u);
}

TEST(ShortTxOverflow, RoOverflowInvalidatesInsteadOfCorrupting) {
  static OrecG::Slot slots[kMaxShortReads + 1];
  OrecG::ShortTx tx;
  for (int i = 0; i < kMaxShortReads; ++i) {
    tx.ReadRo(&slots[i]);
    ASSERT_TRUE(tx.Valid());
  }
  EXPECT_EQ(tx.RoCount(), static_cast<std::size_t>(kMaxShortReads));
  EXPECT_EQ(tx.ReadRo(&slots[kMaxShortReads]), 0u);
  EXPECT_FALSE(tx.Valid());
  EXPECT_EQ(tx.RoCount(), static_cast<std::size_t>(kMaxShortReads));
  tx.Abort();
}

TEST(ShortTxOverflow, UpgradeIntoFullRwSetInvalidates) {
  static OrecG::Slot rw_slots[kMaxShortWrites];
  static OrecG::Slot ro_slot;
  OrecG::ShortTx tx;
  for (auto& s : rw_slots) {
    tx.ReadRw(&s);
    ASSERT_TRUE(tx.Valid());
  }
  tx.ReadRo(&ro_slot);
  ASSERT_TRUE(tx.Valid());
  EXPECT_FALSE(tx.UpgradeRoToRw(0));
  EXPECT_FALSE(tx.Valid());
  tx.Abort();

  // Locks released; the RO slot was never locked.
  for (auto& s : rw_slots) {
    OrecG::SingleWrite(&s, EncodeInt(1));
  }
  OrecG::SingleWrite(&ro_slot, EncodeInt(1));
}

TEST(ShortTxOverflow, ResetAfterOverflowIsReusable) {
  static OrecG::Slot slots[kMaxShortWrites + 1];
  OrecG::ShortTx tx;
  for (auto& s : slots) {
    tx.ReadRw(&s);  // last access overflows and invalidates
  }
  EXPECT_FALSE(tx.Valid());
  tx.Reset();
  EXPECT_TRUE(tx.Valid());
  EXPECT_EQ(tx.RwCount(), 0u);
  tx.ReadRw(&slots[0]);
  EXPECT_TRUE(tx.Valid());
  EXPECT_TRUE(tx.CommitRw({EncodeInt(3)}));
  EXPECT_EQ(DecodeInt(OrecG::SingleRead(&slots[0])), 3u);
}

// ---- Value-based short transactions --------------------------------------------------

TEST(ValShortTxOverflow, RwOverflowInvalidatesInsteadOfCorrupting) {
  static Val::Slot slots[kMaxShortWrites + 1];
  Val::ShortTx tx;
  for (int i = 0; i < kMaxShortWrites; ++i) {
    tx.ReadRw(&slots[i]);
    ASSERT_TRUE(tx.Valid());
  }
  EXPECT_EQ(tx.ReadRw(&slots[kMaxShortWrites]), 0u);
  EXPECT_FALSE(tx.Valid());
  tx.Abort();

  // Displaced values restored, words unlocked.
  for (auto& s : slots) {
    Val::SingleWrite(&s, EncodeInt(9));
    EXPECT_EQ(DecodeInt(Val::SingleRead(&s)), 9u);
  }
}

TEST(ValShortTxOverflow, RoOverflowInvalidatesInsteadOfCorrupting) {
  static Val::Slot slots[kMaxShortReads + 1];
  Val::ShortTx tx;
  for (int i = 0; i < kMaxShortReads; ++i) {
    tx.ReadRo(&slots[i]);
    ASSERT_TRUE(tx.Valid());
  }
  EXPECT_EQ(tx.ReadRo(&slots[kMaxShortReads]), 0u);
  EXPECT_FALSE(tx.Valid());
  tx.Abort();
}

TEST(ValShortTxOverflow, UpgradeIntoFullRwSetInvalidates) {
  static Val::Slot rw_slots[kMaxShortWrites];
  static Val::Slot ro_slot;
  Val::ShortTx tx;
  for (auto& s : rw_slots) {
    tx.ReadRw(&s);
    ASSERT_TRUE(tx.Valid());
  }
  tx.ReadRo(&ro_slot);
  ASSERT_TRUE(tx.Valid());
  EXPECT_FALSE(tx.UpgradeRoToRw(0));
  EXPECT_FALSE(tx.Valid());
  tx.Abort();
  Val::SingleWrite(&ro_slot, EncodeInt(2));
  EXPECT_EQ(DecodeInt(Val::SingleRead(&ro_slot)), 2u);
}

}  // namespace
}  // namespace spectm
