// Two-phase contention manager (src/tm/serial.h): the escalation watchdog and
// its hysteresis, the serialization gate's exclusion protocol, and the
// end-to-end claim — a streak-saturated transaction commits serially while
// concurrent readers keep running and see no torn state.
#include "src/tm/serial.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "src/tm/txdesc.h"
#include "src/tm/val_word.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

// Every test that lowers the escalation threshold must put it back, or later
// tests in this binary inherit a hair-trigger watchdog.
struct ThresholdGuard {
  ~ThresholdGuard() { SetSerialEscalationStreak(kSerialEscalationStreak); }
};

struct CmUnitTag {};  // private domain: no engine traffic touches its gate

// Mirrors StrategyHysteresis.InBandEwmaWiggleDoesNotFlap: the cooldown after a
// serial commit doubles the threshold, so the streak that just escalated does
// not immediately re-escalate — it must earn the next one against a higher bar
// that decays only through optimistic commits.
TEST(SerialCm, EscalateDeescalateHysteresis) {
  using Cm = SerialCm<CmUnitTag>;
  ThresholdGuard guard;
  SetSerialEscalationStreak(4);
  CmProbe<CmUnitTag>::Reset();
  TxDesc desc;

  // Below the threshold: no escalation.
  for (int i = 0; i < 3; ++i) {
    Cm::NoteAbortBackoff(desc);
  }
  EXPECT_FALSE(Cm::ShouldEscalate(desc));

  // Streak reaches the threshold: escalate.
  Cm::NoteAbortBackoff(desc);
  EXPECT_TRUE(Cm::ShouldEscalate(desc));

  // Serial commit: streak resets, cooldown starts, threshold doubles.
  Cm::OnSerialCommit(desc);
  EXPECT_EQ(desc.backoff.attempts(), 0u);
  EXPECT_EQ(desc.cm_cooldown, kSerialCooldownCommits);
  for (int i = 0; i < 4; ++i) {
    Cm::NoteAbortBackoff(desc);
  }
  EXPECT_FALSE(Cm::ShouldEscalate(desc))
      << "a 1x-threshold streak re-escalated during cooldown (flapping)";

  // A genuinely pathological streak still escalates mid-cooldown at 2x.
  for (int i = 0; i < 4; ++i) {
    Cm::NoteAbortBackoff(desc);
  }
  EXPECT_TRUE(Cm::ShouldEscalate(desc));

  // Optimistic commits drain the cooldown back to the 1x threshold.
  for (std::uint32_t i = 0; i < kSerialCooldownCommits; ++i) {
    Cm::OnOptimisticCommit(desc);
  }
  EXPECT_EQ(desc.cm_cooldown, 0u);
  for (int i = 0; i < 4; ++i) {
    Cm::NoteAbortBackoff(desc);
  }
  EXPECT_TRUE(Cm::ShouldEscalate(desc));

  // Threshold 0 disables the watchdog outright (the pathological-bench
  // baseline), no matter how long the streak.
  SetSerialEscalationStreak(0);
  EXPECT_FALSE(Cm::ShouldEscalate(desc));

  // The probe kept the streak high-water across the whole scenario.
  EXPECT_EQ(CmProbe<CmUnitTag>::Get().max_abort_streak, 8u);
  EXPECT_EQ(desc.stats.max_abort_streak.load(), 8u);
}

TEST(SerialGate, TokenExcludesOtherCommittersButNotOwner) {
  using Gate = SerialGate<CmUnitTag>;
  TxDesc owner;
  TxDesc other;

  Gate::AcquireSerial(&owner);
  EXPECT_EQ(Gate::SerialOwner(), &owner);
  EXPECT_FALSE(Gate::TryEnterCommitter(&other))
      << "a committer slipped past a held serialization token";
  // The owner itself passes: its single-op writers must not self-deadlock.
  EXPECT_TRUE(Gate::TryEnterCommitter(&owner));
  Gate::ExitCommitter(&owner);
  Gate::ReleaseSerial(&owner);

  EXPECT_EQ(Gate::SerialOwner(), nullptr);
  EXPECT_TRUE(Gate::TryEnterCommitter(&other));
  Gate::ExitCommitter(&other);
}

TEST(SerialGate, AcquireDrainsInFlightCommitters) {
  using Gate = SerialGate<CmUnitTag>;
  std::atomic<bool> entered{false};
  std::atomic<bool> release_committer{false};
  std::atomic<bool> acquired{false};

  std::thread committer([&] {
    TxDesc desc;
    ASSERT_TRUE(Gate::TryEnterCommitter(&desc));
    entered.store(true, std::memory_order_release);
    while (!release_committer.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    Gate::ExitCommitter(&desc);
  });
  std::thread serial([&] {
    while (!entered.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    TxDesc desc;
    Gate::AcquireSerial(&desc);  // must block until the committer exits
    acquired.store(true, std::memory_order_release);
    Gate::ReleaseSerial(&desc);
  });

  while (!entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(acquired.load(std::memory_order_acquire))
      << "AcquireSerial returned while a committer was still announced";
  release_committer.store(true, std::memory_order_release);
  committer.join();
  serial.join();
  EXPECT_TRUE(acquired.load());
}

// End-to-end: a writer whose streak saturates the watchdog commits SERIALLY —
// probe-observed — while read-only transactions keep running concurrently
// (they never touch the gate) and never observe a torn pair. This is the
// interop half of the soundness argument in docs/VALIDATION.md: serial mode
// excludes committers, not readers, and still publishes counter bumps readers
// anchor their skips on.
TEST(SerialEscalation, SerialCommitsRunAgainstLiveReaders) {
  using F = OrecL;
  using Tag = OrecLTag;
  ThresholdGuard guard;
  SetSerialEscalationStreak(4);
  // The fabricated 8-abort streaks below would close an abort-stormed health
  // window (SPECTM_HEALTH builds) and throttle exactly the escalations this
  // test counts; park the window past the test's event budget. The watchdog's
  // own behavior is pinned by tests/common/health_test.cc. No-op when the
  // watchdog is compiled out.
  health::SetHealthWindow(1u << 20);

  static F::Slot pair_a, pair_b;
  F::SingleWrite(&pair_a, EncodeInt(0));
  F::SingleWrite(&pair_b, EncodeInt(0));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> escalations{0};
  std::atomic<std::uint64_t> serial_commits{0};

  std::thread writer([&] {
    using Cm = SerialCm<Tag>;
    CmProbe<Tag>::Reset();
    TxDesc& desc = DescOf<Tag>();
    for (int i = 1; i <= 10; ++i) {
      // Fabricate a saturated streak (2x the threshold, so escalation fires
      // even inside the post-serial cooldown), then run an ordinary
      // transaction: Start() must take the token and Commit() must land it
      // serially on the first attempt — serial mode cannot conflict-abort.
      for (int j = 0; j < 8; ++j) {
        Cm::NoteAbortBackoff(desc);
      }
      const Word v = EncodeInt(static_cast<std::uint64_t>(i));
      F::FullTx tx;
      bool committed = false;
      while (!committed) {
        tx.Start();
        tx.Read(&pair_a);
        tx.Read(&pair_b);
        tx.Write(&pair_a, v);
        tx.Write(&pair_b, v);
        committed = tx.Commit();
      }
    }
    const auto probe = CmProbe<Tag>::Get();
    escalations.store(probe.escalations);
    serial_commits.store(probe.serial_commits);
    desc.cm_cooldown = 0;  // don't leak hysteresis state into later tests
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      F::FullTx tx;
      tx.Start();
      const Word va = tx.Read(&pair_a);
      const Word vb = tx.Read(&pair_b);
      if (!tx.Commit()) {
        continue;
      }
      if (va != vb) {
        torn.fetch_add(1);
      }
    }
  });

  writer.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  health::SetHealthWindow(health::kHealthWindowDefault);
  EXPECT_EQ(torn.load(), 0u) << "a reader saw a serial commit half-applied";
  EXPECT_GE(escalations.load(), 10u);
  EXPECT_GE(serial_commits.load(), 10u)
      << "the streak-saturated writer never actually committed serially";
}

}  // namespace
}  // namespace spectm
