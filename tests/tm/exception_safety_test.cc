// Unwind-safety battery for the abort machinery (src/tm/txguard.h): any
// exception escaping user code — a composable TxCancel or a foreign throw —
// must leave no orec/val lock held, no committer flag announced, and no serial
// token owned, and the very next transaction over the same locations must
// commit. The cancel/foreign tests run in every build; under SPECTM_FAILPOINTS
// the battery extends to throw injection at every planted fail-point site in
// all four engines (tentpole claim: every razor-edge site can erupt and the
// domain stays clean), including a site erupting inside an ESCALATED serial
// attempt, which must release the token before the fault leaves the frame.
#include "src/tm/txguard.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/common/failpoint.h"
#include "src/epoch/epoch.h"
#include "src/tm/compat.h"
#include "src/tm/config.h"
#include "src/tm/mvcc.h"
#include "src/tm/serial.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

// Gate cleanliness is THE leak signal: a leaked lock shows up as the next
// transaction spinning/aborting forever, but a leaked committer flag or token
// is invisible to normal traffic right up until the next AcquireSerial wedges.
template <typename Family>
void ExpectGateClean() {
  using Gate = SerialGate<typename Family::DomainTag>;
  EXPECT_EQ(Gate::SerialOwner(), nullptr) << "serial token leaked";
  EXPECT_EQ(Gate::AnnouncedCommitters(), 0u) << "committer flag leaked";
}

// Post-unwind liveness probe: the same thread immediately commits a write over
// the same slot — impossible if the unwind left a lock or the token behind.
template <typename Family>
void ExpectDomainLive(typename Family::Slot* s, Word payload) {
  using Full = typename Family::Full;
  EXPECT_TRUE(Full::Atomically(
      [&](typename Family::FullTx& tx) { tx.Write(s, payload); }));
  EXPECT_EQ(Family::SingleRead(s), payload);
}

class ExceptionSafetyTest : public ::testing::Test {
 protected:
  void TearDown() override {
#if defined(SPECTM_FAILPOINTS)
    failpoint::DisarmAll();
    failpoint::ResetHits();
    failpoint::ResetSiteHits();
#endif
    SetSerialEscalationStreak(kSerialEscalationStreak);
  }
};

// ---- TxCancel policies (every build mode) ------------------------------------------

TEST_F(ExceptionSafetyTest, CancelAndRetryRerunsTheBody) {
  Val::Slot s;
  Val::SingleWrite(&s, EncodeInt(1));
  int runs = 0;
  const bool committed = Val::Full::Atomically([&](Val::FullTx& tx) {
    ++runs;
    tx.Write(&s, EncodeInt(7));
    if (runs < 3) {
      CancelAndRetry();  // aborts the attempt mid-body, nothing published
    }
  });
  EXPECT_TRUE(committed);
  EXPECT_EQ(runs, 3);
  EXPECT_EQ(DecodeInt(Val::SingleRead(&s)), 7u);
  ExpectGateClean<Val>();
}

TEST_F(ExceptionSafetyTest, CancelTxAbortsAndPublishesNothing) {
  OrecL::Slot s;
  OrecL::SingleWrite(&s, EncodeInt(1));
  const bool committed = OrecL::Full::Atomically([&](OrecL::FullTx& tx) {
    tx.Write(&s, EncodeInt(9));
    CancelTx();
  });
  EXPECT_FALSE(committed);
  EXPECT_EQ(DecodeInt(OrecL::SingleRead(&s)), 1u) << "aborted write leaked";
  ExpectGateClean<OrecL>();
  ExpectDomainLive<OrecL>(&s, EncodeInt(2));
}

TEST_F(ExceptionSafetyTest, ForeignExceptionAbortsThenPropagates) {
  Val::Slot s;
  Val::SingleWrite(&s, EncodeInt(1));
  bool threw = false;
  try {
    Val::Full::Atomically([&](Val::FullTx& tx) {
      tx.Write(&s, EncodeInt(9));
      throw std::runtime_error("user code failure");
    });
  } catch (const std::runtime_error&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(DecodeInt(Val::SingleRead(&s)), 1u) << "aborted write leaked";
  ExpectGateClean<Val>();
  ExpectDomainLive<Val>(&s, EncodeInt(2));
}

// The short engines have no catching retry loop of their own: ~ShortTx is the
// unwind path, releasing encounter locks / displaced values before the foreign
// exception escapes the record's scope.
template <typename Family>
void ShortDtorUnwindCase() {
  typename Family::Slot a, b;
  Family::SingleWrite(&a, EncodeInt(1));
  Family::SingleWrite(&b, EncodeInt(2));
  bool threw = false;
  try {
    typename Family::ShortTx tx;
    (void)tx.ReadRw(&a);  // encounter-time lock now held
    (void)tx.ReadRo(&b);
    throw std::runtime_error("user code failure");
  } catch (const std::runtime_error&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  ExpectGateClean<Family>();
  // The lock ReadRw took must be gone: single ops spin on locked words.
  Family::SingleWrite(&a, EncodeInt(5));
  EXPECT_EQ(DecodeInt(Family::SingleRead(&a)), 5u);
  typename Family::ShortTx tx2;
  (void)tx2.ReadRw(&a);
  ASSERT_TRUE(tx2.Valid());
  EXPECT_TRUE(tx2.CommitRw({EncodeInt(6)}));
  EXPECT_EQ(DecodeInt(Family::SingleRead(&a)), 6u);
}

TEST_F(ExceptionSafetyTest, ShortDtorUnwindOrec) { ShortDtorUnwindCase<OrecL>(); }
TEST_F(ExceptionSafetyTest, ShortDtorUnwindVal) { ShortDtorUnwindCase<Val>(); }

TEST_F(ExceptionSafetyTest, TxRunCancelPolicies) {
  Val::Slot s;
  Val::SingleWrite(&s, EncodeInt(1));
  int runs = 0;
  const bool retried = compat::Tx_Run<Val>([&](compat::TX_RECORD<Val>* t) {
    ++runs;
    compat::Tx_RW_R1(t, &s);
    if (runs < 2) {
      CancelAndRetry();
    }
    compat::Tx_RW_1_Commit(t, compat::ToPtr(EncodeInt(4)));
    return true;
  });
  EXPECT_TRUE(retried);
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(DecodeInt(Val::SingleRead(&s)), 4u);

  const bool aborted = compat::Tx_Run<Val>([&](compat::TX_RECORD<Val>* t) {
    compat::Tx_RW_R1(t, &s);
    CancelTx();
    return true;  // unreachable
  });
  EXPECT_FALSE(aborted);
  EXPECT_EQ(DecodeInt(Val::SingleRead(&s)), 4u) << "cancelled attempt leaked";
  ExpectGateClean<Val>();
}

#if defined(SPECTM_FAILPOINTS)

using failpoint::Site;

// ---- Throw injection at every planted site, engine by engine -----------------------

// Full engines: the body reads one slot and writes another, so the read-path
// sites (sandwich) and the commit-path sites (gate, lock CAS, publication,
// validation) are all on the executed path. 100% throw probability makes the
// first reached armed site erupt deterministically.
template <typename Family>
void FullThrowAtSite(Site site) {
  using Full = typename Family::Full;
  typename Family::Slot a, b;
  Family::SingleWrite(&a, EncodeInt(1));
  Family::SingleWrite(&b, EncodeInt(2));
  failpoint::ResetHits();
  failpoint::ArmThrow(site, 100);
  bool threw = false;
  try {
    Full::Atomically([&](typename Family::FullTx& tx) {
      const Word v = tx.Read(&a);
      if (tx.ok()) {
        tx.Write(&b, EncodeInt(DecodeInt(v) + 10));
      }
    });
  } catch (const failpoint::InjectedFault& fault) {
    threw = true;
    EXPECT_EQ(fault.site, site);
  }
  failpoint::Disarm(site);
  EXPECT_TRUE(threw) << "site never reached: " << failpoint::SiteName(site);
  EXPECT_GT(failpoint::Hits(site), 0u);
  EXPECT_EQ(DecodeInt(Family::SingleRead(&b)), 2u) << "torn write leaked";
  ExpectGateClean<Family>();
  ExpectDomainLive<Family>(&b, EncodeInt(3));
}

// Short engines: first RO read hits the sandwich site, the RW reads hit the
// lock-CAS site, and CommitMixed's RO validation hits the pre-validate site.
template <typename Family>
void ShortThrowAtSite(Site site) {
  typename Family::Slot a, b, c;
  Family::SingleWrite(&a, EncodeInt(1));
  Family::SingleWrite(&b, EncodeInt(2));
  Family::SingleWrite(&c, EncodeInt(3));
  failpoint::ResetHits();
  failpoint::ArmThrow(site, 100);
  bool threw = false;
  try {
    typename Family::ShortTx tx;
    (void)tx.ReadRo(&a);
    (void)tx.ReadRo(&b);
    (void)tx.ReadRw(&c);
    if (tx.Valid()) {
      (void)tx.CommitMixed({EncodeInt(30)});
    }
  } catch (const failpoint::InjectedFault& fault) {
    threw = true;
    EXPECT_EQ(fault.site, site);
  }
  failpoint::Disarm(site);
  EXPECT_TRUE(threw) << "site never reached: " << failpoint::SiteName(site);
  EXPECT_GT(failpoint::Hits(site), 0u);
  EXPECT_EQ(DecodeInt(Family::SingleRead(&c)), 3u) << "torn write leaked";
  ExpectGateClean<Family>();
  // Post-storm liveness over the formerly locked slot.
  typename Family::ShortTx tx2;
  (void)tx2.ReadRw(&c);
  ASSERT_TRUE(tx2.Valid());
  EXPECT_TRUE(tx2.CommitRw({EncodeInt(8)}));
  EXPECT_EQ(DecodeInt(Family::SingleRead(&c)), 8u);
}

TEST_F(ExceptionSafetyTest, FullOrecThrowEverySite) {
  FullThrowAtSite<OrecL>(Site::kPostReadPreSandwich);
  FullThrowAtSite<OrecL>(Site::kPreValidate);
  FullThrowAtSite<OrecL>(Site::kLockAcquire);
}

// The publication sites are pause-style (locks held, counters mid-bump): a
// throw there is the harshest unwind of all and must still restore every lock
// through the commit guard. The bloom/partitioned families are the ones whose
// commit actually runs the publication sequence.
TEST_F(ExceptionSafetyTest, FullOrecThrowInsidePublication) {
  FullThrowAtSite<OrecLBloom>(Site::kPreBump);
  FullThrowAtSite<OrecLBloom>(Site::kPreRingPublish);
  FullThrowAtSite<OrecLPart>(Site::kPreStripeBump);
}

TEST_F(ExceptionSafetyTest, FullValThrowEverySite) {
  FullThrowAtSite<Val>(Site::kPreValidate);
  FullThrowAtSite<Val>(Site::kLockAcquire);
  FullThrowAtSite<ValBloom>(Site::kPreBump);
  FullThrowAtSite<ValBloom>(Site::kPreRingPublish);
  FullThrowAtSite<ValPart>(Site::kPreStripeBump);
}

TEST_F(ExceptionSafetyTest, ShortOrecThrowEverySite) {
  ShortThrowAtSite<OrecL>(Site::kPostReadPreSandwich);
  ShortThrowAtSite<OrecL>(Site::kPreValidate);
  ShortThrowAtSite<OrecL>(Site::kLockAcquire);
}

TEST_F(ExceptionSafetyTest, ShortValThrowEverySite) {
  ShortThrowAtSite<Val>(Site::kPostReadPreSandwich);
  ShortThrowAtSite<Val>(Site::kPreValidate);
  ShortThrowAtSite<Val>(Site::kLockAcquire);
}

// MVCC publication is the razor-edge the version chains add: at kVersionPublish
// the node is already linked as the chain head but still UNSTAMPED, and the
// slot lock is still held. A throw there must tombstone the node (stamp :=
// floor, an empty validity interval) before restoring the displaced value —
// an unstamped head left behind would wedge every later snapshot read into
// its publish-window retry loop, and a selectable interval would expose the
// aborted write to pinned readers.
TEST_F(ExceptionSafetyTest, SnapshotFullPublishThrowTombstonesTheHead) {
  ValSnap::Slot a, b;
  ValSnap::SingleWrite(&a, EncodeInt(1));
  ValSnap::SingleWrite(&b, EncodeInt(2));
  failpoint::ResetHits();
  failpoint::ArmThrow(Site::kVersionPublish, 100);
  bool threw = false;
  try {
    ValSnap::Full::Atomically([&](ValSnap::FullTx& tx) {
      const Word v = tx.Read(&a);
      if (tx.ok()) {
        tx.Write(&b, EncodeInt(DecodeInt(v) + 10));
      }
    });
  } catch (const failpoint::InjectedFault& fault) {
    threw = true;
    EXPECT_EQ(fault.site, Site::kVersionPublish);
  }
  failpoint::Disarm(Site::kVersionPublish);
  EXPECT_TRUE(threw) << "publish site never reached";
  EXPECT_EQ(DecodeInt(ValSnap::SingleRead(&b)), 2u) << "torn write leaked";
  mvcc::VersionNode* head = b.versions.load(std::memory_order_acquire);
  ASSERT_NE(head, nullptr) << "the pre-fault push vanished";
  const Word stamp = head->stamp.load(std::memory_order_acquire);
  EXPECT_NE(stamp, mvcc::kUnstamped) << "unstamped head leaked past the unwind";
  EXPECT_EQ(stamp, head->floor) << "aborted publish left a selectable interval";
  ExpectGateClean<ValSnap>();
  // A fresh snapshot over the repaired chain reads the restored value.
  EXPECT_TRUE(ValSnap::Full::Atomically([&](ValSnap::FullTx& tx) {
    EXPECT_EQ(DecodeInt(tx.Read(&b)), 2u);
  }));
  ExpectDomainLive<ValSnap>(&b, EncodeInt(3));
}

// Same eruption on the single-op precise path, where the publish runs between
// the commit bump and the releasing store with the lock guard as the only
// unwind machinery.
TEST_F(ExceptionSafetyTest, SnapshotSingleOpPublishThrowRestoresSlotAndChain) {
  ValSnap::Slot s;
  ValSnap::SingleWrite(&s, EncodeInt(1));
  failpoint::ResetHits();
  failpoint::ArmThrow(Site::kVersionPublish, 100);
  bool threw = false;
  try {
    ValSnap::SingleWrite(&s, EncodeInt(2));
  } catch (const failpoint::InjectedFault& fault) {
    threw = true;
    EXPECT_EQ(fault.site, Site::kVersionPublish);
  }
  failpoint::Disarm(Site::kVersionPublish);
  EXPECT_TRUE(threw) << "publish site never reached";
  EXPECT_EQ(DecodeInt(ValSnap::SingleRead(&s)), 1u) << "torn single-op leaked";
  mvcc::VersionNode* head = s.versions.load(std::memory_order_acquire);
  ASSERT_NE(head, nullptr);
  const Word stamp = head->stamp.load(std::memory_order_acquire);
  EXPECT_NE(stamp, mvcc::kUnstamped) << "unstamped head leaked past the unwind";
  EXPECT_EQ(stamp, head->floor) << "aborted publish left a selectable interval";
  ExpectGateClean<ValSnap>();
  EXPECT_TRUE(ValSnap::Full::Atomically([&](ValSnap::FullTx& tx) {
    EXPECT_EQ(DecodeInt(tx.Read(&s)), 1u);
  }));
  ExpectDomainLive<ValSnap>(&s, EncodeInt(4));
}

// A fault erupting inside an ESCALATED attempt: the serial token is the one
// piece of state whose leak wedges the whole domain (the next escalation spins
// on AcquireSerial forever), so the unwind must release it before the fault
// leaves the frame.
TEST_F(ExceptionSafetyTest, ThrowInsideSerialAttemptReleasesToken) {
  using Probe = CmProbe<typename OrecL::DomainTag>;
  OrecL::Slot s;
  OrecL::SingleWrite(&s, EncodeInt(1));
  SetSerialEscalationStreak(1);
  // Build a streak of 1: one forced-conflict commit failure.
  failpoint::Arm(Site::kLockAcquire, /*abort_pct=*/100);
  {
    OrecL::FullTx tx;
    tx.Start();
    tx.Write(&s, EncodeInt(2));
    EXPECT_FALSE(tx.Commit());
  }
  failpoint::Disarm(Site::kLockAcquire);
  const auto before = Probe::Get();
  // The next attempt escalates (streak >= 1) and then erupts at the lock CAS,
  // which serial attempts still run (ordinary commit protocol under the token).
  failpoint::ArmThrow(Site::kLockAcquire, 100);
  bool threw = false;
  try {
    OrecL::Full::Atomically(
        [&](OrecL::FullTx& tx) { tx.Write(&s, EncodeInt(3)); });
  } catch (const failpoint::InjectedFault&) {
    threw = true;
  }
  failpoint::Disarm(Site::kLockAcquire);
  EXPECT_TRUE(threw);
  EXPECT_GT(Probe::Get().escalations, before.escalations)
      << "the schedule never actually escalated";
  ExpectGateClean<OrecL>();
  EXPECT_EQ(DecodeInt(OrecL::SingleRead(&s)), 1u) << "torn serial write leaked";
  // The decisive liveness probe: acquiring the token AGAIN only works if the
  // unwind released it.
  SetSerialEscalationStreak(1);
  EXPECT_TRUE(OrecL::Full::Atomically(
      [&](OrecL::FullTx& tx) { tx.Write(&s, EncodeInt(4)); }));
  EXPECT_EQ(DecodeInt(OrecL::SingleRead(&s)), 4u);
}

// ---- Reach-counter audit: every planted site actually fires ------------------------
//
// SiteHits counts every REACH of a planted site (no RNG draw, no arming), so
// this is the canary against silently unreachable plants: a refactor that
// moves a protocol path off its fail-point would otherwise quietly turn the
// injection batteries above into no-ops without failing anything.
TEST_F(ExceptionSafetyTest, EveryPlantedSiteActuallyFires) {
  failpoint::ResetSiteHits();
  // Optimistic full-tx traffic: read sandwich, validation, lock CAS, and the
  // commit gate's enter/exit plants.
  {
    OrecL::Slot a, b;
    OrecL::SingleWrite(&a, EncodeInt(1));
    OrecL::SingleWrite(&b, EncodeInt(2));
    EXPECT_TRUE(OrecL::Full::Atomically([&](OrecL::FullTx& tx) {
      const Word v = tx.Read(&a);
      if (tx.ok()) {
        tx.Write(&b, EncodeInt(DecodeInt(v) + 1));
      }
    }));
  }
  // Publication sequence: counter bump, ring publish, the post-publish tail
  // (bloom family), and the per-stripe bumps (partitioned family).
  {
    ValBloom::Slot s;
    ValBloom::SingleWrite(&s, EncodeInt(1));
    EXPECT_TRUE(ValBloom::Full::Atomically(
        [&](ValBloom::FullTx& tx) { tx.Write(&s, EncodeInt(2)); }));
    ValPart::Slot p;
    ValPart::SingleWrite(&p, EncodeInt(1));
    EXPECT_TRUE(ValPart::Full::Atomically(
        [&](ValPart::FullTx& tx) { tx.Write(&p, EncodeInt(2)); }));
  }
  // Contention: forced aborts drive the backoff wait, and with streak 1 the
  // retries escalate through the serial token acquire/release pair. 60% keeps
  // each Atomically finite while staying deterministic from the seed; the
  // loop bound only caps how long we fish for the first escalated commit.
  {
    SetSerialEscalationStreak(1);
    failpoint::SetSeed(0x517e5);
    failpoint::Arm(Site::kLockAcquire, /*abort_pct=*/60);
    OrecL::Slot s;
    OrecL::SingleWrite(&s, EncodeInt(1));
    for (int i = 0;
         i < 64 && (failpoint::SiteHits(Site::kSerialTokenRelease) == 0 ||
                    failpoint::SiteHits(Site::kBackoffWait) == 0);
         ++i) {
      (void)OrecL::Full::Atomically(
          [&](OrecL::FullTx& tx) { tx.Write(&s, EncodeInt(3)); });
    }
    failpoint::Disarm(Site::kLockAcquire);
  }
  // MVCC publication: every single-op write pushes a version (the publish
  // pause) and scans the pinned snapshots for the done stamp; overwriting the
  // same slot past the chain bound trims and retires superseded nodes.
  {
    ValSnap::Slot s;
    for (int i = 0; i < mvcc::kMaxVersions + 2; ++i) {
      ValSnap::SingleWrite(&s, EncodeInt(static_cast<Word>(i)));
    }
    EXPECT_TRUE(ValSnap::Full::Atomically(
        [&](ValSnap::FullTx& tx) { (void)tx.Read(&s); }));
  }
  // Epoch machinery: an object into a limbo bag under a Guard, then the
  // advance/reclaim scan.
  {
    EpochManager mgr;
    {
      EpochManager::Guard g(mgr);
      mgr.Retire(new int(7));
    }
    mgr.ReclaimAllForTesting();
  }
  for (int s = 0; s < failpoint::kSiteCount; ++s) {
    EXPECT_GT(failpoint::SiteHits(static_cast<Site>(s)), 0u)
        << "planted site never reached: "
        << failpoint::SiteName(static_cast<Site>(s));
  }
}

#endif  // SPECTM_FAILPOINTS

}  // namespace
}  // namespace spectm
