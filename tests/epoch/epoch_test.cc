#include "src/epoch/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace spectm {
namespace {

struct Canary {
  static std::atomic<int> live;
  std::uint64_t payload = 0xabcdef;
  Canary() { live.fetch_add(1); }
  ~Canary() {
    payload = 0xdead;
    live.fetch_sub(1);
  }
};
std::atomic<int> Canary::live{0};

TEST(Epoch, RetireEventuallyFrees) {
  EpochManager mgr;
  {
    EpochManager::Guard g(mgr);
    for (int i = 0; i < 10; ++i) {
      mgr.Retire(new Canary);
    }
  }
  EXPECT_EQ(mgr.PendingCount(), 10u);
  mgr.ReclaimAllForTesting();
  EXPECT_EQ(mgr.PendingCount(), 0u);
  EXPECT_EQ(Canary::live.load(), 0);
  EXPECT_EQ(mgr.FreedCount(), 10u);
}

TEST(Epoch, DestructorFreesPending) {
  Canary::live.store(0);
  {
    EpochManager mgr;
    EpochManager::Guard g(mgr);
    mgr.Retire(new Canary);
  }
  EXPECT_EQ(Canary::live.load(), 0);
}

TEST(Epoch, ActiveGuardBlocksReclamation) {
  EpochManager mgr;
  std::atomic<bool> guard_held{false};
  std::atomic<bool> release{false};
  Canary* observed = nullptr;

  std::thread reader([&] {
    EpochManager::Guard g(mgr);
    guard_held.store(true);
    while (!release.load()) {
      CpuRelax();
    }
  });
  while (!guard_held.load()) {
    CpuRelax();
  }

  {
    EpochManager::Guard g(mgr);
    observed = new Canary;
    mgr.Retire(observed);
  }
  // The reader entered before the retire and has not exited: the object must not be
  // freed no matter how hard we try to advance.
  for (int i = 0; i < 4; ++i) {
    EpochManager::Guard g(mgr);
    mgr.Retire(new Canary);  // churn to trigger advance attempts
  }
  mgr.ReclaimAllForTesting();
  EXPECT_EQ(observed->payload, 0xabcdefULL) << "object freed under an active guard";

  release.store(true);
  reader.join();
  mgr.ReclaimAllForTesting();
  EXPECT_EQ(Canary::live.load(), 0);
}

TEST(Epoch, GlobalEpochAdvancesWhenQuiescent) {
  EpochManager mgr;
  const std::uint64_t before = mgr.GlobalEpoch();
  mgr.ReclaimAllForTesting();
  EXPECT_GT(mgr.GlobalEpoch(), before);
}

TEST(Epoch, ManyThreadsRetireConcurrently) {
  Canary::live.store(0);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  {
    EpochManager mgr;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kPerThread; ++i) {
          EpochManager::Guard g(mgr);
          auto* c = new Canary;
          // Touch the object while protected, then retire it.
          ASSERT_EQ(c->payload, 0xabcdefULL);
          mgr.Retire(c);
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    mgr.ReclaimAllForTesting();
    EXPECT_EQ(mgr.PendingCount(), 0u);
  }
  EXPECT_EQ(Canary::live.load(), 0);
}

// Readers continuously dereference nodes published by a writer that retires them:
// the epoch scheme must prevent any use-after-free (payload corruption detected via
// the canary value written by the destructor).
TEST(Epoch, ReadersNeverObserveFreedMemory) {
  EpochManager mgr;
  std::atomic<Canary*> shared{new Canary};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochManager::Guard g(mgr);
        Canary* c = shared.load(std::memory_order_acquire);
        if (c->payload != 0xabcdefULL) {
          bad.fetch_add(1);
        }
      }
    });
  }

  for (int i = 0; i < 5000; ++i) {
    EpochManager::Guard g(mgr);
    Canary* next = new Canary;
    Canary* old = shared.exchange(next, std::memory_order_acq_rel);
    mgr.Retire(old);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_EQ(bad.load(), 0u);
  {
    EpochManager::Guard g(mgr);
    mgr.Retire(shared.load());
  }
  mgr.ReclaimAllForTesting();
  EXPECT_EQ(mgr.PendingCount(), 0u);
}

TEST(Epoch, GlobalManagerSingleton) {
  EpochManager& a = GlobalEpochManager();
  EpochManager& b = GlobalEpochManager();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace spectm
