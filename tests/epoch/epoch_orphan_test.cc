// Thread-exit handling in the epoch reclaimer: a thread that retires objects and
// then exits must hand its limbo objects to the orphan list, where a later advance
// by any surviving thread frees them (no leak, no premature free).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/epoch/epoch.h"

namespace spectm {
namespace {

struct Canary {
  static std::atomic<int> live;
  std::uint64_t payload = 0xfeedULL;
  Canary() { live.fetch_add(1); }
  ~Canary() {
    payload = 0xdeadULL;
    live.fetch_sub(1);
  }
};
std::atomic<int> Canary::live{0};

TEST(EpochOrphans, ExitedThreadsObjectsAreEventuallyFreed) {
  Canary::live.store(0);
  EpochManager mgr;
  {
    std::thread worker([&] {
      EpochManager::Guard g(mgr);
      for (int i = 0; i < 100; ++i) {
        mgr.Retire(new Canary);
      }
    });
    worker.join();  // thread exit hands the limbo bags to the orphan list
  }
  EXPECT_EQ(mgr.PendingCount(), 100u) << "orphans must survive the thread";
  mgr.ReclaimAllForTesting();  // a surviving thread's advance frees them
  EXPECT_EQ(mgr.PendingCount(), 0u);
  EXPECT_EQ(Canary::live.load(), 0);
}

TEST(EpochOrphans, OrphansRespectActiveGuards) {
  Canary::live.store(0);
  EpochManager mgr;
  std::atomic<bool> guard_held{false};
  std::atomic<bool> release{false};
  Canary* observed = nullptr;

  std::thread reader([&] {
    EpochManager::Guard g(mgr);
    guard_held.store(true);
    while (!release.load()) {
      CpuRelax();
    }
  });
  while (!guard_held.load()) {
    CpuRelax();
  }

  std::thread writer([&] {
    EpochManager::Guard g(mgr);
    observed = new Canary;
    mgr.Retire(observed);
  });
  writer.join();

  mgr.ReclaimAllForTesting();
  EXPECT_EQ(observed->payload, 0xfeedULL)
      << "orphaned object freed while a pre-existing guard is active";

  release.store(true);
  reader.join();
  mgr.ReclaimAllForTesting();
  EXPECT_EQ(Canary::live.load(), 0);
}

TEST(EpochOrphans, ManyShortLivedThreads) {
  Canary::live.store(0);
  EpochManager mgr;
  for (int round = 0; round < 20; ++round) {
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < 50; ++i) {
          EpochManager::Guard g(mgr);
          mgr.Retire(new Canary);
        }
      });
    }
    for (auto& w : workers) {
      w.join();
    }
  }
  mgr.ReclaimAllForTesting();
  EXPECT_EQ(mgr.PendingCount(), 0u);
  EXPECT_EQ(Canary::live.load(), 0);
}

TEST(EpochOrphans, DestructorDrainsOrphans) {
  Canary::live.store(0);
  {
    EpochManager mgr;
    std::thread worker([&] {
      EpochManager::Guard g(mgr);
      mgr.Retire(new Canary);
    });
    worker.join();
    // No reclaim call: the manager destructor must free the orphan.
  }
  EXPECT_EQ(Canary::live.load(), 0);
}

}  // namespace
}  // namespace spectm
