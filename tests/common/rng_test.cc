#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace spectm {
namespace {

TEST(Xorshift128Plus, DeterministicForSeed) {
  Xorshift128Plus a(42);
  Xorshift128Plus b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Xorshift128Plus, DifferentSeedsDiverge) {
  Xorshift128Plus a(1);
  Xorshift128Plus b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(Xorshift128Plus, ZeroSeedIsUsable) {
  Xorshift128Plus r(0);
  bool any_nonzero = false;
  for (int i = 0; i < 100; ++i) {
    if (r.Next() != 0) {
      any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(Xorshift128Plus, BoundedStaysInRange) {
  Xorshift128Plus r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 65536ULL}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(r.NextBounded(bound), bound);
    }
  }
}

TEST(Xorshift128Plus, BoundedCoversRange) {
  Xorshift128Plus r(3);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++hits[r.NextBounded(10)];
  }
  for (int h : hits) {
    EXPECT_GT(h, 500) << "bucket starved; distribution badly skewed";
  }
}

TEST(Xorshift128Plus, PercentStaysInRange) {
  Xorshift128Plus r(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.NextPercent(), 100u);
  }
}

TEST(Xorshift128Plus, SkipListLevelsGeometric) {
  Xorshift128Plus r(11);
  constexpr int kSamples = 200000;
  std::vector<int> counts(33, 0);
  for (int i = 0; i < kSamples; ++i) {
    const int level = r.NextSkipListLevel(32);
    ASSERT_GE(level, 1);
    ASSERT_LE(level, 32);
    ++counts[level];
  }
  // P(level = 1) = 1/2, P(level = 2) = 1/4: check within loose tolerance.
  EXPECT_NEAR(static_cast<double>(counts[1]) / kSamples, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kSamples, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[3]) / kSamples, 0.125, 0.02);
}

TEST(Xorshift128Plus, SkipListLevelRespectsMax) {
  Xorshift128Plus r(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LE(r.NextSkipListLevel(4), 4);
  }
}

}  // namespace
}  // namespace spectm
