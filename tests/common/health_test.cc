// Health watchdog (src/common/health.h): the zero-cost claim for builds without
// SPECTM_HEALTH, and — when the watchdog is compiled in — storm detection,
// hysteretic recovery, gate-hold overruns, ring saturation, escalation
// throttling, and the diagnostics snapshot assembled by the SerialCm
// integration layer (src/tm/serial.h). Same two-branch shape as
// failpoint_test.cc: the static_asserts ARE the disabled-build proof.
#include "src/common/health.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/common/backoff.h"
#include "src/tm/serial.h"
#include "src/tm/txdesc.h"

namespace spectm {
namespace {

struct HealthTestTag {};

#if !defined(SPECTM_HEALTH)

// The zero-cost proof: with the gate off, every decision entry point must fold
// to a constant expression — usable in a static_assert, so by construction
// there is no thread-local, atomic, or branch left for the optimizer to elide.
static_assert(!health::kEnabled, "gate flag out of sync with the build");
static_assert(!health::EscalationThrottled<HealthTestTag>(),
              "disabled throttle must be the constant false");
static_assert(!health::Degraded<HealthTestTag>(),
              "disabled watchdog can never report degraded");
static_assert(health::RingGauge<HealthTestTag>() == 0,
              "disabled ring gauge must be the constant zero");
static_assert(health::HealthWindow() == health::kHealthWindowDefault,
              "disabled window must be the compile-time default");
static_assert(health::HealthProbe<HealthTestTag>::Get().samples == 0,
              "disabled probe must be all-zero");

TEST(Health, DisabledFeedsAreInertNoOps) {
  Backoff b;
  EXPECT_EQ(health::OnOutcome<HealthTestTag>(b, /*committed=*/false),
            health::Event::kNone);
  EXPECT_EQ(health::NoteAttemptStart<HealthTestTag>(b, /*foreign=*/true),
            health::Event::kNone);
  health::SetRingGauge<HealthTestTag>(123);
  EXPECT_EQ(health::RingGauge<HealthTestTag>(), 0u);
  EXPECT_EQ(b.widening(), 1u) << "a disabled watchdog must never widen backoff";
}

#else  // SPECTM_HEALTH

static_assert(health::kEnabled, "gate flag out of sync with the build");

class HealthTest : public ::testing::Test {
 protected:
  void SetUp() override { health::ResetForTest<HealthTestTag>(); }
  void TearDown() override {
    health::ResetForTest<HealthTestTag>();
    SetSerialEscalationStreak(kSerialEscalationStreak);
  }
};

// Feed one whole window of outcomes with the given abort count; returns the
// event the window-closing outcome reported.
health::Event FeedWindow(Backoff& b, std::uint32_t events, std::uint32_t aborts) {
  health::Event last = health::Event::kNone;
  for (std::uint32_t i = 0; i < events; ++i) {
    last = health::OnOutcome<HealthTestTag>(b, /*committed=*/i >= aborts);
  }
  return last;
}

TEST_F(HealthTest, AbortStormEntersDegradedAndWidensBackoff) {
  health::SetHealthWindow(8);
  Backoff b;
  // 4 of 8 aborted: exactly the storm threshold (aborts * 2 >= events).
  EXPECT_EQ(FeedWindow(b, 8, 4), health::Event::kDegraded);
  EXPECT_TRUE(health::Degraded<HealthTestTag>());
  EXPECT_EQ(b.widening(), health::kHealthDegradedWiden);
  const health::Counters p = health::HealthProbe<HealthTestTag>::Get();
  EXPECT_EQ(p.samples, 1u);
  EXPECT_EQ(p.storms, 1u);
  EXPECT_EQ(p.degrade_enters, 1u);
}

TEST_F(HealthTest, QuietWindowStaysHealthy) {
  health::SetHealthWindow(8);
  Backoff b;
  // 3 of 8 aborted: under the enter threshold — no transition, no widening.
  EXPECT_EQ(FeedWindow(b, 8, 3), health::Event::kNone);
  EXPECT_FALSE(health::Degraded<HealthTestTag>());
  EXPECT_EQ(b.widening(), 1u);
}

TEST_F(HealthTest, RecoveryIsHysteretic) {
  health::SetHealthWindow(8);
  Backoff b;
  ASSERT_EQ(FeedWindow(b, 8, 8), health::Event::kDegraded);
  // 2 of 8 aborted clears the ENTER bar but not the hysteretic EXIT bar
  // (aborts * 8 <= events): still degraded — a wiggling workload keeps state.
  EXPECT_EQ(FeedWindow(b, 8, 2), health::Event::kNone);
  EXPECT_TRUE(health::Degraded<HealthTestTag>());
  // 1 of 8 meets the exit bar: recovered, widening restored.
  EXPECT_EQ(FeedWindow(b, 8, 1), health::Event::kRecovered);
  EXPECT_FALSE(health::Degraded<HealthTestTag>());
  EXPECT_EQ(b.widening(), 1u);
  EXPECT_EQ(health::HealthProbe<HealthTestTag>::Get().degrade_exits, 1u);
}

TEST_F(HealthTest, EscalationThrottledOnlyWhileDegraded) {
  health::SetHealthWindow(8);
  Backoff b;
  EXPECT_FALSE(health::EscalationThrottled<HealthTestTag>());
  ASSERT_EQ(FeedWindow(b, 8, 8), health::Event::kDegraded);
  EXPECT_TRUE(health::EscalationThrottled<HealthTestTag>());
  EXPECT_EQ(health::HealthProbe<HealthTestTag>::Get().throttled_escalations, 1u);
}

TEST_F(HealthTest, GateHoldOverrunDegrades) {
  Backoff b;
  health::Event last = health::Event::kNone;
  for (std::uint32_t i = 0; i < health::kHealthGateHoldLimit; ++i) {
    last = health::NoteAttemptStart<HealthTestTag>(b, /*foreign=*/true);
  }
  EXPECT_EQ(last, health::Event::kDegraded);
  EXPECT_EQ(health::HealthProbe<HealthTestTag>::Get().gate_overruns, 1u);
  // A non-foreign observation resets the streak: no second overrun right away.
  EXPECT_EQ(health::NoteAttemptStart<HealthTestTag>(b, /*foreign=*/false),
            health::Event::kNone);
}

TEST_F(HealthTest, RingSaturationDegradesEvenWithoutAborts) {
  health::SetHealthWindow(8);
  Backoff b;
  // The cumulative intersect-fail gauge jumps by >= one per window event: the
  // summary machinery is being defeated, so the window degrades despite every
  // attempt committing.
  health::SetRingGauge<HealthTestTag>(64);
  EXPECT_EQ(FeedWindow(b, 8, 0), health::Event::kDegraded);
  EXPECT_EQ(health::HealthProbe<HealthTestTag>::Get().ring_saturated_windows, 1u);
}

TEST_F(HealthTest, SnapshotBuilderEmitsFlatJson) {
  health::SnapshotBuilder b;
  const std::string json = b.Add("commits", 7).Add("aborts", 3).Finish();
  EXPECT_EQ(json, "{\"commits\": 7, \"aborts\": 3}");
  health::SnapshotBuilder empty;
  EXPECT_EQ(empty.Finish(), "{}");
}

// Integration through the contention manager: a planted abort storm fed via
// SerialCm::NoteAbortBackoff must (a) emit the diagnostics snapshot with the
// replay identity (backoff serial + seed) embedded, and (b) make ShouldEscalate
// decline a streak that would otherwise escalate.
TEST_F(HealthTest, CmIntegrationEmitsSnapshotAndThrottles) {
  using Cm = SerialCm<HealthTestTag>;
  health::SetHealthWindow(8);
  TxDesc& desc = DescOf<HealthTestTag>();
  desc.backoff.OnCommit();  // reset any streak earlier tests left behind
  SetSerialEscalationStreak(1);
  for (int i = 0; i < 8; ++i) {
    Cm::NoteAbortBackoff(desc);
  }
  EXPECT_TRUE(health::Degraded<HealthTestTag>());
  const std::string& snap = health::LastSnapshot<HealthTestTag>();
  ASSERT_FALSE(snap.empty()) << "degrading must store a diagnostics snapshot";
  EXPECT_NE(snap.find("\"degrade_enters\": 1"), std::string::npos) << snap;
  EXPECT_NE(snap.find("\"backoff_serial\""), std::string::npos) << snap;
  EXPECT_NE(snap.find("\"backoff_seed\""), std::string::npos) << snap;
  EXPECT_NE(snap.find("\"ring_intersect_fails\""), std::string::npos) << snap;
  EXPECT_EQ(health::HealthProbe<HealthTestTag>::Get().snapshots, 1u);
  // Streak 8 with threshold 1 would escalate — the degraded throttle declines.
  EXPECT_FALSE(Cm::ShouldEscalate(desc));
  EXPECT_GE(health::HealthProbe<HealthTestTag>::Get().throttled_escalations, 1u);
  desc.backoff.OnCommit();
}

#endif  // SPECTM_HEALTH

}  // namespace
}  // namespace spectm
