#include "src/common/thread_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace spectm {
namespace {

TEST(ThreadRegistry, StableIdWithinThread) {
  const int id1 = ThreadRegistry::CurrentId();
  const int id2 = ThreadRegistry::CurrentId();
  EXPECT_EQ(id1, id2);
  EXPECT_GE(id1, 0);
  EXPECT_LT(id1, ThreadRegistry::kMaxThreads);
}

TEST(ThreadRegistry, DistinctIdsAcrossLiveThreads) {
  constexpr int kThreads = 16;
  std::vector<int> ids(kThreads, -1);
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      ids[i] = ThreadRegistry::CurrentId();
      ready.fetch_add(1);
      while (!go.load()) {
        // Hold the slot until all threads have claimed one.
      }
    });
  }
  while (ready.load() != kThreads) {
  }
  go.store(true);
  for (auto& t : threads) {
    t.join();
  }
  std::set<int> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads));
}

TEST(ThreadRegistry, IdBoundCoversClaimedIds) {
  const int id = ThreadRegistry::CurrentId();
  EXPECT_GT(ThreadRegistry::IdBound(), id);
}

TEST(ThreadRegistry, SlotsAreReusedAfterExit) {
  int first = -1;
  std::thread a([&] { first = ThreadRegistry::CurrentId(); });
  a.join();
  // The slot is free again; a new thread should be able to claim an id no larger
  // than the high-water mark left behind.
  int second = -1;
  std::thread b([&] { second = ThreadRegistry::CurrentId(); });
  b.join();
  EXPECT_GE(first, 0);
  EXPECT_GE(second, 0);
  EXPECT_LE(second, ThreadRegistry::IdBound());
}

}  // namespace
}  // namespace spectm
