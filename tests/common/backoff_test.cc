// Phase-1 contention management (randomized linear backoff): seeding,
// streak/cap arithmetic, and the honest worst-case delay bound that
// CmProbe::backoff_spins reports against.
#include "src/common/backoff.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/tm/txdesc.h"

namespace spectm {
namespace {

std::vector<std::uint64_t> DelaySequence(Backoff& b, int n) {
  std::vector<std::uint64_t> seq;
  seq.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    seq.push_back(b.OnAbort());
  }
  return seq;
}

TEST(Backoff, DistinctSeedsProduceDistinctDelaySequences) {
  Backoff a(1);
  Backoff b(2);
  EXPECT_NE(DelaySequence(a, 16), DelaySequence(b, 16))
      << "two differently-seeded backoffs replayed the same delays";
}

// Regression for the descriptor seeding: one thread owns one descriptor PER
// DOMAIN, so two descriptors on the same thread slot must still draw
// different delay sequences — otherwise every domain's retry loop on a thread
// stays phase-locked and randomized backoff de-synchronizes nothing.
TEST(Backoff, TwoDescriptorsOnOneThreadDiverge) {
  TxDesc a;
  TxDesc b;
  EXPECT_EQ(a.thread_slot, b.thread_slot);
  EXPECT_NE(DelaySequence(a.backoff, 16), DelaySequence(b.backoff, 16))
      << "same-thread descriptors share a backoff stream";
}

TEST(Backoff, StreakCountsAbortsAndResetsOnCommit) {
  Backoff b(7);
  EXPECT_EQ(b.attempts(), 0u);
  b.OnAbort();
  b.OnAbort();
  EXPECT_EQ(b.attempts(), 2u);
  b.OnCommit();
  EXPECT_EQ(b.attempts(), 0u);
}

TEST(Backoff, StreakCapsAtMaxAttemptFactor) {
  Backoff b(3);
  for (std::uint64_t i = 0; i < Backoff::kMaxAttemptFactor + 8; ++i) {
    b.OnAbort();
  }
  EXPECT_EQ(b.attempts(), Backoff::kMaxAttemptFactor);
}

// The worst-case single wait is attempts * kSpinsPerAttempt — the bound the
// header doc-comment states and CmProbe::backoff_spins accounts against.
TEST(Backoff, ReturnedSpinsRespectTheLinearBound) {
  Backoff b(11);
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t spins = b.OnAbort();
    EXPECT_LE(spins, b.attempts() * Backoff::kSpinsPerAttempt);
  }
}

}  // namespace
}  // namespace spectm
