#include "src/common/tagged.h"

#include <gtest/gtest.h>

#include "src/tm/config.h"

namespace spectm {
namespace {

TEST(Tagged, MarkRoundTrip) {
  int dummy;
  const Word p = PtrToWord(&dummy);
  EXPECT_FALSE(IsMarked(p)) << "aligned pointers must start unmarked";
  const Word m = Mark(p);
  EXPECT_TRUE(IsMarked(m));
  EXPECT_EQ(Unmark(m), p);
  EXPECT_EQ(WordToPtr<int>(Unmark(m)), &dummy);
}

TEST(Tagged, MarkDoesNotDisturbLockBit) {
  const Word w = 0;
  EXPECT_FALSE(IsLocked(Mark(w)));
  EXPECT_TRUE(IsMarked(Mark(w)));
}

TEST(Tagged, PtrRoundTrip) {
  double dummy;
  EXPECT_EQ(WordToPtr<double>(PtrToWord(&dummy)), &dummy);
}

TEST(Tagged, EncodeIntKeepsReservedBitsClear) {
  for (std::uint64_t v : {0ULL, 1ULL, 2ULL, 65535ULL, (1ULL << 60) - 1}) {
    const Word w = EncodeInt(v);
    EXPECT_FALSE(IsLocked(w));
    EXPECT_FALSE(IsMarked(w));
    EXPECT_EQ(DecodeInt(w), v);
  }
}

}  // namespace
}  // namespace spectm
