#include "src/common/inline_vec.h"

#include <gtest/gtest.h>

namespace spectm {
namespace {

TEST(InlineVec, StartsEmpty) {
  InlineVec<int, 4> v;
  EXPECT_TRUE(v.Empty());
  EXPECT_EQ(v.Size(), 0u);
  EXPECT_FALSE(v.Full());
  EXPECT_EQ(v.Capacity(), 4u);
}

TEST(InlineVec, PushAndIndex) {
  InlineVec<int, 4> v;
  v.PushBack(10);
  v.PushBack(20);
  EXPECT_EQ(v.Size(), 2u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 20);
}

TEST(InlineVec, FullAtCapacity) {
  InlineVec<int, 2> v;
  v.PushBack(1);
  EXPECT_FALSE(v.Full());
  v.PushBack(2);
  EXPECT_TRUE(v.Full());
}

TEST(InlineVec, ClearResets) {
  InlineVec<int, 4> v;
  v.PushBack(1);
  v.PushBack(2);
  v.Clear();
  EXPECT_TRUE(v.Empty());
  v.PushBack(3);
  EXPECT_EQ(v[0], 3);
}

TEST(InlineVec, RangeForIteratesInOrder) {
  InlineVec<int, 8> v;
  for (int i = 0; i < 5; ++i) {
    v.PushBack(i * i);
  }
  int expected = 0;
  for (int x : v) {
    EXPECT_EQ(x, expected * expected);
    ++expected;
  }
  EXPECT_EQ(expected, 5);
}

TEST(InlineVec, EmplaceAggregates) {
  struct Pair {
    int a;
    int b;
  };
  InlineVec<Pair, 2> v;
  v.EmplaceBack(1, 2);
  EXPECT_EQ(v[0].a, 1);
  EXPECT_EQ(v[0].b, 2);
}

TEST(InlineVec, MutationThroughIndex) {
  InlineVec<int, 2> v;
  v.PushBack(5);
  v[0] = 9;
  EXPECT_EQ(v[0], 9);
}

}  // namespace
}  // namespace spectm
