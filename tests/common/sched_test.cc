// Unit battery for the cooperative deterministic scheduler
// (src/common/sched.h), on a model program with no TM machinery: controller
// one-runner discipline, exhaustive exploration completeness on a toy with a
// countable interleaving space, replay determinism, trace shrinking, and
// policy-stream determinism. Without SPECTM_SCHED the layer must fold to
// constexpr no-ops — pinned by static_assert, the same contract the
// fail-point and health layers carry.
#include "src/common/sched.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

namespace spectm {
namespace {

#if !defined(SPECTM_SCHED)

// OFF builds: the API must be compile-time nothing. A constexpr context
// accepts only literal no-ops, so these lines fail to compile the moment
// anyone adds a load or a branch to the disabled forms.
static_assert(!sched::kEnabled, "sched must be disabled without SPECTM_SCHED");
static_assert(!sched::SchedActive(), "disabled SchedActive must fold to false");
static_assert((sched::TestPoint(7), true), "disabled TestPoint must be constexpr");
static_assert((sched::Yield(), true), "disabled Yield must be constexpr");

TEST(SchedDisabled, MacrosAreInert) {
  // The plant macros must be pure void expressions in production builds.
  SPECTM_SCHED_POINT(failpoint::Site::kLockAcquire);
  SPECTM_SCHED_SPIN(failpoint::Site::kBackoffWait);
  SUCCEED();
}

#else  // SPECTM_SCHED

using sched::Controller;
using sched::Explorer;
using sched::Trace;

// Two threads, two logged steps each, a schedule point before every step:
// the interleavings of the step sequence are exactly the ways to merge two
// ordered pairs = C(4,2) = 6 distinct logs. The explorer must find all of
// them (and nothing more) under a generous preemption bound — the
// completeness pin for the bounded DFS.
TEST(SchedExplore, ToyInterleavingSpaceIsComplete) {
  std::vector<int> log;
  auto make_bodies = [&]() {
    log.clear();
    std::vector<std::function<void()>> bodies;
    for (int tid = 0; tid < 2; ++tid) {
      bodies.push_back([&log, tid] {
        for (int step = 0; step < 2; ++step) {
          sched::TestPoint(sched::kTestPointBase + tid * 10 + step);
          log.push_back(tid * 10 + step);
        }
      });
    }
    return bodies;
  };
  std::set<std::vector<int>> outcomes;
  auto check = [&] {
    outcomes.insert(log);
    return true;  // no invariant; we only enumerate
  };
  Explorer::Options opt;
  opt.preemption_bound = 8;  // >= max possible switches: the walk is unbounded-complete
  const Explorer::Result res = Explorer::Explore(make_bodies, check, opt);
  EXPECT_TRUE(res.frontier_exhausted);
  EXPECT_EQ(res.divergences, 0u) << "prefix replay failed to reproduce a run";
  EXPECT_EQ(res.truncated, 0u);
  EXPECT_EQ(outcomes.size(), 6u) << "C(4,2) merges of two ordered pairs";
  // Program order must hold inside every explored schedule.
  for (const std::vector<int>& o : outcomes) {
    ASSERT_EQ(o.size(), 4u);
    std::vector<int> t0, t1;
    for (const int v : o) {
      (v < 10 ? t0 : t1).push_back(v);
    }
    EXPECT_EQ(t0, (std::vector<int>{0, 1}));
    EXPECT_EQ(t1, (std::vector<int>{10, 11}));
  }
}

// Preemption bound 0 admits only non-preemptive schedules: each thread runs
// to completion once started, so with the exit hand-off free there are
// exactly the "T0 whole then T1 whole" / "T1 whole then T0 whole" logs.
TEST(SchedExplore, BoundZeroIsSequential) {
  std::vector<int> log;
  auto make_bodies = [&]() {
    log.clear();
    std::vector<std::function<void()>> bodies;
    for (int tid = 0; tid < 2; ++tid) {
      bodies.push_back([&log, tid] {
        for (int step = 0; step < 2; ++step) {
          sched::TestPoint(sched::kTestPointBase + tid);
          log.push_back(tid * 10 + step);
        }
      });
    }
    return bodies;
  };
  std::set<std::vector<int>> outcomes;
  auto check = [&] {
    outcomes.insert(log);
    return true;
  };
  Explorer::Options opt;
  opt.preemption_bound = 0;
  const Explorer::Result res = Explorer::Explore(make_bodies, check, opt);
  EXPECT_TRUE(res.frontier_exhausted);
  EXPECT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes.count({0, 1, 10, 11}));
  EXPECT_TRUE(outcomes.count({10, 11, 0, 1}));
}

// Same seed => identical decision trace AND identical observable execution,
// run after run; a different seed must be able to produce a different
// schedule (over several tries — a single pair may collide).
TEST(SchedPolicy, RandomWalkIsSeedDeterministic) {
  auto run_once = [](std::uint64_t seed, std::vector<int>* log_out) {
    std::vector<int> log;
    std::vector<std::function<void()>> bodies;
    for (int tid = 0; tid < 3; ++tid) {
      bodies.push_back([&log, tid] {
        for (int step = 0; step < 4; ++step) {
          sched::TestPoint(sched::kTestPointBase + tid);
          log.push_back(tid * 10 + step);
        }
      });
    }
    sched::RandomWalkPolicy policy(seed);
    const sched::RunRecord rec = Controller::Instance().Run(std::move(bodies), policy);
    *log_out = log;
    return sched::TraceOf(rec);
  };
  std::vector<int> log_a, log_b;
  const Trace a = run_once(0x5eed, &log_a);
  const Trace b = run_once(0x5eed, &log_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].site, b[i].site);
    EXPECT_EQ(a[i].thread, b[i].thread);
  }
  EXPECT_EQ(log_a, log_b) << "same seed, same schedule, same execution";
  bool differs = false;
  for (std::uint64_t s = 1; s <= 8 && !differs; ++s) {
    std::vector<int> log_c;
    const Trace c = run_once(0x5eed + s * 77, &log_c);
    differs = log_c != log_a || c.size() != a.size();
  }
  EXPECT_TRUE(differs) << "eight reseeds never changed the schedule";
}

TEST(SchedPolicy, PctIsSeedDeterministicAndChangePointsPreempt) {
  auto run_once = [](std::uint64_t seed, int d) {
    std::vector<int> log;
    std::vector<std::function<void()>> bodies;
    for (int tid = 0; tid < 2; ++tid) {
      bodies.push_back([&log, tid] {
        for (int step = 0; step < 6; ++step) {
          sched::TestPoint(sched::kTestPointBase + tid);
          log.push_back(tid);
        }
      });
    }
    sched::PctPolicy policy(seed, d, /*horizon=*/16);
    Controller::Instance().Run(std::move(bodies), policy);
    return log;
  };
  EXPECT_EQ(run_once(42, 2), run_once(42, 2));
  // d = 0: pure priorities, no change points — the high-priority thread runs
  // to completion first, so the log is one solid block then the other.
  const std::vector<int> log0 = run_once(7, 0);
  ASSERT_EQ(log0.size(), 12u);
  for (std::size_t i = 1; i < 6; ++i) {
    EXPECT_EQ(log0[i], log0[0]) << "priority schedule interleaved without a change point";
  }
}

// Replay: feeding a recorded trace back reproduces the exact schedule-point
// sequence with zero divergence — the byte-identical re-execution claim.
TEST(SchedReplay, TraceReplaysWithZeroDivergence) {
  auto make_bodies = [](std::vector<int>* log) {
    std::vector<std::function<void()>> bodies;
    for (int tid = 0; tid < 3; ++tid) {
      bodies.push_back([log, tid] {
        for (int step = 0; step < 3; ++step) {
          sched::TestPoint(sched::kTestPointBase + tid);
          log->push_back(tid * 10 + step);
        }
      });
    }
    return bodies;
  };
  std::vector<int> log_orig;
  sched::RandomWalkPolicy walk(0xabc123);
  const sched::RunRecord rec =
      Controller::Instance().Run(make_bodies(&log_orig), walk);
  const Trace trace = sched::TraceOf(rec);
  ASSERT_FALSE(trace.empty());

  std::vector<int> log_replay;
  sched::ReplayPolicy replay(trace);
  const sched::RunRecord rec2 =
      Controller::Instance().Run(make_bodies(&log_replay), replay);
  EXPECT_EQ(replay.divergence, 0u);
  EXPECT_EQ(log_replay, log_orig);
  const Trace trace2 = sched::TraceOf(rec2);
  ASSERT_EQ(trace2.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace2[i].site, trace[i].site);
    EXPECT_EQ(trace2[i].thread, trace[i].thread);
  }
}

// Shrinker on a synthetic failure: the "bug" fires iff thread 1's step runs
// between thread 0's two steps. The explorer finds it; the shrinker must cut
// the trace down to a handful of decisions while the verifier keeps failing.
TEST(SchedShrink, MinimizesASyntheticFailure) {
  std::vector<int> log;
  auto make_bodies = [&]() {
    log.clear();
    std::vector<std::function<void()>> bodies;
    bodies.push_back([&] {
      sched::TestPoint(sched::kTestPointBase + 1);
      log.push_back(1);
      sched::TestPoint(sched::kTestPointBase + 2);
      log.push_back(2);
    });
    bodies.push_back([&] {
      sched::TestPoint(sched::kTestPointBase + 9);
      log.push_back(9);
    });
    return bodies;
  };
  auto violated = [&] {
    return log.size() == 3 && log[0] == 1 && log[1] == 9 && log[2] == 2;
  };
  Explorer::Options opt;
  opt.preemption_bound = 2;
  const Explorer::Result res =
      Explorer::Explore(make_bodies, [&] { return !violated(); }, opt);
  ASSERT_TRUE(res.violation_found);
  auto verify = [&](const Trace& t) {
    sched::ReplayPolicy replay(t);
    Controller::Instance().Run(make_bodies(), replay);
    return violated();
  };
  const Trace shrunk = sched::ShrinkTrace(res.violation_trace, verify);
  EXPECT_TRUE(verify(shrunk)) << "shrunk trace lost the failure";
  EXPECT_LE(shrunk.size(), 3u);
  EXPECT_FALSE(sched::FormatTrace(shrunk).empty());
}

// Spin-yield keeps a cooperative spin-wait live: thread 0 spins until thread
// 1 sets a flag. Without the forced hand-off this deadlocks on the spot (the
// controller would never run thread 1 again); the test completing at all is
// the assertion.
TEST(SchedController, SpinYieldHandsOffToTheParkedPeer) {
  std::atomic<int> flag{0};
  std::vector<std::function<void()>> bodies;
  bodies.push_back([&] {
    sched::TestPoint(sched::kTestPointBase);
    while (flag.load(std::memory_order_acquire) == 0) {
      sched::Yield();
    }
  });
  bodies.push_back([&] {
    sched::TestPoint(sched::kTestPointBase + 1);
    flag.store(1, std::memory_order_release);
  });
  sched::RandomWalkPolicy policy(1);
  const sched::RunRecord rec = Controller::Instance().Run(std::move(bodies), policy);
  EXPECT_EQ(rec.body_exceptions, 0u);
  EXPECT_GT(rec.points, 0u);
}

#endif  // SPECTM_SCHED

}  // namespace
}  // namespace spectm
