// Fail-point layer (src/common/failpoint.h): the zero-cost claim for
// production builds, and — when SPECTM_FAILPOINTS is on — arming, seeded
// determinism, and hit accounting.
#include "src/common/failpoint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace spectm {
namespace {

#if !defined(SPECTM_FAILPOINTS)

// The zero-cost proof: with the gate off, both macros must fold to constant
// expressions — usable in a static_assert, so by construction there is no
// load, branch, or call left for the optimizer to elide. If someone changes
// the disabled form into anything with runtime content, this stops compiling.
static_assert(!SPECTM_FAILPOINT(failpoint::Site::kPreBump),
              "disabled fail-point must be the constant false");
static_assert(!SPECTM_FAILPOINT(failpoint::Site::kLockAcquire),
              "disabled fail-point must be the constant false");
static_assert(!failpoint::kEnabled, "gate flag out of sync with the macro");

TEST(Failpoint, DisabledFormCompilesAtEverySite) {
  // PAUSE has no value; it must still reference the site token so an invalid
  // site name fails to compile even in production builds.
  SPECTM_FAILPOINT_PAUSE(failpoint::Site::kPreRingPublish);
  SPECTM_FAILPOINT_PAUSE(failpoint::Site::kPreStripeBump);
  EXPECT_FALSE(SPECTM_FAILPOINT(failpoint::Site::kPostReadPreSandwich));
  EXPECT_FALSE(SPECTM_FAILPOINT(failpoint::Site::kPreValidate));
}

#else  // SPECTM_FAILPOINTS

static_assert(failpoint::kEnabled, "gate flag out of sync with the macro");

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override {
    failpoint::DisarmAll();
    failpoint::ResetHits();
  }
};

TEST_F(FailpointTest, UnarmedSitesNeverFire) {
  failpoint::ResetHits();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(SPECTM_FAILPOINT(failpoint::Site::kPreBump));
  }
  EXPECT_EQ(failpoint::Hits(failpoint::Site::kPreBump), 0u);
}

TEST_F(FailpointTest, FullyArmedSiteAlwaysFiresAndCounts) {
  failpoint::ResetHits();
  failpoint::Arm(failpoint::Site::kLockAcquire, /*abort_pct=*/100);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(SPECTM_FAILPOINT(failpoint::Site::kLockAcquire));
  }
  EXPECT_EQ(failpoint::Hits(failpoint::Site::kLockAcquire), 50u);
  failpoint::Disarm(failpoint::Site::kLockAcquire);
  EXPECT_FALSE(SPECTM_FAILPOINT(failpoint::Site::kLockAcquire));
  EXPECT_EQ(failpoint::Hits(failpoint::Site::kLockAcquire), 50u);
}

// The reason fail points beat plain stress: a failing schedule replays from
// its seed. Same seed => identical per-thread decision stream, even without
// restarting the thread (SetSeed bumps an epoch that live threads notice).
TEST_F(FailpointTest, FixedSeedReplaysTheDecisionStream) {
  failpoint::Arm(failpoint::Site::kPreValidate, /*abort_pct=*/37);
  failpoint::SetSeed(0xdecaf);
  std::vector<bool> first;
  for (int i = 0; i < 256; ++i) {
    first.push_back(SPECTM_FAILPOINT(failpoint::Site::kPreValidate));
  }
  failpoint::SetSeed(0xdecaf);
  std::vector<bool> second;
  for (int i = 0; i < 256; ++i) {
    second.push_back(SPECTM_FAILPOINT(failpoint::Site::kPreValidate));
  }
  EXPECT_EQ(first, second);

  failpoint::SetSeed(0xc0ffee);  // different seed => different stream
  std::vector<bool> third;
  for (int i = 0; i < 256; ++i) {
    third.push_back(SPECTM_FAILPOINT(failpoint::Site::kPreValidate));
  }
  EXPECT_NE(first, third);
}

TEST_F(FailpointTest, DelayOnlySitesCountButNeverAbort) {
  failpoint::ResetHits();
  failpoint::Arm(failpoint::Site::kPreRingPublish, /*abort_pct=*/0,
                 /*delay_pct=*/100, /*delay_spins=*/8);
  for (int i = 0; i < 20; ++i) {
    SPECTM_FAILPOINT_PAUSE(failpoint::Site::kPreRingPublish);
  }
  EXPECT_EQ(failpoint::Hits(failpoint::Site::kPreRingPublish), 20u);
  // An abort-style fire at a delay-only site injects the delay but reports no
  // abort.
  EXPECT_FALSE(SPECTM_FAILPOINT(failpoint::Site::kPreRingPublish));
}

TEST_F(FailpointTest, SiteNamesAreStable) {
  EXPECT_STREQ(failpoint::SiteName(failpoint::Site::kPreBump), "pre-bump");
  EXPECT_STREQ(failpoint::SiteName(failpoint::Site::kLockAcquire),
               "lock-acquire");
}

#endif  // SPECTM_FAILPOINTS

}  // namespace
}  // namespace spectm
