#include "src/common/write_set.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"

namespace spectm {
namespace {

TEST(WriteSet, EmptyLookupMisses) {
  WriteSet ws;
  int x;
  std::uint64_t v = 0;
  EXPECT_TRUE(ws.Empty());
  EXPECT_FALSE(ws.Lookup(&x, &v));
}

TEST(WriteSet, PutThenLookup) {
  WriteSet ws;
  int x, y;
  ws.Put(&x, 11);
  ws.Put(&y, 22);
  std::uint64_t v = 0;
  EXPECT_TRUE(ws.Lookup(&x, &v));
  EXPECT_EQ(v, 11u);
  EXPECT_TRUE(ws.Lookup(&y, &v));
  EXPECT_EQ(v, 22u);
  EXPECT_EQ(ws.Size(), 2u);
}

TEST(WriteSet, PutOverwritesInPlace) {
  WriteSet ws;
  int x;
  ws.Put(&x, 1);
  ws.Put(&x, 2);
  EXPECT_EQ(ws.Size(), 1u);
  std::uint64_t v = 0;
  EXPECT_TRUE(ws.Lookup(&x, &v));
  EXPECT_EQ(v, 2u);
}

TEST(WriteSet, IterationPreservesInsertionOrder) {
  WriteSet ws;
  std::vector<int> targets(10);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    ws.Put(&targets[i], i);
  }
  std::size_t idx = 0;
  for (const WriteSet::Entry& e : ws) {
    EXPECT_EQ(e.addr, &targets[idx]);
    EXPECT_EQ(e.value, idx);
    ++idx;
  }
  EXPECT_EQ(idx, targets.size());
}

TEST(WriteSet, ClearIsCheapAndComplete) {
  WriteSet ws;
  int x;
  ws.Put(&x, 5);
  ws.Clear();
  EXPECT_TRUE(ws.Empty());
  std::uint64_t v = 0;
  EXPECT_FALSE(ws.Lookup(&x, &v));
  // Reuse after clear must behave like a fresh set.
  ws.Put(&x, 6);
  EXPECT_TRUE(ws.Lookup(&x, &v));
  EXPECT_EQ(v, 6u);
}

TEST(WriteSet, GrowthBeyondInitialCapacity) {
  WriteSet ws;
  std::vector<std::uint64_t> targets(1000);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    ws.Put(&targets[i], i * 3);
  }
  EXPECT_EQ(ws.Size(), targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    std::uint64_t v = 0;
    ASSERT_TRUE(ws.Lookup(&targets[i], &v));
    EXPECT_EQ(v, i * 3);
  }
}

// Property-style fuzz against std::map as the reference model, across many
// clear/reuse generations (the descriptor-reuse pattern of §4.1).
TEST(WriteSet, FuzzAgainstReferenceModel) {
  WriteSet ws;
  Xorshift128Plus rng(12345);
  std::vector<std::uint64_t> arena(256);
  for (int gen = 0; gen < 50; ++gen) {
    std::map<void*, std::uint64_t> model;
    const int ops = 200;
    for (int i = 0; i < ops; ++i) {
      void* addr = &arena[rng.NextBounded(arena.size())];
      if (rng.NextBounded(100) < 70) {
        const std::uint64_t value = rng.Next();
        ws.Put(addr, value);
        model[addr] = value;
      } else {
        std::uint64_t got = 0;
        const bool hit = ws.Lookup(addr, &got);
        const auto it = model.find(addr);
        ASSERT_EQ(hit, it != model.end());
        if (hit) {
          ASSERT_EQ(got, it->second);
        }
      }
    }
    ASSERT_EQ(ws.Size(), model.size());
    ws.Clear();
  }
}

// Randomized property test against a std::unordered_map oracle, with a much
// larger arena than the fuzz above so the slot table grows repeatedly across
// generations — every Lookup verdict (including bloom fast-misses) and the
// insertion-order iteration must match the oracle exactly.
TEST(WriteSet, PropertyTestAgainstUnorderedMapOracle) {
  WriteSet ws;
  Xorshift128Plus rng(0xCAFE);
  std::vector<std::uint64_t> arena(4096);
  for (int gen = 0; gen < 30; ++gen) {
    std::unordered_map<void*, std::uint64_t> oracle;
    std::vector<void*> order;  // oracle for insertion-order iteration
    const int ops = 400 + static_cast<int>(rng.NextBounded(400));
    for (int i = 0; i < ops; ++i) {
      void* addr = &arena[rng.NextBounded(arena.size())];
      if (rng.NextBounded(100) < 60) {
        const std::uint64_t value = rng.Next();
        if (oracle.emplace(addr, value).second) {
          order.push_back(addr);
        } else {
          oracle[addr] = value;
        }
        ws.Put(addr, value);
      } else {
        std::uint64_t got = 0;
        const bool hit = ws.Lookup(addr, &got);
        const auto it = oracle.find(addr);
        ASSERT_EQ(hit, it != oracle.end());
        if (hit) {
          ASSERT_EQ(got, it->second);
        }
      }
    }
    ASSERT_EQ(ws.Size(), oracle.size());
    std::size_t idx = 0;
    for (const WriteSet::Entry& e : ws) {
      ASSERT_LT(idx, order.size());
      ASSERT_EQ(e.addr, order[idx]);
      ASSERT_EQ(e.value, oracle[e.addr]);
      ++idx;
    }
    ASSERT_EQ(idx, order.size());
    ws.Clear();
  }
}

// The 32-bit generation counter wraps after 2^32 Clear() calls; the wrap must
// hard-reset the slot table so entries stamped at the ORIGINAL gen == 1 cannot
// read as live in the post-wrap gen == 1.
TEST(WriteSet, GenerationWrapHardResets) {
  WriteSet ws;
  std::uint64_t a = 0, b = 0;
  ws.Put(&a, 111);  // stamped at gen == 1 — the alias the wrap must not revive

  ws.SetGenerationForTest(0xffffffffu);
  ws.Put(&b, 222);  // stamped at the max generation
  ws.Clear();       // ++gen wraps to 0 -> hard reset, gen = 1

  std::uint64_t v = 0;
  EXPECT_TRUE(ws.Empty());
  EXPECT_FALSE(ws.Lookup(&a, &v)) << "pre-wrap gen-1 slot must not resurrect";
  EXPECT_FALSE(ws.Lookup(&b, &v));
  ws.Put(&a, 333);
  ASSERT_TRUE(ws.Lookup(&a, &v));
  EXPECT_EQ(v, 333u);
}

// The descriptor-resident bloom serves the read-dominant miss path: lookups of
// never-written addresses should overwhelmingly be rejected by the filter alone
// (two set bits out of 64 per entry; a handful of entries cannot saturate it).
TEST(WriteSet, BloomAbsorbsMostMisses) {
  WriteSet ws;
  std::vector<std::uint64_t> written(4), probed(256);
  for (std::size_t i = 0; i < written.size(); ++i) {
    ws.Put(&written[i], i);
  }
  ws.ResetStats();
  std::uint64_t v = 0;
  for (auto& p : probed) {
    EXPECT_FALSE(ws.Lookup(&p, &v));
  }
  EXPECT_EQ(ws.stats().lookups, probed.size());
  // 4 entries set <= 8 of 64 bits; P(2-bit probe passes) <= (8/64)^1 per hash —
  // demand a clear majority to stay ASLR-robust rather than an exact count.
  EXPECT_GT(ws.stats().bloom_misses, probed.size() / 2)
      << "the bloom fast path is not absorbing the miss traffic";

  // An empty (cleared) set rejects everything via the zeroed bloom.
  ws.Clear();
  ws.ResetStats();
  EXPECT_FALSE(ws.Lookup(&probed[0], &v));
  EXPECT_EQ(ws.stats().bloom_misses, 1u);
}

}  // namespace
}  // namespace spectm
