#include "src/common/write_set.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/rng.h"

namespace spectm {
namespace {

TEST(WriteSet, EmptyLookupMisses) {
  WriteSet ws;
  int x;
  std::uint64_t v;
  EXPECT_TRUE(ws.Empty());
  EXPECT_FALSE(ws.Lookup(&x, &v));
}

TEST(WriteSet, PutThenLookup) {
  WriteSet ws;
  int x, y;
  ws.Put(&x, 11);
  ws.Put(&y, 22);
  std::uint64_t v = 0;
  EXPECT_TRUE(ws.Lookup(&x, &v));
  EXPECT_EQ(v, 11u);
  EXPECT_TRUE(ws.Lookup(&y, &v));
  EXPECT_EQ(v, 22u);
  EXPECT_EQ(ws.Size(), 2u);
}

TEST(WriteSet, PutOverwritesInPlace) {
  WriteSet ws;
  int x;
  ws.Put(&x, 1);
  ws.Put(&x, 2);
  EXPECT_EQ(ws.Size(), 1u);
  std::uint64_t v = 0;
  EXPECT_TRUE(ws.Lookup(&x, &v));
  EXPECT_EQ(v, 2u);
}

TEST(WriteSet, IterationPreservesInsertionOrder) {
  WriteSet ws;
  std::vector<int> targets(10);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    ws.Put(&targets[i], i);
  }
  std::size_t idx = 0;
  for (const WriteSet::Entry& e : ws) {
    EXPECT_EQ(e.addr, &targets[idx]);
    EXPECT_EQ(e.value, idx);
    ++idx;
  }
  EXPECT_EQ(idx, targets.size());
}

TEST(WriteSet, ClearIsCheapAndComplete) {
  WriteSet ws;
  int x;
  ws.Put(&x, 5);
  ws.Clear();
  EXPECT_TRUE(ws.Empty());
  std::uint64_t v;
  EXPECT_FALSE(ws.Lookup(&x, &v));
  // Reuse after clear must behave like a fresh set.
  ws.Put(&x, 6);
  EXPECT_TRUE(ws.Lookup(&x, &v));
  EXPECT_EQ(v, 6u);
}

TEST(WriteSet, GrowthBeyondInitialCapacity) {
  WriteSet ws;
  std::vector<std::uint64_t> targets(1000);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    ws.Put(&targets[i], i * 3);
  }
  EXPECT_EQ(ws.Size(), targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    std::uint64_t v = 0;
    ASSERT_TRUE(ws.Lookup(&targets[i], &v));
    EXPECT_EQ(v, i * 3);
  }
}

// Property-style fuzz against std::map as the reference model, across many
// clear/reuse generations (the descriptor-reuse pattern of §4.1).
TEST(WriteSet, FuzzAgainstReferenceModel) {
  WriteSet ws;
  Xorshift128Plus rng(12345);
  std::vector<std::uint64_t> arena(256);
  for (int gen = 0; gen < 50; ++gen) {
    std::map<void*, std::uint64_t> model;
    const int ops = 200;
    for (int i = 0; i < ops; ++i) {
      void* addr = &arena[rng.NextBounded(arena.size())];
      if (rng.NextBounded(100) < 70) {
        const std::uint64_t value = rng.Next();
        ws.Put(addr, value);
        model[addr] = value;
      } else {
        std::uint64_t got = 0;
        const bool hit = ws.Lookup(addr, &got);
        const auto it = model.find(addr);
        ASSERT_EQ(hit, it != model.end());
        if (hit) {
          ASSERT_EQ(got, it->second);
        }
      }
    }
    ASSERT_EQ(ws.Size(), model.size());
    ws.Clear();
  }
}

}  // namespace
}  // namespace spectm
