// Tests for the machine-readable benchmark report: JSON escaping/structure, file
// round-trip, and --json CLI parsing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/benchsupport/runner.h"
#include "src/benchsupport/table.h"

namespace spectm {
namespace {

BenchRecord SampleRecord() {
  BenchRecord r;
  r.variant = "orec-short";
  r.clock = "gv4";
  r.threads = 4;
  r.lookup_pct = 10;
  r.ops_per_sec = 1234567.5;
  r.abort_rate = 0.03125;
  r.commits = 1000;
  r.aborts = 32;
  r.duration_s = 0.9;
  return r;
}

TEST(JsonReport, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonReport::Escape("plain"), "plain");
  EXPECT_EQ(JsonReport::Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonReport::Escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonReport::Escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonReport::Escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonReport, EmitsSchemaAndAllFields) {
  JsonReport report("clock_scale");
  EXPECT_TRUE(report.Empty());
  report.Add(SampleRecord());
  EXPECT_FALSE(report.Empty());

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"clock_scale\""), std::string::npos);
  EXPECT_NE(json.find("\"variant\": \"orec-short\""), std::string::npos);
  EXPECT_NE(json.find("\"clock\": \"gv4\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"lookup_pct\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"ops_per_sec\": 1234567.5"), std::string::npos);
  EXPECT_NE(json.find("\"abort_rate\": 0.03125"), std::string::npos);
  EXPECT_NE(json.find("\"commits\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"aborts\": 32"), std::string::npos);
  EXPECT_NE(json.find("\"duration_s\": 0.9"), std::string::npos);
}

TEST(JsonReport, StrategyAndProbeFieldsAreOptIn) {
  // Benches that do not set the adaptive-validation extensions keep their exact
  // historical record shape.
  JsonReport plain("plain");
  plain.Add(SampleRecord());
  const std::string before = plain.ToJson();
  EXPECT_EQ(before.find("\"workload\""), std::string::npos);
  EXPECT_EQ(before.find("\"strategy\""), std::string::npos);
  EXPECT_EQ(before.find("\"counter_skips\""), std::string::npos);

  BenchRecord r = SampleRecord();
  r.workload = "phase-shift";
  r.strategy = "adaptive";
  r.has_probes = true;
  r.counter_skips = 7;
  r.bloom_skips = 3;
  r.validation_walks = 2;
  r.strategy_switches = 1;
  JsonReport extended("extended");
  extended.Add(r);
  const std::string json = extended.ToJson();
  EXPECT_NE(json.find("\"workload\": \"phase-shift\""), std::string::npos);
  EXPECT_NE(json.find("\"strategy\": \"adaptive\""), std::string::npos);
  EXPECT_NE(json.find("\"counter_skips\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"bloom_skips\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"validation_walks\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"strategy_switches\": 1"), std::string::npos);
}

TEST(JsonReport, SchedFieldsAreOptIn) {
  // Records from scheduler-less builds keep their exact historical shape.
  JsonReport plain("plain");
  plain.Add(SampleRecord());
  const std::string before = plain.ToJson();
  EXPECT_EQ(before.find("\"explored_schedules\""), std::string::npos);
  EXPECT_EQ(before.find("\"preemption_bound\""), std::string::npos);
  EXPECT_EQ(before.find("\"canary_found\""), std::string::npos);

  BenchRecord r = SampleRecord();
  r.has_sched = true;
  r.explored_schedules = 144;
  r.preemption_bound = 2;
  r.canary_found = 1;
  JsonReport extended("extended");
  extended.Add(r);
  const std::string json = extended.ToJson();
  EXPECT_NE(json.find("\"explored_schedules\": 144"), std::string::npos);
  EXPECT_NE(json.find("\"preemption_bound\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"canary_found\": 1"), std::string::npos);
}

TEST(JsonReport, MvccFieldsAreOptIn) {
  // Records from benches that never touch the snapshot family keep their exact
  // historical shape.
  JsonReport plain("plain");
  plain.Add(SampleRecord());
  const std::string before = plain.ToJson();
  EXPECT_EQ(before.find("\"snapshot_reads\""), std::string::npos);
  EXPECT_EQ(before.find("\"version_hops\""), std::string::npos);
  EXPECT_EQ(before.find("\"versions_retired\""), std::string::npos);
  EXPECT_EQ(before.find("\"chain_splices\""), std::string::npos);
  EXPECT_EQ(before.find("\"snapshot_probe_aborts\""), std::string::npos);

  BenchRecord r = SampleRecord();
  r.has_mvcc = true;
  r.snapshot_reads = 320;
  r.version_hops = 64;
  r.versions_retired = 56;
  r.chain_splices = 9;
  JsonReport extended("extended");
  extended.Add(r);
  const std::string json = extended.ToJson();
  EXPECT_NE(json.find("\"snapshot_reads\": 320"), std::string::npos);
  EXPECT_NE(json.find("\"version_hops\": 64"), std::string::npos);
  EXPECT_NE(json.find("\"versions_retired\": 56"), std::string::npos);
  EXPECT_NE(json.find("\"chain_splices\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"snapshot_probe_aborts\": 0"), std::string::npos);
}

TEST(JsonReport, SvcFieldsAreOptIn) {
  // Records from benches predating the KV service layer keep their exact
  // historical shape.
  JsonReport plain("plain");
  plain.Add(SampleRecord());
  const std::string before = plain.ToJson();
  EXPECT_EQ(before.find("\"batch_size\""), std::string::npos);
  EXPECT_EQ(before.find("\"zipf_theta\""), std::string::npos);
  EXPECT_EQ(before.find("\"batches\""), std::string::npos);
  EXPECT_EQ(before.find("\"descriptors_per_op\""), std::string::npos);
  EXPECT_EQ(before.find("\"p50\""), std::string::npos);
  EXPECT_EQ(before.find("\"p99\""), std::string::npos);
  EXPECT_EQ(before.find("\"p999\""), std::string::npos);

  BenchRecord r = SampleRecord();
  r.has_svc = true;
  r.batch_size = 64;
  r.zipf_theta = 0.99;
  r.batches = 4096;
  r.descriptors_per_op = 0.015625;
  r.p50 = 2100;
  r.p99 = 9300;
  r.p999 = 17000;
  JsonReport extended("extended");
  extended.Add(r);
  const std::string json = extended.ToJson();
  EXPECT_NE(json.find("\"batch_size\": 64"), std::string::npos);
  EXPECT_NE(json.find("\"zipf_theta\": 0.99"), std::string::npos);
  EXPECT_NE(json.find("\"batches\": 4096"), std::string::npos);
  EXPECT_NE(json.find("\"descriptors_per_op\": 0.015625"), std::string::npos);
  EXPECT_NE(json.find("\"p50\": 2100"), std::string::npos);
  EXPECT_NE(json.find("\"p99\": 9300"), std::string::npos);
  EXPECT_NE(json.find("\"p999\": 17000"), std::string::npos);
}

TEST(JsonReport, MultipleRecordsFormAnArray) {
  JsonReport report("b");
  report.Add(SampleRecord());
  BenchRecord second = SampleRecord();
  second.threads = 8;
  report.Add(second);
  const std::string json = report.ToJson();
  // Two objects, comma-separated, inside one array.
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 8"), std::string::npos);
  EXPECT_NE(json.find("},\n"), std::string::npos);
  EXPECT_NE(json.find("\"results\": ["), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity without a parser).
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
    }
    if (in_string) {
      continue;
    }
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(JsonReport, WritesFile) {
  const std::string path = testing::TempDir() + "/spectm_json_test.json";
  JsonReport report("roundtrip");
  report.Add(SampleRecord());
  ASSERT_TRUE(report.WriteFile(path));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream buf;
  buf << f.rdbuf();
  EXPECT_EQ(buf.str(), report.ToJson());
  std::remove(path.c_str());
}

TEST(JsonPathFromArgs, ParsesSeparateAndInlineForms) {
  {
    const char* argv[] = {"bench", "--json", "out.json"};
    EXPECT_EQ(JsonPathFromArgs(3, const_cast<char**>(argv)), "out.json");
  }
  {
    const char* argv[] = {"bench", "--json=inline.json"};
    EXPECT_EQ(JsonPathFromArgs(2, const_cast<char**>(argv)), "inline.json");
  }
  {
    const char* argv[] = {"bench", "--threads", "4"};
    EXPECT_EQ(JsonPathFromArgs(3, const_cast<char**>(argv)), "");
    EXPECT_EQ(JsonPathFromArgs(3, const_cast<char**>(argv), "default.json"),
              "default.json");
  }
  {
    // Flag wins over the default even when other args surround it.
    const char* argv[] = {"bench", "-v", "--json", "x.json", "--runs", "3"};
    EXPECT_EQ(JsonPathFromArgs(6, const_cast<char**>(argv), "default.json"), "x.json");
  }
}

TEST(JsonPathFromArgs, EnvironmentFallback) {
  setenv("SPECTM_BENCH_JSON", "env.json", /*overwrite=*/1);
  const char* argv[] = {"bench"};
  EXPECT_EQ(JsonPathFromArgs(1, const_cast<char**>(argv), "default.json"), "env.json");
  const char* argv2[] = {"bench", "--json=flag.json"};
  EXPECT_EQ(JsonPathFromArgs(2, const_cast<char**>(argv2)), "flag.json")
      << "an explicit flag overrides the environment";
  unsetenv("SPECTM_BENCH_JSON");
  EXPECT_EQ(JsonPathFromArgs(1, const_cast<char**>(argv)), "");
}

}  // namespace
}  // namespace spectm
