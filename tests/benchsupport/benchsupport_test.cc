// Tests for the benchmark harness itself: the paper's aggregation statistic, the
// throughput runner, workload prefill, and the table printer.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>

#include "src/benchsupport/runner.h"
#include "src/benchsupport/table.h"
#include "src/benchsupport/workload.h"

namespace spectm {
namespace {

TEST(AggregateRuns, EmptyIsZero) { EXPECT_EQ(AggregateRuns({}), 0.0); }

TEST(AggregateRuns, FewerThanThreeIsPlainMean) {
  EXPECT_DOUBLE_EQ(AggregateRuns({4.0}), 4.0);
  EXPECT_DOUBLE_EQ(AggregateRuns({2.0, 6.0}), 4.0);
}

TEST(AggregateRuns, DropsMinAndMax) {
  // Paper: "the mean of 6 runs with the lowest and the highest discarded".
  EXPECT_DOUBLE_EQ(AggregateRuns({100.0, 1.0, 5.0, 5.0, 5.0, 5.0}), 5.0);
  EXPECT_DOUBLE_EQ(AggregateRuns({1.0, 2.0, 3.0}), 2.0);
}

TEST(AggregateRuns, OutliersDoNotSkew) {
  const double clean = AggregateRuns({10.0, 10.0, 10.0, 10.0, 10.0, 10.0});
  const double outlier = AggregateRuns({10.0, 10.0, 10.0, 10.0, 10.0, 10000.0});
  EXPECT_DOUBLE_EQ(clean, outlier);
}

TEST(RunThroughput, CountsAllThreadOps) {
  const ThroughputResult r = RunThroughput(
      4, 50, [](int, const std::atomic<bool>& stop) {
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          ++ops;
        }
        return ops;
      });
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_GT(r.duration_s, 0.04);
  EXPECT_NEAR(r.ops_per_sec, static_cast<double>(r.total_ops) / r.duration_s, 1.0);
}

TEST(RunThroughput, DistinctThreadIndices) {
  std::atomic<std::uint64_t> mask{0};
  RunThroughput(8, 10, [&](int tid, const std::atomic<bool>& stop) {
    mask.fetch_or(1ULL << tid);
    while (!stop.load(std::memory_order_relaxed)) {
    }
    return std::uint64_t{1};
  });
  EXPECT_EQ(mask.load(), 0xffULL);
}

TEST(Workload, PrefillIsDeterministicAndRoughlyHalf) {
  struct CountingSet {
    std::set<std::uint64_t> keys;
    bool Insert(std::uint64_t k) { return keys.insert(k).second; }
  };
  WorkloadConfig cfg;
  cfg.key_range = 65536;
  CountingSet a, b;
  PrefillHalf(a, cfg);
  PrefillHalf(b, cfg);
  EXPECT_EQ(a.keys, b.keys) << "prefill must be deterministic for a fixed seed";
  EXPECT_NEAR(static_cast<double>(a.keys.size()), 32768.0, 800.0);
}

TEST(TextTable, AlignsAndSeparates) {
  TextTable t({"name", "value"});
  t.AddRow({"a", "1.00"});
  t.AddRow({"longer-name", "12.34"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  // Right-aligned numeric column: "12.34" and " 1.00" end at the same offset.
  const auto line1_end = s.find('\n', s.find("a "));
  ASSERT_NE(line1_end, std::string::npos);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(2.0, 0), "2");
  EXPECT_EQ(TextTable::Num(1234.5678, 3), "1234.568");
}

TEST(BenchKnobs, DefaultsRespectEnvironment) {
  // No env set in tests: defaults come back.
  EXPECT_GE(BenchRuns(3), 1);
  EXPECT_GE(BenchDurationMs(300), 1);
}

}  // namespace
}  // namespace spectm
