// Correctness battery for every hash-table integer-set variant: lock-free (Harris/
// Fraser), whole-operation transactional (hash_tm_full) and SpecTM short-transaction
// (hash_tm_short) over all meta-data layouts.
#include <gtest/gtest.h>

#include "src/structures/hash_lockfree.h"
#include "src/structures/hash_seq.h"
#include "src/structures/hash_tm_full.h"
#include "src/structures/hash_tm_short.h"
#include "src/tm/pver.h"
#include "src/tm/val_eager.h"
#include "src/tm/variants.h"
#include "tests/structures/set_battery.h"

namespace spectm {
namespace {

using testbattery::ConcurrentDisjointInserts;
using testbattery::ConcurrentPartitionedFuzz;
using testbattery::ConcurrentSharedKeyAccounting;
using testbattery::FuzzAgainstReference;
using testbattery::ReadersDuringChurn;

TEST(SeqHashSet, FuzzAgainstReference) {
  SeqHashSet set(256);
  FuzzAgainstReference(set, 20000, 512, 42);
}

TEST(SeqHashSet, SizeTracksMembership) {
  SeqHashSet set(16);
  EXPECT_EQ(set.Size(), 0u);
  EXPECT_TRUE(set.Insert(1));
  EXPECT_TRUE(set.Insert(2));
  EXPECT_FALSE(set.Insert(1));
  EXPECT_EQ(set.Size(), 2u);
  EXPECT_TRUE(set.Remove(1));
  EXPECT_FALSE(set.Remove(1));
  EXPECT_EQ(set.Size(), 1u);
}

template <typename Set>
class HashSetSuite : public ::testing::Test {
 protected:
  Set set_{1024};
};

using HashVariants =
    ::testing::Types<LockFreeHashSet, TmHashSet<OrecG>, TmHashSet<OrecL>,
                     TmHashSet<TvarG>, TmHashSet<TvarL>, TmHashSet<Val>,
                     TmHashSet<ValEager>, SpecHashSet<OrecG>, SpecHashSet<OrecL>,
                     SpecHashSet<TvarG>, SpecHashSet<TvarL>, SpecHashSet<Val>,
                     SpecHashSet<Pver>>;
TYPED_TEST_SUITE(HashSetSuite, HashVariants);

TYPED_TEST(HashSetSuite, BasicSemantics) {
  auto& set = this->set_;
  EXPECT_FALSE(set.Contains(10));
  EXPECT_TRUE(set.Insert(10));
  EXPECT_TRUE(set.Contains(10));
  EXPECT_FALSE(set.Insert(10)) << "duplicate insert must fail";
  EXPECT_TRUE(set.Remove(10));
  EXPECT_FALSE(set.Contains(10));
  EXPECT_FALSE(set.Remove(10)) << "double remove must fail";
}

TYPED_TEST(HashSetSuite, ChainOrderIndependence) {
  auto& set = this->set_;
  // Keys chosen to collide heavily in a 1024-bucket table.
  for (std::uint64_t k = 0; k < 64; ++k) {
    EXPECT_TRUE(set.Insert(k * 1024));
  }
  for (std::uint64_t k = 0; k < 64; ++k) {
    EXPECT_TRUE(set.Contains(k * 1024));
  }
  for (std::uint64_t k = 0; k < 64; k += 2) {
    EXPECT_TRUE(set.Remove(k * 1024));
  }
  for (std::uint64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(set.Contains(k * 1024), k % 2 == 1);
  }
}

TYPED_TEST(HashSetSuite, FuzzAgainstReference) {
  FuzzAgainstReference(this->set_, 20000, 512, 1234);
}

TYPED_TEST(HashSetSuite, ConcurrentDisjointInserts) {
  ConcurrentDisjointInserts(this->set_, 8, 2000);
}

TYPED_TEST(HashSetSuite, ConcurrentPartitionedFuzz) {
  ConcurrentPartitionedFuzz(this->set_, 8, 10000, 128);
}

TYPED_TEST(HashSetSuite, ConcurrentSharedKeyAccounting) {
  ConcurrentSharedKeyAccounting(this->set_, 8, 10000, 64);
}

TYPED_TEST(HashSetSuite, ReadersDuringChurn) {
  ReadersDuringChurn(this->set_, 3, 3, 20000, 256);
}

}  // namespace
}  // namespace spectm
