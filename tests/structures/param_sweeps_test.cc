// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P) over structure
// configuration spaces: dequeue capacities, hash-table bucket counts (from one giant
// chain to nearly chain-free), workload mixes, and skip-list level caps.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <tuple>

#include "src/benchsupport/workload.h"
#include "src/common/rng.h"
#include "src/structures/dequeue.h"
#include "src/structures/hash_tm_short.h"
#include "src/structures/skip_tm_short.h"
#include "src/tm/config.h"
#include "src/tm/variants.h"
#include "tests/structures/set_battery.h"

namespace spectm {
namespace {

// --- Dequeue capacity sweep -------------------------------------------------------------

class DequeueCapacitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DequeueCapacitySweep, FillDrainWrapInvariants) {
  const std::size_t cap = GetParam();
  SpecDequeue<Val> q(cap);
  // Fill exactly to capacity from alternating ends.
  for (std::size_t i = 0; i < cap; ++i) {
    if (i % 2 == 0) {
      ASSERT_TRUE(q.PushLeft(EncodeInt(i + 1))) << "cap " << cap << " i " << i;
    } else {
      ASSERT_TRUE(q.PushRight(EncodeInt(i + 1)));
    }
  }
  ASSERT_FALSE(q.PushLeft(EncodeInt(999)));
  ASSERT_FALSE(q.PushRight(EncodeInt(999)));
  // Drain completely; count must equal capacity.
  std::size_t drained = 0;
  while (q.PopLeft() != 0) {
    ++drained;
  }
  ASSERT_EQ(drained, cap);
  ASSERT_EQ(q.PopRight(), 0u);
  // Wrap-around cycles at every queue occupancy.
  for (std::uint64_t round = 1; round <= 3 * cap + 5; ++round) {
    ASSERT_TRUE(q.PushRight(EncodeInt(round)));
    ASSERT_EQ(DecodeInt(q.PopLeft()), round);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, DequeueCapacitySweep,
                         ::testing::Values(1, 2, 3, 5, 8, 64, 257),
                         [](const auto& info) {
                           return "cap" + std::to_string(info.param);
                         });

// --- Hash-table bucket-count sweep --------------------------------------------------------

class HashBucketSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HashBucketSweep, FuzzAtExtremeChainLengths) {
  SpecHashSet<Val> set(GetParam());
  testbattery::FuzzAgainstReference(set, 8000, 256, 5150 + GetParam());
}

TEST_P(HashBucketSweep, ConcurrentAccountingAtExtremeChainLengths) {
  SpecHashSet<Val> set(GetParam());
  testbattery::ConcurrentSharedKeyAccounting(set, 4, 4000, 64);
}

INSTANTIATE_TEST_SUITE_P(Buckets, HashBucketSweep,
                         ::testing::Values(1, 2, 7, 64, 4096),
                         [](const auto& info) {
                           return "b" + std::to_string(info.param);
                         });

// --- Workload-mix sweep --------------------------------------------------------------------

using MixParam = std::tuple<int, std::uint64_t>;  // lookup pct, key range

class WorkloadMixSweep : public ::testing::TestWithParam<MixParam> {};

TEST_P(WorkloadMixSweep, OpMixRespectsRequestedRatios) {
  const auto [lookup_pct, key_range] = GetParam();
  Xorshift128Plus rng(42);
  int lookups = 0, inserts = 0, removes = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    switch (PickOp(rng, lookup_pct)) {
      case SetOp::kLookup:
        ++lookups;
        break;
      case SetOp::kInsert:
        ++inserts;
        break;
      case SetOp::kRemove:
        ++removes;
        break;
    }
    EXPECT_LT(PickKey(rng, key_range), key_range);
  }
  EXPECT_NEAR(static_cast<double>(lookups) / kSamples, lookup_pct / 100.0, 0.01);
  // §4.4: "the ratio of insert and remove operations is equal".
  if (lookup_pct < 100) {
    EXPECT_NEAR(static_cast<double>(inserts), static_cast<double>(removes),
                0.05 * (inserts + removes) + 100);
  }
}

TEST_P(WorkloadMixSweep, SetSizeStaysRoughlyConstant) {
  const auto [lookup_pct, key_range] = GetParam();
  SpecHashSet<Val> set(1024);
  WorkloadConfig cfg;
  cfg.key_range = key_range;
  cfg.lookup_pct = lookup_pct;
  PrefillHalf(set, cfg);
  // Count initial membership.
  std::uint64_t initial = 0;
  for (std::uint64_t k = 0; k < key_range; ++k) {
    initial += set.Contains(k) ? 1 : 0;
  }
  Xorshift128Plus rng(7);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t key = PickKey(rng, key_range);
    switch (PickOp(rng, cfg.lookup_pct)) {
      case SetOp::kLookup:
        set.Contains(key);
        break;
      case SetOp::kInsert:
        set.Insert(key);
        break;
      case SetOp::kRemove:
        set.Remove(key);
        break;
    }
  }
  std::uint64_t final_count = 0;
  for (std::uint64_t k = 0; k < key_range; ++k) {
    final_count += set.Contains(k) ? 1 : 0;
  }
  // Equal insert/remove rates keep the set near half-full (§4.4); allow wide slack
  // since this is a random walk.
  EXPECT_NEAR(static_cast<double>(final_count), static_cast<double>(initial),
              0.25 * static_cast<double>(key_range));
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, WorkloadMixSweep,
    ::testing::Combine(::testing::Values(0, 10, 50, 90, 98, 100),
                       ::testing::Values<std::uint64_t>(256, 65536)),
    [](const auto& info) {
      return "lu" + std::to_string(std::get<0>(info.param)) + "_range" +
             std::to_string(std::get<1>(info.param));
    });

// --- Skip-list level-cap sweep ---------------------------------------------------------------

class SkipLevelSweep : public ::testing::TestWithParam<int> {};

TEST_P(SkipLevelSweep, LevelGeneratorHonorsCap) {
  const int cap = GetParam();
  Xorshift128Plus rng(cap * 31 + 1);
  int max_seen = 0;
  for (int i = 0; i < 100000; ++i) {
    const int lvl = rng.NextSkipListLevel(cap);
    ASSERT_GE(lvl, 1);
    ASSERT_LE(lvl, cap);
    max_seen = std::max(max_seen, lvl);
  }
  if (cap <= 8) {
    EXPECT_EQ(max_seen, cap) << "the cap level should be reached with 100k samples";
  }
}

INSTANTIATE_TEST_SUITE_P(Caps, SkipLevelSweep, ::testing::Values(1, 2, 4, 8, 32),
                         [](const auto& info) {
                           return "cap" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace spectm
