// Tests for the SpecTM hash map: value semantics, atomic read-modify-write, and the
// mixed RO/RW short-transaction paths that sets never exercise.
#include "src/structures/hash_map_tm.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/tm/pver.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

template <typename Map>
class HashMapSuite : public ::testing::Test {
 protected:
  Map map_{1024};
};

using MapVariants = ::testing::Types<SpecHashMap<OrecG>, SpecHashMap<OrecL>,
                                     SpecHashMap<TvarG>, SpecHashMap<TvarL>,
                                     SpecHashMap<Val>, SpecHashMap<Pver>>;
TYPED_TEST_SUITE(HashMapSuite, MapVariants);

TYPED_TEST(HashMapSuite, GetPutRemoveBasics) {
  auto& m = this->map_;
  std::uint64_t v = 0;
  EXPECT_FALSE(m.Get(1, &v));
  EXPECT_TRUE(m.Put(1, 100));
  ASSERT_TRUE(m.Get(1, &v));
  EXPECT_EQ(v, 100u);
  EXPECT_FALSE(m.Put(1, 200)) << "overwrite is not a fresh insert";
  ASSERT_TRUE(m.Get(1, &v));
  EXPECT_EQ(v, 200u);
  EXPECT_TRUE(m.Remove(1));
  EXPECT_FALSE(m.Get(1, &v));
  EXPECT_FALSE(m.Remove(1));
}

TYPED_TEST(HashMapSuite, UpdateAppliesFunction) {
  auto& m = this->map_;
  EXPECT_FALSE(m.Update(5, [](std::uint64_t x) { return x + 1; }))
      << "update of absent key must fail";
  m.Put(5, 10);
  EXPECT_TRUE(m.Update(5, [](std::uint64_t x) { return x * 3; }));
  std::uint64_t v = 0;
  ASSERT_TRUE(m.Get(5, &v));
  EXPECT_EQ(v, 30u);
}

TYPED_TEST(HashMapSuite, FuzzAgainstReferenceModel) {
  auto& m = this->map_;
  std::map<std::uint64_t, std::uint64_t> model;
  Xorshift128Plus rng(31337);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.NextBounded(256);
    switch (rng.NextBounded(4)) {
      case 0: {
        const std::uint64_t value = rng.NextBounded(1 << 20);
        const bool fresh = m.Put(key, value);
        ASSERT_EQ(fresh, model.find(key) == model.end());
        model[key] = value;
        break;
      }
      case 1:
        ASSERT_EQ(m.Remove(key), model.erase(key) == 1);
        break;
      case 2: {
        std::uint64_t got = 0;
        const auto it = model.find(key);
        ASSERT_EQ(m.Get(key, &got), it != model.end());
        if (it != model.end()) {
          ASSERT_EQ(got, it->second);
        }
        break;
      }
      default: {
        const bool updated = m.Update(key, [](std::uint64_t x) { return x + 7; });
        const auto it = model.find(key);
        ASSERT_EQ(updated, it != model.end());
        if (it != model.end()) {
          it->second += 7;
        }
        break;
      }
    }
  }
}

// The headline property: Update is an atomic read-modify-write, so concurrent
// increments are never lost — the STM equivalent of fetch_add.
TYPED_TEST(HashMapSuite, ConcurrentUpdatesAreLostUpdateFree) {
  auto& m = this->map_;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  constexpr std::uint64_t kKeys = 16;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    m.Put(k, 0);
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xorshift128Plus rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t key = rng.NextBounded(kKeys);
        ASSERT_TRUE(m.Update(key, [](std::uint64_t x) { return x + 1; }));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  std::uint64_t total = 0;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    std::uint64_t v = 0;
    ASSERT_TRUE(m.Get(k, &v));
    total += v;
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// Readers must always observe (value, liveness) pairs consistently while keys churn.
TYPED_TEST(HashMapSuite, GetsConsistentDuringChurn) {
  auto& m = this->map_;
  constexpr std::uint64_t kKey = 7;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> stale_values{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        std::uint64_t v = 0;
        if (m.Get(kKey, &v)) {
          // Writers only ever store even values; seeing odd means a torn read.
          if (v % 2 != 0) {
            stale_values.fetch_add(1);
          }
        }
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&, w] {
      Xorshift128Plus rng(static_cast<std::uint64_t>(w) + 40);
      for (int i = 0; i < 20000; ++i) {
        switch (rng.NextBounded(3)) {
          case 0:
            m.Put(kKey, rng.NextBounded(1 << 20) * 2);
            break;
          case 1:
            m.Update(kKey, [](std::uint64_t x) { return x + 2; });
            break;
          default:
            m.Remove(kKey);
            break;
        }
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_EQ(stale_values.load(), 0u);
}

}  // namespace
}  // namespace spectm
