// Tests for the transactional B+-tree (the paper's §6 future-work structure),
// including structural invariants (splits, height growth), ordered range scans, and
// the shared concurrent set battery.
#include "src/structures/btree_tm.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "src/tm/pver.h"
#include "src/tm/variants.h"
#include "tests/structures/set_battery.h"

namespace spectm {
namespace {

using testbattery::ConcurrentDisjointInserts;
using testbattery::ConcurrentPartitionedFuzz;
using testbattery::ConcurrentSharedKeyAccounting;
using testbattery::FuzzAgainstReference;
using testbattery::ReadersDuringChurn;

template <typename Tree>
class BTreeSuite : public ::testing::Test {
 protected:
  Tree tree_{};
};

using BTreeVariants = ::testing::Types<TmBTree<OrecG>, TmBTree<OrecL>, TmBTree<TvarG>,
                                       TmBTree<TvarL>, TmBTree<Val>, TmBTree<Pver>>;
TYPED_TEST_SUITE(BTreeSuite, BTreeVariants);

TYPED_TEST(BTreeSuite, BasicSemantics) {
  auto& t = this->tree_;
  EXPECT_FALSE(t.Contains(5));
  EXPECT_TRUE(t.Insert(5));
  EXPECT_TRUE(t.Contains(5));
  EXPECT_FALSE(t.Insert(5));
  EXPECT_TRUE(t.Remove(5));
  EXPECT_FALSE(t.Contains(5));
  EXPECT_FALSE(t.Remove(5));
}

TYPED_TEST(BTreeSuite, SplitsGrowHeight) {
  auto& t = this->tree_;
  EXPECT_EQ(t.Height(), 1);
  // Enough ascending keys to force several levels of splits (fanout 16).
  for (std::uint64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(t.Insert(k));
  }
  EXPECT_GE(t.Height(), 3);
  for (std::uint64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(t.Contains(k)) << k;
  }
}

TYPED_TEST(BTreeSuite, DescendingAndInterleavedInserts) {
  auto& t = this->tree_;
  for (std::uint64_t k = 1000; k > 0; --k) {
    ASSERT_TRUE(t.Insert(k * 2));
  }
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    ASSERT_TRUE(t.Insert(k * 2 - 1));  // interleave odds
  }
  for (std::uint64_t k = 1; k <= 2000; ++k) {
    ASSERT_TRUE(t.Contains(k)) << k;
  }
}

TYPED_TEST(BTreeSuite, RangeCountMatchesReference) {
  auto& t = this->tree_;
  std::set<std::uint64_t> model;
  Xorshift128Plus rng(99);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t k = rng.NextBounded(10000);
    t.Insert(k);
    model.insert(k);
  }
  for (auto [lo, hi] : {std::pair<std::uint64_t, std::uint64_t>{0, 9999},
                        {100, 200},
                        {5000, 5000},
                        {9000, 9999},
                        {42, 4242}}) {
    std::uint64_t expected = 0;
    for (auto it = model.lower_bound(lo); it != model.end() && *it <= hi; ++it) {
      ++expected;
    }
    EXPECT_EQ(t.RangeCount(lo, hi), expected) << "[" << lo << "," << hi << "]";
  }
}

TYPED_TEST(BTreeSuite, RemoveThenReinsertAcrossSplitBoundaries) {
  auto& t = this->tree_;
  for (std::uint64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(t.Insert(k));
  }
  for (std::uint64_t k = 0; k < 500; k += 2) {
    ASSERT_TRUE(t.Remove(k));
  }
  for (std::uint64_t k = 0; k < 500; ++k) {
    ASSERT_EQ(t.Contains(k), k % 2 == 1) << k;
  }
  for (std::uint64_t k = 0; k < 500; k += 2) {
    ASSERT_TRUE(t.Insert(k));
  }
  EXPECT_EQ(t.RangeCount(0, 499), 500u);
}

TYPED_TEST(BTreeSuite, FuzzAgainstReference) {
  FuzzAgainstReference(this->tree_, 15000, 512, 2025);
}

TYPED_TEST(BTreeSuite, ConcurrentDisjointInserts) {
  ConcurrentDisjointInserts(this->tree_, 8, 1000);
}

TYPED_TEST(BTreeSuite, ConcurrentPartitionedFuzz) {
  ConcurrentPartitionedFuzz(this->tree_, 8, 5000, 128);
}

TYPED_TEST(BTreeSuite, ConcurrentSharedKeyAccounting) {
  ConcurrentSharedKeyAccounting(this->tree_, 8, 5000, 64);
}

TYPED_TEST(BTreeSuite, ReadersDuringChurn) {
  ReadersDuringChurn(this->tree_, 3, 3, 10000, 256);
}

// Range scans concurrent with inserts must see internally consistent snapshots:
// count(0, N) can only grow as an insert-only workload proceeds.
TYPED_TEST(BTreeSuite, RangeCountMonotoneUnderInserts) {
  auto& t = this->tree_;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::thread scanner([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t now = t.RangeCount(0, 1u << 20);
      if (now < last) {
        violations.fetch_add(1);
      }
      last = now;
    }
  });
  for (std::uint64_t k = 0; k < 5000; ++k) {
    t.Insert(k * 7 % (1u << 16));
  }
  stop.store(true, std::memory_order_release);
  scanner.join();
  EXPECT_EQ(violations.load(), 0u);
}

}  // namespace
}  // namespace spectm
