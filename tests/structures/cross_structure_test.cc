// Cross-structure interference: multiple data structures instantiated over the SAME
// TM family share that family's meta-data infrastructure — for orec layouts, one
// global ownership-record table and one version clock. Distinct structures can
// therefore false-conflict through orec hash collisions (§2.3), and every engine
// must remain correct (just slower) when that happens. These tests run a hash set, a
// skip list, a B-tree, and a hash map of one family concurrently and verify each
// structure's invariants independently.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/structures/btree_tm.h"
#include "src/structures/hash_map_tm.h"
#include "src/structures/hash_tm_short.h"
#include "src/structures/skip_tm_short.h"
#include "src/tm/pver.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

template <typename Family>
class CrossStructure : public ::testing::Test {};

using Families = ::testing::Types<OrecG, OrecL, TvarG, TvarL, Val, Pver>;
TYPED_TEST_SUITE(CrossStructure, Families);

TYPED_TEST(CrossStructure, FourStructuresOneFamilyConcurrently) {
  using F = TypeParam;
  SpecHashSet<F> hash_set(512);
  SpecSkipList<F> skip_list;
  TmBTree<F> btree;
  SpecHashMap<F> map(512);

  constexpr int kThreadsPerStructure = 2;
  constexpr int kOps = 4000;
  constexpr std::uint64_t kRange = 512;

  std::vector<std::thread> threads;

  // Hash set workers: partitioned accounting.
  std::vector<std::atomic<std::int64_t>> hash_net(kRange);
  for (auto& n : hash_net) {
    n.store(0);
  }
  for (int t = 0; t < kThreadsPerStructure; ++t) {
    threads.emplace_back([&, t] {
      Xorshift128Plus rng(static_cast<std::uint64_t>(t) + 11);
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t k = rng.NextBounded(kRange);
        if (rng.NextBounded(2) == 0) {
          if (hash_set.Insert(k)) {
            hash_net[k].fetch_add(1);
          }
        } else {
          if (hash_set.Remove(k)) {
            hash_net[k].fetch_sub(1);
          }
        }
      }
    });
  }

  // Skip list workers: same protocol on a disjoint logical keyspace.
  std::vector<std::atomic<std::int64_t>> skip_net(kRange);
  for (auto& n : skip_net) {
    n.store(0);
  }
  for (int t = 0; t < kThreadsPerStructure; ++t) {
    threads.emplace_back([&, t] {
      Xorshift128Plus rng(static_cast<std::uint64_t>(t) + 22);
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t k = rng.NextBounded(kRange);
        if (rng.NextBounded(2) == 0) {
          if (skip_list.Insert(k)) {
            skip_net[k].fetch_add(1);
          }
        } else {
          if (skip_list.Remove(k)) {
            skip_net[k].fetch_sub(1);
          }
        }
      }
    });
  }

  // B-tree workers: insert-only, distinct per-thread ranges.
  for (int t = 0; t < kThreadsPerStructure; ++t) {
    threads.emplace_back([&, t] {
      const std::uint64_t base = 10000 + static_cast<std::uint64_t>(t) * kOps;
      for (std::uint64_t i = 0; i < kOps; ++i) {
        ASSERT_TRUE(btree.Insert(base + i));
      }
    });
  }

  // Map workers: per-key atomic increments.
  for (std::uint64_t k = 0; k < 8; ++k) {
    map.Put(k, 0);
  }
  for (int t = 0; t < kThreadsPerStructure; ++t) {
    threads.emplace_back([&, t] {
      Xorshift128Plus rng(static_cast<std::uint64_t>(t) + 33);
      for (int i = 0; i < kOps; ++i) {
        ASSERT_TRUE(map.Update(rng.NextBounded(8),
                               [](std::uint64_t x) { return x + 1; }));
      }
    });
  }

  for (auto& th : threads) {
    th.join();
  }

  // Each structure's invariant holds despite shared meta-data.
  for (std::uint64_t k = 0; k < kRange; ++k) {
    const std::int64_t hn = hash_net[k].load();
    ASSERT_TRUE(hn == 0 || hn == 1);
    ASSERT_EQ(hash_set.Contains(k), hn == 1) << "hash key " << k;
    const std::int64_t sn = skip_net[k].load();
    ASSERT_TRUE(sn == 0 || sn == 1);
    ASSERT_EQ(skip_list.Contains(k), sn == 1) << "skip key " << k;
  }
  for (int t = 0; t < kThreadsPerStructure; ++t) {
    const std::uint64_t base = 10000 + static_cast<std::uint64_t>(t) * kOps;
    ASSERT_TRUE(btree.Contains(base));
    ASSERT_TRUE(btree.Contains(base + kOps - 1));
  }
  EXPECT_EQ(btree.RangeCount(10000, 10000 + 2 * kOps - 1),
            static_cast<std::uint64_t>(kThreadsPerStructure) * kOps);
  std::uint64_t map_total = 0;
  for (std::uint64_t k = 0; k < 8; ++k) {
    std::uint64_t v = 0;
    ASSERT_TRUE(map.Get(k, &v));
    map_total += v;
  }
  EXPECT_EQ(map_total, static_cast<std::uint64_t>(kThreadsPerStructure) * kOps);
}

}  // namespace
}  // namespace spectm
