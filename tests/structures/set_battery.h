// Shared correctness battery for integer-set implementations: sequential semantics
// against a reference model, and concurrent invariants under contention. Used by the
// typed suites for every hash-table and skip-list variant.
#ifndef SPECTM_TESTS_STRUCTURES_SET_BATTERY_H_
#define SPECTM_TESTS_STRUCTURES_SET_BATTERY_H_

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "src/common/rng.h"

namespace spectm::testbattery {

// Single-threaded semantics: random op stream checked against std::set.
template <typename Set>
void FuzzAgainstReference(Set& set, int ops, std::uint64_t key_range,
                          std::uint64_t seed) {
  std::set<std::uint64_t> model;
  Xorshift128Plus rng(seed);
  for (int i = 0; i < ops; ++i) {
    const std::uint64_t key = rng.NextBounded(key_range);
    switch (rng.NextBounded(3)) {
      case 0:
        ASSERT_EQ(set.Insert(key), model.insert(key).second) << "key " << key;
        break;
      case 1:
        ASSERT_EQ(set.Remove(key), model.erase(key) == 1) << "key " << key;
        break;
      default:
        ASSERT_EQ(set.Contains(key), model.count(key) == 1) << "key " << key;
        break;
    }
  }
  // Full sweep at the end.
  for (std::uint64_t k = 0; k < key_range; ++k) {
    ASSERT_EQ(set.Contains(k), model.count(k) == 1) << "final sweep, key " << k;
  }
}

// Concurrent: disjoint key ranges per thread; everything inserted must be present,
// everything outside must be absent.
template <typename Set>
void ConcurrentDisjointInserts(Set& set, int threads, std::uint64_t keys_per_thread) {
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const std::uint64_t base = static_cast<std::uint64_t>(t) * keys_per_thread;
      for (std::uint64_t k = 0; k < keys_per_thread; ++k) {
        ASSERT_TRUE(set.Insert(base + k));
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  for (std::uint64_t k = 0; k < static_cast<std::uint64_t>(threads) * keys_per_thread;
       ++k) {
    ASSERT_TRUE(set.Contains(k)) << "key " << k;
  }
  ASSERT_FALSE(set.Contains(static_cast<std::uint64_t>(threads) * keys_per_thread));
}

// Concurrent: each thread owns a key partition and fuzzes it against a private
// model; cross-thread interference must never corrupt another partition.
template <typename Set>
void ConcurrentPartitionedFuzz(Set& set, int threads, int ops_per_thread,
                               std::uint64_t keys_per_thread) {
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const std::uint64_t base = static_cast<std::uint64_t>(t) * keys_per_thread;
      std::set<std::uint64_t> model;
      Xorshift128Plus rng(static_cast<std::uint64_t>(t) * 1337 + 7);
      for (int i = 0; i < ops_per_thread; ++i) {
        const std::uint64_t key = base + rng.NextBounded(keys_per_thread);
        switch (rng.NextBounded(3)) {
          case 0:
            ASSERT_EQ(set.Insert(key), model.insert(key).second);
            break;
          case 1:
            ASSERT_EQ(set.Remove(key), model.erase(key) == 1);
            break;
          default:
            ASSERT_EQ(set.Contains(key), model.count(key) == 1);
            break;
        }
      }
      for (std::uint64_t k = base; k < base + keys_per_thread; ++k) {
        ASSERT_EQ(set.Contains(k), model.count(k) == 1);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
}

// Concurrent: all threads hammer one small shared key range. Per-key success
// accounting must balance: (successful inserts) - (successful removes) is 0 or 1 and
// matches final membership — any violation means an operation's return value lied.
template <typename Set>
void ConcurrentSharedKeyAccounting(Set& set, int threads, int ops_per_thread,
                                   std::uint64_t key_range) {
  std::vector<std::atomic<std::int64_t>> net(key_range);
  for (auto& n : net) {
    n.store(0);
  }
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xorshift128Plus rng(static_cast<std::uint64_t>(t) * 271 + 31);
      for (int i = 0; i < ops_per_thread; ++i) {
        const std::uint64_t key = rng.NextBounded(key_range);
        if (rng.NextBounded(2) == 0) {
          if (set.Insert(key)) {
            net[key].fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          if (set.Remove(key)) {
            net[key].fetch_sub(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  for (std::uint64_t k = 0; k < key_range; ++k) {
    const std::int64_t n = net[k].load();
    ASSERT_TRUE(n == 0 || n == 1) << "key " << k << " net " << n;
    ASSERT_EQ(set.Contains(k), n == 1) << "key " << k;
  }
}

// Readers must never crash or misbehave while writers churn the same keys
// (exercises traversal-through-deleted-nodes and epoch protection).
template <typename Set>
void ReadersDuringChurn(Set& set, int reader_threads, int writer_threads,
                        int churn_ops, std::uint64_t key_range) {
  for (std::uint64_t k = 0; k < key_range; k += 2) {
    set.Insert(k);
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> lookups{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < reader_threads; ++r) {
    readers.emplace_back([&, r] {
      Xorshift128Plus rng(static_cast<std::uint64_t>(r) + 1000);
      std::uint64_t count = 0;
      while (!stop.load(std::memory_order_acquire)) {
        set.Contains(rng.NextBounded(key_range));
        ++count;
      }
      lookups.fetch_add(count);
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < writer_threads; ++w) {
    writers.emplace_back([&, w] {
      Xorshift128Plus rng(static_cast<std::uint64_t>(w) + 2000);
      for (int i = 0; i < churn_ops; ++i) {
        const std::uint64_t key = rng.NextBounded(key_range);
        if (rng.NextBounded(2) == 0) {
          set.Insert(key);
        } else {
          set.Remove(key);
        }
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_GT(lookups.load(), 0u);
}

}  // namespace spectm::testbattery

#endif  // SPECTM_TESTS_STRUCTURES_SET_BATTERY_H_
