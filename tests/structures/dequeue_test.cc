// Tests for the paper's §2 running example: the bounded double-ended queue, in both
// its traditional-STM (§2.1) and SpecTM short-transaction (§2.2) forms.
#include "src/structures/dequeue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/tm/config.h"
#include "src/tm/pver.h"
#include "src/tm/val_eager.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

template <typename Q>
class DequeueSuite : public ::testing::Test {
 protected:
  Q q_{64};
};

using DequeueVariants =
    ::testing::Types<TmDequeue<OrecG>, TmDequeue<TvarG>, TmDequeue<Val>,
                     TmDequeue<ValEager>, SpecDequeue<OrecG>, SpecDequeue<OrecL>,
                     SpecDequeue<TvarG>, SpecDequeue<TvarL>, SpecDequeue<Val>,
                     SpecDequeue<Pver>>;
TYPED_TEST_SUITE(DequeueSuite, DequeueVariants);

TYPED_TEST(DequeueSuite, EmptyPopsReturnZero) {
  EXPECT_EQ(this->q_.PopLeft(), 0u);
  EXPECT_EQ(this->q_.PopRight(), 0u);
}

TYPED_TEST(DequeueSuite, FifoAcrossEnds) {
  auto& q = this->q_;
  EXPECT_TRUE(q.PushRight(EncodeInt(1)));
  EXPECT_TRUE(q.PushRight(EncodeInt(2)));
  EXPECT_TRUE(q.PushRight(EncodeInt(3)));
  EXPECT_EQ(DecodeInt(q.PopLeft()), 1u);
  EXPECT_EQ(DecodeInt(q.PopLeft()), 2u);
  EXPECT_EQ(DecodeInt(q.PopLeft()), 3u);
  EXPECT_EQ(q.PopLeft(), 0u);
}

TYPED_TEST(DequeueSuite, LifoAtOneEnd) {
  auto& q = this->q_;
  EXPECT_TRUE(q.PushLeft(EncodeInt(1)));
  EXPECT_TRUE(q.PushLeft(EncodeInt(2)));
  EXPECT_EQ(DecodeInt(q.PopLeft()), 2u);
  EXPECT_EQ(DecodeInt(q.PopLeft()), 1u);
}

TYPED_TEST(DequeueSuite, MixedEndsBehaveAsDeque) {
  auto& q = this->q_;
  q.PushLeft(EncodeInt(10));   // [10]
  q.PushRight(EncodeInt(20));  // [10 20]
  q.PushLeft(EncodeInt(5));    // [5 10 20]
  EXPECT_EQ(DecodeInt(q.PopRight()), 20u);
  EXPECT_EQ(DecodeInt(q.PopRight()), 10u);
  EXPECT_EQ(DecodeInt(q.PopRight()), 5u);
}

TYPED_TEST(DequeueSuite, FillToCapacityThenOverflow) {
  auto& q = this->q_;
  const std::size_t cap = q.Capacity();
  // The NULL-slot representation distinguishes a full queue from an empty one even
  // when left == right (§2.1), so all `capacity` slots are usable.
  std::size_t pushed = 0;
  while (q.PushRight(EncodeInt(pushed + 1))) {
    ++pushed;
  }
  EXPECT_EQ(pushed, cap);
  EXPECT_FALSE(q.PushLeft(EncodeInt(999))) << "full queue must reject both ends";
  EXPECT_EQ(DecodeInt(q.PopLeft()), 1u);
  EXPECT_TRUE(q.PushRight(EncodeInt(1000)));
}

TYPED_TEST(DequeueSuite, WrapAroundManyTimes) {
  auto& q = this->q_;
  for (std::uint64_t round = 1; round <= 500; ++round) {
    ASSERT_TRUE(q.PushRight(EncodeInt(round)));
    ASSERT_EQ(DecodeInt(q.PopLeft()), round);
  }
}

// Conservation under concurrency: total sum pushed == total sum popped, and the
// number of residual items equals pushes minus pops.
TYPED_TEST(DequeueSuite, ConcurrentConservation) {
  auto& q = this->q_;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20000;
  std::atomic<std::uint64_t> pushed_sum{0};
  std::atomic<std::uint64_t> popped_sum{0};
  std::atomic<std::int64_t> net_count{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Xorshift128Plus rng(static_cast<std::uint64_t>(t) + 9);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t v = 1 + rng.NextBounded(1000);
        switch (rng.NextBounded(4)) {
          case 0:
            if (q.PushLeft(EncodeInt(v))) {
              pushed_sum.fetch_add(v);
              net_count.fetch_add(1);
            }
            break;
          case 1:
            if (q.PushRight(EncodeInt(v))) {
              pushed_sum.fetch_add(v);
              net_count.fetch_add(1);
            }
            break;
          case 2:
            if (const Word w = q.PopLeft(); w != 0) {
              popped_sum.fetch_add(DecodeInt(w));
              net_count.fetch_sub(1);
            }
            break;
          default:
            if (const Word w = q.PopRight(); w != 0) {
              popped_sum.fetch_add(DecodeInt(w));
              net_count.fetch_sub(1);
            }
            break;
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  // Drain the residue.
  std::uint64_t residue_sum = 0;
  std::int64_t residue_count = 0;
  while (const Word w = q.PopLeft()) {
    residue_sum += DecodeInt(w);
    ++residue_count;
  }
  EXPECT_EQ(residue_count, net_count.load());
  EXPECT_EQ(pushed_sum.load(), popped_sum.load() + residue_sum);
}

}  // namespace
}  // namespace spectm
