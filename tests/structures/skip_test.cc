// Correctness battery for every skip-list integer-set variant: lock-free (Fraser),
// whole-operation transactional, SpecTM short-transaction (the §3 case study), and
// the fine-grained full-transaction configuration of Figure 6(a).
#include <gtest/gtest.h>

#include "src/structures/skip_lockfree.h"
#include "src/structures/skip_seq.h"
#include "src/structures/skip_tm_full.h"
#include "src/structures/skip_tm_short.h"
#include "src/tm/fine_grained.h"
#include "src/tm/pver.h"
#include "src/tm/variants.h"
#include "tests/structures/set_battery.h"

namespace spectm {
namespace {

using testbattery::ConcurrentDisjointInserts;
using testbattery::ConcurrentPartitionedFuzz;
using testbattery::ConcurrentSharedKeyAccounting;
using testbattery::FuzzAgainstReference;
using testbattery::ReadersDuringChurn;

TEST(SeqSkipList, FuzzAgainstReference) {
  SeqSkipList set;
  FuzzAgainstReference(set, 20000, 512, 77);
}

TEST(SeqSkipList, OrderedSemantics) {
  SeqSkipList set;
  for (std::uint64_t k = 100; k > 0; --k) {
    EXPECT_TRUE(set.Insert(k));
  }
  EXPECT_EQ(set.Size(), 100u);
  for (std::uint64_t k = 1; k <= 100; ++k) {
    EXPECT_TRUE(set.Contains(k));
    EXPECT_TRUE(set.Remove(k));
  }
  EXPECT_EQ(set.Size(), 0u);
}

template <typename Set>
class SkipListSuite : public ::testing::Test {
 protected:
  Set set_{};
};

using SkipVariants =
    ::testing::Types<LockFreeSkipList, TmSkipList<OrecG>, TmSkipList<OrecL>,
                     TmSkipList<TvarG>, TmSkipList<TvarL>, TmSkipList<Val>,
                     SpecSkipList<OrecG>, SpecSkipList<OrecL>, SpecSkipList<TvarG>,
                     SpecSkipList<TvarL>, SpecSkipList<Val>, SpecSkipList<Pver>,
                     SpecSkipList<FineGrainedFamily<OrecG>>>;
TYPED_TEST_SUITE(SkipListSuite, SkipVariants);

TYPED_TEST(SkipListSuite, BasicSemantics) {
  auto& set = this->set_;
  EXPECT_FALSE(set.Contains(10));
  EXPECT_TRUE(set.Insert(10));
  EXPECT_TRUE(set.Contains(10));
  EXPECT_FALSE(set.Insert(10)) << "duplicate insert must fail";
  EXPECT_TRUE(set.Remove(10));
  EXPECT_FALSE(set.Contains(10));
  EXPECT_FALSE(set.Remove(10)) << "double remove must fail";
}

TYPED_TEST(SkipListSuite, TallTowersInsertAndRemove) {
  auto& set = this->set_;
  // Enough inserts to generate towers above level 2 with overwhelming probability,
  // exercising the ordinary-transaction fall-back paths (§3).
  constexpr std::uint64_t kKeys = 4096;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(set.Insert(k));
  }
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(set.Contains(k));
  }
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(set.Remove(k));
  }
  for (std::uint64_t k = 0; k < kKeys; k += 64) {
    ASSERT_FALSE(set.Contains(k));
  }
}

TYPED_TEST(SkipListSuite, FuzzAgainstReference) {
  FuzzAgainstReference(this->set_, 20000, 512, 4321);
}

TYPED_TEST(SkipListSuite, ConcurrentDisjointInserts) {
  ConcurrentDisjointInserts(this->set_, 8, 2000);
}

TYPED_TEST(SkipListSuite, ConcurrentPartitionedFuzz) {
  ConcurrentPartitionedFuzz(this->set_, 8, 10000, 128);
}

TYPED_TEST(SkipListSuite, ConcurrentSharedKeyAccounting) {
  ConcurrentSharedKeyAccounting(this->set_, 8, 10000, 64);
}

TYPED_TEST(SkipListSuite, ReadersDuringChurn) {
  ReadersDuringChurn(this->set_, 3, 3, 20000, 256);
}

}  // namespace
}  // namespace spectm
