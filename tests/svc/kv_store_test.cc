// Service-level battery for the sharded KV store (src/svc/kv_store.h):
// batched-transaction correctness and conservation under concurrency across
// all four service engine families, plus the deterministic probe rows the
// ISSUE pins — one descriptor per batch (amortization), stripe_skips on
// region-local batches (partitioned counter), and simd_batches on wide batch
// validation (read-log batch kernel).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/svc/driver.h"
#include "src/svc/kv_store.h"
#include "src/tm/config.h"
#include "src/tm/txdesc.h"
#include "src/tm/validate_batch.h"
#include "src/tm/valstrategy.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

using svc::KvStore;

template <typename F>
struct KvStoreFamilyTest : public ::testing::Test {};

using ServiceFamilies =
    ::testing::Types<SvcOrec, SvcOrecPart, SvcVal, SvcSnapshot>;
TYPED_TEST_SUITE(KvStoreFamilyTest, ServiceFamilies);

TYPED_TEST(KvStoreFamilyTest, BatchPutGetScanRoundTrip) {
  using F = TypeParam;
  KvStore<F> store;
  constexpr std::size_t kN = 64;
  std::uint64_t keys[kN], vals[kN], out[kN];
  bool found[kN];
  for (std::size_t i = 0; i < kN; ++i) {
    keys[i] = i * 3;  // stride so keys spread over shards and buckets
    vals[i] = 1000 + i;
  }
  store.BatchPut(keys, vals, kN);

  store.BatchGet(keys, kN, out, found);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_TRUE(found[i]) << "key " << keys[i];
    EXPECT_EQ(out[i], vals[i]);
  }

  // Misses report found=false and leave the value at 0.
  std::uint64_t miss_key = 1;  // not a multiple of 3
  std::uint64_t miss_out = 77;
  bool miss_found = true;
  store.BatchGet(&miss_key, 1, &miss_out, &miss_found);
  EXPECT_FALSE(miss_found);
  EXPECT_EQ(miss_out, 0u);

  // Overwrites replace in place (no duplicate nodes): re-put then re-read.
  for (std::size_t i = 0; i < kN; ++i) {
    vals[i] = 5000 + i;
  }
  store.BatchPut(keys, vals, kN);
  store.BatchGet(keys, kN, out, found);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(out[i], 5000 + i);
  }

  // Scan over [0, 3*kN): exactly the kN stride-3 keys are present.
  std::vector<std::uint64_t> scan_out(kN * 3);
  std::uint64_t sum_direct = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    sum_direct += vals[i];
  }
  EXPECT_EQ(store.BatchScan(0, kN * 3, scan_out.data()), sum_direct);
  EXPECT_EQ(scan_out[0], 5000u);
  EXPECT_EQ(scan_out[1], 0u);
  EXPECT_EQ(scan_out[3], 5001u);
}

TYPED_TEST(KvStoreFamilyTest, BatchUpdateIsReadModifyWrite) {
  using F = TypeParam;
  KvStore<F> store;
  std::uint64_t keys[8], vals[8];
  for (std::size_t i = 0; i < 8; ++i) {
    keys[i] = i;
    vals[i] = 10 * i;
  }
  store.BatchPut(keys, vals, 8);
  std::uint64_t missing = 999;
  std::uint64_t mixed[2] = {keys[3], missing};
  store.BatchUpdate(mixed, 2, [](std::size_t, std::uint64_t old_v, bool f) {
    return f ? old_v + 7 : std::uint64_t{0};
  });
  std::uint64_t v = 0;
  EXPECT_TRUE(store.Get(keys[3], &v));
  EXPECT_EQ(v, 37u);
  EXPECT_FALSE(store.Get(missing, &v));
}

// Conservation: concurrent batched transfers across shards must preserve the
// global balance — the torn-batch detector at service granularity. Each
// transfer batch moves value between key pairs inside ONE transaction, so any
// interleaving that committed half a batch would show up as a changed total.
TYPED_TEST(KvStoreFamilyTest, ConcurrentBatchTransfersConserveBalance) {
  using F = TypeParam;
  constexpr std::uint64_t kAccounts = 256;
  constexpr std::uint64_t kInitial = 1000;
  constexpr int kThreads = 4;
  constexpr int kBatchesPerThread = 150;
  constexpr std::size_t kBatch = 8;

  KvStore<F> store;
  {
    std::vector<std::uint64_t> keys(kAccounts), vals(kAccounts, kInitial);
    for (std::uint64_t k = 0; k < kAccounts; ++k) {
      keys[k] = k;
    }
    store.BatchPut(keys.data(), vals.data(), kAccounts);
  }

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store, t] {
      Xorshift128Plus rng(0xfeedULL + static_cast<std::uint64_t>(t));
      std::uint64_t keys[kBatch];
      for (int b = 0; b < kBatchesPerThread; ++b) {
        // Distinct keys per batch (odd stride over the power-of-two account
        // space is injective): duplicate keys alias one account across array
        // entries, which breaks the pairwise-transfer arithmetic — the
        // last-write-wins aliasing BatchTransact documents.
        const std::uint64_t base = rng.NextBounded(kAccounts);
        const std::uint64_t stride = rng.NextBounded(kAccounts / 2) * 2 + 1;
        for (std::size_t i = 0; i < kBatch; ++i) {
          keys[i] = (base + i * stride) & (kAccounts - 1);
        }
        store.BatchTransact(
            keys, kBatch,
            [](std::uint64_t* vals, const std::vector<bool>& found, std::size_t n) {
              // Pairwise transfers: sum-preserving, underflow-safe, and a
              // function of the values READ (so a stale read would move the
              // wrong amount and break the total).
              for (std::size_t i = 0; i + 1 < n; i += 2) {
                if (!found[i] || !found[i + 1]) {
                  continue;
                }
                const std::uint64_t m = vals[i] < 5 ? vals[i] : 5;
                vals[i] -= m;
                vals[i + 1] += m;
              }
            });
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }

  EXPECT_EQ(store.BatchScan(0, kAccounts), kAccounts * kInitial)
      << "a torn or lost batch changed the global balance";
}

// Amortization: one descriptor activation (Start..Commit attempt) per BATCH,
// not per key — the service API's whole point. Single-threaded, so attempts
// have no abort component and the delta is exact.
TYPED_TEST(KvStoreFamilyTest, BatchAmortizesDescriptorSetup) {
  using F = TypeParam;
  constexpr std::size_t kBatch = 16;
  constexpr std::uint64_t kBatches = 32;
  KvStore<F> store;
  std::uint64_t keys[kBatch], vals[kBatch];
  for (std::size_t i = 0; i < kBatch; ++i) {
    keys[i] = i;
    vals[i] = i + 1;
  }
  store.BatchPut(keys, vals, kBatch);

  TxStats& stats = DescOf<typename F::DomainTag>().stats;
  const std::uint64_t commits_before = stats.commits.load(std::memory_order_relaxed);
  const std::uint64_t aborts_before = stats.aborts.load(std::memory_order_relaxed);
  for (std::uint64_t b = 0; b < kBatches; ++b) {
    store.BatchUpdate(keys, kBatch, [](std::size_t, std::uint64_t old_v, bool) {
      return old_v + 1;
    });
  }
  const std::uint64_t attempts =
      stats.commits.load(std::memory_order_relaxed) - commits_before +
      stats.aborts.load(std::memory_order_relaxed) - aborts_before;
  EXPECT_EQ(attempts, kBatches) << "each batch must be exactly one transaction";
  const double descriptors_per_op =
      static_cast<double>(attempts) / static_cast<double>(kBatches * kBatch);
  EXPECT_LT(descriptors_per_op, 1.0);

  std::uint64_t v = 0;
  ASSERT_TRUE(store.Get(keys[3], &v));
  EXPECT_EQ(v, 4 + kBatches);
}

// Stripe homing: on the val layout (metadata == data word) every transactional
// word a shard publishes lives in pages of that shard's counter stripe.
TEST(KvStoreStripes, ShardAllocationIsStripeHomed) {
  using F = SvcVal;
  KvStore<F> store;  // 8 shards over 4 stripes
  std::vector<std::uint64_t> keys, vals;
  for (std::uint64_t k = 0; k < 512; ++k) {
    keys.push_back(k);
    vals.push_back(k + 1);
  }
  store.BatchPut(keys.data(), vals.data(), keys.size());

  for (std::size_t s = 0; s < store.shards(); ++s) {
    EXPECT_EQ(CounterStripeOf(store.StripeProbeSlot(s)), KvStore<F>::StripeOfShard(s));
  }
  for (std::uint64_t k = 0; k < 512; ++k) {
    F::Slot* slot = store.DebugValueSlotOf(k);
    ASSERT_NE(slot, nullptr);
    EXPECT_EQ(CounterStripeOf(slot), KvStore<F>::StripeOfShard(store.ShardOf(k)))
        << "key " << k;
    EXPECT_EQ(DecodeInt(F::RawRead(slot)), k + 1);
  }
  EXPECT_EQ(store.DebugValueSlotOf(99999), nullptr);
}

// Region-local batches on the partitioned-counter val engine: churn homed to a
// DIFFERENT stripe moves the global commit counter, but the batch's reads all
// live in one shard's stripe, so the stripe vector absorbs every would-be walk.
TEST(KvStoreStripes, RegionLocalBatchSkipsViaStripeCounters) {
  using F = SvcVal;
  using Probe = F::Full::Probe;
  KvStore<F> store;
  std::vector<std::uint64_t> all(1024), vals(1024);
  for (std::uint64_t k = 0; k < 1024; ++k) {
    all[k] = k;
    vals[k] = k + 1;
  }
  store.BatchPut(all.data(), vals.data(), all.size());

  // Collect a batch entirely inside shard 0 (stripe 0) and pick a probe slot
  // homed to a different stripe for the churn.
  std::vector<std::uint64_t> local;
  for (std::uint64_t k = 0; k < 1024 && local.size() < 16; ++k) {
    if (store.ShardOf(k) == 0) {
      local.push_back(k);
    }
  }
  ASSERT_EQ(local.size(), 16u);
  std::size_t churn_shard = 0;
  for (std::size_t s = 0; s < store.shards(); ++s) {
    if (KvStore<F>::StripeOfShard(s) != KvStore<F>::StripeOfShard(0)) {
      churn_shard = s;
      break;
    }
  }
  ASSERT_NE(KvStore<F>::StripeOfShard(churn_shard), KvStore<F>::StripeOfShard(0));
  F::Slot* churn = store.StripeProbeSlot(churn_shard);
  F::SingleWrite(churn, EncodeInt(1));

  Probe::Reset();
  std::uint64_t out[16];
  bool found[16];
  store.BatchGet(local.data(), local.size(), out, found,
                 [&](std::size_t i) {
                   // Mid-batch cross-stripe churn: bumps the global counter
                   // from a stripe the batch never reads.
                   if (i == 7) {
                     F::SingleWrite(churn, EncodeInt(2 + i));
                   }
                 });
  for (std::size_t i = 0; i < local.size(); ++i) {
    ASSERT_TRUE(found[i]);
    EXPECT_EQ(out[i], local[i] + 1);
  }
  EXPECT_GE(Probe::Get().stripe_skips, 1u)
      << "region-local batch reads must be absorbed by the stripe vector";
  EXPECT_EQ(Probe::Get().validation_walks, 0u)
      << "cross-stripe churn must not force a read-set walk";
}

// Wide batch validation on the orec baseline: OrecL's passive local-clock
// protocol revalidates the whole read log as it grows, so a wide BatchGet
// alone drives the gathered batch kernel (simd_batches) — or the scalar body
// when the ISA lacks it.
TEST(KvStoreSimd, WideBatchValidationUsesBatchKernel) {
  using F = SvcOrec;
  using Probe = F::Full::Probe;
  KvStore<F> store;
  constexpr std::size_t kWide = 64;
  std::uint64_t keys[kWide], vals[kWide], out[kWide];
  bool found[kWide];
  for (std::size_t i = 0; i < kWide; ++i) {
    keys[i] = i * 7;
    vals[i] = i;
  }
  store.BatchPut(keys, vals, kWide);

  SetSimdEnabled(SimdAvailable());
  Probe::Reset();
  store.BatchGet(keys, kWide, out, found);
  for (std::size_t i = 0; i < kWide; ++i) {
    ASSERT_TRUE(found[i]);
    EXPECT_EQ(out[i], i);
  }
  if (SimdAvailable()) {
    EXPECT_GT(Probe::Get().simd_batches, 0u)
        << "a 64-key batch read log must reach the 4-entry gather kernel";
  } else {
    EXPECT_GT(Probe::Get().scalar_checks, 0u);
  }
}

// The request driver end-to-end: deterministic replay (same seed, same store
// contents) and region-local mode really staying inside one shard per batch.
TEST(KvStoreDriver, SeededStepStreamIsReplayIdentical) {
  using F = SvcVal;
  svc::DriverConfig cfg;
  cfg.key_space = 1 << 10;
  cfg.batch_size = 8;
  cfg.seed = 1234;
  auto run = [&cfg]() {
    KvStore<F> store;
    svc::RequestDriver<F> driver(store, cfg);
    driver.Prefill();
    for (int i = 0; i < 200; ++i) {
      driver.Step();
    }
    std::uint64_t digest = driver.scan_sink();
    for (std::uint64_t k = 0; k < cfg.key_space; k += 17) {
      std::uint64_t v = 0;
      digest = digest * 1099511628211ULL + (store.Get(k, &v) ? v : 0);
    }
    return digest;
  };
  EXPECT_EQ(run(), run()) << "same seed must replay the identical request stream";
}

TEST(KvStoreDriver, RegionLocalBatchesStayInOneShard) {
  using F = SvcVal;
  KvStore<F> store;
  svc::DriverConfig cfg;
  cfg.key_space = 1 << 10;
  cfg.batch_size = 16;
  cfg.region_local = true;
  svc::RequestDriver<F> driver(store, cfg);
  for (int b = 0; b < 32; ++b) {
    const std::vector<std::uint64_t>& keys = driver.FillKeys();
    const std::size_t shard = store.ShardOf(keys[0]);
    for (std::uint64_t k : keys) {
      EXPECT_EQ(store.ShardOf(k), shard);
    }
  }
}

}  // namespace
}  // namespace spectm
