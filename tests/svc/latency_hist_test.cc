// Percentile exactness for the fixed-bucket log-scale histogram
// (src/svc/latency.h). Everything here is synthetic-value arithmetic — the
// bucket geometry is a pure function, so the tests pin exact landing buckets
// rather than tolerances, and no clock appears anywhere.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/svc/latency.h"

namespace spectm {
namespace svc {
namespace {

using H = LatencyHistogram;

TEST(LatencyHistogram, UnitBucketsAreExactBelowTheSubRange) {
  for (std::uint64_t v = 0; v < H::kSub; ++v) {
    EXPECT_EQ(H::BucketOf(v), v);
    EXPECT_EQ(H::BucketUpperBound(v), v);
  }
}

TEST(LatencyHistogram, BucketGeometryRoundTrips) {
  // Every value maps into a bucket whose bounds contain it, and the bucket's
  // upper bound maps back to the same bucket (the fixed point the percentile
  // query reports).
  for (std::uint64_t v : {0ULL, 1ULL, 31ULL, 32ULL, 33ULL, 63ULL, 64ULL, 100ULL,
                          500ULL, 1023ULL, 1024ULL, 123456ULL, 87654321ULL,
                          (1ULL << 39) + 12345ULL}) {
    const std::size_t idx = H::BucketOf(v);
    EXPECT_LE(v, H::BucketUpperBound(idx)) << "v=" << v;
    EXPECT_EQ(H::BucketOf(H::BucketUpperBound(idx)), idx) << "v=" << v;
    if (idx > 0) {
      EXPECT_GT(v, H::BucketUpperBound(idx - 1)) << "v=" << v;
    }
    // Relative bucket width is bounded by 2^-kSubBits: conservative reporting
    // can overstate a latency by at most ~3%.
    if (v >= H::kSub) {
      EXPECT_LE(static_cast<double>(H::BucketUpperBound(idx)),
                static_cast<double>(v) * (1.0 + 1.0 / H::kSub) + 1.0)
          << "v=" << v;
    }
  }
}

TEST(LatencyHistogram, BucketUpperBoundsAreStrictlyMonotonic) {
  for (std::size_t i = 1; i < H::kBuckets; ++i) {
    EXPECT_GT(H::BucketUpperBound(i), H::BucketUpperBound(i - 1)) << "i=" << i;
  }
}

TEST(LatencyHistogram, EmptyHistogramReportsZero) {
  H h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.ValueAtPercentile(50.0), 0u);
  EXPECT_EQ(h.P999(), 0u);
}

// Uniform 1..1000: the order statistic at percentile p is ceil(10*p), and the
// reported value must be exactly the upper bound of the bucket holding it —
// the "within one bucket" acceptance property, pinned as an equality.
TEST(LatencyHistogram, PercentilesLandInTheOrderStatisticsBucket) {
  H h;
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.Count(), 1000u);
  EXPECT_EQ(h.P50(), H::BucketUpperBound(H::BucketOf(500)));
  EXPECT_EQ(h.P99(), H::BucketUpperBound(H::BucketOf(990)));
  EXPECT_EQ(h.P999(), H::BucketUpperBound(H::BucketOf(999)));
  EXPECT_EQ(h.ValueAtPercentile(100.0), 1000u) << "p100 is the exact max";
  EXPECT_EQ(h.Max(), 1000u);
}

// A bimodal service shape: 990 fast requests, 10 slow outliers. p50 sits in
// the fast mode, p99 exactly at the boundary order statistic (the 990th
// sample = the last fast one), p99.9 deep in the slow mode.
TEST(LatencyHistogram, TailModeOnlySurfacesPastItsMass) {
  H h;
  for (int i = 0; i < 990; ++i) {
    h.Record(100);
  }
  for (int i = 0; i < 10; ++i) {
    h.Record(100000);
  }
  EXPECT_EQ(h.P50(), H::BucketUpperBound(H::BucketOf(100)));
  EXPECT_EQ(h.P99(), H::BucketUpperBound(H::BucketOf(100)));
  EXPECT_EQ(h.P999(), H::BucketUpperBound(H::BucketOf(100000)));
}

TEST(LatencyHistogram, AllSamplesBelowSubRangeGiveExactPercentiles) {
  H h;
  for (std::uint64_t v = 0; v < H::kSub; ++v) {
    h.Record(v);  // unit buckets: percentiles are exact order statistics
  }
  EXPECT_EQ(h.P50(), 15u);   // ceil(0.5 * 32) = 16th smallest = value 15
  EXPECT_EQ(h.P99(), 31u);
}

TEST(LatencyHistogram, MergeIsCountPreservingAndOrderInsensitive) {
  H a, b, all;
  for (std::uint64_t v = 1; v <= 500; ++v) {
    a.Record(v);
    all.Record(v);
  }
  for (std::uint64_t v = 501; v <= 1000; ++v) {
    b.Record(v);
    all.Record(v);
  }
  H merged;
  merged.Merge(b);
  merged.Merge(a);
  EXPECT_EQ(merged.Count(), all.Count());
  EXPECT_EQ(merged.Max(), all.Max());
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    EXPECT_EQ(merged.ValueAtPercentile(p), all.ValueAtPercentile(p)) << "p=" << p;
  }
}

TEST(LatencyHistogram, OutOfRangeSamplesClampIntoTheLastBucket) {
  H h;
  const std::uint64_t huge = 1ULL << 50;  // past kMaxExp coverage
  h.Record(huge);
  h.Record(1);
  EXPECT_EQ(H::BucketOf(huge), H::kBuckets - 1);
  EXPECT_EQ(h.ValueAtPercentile(99.0), H::BucketUpperBound(H::kBuckets - 1))
      << "the percentile saturates at the range ceiling";
  EXPECT_EQ(h.Max(), huge) << "the max stays exact";
}

}  // namespace
}  // namespace svc
}  // namespace spectm
