// Property checks for the bounded Zipfian generator (src/svc/zipf.h): fixed
// seeds give replay-identical streams, frequencies follow rank order with the
// theoretical head mass, theta = 0 degenerates to uniform, and the rank->key
// scatter is a true bijection over the power-of-two key space.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/svc/zipf.h"

namespace spectm {
namespace svc {
namespace {

TEST(Zipfian, FixedSeedStreamsAreReplayIdentical) {
  ZipfianGenerator a(1000, 0.99, 42);
  ZipfianGenerator b(1000, 0.99, 42);
  ZipfianGenerator c(1000, 0.99, 43);
  bool any_diff = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t ra = a.NextRank();
    ASSERT_EQ(ra, b.NextRank()) << "draw " << i;
    any_diff |= ra != c.NextRank();
  }
  EXPECT_TRUE(any_diff) << "a different seed must give a different stream";
}

TEST(Zipfian, RanksStayInBounds) {
  ZipfianGenerator g(37, 0.8, 7);  // deliberately non-power-of-two n
  for (int i = 0; i < 50000; ++i) {
    EXPECT_LT(g.NextRank(), 37u);
  }
}

// Frequency follows rank: the hot head out-draws mid ranks, which out-draw the
// tail, and rank 0's empirical mass matches its theoretical 1/zetan share.
TEST(Zipfian, FrequencyFollowsRankWithTheoreticalHeadMass) {
  constexpr std::uint64_t kN = 100;
  constexpr int kDraws = 200000;
  ZipfianGenerator g(kN, 0.99, 1234);
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[g.NextRank()];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[60]);

  const double zetan = ZipfianGenerator::Zeta(kN, 0.99);
  const double expected_head = static_cast<double>(kDraws) / zetan;
  EXPECT_NEAR(static_cast<double>(counts[0]), expected_head, expected_head * 0.05)
      << "rank 0 mass must match 1/zeta(n) within 5%";

  // The hot-16 head carries the majority of the traffic — the working-set
  // skew the service scenario exists to produce.
  int head = 0;
  for (int r = 0; r < 16; ++r) {
    head += counts[r];
  }
  EXPECT_GT(head, kDraws / 2);
}

TEST(Zipfian, ThetaZeroIsUniform) {
  constexpr std::uint64_t kN = 16;
  constexpr int kDraws = 160000;
  ZipfianGenerator g(kN, 0.0, 99);
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[g.NextRank()];
  }
  const int expected = kDraws / static_cast<int>(kN);
  for (std::uint64_t r = 0; r < kN; ++r) {
    EXPECT_NEAR(counts[r], expected, expected / 5) << "rank " << r;
  }
}

TEST(Zipfian, ZetaMatchesTheHarmonicDefinition) {
  EXPECT_DOUBLE_EQ(ZipfianGenerator::Zeta(3, 0.0), 3.0);
  const double z = ZipfianGenerator::Zeta(4, 0.5);
  const double by_hand = 1.0 + 1.0 / std::sqrt(2.0) + 1.0 / std::sqrt(3.0) + 0.5;
  EXPECT_DOUBLE_EQ(z, by_hand);
}

TEST(ScatterRank, IsABijectionOverThePowerOfTwoKeySpace) {
  constexpr std::uint64_t kSpace = 1024;
  std::vector<bool> seen(kSpace, false);
  for (std::uint64_t rank = 0; rank < kSpace; ++rank) {
    const std::uint64_t key = ScatterRank(rank, kSpace);
    ASSERT_LT(key, kSpace);
    ASSERT_FALSE(seen[key]) << "collision at rank " << rank;
    seen[key] = true;
  }
  // And it genuinely scatters: consecutive hot ranks land far apart.
  EXPECT_NE(ScatterRank(0, kSpace) + 1, ScatterRank(1, kSpace));
}

}  // namespace
}  // namespace svc
}  // namespace spectm
