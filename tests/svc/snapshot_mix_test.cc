// ValSnap read-mostly service mix (the ROADMAP follow-up from PR 9): read-only
// batches routed through the pinned-snapshot family must neither validate nor
// abort under writer churn, and every batch observes one consistent cut.
//
// Two layers: deterministic single-threaded probe sections (churn injected
// INSIDE the batch window through the per-key hook, probe deltas exact) and a
// real two-thread reader/writer mix whose reader-side invariants — zero
// validation walks, zero aborts, intra-batch consistency — are collected in
// the reader thread and asserted after the join. The second layer is what the
// TSan and robustness CI subsets exercise.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/svc/kv_store.h"
#include "src/tm/config.h"
#include "src/tm/txdesc.h"
#include "src/tm/variants.h"

namespace spectm {
namespace {

using F = SvcSnapshot;
using Probe = F::Full::Probe;
using Store = svc::KvStore<F>;

constexpr std::uint64_t kKeys = 256;

void Prefill(Store& store) {
  std::vector<std::uint64_t> keys(kKeys), vals(kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    keys[k] = k;
    vals[k] = 1000 + k;
  }
  store.BatchPut(keys.data(), vals.data(), kKeys);
}

// A read-only batch pinned before mid-batch churn must return the PRE-churn
// value of a key it has not reached yet — served off the version chain
// (version_hops), never by walking (validation_walks == 0), never by aborting.
TEST(SnapshotMix, MidBatchChurnIsInvisibleToThePinnedBatch) {
  Store store;
  Prefill(store);
  std::uint64_t keys[16];
  for (std::size_t i = 0; i < 16; ++i) {
    keys[i] = i * 5;
  }
  F::Slot* victim = store.DebugValueSlotOf(keys[12]);
  ASSERT_NE(victim, nullptr);

  TxStats& stats = DescOf<F::DomainTag>().stats;
  const std::uint64_t aborts_before = stats.aborts.load(std::memory_order_relaxed);
  Probe::Reset();
  std::uint64_t out[16];
  bool found[16];
  store.BatchGet(keys, 16, out, found, [&](std::size_t i) {
    if (i == 2) {
      // Overwrite a key the batch reads LATER: the displaced value must be
      // threaded onto the chain and served to this still-pinned batch.
      F::SingleWrite(victim, EncodeInt(999999));
    }
  });

  for (std::size_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(found[i]);
  }
  EXPECT_EQ(out[12], 1000 + keys[12]) << "snapshot must see the pre-churn value";
  std::uint64_t now = 0;
  ASSERT_TRUE(store.Get(keys[12], &now));
  EXPECT_EQ(now, 999999u) << "a fresh batch sees the churned value";

  const Probe::Counters& c = Probe::Get();
  EXPECT_GT(c.snapshot_reads, 0u);
  EXPECT_GE(c.version_hops, 1u) << "the churned key must be served past the head";
  EXPECT_EQ(c.validation_walks, 0u);
  EXPECT_EQ(stats.aborts.load(std::memory_order_relaxed), aborts_before)
      << "read-only snapshot batches never abort";
}

// Duplicate keys inside one batch bracket the churn: both reads must agree —
// the one-consistent-cut property at batch granularity.
TEST(SnapshotMix, DuplicateKeyReadsAgreeAcrossChurn) {
  Store store;
  Prefill(store);
  const std::uint64_t hot = 40;
  F::Slot* victim = store.DebugValueSlotOf(hot);
  ASSERT_NE(victim, nullptr);
  std::uint64_t keys[3] = {hot, 7, hot};
  std::uint64_t out[3];
  bool found[3];
  Probe::Reset();
  store.BatchGet(keys, 3, out, found, [&](std::size_t i) {
    if (i == 0) {
      F::SingleWrite(victim, EncodeInt(123456));
    }
  });
  ASSERT_TRUE(found[0] && found[2]);
  EXPECT_EQ(out[0], out[2]) << "one batch, one cut";
  EXPECT_EQ(out[0], 1000 + hot);
  EXPECT_EQ(Probe::Get().validation_walks, 0u);
}

// BatchScan under the same treatment: the range sum is the pre-churn sum.
TEST(SnapshotMix, ScanSumsThePinnedCut) {
  Store store;
  Prefill(store);
  constexpr std::uint64_t kLo = 32, kN = 64;
  std::uint64_t expected = 0;
  for (std::uint64_t k = kLo; k < kLo + kN; ++k) {
    expected += 1000 + k;
  }
  F::Slot* victim = store.DebugValueSlotOf(kLo + kN - 1);
  ASSERT_NE(victim, nullptr);
  Probe::Reset();
  const std::uint64_t sum =
      store.BatchScan(kLo, kN, nullptr, nullptr, [&](std::size_t i) {
        if (i == 1) {
          F::SingleWrite(victim, EncodeInt(5000000));
        }
      });
  EXPECT_EQ(sum, expected);
  EXPECT_EQ(Probe::Get().validation_walks, 0u);
  EXPECT_GT(Probe::Get().snapshot_reads, 0u);
}

// The real mix: one writer churning batched puts, one reader running BatchGet
// and BatchScan. Reader-side probe and stats deltas are thread-local, so the
// reader measures exactly its own work.
//
// The writer churns the UPPER half of the key space while the reader batches
// over the lower half: the churn bumps the shared commit clock and publishes
// versions at full speed — which under every precise family forces read-set
// walks — yet can never overwrite one of the reader's own reads, so the
// zero-walk/zero-abort guarantee holds unconditionally. (Overwriting the
// reader's keys hard enough to overflow a bounded chain, kMaxVersions deep,
// is the engine's one documented refresh-walk/abort path — val_full.h
// RefreshSnapshot — and is exercised by the overlapping-churn test below
// without these assertions.)
TEST(SnapshotMix, ReadOnlyBatchesNeverWalkNorAbortUnderWriterChurn) {
  Store store;
  Prefill(store);
  std::atomic<bool> stop{false};
  std::atomic<bool> reader_done{false};
  constexpr std::uint64_t kReadHalf = kKeys / 2;

  std::thread writer([&store, &stop] {
    Xorshift128Plus rng(0xb817e5ULL);
    std::uint64_t keys[8], vals[8];
    while (!stop.load(std::memory_order_relaxed)) {
      for (std::size_t i = 0; i < 8; ++i) {
        keys[i] = kReadHalf + rng.NextBounded(kKeys - kReadHalf);
        vals[i] = rng.Next() >> 8;
      }
      store.BatchPut(keys, vals, 8);
    }
  });

  std::uint64_t walks_delta = 0, aborts_delta = 0, snapshot_reads_delta = 0;
  bool batches_consistent = true;
  std::thread reader([&] {
    TxStats& stats = DescOf<F::DomainTag>().stats;
    Probe::Reset();
    const std::uint64_t aborts_before = stats.aborts.load(std::memory_order_relaxed);
    Xorshift128Plus rng(0x5ca1ab1eULL);
    std::uint64_t keys[16], out[16];
    bool found[16];
    for (int b = 0; b < 400; ++b) {
      const std::uint64_t dup = rng.NextBounded(kReadHalf);
      for (std::size_t i = 0; i < 16; ++i) {
        keys[i] = rng.NextBounded(kReadHalf);
      }
      keys[0] = dup;
      keys[15] = dup;  // intra-batch consistency witness
      store.BatchGet(keys, 16, out, found);
      if (out[0] != out[15]) {
        batches_consistent = false;
      }
      if (b % 8 == 0) {
        store.BatchScan(0, 64);
      }
    }
    walks_delta = Probe::Get().validation_walks;
    snapshot_reads_delta = Probe::Get().snapshot_reads;
    aborts_delta = stats.aborts.load(std::memory_order_relaxed) - aborts_before;
    reader_done.store(true, std::memory_order_release);
  });

  reader.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  EXPECT_TRUE(reader_done.load(std::memory_order_acquire));
  EXPECT_TRUE(batches_consistent) << "a batch observed two different cuts";
  EXPECT_EQ(walks_delta, 0u) << "snapshot reads must never validate";
  EXPECT_EQ(aborts_delta, 0u) << "read-only batches must never abort";
  EXPECT_GT(snapshot_reads_delta, 0u);

  // The store still answers coherently after the churn.
  std::uint64_t v = 0;
  EXPECT_TRUE(store.Get(0, &v));
}

// Overlapping churn: the writer hammers the very keys the reader batches
// over, which can overflow bounded version chains and drive the engine's
// refresh path (a walk, possibly an abort-and-retry inside Atomically). The
// service-level guarantee that SURVIVES that pressure is consistency: every
// committed batch is one cut (duplicate keys agree), and Atomically retries
// hide any refresh failure from the caller. This is the TSan workhorse — full
// reader/writer overlap on data, chains, and the epoch manager.
TEST(SnapshotMix, OverlappingChurnKeepsEveryBatchOneCut) {
  Store store;
  Prefill(store);
  std::atomic<bool> stop{false};

  std::thread writer([&store, &stop] {
    Xorshift128Plus rng(0xd00dULL);
    std::uint64_t keys[8], vals[8];
    while (!stop.load(std::memory_order_relaxed)) {
      for (std::size_t i = 0; i < 8; ++i) {
        keys[i] = rng.NextBounded(kKeys);
        vals[i] = rng.Next() >> 8;
      }
      store.BatchPut(keys, vals, 8);
    }
  });

  bool batches_consistent = true;
  std::uint64_t snapshot_reads_delta = 0;
  std::thread reader([&] {
    Probe::Reset();
    Xorshift128Plus rng(0xacedULL);
    std::uint64_t keys[16], out[16];
    bool found[16];
    for (int b = 0; b < 300; ++b) {
      const std::uint64_t dup = rng.NextBounded(kKeys);
      for (std::size_t i = 0; i < 16; ++i) {
        keys[i] = rng.NextBounded(kKeys);
      }
      keys[0] = dup;
      keys[15] = dup;
      store.BatchGet(keys, 16, out, found);
      if (out[0] != out[15]) {
        batches_consistent = false;
      }
    }
    snapshot_reads_delta = Probe::Get().snapshot_reads;
  });

  reader.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  EXPECT_TRUE(batches_consistent)
      << "a committed batch observed two different cuts under direct conflict";
  EXPECT_GT(snapshot_reads_delta, 0u);
}

}  // namespace
}  // namespace spectm
