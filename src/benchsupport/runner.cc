#include "src/benchsupport/runner.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "src/common/cacheline.h"

namespace spectm {
namespace {

void PinToCpu(int index) {
#if defined(__linux__)
  const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(index) % cpus, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);  // best effort
#else
  (void)index;
#endif
}

}  // namespace

ThroughputResult RunThroughput(int threads, int duration_ms, const WorkerBody& body) {
  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::uint64_t> ops(static_cast<std::size_t>(threads), 0);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));

  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      PinToCpu(t);
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) {
        CpuRelax();
      }
      ops[static_cast<std::size_t>(t)] = body(t, stop);
    });
  }

  while (ready.load(std::memory_order_acquire) != threads) {
    CpuRelax();
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) {
    w.join();
  }
  const auto end = std::chrono::steady_clock::now();

  ThroughputResult r;
  r.total_ops = std::accumulate(ops.begin(), ops.end(), std::uint64_t{0});
  r.duration_s = std::chrono::duration<double>(end - start).count();
  r.ops_per_sec = r.duration_s > 0 ? static_cast<double>(r.total_ops) / r.duration_s : 0;
  return r;
}

double AggregateRuns(std::vector<double> samples) {
  if (samples.empty()) {
    return 0.0;
  }
  if (samples.size() >= 3) {
    std::sort(samples.begin(), samples.end());
    samples.erase(samples.begin());  // lowest
    samples.pop_back();              // highest
  }
  return std::accumulate(samples.begin(), samples.end(), 0.0) /
         static_cast<double>(samples.size());
}

namespace {
int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  const int parsed = std::atoi(v);
  return parsed > 0 ? parsed : fallback;
}
}  // namespace

int BenchRuns(int default_runs) { return EnvInt("SPECTM_BENCH_RUNS", default_runs); }
int BenchDurationMs(int default_ms) { return EnvInt("SPECTM_BENCH_MS", default_ms); }

std::string JsonPathFromArgs(int argc, char** argv, const std::string& default_path) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      return argv[i + 1];
    }
    constexpr const char kPrefix[] = "--json=";
    if (arg.rfind(kPrefix, 0) == 0) {
      return arg.substr(sizeof(kPrefix) - 1);
    }
  }
  if (const char* env = std::getenv("SPECTM_BENCH_JSON"); env != nullptr && *env != '\0') {
    return env;
  }
  return default_path;
}

}  // namespace spectm
