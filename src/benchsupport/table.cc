#include "src/benchsupport/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace spectm {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      // Left-align the first (label) column, right-align numeric columns.
      const auto pad = widths[c] - std::min(widths[c], cells[c].size());
      if (c == 0) {
        out << cells[c] << std::string(pad, ' ');
      } else {
        out << std::string(pad, ' ') << cells[c];
      }
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

}  // namespace spectm
