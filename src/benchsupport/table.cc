#include "src/benchsupport/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace spectm {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      // Left-align the first (label) column, right-align numeric columns.
      const auto pad = widths[c] - std::min(widths[c], cells[c].size());
      if (c == 0) {
        out << cells[c] << std::string(pad, ' ');
      } else {
        out << std::string(pad, ' ') << cells[c];
      }
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

JsonReport::JsonReport(std::string bench_name) : bench_name_(std::move(bench_name)) {}

void JsonReport::Add(BenchRecord record) { records_.push_back(std::move(record)); }

std::string JsonReport::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Shortest round-trippable double formatting (%.17g is exact but noisy; %.12g is
// plenty for throughput numbers and keeps the files diffable).
std::string JsonNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

std::string JsonReport::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"schema_version\": 1,\n  \"bench\": \"" << Escape(bench_name_)
      << "\",\n  \"results\": [";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const BenchRecord& r = records_[i];
    out << (i == 0 ? "" : ",") << "\n    {"
        << "\"variant\": \"" << Escape(r.variant) << "\", "
        << "\"clock\": \"" << Escape(r.clock) << "\", ";
    if (!r.workload.empty()) {
      out << "\"workload\": \"" << Escape(r.workload) << "\", ";
    }
    if (!r.strategy.empty()) {
      out << "\"strategy\": \"" << Escape(r.strategy) << "\", ";
    }
    out << "\"threads\": " << r.threads << ", "
        << "\"lookup_pct\": " << r.lookup_pct << ", "
        << "\"ops_per_sec\": " << JsonNum(r.ops_per_sec) << ", "
        << "\"abort_rate\": " << JsonNum(r.abort_rate) << ", "
        << "\"commits\": " << r.commits << ", "
        << "\"aborts\": " << r.aborts << ", "
        << "\"duration_s\": " << JsonNum(r.duration_s);
    if (r.has_probes) {
      out << ", \"counter_skips\": " << r.counter_skips
          << ", \"bloom_skips\": " << r.bloom_skips
          << ", \"validation_walks\": " << r.validation_walks
          << ", \"strategy_switches\": " << r.strategy_switches;
    }
    if (r.has_layout) {
      out << ", \"layout\": \"" << Escape(r.layout) << "\""
          << ", \"simd\": \"" << Escape(r.simd) << "\""
          << ", \"chain_len\": " << r.chain_len
          << ", \"scan_width\": " << r.scan_width
          << ", \"simd_batches\": " << r.simd_batches
          << ", \"scalar_checks\": " << r.scalar_checks
          << ", \"wset_bloom_misses\": " << r.wset_bloom_misses
          << ", \"ring_window_fails\": " << r.ring_window_fails
          << ", \"ring_stale_fails\": " << r.ring_stale_fails
          << ", \"ring_intersect_fails\": " << r.ring_intersect_fails;
    }
    if (r.has_stripes) {
      out << ", \"stripe_skips\": " << r.stripe_skips
          << ", \"stripe_bumps\": " << r.stripe_bumps
          << ", \"cross_stripe_walks\": " << r.cross_stripe_walks;
    }
    if (r.has_cm) {
      out << ", \"escalations\": " << r.escalations
          << ", \"serial_commits\": " << r.serial_commits
          << ", \"max_abort_streak\": " << r.max_abort_streak
          << ", \"backoff_spins\": " << r.backoff_spins;
    }
    if (r.has_health) {
      out << ", \"health_samples\": " << r.health_samples
          << ", \"health_storms\": " << r.health_storms
          << ", \"degrade_enters\": " << r.degrade_enters
          << ", \"degrade_exits\": " << r.degrade_exits
          << ", \"throttled_escalations\": " << r.throttled_escalations;
    }
    if (r.has_sched) {
      out << ", \"explored_schedules\": " << r.explored_schedules
          << ", \"preemption_bound\": " << r.preemption_bound
          << ", \"canary_found\": " << r.canary_found;
    }
    if (r.has_mvcc) {
      out << ", \"snapshot_reads\": " << r.snapshot_reads
          << ", \"version_hops\": " << r.version_hops
          << ", \"versions_retired\": " << r.versions_retired
          << ", \"chain_splices\": " << r.chain_splices
          << ", \"snapshot_probe_aborts\": " << r.snapshot_probe_aborts;
    }
    if (r.has_svc) {
      out << ", \"batch_size\": " << r.batch_size
          << ", \"zipf_theta\": " << JsonNum(r.zipf_theta)
          << ", \"batches\": " << r.batches
          << ", \"descriptors_per_op\": " << JsonNum(r.descriptors_per_op)
          << ", \"p50\": " << r.p50
          << ", \"p99\": " << r.p99
          << ", \"p999\": " << r.p999;
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

bool JsonReport::WriteFile(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "JsonReport: cannot open %s for writing\n", path.c_str());
    return false;
  }
  f << ToJson();
  f.flush();
  if (!f) {
    std::fprintf(stderr, "JsonReport: write to %s failed\n", path.c_str());
    return false;
  }
  std::fprintf(stdout, "wrote %s (%zu records)\n", path.c_str(), records_.size());
  return true;
}

}  // namespace spectm
