// Integer-set workload generation (§4.4).
//
// "threads performing a random mix of lookups, insertions and removals. For each of
// the operations, threads pick a key uniformly at random from a predefined range...
// the set is initialized by inserting half of the elements from the key range. In
// order to keep the size of the set roughly constant, the ratio of insert and remove
// operations is equal."
#ifndef SPECTM_BENCHSUPPORT_WORKLOAD_H_
#define SPECTM_BENCHSUPPORT_WORKLOAD_H_

#include <cstdint>

#include "src/common/rng.h"

namespace spectm {

struct WorkloadConfig {
  std::uint64_t key_range = 65536;  // paper: keys in 0..65535
  int lookup_pct = 90;              // remainder split equally insert/remove
  std::uint64_t seed = 0x5eed;      // deterministic per-run base seed
};

enum class SetOp { kLookup, kInsert, kRemove };

inline SetOp PickOp(Xorshift128Plus& rng, int lookup_pct) {
  const std::uint32_t p = rng.NextPercent();
  if (p < static_cast<std::uint32_t>(lookup_pct)) {
    return SetOp::kLookup;
  }
  const std::uint32_t update = p - static_cast<std::uint32_t>(lookup_pct);
  return (update % 2 == 0) ? SetOp::kInsert : SetOp::kRemove;
}

inline std::uint64_t PickKey(Xorshift128Plus& rng, std::uint64_t key_range) {
  return rng.NextBounded(key_range);
}

// Pre-fills `set` (anything with bool Insert(std::uint64_t)) to roughly half the key
// range, deterministically for a given seed.
template <typename Set>
void PrefillHalf(Set& set, const WorkloadConfig& cfg) {
  Xorshift128Plus rng(cfg.seed ^ 0xf111ULL);
  for (std::uint64_t k = 0; k < cfg.key_range; ++k) {
    if ((rng.Next() & 1) == 0) {
      set.Insert(k);
    }
  }
}

}  // namespace spectm

#endif  // SPECTM_BENCHSUPPORT_WORKLOAD_H_
