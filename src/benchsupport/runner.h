// Multi-threaded throughput measurement harness (§4.4 experimental method).
//
// Threads are pinned round-robin to CPUs (best effort), released together through a
// spin barrier, run the workload body until the stop flag rises, and report per-
// thread operation counts. Repeated runs are aggregated with the paper's statistic:
// "the mean of 6 runs with the lowest and the highest discarded".
#ifndef SPECTM_BENCHSUPPORT_RUNNER_H_
#define SPECTM_BENCHSUPPORT_RUNNER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace spectm {

struct ThroughputResult {
  double ops_per_sec = 0.0;
  std::uint64_t total_ops = 0;
  double duration_s = 0.0;
};

// body(thread_index, stop) runs the workload loop and returns the number of
// operations completed by that thread.
using WorkerBody = std::function<std::uint64_t(int, const std::atomic<bool>&)>;

ThroughputResult RunThroughput(int threads, int duration_ms, const WorkerBody& body);

// Paper statistic: mean after discarding min and max (requires >= 3 samples;
// otherwise plain mean).
double AggregateRuns(std::vector<double> samples);

// Number of repetitions / per-run duration, overridable via SPECTM_BENCH_RUNS and
// SPECTM_BENCH_MS for quick CI passes versus full paper-style runs.
int BenchRuns(int default_runs = 6);
int BenchDurationMs(int default_ms = 400);

// Parses the benchmark CLI for the JSON output path: `--json <path>`, `--json=path`,
// or the SPECTM_BENCH_JSON environment variable (flag wins). Returns `default_path`
// (possibly empty = "don't write JSON") when none is given. Unrelated arguments are
// ignored so benches can grow flags independently.
std::string JsonPathFromArgs(int argc, char** argv, const std::string& default_path = "");

}  // namespace spectm

#endif  // SPECTM_BENCHSUPPORT_RUNNER_H_
