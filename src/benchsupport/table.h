// Aligned text-table printer for the benchmark binaries: each figure bench prints the
// same series the paper plots, as rows of a labeled table.
#ifndef SPECTM_BENCHSUPPORT_TABLE_H_
#define SPECTM_BENCHSUPPORT_TABLE_H_

#include <string>
#include <vector>

namespace spectm {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);

  // Renders with per-column alignment and a separator under the header.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace spectm

#endif  // SPECTM_BENCHSUPPORT_TABLE_H_
