// Result reporting for the benchmark binaries: an aligned text-table printer (each
// figure bench prints the same series the paper plots) and a machine-readable JSON
// emitter so runs are comparable across commits (BENCH_*.json trajectory files).
#ifndef SPECTM_BENCHSUPPORT_TABLE_H_
#define SPECTM_BENCHSUPPORT_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace spectm {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);

  // Renders with per-column alignment and a separator under the header.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// One measurement cell of a benchmark, as written to the JSON report. See
// bench/README.md for the on-disk schema. The strategy/workload/probe fields are
// optional extensions (bench/abl_adaptive_val); they are omitted from the JSON
// when unset so earlier benches' files are byte-stable.
struct BenchRecord {
  std::string variant;        // TM family under test, e.g. "orec-short"
  std::string clock;          // clock policy, e.g. "gv4" / "naive" / "local"
  int threads = 0;            // worker thread count
  int lookup_pct = -1;        // workload mix; -1 when not applicable
  double ops_per_sec = 0.0;   // aggregated throughput (paper statistic)
  double abort_rate = 0.0;    // aborts / (commits + aborts) over the whole cell
  std::uint64_t commits = 0;  // total committed transactions over the cell's runs
  std::uint64_t aborts = 0;   // total aborted transactions over the cell's runs
  double duration_s = 0.0;    // total measured wall time across the cell's runs

  std::string workload;   // e.g. "read-heavy" / "write-heavy" / "phase-shift"
  std::string strategy;   // validation strategy: fixed name or "adaptive"
  bool has_probes = false;              // when true, the probe fields are emitted
  std::uint64_t counter_skips = 0;      // ValProbe: walks avoided by stable counter
  std::uint64_t bloom_skips = 0;        // ValProbe: walks avoided by ring blooms
  std::uint64_t validation_walks = 0;   // ValProbe: full read-set walks
  std::uint64_t strategy_switches = 0;  // ValProbe: strategy transitions observed

  // Metadata-layout sweep extensions (bench/abl_readset_layout): emitted only
  // when has_layout is set, so every earlier BENCH_*.json stays byte-stable.
  bool has_layout = false;
  std::string layout;        // orec-table indexing: "hashed" / "striped"
  std::string simd;          // validation body the cell ran: "simd" / "scalar"
  int chain_len = 0;         // expected hash-chain length (0 when n/a)
  int scan_width = 0;        // btree range-scan width (0 when n/a)
  std::uint64_t simd_batches = 0;       // ValProbe: 4-entry gather iterations
  std::uint64_t scalar_checks = 0;      // ValProbe: scalar-path entry checks
  std::uint64_t wset_bloom_misses = 0;  // WriteSet: lookups killed by the bloom
  std::uint64_t ring_window_fails = 0;     // WriterRing: range wider than probe cap
  std::uint64_t ring_stale_fails = 0;      // WriterRing: unpublished/recycled tag
  std::uint64_t ring_intersect_fails = 0;  // WriterRing: bloom hit (saturation)

  // Partitioned-NOrec extensions (abl_readset_layout scan rows): emitted only
  // when has_stripes is set, so earlier BENCH_*.json files stay byte-stable.
  bool has_stripes = false;
  std::uint64_t stripe_skips = 0;       // ValProbe: walks avoided by stable stripes
  std::uint64_t stripe_bumps = 0;       // ValProbe: writer-side stripe-counter bumps
  std::uint64_t cross_stripe_walks = 0; // ValProbe: kStripe walks no skip absorbed

  // Contention-manager extensions (abl_adaptive_val pathological section):
  // emitted only when has_cm is set, so earlier BENCH_*.json stay byte-stable.
  bool has_cm = false;
  std::uint64_t escalations = 0;       // CmProbe: serial-mode entries
  std::uint64_t serial_commits = 0;    // CmProbe: commits under the token
  std::uint64_t max_abort_streak = 0;  // worst consecutive-abort streak in cell
  std::uint64_t backoff_spins = 0;     // CmProbe: phase-1 spins actually waited

  // Health-watchdog extensions (SPECTM_HEALTH builds of the pathological
  // section): emitted only when has_health is set, so every BENCH_*.json
  // produced by a watchdog-less build stays byte-stable.
  bool has_health = false;
  std::uint64_t health_samples = 0;         // HealthProbe: windows closed
  std::uint64_t health_storms = 0;          // HealthProbe: abort-storm windows
  std::uint64_t degrade_enters = 0;         // HealthProbe: entries into degraded mode
  std::uint64_t degrade_exits = 0;          // HealthProbe: hysteretic recoveries
  std::uint64_t throttled_escalations = 0;  // HealthProbe: escalations declined

  // Scheduler-exploration extensions (SPECTM_SCHED runs reporting systematic
  // interleaving coverage): emitted only when has_sched is set, so every
  // BENCH_*.json produced by a scheduler-less build stays byte-stable.
  bool has_sched = false;
  std::uint64_t explored_schedules = 0;  // Explorer: schedules executed
  std::uint64_t preemption_bound = 0;    // Explorer: bound the walk ran under
  std::uint64_t canary_found = 0;        // planted-bug schedules surfaced

  // MVCC snapshot extensions (abl_readset_layout snapshot rows): emitted only
  // when has_mvcc is set, so every BENCH_*.json from a pre-MVCC build stays
  // byte-stable.
  bool has_mvcc = false;
  std::uint64_t snapshot_reads = 0;    // ValProbe: chain reads by pinned RO txs
  std::uint64_t version_hops = 0;      // ValProbe: nodes traversed past the head
  std::uint64_t versions_retired = 0;  // ValProbe: nodes unlinked by chain trims
  std::uint64_t chain_splices = 0;     // ValProbe: chain truncation operations
  std::uint64_t snapshot_probe_aborts = 0;  // aborts in the deterministic
                                            // pinned-scan probe pass (must be 0)

  // KV-service extensions (bench/svc_kv batch-request rows): emitted only when
  // has_svc is set, so every BENCH_*.json from a pre-service build stays
  // byte-stable.
  bool has_svc = false;
  int batch_size = 0;            // keys per batch transaction
  double zipf_theta = 0.0;       // hot-key skew of the request stream
  std::uint64_t batches = 0;     // batch transactions attempted (commits+aborts)
  double descriptors_per_op = 0.0;  // attempts / keys touched; < 1 = amortized
  std::uint64_t p50 = 0;         // batch latency percentiles, cycle units
  std::uint64_t p99 = 0;         // (LatencyHistogram bucket upper bounds)
  std::uint64_t p999 = 0;
};

// Collects BenchRecords and renders them as a JSON document:
//   {"schema_version":1, "bench":"<name>", "results":[{...}, ...]}
// Writing is atomic enough for CI artifact collection (temp file + rename is
// overkill for single-writer benches; a plain truncate-write suffices).
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name);

  void Add(BenchRecord record);

  bool Empty() const { return records_.empty(); }
  const std::string& bench_name() const { return bench_name_; }

  std::string ToJson() const;

  // Writes ToJson() to `path`; returns false (and prints to stderr) on I/O failure.
  bool WriteFile(const std::string& path) const;

  // JSON string escaping (quotes, backslashes, control characters).
  static std::string Escape(const std::string& s);

 private:
  std::string bench_name_;
  std::vector<BenchRecord> records_;
};

}  // namespace spectm

#endif  // SPECTM_BENCHSUPPORT_TABLE_H_
