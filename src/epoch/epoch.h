// Epoch-based memory reclamation (Fraser, "Practical lock freedom", 2003).
//
// §4.1: "We use a conventional epoch-based system for memory management, based on that
// described by Fraser. This mechanism ensures that a location is not deallocated by
// one thread while it is being accessed transactionally by another thread."
//
// Scheme: a global epoch counter advances only when every thread currently inside a
// critical region has observed the current epoch. An object retired in epoch e may be
// freed once the global epoch reaches e + 2: at that point every thread that could
// hold a reference (i.e. entered during epoch e or earlier) has exited its region.
//
// The reclaimer also underpins the `val` layout's value-based validation: node
// pointers satisfy the paper's "non-re-use" property (§2.4, case 3) precisely because
// a node's address cannot be recycled while any concurrent operation might still
// compare against it.
//
// Managers are instantiable (tests create private ones); a process-wide instance is
// available via GlobalEpochManager().
#ifndef SPECTM_EPOCH_EPOCH_H_
#define SPECTM_EPOCH_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/cacheline.h"

namespace spectm {

class EpochManager {
 public:
  static constexpr int kMaxThreads = 256;

  EpochManager();
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // RAII critical region. Operations that read or write shared nodes must hold a
  // Guard for their whole duration; Retire may only be called under a Guard.
  // Guards nest: an inner Guard on a manager the thread already occupies is a
  // counter bump, and only the outermost Exit retracts the activity word (the
  // MVCC retire paths run under possibly-already-held guards).
  class Guard {
   public:
    explicit Guard(EpochManager& mgr) : mgr_(mgr) { mgr_.Enter(); }
    ~Guard() { mgr_.Exit(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochManager& mgr_;
  };

  // Nullable Guard: an empty slot until Acquire(), released at destruction or
  // by an explicit Release(). Same nesting semantics as Guard. Exists because
  // val-engine transactions hold a guard only in snapshot mode, and a
  // disengaged std::optional<Guard> payload trips GCC's maybe-uninitialized
  // analysis in every non-snapshot instantiation.
  class GuardSlot {
   public:
    GuardSlot() = default;
    ~GuardSlot() { Release(); }
    GuardSlot(const GuardSlot&) = delete;
    GuardSlot& operator=(const GuardSlot&) = delete;

    void Acquire(EpochManager& mgr) {
      if (mgr_ == nullptr) {
        mgr.Enter();
        mgr_ = &mgr;
      }
    }

    void Release() {
      if (mgr_ != nullptr) {
        mgr_->Exit();
        mgr_ = nullptr;
      }
    }

   private:
    EpochManager* mgr_ = nullptr;
  };

  // Defers destruction of p until no concurrent critical region can reference it.
  void Retire(void* p, void (*deleter)(void*));

  template <typename T>
  void Retire(T* p) {
    Retire(static_cast<void*>(p), [](void* q) { delete static_cast<T*>(q); });
  }

  // --- Snapshot pins (MVCC, src/tm/mvcc.h) ------------------------------------------
  //
  // A read-only snapshot transaction publishes the commit-clock value it reads
  // at, and version-chain splicing truncates only nodes whose stamp is <= the
  // minimum published pin (the "done stamp"). Publication is two-step so the
  // scan can never race a pin into premature reclamation: BeginSnapshotPin()
  // marks intent BEFORE the clock is sampled, SetSnapshotPin() fills in the
  // sampled value, and SnapshotDoneStamp() returns 0 (reclaim nothing) while
  // any thread's pin is still in the intent state. docs/VALIDATION.md §10
  // carries the ordering argument.

  static constexpr std::uint64_t kNoSnapshot = ~std::uint64_t{0};
  static constexpr std::uint64_t kPinPending = ~std::uint64_t{0} - 1;

  void BeginSnapshotPin();               // pin := kPinPending (intent, pre-sample)
  void SetSnapshotPin(std::uint64_t s);  // pin := s (the sampled clock value)
  void UnpinSnapshot();                  // pin := kNoSnapshot

  // min(counter_now, every published pin); 0 while any pin is mid-publication.
  // `counter_now` must be sampled from the commit clock BEFORE the call.
  std::uint64_t SnapshotDoneStamp(std::uint64_t counter_now) const;

  // --- Introspection / test support -------------------------------------------------

  std::uint64_t GlobalEpoch() const { return global_epoch_->load(std::memory_order_acquire); }

  // Number of objects retired by all threads but not yet freed.
  std::size_t PendingCount() const;

  // Total objects freed so far.
  std::uint64_t FreedCount() const { return freed_count_.load(std::memory_order_relaxed); }

  // Attempts to advance epochs and reclaim everything possible. Only meaningful when
  // callers know no guard is active (e.g. single-threaded test teardown); with active
  // guards it simply reclaims as much as is safe.
  void ReclaimAllForTesting();

 private:
  struct RetiredObject {
    void* ptr;
    void (*deleter)(void*);
  };

  // One limbo bag per epoch residue class (mod 3); a bag holds objects retired during
  // `epoch` and becomes freeable when the global epoch reaches epoch + 2.
  struct LimboBag {
    std::uint64_t epoch = 0;
    std::vector<RetiredObject> objects;
  };

  struct alignas(kCacheLineSize) ThreadState {
    // (local_epoch << 1) | active. Written by the owner, scanned by advancers.
    std::atomic<std::uint64_t> word{0};
    std::atomic<bool> used{false};
    // Pinned snapshot stamp (kNoSnapshot when idle, kPinPending mid-publish).
    // Written by the owner, scanned by SnapshotDoneStamp.
    std::atomic<std::uint64_t> pin{kNoSnapshot};
    // Owner-only Guard nesting depth; the activity bit in `word` is published
    // on 0 -> 1 and retracted on 1 -> 0.
    std::uint64_t guard_depth = 0;
    LimboBag bags[3];
    std::uint64_t retires_since_scan = 0;
  };

  void Enter();
  void Exit();
  ThreadState* StateForCurrentThread();
  void TryAdvanceAndReclaim(ThreadState* ts);
  void FlushFreeableBags(ThreadState* ts, std::uint64_t global);
  static void FreeBag(LimboBag* bag, std::atomic<std::uint64_t>* freed_counter);
  void AbsorbOrphans(std::uint64_t global);

  // Called by the thread-local cache when a thread exits: moves its limbo objects to
  // the orphan list and frees its slot.
  void ReleaseThreadState(ThreadState* ts);

  friend struct EpochThreadCache;

  CacheAligned<std::atomic<std::uint64_t>> global_epoch_{};
  std::atomic<std::uint64_t> freed_count_{0};
  ThreadState threads_[kMaxThreads];

  // Limbo objects from exited threads, protected by a mutex (cold path only).
  struct Orphans;
  Orphans* orphans_;

  const std::uint64_t instance_id_;

  static constexpr std::uint64_t kScanInterval = 64;  // retires between advance scans
};

// Process-wide manager used by the default data-structure instantiations.
EpochManager& GlobalEpochManager();

}  // namespace spectm

#endif  // SPECTM_EPOCH_EPOCH_H_
