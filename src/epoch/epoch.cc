#include "src/epoch/epoch.h"

#include <cassert>
#include <mutex>
#include <unordered_map>

#include "src/common/failpoint.h"

namespace spectm {
namespace {

// Registry of live managers so that thread-exit cleanup never touches a destroyed
// manager. All accesses are cold (manager construction/destruction, thread exit).
struct LiveManagers {
  std::mutex mu;
  std::unordered_map<std::uint64_t, EpochManager*> by_id;
};

LiveManagers& Managers() {
  static LiveManagers* m = new LiveManagers;  // leaked: must outlive all TLS dtors
  return *m;
}

std::atomic<std::uint64_t> next_instance_id{1};

}  // namespace

struct EpochManager::Orphans {
  std::mutex mu;
  std::vector<LimboBag> bags;
};

// Per-thread cache mapping managers to their claimed ThreadState. Slots are released
// (and limbo handed off) when the thread exits.
struct EpochThreadCache {
  struct Slot {
    std::uint64_t instance_id = 0;
    EpochManager* mgr = nullptr;
    EpochManager::ThreadState* state = nullptr;
  };
  static constexpr int kSlots = 16;
  Slot slots[kSlots];

  ~EpochThreadCache() {
    std::lock_guard<std::mutex> lock(Managers().mu);
    for (Slot& s : slots) {
      if (s.state == nullptr) {
        continue;
      }
      auto it = Managers().by_id.find(s.instance_id);
      if (it != Managers().by_id.end()) {
        it->second->ReleaseThreadState(s.state);
      }
    }
  }

  EpochManager::ThreadState** Find(std::uint64_t id, EpochManager* mgr) {
    for (Slot& s : slots) {
      if (s.instance_id == id && s.mgr == mgr) {
        return &s.state;
      }
    }
    return nullptr;
  }

  void Insert(std::uint64_t id, EpochManager* mgr, EpochManager::ThreadState* st) {
    for (Slot& s : slots) {
      if (s.state == nullptr) {
        s = Slot{id, mgr, st};
        return;
      }
    }
    assert(false && "EpochThreadCache: too many live EpochManager instances per thread");
  }
};

namespace {
EpochThreadCache& ThreadCache() {
  thread_local EpochThreadCache cache;
  return cache;
}
}  // namespace

EpochManager::EpochManager()
    : orphans_(new Orphans),
      instance_id_(next_instance_id.fetch_add(1, std::memory_order_relaxed)) {
  global_epoch_->store(2, std::memory_order_relaxed);  // start >1 so epoch-2 is valid
  std::lock_guard<std::mutex> lock(Managers().mu);
  Managers().by_id.emplace(instance_id_, this);
}

EpochManager::~EpochManager() {
  {
    std::lock_guard<std::mutex> lock(Managers().mu);
    Managers().by_id.erase(instance_id_);
  }
  // At destruction no thread may be inside a Guard (standard quiescence contract).
  // Free everything still in limbo: slot bags first, then orphans.
  for (ThreadState& ts : threads_) {
    for (LimboBag& bag : ts.bags) {
      FreeBag(&bag, &freed_count_);
    }
  }
  {
    std::lock_guard<std::mutex> lock(orphans_->mu);
    for (LimboBag& bag : orphans_->bags) {
      FreeBag(&bag, &freed_count_);
    }
  }
  delete orphans_;
}

EpochManager::ThreadState* EpochManager::StateForCurrentThread() {
  EpochThreadCache& cache = ThreadCache();
  if (ThreadState** found = cache.Find(instance_id_, this)) {
    return *found;
  }
  for (ThreadState& ts : threads_) {
    bool expected = false;
    if (ts.used.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
      cache.Insert(instance_id_, this, &ts);
      return &ts;
    }
  }
  assert(false && "EpochManager: more than kMaxThreads concurrent threads");
  return nullptr;
}

void EpochManager::ReleaseThreadState(ThreadState* ts) {
  // Hand surviving limbo objects to the orphan list so a later advance frees them.
  {
    std::lock_guard<std::mutex> lock(orphans_->mu);
    for (LimboBag& bag : ts->bags) {
      if (!bag.objects.empty()) {
        orphans_->bags.push_back(std::move(bag));
        bag.objects.clear();
      }
    }
  }
  ts->word.store(0, std::memory_order_release);
  ts->pin.store(kNoSnapshot, std::memory_order_release);
  ts->guard_depth = 0;
  ts->retires_since_scan = 0;
  ts->used.store(false, std::memory_order_release);
}

void EpochManager::Enter() {
  ThreadState* ts = StateForCurrentThread();
  if (ts->guard_depth++ > 0) {
    return;  // re-entrant Guard: the activity word is already published
  }
  // Publish activity at the current global epoch; re-check so that an advance racing
  // with us either sees our activity or we adopt the newer epoch.
  std::uint64_t e = global_epoch_->load(std::memory_order_seq_cst);
  while (true) {
    ts->word.store((e << 1) | 1, std::memory_order_seq_cst);
    const std::uint64_t now = global_epoch_->load(std::memory_order_seq_cst);
    if (now == e) {
      break;
    }
    e = now;
  }
}

void EpochManager::Exit() {
  ThreadState* ts = StateForCurrentThread();
  assert(ts->guard_depth > 0 && "Exit without matching Enter");
  if (--ts->guard_depth > 0) {
    return;  // inner Guard: an enclosing one still owns the activity word
  }
  ts->word.store(ts->word.load(std::memory_order_relaxed) & ~1ULL,
                 std::memory_order_release);
}

void EpochManager::BeginSnapshotPin() {
  // seq_cst intent store: SnapshotDoneStamp's scan either sees it (and then
  // reclaims nothing) or is ordered wholly before it, in which case the pin's
  // eventual stamp is >= the clock value the scanner bounded itself by.
  StateForCurrentThread()->pin.store(kPinPending, std::memory_order_seq_cst);
}

void EpochManager::SetSnapshotPin(std::uint64_t s) {
  StateForCurrentThread()->pin.store(s, std::memory_order_seq_cst);
}

void EpochManager::UnpinSnapshot() {
  StateForCurrentThread()->pin.store(kNoSnapshot, std::memory_order_release);
}

std::uint64_t EpochManager::SnapshotDoneStamp(std::uint64_t counter_now) const {
  // Schedule point (PR 9): the done-stamp scan racing pin publication — the
  // window the two-step pin protocol exists for.
  SPECTM_SCHED_POINT(failpoint::Site::kDoneStampAdvance);
  std::uint64_t done = counter_now;
  for (const ThreadState& ts : threads_) {
    if (!ts.used.load(std::memory_order_acquire)) {
      continue;
    }
    const std::uint64_t p = ts.pin.load(std::memory_order_seq_cst);
    if (p == kPinPending) {
      return 0;  // a pin is mid-publication: no safe bound exists yet
    }
    if (p != kNoSnapshot && p < done) {
      done = p;
    }
  }
  return done;
}

void EpochManager::Retire(void* p, void (*deleter)(void*)) {
  ThreadState* ts = StateForCurrentThread();
  assert((ts->word.load(std::memory_order_relaxed) & 1) != 0 &&
         "Retire requires an active Guard");
  // Schedule point (PR 8): an object entering limbo while a concurrent
  // advance scans — the reclamation race the 3-bag residue argument covers.
  SPECTM_SCHED_POINT(failpoint::Site::kEpochRetire);
  const std::uint64_t e = global_epoch_->load(std::memory_order_acquire);
  LimboBag& bag = ts->bags[e % 3];
  if (bag.epoch != e) {
    // This residue-class bag holds objects from epoch e - 3, which is freeable now
    // (global >= (e-3)+2 holds since global == e).
    FreeBag(&bag, &freed_count_);
    bag.epoch = e;
  }
  bag.objects.push_back(RetiredObject{p, deleter});
  if (++ts->retires_since_scan >= kScanInterval) {
    ts->retires_since_scan = 0;
    TryAdvanceAndReclaim(ts);
  }
}

void EpochManager::TryAdvanceAndReclaim(ThreadState* ts) {
  // Schedule point (PR 8): the straggler scan vs. Enter's publish-then-recheck
  // handshake — an advance interleaved anywhere inside Enter must either see
  // the activity word or be adopted by the re-check.
  SPECTM_SCHED_POINT(failpoint::Site::kEpochAdvance);
  const std::uint64_t e = global_epoch_->load(std::memory_order_seq_cst);
  for (const ThreadState& other : threads_) {
    if (!other.used.load(std::memory_order_acquire)) {
      continue;
    }
    const std::uint64_t w = other.word.load(std::memory_order_seq_cst);
    if ((w & 1) != 0 && (w >> 1) != e) {
      return;  // a straggler is still in an older epoch
    }
  }
  std::uint64_t expected = e;
  global_epoch_->compare_exchange_strong(expected, e + 1, std::memory_order_seq_cst);
  const std::uint64_t now = global_epoch_->load(std::memory_order_seq_cst);
  FlushFreeableBags(ts, now);
  AbsorbOrphans(now);
}

void EpochManager::FlushFreeableBags(ThreadState* ts, std::uint64_t global) {
  for (LimboBag& bag : ts->bags) {
    if (!bag.objects.empty() && bag.epoch + 2 <= global) {
      FreeBag(&bag, &freed_count_);
    }
  }
}

void EpochManager::FreeBag(LimboBag* bag, std::atomic<std::uint64_t>* freed_counter) {
  for (const RetiredObject& obj : bag->objects) {
    obj.deleter(obj.ptr);
  }
  freed_counter->fetch_add(bag->objects.size(), std::memory_order_relaxed);
  bag->objects.clear();
}

void EpochManager::AbsorbOrphans(std::uint64_t global) {
  std::unique_lock<std::mutex> lock(orphans_->mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    return;
  }
  for (std::size_t i = 0; i < orphans_->bags.size();) {
    if (orphans_->bags[i].epoch + 2 <= global) {
      FreeBag(&orphans_->bags[i], &freed_count_);
      orphans_->bags[i] = std::move(orphans_->bags.back());
      orphans_->bags.pop_back();
    } else {
      ++i;
    }
  }
}

std::size_t EpochManager::PendingCount() const {
  std::size_t n = 0;
  for (const ThreadState& ts : threads_) {
    for (const LimboBag& bag : ts.bags) {
      n += bag.objects.size();
    }
  }
  std::lock_guard<std::mutex> lock(orphans_->mu);
  for (const LimboBag& bag : orphans_->bags) {
    n += bag.objects.size();
  }
  return n;
}

void EpochManager::ReclaimAllForTesting() {
  ThreadState* ts = StateForCurrentThread();
  for (int i = 0; i < 8; ++i) {
    // Each Enter/advance/Exit round can move the epoch forward by one.
    Enter();
    TryAdvanceAndReclaim(ts);
    Exit();
  }
  const std::uint64_t now = global_epoch_->load(std::memory_order_seq_cst);
  for (ThreadState& other : threads_) {
    FlushFreeableBags(&other, now);
  }
  AbsorbOrphans(now);
}

EpochManager& GlobalEpochManager() {
  static EpochManager* mgr = new EpochManager;  // leaked: outlives TLS destructors
  return *mgr;
}

}  // namespace spectm
