// Unwind-safe abort machinery: the TxCancel control-flow exception and the RAII
// unwind guard the engines hang their abort paths on.
//
// The paper's retry loops assume user code returns; a real service's user code
// throws. Any exception escaping a transaction body — a deliberate cancel or a
// foreign std::bad_alloc — must not unwind past held orec/val locks, the
// serial-irrevocable token (src/tm/serial.h), or half-reset attempt state, or
// the whole domain wedges (every later committer spins on the orphaned locks,
// every later escalation blocks on the orphaned token).
//
// Two pieces:
//
//   * TxCancel — a control-flow exception users throw (via CancelAndRetry /
//     CancelTx) to abort the current attempt compositionally, from arbitrarily
//     deep inside the body. The engines' Atomically() loops catch it, unwind
//     the attempt through the ordinary abort path, and either retry the body
//     (kRetry) or return false to the caller (kAbort). Foreign exceptions take
//     the same unwind path but rethrow after the attempt is cleanly aborted.
//
//   * TxUnwindGuard — a dismissible scope guard. A commit path constructs one
//     over "release my locks, finish the attempt as aborted" immediately after
//     the first acquire; every early `return false` AND every exception runs
//     the cleanup, and only the fully-committed tail Dismiss()es it. Guards
//     destruct in reverse construction order, which is exactly the unwind
//     ordering docs/VALIDATION.md §8 requires: locks restored before the gate
//     flag retracts, gate before the serial token releases.
//
// Cleanup callables must be noexcept in spirit: they run during unwind, where a
// second exception is std::terminate. The engines' release paths are plain
// atomic stores and satisfy this by construction (no fail-point sites are
// planted inside any abort/release path).
#ifndef SPECTM_TM_TXGUARD_H_
#define SPECTM_TM_TXGUARD_H_

#include <utility>

namespace spectm {

// Composable user-initiated abort. Thrown from inside a transaction body; the
// retry loop that owns the attempt catches it (never user code mid-body).
struct TxCancel {
  enum class Policy {
    kRetry,  // abort this attempt, re-run the body
    kAbort,  // abort and leave the retry loop (Atomically returns false)
  };
  Policy policy = Policy::kRetry;
};

// Abort the current attempt and retry it from the top.
[[noreturn]] inline void CancelAndRetry() { throw TxCancel{TxCancel::Policy::kRetry}; }

// Abort the current attempt and give up: the enclosing Atomically() returns
// false without having published anything.
[[noreturn]] inline void CancelTx() { throw TxCancel{TxCancel::Policy::kAbort}; }

// Dismissible scope guard: runs `cleanup` at scope exit unless Dismiss()ed.
template <typename Cleanup>
class TxUnwindGuard {
 public:
  explicit TxUnwindGuard(Cleanup cleanup) : cleanup_(std::move(cleanup)) {}
  ~TxUnwindGuard() {
    if (armed_) {
      cleanup_();
    }
  }

  TxUnwindGuard(const TxUnwindGuard&) = delete;
  TxUnwindGuard& operator=(const TxUnwindGuard&) = delete;

  // The success tail calls this after the last operation that can throw or
  // fail; from here on the attempt is committed and must not be unwound.
  void Dismiss() { armed_ = false; }

 private:
  Cleanup cleanup_;
  bool armed_ = true;
};

template <typename Cleanup>
TxUnwindGuard(Cleanup) -> TxUnwindGuard<Cleanup>;

}  // namespace spectm

#endif  // SPECTM_TM_TXGUARD_H_
