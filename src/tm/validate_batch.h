// Batch read-log validation kernel over SoA lanes (src/common/soa_log.h).
//
// Every validation walk in the system reduces to the same loop: for entry i, load
// *ptrs[i] and compare against expected[i]; a mismatch is handed to an
// engine-specific handler (self-locked entries compare against their displaced
// word) which either tolerates it or fails the walk. This file provides that loop
// once, with two interchangeable bodies:
//
//   * scalar — one acquire load + compare per entry (the seed's exact shape);
//   * AVX2   — _mm256_i64gather_epi64 over four entry pointers per iteration,
//     compare all four against the expected lane, and fall to the handler only
//     for mismatching SIMD lanes. Compiled via the `target("avx2")` function
//     attribute so the rest of the TU keeps the baseline ISA; selected at runtime
//     from CPUID.
//
// Equivalence contract (pinned by tests/tm/readlog_batch_test.cc): both bodies
// observe each entry's word exactly once, invoke the mismatch handler for
// mismatching entries in strictly increasing index order with the observed word,
// and return false at the first intolerable mismatch — so commit/abort decisions
// are identical, entry by entry, whichever body ran.
//
// Memory ordering: the gather issues plain (relaxed) 64-bit loads. Element-wise
// atomicity holds — each lane is one naturally-aligned 8-byte load, which x86
// performs indivisibly — and an acquire fence after the batch loop upgrades the
// whole batch to acquire semantics before any result is acted on (on x86 the
// fence compiles to a compiler barrier; loads already have acquire ordering in
// hardware). AVX2 implies x86-64, so the fence-based upgrade is always valid
// where the SIMD body can run at all.
//
// Dispatch: SPECTM_NO_SIMD (compile definition) removes the SIMD body entirely —
// the forced-scalar CI job builds this way. At runtime the body is picked once
// from CPUID + the SPECTM_NO_SIMD environment variable; benches and tests may
// override per-phase via SetSimdEnabled() (single-threaded phases only: the flag
// is deliberately unsynchronized to keep the hot-path read free).
#ifndef SPECTM_TM_VALIDATE_BATCH_H_
#define SPECTM_TM_VALIDATE_BATCH_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "src/common/tagged.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(SPECTM_NO_SIMD)
#define SPECTM_BATCH_SIMD 1
#include <immintrin.h>
#else
#define SPECTM_BATCH_SIMD 0
#endif

namespace spectm {

// Entries per SIMD iteration (AVX2: four 64-bit lanes).
inline constexpr std::size_t kSimdBatchWidth = 4;

// True when this build contains the SIMD body AND the CPU can run it.
inline bool SimdAvailable() {
#if SPECTM_BATCH_SIMD
  static const bool available = __builtin_cpu_supports("avx2") != 0;
  return available;
#else
  return false;
#endif
}

// The runtime switch. Default: available and not vetoed by the SPECTM_NO_SIMD
// environment variable. Mutable only through SetSimdEnabled().
inline bool& SimdEnabledFlag() {
  static bool enabled = SimdAvailable() && std::getenv("SPECTM_NO_SIMD") == nullptr;
  return enabled;
}

inline bool SimdEnabled() { return SimdEnabledFlag(); }

// Test/bench override; clamped to availability. Call only while no transactions
// are running (the flag is a plain bool read by every validation walk).
inline void SetSimdEnabled(bool on) { SimdEnabledFlag() = on && SimdAvailable(); }

#if SPECTM_BATCH_SIMD
// Gathers *ptrs[0..3] and compares against expected[0..3]. Returns the 4-bit
// mismatch mask (bit k set = lane k differs) and writes the observed words so
// the caller's mismatch handler judges exactly the value the gather saw.
__attribute__((target("avx2"))) inline std::uint32_t GatherCompare4(
    std::atomic<Word>* const* ptrs, const Word* expected, Word* observed) {
  const __m256i vptrs =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ptrs));
  // Base 0 + full pointers as indices, scale 1: gathers through the four entry
  // pointers. Each lane is one aligned 8-byte load (element-wise atomic on x86).
  const __m256i vobs = _mm256_i64gather_epi64(
      reinterpret_cast<const long long*>(0), vptrs, 1);
  const __m256i vexp =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(expected));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(observed), vobs);
  const __m256i eq = _mm256_cmpeq_epi64(vobs, vexp);
  const int eq_mask = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
  return static_cast<std::uint32_t>(~eq_mask) & 0xFu;
}
#endif

// Validates entries [0, count): *ptrs[i] must equal expected[i], or
// mismatch(i, observed_word) must return true (entry tolerated — e.g. locked by
// the walking transaction itself with a matching displaced word). Returns false
// at the first intolerable mismatch.
//
// `simd_batches` counts 4-entry SIMD iterations, `scalar_checks` counts entries
// validated by the scalar body (tail included) — the probe evidence that each
// body actually ran (wired into ValProbe by the engines).
template <typename MismatchFn>
inline bool ValidateEqualSpan(std::atomic<Word>* const* ptrs, const Word* expected,
                              std::size_t count, std::uint64_t& simd_batches,
                              std::uint64_t& scalar_checks, MismatchFn&& mismatch) {
  std::size_t i = 0;
#if SPECTM_BATCH_SIMD
  if (count >= kSimdBatchWidth && SimdEnabled()) {
    for (; i + kSimdBatchWidth <= count; i += kSimdBatchWidth) {
      Word observed[kSimdBatchWidth];
      std::uint32_t bad = GatherCompare4(ptrs + i, expected + i, observed);
      ++simd_batches;
      while (bad != 0) {
        const unsigned lane = static_cast<unsigned>(__builtin_ctz(bad));
        bad &= bad - 1;
        if (!mismatch(i + lane, observed[lane])) {
          return false;
        }
      }
    }
    // Upgrade the gathers to acquire before any batch-validated result is used.
    std::atomic_thread_fence(std::memory_order_acquire);
  }
#endif
  if (i < count) {
    scalar_checks += count - i;
  }
  for (; i < count; ++i) {
    const Word w = ptrs[i]->load(std::memory_order_acquire);
    if (w != expected[i] && !mismatch(i, w)) {
      return false;
    }
  }
  return true;
}

}  // namespace spectm

#endif  // SPECTM_TM_VALIDATE_BATCH_H_
