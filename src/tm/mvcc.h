// Bounded multi-version chains for the `val` layout (MVCC snapshot reads).
//
// Every committing writer displaces one word per written slot; the MVCC layer
// threads those displaced values onto a per-slot chain of VersionNode, newest
// first, each stamped with the commit-clock index of the commit that displaced
// it (the flock `persistent_ptr` idiom: publish the link first, resolve the
// stamp with a lazy CAS). A read-only transaction that pinned snapshot S then
// reads, per slot, either the current word (newest stamp <= S) or the newest
// chain node whose validity interval [floor, stamp) contains S — no
// validation, no sandwiching, no aborts.
//
// Interval invariants (immutable once a node is reachable):
//   * node.floor  = stamp of the node it was pushed over (0 for the first) —
//     the commit index at which node.word became the slot's current value.
//   * node.stamp  = commit index of the commit that displaced node.word;
//     kUnstamped only transiently, while the pushing writer still holds the
//     slot's commit lock. chain invariant: node.next.stamp == node.floor.
//   * An aborted publish (throw between push and stamp CAS) is repaired by
//     stamping the node with its own floor — an empty interval no snapshot
//     ever selects — never by popping, since a concurrent reader may already
//     hold the pointer (TombstoneUnstampedHead).
//
// Reclamation: a node can no longer be SELECTED by any snapshot reader once
// stamp <= done_stamp (EpochManager::SnapshotDoneStamp — the minimum pinned
// snapshot, bounded by a pre-scan clock sample); such nodes are recycled
// immediately into the type-stable per-thread pool, and chain-bound overflow
// drops (stamp > done_stamp) park on a deferred list until the done stamp
// catches up. Selection-dead is not touch-dead — a reader that loaded a chain
// pointer just before the unlink may still dereference the node's stamp once —
// so memory only returns to the allocator through the epoch manager's Retire,
// and snapshot transactions hold an epoch Guard for their pinned duration.
// docs/VALIDATION.md §10 carries the full argument.
#ifndef SPECTM_TM_MVCC_H_
#define SPECTM_TM_MVCC_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/common/failpoint.h"
#include "src/common/tagged.h"
#include "src/epoch/epoch.h"

namespace spectm {
namespace mvcc {

// Sentinel stamp for a half-published node (pushing writer still holds the
// slot lock). Also conveniently greater than every real snapshot.
inline constexpr Word kUnstamped = ~Word{0};

// Chain-length bound: a push that would grow a chain past this drops the tail
// suffix (readers whose snapshot predates the surviving floor detect the
// truncation — deepest floor > S — and fall back).
inline constexpr int kMaxVersions = 8;

struct VersionNode {
  std::atomic<Word> stamp{kUnstamped};      // displaced at this commit index
  Word floor = 0;                           // became current at this index
  Word word = 0;                            // the displaced value
  std::atomic<VersionNode*> next{nullptr};  // next-older version
};

struct DeferredNode {
  VersionNode* node;
  Word stamp;
};

namespace internal {

// Deferred nodes from exited threads. Intentionally leaked (reachable after
// TLS destructors) and drained opportunistically by live pools.
struct Spill {
  std::mutex mu;
  std::vector<DeferredNode> nodes;
};

inline Spill& GlobalSpill() {
  static Spill* s = new Spill;
  return *s;
}

}  // namespace internal

// Per-thread node allocator. Recycle() is only legal for nodes proven
// unreachable-for-SELECTION (stamp <= done_stamp at unlink, or never
// published); anything else goes through Defer() and waits for the done
// stamp. Selection-dead is weaker than touch-dead: a snapshot reader that
// loaded a chain pointer just before the unlink may still dereference the
// node's stamp word once, so recycled nodes stay type-stable in the pool and
// every path that returns memory to the allocator goes through the epoch
// manager's Retire (snapshot transactions hold an epoch Guard while pinned,
// so a free can never land under a reader mid-traversal).
class NodePool {
 public:
  static constexpr std::size_t kMaxFree = 256;

  VersionNode* Acquire() {
    if (!free_.empty()) {
      VersionNode* n = free_.back();
      free_.pop_back();
      return n;
    }
    return new VersionNode;
  }

  void Recycle(VersionNode* n) {
    n->stamp.store(kUnstamped, std::memory_order_relaxed);
    n->next.store(nullptr, std::memory_order_relaxed);
    if (free_.size() < kMaxFree) {
      free_.push_back(n);
    } else {
      EpochManager& mgr = GlobalEpochManager();
      EpochManager::Guard g(mgr);
      mgr.Retire(n);
    }
  }

  void Defer(VersionNode* n, Word stamp) { deferred_.push_back(DeferredNode{n, stamp}); }

  // Recycles deferred nodes whose stamp the done stamp has passed, then makes
  // the same sweep over the cold global spill (try-lock: contention means
  // someone else is already draining).
  void DrainDeferred(Word done_stamp) {
    for (std::size_t i = 0; i < deferred_.size();) {
      if (deferred_[i].stamp <= done_stamp) {
        Recycle(deferred_[i].node);
        deferred_[i] = deferred_.back();
        deferred_.pop_back();
      } else {
        ++i;
      }
    }
    internal::Spill& spill = internal::GlobalSpill();
    std::unique_lock<std::mutex> lock(spill.mu, std::try_to_lock);
    if (!lock.owns_lock()) {
      return;
    }
    EpochManager& mgr = GlobalEpochManager();
    EpochManager::Guard g(mgr);
    for (std::size_t i = 0; i < spill.nodes.size();) {
      if (spill.nodes[i].stamp <= done_stamp) {
        mgr.Retire(spill.nodes[i].node);
        spill.nodes[i] = spill.nodes.back();
        spill.nodes.pop_back();
      } else {
        ++i;
      }
    }
  }

  std::size_t DeferredCount() const { return deferred_.size(); }

  ~NodePool() {
    // Runs from a TLS destructor: the epoch manager's own thread cache may
    // already be torn down, so no Enter/Retire here. Free-list nodes may
    // still be transiently dereferenced by a reader that loaded a chain
    // pointer just before their unlink (stamp 0 = selection-dead at once),
    // so they join the spill too and a live pool's DrainDeferred retires
    // them through the epoch manager. The spill itself is reachable-forever
    // by design, so anything no thread drains stays reachable, not leaked.
    if (free_.empty() && deferred_.empty()) {
      return;
    }
    internal::Spill& spill = internal::GlobalSpill();
    std::lock_guard<std::mutex> lock(spill.mu);
    for (VersionNode* n : free_) {
      spill.nodes.push_back(DeferredNode{n, 0});
    }
    spill.nodes.insert(spill.nodes.end(), deferred_.begin(), deferred_.end());
  }

 private:
  std::vector<VersionNode*> free_;
  std::vector<DeferredNode> deferred_;
};

inline NodePool& Pool() {
  thread_local NodePool pool;
  return pool;
}

// The epoch manager carrying the snapshot-pin registry (and done stamp) for
// the val-layout MVCC domain. Snapshot transactions pin here; version
// reclamation bounds itself here.
inline EpochManager& MvccEpoch() { return GlobalEpochManager(); }

struct PublishStats {
  int retired = 0;   // nodes unlinked (recycled or deferred)
  int splices = 0;   // chain truncation operations
};

// Unlinks the suffix starting at `n` (already detached from the chain) and
// reclaims it: provably-dead nodes recycle now, the rest defer.
inline void ReclaimSuffix(VersionNode* n, Word done_stamp, NodePool& pool,
                          PublishStats* stats) {
  while (n != nullptr) {
    VersionNode* next = n->next.load(std::memory_order_relaxed);
    const Word st = n->stamp.load(std::memory_order_relaxed);
    // Schedule point (PR 9): a node leaving the chain while snapshot readers
    // may still be traversing toward it.
    SPECTM_SCHED_POINT(failpoint::Site::kVersionRetire);
    if (st <= done_stamp) {
      pool.Recycle(n);
    } else {
      pool.Defer(n, st);
    }
    ++stats->retired;
    n = next;
  }
}

// Walks the chain under `head` (the slot's current head, lock held by the
// caller) and truncates at the first node the done stamp has passed, or at
// the kMaxVersions bound, whichever comes first.
inline void TrimChain(VersionNode* head, Word done_stamp, NodePool& pool,
                      PublishStats* stats) {
  int len = 1;
  VersionNode* prev = head;
  VersionNode* n = head->next.load(std::memory_order_relaxed);
  while (n != nullptr) {
    const Word st = n->stamp.load(std::memory_order_relaxed);
    if (st <= done_stamp || len >= kMaxVersions) {
      prev->next.store(nullptr, std::memory_order_release);
      ++stats->splices;
      ReclaimSuffix(n, done_stamp, pool, stats);
      return;
    }
    prev = n;
    n = n->next.load(std::memory_order_relaxed);
    ++len;
  }
}

// Publishes `displaced` as the newest version under `head_ref` and stamps it
// with `commit_idx` (the publishing commit's clock index), then bounds the
// chain. The caller holds the slot's commit lock for the whole call, which is
// what makes the head unstamped-window exclusive to us.
inline void PublishVersion(std::atomic<VersionNode*>& head_ref, Word displaced,
                           Word commit_idx, Word done_stamp, NodePool& pool,
                           PublishStats* stats) {
  VersionNode* head = head_ref.load(std::memory_order_relaxed);
  VersionNode* n = pool.Acquire();
  // A reachable head is always stamped: its pusher stamped it (or tombstoned
  // it on abort) before releasing the lock we now hold.
  n->floor = (head != nullptr) ? head->stamp.load(std::memory_order_relaxed) : 0;
  assert(n->floor != kUnstamped && "chain head left unstamped by a previous owner");
  n->word = displaced;
  n->stamp.store(kUnstamped, std::memory_order_relaxed);
  n->next.store(head, std::memory_order_relaxed);
  head_ref.store(n, std::memory_order_release);
  // The flock-style lazy-stamp window: the link is public, the stamp is not.
  // Snapshot readers that meet the unstamped head retry (the slot is locked);
  // a throw here unwinds into TombstoneUnstampedHead via the commit guard.
  SPECTM_FAILPOINT_PAUSE(failpoint::Site::kVersionPublish);
  Word expected = kUnstamped;
  n->stamp.compare_exchange_strong(expected, commit_idx, std::memory_order_acq_rel);
  TrimChain(n, done_stamp, pool, stats);
}

// Abort-path repair for a throw inside the publish window: an unstamped head
// under a still-held slot lock is ours. Stamp it with its own floor — the
// empty interval [floor, floor) that no snapshot ever selects — and leave it
// chained for normal splicing to reclaim. Popping instead would free a node a
// concurrent reader may already hold a pointer to.
inline void TombstoneUnstampedHead(std::atomic<VersionNode*>& head_ref) {
  VersionNode* head = head_ref.load(std::memory_order_relaxed);
  if (head != nullptr && head->stamp.load(std::memory_order_relaxed) == kUnstamped) {
    head->stamp.store(head->floor, std::memory_order_release);
  }
}

// Chain length (test support; caller must exclude concurrent pushes).
inline int ChainLength(const std::atomic<VersionNode*>& head_ref) {
  int len = 0;
  for (VersionNode* n = head_ref.load(std::memory_order_acquire); n != nullptr;
       n = n->next.load(std::memory_order_acquire)) {
    ++len;
  }
  return len;
}

}  // namespace mvcc
}  // namespace spectm

#endif  // SPECTM_TM_MVCC_H_
