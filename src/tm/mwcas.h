// Multi-word atomic primitives built over short transactions.
//
// §5: "it is easy to implement CASN over short transactions, but it is difficult to
// implement short transactions over CASN". This header demonstrates the easy
// direction: DCSS (the paper's §2.2 worked example, transcribed from its pseudo-code)
// and a general CASN for up to kMaxShortWrites locations.
//
// Unlike classic CASN implementations (Harris et al.; Israeli & Rappoport), these
// primitives interoperate with every other transaction of their family — short,
// full, and single-op — because they speak the same meta-data protocol.
#ifndef SPECTM_TM_MWCAS_H_
#define SPECTM_TM_MWCAS_H_

#include <cassert>
#include <cstddef>

#include "src/common/tagged.h"
#include "src/tm/config.h"

namespace spectm {

// Double-compare-single-swap: iff *a1 == o1 && *a2 == o2, store n1 to a1.
// Returns true on success, false if either comparison failed. Mirrors the paper's
// DCSS: two RO reads, an upgrade of the first to RW, and a mixed commit; the second
// location is only validated, never locked.
template <typename Family>
bool Dcss(typename Family::Slot* a1, typename Family::Slot* a2, Word o1, Word o2,
          Word n1) {
  while (true) {
    typename Family::ShortTx t;
    const Word v1 = t.ReadRo(a1);
    const Word v2 = t.ReadRo(a2);
    if (t.Valid() && v1 == o1 && v2 == o2) {
      if (t.UpgradeRoToRw(0) && t.CommitMixed({n1})) {
        return true;
      }
      // Upgrade or validation lost a race: restart.
      t.Reset();
      continue;
    }
    if (t.Valid() && t.ValidateRo()) {
      return false;  // consistent snapshot disagreed with the expectations
    }
    t.Reset();  // inconsistent read; try again
  }
}

// N-location compare-and-swap (N <= kMaxShortWrites): iff addrs[i] == expected[i] for
// all i, store desired[i] to each. The encounter-time RW read both fetches and locks;
// a value mismatch aborts without publishing.
template <typename Family>
bool Casn(typename Family::Slot* const* addrs, const Word* expected,
          const Word* desired, std::size_t n) {
  assert(n >= 1 && n <= static_cast<std::size_t>(kMaxShortWrites));
  while (true) {
    typename Family::ShortTx t;
    bool mismatch = false;
    for (std::size_t i = 0; i < n && !mismatch; ++i) {
      const Word v = t.ReadRw(addrs[i]);
      if (!t.Valid()) {
        break;  // conflict: locked by someone else
      }
      mismatch = v != expected[i];
    }
    if (!t.Valid()) {
      t.Abort();
      continue;  // contention: retry
    }
    if (mismatch) {
      t.Abort();
      return false;  // all reads up to the mismatch were stable under our locks
    }
    switch (n) {
      case 1:
        t.CommitRw({desired[0]});
        break;
      case 2:
        t.CommitRw({desired[0], desired[1]});
        break;
      case 3:
        t.CommitRw({desired[0], desired[1], desired[2]});
        break;
      default:
        t.CommitRw({desired[0], desired[1], desired[2], desired[3]});
        break;
    }
    return true;
  }
}

}  // namespace spectm

#endif  // SPECTM_TM_MWCAS_H_
