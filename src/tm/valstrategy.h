// Adaptive validation engine: the machinery that turns per-read revalidation cost
// from a fixed property of a TM family into a runtime choice.
//
// The paper's local-clock and value-based variants pay O(read-set) revalidation on
// every read to preserve opacity (§4.1, Figure 5) — the cost behind the Figs 7–9
// crossovers. No single remedy wins across workloads, so engines that opt in switch
// at runtime between three strategies, driven by the descriptor's abort-rate EWMA
// (txdesc.h):
//
//   kCounterSkip — NOrec's precise-counter skip: a domain-wide commit counter that
//     every writer bumps while holding its locks, before its releasing stores.
//     "Counter unchanged since the log was last known valid" proves no writer
//     released a value/version in between, so the O(read-set) walk is skipped.
//     Cheapest when writer commits are rare relative to this thread's reads.
//
//   kBloom — counter skip plus a bloom-summary pre-filter: each writer publishes a
//     32-bit bloom of its write set into a ring indexed by its counter bump; a
//     reader whose counter went stale intersects its own read-set bloom with the
//     blooms of the intervening commits and still skips the walk when they are
//     disjoint. Rescues the skip under write traffic that does not touch this
//     reader's read set, at the cost of maintaining the read bloom per read.
//
//   kIncremental — the paper's baseline: walk the read set, no shared-counter
//     reliance. The fallback when contention is high enough that summaries rarely
//     help and the walk happens anyway.
//
//   kStripe (partitioned NOrec, ValMode::kPartitioned) — the commit counter is
//     SHARDED into kCounterStripes cache-line-separated per-stripe counters keyed
//     by the metadata word's address region: a committing writer bumps only the
//     stripes its write set touches, and a reader's skip test compares a
//     per-stripe sample vector against only the stripes its read set occupies.
//     Disjoint-stripe write traffic no longer invalidates the reader's anchor at
//     all — the failure mode the fixed-width bloom ring cannot absorb once a wide
//     scan saturates its filter (the abl_readset_layout intersect-failure
//     gradient). Per-stripe counters are consulted BEFORE the ring; bloom
//     intersection is the fallback for same-stripe-but-disjoint traffic. The
//     per-stripe soundness argument (anchor re-derivation, crossing committers)
//     lives in docs/VALIDATION.md.
//
// Strategy choice (kAdaptive) is re-evaluated from the EWMA at every transaction
// start: low abort rate -> counter-skip, moderate -> bloom, high -> incremental.
// The band edges are HYSTERETIC (same enter/exit dead-band pattern as the GV6
// clock flip in clock.h): moving to a more conservative strategy uses the enter
// threshold, moving back requires the EWMA to fall through a lower exit
// threshold, so a border workload whose EWMA wiggles around one edge no longer
// alternates strategies on every outcome. Fixed modes exist for ablation benches
// (bench/abl_adaptive_val) so the adaptive engine can be measured against every
// fixed point it switches between.
//
// Soundness of the skip paths (NOrec discipline, extended with blooms):
//   * Writer protocol: acquire ALL commit locks, bump-and-publish, validate (or
//     skip), only then perform the releasing stores. The lock is held across the
//     whole bump..release window, so a writer whose bump predates a reader's
//     sample is visibly locked on (or already done with) every location it will
//     store to.
//   * Every read-log entry was admitted through an unlocked observation (val-layout
//     reads spin past locks; orec reads sandwich an unlocked orec), so any writer
//     that had bumped before the reader's sample had already finished with that
//     location — its later stores cannot touch it.
//   * Therefore "counter unchanged since sample" => every logged location is
//     unchanged, and the newest read instant is a consistency point for the whole
//     log. The bloom extension weakens "unchanged counter" to "all intervening
//     commits have write blooms disjoint from my read bloom", which implies the
//     same thing for the logged locations; bloom false positives only cost a walk.
//
// Tail rule: the engines' classic per-read walk may exclude the just-read entry
// (consistent at its own read instant). A TRACKED walk — one that re-anchors the
// persistent sample — must instead cover the ENTIRE log: anchoring at counter c
// asserts "whole log valid at c", and on a preempted thread thousands of commits
// can land between the tail's read sandwich and the walk, silently invalidating
// the tail while the prefix still checks out.
//
// Why writers bump BEFORE their own commit-time validation (not after, as a
// reader-only analysis would allow): two crossing committers — R reads X and
// writes Y while W reads Y and writes X — could otherwise BOTH skip/pass: W
// validates before R locks Y, R's counter check passes before W bumps, and both
// store, committing a write skew (observed as lost hash-set unlinks => double
// retire). With bump-before-validate, a committing writer may only skip when NO
// foreign bump lies in (its sample anchor, its own bump]; of two crossing
// committers one always bumps second, and that one's validation runs after the
// first's locks are in place — the locked-orec (or locked-word) check then kills
// it. The commit-time walk must therefore stay conservative: a foreign lock on a
// read-log entry fails validation even though the underlying version is intact.
#ifndef SPECTM_TM_VALSTRATEGY_H_
#define SPECTM_TM_VALSTRATEGY_H_

#include <atomic>
#include <cstdint>

#include "src/common/cacheline.h"
#include "src/common/failpoint.h"
#include "src/common/tagged.h"
#include "src/tm/txdesc.h"

namespace spectm {

// Per-family validation mode. kPassive is the zero-overhead default (no summary
// maintenance at all — existing families are bit-for-bit unchanged); kIncremental
// maintains the writer summary but never consults it (measures pure maintenance
// overhead); the rest consult it as described above.
enum class ValMode : std::uint8_t {
  kPassive,
  kIncremental,
  kCounterSkip,
  kBloom,
  kAdaptive,
  kPartitioned,
  // MVCC (PR 9): read-only transactions pin a snapshot stamp and read through
  // the version chains (src/tm/mvcc.h) — no sandwiching, no walks, no aborts;
  // read-write attempts resolve to the partitioned stripe protocol and
  // additionally publish displaced values. Requires a kMvcc policy.
  kSnapshot,
};

// The strategy a transaction attempt actually runs with (kAdaptive resolves to one
// of these at Start(); kStripe is the partitioned-NOrec per-stripe skip).
enum class ValStrategy : std::uint8_t { kIncremental, kCounterSkip, kBloom, kStripe };

inline const char* ValStrategyName(ValStrategy s) {
  switch (s) {
    case ValStrategy::kIncremental:
      return "incremental";
    case ValStrategy::kCounterSkip:
      return "counter-skip";
    case ValStrategy::kBloom:
      return "bloom";
    case ValStrategy::kStripe:
      return "partitioned";
  }
  return "?";
}

// EWMA thresholds for the adaptive choice, Q16 (65536 = 100% abort rate).
//   < ~3%  aborts: contention is rare; the bare counter skip almost always fires
//           and bloom maintenance would be pure overhead.
//   < 25%  aborts: writers are active; pay the per-read bloom OR so disjoint write
//           traffic still skips the walk.
//   >= 25% aborts: walks happen regardless; stop paying for summaries.
//
// Each band edge is a hysteresis PAIR (the GV6 clock.h pattern): crossing the
// *MaxQ16 enter threshold upward moves to the more conservative strategy; only
// falling below the matching *ExitQ16 threshold moves back. Inside the dead band
// the previous choice sticks, so a border workload's EWMA noise cannot alternate
// strategies per attempt (ValProbe::strategy_switches pins the damping).
inline constexpr std::uint32_t kEwmaCounterSkipMaxQ16 = 1u << 11;   // ~3.1%: enter bloom
inline constexpr std::uint32_t kEwmaCounterSkipExitQ16 = 1u << 10;  // ~1.6%: back to counter-skip
inline constexpr std::uint32_t kEwmaBloomMaxQ16 = 1u << 14;         // 25%: enter incremental
inline constexpr std::uint32_t kEwmaBloomExitQ16 = 1u << 13;        // 12.5%: back to bloom
static_assert(kEwmaCounterSkipExitQ16 < kEwmaCounterSkipMaxQ16 &&
                  kEwmaBloomExitQ16 < kEwmaBloomMaxQ16,
              "each dead band must be non-empty or the hysteresis degenerates to "
              "single-threshold flapping");

// Below this skip-efficacy EWMA (txdesc.h) the adaptive engine stops paying for
// skip attempts: when the domain's write traffic moves the counter between
// almost every pair of reads, the skip checks are pure overhead on top of the
// walk that happens anyway, and plain incremental is the better fixed point.
// Re-enabling skips requires the efficacy to recover through the higher
// kSkipEwmaRecoverQ16 (hysteresis, as with the abort bands).
inline constexpr std::uint32_t kSkipEwmaMinQ16 = 1u << 13;      // 12.5%: stop skipping
inline constexpr std::uint32_t kSkipEwmaRecoverQ16 = 1u << 14;  // 25%: resume skipping
static_assert(kSkipEwmaMinQ16 < kSkipEwmaRecoverQ16,
              "the efficacy dead band must be non-empty");

// In the incremental-because-skips-don't-pay regime the efficacy EWMA would
// freeze (no skip attempts -> no updates), so every N-th attempt probes a skip
// strategy anyway to notice when the workload turns quiet again.
inline constexpr std::uint32_t kSkipProbePeriod = 16;

// Strategy choice for a new attempt. Without history (`has_prev` false) the
// plain enter thresholds apply — the memoryless mapping the band tests pin.
// With history, the previous attempt's strategy supplies the hysteresis state:
// moving toward incremental needs the enter edge, moving back the exit edge.
// kPartitioned is a fixed mode resolving to kStripe; StrategyState clamps it to
// kCounterSkip at compile time when the family's summary has no stripe counters.
inline ValStrategy ChooseStrategy(ValMode mode, bool has_bloom_ring,
                                  std::uint32_t abort_ewma_q16,
                                  std::uint32_t skip_ewma_q16 = 65536u,
                                  bool has_prev = false,
                                  ValStrategy prev = ValStrategy::kIncremental) {
  switch (mode) {
    case ValMode::kPassive:
    case ValMode::kIncremental:
      return ValStrategy::kIncremental;
    case ValMode::kCounterSkip:
      return ValStrategy::kCounterSkip;
    case ValMode::kBloom:
      return has_bloom_ring ? ValStrategy::kBloom : ValStrategy::kCounterSkip;
    case ValMode::kPartitioned:
      return ValStrategy::kStripe;
    case ValMode::kSnapshot:
      // Read-only work never reaches a strategy at all (chain reads); this is
      // the read-write side, which keeps the per-stripe precise protocol.
      return ValStrategy::kStripe;
    case ValMode::kAdaptive: {
      // Efficacy gate: once the engine fell back to walking, skips must prove
      // themselves through the recover threshold before they are paid for again.
      const bool was_walking = has_prev && prev == ValStrategy::kIncremental;
      if (skip_ewma_q16 < (was_walking ? kSkipEwmaRecoverQ16 : kSkipEwmaMinQ16)) {
        return ValStrategy::kIncremental;  // skips are not paying for themselves
      }
      // Abort-pressure level: 0 = counter-skip, 1 = bloom, 2 = incremental.
      // Rise through enter thresholds, fall through exit thresholds, stick in
      // between. A fresh descriptor starts at level 0, which reproduces the old
      // memoryless bands exactly.
      int level = !has_prev || prev == ValStrategy::kCounterSkip ||
                          prev == ValStrategy::kStripe
                      ? 0
                      : prev == ValStrategy::kBloom ? 1 : 2;
      if (abort_ewma_q16 >= kEwmaBloomMaxQ16) {
        level = 2;
      } else if (abort_ewma_q16 >= kEwmaCounterSkipMaxQ16 && level < 1) {
        level = 1;
      }
      if (abort_ewma_q16 < kEwmaCounterSkipExitQ16) {
        level = 0;
      } else if (abort_ewma_q16 < kEwmaBloomExitQ16 && level > 1) {
        level = 1;
      }
      if (level == 0) {
        return ValStrategy::kCounterSkip;
      }
      if (level == 1) {
        // Mid band: bloom where a ring exists, otherwise the counter skip still
        // beats walking (it is one shared load).
        return has_bloom_ring ? ValStrategy::kBloom : ValStrategy::kCounterSkip;
      }
      return ValStrategy::kIncremental;
    }
  }
  return ValStrategy::kIncremental;
}

// 128-bit, 2-hash bloom signature space for transactional locations (a location's
// signature hashes its metadata word address: the orec for orec layouts, the value
// word for the val layout). The 128 bits are organized as four 32-bit STRIPES —
// stripe s holds bit positions [32s, 32s+32) — matching the WriterRing's
// stripe-lane storage below: a probe touches only the stripes where the reader's
// bloom has bits at all. Two set bits per address keep even btree range-scan read
// sets (hundreds of entries) meaningfully under saturation, where the previous
// 32-bit bloom saturated at a few dozen entries (the ROADMAP ring-saturation
// item, measured in bench/abl_readset_layout).
struct Bloom128 {
  static constexpr int kStripes = 4;
  std::uint32_t s[kStripes] = {0, 0, 0, 0};

  bool Empty() const { return (s[0] | s[1] | s[2] | s[3]) == 0; }

  Bloom128& operator|=(const Bloom128& o) {
    for (int i = 0; i < kStripes; ++i) {
      s[i] |= o.s[i];
    }
    return *this;
  }

  bool Intersects(const Bloom128& o) const {
    return ((s[0] & o.s[0]) | (s[1] & o.s[1]) | (s[2] & o.s[2]) |
            (s[3] & o.s[3])) != 0;
  }
};

inline Bloom128 AddrBloom128(const void* p) {
  std::uint64_t h =
      static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(p)) >> 3;
  h *= 0x9e3779b97f4a7c15ULL;  // Fibonacci hashing, as in OrecTable::ForAddr
  const unsigned b0 = static_cast<unsigned>(h >> 57);         // bits 57..63
  const unsigned b1 = static_cast<unsigned>((h >> 33) & 127);  // bits 33..39
  Bloom128 b;
  b.s[b0 >> 5] |= 1u << (b0 & 31);
  b.s[b1 >> 5] |= 1u << (b1 & 31);
  return b;
}

// All-ones bloom: intersects everything, forcing readers to walk. The safe default
// for writer paths that cannot cheaply enumerate their write set.
inline Bloom128 Bloom128All() {
  return Bloom128{{0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu}};
}

// --- Partitioned NOrec: counter stripes -----------------------------------------
//
// The precise commit counter is sharded into kCounterStripes cache-line-separated
// per-stripe counters keyed by the metadata word's ADDRESS REGION (a
// 2^kCounterStripeShift-byte block): stripe(m) = (m >> shift) mod kCounterStripes.
// The partition key is the metadata word — the conflict unit — so a writer and a
// reader always agree on which stripe guards a location. Region (rather than
// hash-bit) keying is what makes the partition worth having: on layouts whose
// metadata is co-located with the data (the val layout, §2.4), a structurally
// local read set — a btree leaf-chain scan, a node's field cluster — occupies few
// stripes no matter how many ENTRIES it has, which is precisely where the
// fixed-width bloom ring saturates (abl_readset_layout's intersect-failure
// gradient). On the hash-scattered shared orec table the stripe of an orec is
// effectively random, so wide orec read sets still occupy every stripe; the
// region partition only degrades to the whole-counter behavior there, never below
// it (ROADMAP notes the striped-table alignment as follow-up).
//
// The stripe count matches the WriterRing's stripe lanes so the two summary
// structures shard at the same granularity; sweep both together if resizing.
inline constexpr int kCounterStripes = Bloom128::kStripes;
inline constexpr int kCounterStripeShift = 12;  // 4 KiB regions
inline constexpr unsigned kAllCounterStripesMask = (1u << kCounterStripes) - 1;

inline int CounterStripeOf(const void* metadata_word) {
  return static_cast<int>(
      (reinterpret_cast<std::uintptr_t>(metadata_word) >> kCounterStripeShift) &
      static_cast<std::uintptr_t>(kCounterStripes - 1));
}

inline int CountStripeBits(unsigned mask) {
  int n = 0;
  for (unsigned m = mask; m != 0; m &= m - 1) {
    ++n;
  }
  return n;
}

// A reader's per-stripe counter sample vector (the partitioned analogue of the
// single Word sample). Components are meaningful only for stripes the owner's
// read-stripe mask occupies; the rest are whatever the draw happened to load.
struct StripeSample {
  Word v[kCounterStripes] = {};
};

// Ring of recent writer commits, stripe-lane layout: commit i's 128-bit write
// bloom lives as four words — lanes_[s][i%64] holds (low 32 bits of commit index
// i, stripe s of the bloom) packed into ONE atomic word, so each lane word is
// self-validating: publication and lookup of a stripe are a single store/load
// with no tearing, and a reader that assembles stripes from different
// publications sees a tag mismatch and falls back to the walk. A stale tag
// (writer not yet published, or slot since overwritten) likewise just costs the
// walk — the ring is an optimization channel, never a correctness dependency.
//
// Why stripe-major storage: a range probe scans commits (since, upto] within each
// stripe lane, so L probed commits touch ceil(L/8) cache lines per CONSULTED
// stripe — and a reader consults only stripes where its read bloom has bits (a
// small read set occupies 1-2 of the 4 stripes). The previous layout paid one
// line per probed commit regardless. Writers store one word per stripe; the
// stores go to 4 distinct lines, but the writer path already owns the shared
// counter line (the seq-cst bump), so publication stays a small constant.
class WriterRing {
 public:
  static constexpr int kLog2Slots = 6;
  static constexpr int kStripes = Bloom128::kStripes;
  static constexpr Word kSlotMask = (Word{1} << kLog2Slots) - 1;
  // A reader walks at most this many ring entries before deciding the walk itself
  // is cheaper; also keeps the probe window well inside the ring to make overwrite
  // races (caught by the tag anyway) rare.
  static constexpr Word kMaxSkipRange = 32;
  static_assert(kMaxSkipRange < (Word{1} << 32),
                "probe window must stay far inside the 32-bit tag space for the "
                "documented 2^32 delayed-publish wrap bound to hold");

  // Probe-failure taxonomy. Callers pass their own (typically thread-local, see
  // WriterSummary::Fails) counter block — shared atomics here would add
  // cross-core coherence traffic exactly in the contended regime where probes
  // fail most. `intersect` is the ring-SATURATION signal
  // bench/abl_readset_layout reports: a saturated bloom intersects everything,
  // so rising intersect-failures with constant true conflict traffic mean the
  // bloom bits, not the workload, are the bottleneck.
  struct FailCounts {
    std::uint64_t window = 0;     // range wider than kMaxSkipRange
    std::uint64_t stale = 0;      // tag mismatch: unpublished or recycled slot
    std::uint64_t intersect = 0;  // bloom hit: possible overlap, must walk
  };

  void Publish(Word idx, const Bloom128& bloom) {
    const std::size_t slot = static_cast<std::size_t>(idx & kSlotMask);
    const Word tag = (idx & 0xffffffffULL) << 32;
    for (int s = 0; s < kStripes; ++s) {
      lanes_[s][slot].store(tag | bloom.s[s], std::memory_order_release);
    }
  }

  // True iff every commit in (since, upto] published a bloom disjoint from
  // `read_bloom`. False on any stale tag, intersection, or oversized range.
  // Stripes where `read_bloom` has no bits are skipped entirely — whatever a
  // writer published there cannot intersect an empty stripe, and tag freshness
  // is judged on the stripes actually consulted. (A fully empty read bloom means
  // an empty — trivially consistent — read set; vacuous success is correct.)
  //
  // Tag-wrap bound (pver.h-style documented risk): the publication tag keeps the
  // low 32 bits of the commit index, so a writer preempted between its counter
  // bump and its Publish() for EXACTLY 2^32 commits could republish a tag that
  // matches a current probe index and serve a stale bloom. With a sub-32-entry
  // probe window that requires a thread to sleep through four billion commits at
  // precisely the wrap distance; we accept the bound, as with pver's 15-bit
  // version wrap.
  bool RangeDisjoint(Word since, Word upto, const Bloom128& read_bloom,
                     FailCounts* fails) const {
    if (upto - since > kMaxSkipRange) {
      ++fails->window;
      return false;
    }
    for (int s = 0; s < kStripes; ++s) {
      if (read_bloom.s[s] == 0) {
        continue;
      }
      for (Word i = since + 1; i <= upto; ++i) {
        const Word w = lanes_[s][static_cast<std::size_t>(i & kSlotMask)].load(
            std::memory_order_acquire);
        if ((w >> 32) != (i & 0xffffffffULL)) {
          ++fails->stale;
          return false;  // not yet published, or already recycled
        }
        if ((static_cast<std::uint32_t>(w) & read_bloom.s[s]) != 0) {
          ++fails->intersect;
          return false;  // may have written something we read
        }
      }
    }
    return true;
  }

 private:
  // Stripe-major: lanes_[s] is the contiguous 64-slot lane of bloom stripe s.
  std::atomic<Word> lanes_[kStripes][std::size_t{1} << kLog2Slots] = {};
};

// Per-domain writer summary for orec-based families: the precise commit counter
// plus the bloom ring. Writers call PublishAndBump() after acquiring all commit
// locks and validating, BEFORE any data store or orec release (the ordering the
// soundness argument above depends on). The val layout reaches the same machinery
// through its ValidationPolicy (GlobalCounterBloomValidation in val_word.h).
//
// Summary concept (shared with the ValidationPolicy classes in val_word.h, so
// StrategyState below can drive either): Sample/Stable/BloomAdvance, plus
// CommitRangeDisjoint where kHasBloomRing is true.
// `kPartitionedCounters` opts the DOMAIN into partitioned NOrec: per-stripe
// commit counters alongside the precise global counter (which remains the ring
// publication index and the commit-skip own_idx). Writers then bump ONLY the
// stripes their write set touches — cache-line-separated, so two committers in
// disjoint regions no longer exchange a counter line — and bump them BEFORE the
// global counter, so any commit counted by a global sample already has its
// stripe bumps visible. It is a compile-time property of the whole domain
// because the protocol is writer-side: a domain with any kStripe reader needs
// EVERY writer bumping stripes; conversely a domain with none should not pay
// the extra seq-cst RMWs on its commit path (the orec ablation families each
// own a private domain, so they opt in per family; the val families share one
// ring domain, which therefore stays partitioned for ValPart's readers).
template <typename DomainTag, bool kPartitionedCounters = true>
struct WriterSummary {
  static constexpr bool kHasBloomRing = true;
  static constexpr bool kPartitioned = kPartitionedCounters;

  static std::atomic<Word>& Counter() {
    static CacheAligned<std::atomic<Word>> counter;
    return *counter;
  }

  static std::atomic<Word>& StripeCounter(int s) {
    static CacheAligned<std::atomic<Word>> counters[kCounterStripes];
    return *counters[s];
  }

  static Word StripeNow(int s) {
    return StripeCounter(s).load(std::memory_order_seq_cst);
  }

  static StripeSample StripeSampleNow() {
    StripeSample x;
    for (int s = 0; s < kCounterStripes; ++s) {
      x.v[s] = StripeNow(s);
    }
    return x;
  }

  static WriterRing& Ring() {
    static WriterRing* ring = new WriterRing();  // leaked: program-lifetime
    return *ring;
  }

  // Per-(thread, domain) ring probe-failure counters — the same pattern as
  // ValProbe/ClockProbe: plain thread-local integers, zero shared-state cost on
  // the (contended!) probe-failure paths. Benches read deltas around their
  // single-threaded probe passes.
  static WriterRing::FailCounts& Fails() {
    thread_local WriterRing::FailCounts fails;
    return fails;
  }

  static Word Sample() { return Counter().load(std::memory_order_seq_cst); }
  static bool Stable(Word sample) { return Sample() == sample; }

  // Returns the writer's own commit index. Commit-time skip tests compare it
  // against the sample anchor: own_idx == sample + 1 proves no FOREIGN bump lies
  // between anchor and bump (later writers validate after this writer's locks are
  // visible and detect them — see the crossing-committer note above).
  //
  // `stripe_mask` names the counter stripes the write set occupies (bit s set =
  // some locked metadata word lives in stripe s); callers that cannot enumerate
  // their write set pass kAllCounterStripesMask, which readers absorb as "every
  // stripe moved" — conservative, never unsound. Stripe bumps precede the global
  // bump (see kPartitioned above), and the whole sequence runs while every
  // commit lock is held, before the commit-time validation and the releasing
  // stores — each stripe inherits the global bump-before-validate discipline.
  static Word PublishAndBump(const Bloom128& write_bloom,
                             unsigned stripe_mask = kAllCounterStripesMask) {
    if constexpr (kPartitioned) {
      // Fault injection (no-ops in production): widen the gaps the ordering
      // arguments above close — stripe-bumps vs global bump, and the
      // bump -> ring-publish tail window readers probe through.
      SPECTM_FAILPOINT_PAUSE(failpoint::Site::kPreStripeBump);
      for (int s = 0; s < kCounterStripes; ++s) {
        if ((stripe_mask >> s) & 1u) {
          StripeCounter(s).fetch_add(1, std::memory_order_seq_cst);
        }
      }
    } else {
      (void)stripe_mask;  // non-partitioned domain: the global bump is the protocol
    }
    SPECTM_FAILPOINT_PAUSE(failpoint::Site::kPreBump);
    const Word idx = Counter().fetch_add(1, std::memory_order_seq_cst) + 1;
    SPECTM_FAILPOINT_PAUSE(failpoint::Site::kPreRingPublish);
    Ring().Publish(idx, write_bloom);
    // Schedule point (PR 8): entry published, locks still held — the explorer
    // drives readers through the publish -> release ordering both ways.
    SPECTM_SCHED_POINT(failpoint::Site::kPostRingPublish);
    return idx;
  }

  // Commit-time bloom pre-filter for a writer that has already bumped at
  // `own_idx`: the final walk is skippable when every FOREIGN commit in
  // (sample, own_idx) published a bloom disjoint from `read_bloom`. Own bump is
  // excluded (a writer may read-then-write the same location); commits after
  // own_idx validate after this writer's locks are visible and detect the
  // conflict themselves. The (sample, own_idx - 1] bound is soundness-critical —
  // this helper is the ONLY place it is written down.
  static bool CommitRangeDisjoint(Word sample, Word own_idx,
                                  const Bloom128& read_bloom) {
    return Ring().RangeDisjoint(sample, own_idx - 1, read_bloom, &Fails());
  }

  // Bloom pre-filter: advances *sample to the current counter when every
  // intervening commit's write bloom is disjoint from `read_bloom`.
  static bool BloomAdvance(Word* sample, const Bloom128& read_bloom) {
    const Word now = Sample();
    if (now == *sample) {
      return true;
    }
    if (!Ring().RangeDisjoint(*sample, now, read_bloom, &Fails())) {
      return false;
    }
    *sample = now;
    return true;
  }
};

// Per-(thread, domain) validation instrumentation, mirroring ClockProbe: plain
// thread-local integers, zero shared-state cost, release-build enabled. Tests and
// benches use these to prove the hot-path claims (counter skips firing, the EWMA
// switch actually transitioning strategy).
template <typename DomainTag>
struct ValProbe {
  struct Counters {
    std::uint64_t counter_skips = 0;      // walks avoided by a stable counter
    std::uint64_t bloom_skips = 0;        // walks avoided by ring disjointness
    std::uint64_t validation_walks = 0;   // full read-set walks performed
    std::uint64_t strategy_switches = 0;  // attempts started with a new strategy
    std::uint64_t summary_publishes = 0;  // writer-side bump+publish events
    // Partitioned-NOrec evidence: walks avoided because every READ-occupied
    // stripe counter was stable; writer-side per-stripe counter bumps; and walks
    // a kStripe attempt could not avoid even through the ring fallback (i.e.
    // genuinely same-stripe — at bloom granularity, same-location — traffic).
    std::uint64_t stripe_skips = 0;
    std::uint64_t stripe_bumps = 0;
    std::uint64_t cross_stripe_walks = 0;
    // Batch-validation kernel evidence (validate_batch.h): 4-entry SIMD
    // iterations and scalar-path entry checks. The CI SIMD and forced-scalar
    // jobs each assert their column is the one that moved.
    std::uint64_t simd_batches = 0;
    std::uint64_t scalar_checks = 0;
    // MVCC evidence (PR 9, ValMode::kSnapshot + src/tm/mvcc.h): reads served
    // at a pinned snapshot (in place or from a chain); chain nodes
    // dereferenced beyond the in-place fast path; nodes unlinked by writers
    // (recycled or deferred); and chain truncation operations. The zero-cost
    // RO-scan claim is "snapshot_reads > 0 while validation_walks stays 0".
    std::uint64_t snapshot_reads = 0;
    std::uint64_t version_hops = 0;
    std::uint64_t versions_retired = 0;
    std::uint64_t chain_splices = 0;
    // Not counters: the strategy the last attempt started with (for tests) and
    // the attempt tick driving the periodic skip-efficacy probe.
    ValStrategy last_strategy = ValStrategy::kIncremental;
    bool has_strategy = false;
    std::uint32_t attempt_tick = 0;
    // Hysteresis memory for ChooseStrategy: the last UN-probed adaptive choice
    // (the kSkipProbePeriod override must not masquerade as a recovered skip
    // phase, or incremental-with-probing would flap once per probe period).
    ValStrategy steady_strategy = ValStrategy::kIncremental;
    bool has_steady = false;
  };
  static Counters& Get() {
    thread_local Counters counters;
    return counters;
  }
  static void Reset() { Get() = Counters{}; }

  // Records the strategy chosen for a new attempt, counting transitions.
  static void OnStrategyChosen(ValStrategy s) {
    Counters& c = Get();
    if (c.has_strategy && c.last_strategy != s) {
      ++c.strategy_switches;
    }
    c.last_strategy = s;
    c.has_strategy = true;
  }
};

// Per-attempt strategy state, shared by all four engines (full/short x orec/val —
// previously open-coded in each with small drift; the ROADMAP refactor item).
// Owns the choose/probe-tick at attempt start, the persistent counter anchor
// (global sample AND, for partitioned summaries, the per-stripe sample vector),
// the read bloom + read-stripe mask, and the counter/stripe/bloom/walk skip
// quartet with its efficacy-EWMA feedback. SummaryT is anything satisfying the
// summary concept (WriterSummary, or a ValidationPolicy from val_word.h); ProbeT
// is the family's ValProbe.
//
// The anchor invariant every user maintains: `sample()` (when `sample_valid()`)
// names a summary-counter value at which the ENTIRE read log was simultaneously
// valid, and the stripe vector (when stripe-valid) was drawn at the same
// anchoring event, so "every READ-occupied stripe unchanged" proves the same
// thing one shard at a time (docs/VALIDATION.md carries the per-stripe
// re-derivation). Anchor() establishes both before the first read of an attempt;
// tracked walks re-establish them via ConfirmAnchorAfterWalk (tail rule: such
// walks must cover the whole log). A ring BloomAdvance moves only the GLOBAL
// anchor — the advanced-past commits bumped stripes the ring does not identify —
// so it invalidates the stripe anchor until the next full walk. Mutating members
// are mutable + const because engines call the skip paths from const validation
// paths (short_tm's ValidateRo).
template <typename SummaryT, typename ProbeT>
class StrategyState {
 public:
  // Outcome of the per-read skip paths: the walk was skipped (stable counter /
  // stable stripes / disjoint ring range), or the caller must run its walk.
  enum class ReadSkip : std::uint8_t { kSkipped, kMustWalk };

  // Pre-walk snapshot for tracked walks: the global sample plus (partitioned
  // summaries only) the stripe vector. Drawn global-first: writers bump stripes
  // BEFORE the global counter, so every commit a global sample counts already
  // has its stripe bumps included in a vector drawn after that sample.
  struct Snapshot {
    Word global = 0;
    StripeSample stripes;
  };

  // Re-arms for a fresh attempt: pick the strategy from the descriptor EWMAs
  // (hysteretic band edges keyed off the thread's previous steady choice, with
  // the periodic skip-efficacy probe under kAdaptive), reset the read bloom and
  // stripe mask, and anchor the persistent sample BEFORE any read (the skip
  // soundness argument needs the anchor drawn no later than the first read).
  void StartAttempt(ValMode mode, bool has_bloom_ring, const TxStats& stats) {
    typename ProbeT::Counters& probe = ProbeT::Get();
    strat_ = ChooseStrategy(mode, has_bloom_ring, AbortEwmaQ16(stats),
                            SkipEwmaQ16(stats), probe.has_steady,
                            probe.steady_strategy);
    if constexpr (!SummaryT::kPartitioned) {
      if (strat_ == ValStrategy::kStripe) {
        strat_ = ValStrategy::kCounterSkip;  // summary shards nothing: whole counter
      }
    }
    // The hysteresis memory records the steady choice BEFORE the probe override:
    // a probe attempt must not masquerade as a recovered skip phase, or
    // incremental-with-probing would flap once per probe period.
    probe.steady_strategy = strat_;
    probe.has_steady = true;
    if (mode == ValMode::kAdaptive && strat_ == ValStrategy::kIncremental &&
        ++probe.attempt_tick % kSkipProbePeriod == 0) {
      strat_ = ValStrategy::kCounterSkip;  // efficacy probe (see kSkipProbePeriod)
    }
    ProbeT::OnStrategyChosen(strat_);
    read_bloom_ = Bloom128{};
    read_stripe_mask_ = 0;
    Anchor();
  }

  ValStrategy strategy() const { return strat_; }
  Word sample() const { return sample_; }
  bool sample_valid() const { return sample_valid_; }
  const Bloom128& read_bloom() const { return read_bloom_; }
  unsigned read_stripe_mask() const { return read_stripe_mask_; }

  void Anchor() const {
    sample_ = SummaryT::Sample();
    sample_valid_ = true;
    if constexpr (SummaryT::kPartitioned) {
      // The stripe vector costs kCounterStripes extra seq-cst loads; only the
      // kStripe strategy ever consults it, so other strategies skip the draw.
      if (strat_ == ValStrategy::kStripe) {
        stripe_sample_ = SummaryT::StripeSampleNow();
        stripe_valid_ = true;
      } else {
        stripe_valid_ = false;
      }
    }
  }

  // Accumulates a just-read location's signature (bloom/stripe strategies only;
  // the other strategies never consult it, so the OR would be dead work). Under
  // kStripe both the bloom (for the ring fallback) and the stripe-occupancy mask
  // (for the per-stripe skip) are maintained.
  void NoteRead(const void* metadata_word) {
    if (strat_ == ValStrategy::kBloom || strat_ == ValStrategy::kStripe) {
      read_bloom_ |= AddrBloom128(metadata_word);
    }
    if (strat_ == ValStrategy::kStripe) {
      read_stripe_mask_ |= 1u << CounterStripeOf(metadata_word);
    }
  }

  // The skip paths, cheapest first: stable global counter, then (partitioned)
  // stable READ-occupied stripes, then ring disjointness, else walk. The stripe
  // test is consulted before the ring on purpose (the ISSUE's probe order): a
  // vector compare against private-ish lines beats scanning ring lanes, and it
  // keeps working after the read bloom has saturated the ring's filter. Updates
  // the skip-efficacy EWMA when `ewma_stats` is non-null (per-read call sites
  // feed the adaptive engine; final-validation call sites pass nullptr, matching
  // the engines' historical behavior).
  ReadSkip TrySkipRead(TxStats* ewma_stats) const {
    const bool skippable =
        strat_ != ValStrategy::kIncremental && sample_valid_;
    if (skippable && SummaryT::Stable(sample_)) {
      ++ProbeT::Get().counter_skips;
      if (ewma_stats != nullptr) {
        UpdateSkipEwma(*ewma_stats, /*skipped=*/true);
      }
      return ReadSkip::kSkipped;
    }
    if constexpr (SummaryT::kPartitioned) {
      if (skippable && strat_ == ValStrategy::kStripe && stripe_valid_ &&
          StripesUnchanged()) {
        ++ProbeT::Get().stripe_skips;
        if (ewma_stats != nullptr) {
          UpdateSkipEwma(*ewma_stats, /*skipped=*/true);
        }
        return ReadSkip::kSkipped;
      }
    }
    if (skippable &&
        (strat_ == ValStrategy::kBloom || strat_ == ValStrategy::kStripe) &&
        SummaryT::BloomAdvance(&sample_, read_bloom_)) {
      // Only the GLOBAL anchor advanced: the commits the ring proved disjoint
      // bumped stripes the ring does not name, so the stripe vector is stale
      // until a full walk (or fresh attempt) re-anchors it.
      if constexpr (SummaryT::kPartitioned) {
        stripe_valid_ = false;
      }
      ++ProbeT::Get().bloom_skips;
      if (ewma_stats != nullptr) {
        UpdateSkipEwma(*ewma_stats, /*skipped=*/true);
      }
      return ReadSkip::kSkipped;
    }
    if (strat_ != ValStrategy::kIncremental && ewma_stats != nullptr) {
      UpdateSkipEwma(*ewma_stats, /*skipped=*/false);
    }
    if (strat_ == ValStrategy::kStripe) {
      ++ProbeT::Get().cross_stripe_walks;  // same-stripe traffic beat every skip
    }
    return ReadSkip::kMustWalk;
  }

  // Commit-time skip for a writer that has bumped-and-published (bump-before-
  // validate; see the crossing-committer note atop this file). `own_idx` is the
  // writer's own commit index, or 0 for policies without one (per-thread counter
  // sums), which fall back to the fresh-sample test — sums count every bump, so
  // anchor+1 still means "exactly my own". `write_stripe_mask` is the stripe
  // mask this writer passed to PublishAndBump; the partitioned arm expects each
  // READ-occupied stripe at anchor + own contribution, so a foreign bump of any
  // stripe guarding a logged location before this writer's own bump is caught,
  // and writers bumping those stripes afterwards validate against this writer's
  // already-visible locks (the per-stripe crossing-committer argument,
  // docs/VALIDATION.md). The bloom arm exists only where the summary has a ring.
  bool TrySkipCommit(Word own_idx, unsigned write_stripe_mask = 0) const {
    if (strat_ == ValStrategy::kIncremental || !sample_valid_) {
      return false;
    }
    const bool counter_ok = own_idx != 0
                                ? own_idx == sample_ + 1
                                : SummaryT::Sample() == sample_ + 1;
    if (counter_ok) {
      ++ProbeT::Get().counter_skips;
      return true;
    }
    if constexpr (SummaryT::kPartitioned) {
      if (strat_ == ValStrategy::kStripe && stripe_valid_ &&
          StripesUnchangedWithOwn(write_stripe_mask)) {
        ++ProbeT::Get().stripe_skips;
        return true;
      }
    }
    if constexpr (SummaryT::kHasBloomRing) {
      if ((strat_ == ValStrategy::kBloom || strat_ == ValStrategy::kStripe) &&
          own_idx != 0 &&
          SummaryT::CommitRangeDisjoint(sample_, own_idx, read_bloom_)) {
        ++ProbeT::Get().bloom_skips;
        return true;
      }
    }
    return false;
  }

  // Snapshot for tracked walks and the val engines' stability loops: global
  // sample first, then the stripe vector (see Snapshot for why this order).
  Snapshot DrawSnapshot() const {
    Snapshot snap;
    snap.global = SummaryT::Sample();
    if constexpr (SummaryT::kPartitioned) {
      if (strat_ == ValStrategy::kStripe) {  // see Anchor(): nobody else reads it
        snap.stripes = SummaryT::StripeSampleNow();
      }
    }
    return snap;
  }

  // Tracked-walk anchoring: call with a Snapshot drawn BEFORE the walk. The
  // pre-walk snapshot becomes the new anchor only if the global counter stayed
  // stable across the walk (a writer that bumped mid-walk may have released
  // mid-walk too); a stable global also vouches for the stripe vector — no
  // commit completed, and an in-flight writer's pending stripe bump either
  // predates the vector (its still-held locks then failed the walk on any
  // logged target) or postdates it (its eventual release is caught as stripe
  // movement). On a failed confirm the walk's result stands but both anchors
  // are invalidated, so later skips walk until a quiet window re-anchors.
  void ConfirmAnchorAfterWalk(const Snapshot& pre_walk) const {
    if (SummaryT::Stable(pre_walk.global)) {
      sample_ = pre_walk.global;
      sample_valid_ = true;
      if constexpr (SummaryT::kPartitioned) {
        if (strat_ == ValStrategy::kStripe) {
          stripe_sample_ = pre_walk.stripes;
          stripe_valid_ = true;
        }
      }
    } else {
      sample_valid_ = false;
      if constexpr (SummaryT::kPartitioned) {
        stripe_valid_ = false;
      }
    }
  }

  // Direct re-anchor for walks that themselves loop until the global counter is
  // stable across a full pass (the val engines' NOrec-style ValidateReads); the
  // snapshot must be the one drawn before that pass.
  void ReanchorStable(const Snapshot& stable) const {
    sample_ = stable.global;
    sample_valid_ = true;
    if constexpr (SummaryT::kPartitioned) {
      if (strat_ == ValStrategy::kStripe) {
        stripe_sample_ = stable.stripes;
        stripe_valid_ = true;
      }
    }
  }

 private:
  // True iff every READ-occupied stripe counter equals its anchor component.
  // An empty mask is vacuously stable (an empty — trivially consistent — read
  // set, mirroring the empty-read-bloom note on WriterRing::RangeDisjoint).
  bool StripesUnchanged() const {
    for (int s = 0; s < kCounterStripes; ++s) {
      if (((read_stripe_mask_ >> s) & 1u) != 0 &&
          SummaryT::StripeNow(s) != stripe_sample_.v[s]) {
        return false;
      }
    }
    return true;
  }

  // Commit-time variant: this writer already bumped `own_mask`, so a
  // read-occupied stripe it also wrote must read exactly anchor + 1 (its own
  // bump and nothing else) and any other read-occupied stripe exactly the
  // anchor. anchor + 2 on a self-bumped stripe means a foreign bump crossed us
  // — the partitioned analogue of own_idx != sample + 1.
  bool StripesUnchangedWithOwn(unsigned own_mask) const {
    for (int s = 0; s < kCounterStripes; ++s) {
      if (((read_stripe_mask_ >> s) & 1u) == 0) {
        continue;
      }
      const Word expected = stripe_sample_.v[s] + ((own_mask >> s) & 1u);
      if (SummaryT::StripeNow(s) != expected) {
        return false;
      }
    }
    return true;
  }

  mutable Word sample_ = 0;
  mutable StripeSample stripe_sample_;
  Bloom128 read_bloom_;
  unsigned read_stripe_mask_ = 0;
  ValStrategy strat_ = ValStrategy::kIncremental;
  mutable bool sample_valid_ = false;
  mutable bool stripe_valid_ = false;
};

}  // namespace spectm

#endif  // SPECTM_TM_VALSTRATEGY_H_
