// Adaptive validation engine: the machinery that turns per-read revalidation cost
// from a fixed property of a TM family into a runtime choice.
//
// The paper's local-clock and value-based variants pay O(read-set) revalidation on
// every read to preserve opacity (§4.1, Figure 5) — the cost behind the Figs 7–9
// crossovers. No single remedy wins across workloads, so engines that opt in switch
// at runtime between three strategies, driven by the descriptor's abort-rate EWMA
// (txdesc.h):
//
//   kCounterSkip — NOrec's precise-counter skip: a domain-wide commit counter that
//     every writer bumps while holding its locks, before its releasing stores.
//     "Counter unchanged since the log was last known valid" proves no writer
//     released a value/version in between, so the O(read-set) walk is skipped.
//     Cheapest when writer commits are rare relative to this thread's reads.
//
//   kBloom — counter skip plus a bloom-summary pre-filter: each writer publishes a
//     32-bit bloom of its write set into a ring indexed by its counter bump; a
//     reader whose counter went stale intersects its own read-set bloom with the
//     blooms of the intervening commits and still skips the walk when they are
//     disjoint. Rescues the skip under write traffic that does not touch this
//     reader's read set, at the cost of maintaining the read bloom per read.
//
//   kIncremental — the paper's baseline: walk the read set, no shared-counter
//     reliance. The fallback when contention is high enough that summaries rarely
//     help and the walk happens anyway.
//
// Strategy choice (kAdaptive) is re-evaluated from the EWMA at every transaction
// start: low abort rate -> counter-skip, moderate -> bloom, high -> incremental.
// Fixed modes exist for ablation benches (bench/abl_adaptive_val) so the adaptive
// engine can be measured against every fixed point it switches between.
//
// Soundness of the skip paths (NOrec discipline, extended with blooms):
//   * Writer protocol: acquire ALL commit locks, bump-and-publish, validate (or
//     skip), only then perform the releasing stores. The lock is held across the
//     whole bump..release window, so a writer whose bump predates a reader's
//     sample is visibly locked on (or already done with) every location it will
//     store to.
//   * Every read-log entry was admitted through an unlocked observation (val-layout
//     reads spin past locks; orec reads sandwich an unlocked orec), so any writer
//     that had bumped before the reader's sample had already finished with that
//     location — its later stores cannot touch it.
//   * Therefore "counter unchanged since sample" => every logged location is
//     unchanged, and the newest read instant is a consistency point for the whole
//     log. The bloom extension weakens "unchanged counter" to "all intervening
//     commits have write blooms disjoint from my read bloom", which implies the
//     same thing for the logged locations; bloom false positives only cost a walk.
//
// Tail rule: the engines' classic per-read walk may exclude the just-read entry
// (consistent at its own read instant). A TRACKED walk — one that re-anchors the
// persistent sample — must instead cover the ENTIRE log: anchoring at counter c
// asserts "whole log valid at c", and on a preempted thread thousands of commits
// can land between the tail's read sandwich and the walk, silently invalidating
// the tail while the prefix still checks out.
//
// Why writers bump BEFORE their own commit-time validation (not after, as a
// reader-only analysis would allow): two crossing committers — R reads X and
// writes Y while W reads Y and writes X — could otherwise BOTH skip/pass: W
// validates before R locks Y, R's counter check passes before W bumps, and both
// store, committing a write skew (observed as lost hash-set unlinks => double
// retire). With bump-before-validate, a committing writer may only skip when NO
// foreign bump lies in (its sample anchor, its own bump]; of two crossing
// committers one always bumps second, and that one's validation runs after the
// first's locks are in place — the locked-orec (or locked-word) check then kills
// it. The commit-time walk must therefore stay conservative: a foreign lock on a
// read-log entry fails validation even though the underlying version is intact.
#ifndef SPECTM_TM_VALSTRATEGY_H_
#define SPECTM_TM_VALSTRATEGY_H_

#include <atomic>
#include <cstdint>

#include "src/common/cacheline.h"
#include "src/common/tagged.h"
#include "src/tm/txdesc.h"

namespace spectm {

// Per-family validation mode. kPassive is the zero-overhead default (no summary
// maintenance at all — existing families are bit-for-bit unchanged); kIncremental
// maintains the writer summary but never consults it (measures pure maintenance
// overhead); the rest consult it as described above.
enum class ValMode : std::uint8_t {
  kPassive,
  kIncremental,
  kCounterSkip,
  kBloom,
  kAdaptive,
};

// The strategy a transaction attempt actually runs with (kAdaptive resolves to one
// of these at Start()).
enum class ValStrategy : std::uint8_t { kIncremental, kCounterSkip, kBloom };

inline const char* ValStrategyName(ValStrategy s) {
  switch (s) {
    case ValStrategy::kIncremental:
      return "incremental";
    case ValStrategy::kCounterSkip:
      return "counter-skip";
    case ValStrategy::kBloom:
      return "bloom";
  }
  return "?";
}

// EWMA thresholds for the adaptive choice, Q16 (65536 = 100% abort rate).
//   < ~3%  aborts: contention is rare; the bare counter skip almost always fires
//           and bloom maintenance would be pure overhead.
//   < 25%  aborts: writers are active; pay the per-read bloom OR so disjoint write
//           traffic still skips the walk.
//   >= 25% aborts: walks happen regardless; stop paying for summaries.
inline constexpr std::uint32_t kEwmaCounterSkipMaxQ16 = 1u << 11;  // ~3.1%
inline constexpr std::uint32_t kEwmaBloomMaxQ16 = 1u << 14;        // 25%

// Below this skip-efficacy EWMA (txdesc.h) the adaptive engine stops paying for
// skip attempts: when the domain's write traffic moves the counter between
// almost every pair of reads, the skip checks are pure overhead on top of the
// walk that happens anyway, and plain incremental is the better fixed point.
inline constexpr std::uint32_t kSkipEwmaMinQ16 = 1u << 13;  // 12.5%

// In the incremental-because-skips-don't-pay regime the efficacy EWMA would
// freeze (no skip attempts -> no updates), so every N-th attempt probes a skip
// strategy anyway to notice when the workload turns quiet again.
inline constexpr std::uint32_t kSkipProbePeriod = 16;

inline ValStrategy ChooseStrategy(ValMode mode, bool has_bloom_ring,
                                  std::uint32_t abort_ewma_q16,
                                  std::uint32_t skip_ewma_q16 = 65536u) {
  switch (mode) {
    case ValMode::kPassive:
    case ValMode::kIncremental:
      return ValStrategy::kIncremental;
    case ValMode::kCounterSkip:
      return ValStrategy::kCounterSkip;
    case ValMode::kBloom:
      return has_bloom_ring ? ValStrategy::kBloom : ValStrategy::kCounterSkip;
    case ValMode::kAdaptive:
      if (skip_ewma_q16 < kSkipEwmaMinQ16) {
        return ValStrategy::kIncremental;  // skips are not paying for themselves
      }
      if (abort_ewma_q16 < kEwmaCounterSkipMaxQ16) {
        return ValStrategy::kCounterSkip;
      }
      if (abort_ewma_q16 < kEwmaBloomMaxQ16) {
        // Mid band: bloom where a ring exists, otherwise the counter skip still
        // beats walking (it is one shared load).
        return has_bloom_ring ? ValStrategy::kBloom : ValStrategy::kCounterSkip;
      }
      return ValStrategy::kIncremental;
  }
  return ValStrategy::kIncremental;
}

// 32-bit, 2-hash bloom signature of one transactional location (its metadata word
// address: the orec for orec layouts, the value word for the val layout). Two set
// bits keep small read/write sets well under saturation: an 8-entry write set
// occupies <= 16 of 32 bits, so a disjoint 4-entry read set still tests clear with
// probability ~(1/2)^8 per hash... in practice collisions only cost a spurious walk.
inline std::uint32_t AddrBloom32(const void* p) {
  std::uint64_t h =
      static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(p)) >> 3;
  h *= 0x9e3779b97f4a7c15ULL;  // Fibonacci hashing, as in OrecTable::ForAddr
  return (1u << ((h >> 32) & 31)) | (1u << ((h >> 59) & 31));
}

// All-ones bloom: intersects everything, forcing readers to walk. The safe default
// for writer paths that cannot cheaply enumerate their write set.
inline constexpr std::uint32_t kBloomAll = 0xffffffffu;

// Ring of recent writer commits: slot i%64 holds (low 32 bits of commit index i,
// 32-bit write bloom) packed into one atomic word so publication and lookup are a
// single store/load with no tearing. A reader that finds a stale tag (writer not
// yet published, or slot since overwritten) simply falls back to the walk — the
// ring is an optimization channel, never a correctness dependency.
class WriterRing {
 public:
  static constexpr int kLog2Slots = 6;
  static constexpr Word kSlotMask = (Word{1} << kLog2Slots) - 1;
  // A reader walks at most this many ring entries before deciding the walk itself
  // is cheaper; also keeps the probe window well inside the ring to make overwrite
  // races (caught by the tag anyway) rare.
  static constexpr Word kMaxSkipRange = 32;
  static_assert(kMaxSkipRange < (Word{1} << 32),
                "probe window must stay far inside the 32-bit tag space for the "
                "documented 2^32 delayed-publish wrap bound to hold");

  void Publish(Word idx, std::uint32_t bloom) {
    slots_[idx & kSlotMask].value.store(((idx & 0xffffffffULL) << 32) | bloom,
                                        std::memory_order_release);
  }

  // True iff every commit in (since, upto] published a bloom disjoint from
  // `read_bloom`. False on any stale tag, intersection, or oversized range.
  //
  // Tag-wrap bound (pver.h-style documented risk): the publication tag keeps the
  // low 32 bits of the commit index, so a writer preempted between its counter
  // bump and its Publish() for EXACTLY 2^32 commits could republish a tag that
  // matches a current probe index and serve a stale bloom. With a sub-32-entry
  // probe window that requires a thread to sleep through four billion commits at
  // precisely the wrap distance; we accept the bound, as with pver's 15-bit
  // version wrap.
  bool RangeDisjoint(Word since, Word upto, std::uint32_t read_bloom) const {
    if (upto - since > kMaxSkipRange) {
      return false;
    }
    for (Word i = since + 1; i <= upto; ++i) {
      const Word w = slots_[i & kSlotMask].value.load(std::memory_order_acquire);
      if ((w >> 32) != (i & 0xffffffffULL)) {
        return false;  // not yet published, or already recycled
      }
      if ((static_cast<std::uint32_t>(w) & read_bloom) != 0) {
        return false;  // may have written something we read
      }
    }
    return true;
  }

 private:
  CacheAligned<std::atomic<Word>> slots_[std::size_t{1} << kLog2Slots];
};

// Per-domain writer summary for orec-based families: the precise commit counter
// plus the bloom ring. Writers call PublishAndBump() after acquiring all commit
// locks and validating, BEFORE any data store or orec release (the ordering the
// soundness argument above depends on). The val layout reaches the same machinery
// through its ValidationPolicy (GlobalCounterBloomValidation in val_word.h).
template <typename DomainTag>
struct WriterSummary {
  static std::atomic<Word>& Counter() {
    static CacheAligned<std::atomic<Word>> counter;
    return *counter;
  }

  static WriterRing& Ring() {
    static WriterRing* ring = new WriterRing();  // leaked: program-lifetime
    return *ring;
  }

  static Word Sample() { return Counter().load(std::memory_order_seq_cst); }
  static bool Stable(Word sample) { return Sample() == sample; }

  // Returns the writer's own commit index. Commit-time skip tests compare it
  // against the sample anchor: own_idx == sample + 1 proves no FOREIGN bump lies
  // between anchor and bump (later writers validate after this writer's locks are
  // visible and detect them — see the crossing-committer note above).
  static Word PublishAndBump(std::uint32_t write_bloom) {
    const Word idx = Counter().fetch_add(1, std::memory_order_seq_cst) + 1;
    Ring().Publish(idx, write_bloom);
    return idx;
  }

  // Commit-time bloom pre-filter for a writer that has already bumped at
  // `own_idx`: the final walk is skippable when every FOREIGN commit in
  // (sample, own_idx) published a bloom disjoint from `read_bloom`. Own bump is
  // excluded (a writer may read-then-write the same location); commits after
  // own_idx validate after this writer's locks are visible and detect the
  // conflict themselves. The (sample, own_idx - 1] bound is soundness-critical —
  // this helper is the ONLY place it is written down.
  static bool CommitRangeDisjoint(Word sample, Word own_idx,
                                  std::uint32_t read_bloom) {
    return Ring().RangeDisjoint(sample, own_idx - 1, read_bloom);
  }

  // Bloom pre-filter: advances *sample to the current counter when every
  // intervening commit's write bloom is disjoint from `read_bloom`.
  static bool BloomAdvance(Word* sample, std::uint32_t read_bloom) {
    const Word now = Sample();
    if (now == *sample) {
      return true;
    }
    if (!Ring().RangeDisjoint(*sample, now, read_bloom)) {
      return false;
    }
    *sample = now;
    return true;
  }
};

// Per-(thread, domain) validation instrumentation, mirroring ClockProbe: plain
// thread-local integers, zero shared-state cost, release-build enabled. Tests and
// benches use these to prove the hot-path claims (counter skips firing, the EWMA
// switch actually transitioning strategy).
template <typename DomainTag>
struct ValProbe {
  struct Counters {
    std::uint64_t counter_skips = 0;      // walks avoided by a stable counter
    std::uint64_t bloom_skips = 0;        // walks avoided by ring disjointness
    std::uint64_t validation_walks = 0;   // full read-set walks performed
    std::uint64_t strategy_switches = 0;  // attempts started with a new strategy
    std::uint64_t summary_publishes = 0;  // writer-side bump+publish events
    // Not counters: the strategy the last attempt started with (for tests) and
    // the attempt tick driving the periodic skip-efficacy probe.
    ValStrategy last_strategy = ValStrategy::kIncremental;
    bool has_strategy = false;
    std::uint32_t attempt_tick = 0;
  };
  static Counters& Get() {
    thread_local Counters counters;
    return counters;
  }
  static void Reset() { Get() = Counters{}; }

  // Records the strategy chosen for a new attempt, counting transitions.
  static void OnStrategyChosen(ValStrategy s) {
    Counters& c = Get();
    if (c.has_strategy && c.last_strategy != s) {
      ++c.strategy_switches;
    }
    c.last_strategy = s;
    c.has_strategy = true;
  }
};

}  // namespace spectm

#endif  // SPECTM_TM_VALSTRATEGY_H_
