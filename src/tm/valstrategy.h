// Adaptive validation engine: the machinery that turns per-read revalidation cost
// from a fixed property of a TM family into a runtime choice.
//
// The paper's local-clock and value-based variants pay O(read-set) revalidation on
// every read to preserve opacity (§4.1, Figure 5) — the cost behind the Figs 7–9
// crossovers. No single remedy wins across workloads, so engines that opt in switch
// at runtime between three strategies, driven by the descriptor's abort-rate EWMA
// (txdesc.h):
//
//   kCounterSkip — NOrec's precise-counter skip: a domain-wide commit counter that
//     every writer bumps while holding its locks, before its releasing stores.
//     "Counter unchanged since the log was last known valid" proves no writer
//     released a value/version in between, so the O(read-set) walk is skipped.
//     Cheapest when writer commits are rare relative to this thread's reads.
//
//   kBloom — counter skip plus a bloom-summary pre-filter: each writer publishes a
//     32-bit bloom of its write set into a ring indexed by its counter bump; a
//     reader whose counter went stale intersects its own read-set bloom with the
//     blooms of the intervening commits and still skips the walk when they are
//     disjoint. Rescues the skip under write traffic that does not touch this
//     reader's read set, at the cost of maintaining the read bloom per read.
//
//   kIncremental — the paper's baseline: walk the read set, no shared-counter
//     reliance. The fallback when contention is high enough that summaries rarely
//     help and the walk happens anyway.
//
// Strategy choice (kAdaptive) is re-evaluated from the EWMA at every transaction
// start: low abort rate -> counter-skip, moderate -> bloom, high -> incremental.
// Fixed modes exist for ablation benches (bench/abl_adaptive_val) so the adaptive
// engine can be measured against every fixed point it switches between.
//
// Soundness of the skip paths (NOrec discipline, extended with blooms):
//   * Writer protocol: acquire ALL commit locks, bump-and-publish, validate (or
//     skip), only then perform the releasing stores. The lock is held across the
//     whole bump..release window, so a writer whose bump predates a reader's
//     sample is visibly locked on (or already done with) every location it will
//     store to.
//   * Every read-log entry was admitted through an unlocked observation (val-layout
//     reads spin past locks; orec reads sandwich an unlocked orec), so any writer
//     that had bumped before the reader's sample had already finished with that
//     location — its later stores cannot touch it.
//   * Therefore "counter unchanged since sample" => every logged location is
//     unchanged, and the newest read instant is a consistency point for the whole
//     log. The bloom extension weakens "unchanged counter" to "all intervening
//     commits have write blooms disjoint from my read bloom", which implies the
//     same thing for the logged locations; bloom false positives only cost a walk.
//
// Tail rule: the engines' classic per-read walk may exclude the just-read entry
// (consistent at its own read instant). A TRACKED walk — one that re-anchors the
// persistent sample — must instead cover the ENTIRE log: anchoring at counter c
// asserts "whole log valid at c", and on a preempted thread thousands of commits
// can land between the tail's read sandwich and the walk, silently invalidating
// the tail while the prefix still checks out.
//
// Why writers bump BEFORE their own commit-time validation (not after, as a
// reader-only analysis would allow): two crossing committers — R reads X and
// writes Y while W reads Y and writes X — could otherwise BOTH skip/pass: W
// validates before R locks Y, R's counter check passes before W bumps, and both
// store, committing a write skew (observed as lost hash-set unlinks => double
// retire). With bump-before-validate, a committing writer may only skip when NO
// foreign bump lies in (its sample anchor, its own bump]; of two crossing
// committers one always bumps second, and that one's validation runs after the
// first's locks are in place — the locked-orec (or locked-word) check then kills
// it. The commit-time walk must therefore stay conservative: a foreign lock on a
// read-log entry fails validation even though the underlying version is intact.
#ifndef SPECTM_TM_VALSTRATEGY_H_
#define SPECTM_TM_VALSTRATEGY_H_

#include <atomic>
#include <cstdint>

#include "src/common/cacheline.h"
#include "src/common/tagged.h"
#include "src/tm/txdesc.h"

namespace spectm {

// Per-family validation mode. kPassive is the zero-overhead default (no summary
// maintenance at all — existing families are bit-for-bit unchanged); kIncremental
// maintains the writer summary but never consults it (measures pure maintenance
// overhead); the rest consult it as described above.
enum class ValMode : std::uint8_t {
  kPassive,
  kIncremental,
  kCounterSkip,
  kBloom,
  kAdaptive,
};

// The strategy a transaction attempt actually runs with (kAdaptive resolves to one
// of these at Start()).
enum class ValStrategy : std::uint8_t { kIncremental, kCounterSkip, kBloom };

inline const char* ValStrategyName(ValStrategy s) {
  switch (s) {
    case ValStrategy::kIncremental:
      return "incremental";
    case ValStrategy::kCounterSkip:
      return "counter-skip";
    case ValStrategy::kBloom:
      return "bloom";
  }
  return "?";
}

// EWMA thresholds for the adaptive choice, Q16 (65536 = 100% abort rate).
//   < ~3%  aborts: contention is rare; the bare counter skip almost always fires
//           and bloom maintenance would be pure overhead.
//   < 25%  aborts: writers are active; pay the per-read bloom OR so disjoint write
//           traffic still skips the walk.
//   >= 25% aborts: walks happen regardless; stop paying for summaries.
inline constexpr std::uint32_t kEwmaCounterSkipMaxQ16 = 1u << 11;  // ~3.1%
inline constexpr std::uint32_t kEwmaBloomMaxQ16 = 1u << 14;        // 25%

// Below this skip-efficacy EWMA (txdesc.h) the adaptive engine stops paying for
// skip attempts: when the domain's write traffic moves the counter between
// almost every pair of reads, the skip checks are pure overhead on top of the
// walk that happens anyway, and plain incremental is the better fixed point.
inline constexpr std::uint32_t kSkipEwmaMinQ16 = 1u << 13;  // 12.5%

// In the incremental-because-skips-don't-pay regime the efficacy EWMA would
// freeze (no skip attempts -> no updates), so every N-th attempt probes a skip
// strategy anyway to notice when the workload turns quiet again.
inline constexpr std::uint32_t kSkipProbePeriod = 16;

inline ValStrategy ChooseStrategy(ValMode mode, bool has_bloom_ring,
                                  std::uint32_t abort_ewma_q16,
                                  std::uint32_t skip_ewma_q16 = 65536u) {
  switch (mode) {
    case ValMode::kPassive:
    case ValMode::kIncremental:
      return ValStrategy::kIncremental;
    case ValMode::kCounterSkip:
      return ValStrategy::kCounterSkip;
    case ValMode::kBloom:
      return has_bloom_ring ? ValStrategy::kBloom : ValStrategy::kCounterSkip;
    case ValMode::kAdaptive:
      if (skip_ewma_q16 < kSkipEwmaMinQ16) {
        return ValStrategy::kIncremental;  // skips are not paying for themselves
      }
      if (abort_ewma_q16 < kEwmaCounterSkipMaxQ16) {
        return ValStrategy::kCounterSkip;
      }
      if (abort_ewma_q16 < kEwmaBloomMaxQ16) {
        // Mid band: bloom where a ring exists, otherwise the counter skip still
        // beats walking (it is one shared load).
        return has_bloom_ring ? ValStrategy::kBloom : ValStrategy::kCounterSkip;
      }
      return ValStrategy::kIncremental;
  }
  return ValStrategy::kIncremental;
}

// 128-bit, 2-hash bloom signature space for transactional locations (a location's
// signature hashes its metadata word address: the orec for orec layouts, the value
// word for the val layout). The 128 bits are organized as four 32-bit STRIPES —
// stripe s holds bit positions [32s, 32s+32) — matching the WriterRing's
// stripe-lane storage below: a probe touches only the stripes where the reader's
// bloom has bits at all. Two set bits per address keep even btree range-scan read
// sets (hundreds of entries) meaningfully under saturation, where the previous
// 32-bit bloom saturated at a few dozen entries (the ROADMAP ring-saturation
// item, measured in bench/abl_readset_layout).
struct Bloom128 {
  static constexpr int kStripes = 4;
  std::uint32_t s[kStripes] = {0, 0, 0, 0};

  bool Empty() const { return (s[0] | s[1] | s[2] | s[3]) == 0; }

  Bloom128& operator|=(const Bloom128& o) {
    for (int i = 0; i < kStripes; ++i) {
      s[i] |= o.s[i];
    }
    return *this;
  }

  bool Intersects(const Bloom128& o) const {
    return ((s[0] & o.s[0]) | (s[1] & o.s[1]) | (s[2] & o.s[2]) |
            (s[3] & o.s[3])) != 0;
  }
};

inline Bloom128 AddrBloom128(const void* p) {
  std::uint64_t h =
      static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(p)) >> 3;
  h *= 0x9e3779b97f4a7c15ULL;  // Fibonacci hashing, as in OrecTable::ForAddr
  const unsigned b0 = static_cast<unsigned>(h >> 57);         // bits 57..63
  const unsigned b1 = static_cast<unsigned>((h >> 33) & 127);  // bits 33..39
  Bloom128 b;
  b.s[b0 >> 5] |= 1u << (b0 & 31);
  b.s[b1 >> 5] |= 1u << (b1 & 31);
  return b;
}

// All-ones bloom: intersects everything, forcing readers to walk. The safe default
// for writer paths that cannot cheaply enumerate their write set.
inline Bloom128 Bloom128All() {
  return Bloom128{{0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu}};
}

// Ring of recent writer commits, stripe-lane layout: commit i's 128-bit write
// bloom lives as four words — lanes_[s][i%64] holds (low 32 bits of commit index
// i, stripe s of the bloom) packed into ONE atomic word, so each lane word is
// self-validating: publication and lookup of a stripe are a single store/load
// with no tearing, and a reader that assembles stripes from different
// publications sees a tag mismatch and falls back to the walk. A stale tag
// (writer not yet published, or slot since overwritten) likewise just costs the
// walk — the ring is an optimization channel, never a correctness dependency.
//
// Why stripe-major storage: a range probe scans commits (since, upto] within each
// stripe lane, so L probed commits touch ceil(L/8) cache lines per CONSULTED
// stripe — and a reader consults only stripes where its read bloom has bits (a
// small read set occupies 1-2 of the 4 stripes). The previous layout paid one
// line per probed commit regardless. Writers store one word per stripe; the
// stores go to 4 distinct lines, but the writer path already owns the shared
// counter line (the seq-cst bump), so publication stays a small constant.
class WriterRing {
 public:
  static constexpr int kLog2Slots = 6;
  static constexpr int kStripes = Bloom128::kStripes;
  static constexpr Word kSlotMask = (Word{1} << kLog2Slots) - 1;
  // A reader walks at most this many ring entries before deciding the walk itself
  // is cheaper; also keeps the probe window well inside the ring to make overwrite
  // races (caught by the tag anyway) rare.
  static constexpr Word kMaxSkipRange = 32;
  static_assert(kMaxSkipRange < (Word{1} << 32),
                "probe window must stay far inside the 32-bit tag space for the "
                "documented 2^32 delayed-publish wrap bound to hold");

  // Probe-failure taxonomy. Callers pass their own (typically thread-local, see
  // WriterSummary::Fails) counter block — shared atomics here would add
  // cross-core coherence traffic exactly in the contended regime where probes
  // fail most. `intersect` is the ring-SATURATION signal
  // bench/abl_readset_layout reports: a saturated bloom intersects everything,
  // so rising intersect-failures with constant true conflict traffic mean the
  // bloom bits, not the workload, are the bottleneck.
  struct FailCounts {
    std::uint64_t window = 0;     // range wider than kMaxSkipRange
    std::uint64_t stale = 0;      // tag mismatch: unpublished or recycled slot
    std::uint64_t intersect = 0;  // bloom hit: possible overlap, must walk
  };

  void Publish(Word idx, const Bloom128& bloom) {
    const std::size_t slot = static_cast<std::size_t>(idx & kSlotMask);
    const Word tag = (idx & 0xffffffffULL) << 32;
    for (int s = 0; s < kStripes; ++s) {
      lanes_[s][slot].store(tag | bloom.s[s], std::memory_order_release);
    }
  }

  // True iff every commit in (since, upto] published a bloom disjoint from
  // `read_bloom`. False on any stale tag, intersection, or oversized range.
  // Stripes where `read_bloom` has no bits are skipped entirely — whatever a
  // writer published there cannot intersect an empty stripe, and tag freshness
  // is judged on the stripes actually consulted. (A fully empty read bloom means
  // an empty — trivially consistent — read set; vacuous success is correct.)
  //
  // Tag-wrap bound (pver.h-style documented risk): the publication tag keeps the
  // low 32 bits of the commit index, so a writer preempted between its counter
  // bump and its Publish() for EXACTLY 2^32 commits could republish a tag that
  // matches a current probe index and serve a stale bloom. With a sub-32-entry
  // probe window that requires a thread to sleep through four billion commits at
  // precisely the wrap distance; we accept the bound, as with pver's 15-bit
  // version wrap.
  bool RangeDisjoint(Word since, Word upto, const Bloom128& read_bloom,
                     FailCounts* fails) const {
    if (upto - since > kMaxSkipRange) {
      ++fails->window;
      return false;
    }
    for (int s = 0; s < kStripes; ++s) {
      if (read_bloom.s[s] == 0) {
        continue;
      }
      for (Word i = since + 1; i <= upto; ++i) {
        const Word w = lanes_[s][static_cast<std::size_t>(i & kSlotMask)].load(
            std::memory_order_acquire);
        if ((w >> 32) != (i & 0xffffffffULL)) {
          ++fails->stale;
          return false;  // not yet published, or already recycled
        }
        if ((static_cast<std::uint32_t>(w) & read_bloom.s[s]) != 0) {
          ++fails->intersect;
          return false;  // may have written something we read
        }
      }
    }
    return true;
  }

 private:
  // Stripe-major: lanes_[s] is the contiguous 64-slot lane of bloom stripe s.
  std::atomic<Word> lanes_[kStripes][std::size_t{1} << kLog2Slots] = {};
};

// Per-domain writer summary for orec-based families: the precise commit counter
// plus the bloom ring. Writers call PublishAndBump() after acquiring all commit
// locks and validating, BEFORE any data store or orec release (the ordering the
// soundness argument above depends on). The val layout reaches the same machinery
// through its ValidationPolicy (GlobalCounterBloomValidation in val_word.h).
//
// Summary concept (shared with the ValidationPolicy classes in val_word.h, so
// StrategyState below can drive either): Sample/Stable/BloomAdvance, plus
// CommitRangeDisjoint where kHasBloomRing is true.
template <typename DomainTag>
struct WriterSummary {
  static constexpr bool kHasBloomRing = true;

  static std::atomic<Word>& Counter() {
    static CacheAligned<std::atomic<Word>> counter;
    return *counter;
  }

  static WriterRing& Ring() {
    static WriterRing* ring = new WriterRing();  // leaked: program-lifetime
    return *ring;
  }

  // Per-(thread, domain) ring probe-failure counters — the same pattern as
  // ValProbe/ClockProbe: plain thread-local integers, zero shared-state cost on
  // the (contended!) probe-failure paths. Benches read deltas around their
  // single-threaded probe passes.
  static WriterRing::FailCounts& Fails() {
    thread_local WriterRing::FailCounts fails;
    return fails;
  }

  static Word Sample() { return Counter().load(std::memory_order_seq_cst); }
  static bool Stable(Word sample) { return Sample() == sample; }

  // Returns the writer's own commit index. Commit-time skip tests compare it
  // against the sample anchor: own_idx == sample + 1 proves no FOREIGN bump lies
  // between anchor and bump (later writers validate after this writer's locks are
  // visible and detect them — see the crossing-committer note above).
  static Word PublishAndBump(const Bloom128& write_bloom) {
    const Word idx = Counter().fetch_add(1, std::memory_order_seq_cst) + 1;
    Ring().Publish(idx, write_bloom);
    return idx;
  }

  // Commit-time bloom pre-filter for a writer that has already bumped at
  // `own_idx`: the final walk is skippable when every FOREIGN commit in
  // (sample, own_idx) published a bloom disjoint from `read_bloom`. Own bump is
  // excluded (a writer may read-then-write the same location); commits after
  // own_idx validate after this writer's locks are visible and detect the
  // conflict themselves. The (sample, own_idx - 1] bound is soundness-critical —
  // this helper is the ONLY place it is written down.
  static bool CommitRangeDisjoint(Word sample, Word own_idx,
                                  const Bloom128& read_bloom) {
    return Ring().RangeDisjoint(sample, own_idx - 1, read_bloom, &Fails());
  }

  // Bloom pre-filter: advances *sample to the current counter when every
  // intervening commit's write bloom is disjoint from `read_bloom`.
  static bool BloomAdvance(Word* sample, const Bloom128& read_bloom) {
    const Word now = Sample();
    if (now == *sample) {
      return true;
    }
    if (!Ring().RangeDisjoint(*sample, now, read_bloom, &Fails())) {
      return false;
    }
    *sample = now;
    return true;
  }
};

// Per-(thread, domain) validation instrumentation, mirroring ClockProbe: plain
// thread-local integers, zero shared-state cost, release-build enabled. Tests and
// benches use these to prove the hot-path claims (counter skips firing, the EWMA
// switch actually transitioning strategy).
template <typename DomainTag>
struct ValProbe {
  struct Counters {
    std::uint64_t counter_skips = 0;      // walks avoided by a stable counter
    std::uint64_t bloom_skips = 0;        // walks avoided by ring disjointness
    std::uint64_t validation_walks = 0;   // full read-set walks performed
    std::uint64_t strategy_switches = 0;  // attempts started with a new strategy
    std::uint64_t summary_publishes = 0;  // writer-side bump+publish events
    // Batch-validation kernel evidence (validate_batch.h): 4-entry SIMD
    // iterations and scalar-path entry checks. The CI SIMD and forced-scalar
    // jobs each assert their column is the one that moved.
    std::uint64_t simd_batches = 0;
    std::uint64_t scalar_checks = 0;
    // Not counters: the strategy the last attempt started with (for tests) and
    // the attempt tick driving the periodic skip-efficacy probe.
    ValStrategy last_strategy = ValStrategy::kIncremental;
    bool has_strategy = false;
    std::uint32_t attempt_tick = 0;
  };
  static Counters& Get() {
    thread_local Counters counters;
    return counters;
  }
  static void Reset() { Get() = Counters{}; }

  // Records the strategy chosen for a new attempt, counting transitions.
  static void OnStrategyChosen(ValStrategy s) {
    Counters& c = Get();
    if (c.has_strategy && c.last_strategy != s) {
      ++c.strategy_switches;
    }
    c.last_strategy = s;
    c.has_strategy = true;
  }
};

// Per-attempt strategy state, shared by all four engines (full/short x orec/val —
// previously open-coded in each with small drift; the ROADMAP refactor item).
// Owns the choose/probe-tick at attempt start, the persistent counter anchor, the
// read bloom, and the counter/bloom/walk skip triad with its efficacy-EWMA
// feedback. SummaryT is anything satisfying the summary concept (WriterSummary,
// or a ValidationPolicy from val_word.h); ProbeT is the family's ValProbe.
//
// The anchor invariant every user maintains: `sample()` (when `sample_valid()`)
// names a summary-counter value at which the ENTIRE read log was simultaneously
// valid. Anchor() establishes it before the first read of an attempt; tracked
// walks re-establish it via ConfirmAnchorAfterWalk (tail rule: such walks must
// cover the whole log). Mutating members are mutable + const because engines
// call the triad from const validation paths (short_tm's ValidateRo).
template <typename SummaryT, typename ProbeT>
class StrategyState {
 public:
  // Outcome of the per-read skip triad: the walk was skipped (stable counter /
  // disjoint ring range), or the caller must run its walk.
  enum class ReadSkip : std::uint8_t { kSkipped, kMustWalk };

  // Re-arms for a fresh attempt: pick the strategy from the descriptor EWMAs
  // (with the periodic skip-efficacy probe under kAdaptive), reset the read
  // bloom, and anchor the persistent sample BEFORE any read (the skip soundness
  // argument needs the anchor drawn no later than the first read).
  void StartAttempt(ValMode mode, bool has_bloom_ring, const TxStats& stats) {
    strat_ = ChooseStrategy(mode, has_bloom_ring, AbortEwmaQ16(stats),
                            SkipEwmaQ16(stats));
    if (mode == ValMode::kAdaptive && strat_ == ValStrategy::kIncremental &&
        ++ProbeT::Get().attempt_tick % kSkipProbePeriod == 0) {
      strat_ = ValStrategy::kCounterSkip;  // efficacy probe (see kSkipProbePeriod)
    }
    ProbeT::OnStrategyChosen(strat_);
    read_bloom_ = Bloom128{};
    Anchor();
  }

  ValStrategy strategy() const { return strat_; }
  Word sample() const { return sample_; }
  bool sample_valid() const { return sample_valid_; }
  const Bloom128& read_bloom() const { return read_bloom_; }

  void Anchor() const {
    sample_ = SummaryT::Sample();
    sample_valid_ = true;
  }

  // Accumulates a just-read location's signature (bloom strategy only; the other
  // strategies never consult the read bloom, so the OR would be dead work).
  void NoteRead(const void* metadata_word) {
    if (strat_ == ValStrategy::kBloom) {
      read_bloom_ |= AddrBloom128(metadata_word);
    }
  }

  // The skip triad: stable counter, then ring disjointness, else walk. Updates
  // the skip-efficacy EWMA when `ewma_stats` is non-null (per-read call sites
  // feed the adaptive engine; final-validation call sites pass nullptr, matching
  // the engines' historical behavior).
  ReadSkip TrySkipRead(TxStats* ewma_stats) const {
    const bool skippable =
        strat_ != ValStrategy::kIncremental && sample_valid_;
    if (skippable && SummaryT::Stable(sample_)) {
      ++ProbeT::Get().counter_skips;
      if (ewma_stats != nullptr) {
        UpdateSkipEwma(*ewma_stats, /*skipped=*/true);
      }
      return ReadSkip::kSkipped;
    }
    if (skippable && strat_ == ValStrategy::kBloom &&
        SummaryT::BloomAdvance(&sample_, read_bloom_)) {
      ++ProbeT::Get().bloom_skips;
      if (ewma_stats != nullptr) {
        UpdateSkipEwma(*ewma_stats, /*skipped=*/true);
      }
      return ReadSkip::kSkipped;
    }
    if (strat_ != ValStrategy::kIncremental && ewma_stats != nullptr) {
      UpdateSkipEwma(*ewma_stats, /*skipped=*/false);
    }
    return ReadSkip::kMustWalk;
  }

  // Commit-time skip for a writer that has bumped-and-published (bump-before-
  // validate; see the crossing-committer note atop this file). `own_idx` is the
  // writer's own commit index, or 0 for policies without one (per-thread counter
  // sums), which fall back to the fresh-sample test — sums count every bump, so
  // anchor+1 still means "exactly my own". The bloom arm exists only where the
  // summary has a ring.
  bool TrySkipCommit(Word own_idx) const {
    if (strat_ == ValStrategy::kIncremental || !sample_valid_) {
      return false;
    }
    const bool counter_ok = own_idx != 0
                                ? own_idx == sample_ + 1
                                : SummaryT::Sample() == sample_ + 1;
    if (counter_ok) {
      ++ProbeT::Get().counter_skips;
      return true;
    }
    if constexpr (SummaryT::kHasBloomRing) {
      if (strat_ == ValStrategy::kBloom && own_idx != 0 &&
          SummaryT::CommitRangeDisjoint(sample_, own_idx, read_bloom_)) {
        ++ProbeT::Get().bloom_skips;
        return true;
      }
    }
    return false;
  }

  // Tracked-walk anchoring: call with SummaryT::Sample() drawn BEFORE the walk.
  // The pre-walk sample becomes the new anchor only if the counter stayed stable
  // across the walk (a writer that bumped mid-walk may have released mid-walk
  // too); on a failed confirm the walk's result stands but the anchor is
  // invalidated, so later skips walk until a quiet window re-anchors.
  void ConfirmAnchorAfterWalk(Word pre_walk_sample) const {
    if (SummaryT::Stable(pre_walk_sample)) {
      sample_ = pre_walk_sample;
      sample_valid_ = true;
    } else {
      sample_valid_ = false;
    }
  }

  // Direct re-anchor for walks that themselves loop until the counter is stable
  // (the val engines' NOrec-style ValidateReads).
  void ReanchorStable(Word stable_sample) const {
    sample_ = stable_sample;
    sample_valid_ = true;
  }

 private:
  mutable Word sample_ = 0;
  Bloom128 read_bloom_;
  ValStrategy strat_ = ValStrategy::kIncremental;
  mutable bool sample_valid_ = false;
};

}  // namespace spectm

#endif  // SPECTM_TM_VALSTRATEGY_H_
