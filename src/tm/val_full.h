// General-purpose transactions over the `val` layout ("val-full").
//
// Needed for two reasons: (1) the paper's Figure 5 measures it (its per-read read-set
// revalidation "dominates execution time"), and (2) the val-short data structures use
// it as the fall-back for operations that exceed short-transaction limits — e.g.
// skip-list towers above level 2 (§3) — so it must share the 1-bit-lock protocol with
// ValShortTm.
//
// Design: value-based read log (there are no versions to record), hash write set,
// deferred updates, commit-time locking. Opacity is preserved by revalidating the
// whole value log after every read under the ValidationPolicy's commit-counter
// stability rule (NOrec-style); with NonReuseValidation the counter check vanishes
// and soundness rests on the paper's special cases, exactly as in Figure 5's setup
// ("The val-full RO transactions assume the non-re-use property from Section 2.4").
//
// The read log is SoA (src/common/soa_log.h; the expected-word lane holds the
// values read) and the revalidation walk runs through the batch kernel
// (validate_batch.h) — this engine walks more than any other (per READ under
// counter policies), so it gains the most from gather-compare.
//
// The per-read revalidation is strategy-driven (valstrategy.h StrategyState): the
// default kCounterSkip mode reproduces the classic NOrec skip; kBloom adds the
// write-bloom pre-filter (needs a kHasBloomRing policy); kAdaptive re-picks per
// attempt from the descriptor's abort-rate EWMA. Non-precise policies always walk.
#ifndef SPECTM_TM_VAL_FULL_H_
#define SPECTM_TM_VAL_FULL_H_

#include <atomic>
#include <cassert>

#include "src/common/cacheline.h"
#include "src/common/failpoint.h"
#include "src/common/tagged.h"
#include "src/epoch/epoch.h"
#include "src/tm/config.h"
#include "src/tm/mvcc.h"
#include "src/tm/serial.h"
#include "src/tm/txdesc.h"
#include "src/tm/txguard.h"
#include "src/tm/val_short.h"
#include "src/tm/val_word.h"
#include "src/tm/validate_batch.h"
#include "src/tm/valstrategy.h"

namespace spectm {

template <typename ValidationT, ValMode kMode = ValMode::kCounterSkip>
class ValFullTm {
 public:
  using Validation = ValidationT;
  using Slot = ValSlot;
  using Probe = ValProbe<ValDomainTag>;
  using Cm = SerialCm<ValDomainTag>;
  using Gate = SerialGate<ValDomainTag>;
  static constexpr ValMode kValMode = kMode;
  // Strategy machinery only matters when the counter is precise; otherwise every
  // path degenerates to the incremental walk and the extra state is dead.
  static constexpr bool kStrategic = Validation::kPrecise;
  // MVCC snapshot mode (PR 9): reads run at a pinned snapshot through the
  // version chains until the first Write() promotes the attempt, and commits
  // publish displaced values (src/tm/mvcc.h). Everything it adds compiles out
  // for every other mode.
  static constexpr bool kSnapshotMode = kMode == ValMode::kSnapshot;
  static_assert(!kSnapshotMode || Validation::kMvcc,
                "ValMode::kSnapshot requires a kMvcc validation policy");

  class Tx {
   public:
    Tx() = default;
    Tx(const Tx&) = delete;
    Tx& operator=(const Tx&) = delete;

    // Defensive unwind for manual retry loops that let an exception escape
    // between Start() and Commit(): value locks are only ever held inside
    // Commit() (which unwinds them internally), so here only the serial token
    // and the attempt accounting can be outstanding.
    ~Tx() {
      if (desc_ != nullptr && active_) {
        AbortForUnwind();
      }
    }

    void Start() {
      desc_ = &DescOf<ValDomainTag>();
      desc_->val_read_log.Clear();
      desc_->wset.Clear();
      desc_->val_lock_log.clear();
      active_ = true;
      user_abort_ = false;
      // Health watchdog attempt-start feed (no-op unless SPECTM_HEALTH):
      // observes foreign serial holds before the escalation decision below,
      // and refreshes the ring-saturation gauge from this thread's intersect
      // failures so the window close in OnOutcome sees the current level.
      Cm::NoteAttemptStart(*desc_);
      if constexpr (health::kEnabled && Validation::kHasBloomRing) {
        health::SetRingGauge<ValDomainTag>(
            Validation::Summary::Fails().intersect);
      }
      // Serial escalation (src/tm/serial.h): token before the first read, so
      // the attempt observes a committer-quiescent domain and cannot abort.
      // The serial commit below still bumps/publishes the writer summary —
      // concurrent READERS keep validating against it (see VALIDATION.md
      // "Serial-irrevocable interop").
      if (!serial_ && Cm::ShouldEscalate(*desc_)) {
        Gate::AcquireSerial(desc_);
        serial_ = true;
        Cm::NoteEscalated(*desc_);
      }
      if constexpr (kStrategic) {
        state_.StartAttempt(kMode, Validation::kHasBloomRing, desc_->stats);
      } else {
        state_.Anchor();  // sample kept current for ValidateReads' re-anchor
      }
      if constexpr (kSnapshotMode) {
        // Pin-then-sample (two-step, epoch.h): the done-stamp scan either
        // sees the pending pin and reclaims nothing, or ran wholly before it
        // and bounded itself by a clock value our sample can only meet or
        // exceed — either way no node this snapshot can reach is recycled.
        // The epoch Guard spans the pin: chain memory retired by writers
        // (mvcc.h Recycle/DrainDeferred) cannot return to the allocator
        // while this transaction may still be dereferencing a chain pointer.
        EpochManager& mgr = mvcc::MvccEpoch();
        chain_guard_.Acquire(mgr);
        mgr.BeginSnapshotPin();
        snapshot_ts_ = Validation::Sample();
        mgr.SetSnapshotPin(snapshot_ts_);
        pinned_ = true;
        snapshot_phase_ = true;
      }
    }

    Word Read(Slot* s) {
      if (!active_) {
        return 0;
      }
      if constexpr (kSnapshotMode) {
        if (snapshot_phase_) {
          return SnapshotPhaseRead(s);  // wset is empty until promotion
        }
      }
      Word buffered;
      if (desc_->wset.Lookup(s, &buffered)) {  // bloom-filtered: miss is AND+TEST
        return buffered;
      }
      int spins = 0;
      Word w;
      while (true) {
        w = s->word.load(std::memory_order_acquire);
        if (!ValIsLocked(w)) {
          break;
        }
        // Commit-time locking: owner is mid-commit; wait briefly, then concede.
        if (++spins > kReadLockSpin) {
          return Fail();
        }
        CpuRelax();
      }
      desc_->val_read_log.PushBack(&s->word, w);
      if constexpr (kStrategic) {
        state_.NoteRead(&s->word);
      }
      // Per-read revalidation — the val-full cost highlighted in Figure 5 — with
      // strategy-dependent fast paths:
      //   * a one-entry log is trivially consistent (a single location);
      //   * under a precise commit counter (val_word.h), an unchanged counter since
      //     the log was last fully valid proves no writer released a value in
      //     between (NOrec's observation), so the O(read-set) re-check is skipped.
      //     The anchor always names a counter value at which the whole log was
      //     valid, so the entry just appended joins a still-valid snapshot;
      //   * under kBloom, a moved counter still skips the walk when every
      //     intervening commit's write bloom is disjoint from this read set
      //     (the anchor then advances to the current counter).
      if (desc_->val_read_log.Size() > 1) {
        if constexpr (kStrategic) {
          if (state_.TrySkipRead(&desc_->stats) ==
              StratState::ReadSkip::kSkipped) {
            return w;
          }
        }
        if (!ValidateReads()) {
          return Fail();
        }
      }
      return w;
    }

    void Write(Slot* s, Word value) {
      if (!active_) {
        return;
      }
      assert((value & kLockBit) == 0 && "val layout reserves bit 0 (use EncodeInt)");
      if constexpr (kSnapshotMode) {
        if (snapshot_phase_) {
          // Promotion: the snapshot values become an ordinary read log, which
          // must hold at the current clock before this attempt may buffer
          // writes (a writer that committed over any of them since the
          // snapshot aborts us — the snapshot cut cannot extend to a write).
          snapshot_phase_ = false;
          if (desc_->val_read_log.Size() > 0 && !ValidateReads()) {
            Fail();
            return;
          }
        }
      }
      desc_->wset.Put(s, value);
    }

    void AbortTx() { user_abort_ = true; }

    bool ok() const { return active_; }

    bool Commit() {
      if (!active_) {
        OnAbort();
        return false;
      }
      active_ = false;
      if (user_abort_) {
        UnpinIfPinned();
        desc_->stats.aborts.fetch_add(1, std::memory_order_relaxed);
        UpdateAbortEwma(desc_->stats, /*aborted=*/true);
        ReleaseSerialIfHeld();
        return false;
      }
      if (desc_->wset.Empty()) {
        OnCommit();
        return true;  // reads were kept consistent incrementally
      }
      // Committer gate: announce before the first lock CAS; fail fast while a
      // serial transaction holds the token (read-only transactions above never
      // get here and keep running).
      if (!serial_) {
        if (!Gate::TryEnterCommitter(desc_)) {
          OnAbort();
          return false;
        }
        gated_ = true;
      }
      // Unwind guard over the locked region: every early conflict return AND
      // any exception erupting between the first lock CAS and the end of
      // validation (fail-point throw injection — nothing else on this path
      // throws) runs one release sequence, in OnAbort's mandatory order:
      // displaced values restored, then the gate flag retracted, then the
      // serial token released (docs/VALIDATION.md §8).
      TxUnwindGuard cleanup([this] {
        if constexpr (kSnapshotMode) {
          // Before the locks restore: a kVersionPublish throw left at most
          // one half-published (unstamped) head per locked slot; stamp each
          // with the empty interval so no snapshot ever selects it.
          TombstoneUnstampedHeads();
        }
        ReleaseLocks();
        OnAbort();
      });
      Bloom128 write_bloom = Bloom128All();
      unsigned write_stripes = kAllCounterStripesMask;
      if constexpr (Validation::kHasBloomRing) {
        write_bloom = Bloom128{};  // accumulated per locked entry below
        write_stripes = 0;
      }
      for (const WriteSet::Entry& e : desc_->wset) {
        auto* word = &static_cast<Slot*>(e.addr)->word;
        if constexpr (Validation::kHasBloomRing) {
          write_bloom |= AddrBloom128(word);
          write_stripes |= 1u << CounterStripeOf(word);
        }
        if (SPECTM_FAILPOINT(failpoint::Site::kLockAcquire)) {
          return false;
        }
        Word w = word->load(std::memory_order_relaxed);
        while (true) {
          if (ValIsLocked(w)) {
            // Never wait while holding locks (conservative deadlock avoidance).
            return false;
          }
          if (word->compare_exchange_weak(w, MakeValLocked(desc_),
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
            desc_->val_lock_log.push_back(ValLockLogEntry{word, w});
            break;
          }
        }
      }
      // Writer bump-and-publish BEFORE the commit-time validation and the stores,
      // while every lock is held (bump-before-validate, valstrategy.h): of two
      // crossing committers the one that bumps second fails its skip test below
      // and walks into the other's locks. Under a partitioned policy only the
      // counter stripes this write set touches are bumped.
      const Word own_idx =
          Validation::OnWriterCommitWithBloom(desc_, write_bloom, write_stripes);
      if constexpr (kStrategic) {
        ++Probe::Get().summary_publishes;
        if constexpr (Validation::kPartitioned) {
          Probe::Get().stripe_bumps +=
              static_cast<std::uint64_t>(CountStripeBits(write_stripes));
        }
      }
      // Commit-time skip (StrategyState): own bump index == anchor + 1 (or, for
      // policies without a single index, a fresh sample at anchor + 1) proves no
      // foreign writer released a value since the log was last known valid (our
      // own commit locks pin the rest); under kPartitioned the same test runs
      // per READ-occupied stripe with the own-bump contribution subtracted, and
      // under kBloom/kStripe foreign commits before our bump may intervene if
      // their write blooms miss our read bloom.
      bool skip_walk = false;
      if constexpr (kStrategic) {
        skip_walk = state_.TrySkipCommit(own_idx, write_stripes);
      }
      if (!skip_walk && !ValidateReads()) {
        return false;
      }
      if constexpr (kSnapshotMode) {
        // Version publication runs after validation (the commit is decided)
        // but before the guard dismisses: the kVersionPublish pause inside
        // can throw, and the unwind must tombstone the half-published heads
        // while we still hold every lock.
        PublishVersions(own_idx);
      }
      cleanup.Dismiss();  // past the last throwing/failing operation: commit
      for (const WriteSet::Entry& e : desc_->wset) {
        // The value store is also the lock release: one atomic write (§2.4).
        static_cast<Slot*>(e.addr)->word.store(e.value, std::memory_order_release);
      }
      OnCommit();
      return true;
    }

    // Unwind entry point for the retry loop (and the destructor): finishes an
    // attempt that an exception tore out of the BODY. Value locks are only
    // ever held inside Commit(), which unwinds them internally, so here only
    // the serial token and the attempt accounting can be outstanding.
    // Idempotent: after Commit's internal guard already finished the attempt,
    // this is a no-op. No backoff — like a user abort, a cancel is not
    // contention.
    void AbortForUnwind() {
      if (!active_) {
        return;
      }
      active_ = false;
      UnpinIfPinned();
      ReleaseSerialIfHeld();
      desc_->stats.aborts.fetch_add(1, std::memory_order_relaxed);
      UpdateAbortEwma(desc_->stats, /*aborted=*/true);
    }

   private:
    using StratState = StrategyState<Validation, Probe>;

    Word Fail() {
      active_ = false;
      return 0;
    }

    // --- MVCC snapshot machinery (compiled only under kSnapshotMode) ---------

    // One read in snapshot phase: the chain read at the pinned stamp, logged
    // for a later write promotion. Never validates; the only non-wait-free
    // exit is a chain truncated below the snapshot, which refreshes the pin.
    Word SnapshotPhaseRead(Slot* s) {
      while (true) {
        const SnapshotReadResult r = SnapshotReadSlot(s, snapshot_ts_);
        if (r.ok) {
          typename Probe::Counters& probe = Probe::Get();
          ++probe.snapshot_reads;
          probe.version_hops += static_cast<std::uint64_t>(r.hops);
          desc_->val_read_log.PushBack(&s->word, r.value);
          if constexpr (kStrategic) {
            state_.NoteRead(&s->word);
          }
          return r.value;
        }
        if (!RefreshSnapshot()) {
          return Fail();
        }
      }
    }

    // Truncation fallback: move the pin forward and re-validate the values
    // already read at a stable clock point, which becomes the new snapshot.
    // This is the one place snapshot mode can walk or abort — it requires a
    // writer to have both overflowed a chain and overwritten one of our
    // reads, i.e. a genuine conflict, never mere same-stripe traffic.
    bool RefreshSnapshot() {
      EpochManager& mgr = mvcc::MvccEpoch();
      mgr.BeginSnapshotPin();
      snapshot_ts_ = Validation::Sample();
      mgr.SetSnapshotPin(snapshot_ts_);
      if (desc_->val_read_log.Size() == 0) {
        return true;
      }
      if (!ValidateReads()) {
        return false;
      }
      // The walk proved the whole log simultaneously valid at the stable
      // re-anchor point, which may lie past the pre-walk sample; read on at
      // that point (the pin below it just protects more than needed).
      snapshot_ts_ = state_.sample();
      return true;
    }

    // Publishes every displaced value onto its slot's chain stamped with our
    // commit index, trims against the done stamp, and drains this thread's
    // deferred nodes. Caller holds every commit lock; the wset and lock log
    // were filled by the same iteration, so entries correspond by index.
    void PublishVersions(Word own_idx) {
      mvcc::NodePool& pool = mvcc::Pool();
      const Word done =
          mvcc::MvccEpoch().SnapshotDoneStamp(Validation::Sample());
      mvcc::PublishStats pub;
      std::size_t i = 0;
      for (const WriteSet::Entry& e : desc_->wset) {
        Slot* slot = static_cast<Slot*>(e.addr);
        const ValLockLogEntry& l = desc_->val_lock_log[i++];
        assert(l.word == &slot->word && "lock log order diverged from write set");
        mvcc::PublishVersion(slot->versions, l.old_value, own_idx, done, pool,
                             &pub);
      }
      pool.DrainDeferred(done);
      typename Probe::Counters& probe = Probe::Get();
      probe.versions_retired += static_cast<std::uint64_t>(pub.retired);
      probe.chain_splices += static_cast<std::uint64_t>(pub.splices);
    }

    void TombstoneUnstampedHeads() {
      for (const ValLockLogEntry& l : desc_->val_lock_log) {
        // ValSlot is standard-layout with `word` first: the logged word
        // pointer is pointer-interconvertible with its slot.
        Slot* slot = reinterpret_cast<Slot*>(l.word);
        mvcc::TombstoneUnstampedHead(slot->versions);
      }
    }

    void UnpinIfPinned() {
      if constexpr (kSnapshotMode) {
        if (pinned_) {
          mvcc::MvccEpoch().UnpinSnapshot();
          pinned_ = false;
          chain_guard_.Release();
        }
      }
    }

    // Value-based read-log validation under commit-counter stability, batched:
    // each pass runs the whole SoA log through the gather-compare kernel; entries
    // locked by our own commit are compared against the displaced value they
    // held. Starts from a FRESH counter sample (the old anchor is known-stale
    // whenever this runs — the skip already failed, or our own commit bump moved
    // the counter — so looping on it would guarantee a wasted second walk), and
    // re-anchors once a sample is stable across a full pass.
    bool ValidateReads() {
      if (SPECTM_FAILPOINT(failpoint::Site::kPreValidate)) {
        return false;
      }
      ++Probe::Get().validation_walks;
      typename StratState::Snapshot snap = state_.DrawSnapshot();
      typename Probe::Counters& probe = Probe::Get();
      while (true) {
        const bool pass = ValidateEqualSpan(
            desc_->val_read_log.Ptrs(), desc_->val_read_log.Words(),
            desc_->val_read_log.Size(), probe.simd_batches, probe.scalar_checks,
            [this](std::size_t i, Word observed) {
              return ValIsLocked(observed) && ValOwnerOf(observed) == desc_ &&
                     FindDisplacedValue(desc_->val_read_log.PtrAt(i)) ==
                         desc_->val_read_log.WordAt(i);
            });
        if (!pass) {
          return false;
        }
        if (Validation::Stable(snap.global)) {
          state_.ReanchorStable(snap);
          return true;
        }
        snap = state_.DrawSnapshot();
      }
    }

    Word FindDisplacedValue(const std::atomic<Word>* word) const {
      for (const ValLockLogEntry& l : desc_->val_lock_log) {
        if (l.word == word) {
          return l.old_value;
        }
      }
      assert(false && "self-locked word missing from lock log");
      return ~Word{0};
    }

    void ReleaseLocks() {
      for (const ValLockLogEntry& l : desc_->val_lock_log) {
        l.word->store(l.old_value, std::memory_order_release);
      }
      desc_->val_lock_log.clear();
    }

    // Gate held through the releasing stores (the value store IS the lock
    // release here), so a draining serial transaction never sees our locks.
    void ExitGateIfHeld() {
      if (gated_) {
        Gate::ExitCommitter(desc_);
        gated_ = false;
      }
    }

    void ReleaseSerialIfHeld() {
      if (serial_) {
        Gate::ReleaseSerial(desc_);
        serial_ = false;
      }
    }

    void OnCommit() {
      UnpinIfPinned();
      ExitGateIfHeld();
      desc_->stats.commits.fetch_add(1, std::memory_order_relaxed);
      UpdateAbortEwma(desc_->stats, /*aborted=*/false);
      if (serial_) {
        Gate::ReleaseSerial(desc_);
        serial_ = false;
        Cm::OnSerialCommit(*desc_);
      } else {
        Cm::OnOptimisticCommit(*desc_);
      }
    }

    void OnAbort() {
      UnpinIfPinned();
      ExitGateIfHeld();
      ReleaseSerialIfHeld();  // fail-point aborts can hit a serial attempt
      desc_->stats.aborts.fetch_add(1, std::memory_order_relaxed);
      UpdateAbortEwma(desc_->stats, /*aborted=*/true);
      Cm::NoteAbortBackoff(*desc_);
    }

    TxDesc* desc_ = nullptr;
    StratState state_;
    bool active_ = false;
    bool user_abort_ = false;
    bool serial_ = false;  // this attempt holds the serialization token
    bool gated_ = false;   // this attempt announced itself as a committer
    // Snapshot mode only (dead otherwise): the pinned read stamp, whether the
    // epoch-registry pin is published, whether reads still run through the
    // chains (cleared by the first Write()'s promotion), and the epoch Guard
    // held for the pin's duration (keeps retired chain nodes' memory alive
    // past any pointer this transaction may still hold).
    Word snapshot_ts_ = 0;
    bool pinned_ = false;
    bool snapshot_phase_ = false;
    EpochManager::GuardSlot chain_guard_;
  };

  // Convenience retry wrapper: runs `body(tx)` until it commits. Exception
  // contract (src/tm/txguard.h): a TxCancel thrown anywhere inside the body
  // aborts the attempt through the ordinary unwind path, then either retries
  // (Policy::kRetry) or returns false with nothing published (Policy::kAbort).
  // Any OTHER exception aborts the attempt the same way and rethrows, with
  // every displaced value restored and the serial token released before the
  // exception leaves this frame. Returns true iff a body execution committed.
  template <typename Body>
  static bool Atomically(Body&& body) {
    Tx tx;
    while (true) {
      try {
        tx.Start();
        body(tx);
        if (tx.Commit()) {
          return true;
        }
      } catch (const TxCancel& cancel) {
        tx.AbortForUnwind();
        if (cancel.policy == TxCancel::Policy::kAbort) {
          return false;
        }
      } catch (...) {
        tx.AbortForUnwind();
        throw;
      }
    }
  }

  static TxStats& StatsForCurrentThread() { return DescOf<ValDomainTag>().stats; }
};

}  // namespace spectm

#endif  // SPECTM_TM_VAL_FULL_H_
