// Ownership records and the shared orec table (Figure 3(a)).
//
// An orec is one 64-bit word:
//   unlocked: (version << 1) | 0   — version incremented on every committed update
//   locked:   (TxDesc*   ) | 1     — body points to the owning transaction descriptor
//
// The shared-table layout hashes an arbitrary heap address to one of 2^kOrecTableLog2
// records. Distinct locations may collide on one orec ("false conflicts", §2.3); the
// engines must therefore tolerate re-locking an orec they already own.
#ifndef SPECTM_TM_OREC_H_
#define SPECTM_TM_OREC_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/tagged.h"
#include "src/tm/config.h"
#include "src/tm/txdesc.h"

namespace spectm {

constexpr bool OrecIsLocked(Word w) { return (w & kLockBit) != 0; }
constexpr Word OrecVersionOf(Word w) { return w >> 1; }
constexpr Word MakeOrecVersion(Word version) { return version << 1; }

inline TxDesc* OrecOwnerOf(Word w) {
  return reinterpret_cast<TxDesc*>(static_cast<std::uintptr_t>(w & ~kLockBit));
}

inline Word MakeOrecLocked(TxDesc* owner) {
  return static_cast<Word>(reinterpret_cast<std::uintptr_t>(owner)) | kLockBit;
}

// Indexing policy for the shared orec table (compile-time: the seed families
// stay byte-identical on kHashed, and the mode is part of the family type so two
// modes never alias one table).
//
//   kHashed  — the seed scheme: Fibonacci hash of the word address over the whole
//     table. Statistically scatters everything; two addresses adjacent in memory
//     land on the same table LINE only with the base 8/2^log2 probability, but
//     nothing prevents it either.
//   kStriped — cache-line-striped: the word address's low 3 bits select one of 8
//     table segments a full segment apart, and the Fibonacci hash spreads the
//     remaining bits within the segment. ADJACENT ADDRESSES ARE GUARANTEED
//     DISTINCT LINES (consecutive words of one node can never false-share an orec
//     line, no matter what the hash does), at the price of structured workloads
//     concentrating same-offset fields of different nodes into one segment.
//     Swept against kHashed in bench/abl_readset_layout.
enum class OrecStriping { kHashed, kStriped };

// Global table of ownership records, indexed by a multiplicative hash of the data
// address. Never resized; shared by all transactional locations of its domain.
template <OrecStriping kStriping = OrecStriping::kHashed>
class OrecTableT {
 public:
  // log2 of the number of orecs packed per 64-byte cache line (8 x 8 B).
  static constexpr int kLog2OrecsPerLine = 3;

  explicit OrecTableT(int log2_size = kOrecTableLog2)
      : log2_size_(log2_size),
        shift_(64 - log2_size),
        orecs_(std::size_t{1} << log2_size) {}

  std::atomic<Word>& ForAddr(const void* addr) {
    auto x = static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(addr)) >> 3;
    if constexpr (kStriping == OrecStriping::kHashed) {
      x *= 0x9e3779b97f4a7c15ULL;  // Fibonacci hashing
      return orecs_[x >> shift_].word;
    } else {
      // Segment = low 3 address bits (adjacent words -> different segments, each
      // 2^(log2-3) orecs = at least a page apart); Fibonacci within the segment.
      const std::uint64_t segment = x & ((1u << kLog2OrecsPerLine) - 1);
      const std::uint64_t inner =
          ((x >> kLog2OrecsPerLine) * 0x9e3779b97f4a7c15ULL) >>
          (shift_ + kLog2OrecsPerLine);
      return orecs_[(segment << (log2_size_ - kLog2OrecsPerLine)) | inner].word;
    }
  }

  std::size_t Size() const { return orecs_.size(); }

 private:
  struct OrecCell {
    std::atomic<Word> word{0};
  };

  int log2_size_;
  int shift_;
  std::vector<OrecCell> orecs_;
};

using OrecTable = OrecTableT<>;

}  // namespace spectm

#endif  // SPECTM_TM_OREC_H_
