// Ownership records and the shared orec table (Figure 3(a)).
//
// An orec is one 64-bit word:
//   unlocked: (version << 1) | 0   — version incremented on every committed update
//   locked:   (TxDesc*   ) | 1     — body points to the owning transaction descriptor
//
// The shared-table layout hashes an arbitrary heap address to one of 2^kOrecTableLog2
// records. Distinct locations may collide on one orec ("false conflicts", §2.3); the
// engines must therefore tolerate re-locking an orec they already own.
#ifndef SPECTM_TM_OREC_H_
#define SPECTM_TM_OREC_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/tagged.h"
#include "src/tm/config.h"
#include "src/tm/txdesc.h"

namespace spectm {

constexpr bool OrecIsLocked(Word w) { return (w & kLockBit) != 0; }
constexpr Word OrecVersionOf(Word w) { return w >> 1; }
constexpr Word MakeOrecVersion(Word version) { return version << 1; }

inline TxDesc* OrecOwnerOf(Word w) {
  return reinterpret_cast<TxDesc*>(static_cast<std::uintptr_t>(w & ~kLockBit));
}

inline Word MakeOrecLocked(TxDesc* owner) {
  return static_cast<Word>(reinterpret_cast<std::uintptr_t>(owner)) | kLockBit;
}

// Global table of ownership records, indexed by a multiplicative hash of the data
// address. Never resized; shared by all transactional locations of its domain.
class OrecTable {
 public:
  explicit OrecTable(int log2_size = kOrecTableLog2)
      : shift_(64 - log2_size), orecs_(std::size_t{1} << log2_size) {}

  std::atomic<Word>& ForAddr(const void* addr) {
    auto x = static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(addr)) >> 3;
    x *= 0x9e3779b97f4a7c15ULL;  // Fibonacci hashing
    return orecs_[x >> shift_].word;
  }

  std::size_t Size() const { return orecs_.size(); }

 private:
  struct OrecCell {
    std::atomic<Word> word{0};
  };

  int shift_;
  std::vector<OrecCell> orecs_;
};

}  // namespace spectm

#endif  // SPECTM_TM_OREC_H_
