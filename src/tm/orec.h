// Ownership records and the shared orec table (Figure 3(a)).
//
// An orec is one 64-bit word:
//   unlocked: (version << 1) | 0   — version incremented on every committed update
//   locked:   (TxDesc*   ) | 1     — body points to the owning transaction descriptor
//
// The shared-table layout hashes an arbitrary heap address to one of 2^kOrecTableLog2
// records. Distinct locations may collide on one orec ("false conflicts", §2.3); the
// engines must therefore tolerate re-locking an orec they already own.
#ifndef SPECTM_TM_OREC_H_
#define SPECTM_TM_OREC_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/tagged.h"
#include "src/tm/config.h"
#include "src/tm/txdesc.h"
#include "src/tm/valstrategy.h"

namespace spectm {

constexpr bool OrecIsLocked(Word w) { return (w & kLockBit) != 0; }
constexpr Word OrecVersionOf(Word w) { return w >> 1; }
constexpr Word MakeOrecVersion(Word version) { return version << 1; }

inline TxDesc* OrecOwnerOf(Word w) {
  return reinterpret_cast<TxDesc*>(static_cast<std::uintptr_t>(w & ~kLockBit));
}

inline Word MakeOrecLocked(TxDesc* owner) {
  return static_cast<Word>(reinterpret_cast<std::uintptr_t>(owner)) | kLockBit;
}

// Indexing policy for the shared orec table (compile-time: the seed families
// stay byte-identical on kHashed, and the mode is part of the family type so two
// modes never alias one table).
//
//   kHashed  — the seed scheme: Fibonacci hash of the word address over the whole
//     table. Statistically scatters everything; two addresses adjacent in memory
//     land on the same table LINE only with the base 8/2^log2 probability, but
//     nothing prevents it either.
//   kStriped — counter-stripe-coherent: the segment is the data address's SAME
//     4 KiB-region bits that key the partitioned commit counter (valstrategy.h
//     CounterStripeOf — addr bits 12..14), and the Fibonacci hash spreads the
//     remaining bits within the segment. The segment surfaces as bits 12..14 of
//     the orec's OWN address (the table base is 32 KiB-aligned and the segment
//     lands at index bits 9..11), so every orec lives in the same counter
//     stripe as every data address that hashes to it:
//         CounterStripeOf(&table.ForAddr(a)) == CounterStripeOf(a).
//     Under ValMode::kPartitioned a structurally local read set therefore
//     occupies the same few stripes whether validation keys off the data words
//     or off their orecs — the striped-table/stripe-counter alignment the
//     ROADMAP carried as follow-up. The price is the same as any region
//     scheme: same-offset words of one 4 KiB page concentrate into one
//     segment (the in-segment hash still scatters them across its lines).
//     Swept against kHashed in bench/abl_readset_layout.
enum class OrecStriping { kHashed, kStriped };

// Global table of ownership records, indexed by a multiplicative hash of the data
// address. Never resized; shared by all transactional locations of its domain.
template <OrecStriping kStriping = OrecStriping::kHashed>
class OrecTableT {
 public:
  // log2 of the number of orecs packed per 64-byte cache line (8 x 8 B).
  static constexpr int kLog2OrecsPerLine = 3;
  // Stripe coherence needs the segment at index bits 9..11 (below: orec-address
  // bits 12..14), so a striped table has at least 2^12 cells.
  static constexpr int kMinStripedLog2 = kCounterStripeShift;

  explicit OrecTableT(int log2_size = kOrecTableLog2)
      : log2_size_(ClampLog2(log2_size)),
        shift_(64 - log2_size_),
        storage_((std::size_t{1} << log2_size_) +
                 (kStriping == OrecStriping::kStriped
                      ? kStripedAlign / sizeof(OrecCell)
                      : 0)) {
    orecs_ = storage_.data();
    if constexpr (kStriping == OrecStriping::kStriped) {
      // Align the base to 32 KiB so index bits 9..11 surface unperturbed as
      // orec-address bits 12..14 — the counter-stripe bits.
      const auto p = reinterpret_cast<std::uintptr_t>(orecs_);
      orecs_ = reinterpret_cast<OrecCell*>((p + (kStripedAlign - 1)) &
                                           ~(kStripedAlign - 1));
    }
  }

  std::atomic<Word>& ForAddr(const void* addr) {
    auto x = static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(addr)) >> 3;
    if constexpr (kStriping == OrecStriping::kHashed) {
      x *= 0x9e3779b97f4a7c15ULL;  // Fibonacci hashing
      return orecs_[x >> shift_].word;
    } else {
      // Segment = the data address's counter-stripe bits (addr bits 12..14 ==
      // x bits 9..11, valstrategy.h CounterStripeOf over 4 KiB regions).
      constexpr int kSegLow = kCounterStripeShift - 3;  // x-bit position 9
      const std::uint64_t segment = (x >> kSegLow) & ((1u << kLog2OrecsPerLine) - 1);
      // Fibonacci-hash the remaining address bits within the segment.
      const std::uint64_t rest =
          ((x >> kCounterStripeShift) << kSegLow) | (x & ((1u << kSegLow) - 1));
      const std::uint64_t inner =
          (rest * 0x9e3779b97f4a7c15ULL) >> (shift_ + kLog2OrecsPerLine);
      // Index layout [high | segment | low]: the segment occupies index bits
      // 9..11, which the 32 KiB-aligned base turns into orec-address bits
      // 12..14 — the orec's own counter stripe equals its data's.
      const std::uint64_t low = inner & ((1u << kSegLow) - 1);
      const std::uint64_t high = inner >> kSegLow;
      return orecs_[(high << kCounterStripeShift) | (segment << kSegLow) | low].word;
    }
  }

  std::size_t Size() const { return std::size_t{1} << log2_size_; }

 private:
  struct OrecCell {
    std::atomic<Word> word{0};
  };
  static constexpr std::size_t kStripedAlign = std::size_t{1} << 15;  // 32 KiB

  static constexpr int ClampLog2(int log2_size) {
    return (kStriping == OrecStriping::kStriped && log2_size < kMinStripedLog2)
               ? kMinStripedLog2
               : log2_size;
  }

  int log2_size_;
  int shift_;
  std::vector<OrecCell> storage_;
  OrecCell* orecs_;
};

using OrecTable = OrecTableT<>;

}  // namespace spectm

#endif  // SPECTM_TM_OREC_H_
