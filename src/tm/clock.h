// Version-management policies (§4.1 "BaseTM can use two version management
// strategies"), grown into a pluggable family because Figures 7–9 show the global
// commit clock becoming THE scalability bottleneck for the *-g variants:
//
//   GlobalClockNaive — one shared 64-bit counter per TM domain, TL2/GV1-style.
//   Readers sample it ("rv"); every writer commit performs a seq-cst fetch_add on the
//   same cache line. Cheap validation, but the shared line is ping-ponged between all
//   committing cores (the flattening of the *-g curves under high update rates).
//
//   GlobalClockGv4 — TL2's GV4 "pass-on-failure" scheme plus a thread-local sample
//   cache; the default global clock. Two writers racing to advance the clock resolve
//   in ONE cache-line transfer instead of two: the CAS loser adopts the winner's
//   timestamp instead of retrying. Timestamps are then not globally unique — the
//   CommitStamp carries a `unique` flag so engines only apply uniqueness-dependent
//   fast paths (TL2's "wv == rv + 1 skips validation") to stamps that won their CAS.
//
//   LocalClockPolicy — per-orec version numbers with no shared counter. Commits bump
//   each orec independently; full-transaction reads must re-validate their read
//   set after every read to preserve opacity (the "-l" cost discussed in §4.1/§4.4).
//
// GV4 safety sketch (why shared timestamps preserve opacity):
//   * Two commits share a wv only when one CAS-advanced the clock to wv and the other
//     observed the pre-advance value and failed its CAS. Both held their entire write
//     sets locked across their clock access (engines draw the stamp only after
//     acquiring all commit locks), so same-wv writers have disjoint write sets.
//   * A reader can sample rv >= wv only after the winning CAS. The adopter's clock
//     load preceded that CAS (that is what made it adopt), and its write locks were
//     all acquired before its clock load — so every same-wv writer already held its
//     locks when any rv >= wv snapshot was taken. Such a reader can never observe a
//     pre-commit value of those locations: it finds them locked (conflict) or already
//     released at wv <= rv (committed value). No mixed snapshot is observable.
//   The seq_cst fence in NextCommitStamp() is what makes "lock stores precede the
//   clock load" a cross-thread ordering fact rather than an x86 accident.
//
// Thread-local sample cache (GV4/GV6): after a commit at wv, the next
// kClockSampleReuse Sample() calls from the same thread return wv without touching
// the shared line. Any value <= the current clock is a valid snapshot (a smaller rv
// only costs extra extensions), and wv <= clock always holds; moreover the same-wv
// lock-visibility argument above makes rv = own-last-wv a *consistent* snapshot, not
// merely a safe-but-stale one — and it stays one at any later time, so multi-use is
// as sound as single-use. The reuse count is bounded so read-dominated phases still
// observe other threads' commits promptly: staleness is capped at kClockSampleReuse
// transaction starts, after which the shared line is reloaded.
//
// GV5 (TL2's cheapest scheme) removes the commit-side RMW entirely: a writer's
// timestamp is clock+1 WITHOUT advancing the clock, so concurrent writers share
// timestamps and versions run ahead of the clock. Soundness here rests on two rules:
//   * per-orec versions stay strictly monotone: ReleaseVersion() bumps to
//     max(wv, old+1), so repeated same-wv commits to one orec remain
//     distinguishable to validators (required by the short-tx RO protocol, which
//     has no rv to reject "too new" versions with);
//   * full-tx readers reject any version > rv at read time (the engine's existing
//     extension path) and nudge the lagging clock forward via OnStaleRead()'s
//     CAS-max — the only RMW GV5 ever performs, paid on the stale-read path
//     instead of on every writer commit.
//   Why a reader can never be fooled by a shared timestamp: to log version v it
//   needed rv >= v, hence clock >= v before its read; any writer that later locks
//   that orec draws wv = clock+1 >= v+1, so the version cannot repeat at v.
//
// GV6 is the adaptive hybrid: each commit-stamp draw picks GV4 (CAS; versions track
// the clock tightly) or GV5 (no RMW, more false aborts) from the descriptor's
// abort-rate EWMA — contended phases buy precision, quiet phases run RMW-free.
// GV6 stamps are NEVER flagged unique, even on a won CAS: TL2's unique-stamp
// shortcut needs every writer to RMW the clock, and the hybrid's GV5 draws don't.
//
// Every policy exposes per-thread ClockProbe counters (plain thread-local integers,
// no shared state) so tests and benches can assert hot-path properties — e.g. that
// read-only commits perform zero clock RMWs, or how many Sample() calls the cache
// absorbed.
//
// 64-bit counters make overflow a non-issue (§4.1: "we ignore the possibility of
// version number overflow" on 64-bit systems).
#ifndef SPECTM_TM_CLOCK_H_
#define SPECTM_TM_CLOCK_H_

#include <atomic>
#include <cstdint>

#include "src/common/cacheline.h"
#include "src/common/tagged.h"
#include "src/tm/orec.h"

namespace spectm {

// A drawn commit timestamp. `unique` is true when no concurrent commit can share
// `wv` (the draw won its RMW); only then may engines use uniqueness-dependent
// shortcuts such as skipping read-set validation when wv == rv + 1.
struct CommitStamp {
  Word wv;
  bool unique;
};

// Per-(thread, domain) clock instrumentation. Plain thread-local integers: zero
// shared-state cost, so it stays enabled in release builds. Readable only from the
// owning thread (tests/benches snapshot around single-threaded phases).
template <typename DomainTag>
struct ClockProbe {
  struct Counters {
    std::uint64_t shared_loads = 0;    // loads of the shared clock cache line
    std::uint64_t rmw_draws = 0;       // fetch_add/CAS commit-stamp draws
    std::uint64_t cached_samples = 0;  // Sample() calls served from the local cache
    std::uint64_t nocas_draws = 0;     // GV5-style load-only commit-stamp draws
    std::uint64_t stale_advances = 0;  // reader-side CAS-max clock catch-ups (GV5/6)
    std::uint64_t mode_flips = 0;      // GV6 hysteresis transitions (GV4 <-> GV5)
  };
  static Counters& Get() {
    thread_local Counters counters;
    return counters;
  }
  static void Reset() { Get() = Counters{}; }
};

// TL2/GV1-style global clock: every commit is a seq-cst fetch_add on one shared
// cache line. Kept as the ablation baseline for bench/abl_clock_scale.
template <typename DomainTag>
struct GlobalClockNaive {
  static constexpr bool kHasGlobalClock = true;
  static constexpr const char* kName = "naive";

  static std::atomic<Word>& Clock() {
    static CacheAligned<std::atomic<Word>> clock;
    return *clock;
  }

  // Read snapshot ("rv" in TL2).
  static Word Sample() {
    ++ClockProbe<DomainTag>::Get().shared_loads;
    return Clock().load(std::memory_order_seq_cst);
  }

  // Commit timestamp ("wv" in TL2): unique, greater than every previously drawn one.
  static CommitStamp NextCommitStamp() {
    ++ClockProbe<DomainTag>::Get().rmw_draws;
    return CommitStamp{Clock().fetch_add(1, std::memory_order_seq_cst) + 1, true};
  }

  static Word NextCommitVersion() { return NextCommitStamp().wv; }

  // Version released into an orec after a commit at timestamp wv.
  static Word ReleaseVersion(Word wv, Word /*old_orec_word*/) { return wv; }

  // Hook for engines observing an orec version ahead of their snapshot; only the
  // GV5-style policies (whose clock can lag published versions) need to act.
  static void OnStaleRead(Word /*version*/) {}
};

// Bounded staleness window for the thread-local sample cache: a post-commit wv is
// reused for at most this many Sample() calls before the shared line is reloaded.
inline constexpr int kClockSampleReuse = 4;

// TL2 GV4 "pass-on-failure" with a thread-local sample cache; the default global
// clock policy. See the file comment for the safety argument.
template <typename DomainTag>
struct GlobalClockGv4 {
  static constexpr bool kHasGlobalClock = true;
  static constexpr const char* kName = "gv4";

  static std::atomic<Word>& Clock() {
    static CacheAligned<std::atomic<Word>> clock;
    return *clock;
  }

  // Read snapshot. Served from the thread-local cache for up to kClockSampleReuse
  // calls after each of this thread's commits; otherwise a real load of the shared
  // line.
  static Word Sample() {
    SampleCache& cache = Cache();
    if (cache.uses_left > 0) {
      --cache.uses_left;
      ++ClockProbe<DomainTag>::Get().cached_samples;
      return cache.value;
    }
    ++ClockProbe<DomainTag>::Get().shared_loads;
    return Clock().load(std::memory_order_seq_cst);
  }

  // One CAS attempt; on failure adopt the racing timestamp instead of retrying, so a
  // storm of simultaneous committers costs one cache-line transfer, not a retry
  // convoy. Callers MUST hold their entire write set locked before calling (all
  // engines do: stamps are drawn after commit-lock acquisition) — the fence makes
  // those lock stores globally visible before the clock load, which the GV4 safety
  // argument depends on.
  static CommitStamp NextCommitStamp() {
    ++ClockProbe<DomainTag>::Get().rmw_draws;
#if !(defined(__x86_64__) || defined(__i386__))
    // Order the caller's write-set lock stores before the clock load. On x86 the
    // locks were acquired with lock-prefixed RMWs (full barriers) and a later load
    // cannot hoist above them, so the fence would only add a redundant ~30-cycle
    // mfence to every writer commit.
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
    Word seen = Clock().load(std::memory_order_seq_cst);
    CommitStamp stamp;
    if (Clock().compare_exchange_strong(seen, seen + 1, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst)) {
      stamp = CommitStamp{seen + 1, true};
    } else {
      // `seen` now holds the value installed by the racing committer(s); adopt it.
      stamp = CommitStamp{seen, false};
    }
    SampleCache& cache = Cache();
    cache.value = stamp.wv;
    cache.uses_left = kClockSampleReuse;
    return stamp;
  }

  static Word NextCommitVersion() { return NextCommitStamp().wv; }

  static Word ReleaseVersion(Word wv, Word /*old_orec_word*/) { return wv; }

  // A version above rv proves the shared clock moved past our (possibly cached)
  // sample; drop the cache so the caller's extension reloads the real clock
  // instead of re-validating against the same stale rv up to kClockSampleReuse
  // times. GV4 never lets versions outrun the clock, so no CAS-max is needed.
  static void OnStaleRead(Word /*version*/) { Cache().uses_left = 0; }

 private:
  struct SampleCache {
    Word value = 0;
    int uses_left = 0;
  };
  static SampleCache& Cache() {
    thread_local SampleCache cache;
    return cache;
  }
};

// TL2's GV5: commit timestamps are clock+1 WITHOUT advancing the clock — the
// commit path performs no RMW at all. Concurrent writers share timestamps (stamps
// are never `unique`), versions run ahead of the clock (more false aborts), and
// per-orec monotonicity is restored by the max-bump in ReleaseVersion(). Readers
// that trip over a version ahead of their snapshot pull the clock forward via
// OnStaleRead() — the only RMW in the policy, paid on the conflict path instead of
// on every writer commit. See the file comment for the safety argument.
template <typename DomainTag>
struct GlobalClockGv5 {
  static constexpr bool kHasGlobalClock = true;
  static constexpr const char* kName = "gv5";

  static std::atomic<Word>& Clock() {
    static CacheAligned<std::atomic<Word>> clock;
    return *clock;
  }

  static Word Sample() {
    ++ClockProbe<DomainTag>::Get().shared_loads;
    return Clock().load(std::memory_order_seq_cst);
  }

  // One shared LOAD; never a CAS, never a retry. Callers hold their entire write
  // set locked (as with GV4) — the fence orders those lock stores before the clock
  // load on weakly-ordered machines.
  static CommitStamp NextCommitStamp() {
    ++ClockProbe<DomainTag>::Get().nocas_draws;
#if !(defined(__x86_64__) || defined(__i386__))
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
    return CommitStamp{Clock().load(std::memory_order_seq_cst) + 1, false};
  }

  static Word NextCommitVersion() { return NextCommitStamp().wv; }

  // Strict per-orec monotonicity even when wv repeats: two same-wv commits to one
  // orec must stay distinguishable to validators (the short-tx RO protocol compares
  // versions with no rv to reject "too new" ones, so version reuse would admit
  // torn reads there).
  static Word ReleaseVersion(Word wv, Word old_orec_word) {
    const Word floor = OrecVersionOf(old_orec_word) + 1;
    return wv > floor ? wv : floor;
  }

  // A reader saw an orec at `version` > its snapshot: drag the clock up so its
  // extension (and every future rv) can admit that version. CAS-max, best effort —
  // losing the race means someone else advanced it at least as far.
  static void OnStaleRead(Word version) {
    Word cur = Clock().load(std::memory_order_seq_cst);
    while (cur < version) {
      if (Clock().compare_exchange_weak(cur, version, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst)) {
        ++ClockProbe<DomainTag>::Get().stale_advances;
        return;
      }
    }
  }
};

// GV6-style adaptive hybrid: pick GV4 or GV5 per commit-stamp draw from the
// descriptor's abort-rate EWMA. Quiet phases (low abort rate — false aborts cheap
// and rare) draw RMW-free GV5 stamps; contended phases (high abort rate — every
// extra false abort compounds) pay the GV4 CAS for unique stamps and versions that
// track the clock tightly. ReleaseVersion max-bumps unconditionally because GV5
// draws can collide with versions already published by GV4 draws.
//
// The flip is HYSTERETIC (ROADMAP item): a single threshold made border
// workloads — whose EWMA hovers around it, crossing on every few outcomes —
// alternate draw flavors pathologically (each flavor's cost profile defeats the
// other's assumption: GV5 draws inflate false aborts which push the EWMA up into
// GV4, whose CASes calm it back down, forever). Separate enter/exit thresholds
// make a flip require the EWMA to traverse the whole dead band, i.e. a genuine
// phase change, not noise; ClockProbe::mode_flips counts the transitions so the
// damping is testable (clock_gv56_test) and observable in benches.
template <typename DomainTag>
struct GlobalClockGv6 {
  static constexpr bool kHasGlobalClock = true;
  static constexpr const char* kName = "gv6";

  // Rising through kGv4EnterThresholdQ16 (~6.25% abort rate) switches the
  // thread's draws to GV4; only falling below kGv4ExitThresholdQ16 (~3.1%)
  // switches back to GV5. Between the two, the current mode sticks.
  static constexpr std::uint32_t kGv4EnterThresholdQ16 = 1u << 12;
  static constexpr std::uint32_t kGv4ExitThresholdQ16 = 1u << 11;
  static_assert(kGv4ExitThresholdQ16 < kGv4EnterThresholdQ16,
                "the dead band must be non-empty or the hysteresis degenerates "
                "to the old single-threshold flapping");

  static std::atomic<Word>& Clock() {
    static CacheAligned<std::atomic<Word>> clock;
    return *clock;
  }

  static Word Sample() {
    SampleCache& cache = Cache();
    if (cache.uses_left > 0) {
      --cache.uses_left;
      ++ClockProbe<DomainTag>::Get().cached_samples;
      return cache.value;
    }
    ++ClockProbe<DomainTag>::Get().shared_loads;
    return Clock().load(std::memory_order_seq_cst);
  }

  static CommitStamp NextCommitStamp() {
#if !(defined(__x86_64__) || defined(__i386__))
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
    SampleCache& mode = Cache();
    const std::uint32_t ewma = AbortEwmaQ16(DescOf<DomainTag>().stats);
    if (mode.gv4_mode) {
      if (ewma < kGv4ExitThresholdQ16) {
        mode.gv4_mode = false;
        ++ClockProbe<DomainTag>::Get().mode_flips;
      }
    } else {
      if (ewma >= kGv4EnterThresholdQ16) {
        mode.gv4_mode = true;
        ++ClockProbe<DomainTag>::Get().mode_flips;
      }
    }
    if (!mode.gv4_mode) {
      // GV5 path: load-only draw; the clock did not move, so there is no fresh
      // value worth caching.
      ++ClockProbe<DomainTag>::Get().nocas_draws;
      return CommitStamp{Clock().load(std::memory_order_seq_cst) + 1, false};
    }
    // GV4 path: pass-on-failure CAS; cache the result. NEVER flagged unique:
    // TL2's unique-stamp shortcut infers "no commit since rv" from "my CAS won
    // at rv+1", which requires EVERY writer to RMW the clock — the hybrid's GV5
    // draws do not, so a GV5 commit can hide inside the window and the shortcut
    // would skip validation past it.
    ++ClockProbe<DomainTag>::Get().rmw_draws;
    Word seen = Clock().load(std::memory_order_seq_cst);
    CommitStamp stamp;
    if (Clock().compare_exchange_strong(seen, seen + 1, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst)) {
      stamp = CommitStamp{seen + 1, false};
    } else {
      stamp = CommitStamp{seen, false};
    }
    SampleCache& cache = Cache();
    cache.value = stamp.wv;
    cache.uses_left = kClockSampleReuse;
    return stamp;
  }

  static Word NextCommitVersion() { return NextCommitStamp().wv; }

  static Word ReleaseVersion(Word wv, Word old_orec_word) {
    const Word floor = OrecVersionOf(old_orec_word) + 1;
    return wv > floor ? wv : floor;
  }

  static void OnStaleRead(Word version) {
    // The caller is about to extend; a cached (pre-advance) sample would make it
    // walk repeatedly against a still-stale rv, so drop the cache first.
    Cache().uses_left = 0;
    Word cur = Clock().load(std::memory_order_seq_cst);
    while (cur < version) {
      if (Clock().compare_exchange_weak(cur, version, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst)) {
        ++ClockProbe<DomainTag>::Get().stale_advances;
        return;
      }
    }
  }

 private:
  // Per-thread clock state: the GV4-style sample cache plus the hysteretic mode
  // bit (per-thread because the steering EWMA is per-descriptor, i.e. per-thread).
  struct SampleCache {
    Word value = 0;
    int uses_left = 0;
    bool gv4_mode = false;
  };
  static SampleCache& Cache() {
    thread_local SampleCache cache;
    return cache;
  }
};

template <typename DomainTag>
struct LocalClockPolicy {
  static constexpr bool kHasGlobalClock = false;
  static constexpr const char* kName = "local";

  static Word Sample() { return 0; }
  static CommitStamp NextCommitStamp() { return CommitStamp{0, false}; }
  static Word NextCommitVersion() { return 0; }

  // Each orec advances independently.
  static Word ReleaseVersion(Word /*wv*/, Word old_orec_word) {
    return OrecVersionOf(old_orec_word) + 1;
  }

  static void OnStaleRead(Word /*version*/) {}
};

// Default global clock for the named TM families: GV4 + sample cache. The naive
// policy remains available for ablation (bench/abl_clock_scale) and for callers that
// require globally unique timestamps.
template <typename DomainTag>
using GlobalClockPolicy = GlobalClockGv4<DomainTag>;

}  // namespace spectm

#endif  // SPECTM_TM_CLOCK_H_
