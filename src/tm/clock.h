// Version-management policies (§4.1 "BaseTM can use two version management
// strategies"), grown into a pluggable family because Figures 7–9 show the global
// commit clock becoming THE scalability bottleneck for the *-g variants:
//
//   GlobalClockNaive — one shared 64-bit counter per TM domain, TL2/GV1-style.
//   Readers sample it ("rv"); every writer commit performs a seq-cst fetch_add on the
//   same cache line. Cheap validation, but the shared line is ping-ponged between all
//   committing cores (the flattening of the *-g curves under high update rates).
//
//   GlobalClockGv4 — TL2's GV4 "pass-on-failure" scheme plus a thread-local sample
//   cache; the default global clock. Two writers racing to advance the clock resolve
//   in ONE cache-line transfer instead of two: the CAS loser adopts the winner's
//   timestamp instead of retrying. Timestamps are then not globally unique — the
//   CommitStamp carries a `unique` flag so engines only apply uniqueness-dependent
//   fast paths (TL2's "wv == rv + 1 skips validation") to stamps that won their CAS.
//
//   LocalClockPolicy — per-orec version numbers with no shared counter. Commits bump
//   each orec independently; full-transaction reads must re-validate their read
//   set after every read to preserve opacity (the "-l" cost discussed in §4.1/§4.4).
//
// GV4 safety sketch (why shared timestamps preserve opacity):
//   * Two commits share a wv only when one CAS-advanced the clock to wv and the other
//     observed the pre-advance value and failed its CAS. Both held their entire write
//     sets locked across their clock access (engines draw the stamp only after
//     acquiring all commit locks), so same-wv writers have disjoint write sets.
//   * A reader can sample rv >= wv only after the winning CAS. The adopter's clock
//     load preceded that CAS (that is what made it adopt), and its write locks were
//     all acquired before its clock load — so every same-wv writer already held its
//     locks when any rv >= wv snapshot was taken. Such a reader can never observe a
//     pre-commit value of those locations: it finds them locked (conflict) or already
//     released at wv <= rv (committed value). No mixed snapshot is observable.
//   The seq_cst fence in NextCommitStamp() is what makes "lock stores precede the
//   clock load" a cross-thread ordering fact rather than an x86 accident.
//
// Thread-local sample cache (GV4): after a commit at wv, the very next Sample() from
// the same thread returns wv without touching the shared line. Any value <= the
// current clock is a valid snapshot (a smaller rv only costs extra extensions), and
// wv <= clock always holds; moreover the same-wv lock-visibility argument above makes
// rv = own-last-wv a *consistent* snapshot, not merely a safe-but-stale one. The
// cache is consumed once so read-dominated phases still observe other threads'
// commits promptly.
//
// Every policy exposes per-thread ClockProbe counters (plain thread-local integers,
// no shared state) so tests and benches can assert hot-path properties — e.g. that
// read-only commits perform zero clock RMWs, or how many Sample() calls the cache
// absorbed.
//
// 64-bit counters make overflow a non-issue (§4.1: "we ignore the possibility of
// version number overflow" on 64-bit systems).
#ifndef SPECTM_TM_CLOCK_H_
#define SPECTM_TM_CLOCK_H_

#include <atomic>
#include <cstdint>

#include "src/common/cacheline.h"
#include "src/common/tagged.h"
#include "src/tm/orec.h"

namespace spectm {

// A drawn commit timestamp. `unique` is true when no concurrent commit can share
// `wv` (the draw won its RMW); only then may engines use uniqueness-dependent
// shortcuts such as skipping read-set validation when wv == rv + 1.
struct CommitStamp {
  Word wv;
  bool unique;
};

// Per-(thread, domain) clock instrumentation. Plain thread-local integers: zero
// shared-state cost, so it stays enabled in release builds. Readable only from the
// owning thread (tests/benches snapshot around single-threaded phases).
template <typename DomainTag>
struct ClockProbe {
  struct Counters {
    std::uint64_t shared_loads = 0;    // loads of the shared clock cache line
    std::uint64_t rmw_draws = 0;       // fetch_add/CAS commit-stamp draws
    std::uint64_t cached_samples = 0;  // Sample() calls served from the local cache
  };
  static Counters& Get() {
    thread_local Counters counters;
    return counters;
  }
  static void Reset() { Get() = Counters{}; }
};

// TL2/GV1-style global clock: every commit is a seq-cst fetch_add on one shared
// cache line. Kept as the ablation baseline for bench/abl_clock_scale.
template <typename DomainTag>
struct GlobalClockNaive {
  static constexpr bool kHasGlobalClock = true;
  static constexpr const char* kName = "naive";

  static std::atomic<Word>& Clock() {
    static CacheAligned<std::atomic<Word>> clock;
    return *clock;
  }

  // Read snapshot ("rv" in TL2).
  static Word Sample() {
    ++ClockProbe<DomainTag>::Get().shared_loads;
    return Clock().load(std::memory_order_seq_cst);
  }

  // Commit timestamp ("wv" in TL2): unique, greater than every previously drawn one.
  static CommitStamp NextCommitStamp() {
    ++ClockProbe<DomainTag>::Get().rmw_draws;
    return CommitStamp{Clock().fetch_add(1, std::memory_order_seq_cst) + 1, true};
  }

  static Word NextCommitVersion() { return NextCommitStamp().wv; }

  // Version released into an orec after a commit at timestamp wv.
  static Word ReleaseVersion(Word wv, Word /*old_orec_word*/) { return wv; }
};

// TL2 GV4 "pass-on-failure" with a thread-local sample cache; the default global
// clock policy. See the file comment for the safety argument.
template <typename DomainTag>
struct GlobalClockGv4 {
  static constexpr bool kHasGlobalClock = true;
  static constexpr const char* kName = "gv4";

  static std::atomic<Word>& Clock() {
    static CacheAligned<std::atomic<Word>> clock;
    return *clock;
  }

  // Read snapshot. Served from the thread-local cache exactly once after each of
  // this thread's commits; otherwise a real load of the shared line.
  static Word Sample() {
    SampleCache& cache = Cache();
    if (cache.fresh) {
      cache.fresh = false;
      ++ClockProbe<DomainTag>::Get().cached_samples;
      return cache.value;
    }
    ++ClockProbe<DomainTag>::Get().shared_loads;
    return Clock().load(std::memory_order_seq_cst);
  }

  // One CAS attempt; on failure adopt the racing timestamp instead of retrying, so a
  // storm of simultaneous committers costs one cache-line transfer, not a retry
  // convoy. Callers MUST hold their entire write set locked before calling (all
  // engines do: stamps are drawn after commit-lock acquisition) — the fence makes
  // those lock stores globally visible before the clock load, which the GV4 safety
  // argument depends on.
  static CommitStamp NextCommitStamp() {
    ++ClockProbe<DomainTag>::Get().rmw_draws;
#if !(defined(__x86_64__) || defined(__i386__))
    // Order the caller's write-set lock stores before the clock load. On x86 the
    // locks were acquired with lock-prefixed RMWs (full barriers) and a later load
    // cannot hoist above them, so the fence would only add a redundant ~30-cycle
    // mfence to every writer commit.
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
    Word seen = Clock().load(std::memory_order_seq_cst);
    CommitStamp stamp;
    if (Clock().compare_exchange_strong(seen, seen + 1, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst)) {
      stamp = CommitStamp{seen + 1, true};
    } else {
      // `seen` now holds the value installed by the racing committer(s); adopt it.
      stamp = CommitStamp{seen, false};
    }
    SampleCache& cache = Cache();
    cache.value = stamp.wv;
    cache.fresh = true;
    return stamp;
  }

  static Word NextCommitVersion() { return NextCommitStamp().wv; }

  static Word ReleaseVersion(Word wv, Word /*old_orec_word*/) { return wv; }

 private:
  struct SampleCache {
    Word value = 0;
    bool fresh = false;
  };
  static SampleCache& Cache() {
    thread_local SampleCache cache;
    return cache;
  }
};

template <typename DomainTag>
struct LocalClockPolicy {
  static constexpr bool kHasGlobalClock = false;
  static constexpr const char* kName = "local";

  static Word Sample() { return 0; }
  static CommitStamp NextCommitStamp() { return CommitStamp{0, false}; }
  static Word NextCommitVersion() { return 0; }

  // Each orec advances independently.
  static Word ReleaseVersion(Word /*wv*/, Word old_orec_word) {
    return OrecVersionOf(old_orec_word) + 1;
  }
};

// Default global clock for the named TM families: GV4 + sample cache. The naive
// policy remains available for ablation (bench/abl_clock_scale) and for callers that
// require globally unique timestamps.
template <typename DomainTag>
using GlobalClockPolicy = GlobalClockGv4<DomainTag>;

}  // namespace spectm

#endif  // SPECTM_TM_CLOCK_H_
