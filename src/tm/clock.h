// Version-management policies (§4.1 "BaseTM can use two version management
// strategies").
//
//   GlobalClockPolicy — one shared 64-bit counter per TM domain, TL2-style. Readers
//   sample it ("rv"); writers draw commit timestamps from it. Cheap validation, but
//   the shared counter becomes a scalability bottleneck under high update rates
//   (visible in Figures 7–9 as the *-g variants flattening out).
//
//   LocalClockPolicy — per-orec version numbers with no shared counter. Commits bump
//   each orec independently; full-transaction reads must re-validate their whole read
//   set after every read to preserve opacity (the "-l" cost discussed in §4.1/§4.4).
//
// 64-bit counters make overflow a non-issue (§4.1: "we ignore the possibility of
// version number overflow" on 64-bit systems).
#ifndef SPECTM_TM_CLOCK_H_
#define SPECTM_TM_CLOCK_H_

#include <atomic>

#include "src/common/cacheline.h"
#include "src/common/tagged.h"
#include "src/tm/orec.h"

namespace spectm {

template <typename DomainTag>
struct GlobalClockPolicy {
  static constexpr bool kHasGlobalClock = true;

  static std::atomic<Word>& Clock() {
    static CacheAligned<std::atomic<Word>> clock;
    return *clock;
  }

  // Read snapshot ("rv" in TL2).
  static Word Sample() { return Clock().load(std::memory_order_seq_cst); }

  // Commit timestamp ("wv" in TL2): unique, greater than every previously drawn one.
  static Word NextCommitVersion() {
    return Clock().fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  // Version released into an orec after a commit at timestamp wv.
  static Word ReleaseVersion(Word wv, Word /*old_orec_word*/) { return wv; }
};

template <typename DomainTag>
struct LocalClockPolicy {
  static constexpr bool kHasGlobalClock = false;

  static Word Sample() { return 0; }
  static Word NextCommitVersion() { return 0; }

  // Each orec advances independently.
  static Word ReleaseVersion(Word /*wv*/, Word old_orec_word) {
    return OrecVersionOf(old_orec_word) + 1;
  }
};

}  // namespace spectm

#endif  // SPECTM_TM_CLOCK_H_
