// BaseTM: the general-purpose word-based STM (§2.1, §4.1).
//
// Algorithm: TL2 (Dice, Shalev, Shavit) with
//   * timebase extension (Riegel, Fetzer, Felber) — a read that observes a version
//     newer than the transaction's snapshot revalidates the read set against a fresh
//     clock sample instead of aborting;
//   * the hash-based write set of Spear et al. for O(1) read-after-write checks
//     (with a descriptor-resident bloom so the common MISS costs one AND+TEST);
//   * commit-time locking, invisible reads, deferred updates;
//   * opacity: with a global clock via rv-sampling + extension, with local per-orec
//     clocks via full read-set revalidation after every read (§4.1);
//   * contention management: self-abort plus randomized linear backoff (SwissTM's
//     first phase), driven by the caller's retry loop; past an abort streak of
//     kSerialEscalationStreak the next attempt runs serial-irrevocable behind the
//     domain's SerialGate (src/tm/serial.h) — it excludes every other committer
//     (read-only transactions keep running) and therefore cannot conflict-abort,
//     bounding the streak.
//
// Read-set layout: the log is SoA (src/common/soa_log.h) storing (orec, expected
// unlocked orec body) lanes, and every validation walk runs through the batch
// kernel (validate_batch.h) — AVX2 gather-compare four entries per iteration
// where available, scalar otherwise, identical abort decisions either way.
//
// Usage pattern (mirrors the paper's §2.1 example):
//
//   typename Tm::Tx tx;
//   do {
//     tx.Start();
//     Word v = tx.Read(&slot);
//     if (!tx.ok()) continue;            // conflict: Read returned 0, tx will retry
//     tx.Write(&slot, v + EncodeInt(1));
//   } while (!tx.Commit());
//
// Read() returns 0 and poisons the transaction on conflict; callers must check ok()
// before acting on values in ways that could fault (e.g. dereferencing). Commit()
// returns false on conflict or user abort and performs the backoff, so the retry loop
// needs no extra contention handling.
#ifndef SPECTM_TM_FULL_TM_H_
#define SPECTM_TM_FULL_TM_H_

#include <atomic>
#include <cassert>

#include "src/common/cacheline.h"
#include "src/common/failpoint.h"
#include "src/common/tagged.h"
#include "src/tm/clock.h"
#include "src/tm/layout.h"
#include "src/tm/orec.h"
#include "src/tm/serial.h"
#include "src/tm/txdesc.h"
#include "src/tm/txguard.h"
#include "src/tm/validate_batch.h"
#include "src/tm/valstrategy.h"

namespace spectm {

// kMode (valstrategy.h) opts the family into the adaptive validation engine:
// writers then bump the domain's WriterSummary (commit counter + write-bloom ring)
// while holding their commit locks, and local-clock readers use it to skip the
// otherwise per-read O(read-set) revalidation (§4.1's "-l" cost). kPassive is the
// zero-overhead default: no summary, the seed's exact behavior.
template <typename LayoutT, typename ClockT, typename DomainTag,
          ValMode kMode = ValMode::kPassive>
class FullTm {
 public:
  using Layout = LayoutT;
  using Clock = ClockT;
  using Slot = typename Layout::Slot;
  // Per-stripe counters are a domain-wide writer protocol: only the partitioned
  // mode pays for them (see WriterSummary's kPartitionedCounters note).
  using Summary = WriterSummary<DomainTag, kMode == ValMode::kPartitioned>;
  using Probe = ValProbe<DomainTag>;
  using Cm = SerialCm<DomainTag>;
  using Gate = SerialGate<DomainTag>;
  static constexpr ValMode kValMode = kMode;
  // Reader-side strategy only pays off where per-read revalidation exists: the
  // local-clock families. Global-clock readers keep rv-sampling + extension.
  static constexpr bool kStrategicReads =
      kMode != ValMode::kPassive && !Clock::kHasGlobalClock;

  class Tx {
   public:
    Tx() = default;
    Tx(const Tx&) = delete;
    Tx& operator=(const Tx&) = delete;

    // Defensive unwind for manual retry loops that let an exception escape
    // between Start() and Commit(): no commit lock can be outstanding here
    // (Commit never escapes while holding any — its internal guard sees to
    // that), but the serial token and the attempt accounting can be.
    ~Tx() {
      if (desc_ != nullptr && active_) {
        AbortForUnwind();
      }
    }

    void Start() {
      desc_ = &DescOf<DomainTag>();
      desc_->read_log.Clear();
      desc_->wset.Clear();
      desc_->lock_log.clear();
      active_ = true;
      user_abort_ = false;
      // Health watchdog attempt-start feed (no-op unless SPECTM_HEALTH):
      // observes foreign serial holds before the escalation decision below,
      // and refreshes the ring-saturation gauge from this thread's intersect
      // failures so the window close in OnOutcome sees the current level.
      Cm::NoteAttemptStart(*desc_);
      if constexpr (health::kEnabled && kMode != ValMode::kPassive) {
        health::SetRingGauge<DomainTag>(Summary::Fails().intersect);
      }
      // Two-phase contention manager, phase 2: past the (hysteretic) streak
      // threshold this attempt runs serial-irrevocable. Token first, reads
      // after — once AcquireSerial returns, no other committer is in flight,
      // so nothing this attempt reads can be invalidated before Commit.
      if (!serial_ && Cm::ShouldEscalate(*desc_)) {
        Gate::AcquireSerial(desc_);
        serial_ = true;
        Cm::NoteEscalated(*desc_);
      }
      if constexpr (Clock::kHasGlobalClock) {
        rv_ = Clock::Sample();
      }
      if constexpr (kStrategicReads) {
        // Strategy choice + probe tick + anchor, shared across engines
        // (StrategyState): the anchor is drawn before the first read, so the
        // skip argument's "every entry admitted no earlier than the sample it
        // is judged against" holds for the whole attempt.
        state_.StartAttempt(kMode, /*has_bloom_ring=*/true, desc_->stats);
      }
    }

    // Transactional read. Returns the buffered value for locations this transaction
    // has already written. On conflict returns 0 with ok() == false.
    Word Read(Slot* s) {
      if (!active_) {
        return 0;
      }
      Word buffered;
      if (desc_->wset.Lookup(s, &buffered)) {  // bloom-filtered: miss is AND+TEST
        return buffered;
      }
      std::atomic<Word>& orec = Layout::OrecOf(*s);
      int spins = 0;
      while (true) {
        const Word o1 = orec.load(std::memory_order_acquire);
        if (OrecIsLocked(o1)) {
          // Commit-time locking: the owner is mid-commit; wait briefly, then concede.
          if (++spins <= kReadLockSpin) {
            CpuRelax();
            continue;
          }
          return Fail();
        }
        const Word value = Layout::Data(*s).load(std::memory_order_acquire);
        // Widen the data-load -> version-recheck window (and optionally force
        // a conflict) under fault injection; no-op in production builds.
        SPECTM_FAILPOINT_PAUSE(failpoint::Site::kPostReadPreSandwich);
        const Word o2 = orec.load(std::memory_order_acquire);
        if (o1 != o2) {
          continue;  // raced with a commit; re-sandwich
        }
        if (SPECTM_FAILPOINT(failpoint::Site::kPostReadPreSandwich)) {
          return Fail();
        }
        // o1 is the unlocked orec body — exactly the word validation expects to
        // re-observe, so it goes into the log's expected-word lane verbatim.
        if constexpr (Clock::kHasGlobalClock) {
          if (OrecVersionOf(o1) > rv_) {
            // GV5-style clocks can lag published versions; give the policy a chance
            // to drag the clock up so the extension below can succeed.
            Clock::OnStaleRead(OrecVersionOf(o1));
            // Timebase extension: advance the snapshot if the read set still holds.
            if (!Extend()) {
              return Fail();
            }
            continue;
          }
          desc_->read_log.PushBack(&orec, o1);
          return value;
        } else {
          desc_->read_log.PushBack(&orec, o1);
          if constexpr (kStrategicReads) {
            state_.NoteRead(&orec);
          }
          // No snapshot number to compare against: preserve opacity by revalidating
          // the read set after every read (§4.1, the "-l" cost). Fast path: the
          // entry just appended was read through an orec-data-orec sandwich, so it
          // is consistent as of its own read instant; only the EARLIER entries need
          // re-checking. Orec versions advance monotonically on every committed
          // update, so an earlier entry whose version matches both at its original
          // read and now was unchanged for the whole interval in between — including
          // the new entry's read instant, which therefore serves as the single
          // consistency point for the full set. A first read validates nothing.
          //
          // Strategy fast paths (valstrategy.h): a stable domain commit counter —
          // or all-disjoint intervening write blooms — proves the earlier entries
          // unchanged without walking them.
          if (desc_->read_log.Size() > 1) {
            bool ok;
            if constexpr (kStrategicReads) {
              if (state_.TrySkipRead(&desc_->stats) ==
                  StratState::ReadSkip::kSkipped) {
                ok = true;
              } else {
                // Tracked walk must cover the FULL log, tail included: it
                // re-anchors the sample, and "valid at the anchor" has to hold
                // for the entry just read too (valstrategy.h tail rule).
                ok = ValidatePrefixTracked(desc_->read_log.Size());
              }
            } else {
              ok = ValidateReadLogPrefix(desc_->read_log.Size() - 1);
            }
            if (!ok) {
              return Fail();
            }
          }
          return value;
        }
      }
    }

    // Deferred update: buffered in the write set, flushed on commit.
    void Write(Slot* s, Word value) {
      if (!active_) {
        return;
      }
      desc_->wset.Put(s, value);
    }

    // Programmatic abort (e.g. the skip list's "window changed" bail-out, Fig. 4).
    // The transaction still terminates through Commit(), which will return false
    // without publishing anything; no backoff is applied for user aborts.
    void AbortTx() { user_abort_ = true; }

    bool ok() const { return active_; }

    // Attempts to commit. On success returns true. On conflict (or if the transaction
    // was already poisoned) applies contention-manager backoff and returns false; on
    // user abort returns false immediately.
    bool Commit() {
      if (!active_) {
        OnAbort();
        return false;
      }
      active_ = false;
      if (user_abort_) {
        desc_->stats.aborts.fetch_add(1, std::memory_order_relaxed);
        UpdateAbortEwma(desc_->stats, /*aborted=*/true);
        ReleaseSerialIfHeld();  // user abort must not wedge the domain
        return false;
      }
      if (desc_->wset.Empty()) {
        // Read-only: reads were kept consistent throughout (rv/extension or
        // incremental validation), so there is nothing left to check. Readers
        // never enter the committer gate — this is the path that keeps running
        // concurrently with a serial transaction.
        OnCommit();
        return true;
      }
      // Committer gate: announce before the first lock CAS so a serial owner
      // can drain us, and fail fast if the token is held (retry via backoff;
      // bounded by the serial transaction's solo execution). A serial attempt
      // holds the token instead and skips the gate.
      if (!serial_) {
        if (!Gate::TryEnterCommitter(desc_)) {
          OnAbort();
          return false;
        }
        gated_ = true;
      }
      // Unwind guard over the locked region: every early conflict return AND
      // any exception erupting between the first lock CAS and the end of
      // validation (fail-point throw injection — nothing else on this path
      // throws) runs one release sequence, in OnAbort's mandatory order:
      // locks restored, then the gate flag retracted, then the serial token
      // released (docs/VALIDATION.md §8).
      TxUnwindGuard cleanup([this] {
        ReleaseLocks();
        OnAbort();
      });
      if (!LockWriteSet()) {
        return false;
      }
      Word wv = 0;
      bool skip_validation = false;
      if constexpr (Clock::kHasGlobalClock) {
        const CommitStamp stamp = Clock::NextCommitStamp();
        wv = stamp.wv;
        // TL2 optimization: if no other transaction committed since our snapshot,
        // the read set cannot have changed. Requires a UNIQUE stamp — a GV4-adopted
        // timestamp is shared with a racing committer whose writes may overlap our
        // read set, so adopters always validate.
        skip_validation = stamp.unique && wv == rv_ + 1;
      }
      Word own_idx = 0;
      unsigned write_stripes = 0;
      if constexpr (kMode != ValMode::kPassive) {
        // Writer summary: bump-and-publish while every commit lock is held, BEFORE
        // the commit-time validation below and before any data store or orec
        // release. Bump-before-validate is what lets the skip paths stay sound
        // between two crossing committers (valstrategy.h): whichever bumps second
        // fails its own skip test and walks into the first one's locks. The
        // stripe mask shards the bump: only the counter stripes this write set
        // touches move, so disjoint-stripe readers keep their anchors.
        Bloom128 write_bloom;
        for (const LockLogEntry& l : desc_->lock_log) {
          write_bloom |= AddrBloom128(l.orec);
          write_stripes |= 1u << CounterStripeOf(l.orec);
        }
        own_idx = Summary::PublishAndBump(write_bloom, write_stripes);
        ++Probe::Get().summary_publishes;
        if constexpr (kMode == ValMode::kPartitioned) {
          Probe::Get().stripe_bumps +=
              static_cast<std::uint64_t>(CountStripeBits(write_stripes));
        }
      }
      if constexpr (kStrategicReads) {
        // Commit-time skip (StrategyState): own_idx == sample + 1 proves no
        // foreign commit bumped since the log was last known valid (writers that
        // bump after us validate after our locks are visible and detect us
        // instead); under kPartitioned the same holds one stripe at a time, and
        // under kBloom/kStripe foreign commits in (sample, own_idx) may
        // intervene as long as their write blooms miss our read bloom. Our own
        // commit locks pin the write set regardless.
        if (!skip_validation && state_.TrySkipCommit(own_idx, write_stripes)) {
          skip_validation = true;
        }
      }
      if (!skip_validation && !ValidateReadLogForCommit()) {
        return false;
      }
      cleanup.Dismiss();  // past the last throwing/failing operation: commit
      for (const WriteSet::Entry& e : desc_->wset) {
        Layout::Data(*static_cast<Slot*>(e.addr)).store(e.value, std::memory_order_release);
      }
      for (const LockLogEntry& l : desc_->lock_log) {
        l.orec->store(MakeOrecVersion(Clock::ReleaseVersion(wv, l.old_word)),
                      std::memory_order_release);
      }
      OnCommit();
      return true;
    }

    // Unwind entry point for the retry loop (and the destructor): finishes an
    // attempt that an exception tore out of the BODY. Locks are only ever held
    // inside Commit(), which unwinds them internally, so here only the serial
    // token and the attempt accounting can be outstanding. Idempotent: after
    // Commit's internal guard already finished the attempt, this is a no-op.
    // No backoff — like a user abort, a cancel is not contention.
    void AbortForUnwind() {
      if (!active_) {
        return;
      }
      active_ = false;
      ReleaseSerialIfHeld();
      desc_->stats.aborts.fetch_add(1, std::memory_order_relaxed);
      UpdateAbortEwma(desc_->stats, /*aborted=*/true);
    }

   private:
    using StratState = StrategyState<Summary, Probe>;

    Word Fail() {
      active_ = false;
      conflicted_ = true;
      return 0;
    }

    // Commit-time validation: the plain conservative single walk (a foreign lock
    // on a read-log entry fails it, which the crossing-committer argument needs).
    // Entries locked by this transaction's own commit are pinned and valid.
    bool ValidateReadLogForCommit() const {
      if constexpr (kStrategicReads) {
        ++Probe::Get().validation_walks;
      }
      return ValidateReadLogPrefix(desc_->read_log.Size());
    }

    // Tracked walk: one pass (orec versions are monotone, so a single matching
    // pass is a valid snapshot — no NOrec retry loop needed) plus a best-effort
    // anchor: the snapshot (global sample + stripe vector) taken before the walk
    // becomes the new skip anchor only if the global counter is still stable
    // after it (StrategyState's confirm rule).
    bool ValidatePrefixTracked(std::size_t count) {
      ++Probe::Get().validation_walks;
      const typename StratState::Snapshot pre_walk = state_.DrawSnapshot();
      if (!ValidateReadLogPrefix(count)) {
        return false;
      }
      state_.ConfirmAnchorAfterWalk(pre_walk);
      return true;
    }

    // Validates the first `count` read-log entries (the per-read fast path excludes
    // the freshly sandwiched tail entry) through the batch kernel: gather-compare
    // over the SoA lanes where SIMD is enabled, scalar otherwise. The expected-word
    // lane holds unlocked orec bodies, so a mismatch is either a real conflict or
    // an orec this transaction itself locked at commit time — tolerated iff the
    // displaced body still matches.
    bool ValidateReadLogPrefix(std::size_t count) const {
      // Forced failure here exercises every abort edge that follows a walk —
      // including the post-publish one (summary bumped, then abort), which the
      // soundness argument claims is conservative-but-safe.
      if (SPECTM_FAILPOINT(failpoint::Site::kPreValidate)) {
        return false;
      }
      typename Probe::Counters& probe = Probe::Get();
      return ValidateEqualSpan(
          desc_->read_log.Ptrs(), desc_->read_log.Words(), count,
          probe.simd_batches, probe.scalar_checks,
          [this](std::size_t i, Word observed) {
            return OrecIsLocked(observed) && OrecOwnerOf(observed) == desc_ &&
                   FindLockedOldWord(desc_->read_log.PtrAt(i)) ==
                       desc_->read_log.WordAt(i);
          });
    }

    Word FindLockedOldWord(const std::atomic<Word>* orec) const {
      for (const LockLogEntry& l : desc_->lock_log) {
        if (l.orec == orec) {
          return l.old_word;
        }
      }
      assert(false && "self-locked orec missing from lock log");
      return 0;
    }

    // Timebase extension (global clock only): sample a fresh timestamp, prove the
    // read set is still intact, and adopt the new snapshot.
    bool Extend() {
      const Word t = Clock::Sample();
      if (!ValidateReadLogPrefix(desc_->read_log.Size())) {
        return false;
      }
      rv_ = t;
      return true;
    }

    bool LockWriteSet() {
      for (const WriteSet::Entry& e : desc_->wset) {
        if (SPECTM_FAILPOINT(failpoint::Site::kLockAcquire)) {
          return false;  // partial-lock abort: ReleaseLocks restores the prefix
        }
        std::atomic<Word>& orec = Layout::OrecOf(*static_cast<Slot*>(e.addr));
        Word w = orec.load(std::memory_order_relaxed);
        while (true) {
          if (OrecIsLocked(w)) {
            if (OrecOwnerOf(w) == desc_) {
              break;  // two slots hashed to one orec; already ours
            }
            return false;  // deadlock avoidance: never wait while holding locks
          }
          if (orec.compare_exchange_weak(w, MakeOrecLocked(desc_),
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
            desc_->lock_log.push_back(LockLogEntry{&orec, w});
            break;
          }
        }
      }
      return true;
    }

    void ReleaseLocks() {
      for (const LockLogEntry& l : desc_->lock_log) {
        l.orec->store(l.old_word, std::memory_order_release);
      }
      desc_->lock_log.clear();
    }

    // The gate is held through the releasing stores: a serial transaction must
    // not see flags drained while our commit locks are still planted, or its
    // own (fail-fast) lock acquisition could hit them and abort — the one
    // thing serial mode promises cannot happen.
    void ExitGateIfHeld() {
      if (gated_) {
        Gate::ExitCommitter(desc_);
        gated_ = false;
      }
    }

    void ReleaseSerialIfHeld() {
      if (serial_) {
        Gate::ReleaseSerial(desc_);
        serial_ = false;
      }
    }

    void OnCommit() {
      ExitGateIfHeld();
      desc_->stats.commits.fetch_add(1, std::memory_order_relaxed);
      UpdateAbortEwma(desc_->stats, /*aborted=*/false);
      if (serial_) {
        Gate::ReleaseSerial(desc_);
        serial_ = false;
        Cm::OnSerialCommit(*desc_);
      } else {
        Cm::OnOptimisticCommit(*desc_);
      }
    }

    void OnAbort() {
      ExitGateIfHeld();
      // A serial attempt cannot conflict-abort, but a forced (fail-point)
      // abort can land here; the token MUST go back either way.
      ReleaseSerialIfHeld();
      desc_->stats.aborts.fetch_add(1, std::memory_order_relaxed);
      UpdateAbortEwma(desc_->stats, /*aborted=*/true);
      Cm::NoteAbortBackoff(*desc_);
    }

    TxDesc* desc_ = nullptr;
    Word rv_ = 0;
    StratState state_;
    bool active_ = false;
    bool conflicted_ = false;
    bool user_abort_ = false;
    bool serial_ = false;  // this attempt holds the serialization token
    bool gated_ = false;   // this attempt announced itself as a committer
  };

  // Convenience retry wrapper: runs `body(tx)` until it commits. The body must
  // tolerate re-execution and check tx.ok() before dereferencing read results.
  //
  // Exception contract (src/tm/txguard.h): a TxCancel thrown anywhere inside
  // the body aborts the attempt through the ordinary unwind path, then either
  // retries (Policy::kRetry) or returns false with nothing published
  // (Policy::kAbort). Any OTHER exception — a foreign throw from user code, or
  // an injected fault erupting inside Commit itself — aborts the attempt the
  // same way and rethrows, with every lock restored and the serial token
  // released before the exception leaves this frame. Returns true iff a body
  // execution committed.
  template <typename Body>
  static bool Atomically(Body&& body) {
    Tx tx;
    while (true) {
      try {
        tx.Start();
        body(tx);
        if (tx.Commit()) {
          return true;
        }
      } catch (const TxCancel& cancel) {
        tx.AbortForUnwind();
        if (cancel.policy == TxCancel::Policy::kAbort) {
          return false;
        }
      } catch (...) {
        tx.AbortForUnwind();
        throw;
      }
    }
  }

  static TxStats& StatsForCurrentThread() { return DescOf<DomainTag>().stats; }
};

}  // namespace spectm

#endif  // SPECTM_TM_FULL_TM_H_
