// Fine-grained full-transaction adapter: the "orec-full-g (fine)" configuration of
// Figure 6(a).
//
// §4.4.1: "a skip list implementation using BaseTM, but splitting each lookup/insert/
// remove operation into a series of fine-grained transactions that are implemented
// over the ordinary STM interface rather than using short transactions... without
// the specialized implementation, the overheads of the fine-grain transactions are
// prohibitive."
//
// FineGrainedFamily<F> exposes the short-transaction interface (ShortTx, Single*)
// but implements every operation with F's ordinary full transactions. Plugging it
// into the Spec* data structures yields exactly the paper's comparison: identical
// decomposition, general-purpose engine underneath.
#ifndef SPECTM_TM_FINE_GRAINED_H_
#define SPECTM_TM_FINE_GRAINED_H_

#include <cassert>
#include <initializer_list>

#include "src/common/inline_vec.h"
#include "src/common/tagged.h"
#include "src/tm/config.h"

namespace spectm {

template <typename Family>
struct FineGrainedFamily {
  using Base = Family;
  using Slot = typename Family::Slot;
  using Full = typename Family::Full;
  using FullTx = typename Family::FullTx;

  // Short-transaction facade over one full transaction. Unlike a genuine short
  // transaction, commit can fail (commit-time validation), which callers observe
  // through CommitRw/CommitMixed returning false.
  class ShortTx {
   public:
    ShortTx() { tx_.Start(); }
    ~ShortTx() {
      if (!finished_) {
        Abort();
      }
    }
    ShortTx(const ShortTx&) = delete;
    ShortTx& operator=(const ShortTx&) = delete;

    Word ReadRw(Slot* s) {
      assert(!rw_.Full());
      const Word v = tx_.Read(s);
      if (!tx_.ok()) {
        return 0;
      }
      rw_.PushBack(s);
      return v;
    }

    Word ReadRo(Slot* s) {
      assert(!ro_.Full());
      const Word v = tx_.Read(s);
      if (!tx_.ok()) {
        return 0;
      }
      ro_.PushBack(s);
      return v;
    }

    bool Valid() const { return tx_.ok(); }

    bool ValidateRo() const { return tx_.ok(); }  // reads validated continuously

    // Full transactions track write sets dynamically, so an upgrade just schedules
    // the already-read slot for a commit-time write; validation covers the read.
    bool UpgradeRoToRw(int ro_index) {
      if (!tx_.ok()) {
        return false;
      }
      assert(ro_index >= 0 && static_cast<std::size_t>(ro_index) < ro_.Size());
      assert(!rw_.Full());
      rw_.PushBack(ro_[static_cast<std::size_t>(ro_index)]);
      return true;
    }

    bool CommitRw(std::initializer_list<Word> values) {
      assert(values.size() == rw_.Size());
      const Word* v = values.begin();
      for (std::size_t i = 0; i < rw_.Size(); ++i) {
        tx_.Write(rw_[i], v[i]);
      }
      finished_ = true;
      return tx_.Commit();
    }

    bool CommitMixed(std::initializer_list<Word> values) { return CommitRw(values); }

    void Abort() {
      finished_ = true;
      tx_.AbortTx();
      tx_.Commit();  // terminates the descriptor's logs; returns false
    }

    void Reset() {
      if (!finished_) {
        Abort();
      }
      rw_.Clear();
      ro_.Clear();
      finished_ = false;
      tx_.Start();
    }

    std::size_t RwCount() const { return rw_.Size(); }
    std::size_t RoCount() const { return ro_.Size(); }

   private:
    FullTx tx_;
    InlineVec<Slot*, kMaxShortWrites> rw_;
    InlineVec<Slot*, kMaxShortReads> ro_;
    bool finished_ = false;
  };

  // Single-op transactions, each as a one-access full transaction.
  static Word SingleRead(Slot* s) {
    FullTx tx;
    Word v = 0;
    do {
      tx.Start();
      v = tx.Read(s);
    } while (!tx.Commit());
    return v;
  }

  static void SingleWrite(Slot* s, Word value) {
    FullTx tx;
    do {
      tx.Start();
      tx.Write(s, value);
    } while (!tx.Commit());
  }

  static Word SingleCas(Slot* s, Word expected, Word desired) {
    FullTx tx;
    while (true) {
      tx.Start();
      const Word v = tx.Read(s);
      if (!tx.ok()) {
        tx.Commit();
        continue;
      }
      if (v != expected) {
        if (tx.Commit()) {
          return v;  // read-only commit: the mismatch was a consistent observation
        }
        continue;
      }
      tx.Write(s, desired);
      if (tx.Commit()) {
        return expected;
      }
    }
  }

  static void RawWrite(Slot* s, Word v) { Family::RawWrite(s, v); }
  static Word RawRead(Slot* s) { return Family::RawRead(s); }
};

}  // namespace spectm

#endif  // SPECTM_TM_FINE_GRAINED_H_
