// Runtime contract checking for the short-transaction API.
//
// §2.2: "Using short SpecTM transactions... can easily result in mistakes by
// programmers (e.g. using a wrong function name or a wrong index). Incorrect uses of
// the SpecTM interface can typically be detected at runtime. For performance, we do
// not implement such checks in non-debug modes." §6 adds that "software checking
// tools could be used to ensure that programmers correctly follow the requirements."
//
// CheckedShortTx<Family> is that tool: a drop-in wrapper over Family::ShortTx that
// enforces the Figure 2 contract —
//   * at most kMaxShortReads RO and kMaxShortWrites RW locations,
//   * every access names a distinct location,
//   * the RO and RW sets stay disjoint,
//   * no accesses after the record finished (commit/abort),
//   * commit arity matches the RW access count,
//   * upgrades name a live RO index that was not already upgraded,
//   * commits are not attempted on an invalidated record.
//
// A violating call is SUPPRESSED (the underlying engine never sees it) and recorded;
// the wrapper invalidates itself so subsequent control flow takes the restart path.
// Tests and debug builds read the violation log; production code simply instantiates
// the raw ShortTx instead — zero overhead, as the paper prescribes.
//
// The wrapper delegates Reset/Abort to the underlying ShortTx unchanged, so the
// two-phase contention manager (backoff + serial escalation, src/tm/serial.h)
// applies to checked retry loops exactly as to raw ones.
#ifndef SPECTM_TM_CHECKED_TX_H_
#define SPECTM_TM_CHECKED_TX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/common/tagged.h"
#include "src/tm/config.h"

namespace spectm {

enum class TxViolation {
  kTooManyReads,
  kTooManyWrites,
  kDuplicateLocation,
  kRoRwOverlap,
  kUseAfterFinish,
  kCommitArityMismatch,
  kUpgradeBadIndex,
  kUpgradeRepeated,
  kCommitWhileInvalid,
};

inline const char* TxViolationName(TxViolation v) {
  switch (v) {
    case TxViolation::kTooManyReads:
      return "too many read-only locations";
    case TxViolation::kTooManyWrites:
      return "too many read-write locations";
    case TxViolation::kDuplicateLocation:
      return "duplicate location in access set";
    case TxViolation::kRoRwOverlap:
      return "location in both RO and RW sets";
    case TxViolation::kUseAfterFinish:
      return "access after commit/abort";
    case TxViolation::kCommitArityMismatch:
      return "commit arity does not match RW access count";
    case TxViolation::kUpgradeBadIndex:
      return "upgrade names an invalid RO index";
    case TxViolation::kUpgradeRepeated:
      return "upgrade of an already-upgraded RO entry";
    case TxViolation::kCommitWhileInvalid:
      return "commit attempted on an invalid record";
  }
  return "?";
}

template <typename Family>
class CheckedShortTx {
 public:
  using Slot = typename Family::Slot;

  CheckedShortTx() = default;

  // Exception safety (src/tm/txguard.h): the engine call runs BEFORE the
  // wrapper records the access, so a throw erupting inside the engine (an
  // injected fault, or TxCancel from a conflict hook) leaves this shadow
  // state describing exactly the accesses the engine saw — a later
  // Reset()/Abort() then agrees with the engine about what to unwind.
  Word ReadRw(Slot* s) {
    if (!PreAccess(s, /*is_rw=*/true)) {
      return 0;
    }
    const Word w = tx_.ReadRw(s);
    rw_slots_.push_back(s);
    return w;
  }

  Word ReadRo(Slot* s) {
    if (!PreAccess(s, /*is_rw=*/false)) {
      return 0;
    }
    const Word w = tx_.ReadRo(s);
    ro_slots_.push_back(s);
    ro_upgraded_.push_back(false);
    return w;
  }

  bool Valid() const { return violations_.empty() && tx_.Valid(); }

  bool ValidateRo() const { return violations_.empty() && tx_.ValidateRo(); }

  bool UpgradeRoToRw(int ro_index) {
    if (finished_) {
      return Fail(TxViolation::kUseAfterFinish);
    }
    if (ro_index < 0 || static_cast<std::size_t>(ro_index) >= ro_slots_.size()) {
      return Fail(TxViolation::kUpgradeBadIndex);
    }
    if (ro_upgraded_[static_cast<std::size_t>(ro_index)]) {
      return Fail(TxViolation::kUpgradeRepeated);
    }
    if (rw_slots_.size() >= static_cast<std::size_t>(kMaxShortWrites)) {
      return Fail(TxViolation::kTooManyWrites);
    }
    // Engine first, bookkeeping after (see ReadRw): an upgrade that throws
    // must not leave the shadow RO entry marked upgraded.
    const bool upgraded = tx_.UpgradeRoToRw(ro_index);
    ro_upgraded_[static_cast<std::size_t>(ro_index)] = true;
    rw_slots_.push_back(ro_slots_[static_cast<std::size_t>(ro_index)]);
    return upgraded;
  }

  bool CommitRw(std::initializer_list<Word> values) {
    if (!PreCommit(values.size())) {
      return false;
    }
    // Engine first (see ReadRw): a commit torn by an exception leaves the
    // wrapper un-finished, matching the engine's still-live attempt.
    const bool ok = tx_.CommitRw(values);
    finished_ = true;
    return ok;
  }

  bool CommitMixed(std::initializer_list<Word> values) {
    if (!PreCommit(values.size())) {
      return false;
    }
    const bool ok = tx_.CommitMixed(values);
    finished_ = true;
    return ok;
  }

  void Abort() {
    finished_ = true;
    tx_.Abort();
  }

  void Reset() {
    tx_.Reset();
    rw_slots_.clear();
    ro_slots_.clear();
    ro_upgraded_.clear();
    finished_ = false;
    // Violations persist across Reset: they describe programmer errors, not state.
  }

  std::size_t RwCount() const { return rw_slots_.size(); }
  std::size_t RoCount() const { return ro_slots_.size(); }

  const std::vector<TxViolation>& Violations() const { return violations_; }

  std::string ViolationReport() const {
    std::string report;
    for (TxViolation v : violations_) {
      report += TxViolationName(v);
      report += "; ";
    }
    return report;
  }

 private:
  bool PreAccess(Slot* s, bool is_rw) {
    if (finished_) {
      return Fail(TxViolation::kUseAfterFinish);
    }
    if (is_rw && rw_slots_.size() >= static_cast<std::size_t>(kMaxShortWrites)) {
      return Fail(TxViolation::kTooManyWrites);
    }
    if (!is_rw && ro_slots_.size() >= static_cast<std::size_t>(kMaxShortReads)) {
      return Fail(TxViolation::kTooManyReads);
    }
    for (Slot* seen : is_rw ? rw_slots_ : ro_slots_) {
      if (seen == s) {
        return Fail(TxViolation::kDuplicateLocation);
      }
    }
    for (Slot* seen : is_rw ? ro_slots_ : rw_slots_) {
      if (seen == s) {
        return Fail(TxViolation::kRoRwOverlap);
      }
    }
    return true;
  }

  bool PreCommit(std::size_t arity) {
    if (finished_) {
      return Fail(TxViolation::kUseAfterFinish);
    }
    if (!violations_.empty() || !tx_.Valid()) {
      Fail(TxViolation::kCommitWhileInvalid);
      Abort();
      return false;
    }
    if (arity != rw_slots_.size()) {
      Fail(TxViolation::kCommitArityMismatch);
      Abort();
      return false;
    }
    return true;
  }

  bool Fail(TxViolation v) {
    violations_.push_back(v);
    return false;
  }

  typename Family::ShortTx tx_;
  std::vector<Slot*> rw_slots_;
  std::vector<Slot*> ro_slots_;
  std::vector<bool> ro_upgraded_;
  std::vector<TxViolation> violations_;
  bool finished_ = false;
};

}  // namespace spectm

#endif  // SPECTM_TM_CHECKED_TX_H_
