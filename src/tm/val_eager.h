// Eager-locking value-based STM ("val-eager") — the paper's other §6 proposal: "a
// value-based STM that locks words when reading could be used to simplify the
// programming model in our designs which use value-based validation."
//
// Every Read acquires the word's lock (like a short RW access, but dynamically
// sized); Writes buffer the new value in the acquired entry. Because everything read
// is pinned until commit, there is NO validation anywhere: no version numbers, no
// value comparison, no commit counters, no §2.4 special-case reasoning — the
// simplified programming model the paper promises, priced as reduced read
// concurrency (two readers of one word conflict) and abort-on-locked.
//
// Shares the val layout's lock-bit protocol, so it interoperates with ValShortTm /
// ValFullTm transactions on the same words.
#ifndef SPECTM_TM_VAL_EAGER_H_
#define SPECTM_TM_VAL_EAGER_H_

#include <cassert>
#include <vector>

#include "src/common/tagged.h"
#include "src/tm/config.h"
#include "src/tm/txdesc.h"
#include "src/tm/val_short.h"
#include "src/tm/val_word.h"

namespace spectm {

template <typename ValidationT = NonReuseValidation>
class ValEagerTm {
 public:
  using Validation = ValidationT;
  using Slot = ValSlot;

  class Tx {
   public:
    Tx() = default;
    Tx(const Tx&) = delete;
    Tx& operator=(const Tx&) = delete;

    void Start() {
      desc_ = &DescOf<ValDomainTag>();
      log_.clear();
      active_ = true;
      user_abort_ = false;
      wrote_ = false;
    }

    // Acquires the word (idempotently for repeat accesses) and returns the current
    // transactional value — the buffered write if one exists, else the displaced
    // original.
    Word Read(Slot* s) {
      if (!active_) {
        return 0;
      }
      Entry* e = Acquire(s);
      if (e == nullptr) {
        return Fail();
      }
      return e->written ? e->new_value : e->old_value;
    }

    void Write(Slot* s, Word value) {
      if (!active_) {
        return;
      }
      assert((value & kLockBit) == 0 && "val layout reserves bit 0 (use EncodeInt)");
      Entry* e = Acquire(s);
      if (e == nullptr) {
        Fail();
        return;
      }
      e->new_value = value;
      e->written = true;
      wrote_ = true;
    }

    void AbortTx() { user_abort_ = true; }
    bool ok() const { return active_; }

    // Commit = one release store per acquired word: the new value where written, the
    // displaced original elsewhere. Nothing to validate — locks pinned everything.
    bool Commit() {
      if (!active_) {
        ReleaseAll();
        OnAbort();
        return false;
      }
      active_ = false;
      if (user_abort_) {
        ReleaseAll();
        desc_->stats.aborts.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (wrote_) {
        Validation::OnWriterCommit(desc_);  // for interop with validating readers
      }
      for (const Entry& e : log_) {
        e.slot->word.store(e.written ? e.new_value : e.old_value,
                           std::memory_order_release);
      }
      log_.clear();
      desc_->stats.commits.fetch_add(1, std::memory_order_relaxed);
      desc_->backoff.OnCommit();
      return true;
    }

   private:
    struct Entry {
      Slot* slot;
      Word old_value;
      Word new_value;
      bool written;
    };

    Entry* Acquire(Slot* s) {
      for (Entry& e : log_) {
        if (e.slot == s) {
          return &e;
        }
      }
      Word w = s->word.load(std::memory_order_relaxed);
      while (true) {
        if (ValIsLocked(w)) {
          if (ValOwnerOf(w) == desc_) {
            // Held by a concurrent engine record of this thread — forbidden by the
            // one-live-transaction contract; treat as conflict in release builds.
            assert(false && "word locked by this thread outside this transaction");
          }
          return nullptr;  // never wait while holding locks
        }
        if (s->word.compare_exchange_weak(w, MakeValLocked(desc_),
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
          log_.push_back(Entry{s, w, 0, false});
          return &log_.back();
        }
      }
    }

    Word Fail() {
      active_ = false;
      return 0;
    }

    void ReleaseAll() {
      for (const Entry& e : log_) {
        e.slot->word.store(e.old_value, std::memory_order_release);
      }
      log_.clear();
    }

    void OnAbort() {
      desc_->stats.aborts.fetch_add(1, std::memory_order_relaxed);
      desc_->backoff.OnAbort();
    }

    TxDesc* desc_ = nullptr;
    std::vector<Entry> log_;
    bool active_ = false;
    bool user_abort_ = false;
    bool wrote_ = false;
  };

  static TxStats& StatsForCurrentThread() { return DescOf<ValDomainTag>().stats; }
};

// Family with eager full transactions over the val layout; short/single ops are the
// ordinary val-short ones (same lock protocol).
struct ValEager {
  using Validation = NonReuseValidation;
  using Slot = ValSlot;
  using Full = ValEagerTm<NonReuseValidation>;
  using Short = ValShortTm<NonReuseValidation>;
  using FullTx = Full::Tx;
  using ShortTx = Short::ShortTx;

  static Word SingleRead(Slot* s) { return Short::SingleRead(s); }
  static void SingleWrite(Slot* s, Word v) { Short::SingleWrite(s, v); }
  static Word SingleCas(Slot* s, Word expected, Word desired) {
    return Short::SingleCas(s, expected, desired);
  }
  static void RawWrite(Slot* s, Word v) {
    assert((v & kLockBit) == 0);
    s->word.store(v, std::memory_order_relaxed);
  }
  static Word RawRead(Slot* s) { return s->word.load(std::memory_order_relaxed); }
};

}  // namespace spectm

#endif  // SPECTM_TM_VAL_EAGER_H_
