// Named TM domains ("families") binding a meta-data layout, a clock policy, and the
// engines that share them. A family is what data-structure templates are instantiated
// over; the structure decides which API it uses:
//
//   TmHashSet<OrecG>    -> "orec-full-g"   (whole-operation transactions, §2.1)
//   SpecHashSet<OrecG>  -> "orec-short-g"  (decomposed short transactions, §2.2)
//   SpecHashSet<TvarG>  -> "tvar-short-g"  (short + co-located meta-data, §2.3)
//   SpecHashSet<Val>    -> "val-short"     (short + 1-bit meta-data, §2.4)
//   ...
//
// Short and full transactions within one family interoperate: they agree on the orec
// (or lock-bit) protocol and on version numbering, which is what lets a data
// structure run its common cases as short transactions and fall back to full
// transactions elsewhere (§2.2, §3).
#ifndef SPECTM_TM_VARIANTS_H_
#define SPECTM_TM_VARIANTS_H_

#include <cassert>

#include "src/common/tagged.h"
#include "src/tm/clock.h"
#include "src/tm/full_tm.h"
#include "src/tm/layout.h"
#include "src/tm/short_tm.h"
#include "src/tm/val_full.h"
#include "src/tm/val_short.h"
#include "src/tm/val_word.h"
#include "src/tm/valstrategy.h"

namespace spectm {

namespace internal {

template <typename Tag, template <typename> class LayoutTmpl,
          template <typename> class ClockTmpl, ValMode kMode = ValMode::kPassive>
struct OrecBasedFamily {
  using DomainTag = Tag;
  using Layout = LayoutTmpl<Tag>;
  using Clock = ClockTmpl<Tag>;
  using Full = FullTm<Layout, Clock, Tag, kMode>;
  using Short = ShortTm<Layout, Clock, Tag, kMode>;
  using Slot = typename Layout::Slot;
  using FullTx = typename Full::Tx;
  using ShortTx = typename Short::ShortTx;
  static constexpr ValMode kValMode = kMode;

  static Word SingleRead(Slot* s) { return Short::SingleRead(s); }
  static void SingleWrite(Slot* s, Word v) { Short::SingleWrite(s, v); }
  static Word SingleCas(Slot* s, Word expected, Word desired) {
    return Short::SingleCas(s, expected, desired);
  }

  // Non-transactional accessors for thread-private data (e.g. initializing a node's
  // links before it is published into a shared structure).
  static void RawWrite(Slot* s, Word v) {
    Layout::Data(*s).store(v, std::memory_order_relaxed);
  }
  static Word RawRead(Slot* s) {
    return Layout::Data(*s).load(std::memory_order_relaxed);
  }
};

template <typename ValidationT, ValMode kMode = ValMode::kCounterSkip>
struct ValFamilyT {
  // All val families share one descriptor/metadata domain (they interoperate on
  // the same words), so they also share one SerialGate/CmProbe. Named here so
  // generic code can say CmProbe<typename Family::DomainTag> for either kind.
  using DomainTag = ValDomainTag;
  using Validation = ValidationT;
  using Full = ValFullTm<ValidationT, kMode>;
  using Short = ValShortTm<ValidationT, kMode>;
  using Slot = ValSlot;
  using FullTx = typename Full::Tx;
  using ShortTx = typename Short::ShortTx;
  static constexpr ValMode kValMode = kMode;

  static Word SingleRead(Slot* s) { return Short::SingleRead(s); }
  static void SingleWrite(Slot* s, Word v) { Short::SingleWrite(s, v); }
  static Word SingleCas(Slot* s, Word expected, Word desired) {
    return Short::SingleCas(s, expected, desired);
  }

  static void RawWrite(Slot* s, Word v) {
    assert((v & kLockBit) == 0 && "val layout reserves bit 0 (use EncodeInt)");
    s->word.store(v, std::memory_order_relaxed);
  }
  static Word RawRead(Slot* s) { return s->word.load(std::memory_order_relaxed); }
};

}  // namespace internal

struct OrecGTag {};
struct OrecLTag {};
struct TvarGTag {};
struct TvarLTag {};
struct OrecGNaiveTag {};
struct TvarGNaiveTag {};

// Shared orec table + global version clock (Figure 3(a)). The global clock is the
// GV4 pass-on-failure policy with a thread-local sample cache (clock.h).
using OrecG = internal::OrecBasedFamily<OrecGTag, OrecLayout, GlobalClockPolicy>;
// Shared orec table + per-orec version numbers.
using OrecL = internal::OrecBasedFamily<OrecLTag, OrecLayout, LocalClockPolicy>;
// Co-located TVar meta-data + global clock (Figure 3(b)).
using TvarG = internal::OrecBasedFamily<TvarGTag, TvarLayout, GlobalClockPolicy>;
// Co-located TVar meta-data + per-orec versions.
using TvarL = internal::OrecBasedFamily<TvarLTag, TvarLayout, LocalClockPolicy>;

// Ablation baselines: the TL2/GV1-style fetch_add clock (every writer commit bumps
// one shared cache line). Distinct domain tags keep their clocks and orec tables
// fully isolated from the GV4 families; bench/abl_clock_scale sweeps them against
// the defaults.
using OrecGNaive = internal::OrecBasedFamily<OrecGNaiveTag, OrecLayout, GlobalClockNaive>;
using TvarGNaive = internal::OrecBasedFamily<TvarGNaiveTag, TvarLayout, GlobalClockNaive>;

// Orec-table indexing ablations (orec.h OrecStriping): identical engines and
// clocks, but the shared table maps adjacent addresses to guaranteed-distinct
// cache lines instead of hash-scattering them. Distinct tags keep the striped
// tables fully isolated; swept against the hashed defaults in
// bench/abl_readset_layout.
struct OrecGStripedTag {};
struct OrecLStripedTag {};
using OrecGStriped =
    internal::OrecBasedFamily<OrecGStripedTag, OrecLayoutStriped, GlobalClockPolicy>;
using OrecLStriped =
    internal::OrecBasedFamily<OrecLStripedTag, OrecLayoutStriped, LocalClockPolicy>;

// Clock-policy ablations beyond GV4 (clock.h): GV5 draws commit stamps with a plain
// load (no RMW on the commit path — ClockProbe's rmw_draws stays zero) at the price
// of extra false aborts; GV6 flips between GV4 and GV5 per draw from the
// descriptor's abort-rate EWMA, with hysteresis (separate enter/exit thresholds).
struct OrecGv5Tag {};
struct OrecGv6Tag {};
using OrecGv5 = internal::OrecBasedFamily<OrecGv5Tag, OrecLayout, GlobalClockGv5>;
using OrecGv6 = internal::OrecBasedFamily<OrecGv6Tag, OrecLayout, GlobalClockGv6>;

// Adaptive-validation ablations over the local-clock layout — the family whose
// full-transaction reads pay the O(read-set) per-read revalidation the engine
// exists to cut. OrecL itself (kPassive: no writer summary at all) is the
// always-incremental baseline; the fixed strategies measure each mechanism in
// isolation; the adaptive family switches between them per attempt from the
// abort-rate EWMA. Swept in bench/abl_adaptive_val.
struct OrecLCounterTag {};
struct OrecLBloomTag {};
struct OrecLAdaptTag {};
using OrecLCounterSkip =
    internal::OrecBasedFamily<OrecLCounterTag, OrecLayout, LocalClockPolicy,
                              ValMode::kCounterSkip>;
using OrecLBloom = internal::OrecBasedFamily<OrecLBloomTag, OrecLayout,
                                             LocalClockPolicy, ValMode::kBloom>;
using OrecLAdaptive = internal::OrecBasedFamily<OrecLAdaptTag, OrecLayout,
                                                LocalClockPolicy, ValMode::kAdaptive>;

// Partitioned NOrec (valstrategy.h kStripe): the precise commit counter sharded
// into per-address-region stripe counters — writers bump only the stripes their
// write set touches, readers skip walks when every READ-occupied stripe is
// stable, and the bloom ring is the fallback for same-stripe traffic. On the
// hash-scattered shared orec table the stripe of an orec is effectively random
// (wide read sets occupy every stripe), so OrecLPart mainly measures the
// partition's overhead there; the val-layout ValPart below is where region
// locality pays (see the counter-stripe note in valstrategy.h).
struct OrecLPartTag {};
using OrecLPart = internal::OrecBasedFamily<OrecLPartTag, OrecLayout,
                                            LocalClockPolicy, ValMode::kPartitioned>;

// 1-bit meta-data with value-based validation (Figure 3(c)); version-free by default
// (relies on the paper's three special cases, §2.4), with counter-backed general
// modes for code outside those cases.
using Val = internal::ValFamilyT<NonReuseValidation>;
using ValGlobalCounter = internal::ValFamilyT<GlobalCounterValidation>;
using ValPerThreadCounter = internal::ValFamilyT<PerThreadCounterValidation>;

// Validation-strategy ablations for the val layout, ALL over the bloom-publishing
// counter policy (val_word.h) so every row of bench/abl_adaptive_val pays the
// identical writer protocol (bump + ring publish) and the cells differ only in
// reader strategy: fixed incremental (walk every read — the pure
// summary-maintenance-overhead baseline), fixed counter-skip, fixed bloom, and
// the EWMA-adaptive engine. ValGlobalCounter above stays on the classic ring-less
// Dalessandro counter for the original abl_val_validation comparison.
using ValIncremental =
    internal::ValFamilyT<GlobalCounterBloomValidation, ValMode::kIncremental>;
using ValCounterSkip =
    internal::ValFamilyT<GlobalCounterBloomValidation, ValMode::kCounterSkip>;
using ValBloom = internal::ValFamilyT<GlobalCounterBloomValidation, ValMode::kBloom>;
using ValAdaptive =
    internal::ValFamilyT<GlobalCounterBloomValidation, ValMode::kAdaptive>;
// Partitioned NOrec over the val layout: metadata IS the data word (§2.4), so the
// address-region counter stripes inherit the structure's locality — a btree
// leaf-chain scan occupies few stripes however many ENTRIES it logs, which is
// exactly where the fixed-width ring bloom saturates (abl_readset_layout's
// 256-entry intersect-failure row, the ROADMAP item this family closes).
using ValPart =
    internal::ValFamilyT<GlobalCounterBloomValidation, ValMode::kPartitioned>;
// MVCC snapshot reads (mvcc.h): the one family whose read-only transactions
// validate NOTHING — each read is a single traversal of the slot's bounded
// version chain at a stamp pinned at start, so RO work can neither walk nor
// abort however hot concurrent writers run. Writers keep the ValPart-style
// stripe protocol and additionally thread their displaced values onto the
// chains at commit. SnapshotValidation is GlobalCounterBloomValidation plus
// the kMvcc marker; the commit counter doubles as the version clock.
using ValSnap = internal::ValFamilyT<SnapshotValidation, ValMode::kSnapshot>;

// Service-facing aliases (src/svc): the four engine configurations the KV
// service scenario instantiates over, named by the role they play there rather
// than by layout internals. SvcOrec is the orec baseline (local clock, passive
// revalidation — every batch read walks, so wide BatchGets exercise the SIMD
// batch kernel); SvcOrecPart adds the partitioned counter on the
// hash-scattered table (overhead row — stripes are placement-blind there);
// SvcVal is the partitioned-counter val engine where KvStore's stripe-homed
// shard arenas make region-local batches genuinely stripe-resident; and
// SvcSnapshot routes read-only batches through pinned MVCC snapshots
// (never validates, never aborts).
using SvcOrec = OrecL;
using SvcOrecPart = OrecLPart;
using SvcVal = ValPart;
using SvcSnapshot = ValSnap;

}  // namespace spectm

#endif  // SPECTM_TM_VARIANTS_H_
