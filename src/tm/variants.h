// Named TM domains ("families") binding a meta-data layout, a clock policy, and the
// engines that share them. A family is what data-structure templates are instantiated
// over; the structure decides which API it uses:
//
//   TmHashSet<OrecG>    -> "orec-full-g"   (whole-operation transactions, §2.1)
//   SpecHashSet<OrecG>  -> "orec-short-g"  (decomposed short transactions, §2.2)
//   SpecHashSet<TvarG>  -> "tvar-short-g"  (short + co-located meta-data, §2.3)
//   SpecHashSet<Val>    -> "val-short"     (short + 1-bit meta-data, §2.4)
//   ...
//
// Short and full transactions within one family interoperate: they agree on the orec
// (or lock-bit) protocol and on version numbering, which is what lets a data
// structure run its common cases as short transactions and fall back to full
// transactions elsewhere (§2.2, §3).
#ifndef SPECTM_TM_VARIANTS_H_
#define SPECTM_TM_VARIANTS_H_

#include <cassert>

#include "src/common/tagged.h"
#include "src/tm/clock.h"
#include "src/tm/full_tm.h"
#include "src/tm/layout.h"
#include "src/tm/short_tm.h"
#include "src/tm/val_full.h"
#include "src/tm/val_short.h"
#include "src/tm/val_word.h"

namespace spectm {

namespace internal {

template <typename Tag, template <typename> class LayoutTmpl,
          template <typename> class ClockTmpl>
struct OrecBasedFamily {
  using DomainTag = Tag;
  using Layout = LayoutTmpl<Tag>;
  using Clock = ClockTmpl<Tag>;
  using Full = FullTm<Layout, Clock, Tag>;
  using Short = ShortTm<Layout, Clock, Tag>;
  using Slot = typename Layout::Slot;
  using FullTx = typename Full::Tx;
  using ShortTx = typename Short::ShortTx;

  static Word SingleRead(Slot* s) { return Short::SingleRead(s); }
  static void SingleWrite(Slot* s, Word v) { Short::SingleWrite(s, v); }
  static Word SingleCas(Slot* s, Word expected, Word desired) {
    return Short::SingleCas(s, expected, desired);
  }

  // Non-transactional accessors for thread-private data (e.g. initializing a node's
  // links before it is published into a shared structure).
  static void RawWrite(Slot* s, Word v) {
    Layout::Data(*s).store(v, std::memory_order_relaxed);
  }
  static Word RawRead(Slot* s) {
    return Layout::Data(*s).load(std::memory_order_relaxed);
  }
};

template <typename ValidationT>
struct ValFamilyT {
  using Validation = ValidationT;
  using Full = ValFullTm<ValidationT>;
  using Short = ValShortTm<ValidationT>;
  using Slot = ValSlot;
  using FullTx = typename Full::Tx;
  using ShortTx = typename Short::ShortTx;

  static Word SingleRead(Slot* s) { return Short::SingleRead(s); }
  static void SingleWrite(Slot* s, Word v) { Short::SingleWrite(s, v); }
  static Word SingleCas(Slot* s, Word expected, Word desired) {
    return Short::SingleCas(s, expected, desired);
  }

  static void RawWrite(Slot* s, Word v) {
    assert((v & kLockBit) == 0 && "val layout reserves bit 0 (use EncodeInt)");
    s->word.store(v, std::memory_order_relaxed);
  }
  static Word RawRead(Slot* s) { return s->word.load(std::memory_order_relaxed); }
};

}  // namespace internal

struct OrecGTag {};
struct OrecLTag {};
struct TvarGTag {};
struct TvarLTag {};
struct OrecGNaiveTag {};
struct TvarGNaiveTag {};

// Shared orec table + global version clock (Figure 3(a)). The global clock is the
// GV4 pass-on-failure policy with a thread-local sample cache (clock.h).
using OrecG = internal::OrecBasedFamily<OrecGTag, OrecLayout, GlobalClockPolicy>;
// Shared orec table + per-orec version numbers.
using OrecL = internal::OrecBasedFamily<OrecLTag, OrecLayout, LocalClockPolicy>;
// Co-located TVar meta-data + global clock (Figure 3(b)).
using TvarG = internal::OrecBasedFamily<TvarGTag, TvarLayout, GlobalClockPolicy>;
// Co-located TVar meta-data + per-orec versions.
using TvarL = internal::OrecBasedFamily<TvarLTag, TvarLayout, LocalClockPolicy>;

// Ablation baselines: the TL2/GV1-style fetch_add clock (every writer commit bumps
// one shared cache line). Distinct domain tags keep their clocks and orec tables
// fully isolated from the GV4 families; bench/abl_clock_scale sweeps them against
// the defaults.
using OrecGNaive = internal::OrecBasedFamily<OrecGNaiveTag, OrecLayout, GlobalClockNaive>;
using TvarGNaive = internal::OrecBasedFamily<TvarGNaiveTag, TvarLayout, GlobalClockNaive>;

// 1-bit meta-data with value-based validation (Figure 3(c)); version-free by default
// (relies on the paper's three special cases, §2.4), with counter-backed general
// modes for code outside those cases.
using Val = internal::ValFamilyT<NonReuseValidation>;
using ValGlobalCounter = internal::ValFamilyT<GlobalCounterValidation>;
using ValPerThreadCounter = internal::ValFamilyT<PerThreadCounterValidation>;

}  // namespace spectm

#endif  // SPECTM_TM_VARIANTS_H_
