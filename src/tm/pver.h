// Pointer-embedded-version layout ("pver") — the paper's §6 proposal: "it might be
// beneficial to explore pointer-only STM designs which use additional spare bits in
// the pointers as orecs (typically, in 64 bit systems, the processor or OS does not
// support virtual address spaces that exploit the entire 64-bit space)".
//
// One 64-bit word per location:
//
//     unlocked:  [ version:15 | payload:48 | 0 ]
//     locked:    [ TxDesc*                 | 1 ]
//
// The payload occupies bits 1..48 — enough for any user-space pointer (48-bit
// virtual addresses with at least 2-byte alignment) or a 47-bit shifted integer; bit
// 1 of the payload remains the data structures' "deleted" mark. The 15 spare high
// bits hold a per-word version, incremented by every committed update.
//
// Compared with the `val` layout (Figure 3(c)):
//   + read-only validation is VERSION-based, so it needs neither the three §2.4
//     special cases nor commit counters — general-purpose code is safe by default;
//   + commit remains a single atomic store (version, payload, and lock released in
//     one write);
//   - the version is only 15 bits: raw word equality alone could be fooled if
//     exactly 2^15 = 32768 commits hit one word within a single read-validate window
//     while its payload also returns to the original value. That blind spot is
//     closed by EPOCH-STAMPED VALIDATION WINDOWS: writers advance a per-domain
//     commit epoch before every version-bumping release store, readers stamp their
//     window with the epoch at their first logged read, and every validation —
//     after confirming raw equality — rejects a window whose stamp has drifted by
//     a full version period. A version field cannot return to a logged value in
//     fewer commits than the period, and each of those commits advances the epoch,
//     so a recycled word is never accepted (tests/tm/pver_wrap_test.cc pins
//     detection one commit short of the wrap, at the exact wrap, and past it).
//
// The epoch stamp realizes the fix this header previously only sketched, but per
// WINDOW rather than per WORD: stealing a version bit for a per-word epoch would
// need a quiescence protocol around each flip (src/epoch/epoch.h tracks the needed
// "no transaction spans this boundary" property), and a reader that commits writes
// while holding its own window open — exactly what the wrap test does, legal under
// the API — would block the flip on one core forever. The window stamp needs no
// layout change and no blocking, and stays deterministic. Its cost is one shared
// counter increment per writing commit and a conservative validation failure for
// any window that spans a full version period of commits — precisely the windows
// the hazard concerns, and a retry re-stamps them.
//
// Families over this layout expose the same Slot/payload semantics as every other
// family — Raw/Single/Short/Full all speak payloads — so the data structures run on
// it unchanged.
#ifndef SPECTM_TM_PVER_H_
#define SPECTM_TM_PVER_H_

#include <atomic>
#include <cassert>
#include <initializer_list>

#include "src/common/cacheline.h"
#include "src/common/inline_vec.h"
#include "src/common/tagged.h"
#include "src/tm/config.h"
#include "src/tm/txdesc.h"
#include "src/tm/validate_batch.h"
#include "src/tm/valstrategy.h"

namespace spectm {

struct PverSlot {
  std::atomic<Word> word{0};
};

inline constexpr int kPverPayloadBits = 48;
inline constexpr Word kPverPayloadMask = ((Word{1} << kPverPayloadBits) - 1) << 1;
inline constexpr int kPverVersionShift = kPverPayloadBits + 1;  // bits 49..63

// 15 version bits -> a version can recur only after exactly 2^15 commits to the
// word, which is the horizon the epoch guard below enforces on read-validate
// windows (tests/tm/pver_wrap_test.cc). Anyone changing the split must re-derive
// kPverVersionPeriod and update that test.
static_assert(64 - kPverVersionShift == 15,
              "pver version field is 15 bits; pver_wrap_test pins the 2^15 period");
static_assert(1 + kPverPayloadBits + (64 - kPverVersionShift) == 64,
              "lock bit + payload + version must tile the word exactly");

constexpr bool PverIsLocked(Word w) { return (w & kLockBit) != 0; }
constexpr Word PverPayloadOf(Word w) { return w & kPverPayloadMask; }
constexpr Word PverVersionOf(Word w) { return w >> kPverVersionShift; }

constexpr Word MakePverWord(Word version, Word payload) {
  return ((version & ((Word{1} << (64 - kPverVersionShift)) - 1)) << kPverVersionShift) |
         (payload & kPverPayloadMask);
}

// The committed successor of an unlocked word: version + 1 (mod 2^15), new payload.
constexpr Word PverBump(Word old_word, Word new_payload) {
  return MakePverWord(PverVersionOf(old_word) + 1, new_payload);
}

inline TxDesc* PverOwnerOf(Word w) {
  return reinterpret_cast<TxDesc*>(static_cast<std::uintptr_t>(w & ~kLockBit));
}

inline Word MakePverLocked(TxDesc* owner) {
  return static_cast<Word>(reinterpret_cast<std::uintptr_t>(owner)) | kLockBit;
}

struct PverDomainTag {};

// --- Epoch-stamped validation windows (the wrap guard; see header comment) ------------
//
// One shared counter for the pver domain, advanced by every committing writer BEFORE
// its releasing store. Soundness of the guard: a version field can only return to a
// logged value after kPverVersionPeriod committed updates of that word (one commit
// bumps a given word at most once — accesses name distinct locations); each update
// advances the epoch at least once, sequenced before the release store that publishes
// the bumped word, and successive updates of one word are ordered through its
// lock/CAS chain. A validator's acquire load that observes a recycled word therefore
// also observes at least a full period of epoch advances, and its subsequent epoch
// load (sequenced after that acquire) reports a drift >= kPverVersionPeriod — so a
// validator that first confirms raw equality and then finds its stamp within one
// period has proven no wrap occurred inside its window.
inline constexpr Word kPverVersionPeriod = Word{1} << (64 - kPverVersionShift);

inline std::atomic<Word>& PverEpochCell() {
  static CacheAligned<std::atomic<Word>> epoch{};
  return *epoch;
}

inline Word PverEpochNow() { return PverEpochCell().load(std::memory_order_acquire); }

// Writers: advance before the version-bumping release store (or bump CAS). Calling it
// on an attempt that then fails its CAS over-ticks, which only makes readers more
// conservative.
inline void PverEpochAdvance() {
  PverEpochCell().fetch_add(1, std::memory_order_relaxed);
}

// Readers: true while a window stamped `stamp` provably cannot have seen a wrap.
inline bool PverEpochFresh(Word stamp) {
  return PverEpochNow() - stamp < kPverVersionPeriod;
}

class PverShortTm {
 public:
  using Slot = PverSlot;

  class ShortTx {
   public:
    ShortTx() : desc_(&DescOf<PverDomainTag>()) {}
    ~ShortTx() {
      if (!finished_) {
        Abort();
      }
    }
    ShortTx(const ShortTx&) = delete;
    ShortTx& operator=(const ShortTx&) = delete;

    // Encounter-time lock; returns the payload.
    Word ReadRw(Slot* s) {
      assert(!finished_);
      if (!valid_) {
        return 0;
      }
      assert(!rw_.Full() && "short transaction exceeds kMaxShortWrites locations");
      Word w = s->word.load(std::memory_order_relaxed);
      while (true) {
        if (PverIsLocked(w)) {
          assert(PverOwnerOf(w) != desc_ && "accesses must name distinct locations");
          valid_ = false;
          return 0;
        }
        if (s->word.compare_exchange_weak(w, MakePverLocked(desc_),
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
          rw_.PushBack(RwEntry{s, w});
          return PverPayloadOf(w);
        }
      }
    }

    // Invisible read validated by the embedded version.
    Word ReadRo(Slot* s) {
      assert(!finished_);
      if (!valid_) {
        return 0;
      }
      assert(!ro_.Full() && "short transaction exceeds kMaxShortReads locations");
      if (ro_.Empty()) {
        // Stamp BEFORE the word load: a stale (lower) stamp only widens the
        // drift the validator sees, which is the conservative direction.
        epoch_stamp_ = PverEpochNow();
      }
      const Word w = s->word.load(std::memory_order_acquire);
      if (PverIsLocked(w)) {
        assert(PverOwnerOf(w) != desc_ && "RO and RW sets must be disjoint");
        valid_ = false;
        return 0;
      }
      ro_.PushBack(RoEntry{s, w, /*upgraded=*/false});
      if (!ValidateRo()) {
        valid_ = false;
        return 0;
      }
      return PverPayloadOf(w);
    }

    bool Valid() const { return valid_; }

    // Version+payload equality; a locked word (bit 0) can never match. Equality
    // alone can be fooled by an exact version wrap, so the window's epoch stamp
    // is checked after the walk (the walk's acquire loads order the epoch load
    // after any recycled word's publishing store — see the guard's comment).
    bool ValidateRo() const {
      for (const RoEntry& e : ro_) {
        if (!e.upgraded && e.slot->word.load(std::memory_order_acquire) != e.word) {
          return false;
        }
      }
      return ro_.Empty() || PverEpochFresh(epoch_stamp_);
    }

    bool UpgradeRoToRw(int ro_index) {
      assert(!finished_);
      if (!valid_) {
        return false;
      }
      assert(ro_index >= 0 && static_cast<std::size_t>(ro_index) < ro_.Size());
      assert(!rw_.Full());
      RoEntry& e = ro_[static_cast<std::size_t>(ro_index)];
      Word expected = e.word;
      if (!e.slot->word.compare_exchange_strong(expected, MakePverLocked(desc_),
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
        valid_ = false;
        return false;
      }
      e.upgraded = true;
      rw_.PushBack(RwEntry{e.slot, e.word});
      return true;
    }

    // One release store per location: version bump + payload + unlock in one write.
    bool CommitRw(std::initializer_list<Word> payloads) {
      assert(valid_ && !finished_);
      assert(payloads.size() == rw_.Size());
      if (!rw_.Empty()) {
        PverEpochAdvance();  // before the releasing stores (wrap-guard contract)
      }
      const Word* v = payloads.begin();
      for (std::size_t i = 0; i < rw_.Size(); ++i) {
        assert((v[i] & ~kPverPayloadMask) == 0 && "payload exceeds 48-bit field");
        rw_[i].slot->word.store(PverBump(rw_[i].old_word, v[i]),
                                std::memory_order_release);
      }
      Finish(/*committed=*/true);
      return true;
    }

    bool CommitMixed(std::initializer_list<Word> payloads) {
      assert(valid_ && !finished_);
      assert(payloads.size() == rw_.Size());
      if (!ValidateRo()) {
        Abort();
        return false;
      }
      if (!rw_.Empty()) {
        PverEpochAdvance();  // before the releasing stores (wrap-guard contract)
      }
      const Word* v = payloads.begin();
      for (std::size_t i = 0; i < rw_.Size(); ++i) {
        assert((v[i] & ~kPverPayloadMask) == 0 && "payload exceeds 48-bit field");
        rw_[i].slot->word.store(PverBump(rw_[i].old_word, v[i]),
                                std::memory_order_release);
      }
      Finish(/*committed=*/true);
      return true;
    }

    void Abort() {
      for (const RwEntry& e : rw_) {
        e.slot->word.store(e.old_word, std::memory_order_release);  // version intact
      }
      const bool untouched = rw_.Empty() && ro_.Empty() && valid_;
      finished_ = true;
      valid_ = false;
      if (!untouched) {
        desc_->stats.aborts.fetch_add(1, std::memory_order_relaxed);
      }
    }

    void Reset() {
      if (!finished_) {
        Abort();
      }
      rw_.Clear();
      ro_.Clear();
      valid_ = true;
      finished_ = false;
    }

    std::size_t RwCount() const { return rw_.Size(); }
    std::size_t RoCount() const { return ro_.Size(); }

   private:
    struct RwEntry {
      Slot* slot;
      Word old_word;  // full word: version + payload
    };
    struct RoEntry {
      Slot* slot;
      Word word;
      bool upgraded;
    };

    void Finish(bool committed) {
      finished_ = true;
      valid_ = false;
      if (committed) {
        desc_->stats.commits.fetch_add(1, std::memory_order_relaxed);
        desc_->backoff.OnCommit();
      }
    }

    TxDesc* desc_;
    InlineVec<RwEntry, kMaxShortWrites> rw_;
    InlineVec<RoEntry, kMaxShortReads> ro_;
    Word epoch_stamp_ = 0;  // domain epoch at the first RO read (wrap guard)
    bool valid_ = true;
    bool finished_ = false;
  };

  static Word SingleRead(Slot* s) {
    while (true) {
      const Word w = s->word.load(std::memory_order_acquire);
      if (!PverIsLocked(w)) {
        return PverPayloadOf(w);
      }
      CpuRelax();
    }
  }

  static void SingleWrite(Slot* s, Word payload) {
    assert((payload & ~kPverPayloadMask) == 0 && "payload exceeds 48-bit field");
    Word w = s->word.load(std::memory_order_relaxed);
    while (true) {
      if (PverIsLocked(w)) {
        CpuRelax();
        w = s->word.load(std::memory_order_relaxed);
        continue;
      }
      PverEpochAdvance();  // before the bump CAS; a failed attempt over-ticks harmlessly
      if (s->word.compare_exchange_weak(w, PverBump(w, payload),
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        return;
      }
    }
  }

  // Payload-compare-and-swap in one hardware CAS (version rides along).
  static Word SingleCas(Slot* s, Word expected_payload, Word desired_payload) {
    assert((desired_payload & ~kPverPayloadMask) == 0);
    while (true) {
      Word w = s->word.load(std::memory_order_acquire);
      if (PverIsLocked(w)) {
        CpuRelax();
        continue;
      }
      if (PverPayloadOf(w) != expected_payload) {
        return PverPayloadOf(w);
      }
      PverEpochAdvance();  // before the bump CAS; a failed attempt over-ticks harmlessly
      if (s->word.compare_exchange_weak(w, PverBump(w, desired_payload),
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        return expected_payload;
      }
    }
  }

  static TxStats& StatsForCurrentThread() { return DescOf<PverDomainTag>().stats; }
};

// General-purpose transactions over pver words: word-based (version-validated) read
// log, hash write set, commit-time locking. Structurally val_full.h with versions in
// place of value-based validation — no commit counters needed.
class PverFullTm {
 public:
  using Slot = PverSlot;

  class Tx {
   public:
    Tx() = default;
    Tx(const Tx&) = delete;
    Tx& operator=(const Tx&) = delete;

    void Start() {
      desc_ = &DescOf<PverDomainTag>();
      desc_->val_read_log.Clear();
      desc_->wset.Clear();
      desc_->val_lock_log.clear();
      active_ = true;
      user_abort_ = false;
    }

    Word Read(Slot* s) {
      if (!active_) {
        return 0;
      }
      Word buffered;
      if (desc_->wset.Lookup(s, &buffered)) {  // bloom-filtered: miss is AND+TEST
        return buffered;  // wset stores payloads
      }
      if (desc_->val_read_log.Size() == 0) {
        epoch_stamp_ = PverEpochNow();  // before the word load (conservative direction)
      }
      int spins = 0;
      Word w;
      while (true) {
        w = s->word.load(std::memory_order_acquire);
        if (!PverIsLocked(w)) {
          break;
        }
        if (++spins > kReadLockSpin) {
          return Fail();
        }
        CpuRelax();
      }
      desc_->val_read_log.PushBack(&s->word, w);
      if (!ValidateReads()) {
        return Fail();
      }
      return PverPayloadOf(w);
    }

    void Write(Slot* s, Word payload) {
      if (!active_) {
        return;
      }
      assert((payload & ~kPverPayloadMask) == 0 && "payload exceeds 48-bit field");
      desc_->wset.Put(s, payload);
    }

    void AbortTx() { user_abort_ = true; }
    bool ok() const { return active_; }

    bool Commit() {
      if (!active_) {
        OnAbort();
        return false;
      }
      active_ = false;
      if (user_abort_) {
        desc_->stats.aborts.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (desc_->wset.Empty()) {
        OnCommit();
        return true;
      }
      for (const WriteSet::Entry& e : desc_->wset) {
        auto* word = &static_cast<Slot*>(e.addr)->word;
        Word w = word->load(std::memory_order_relaxed);
        while (true) {
          if (PverIsLocked(w)) {
            ReleaseLocks();
            OnAbort();
            return false;
          }
          if (word->compare_exchange_weak(w, MakePverLocked(desc_),
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
            desc_->val_lock_log.push_back(ValLockLogEntry{word, w});
            break;
          }
        }
      }
      if (!ValidateReads()) {
        ReleaseLocks();
        OnAbort();
        return false;
      }
      PverEpochAdvance();  // before the releasing stores (wrap-guard contract)
      for (const WriteSet::Entry& e : desc_->wset) {
        auto* word = &static_cast<Slot*>(e.addr)->word;
        // The displaced word (with its version) lives in the lock log.
        const Word old_word = FindDisplaced(word);
        word->store(PverBump(old_word, e.value), std::memory_order_release);
      }
      OnCommit();
      return true;
    }

   private:
    Word Fail() {
      active_ = false;
      return 0;
    }

    // Batched over the SoA lanes (validate_batch.h), like val_full's walk: the
    // pver word is version-stamped, so a raw 64-bit equality is the check — plus
    // the epoch-stamp wrap guard once equality holds (the walk's acquire loads
    // order the epoch load after any recycled word's publishing store).
    bool ValidateReads() const {
      typename ValProbe<PverDomainTag>::Counters& probe =
          ValProbe<PverDomainTag>::Get();
      if (!ValidateEqualSpan(
              desc_->val_read_log.Ptrs(), desc_->val_read_log.Words(),
              desc_->val_read_log.Size(), probe.simd_batches, probe.scalar_checks,
              [this](std::size_t i, Word observed) {
                return PverIsLocked(observed) && PverOwnerOf(observed) == desc_ &&
                       FindDisplaced(desc_->val_read_log.PtrAt(i)) ==
                           desc_->val_read_log.WordAt(i);
              })) {
        return false;
      }
      return desc_->val_read_log.Size() == 0 || PverEpochFresh(epoch_stamp_);
    }

    Word FindDisplaced(const std::atomic<Word>* word) const {
      for (const ValLockLogEntry& l : desc_->val_lock_log) {
        if (l.word == word) {
          return l.old_value;
        }
      }
      assert(false && "self-locked word missing from lock log");
      return ~Word{0};
    }

    void ReleaseLocks() {
      for (const ValLockLogEntry& l : desc_->val_lock_log) {
        l.word->store(l.old_value, std::memory_order_release);
      }
      desc_->val_lock_log.clear();
    }

    void OnCommit() {
      desc_->stats.commits.fetch_add(1, std::memory_order_relaxed);
      desc_->backoff.OnCommit();
    }
    void OnAbort() {
      desc_->stats.aborts.fetch_add(1, std::memory_order_relaxed);
      desc_->backoff.OnAbort();
    }

    TxDesc* desc_ = nullptr;
    Word epoch_stamp_ = 0;  // domain epoch at the first logged read (wrap guard)
    bool active_ = false;
    bool user_abort_ = false;
  };

  static TxStats& StatsForCurrentThread() { return DescOf<PverDomainTag>().stats; }
};

// The pver family: plugs into every structure template like the other families.
struct Pver {
  using Slot = PverSlot;
  using Full = PverFullTm;
  using Short = PverShortTm;
  using FullTx = PverFullTm::Tx;
  using ShortTx = PverShortTm::ShortTx;

  static Word SingleRead(Slot* s) { return PverShortTm::SingleRead(s); }
  static void SingleWrite(Slot* s, Word v) { PverShortTm::SingleWrite(s, v); }
  static Word SingleCas(Slot* s, Word expected, Word desired) {
    return PverShortTm::SingleCas(s, expected, desired);
  }

  static void RawWrite(Slot* s, Word payload) {
    assert((payload & ~kPverPayloadMask) == 0 && "payload exceeds 48-bit field");
    const Word w = s->word.load(std::memory_order_relaxed);
    s->word.store(MakePverWord(PverVersionOf(w), payload), std::memory_order_relaxed);
  }
  static Word RawRead(Slot* s) {
    return PverPayloadOf(s->word.load(std::memory_order_relaxed));
  }
};

}  // namespace spectm

#endif  // SPECTM_TM_PVER_H_
