// Shared vocabulary and tuning constants for the TM engines.
#ifndef SPECTM_TM_CONFIG_H_
#define SPECTM_TM_CONFIG_H_

#include <cstdint>

#include "src/common/tagged.h"

namespace spectm {

// Maximum number of locations a short transaction may access per set (§2.2: "four in
// our implementation, which can be increased in a straightforward manner").
inline constexpr int kMaxShortReads = 4;
inline constexpr int kMaxShortWrites = 4;

// log2 of the ownership-record table size (Figure 3(a)): 2^20 orecs * 8 B = 8 MB,
// typical for C/C++ STM systems.
inline constexpr int kOrecTableLog2 = 20;

// Bounded spin on a locked orec before a full-tx read declares a conflict: with
// commit-time locking, locks are only held for the duration of a commit, so a short
// wait often avoids an abort.
inline constexpr int kReadLockSpin = 64;

// Application-value encoding for layouts that reserve low-order bits: bit 0 is the
// `val` layout's lock bit (§2.4) and bit 1 is the data structures' "deleted" mark
// (§3), so integers stored in transactional words are shifted past both. On a 64-bit
// machine the remaining 62 bits accommodate typical integer values (§2.4), and
// aligned pointers need no encoding at all.
constexpr Word EncodeInt(std::uint64_t v) { return v << 2; }
constexpr std::uint64_t DecodeInt(Word w) { return w >> 2; }

}  // namespace spectm

#endif  // SPECTM_TM_CONFIG_H_
