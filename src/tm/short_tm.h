// SpecTM specialized short transactions over orec-based layouts (§2.2).
//
// The programmer contract (checked with assertions in debug builds, free in release,
// exactly as §2.2 "Code complexity" prescribes):
//   * at most kMaxShortReads RO and kMaxShortWrites RW locations per transaction;
//   * every access names a distinct memory location;
//   * the RO and RW sets are disjoint (upgrades move a location from RO to RW);
//   * all writes are deferred to commit, whose argument list supplies the new values
//     in RW-read order;
//   * no write-to-read dependencies (a location written is never subsequently read).
//
// What the restrictions buy (§2.2):
//   * no update log and no read-after-write checks — values arrive at commit;
//   * RW reads lock eagerly (encounter-time locking), so a read-write transaction
//     needs no commit-time validation at all: every location it read is pinned;
//   * all book-keeping lives in fixed-size arrays inside the stack-allocated
//     ShortTx record — no dynamic logs, no dynamic operation indices.
//
// Conflicts never block: any locked orec invalidates the transaction (deadlock is
// avoided conservatively, §2.4), the caller releases its locks via Abort() and
// restarts, mirroring the paper's `goto restart` idiom.
//
// Single-operation transactions (Tx_Single_* in Figure 2) are provided as statics;
// they are linearizable and synchronize with both short and full transactions of the
// same domain because all of them agree on the orec protocol.
#ifndef SPECTM_TM_SHORT_TM_H_
#define SPECTM_TM_SHORT_TM_H_

#include <atomic>
#include <cassert>
#include <initializer_list>

#include "src/common/cacheline.h"
#include "src/common/failpoint.h"
#include "src/common/inline_vec.h"
#include "src/common/tagged.h"
#include "src/tm/clock.h"
#include "src/tm/layout.h"
#include "src/tm/orec.h"
#include "src/tm/serial.h"
#include "src/tm/txdesc.h"
#include "src/tm/txguard.h"
#include "src/tm/valstrategy.h"

namespace spectm {

// kMode (valstrategy.h) opts the family into the adaptive validation engine: RW
// commits and single-op writers bump the domain's WriterSummary while holding their
// orec locks, and RO readers carry a persistent counter sample so an unchanged
// counter (or disjoint write blooms) skips the per-read RO-prefix revalidation.
// kPassive is the zero-overhead default: no summary, the seed's exact behavior.
template <typename LayoutT, typename ClockT, typename DomainTag,
          ValMode kMode = ValMode::kPassive>
class ShortTm {
 public:
  using Layout = LayoutT;
  using Clock = ClockT;
  using Slot = typename Layout::Slot;
  // Per-stripe counters are a domain-wide writer protocol: only the partitioned
  // mode pays for them (see WriterSummary's kPartitionedCounters note).
  using Summary = WriterSummary<DomainTag, kMode == ValMode::kPartitioned>;
  using Probe = ValProbe<DomainTag>;
  using Cm = SerialCm<DomainTag>;
  using Gate = SerialGate<DomainTag>;
  static constexpr ValMode kValMode = kMode;
  static constexpr bool kStrategic = kMode != ValMode::kPassive;

  // The TX_RECORD of Figure 2: stack-allocated, fixed-size, reusable after Abort().
  class ShortTx {
   public:
    ShortTx() : desc_(&DescOf<DomainTag>()) { StartAttempt(); }
    ~ShortTx() {
      // Defensive RAII: a record abandoned mid-transaction must not leak locks.
      if (!finished_) {
        Abort();
      }
    }
    ShortTx(const ShortTx&) = delete;
    ShortTx& operator=(const ShortTx&) = delete;

    // --- Read-write accesses (Tx_RW_R1, Tx_RW_R2, ...) -------------------------------
    //
    // Encounter-time locking: the orec is acquired at read time; the returned value
    // cannot change until this transaction commits or aborts. On conflict the
    // transaction is invalidated and 0 is returned; the caller must Abort() and
    // restart (checking Valid() first, as with ..._Is_Valid in the paper).
    Word ReadRw(Slot* s) {
      assert(!finished_);
      if (!valid_) {
        return 0;
      }
      // Exceeding the fixed-size location arrays is a contract violation (§2.2), but
      // it must not become memory corruption in release builds: invalidate the
      // transaction instead of pushing past the InlineVec bound. The caller's normal
      // Valid()/Abort()/restart path then surfaces the bug safely.
      if (rw_.Full()) {
        UnwindForOverflow();
        return 0;
      }
      // Encounter-time locking makes every RW transaction a committer from its
      // first lock onward: announce at the committer gate BEFORE that lock so a
      // serial-irrevocable transaction (src/tm/serial.h) can exclude us. Fail
      // fast while the token is held — the caller's normal restart loop retries.
      if (!EnterGateForFirstLock()) {
        return 0;
      }
      if (SPECTM_FAILPOINT(failpoint::Site::kLockAcquire)) {
        valid_ = false;
        return 0;
      }
      std::atomic<Word>& orec = Layout::OrecOf(*s);
      Word w = orec.load(std::memory_order_relaxed);
      while (true) {
        if (OrecIsLocked(w)) {
          if (OrecOwnerOf(w) == desc_) {
            // Two distinct slots collided on one shared-table orec; it is already
            // pinned by us, so just record the access without re-locking.
            rw_.PushBack(RwEntry{s, &orec, kAlreadyOwned});
            return Layout::Data(*s).load(std::memory_order_acquire);
          }
          valid_ = false;  // conservative: never wait while holding locks
          return 0;
        }
        if (orec.compare_exchange_weak(w, MakeOrecLocked(desc_),
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
          rw_.PushBack(RwEntry{s, &orec, w});
          return Layout::Data(*s).load(std::memory_order_acquire);
        }
      }
    }

    // --- Read-only accesses (Tx_RO_R1, Tx_RO_R2, ...) --------------------------------
    //
    // Invisible reads: record (orec, version) and revalidate the earlier entries so
    // the caller always observes a consistent prefix (bounded by kMaxShortReads, so
    // the incremental cost is a handful of cached loads).
    Word ReadRo(Slot* s) {
      assert(!finished_);
      if (!valid_) {
        return 0;
      }
      if (ro_.Full()) {  // overflow invalidates instead of corrupting (see ReadRw)
        UnwindForOverflow();
        return 0;
      }
      std::atomic<Word>& orec = Layout::OrecOf(*s);
      while (true) {
        const Word o1 = orec.load(std::memory_order_acquire);
        if (OrecIsLocked(o1)) {
          assert(OrecOwnerOf(o1) != desc_ && "RO and RW sets must be disjoint");
          valid_ = false;
          return 0;
        }
        const Word value = Layout::Data(*s).load(std::memory_order_acquire);
        SPECTM_FAILPOINT_PAUSE(failpoint::Site::kPostReadPreSandwich);
        const Word o2 = orec.load(std::memory_order_acquire);
        if (o1 != o2) {
          continue;
        }
        if (SPECTM_FAILPOINT(failpoint::Site::kPostReadPreSandwich)) {
          valid_ = false;
          return 0;
        }
        // Fast path: the entry just sandwiched is consistent at its own read
        // instant; only EARLIER entries need re-checking (orec versions are
        // monotone, so matching then-and-now means unchanged in between — including
        // at this read's instant, the common consistency point). The first RO read
        // validates nothing.
        //
        // Strategy fast paths (valstrategy.h): the persistent sample_ names a
        // domain-counter value at which the whole RO log was valid; a stable
        // counter — or all-disjoint intervening write blooms — skips the walk.
        // The tracked walk runs AFTER the push so the entry just read is covered
        // by the re-anchored sample too (valstrategy.h tail rule); the passive
        // walk keeps the seed's prefix-only shape, whose result is not reused.
        if constexpr (kStrategic) {
          state_.NoteRead(&orec);
        }
        bool prefix_ok = true;
        if constexpr (kStrategic) {
          const bool first_ro = ro_.Empty();
          ro_.PushBack(RoEntry{s, &orec, OrecVersionOf(o1)});
          if (!first_ro &&
              state_.TrySkipRead(&desc_->stats) ==
                  StratState::ReadSkip::kMustWalk) {
            prefix_ok = ValidateRoPrefixTracked(ro_.Size());
          }
        } else {
          if (!ro_.Empty()) {
            prefix_ok = ValidateRoPrefix(ro_.Size());
          }
          ro_.PushBack(RoEntry{s, &orec, OrecVersionOf(o1)});
        }
        if (!prefix_ok) {
          valid_ = false;
          return 0;
        }
        return value;
      }
    }

    // Current validity (Tx_RW_k_Is_Valid). For pure-RW transactions this is the only
    // check needed: locks pin every location read.
    bool Valid() const { return valid_; }

    // Revalidates the RO set (Tx_RO_k_Is_Valid). For a read-only transaction a final
    // successful call serves in place of commit (§2.2: "Successful validation serves
    // in the place of commit").
    bool ValidateRo() const {
      if constexpr (kStrategic) {
        // No EWMA feedback here (nullptr): the final validate is not a per-read
        // skip opportunity the adaptive engine should learn from.
        if (state_.TrySkipRead(nullptr) == StratState::ReadSkip::kSkipped) {
          return true;
        }
        return ValidateRoPrefixTracked(ro_.Size());
      }
      return ValidateRoPrefix(ro_.Size());
    }

    // Tx_Upgrade_RO_x_To_RW_y: promote the ro_index-th read into the write set by
    // locking its orec at exactly the version observed. Returns false (transaction
    // invalidated) if the location changed or is locked.
    bool UpgradeRoToRw(int ro_index) {
      assert(!finished_);
      if (!valid_) {
        return false;
      }
      assert(ro_index >= 0 && static_cast<std::size_t>(ro_index) < ro_.Size());
      if (rw_.Full()) {  // overflow invalidates instead of corrupting (see ReadRw)
        UnwindForOverflow();
        return false;
      }
      if (!EnterGateForFirstLock()) {  // upgrades lock too (see ReadRw)
        return false;
      }
      if (SPECTM_FAILPOINT(failpoint::Site::kLockAcquire)) {
        valid_ = false;
        return false;
      }
      RoEntry& e = ro_[static_cast<std::size_t>(ro_index)];
      Word expected = MakeOrecVersion(e.version);
      if (!e.orec->compare_exchange_strong(expected, MakeOrecLocked(desc_),
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
        if (OrecIsLocked(expected) && OrecOwnerOf(expected) == desc_) {
          // Shared-table collision: another of our RW entries owns this orec.
          rw_.PushBack(RwEntry{e.slot, e.orec, kAlreadyOwned});
          return true;
        }
        valid_ = false;
        return false;
      }
      rw_.PushBack(RwEntry{e.slot, e.orec, MakeOrecVersion(e.version)});
      return true;
    }

    // Tx_RW_k_Commit: stores values[i] to the i-th RW location (RW-read order) and
    // releases the locks. Pure-RW transactions need no validation (§2.2 point iii), so
    // this always succeeds; the bool return exists only so fine-grained full-tx
    // adapters can share the interface.
    bool CommitRw(std::initializer_list<Word> values) {
      assert(valid_ && !finished_);
      assert(values.size() == rw_.Size() && "commit arity must match RW access count");
      PublishWriterSummary();  // before the data stores, while every lock is held
      const Word* v = values.begin();
      for (std::size_t i = 0; i < rw_.Size(); ++i) {
        Layout::Data(*rw_[i].slot).store(v[i], std::memory_order_release);
      }
      ReleaseLocksCommitted();
      Finish(/*committed=*/true);
      return true;
    }

    // Tx_RO_x_RW_y_Commit: validates the remaining RO entries, then commits the RW
    // set. Returns false — with all locks released and values untouched — if
    // validation fails; the caller restarts.
    //
    // Writer-summary order: bump-and-publish BEFORE the final RO validation
    // (bump-before-validate, valstrategy.h): of two crossing committers the one
    // that bumps second fails its own-idx skip test and walks into the other's
    // encounter-time locks. A pure-RO mixed commit (empty RW set) holds no locks,
    // publishes nothing, and validates the ordinary way.
    bool CommitMixed(std::initializer_list<Word> values) {
      assert(valid_ && !finished_);
      assert(values.size() == rw_.Size());
      bool ro_ok;
      if constexpr (kStrategic) {
        if (rw_.Empty()) {
          ro_ok = ValidateRo();
        } else {
          unsigned write_stripes = 0;
          const Word own_idx = PublishWriterSummary(&write_stripes);
          if (state_.TrySkipCommit(own_idx, write_stripes)) {
            ro_ok = true;
          } else {
            // Plain conservative walk: a foreign lock fails it, which the
            // crossing-committer argument requires at commit time.
            ++Probe::Get().validation_walks;
            ro_ok = ValidateRoPrefix(ro_.Size());
          }
        }
      } else {
        ro_ok = ValidateRo();
      }
      if (!ro_ok) {
        Abort();
        return false;
      }
      const Word* v = values.begin();
      for (std::size_t i = 0; i < rw_.Size(); ++i) {
        Layout::Data(*rw_[i].slot).store(v[i], std::memory_order_release);
      }
      ReleaseLocksCommitted();
      Finish(/*committed=*/true);
      return true;
    }

    // Tx_RW_k_Abort: releases locks restoring the pre-transaction versions. Also the
    // required cleanup path after any access invalidated the transaction.
    void Abort() {
      // After an overflow unwind the encounter locks were already restored —
      // re-storing the saved words here would clobber whatever other
      // transactions committed into those slots since.
      if (!unwound_) {
        ReleaseLocksAborted();
      }
      // Locks are restored above BEFORE the gate exit: a draining serial
      // transaction must never observe flags at zero while our locks stand.
      ExitGateIfHeld();
      ReleaseSerialIfHeld();
      const bool untouched = rw_.Empty() && ro_.Empty() && valid_;
      // A still-valid, read-only record being dropped is the paper's normal RO
      // completion/cleanup pattern ("successful validation serves in the place of
      // commit"), not contention — keep it out of the abort-rate EWMA that
      // steers the adaptive engine, while the raw abort statistic keeps its
      // historical meaning.
      const bool contention = !(rw_.Empty() && valid_);
      finished_ = true;
      valid_ = false;
      if (!untouched) {
        desc_->stats.aborts.fetch_add(1, std::memory_order_relaxed);
        if (contention) {
          UpdateAbortEwma(desc_->stats, /*aborted=*/true);
          // Phase-1 backoff + streak watchdog. The seed applied backoff only in
          // the full engines; short transactions retried hot, which is exactly
          // the lock-step livelock shape the two-phase manager exists to break.
          Cm::NoteAbortBackoff(*desc_);
        }
      }
    }

    // Re-arms the record for the caller's `goto restart` loop, releasing any locks
    // still held.
    void Reset() {
      if (!finished_) {
        Abort();
      }
      rw_.Clear();
      ro_.Clear();
      valid_ = true;
      finished_ = false;
      unwound_ = false;
      StartAttempt();
    }

    std::size_t RwCount() const { return rw_.Size(); }
    std::size_t RoCount() const { return ro_.Size(); }

   private:
    struct RwEntry {
      Slot* slot;
      std::atomic<Word>* orec;
      Word old_word;  // pre-lock orec body; kAlreadyOwned for hash-collision repeats
    };
    struct RoEntry {
      Slot* slot;
      std::atomic<Word>* orec;
      Word version;
    };

    // Odd (locked-looking) and never a valid owner pointer: cannot collide with a
    // genuine displaced orec word, which is always an even version.
    static constexpr Word kAlreadyOwned = ~Word{0};

    // Re-arms the strategy state for a fresh attempt (StrategyState: choose +
    // probe tick + anchor drawn BEFORE any read — the skip soundness argument
    // needs the sample no later than the first read). Also the escalation
    // checkpoint: past the (hysteretic) abort-streak threshold this attempt
    // takes the serialization token up front and cannot conflict thereafter.
    void StartAttempt() {
      // Health watchdog attempt-start feed (no-op unless SPECTM_HEALTH):
      // observes foreign serial holds before the escalation decision below,
      // and refreshes the ring-saturation gauge from this thread's intersect
      // failures so the window close in OnOutcome sees the current level.
      Cm::NoteAttemptStart(*desc_);
      if constexpr (health::kEnabled && kStrategic) {
        health::SetRingGauge<DomainTag>(Summary::Fails().intersect);
      }
      if (!serial_ && Cm::ShouldEscalate(*desc_)) {
        Gate::AcquireSerial(desc_);
        serial_ = true;
        Cm::NoteEscalated(*desc_);
      }
      if constexpr (kStrategic) {
        state_.StartAttempt(kMode, /*has_bloom_ring=*/true, desc_->stats);
      }
    }

    // Restores every displaced orec word recorded in the RW set. Shared by
    // Abort() and the overflow unwind; hash-collision repeats (kAlreadyOwned)
    // are skipped — only the entry that actually displaced a word restores it.
    void ReleaseLocksAborted() {
      for (const RwEntry& e : rw_) {
        if (e.old_word != kAlreadyOwned) {
          e.orec->store(e.old_word, std::memory_order_release);
        }
      }
    }

    // Contract-overflow unwind (§2.2 violations surfaced safely): releases the
    // encounter-time locks, retracts the gate flag, and releases the serial
    // token — the same mandatory order as Abort() — the moment the overflow is
    // detected, instead of holding every lock until the caller notices
    // Valid() == false and aborts. The recorded access arrays are kept intact
    // (RwCount()/RoCount() still describe the overflowing transaction for
    // diagnosis); Abort() skips its restore loop afterwards, because the
    // released slots may since have been re-locked and committed by others.
    // Kept out of line: this is a cold contract-violation path, and inlining
    // it into the access fast paths only bloats them (and trips GCC's
    // flow-insensitive maybe-uninitialized analysis on the InlineVec storage).
#if defined(__GNUC__)
    __attribute__((cold, noinline))
#endif
    void UnwindForOverflow() {
      ReleaseLocksAborted();
      ExitGateIfHeld();
      ReleaseSerialIfHeld();
      unwound_ = true;
      valid_ = false;
    }

    // Committer-gate entry, once per attempt, before the FIRST lock CAS.
    // Serial attempts own the token and skip the gate.
    bool EnterGateForFirstLock() {
      if (serial_ || gated_) {
        return true;
      }
      if (!Gate::TryEnterCommitter(desc_)) {
        valid_ = false;  // token held: fail fast, restart via Abort/Reset
        return false;
      }
      gated_ = true;
      return true;
    }

    void ExitGateIfHeld() {
      if (gated_) {
        Gate::ExitCommitter(desc_);
        gated_ = false;
      }
    }

    void ReleaseSerialIfHeld() {
      if (serial_) {
        Gate::ReleaseSerial(desc_);
        serial_ = false;
      }
    }

    // Writer-side summary: bump the domain counter — only the stripes this write
    // set touches — and publish the write-set bloom while all orec locks are
    // held, before any data store and before the final commit validation
    // (valstrategy.h ordering). Returns the writer's own commit index (0 when
    // nothing was published) and, via `out_stripes`, the stripe mask it bumped
    // (for the partitioned commit-skip test). A pure-RO commit (empty RW set)
    // releases nothing and must not move the counter.
    Word PublishWriterSummary(unsigned* out_stripes = nullptr) {
      if constexpr (kStrategic) {
        if (rw_.Empty()) {
          return 0;
        }
        Bloom128 bloom;
        unsigned stripes = 0;
        for (const RwEntry& e : rw_) {
          bloom |= AddrBloom128(e.orec);
          stripes |= 1u << CounterStripeOf(e.orec);
        }
        if (out_stripes != nullptr) {
          *out_stripes = stripes;
        }
        ++Probe::Get().summary_publishes;
        if constexpr (kMode == ValMode::kPartitioned) {
          Probe::Get().stripe_bumps +=
              static_cast<std::uint64_t>(CountStripeBits(stripes));
        }
        return Summary::PublishAndBump(bloom, stripes);
      }
      return 0;
    }

    // Tracked walk: one pass (orec versions are monotone, so a single matching
    // pass is a valid snapshot) plus the best-effort anchor confirm
    // (StrategyState): the pre-walk sample becomes the new skip anchor only if
    // the counter stayed stable across the walk; otherwise the walk result
    // stands but the anchor is invalidated.
    bool ValidateRoPrefixTracked(std::size_t count) const {
      ++Probe::Get().validation_walks;
      const typename StratState::Snapshot pre_walk = state_.DrawSnapshot();
      if (!ValidateRoPrefix(count)) {
        return false;
      }
      state_.ConfirmAnchorAfterWalk(pre_walk);
      return true;
    }

    // Validates the first `count` RO entries (the per-read fast path excludes the
    // freshly sandwiched tail entry).
    bool ValidateRoPrefix(std::size_t count) const {
      if (SPECTM_FAILPOINT(failpoint::Site::kPreValidate)) {
        return false;
      }
      for (std::size_t i = 0; i < count; ++i) {
        const RoEntry& e = ro_[i];
        const Word w = e.orec->load(std::memory_order_acquire);
        if (w == MakeOrecVersion(e.version)) {
          continue;
        }
        if (OrecIsLocked(w) && OrecOwnerOf(w) == desc_) {
          continue;  // upgraded by us; the lock pins it
        }
        return false;
      }
      return true;
    }

    void ReleaseLocksCommitted() {
      if (rw_.Empty()) {
        return;  // nothing locked: no orecs to release, no timestamp to draw
      }
      Word wv = 0;
      if constexpr (Clock::kHasGlobalClock) {
        wv = Clock::NextCommitVersion();
      }
      for (const RwEntry& e : rw_) {
        if (e.old_word != kAlreadyOwned) {
          e.orec->store(MakeOrecVersion(Clock::ReleaseVersion(wv, e.old_word)),
                        std::memory_order_release);
        }
      }
    }

    void Finish(bool committed) {
      // Locks were released by the caller; the gate can drop now (and must
      // not before — see Abort()).
      ExitGateIfHeld();
      finished_ = true;
      valid_ = false;
      if (committed) {
        desc_->stats.commits.fetch_add(1, std::memory_order_relaxed);
        UpdateAbortEwma(desc_->stats, /*aborted=*/false);
        if (serial_) {
          Gate::ReleaseSerial(desc_);
          serial_ = false;
          Cm::OnSerialCommit(*desc_);
        } else {
          Cm::OnOptimisticCommit(*desc_);
        }
      } else {
        ReleaseSerialIfHeld();
        desc_->stats.aborts.fetch_add(1, std::memory_order_relaxed);
        UpdateAbortEwma(desc_->stats, /*aborted=*/true);
        Cm::NoteAbortBackoff(*desc_);
      }
    }

    using StratState = StrategyState<Summary, Probe>;

    TxDesc* desc_;
    InlineVec<RwEntry, kMaxShortWrites> rw_;
    InlineVec<RoEntry, kMaxShortReads> ro_;
    StratState state_;
    bool valid_ = true;
    bool finished_ = false;
    bool unwound_ = false;  // overflow unwind already released the locks
    bool serial_ = false;   // this attempt holds the serialization token
    bool gated_ = false;    // this attempt announced itself as a committer
  };

  // --- Single-operation transactions (Tx_Single_*, Figure 2) -------------------------

  // Linearizable single-word transactional read: orec–data–orec sandwich.
  static Word SingleRead(Slot* s) {
    std::atomic<Word>& orec = Layout::OrecOf(*s);
    while (true) {
      const Word o1 = orec.load(std::memory_order_acquire);
      if (OrecIsLocked(o1)) {
        SPECTM_SCHED_SPIN(failpoint::Site::kLockAcquire);
        CpuRelax();
        continue;
      }
      const Word value = Layout::Data(*s).load(std::memory_order_acquire);
      const Word o2 = orec.load(std::memory_order_acquire);
      if (o1 == o2) {
        return value;
      }
    }
  }

  // Linearizable single-word transactional write. A committer like any other:
  // it waits out a serial transaction at the gate (it has no abort/retry loop
  // to fail fast into), bounded by the serial transaction's solo execution.
  static void SingleWrite(Slot* s, Word value) {
    std::atomic<Word>& orec = Layout::OrecOf(*s);
    TxDesc* self = &DescOf<DomainTag>();
    Gate::EnterCommitterWait(self);
    // Unwind guards (src/tm/txguard.h): the publication sequence below hosts
    // pause-style fail points that can throw with the orec locked and the gate
    // flag announced. Reverse destruction order enforces the mandatory release
    // sequence — orec restored first, gate flag retracted second. The gate
    // guard also serves the normal return (never dismissed).
    TxUnwindGuard gate_guard([self] { Gate::ExitCommitter(self); });
    const Word old_word = AcquireOrec(&orec, self);
    TxUnwindGuard lock_guard([&orec, old_word] {
      orec.store(old_word, std::memory_order_release);
    });
    if constexpr (kStrategic) {
      // Locked, before the data store; one location -> one stripe bumped.
      if constexpr (kMode == ValMode::kPartitioned) {
        ++Probe::Get().stripe_bumps;
      }
      Summary::PublishAndBump(AddrBloom128(&orec),
                              1u << CounterStripeOf(&orec));
    }
    Layout::Data(*s).store(value, std::memory_order_release);
    Word wv = 0;
    if constexpr (Clock::kHasGlobalClock) {
      wv = Clock::NextCommitVersion();
    }
    orec.store(MakeOrecVersion(Clock::ReleaseVersion(wv, old_word)),
               std::memory_order_release);
    lock_guard.Dismiss();  // the version store above was the lock release
  }

  // Linearizable single-word transactional compare-and-swap. Returns the observed
  // value; the CAS succeeded iff the return value equals `expected`.
  static Word SingleCas(Slot* s, Word expected, Word desired) {
    std::atomic<Word>& orec = Layout::OrecOf(*s);
    TxDesc* self = &DescOf<DomainTag>();
    Gate::EnterCommitterWait(self);
    // Same guard pair as SingleWrite; the compare-mismatch path returns
    // through both guards, which restore the unchanged orec word (no update:
    // version unchanged) and retract the gate flag in the mandatory order.
    TxUnwindGuard gate_guard([self] { Gate::ExitCommitter(self); });
    const Word old_word = AcquireOrec(&orec, self);
    TxUnwindGuard lock_guard([&orec, old_word] {
      orec.store(old_word, std::memory_order_release);
    });
    const Word observed = Layout::Data(*s).load(std::memory_order_acquire);
    if (observed != expected) {
      return observed;
    }
    if constexpr (kStrategic) {
      // Locked, before the data store; one location -> one stripe bumped.
      if constexpr (kMode == ValMode::kPartitioned) {
        ++Probe::Get().stripe_bumps;
      }
      Summary::PublishAndBump(AddrBloom128(&orec),
                              1u << CounterStripeOf(&orec));
    }
    Layout::Data(*s).store(desired, std::memory_order_release);
    Word wv = 0;
    if constexpr (Clock::kHasGlobalClock) {
      wv = Clock::NextCommitVersion();
    }
    orec.store(MakeOrecVersion(Clock::ReleaseVersion(wv, old_word)),
               std::memory_order_release);
    lock_guard.Dismiss();  // the version store above was the lock release
    return observed;
  }

  static TxStats& StatsForCurrentThread() { return DescOf<DomainTag>().stats; }

 private:
  // Spin-acquires an orec. Safe only for single-op transactions, which hold no other
  // locks (no deadlock) — multi-location transactions must fail fast instead.
  static Word AcquireOrec(std::atomic<Word>* orec, TxDesc* self) {
    while (true) {
      SPECTM_FAILPOINT_PAUSE(failpoint::Site::kLockAcquire);
      Word w = orec->load(std::memory_order_relaxed);
      if (!OrecIsLocked(w) &&
          orec->compare_exchange_weak(w, MakeOrecLocked(self), std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        return w;
      }
      SPECTM_SCHED_SPIN(failpoint::Site::kLockAcquire);
      CpuRelax();
    }
  }
};

}  // namespace spectm

#endif  // SPECTM_TM_SHORT_TM_H_
