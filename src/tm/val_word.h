// The `val` meta-data layout (Figure 3(c)): a transactional location is ONE word in
// which bit 0 is reserved as the STM lock bit.
//
//   unlocked: the 63-bit application value (bit 0 clear — aligned pointer or
//             EncodeInt()-shifted integer, §2.4)
//   locked:   (TxDesc* | 1) — the displaced value is saved in the owner's record
//
// "Traditional STMs need to perform a sequence of three reads (orec, data word and
// then orec again) to get a correct snapshot... When data and meta-data are held in
// the same word, this sequence becomes a single atomic read. Similarly, at
// commit-time, the entire TVar can be updated by an atomic write." (§2.4)
//
// With no version numbers, read-only validation is value-based. The paper identifies
// three cases where that is safe without extra machinery (§2.4): (1) transactions
// that update everything they read (locks pin all of it), (2) "mostly-read-write"
// transactions with a single read-only location (the read is the linearization
// point), (3) locations with the non-re-use property (here: node pointers protected
// by epoch-based reclamation). For the general case, Dalessandro et al.'s global
// commit counter — or the distributed per-thread variant — makes value-based
// validation safe; both are provided as ValidationPolicy implementations and their
// cost is measured in bench/abl_val_validation.
#ifndef SPECTM_TM_VAL_WORD_H_
#define SPECTM_TM_VAL_WORD_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "src/common/cacheline.h"
#include "src/common/failpoint.h"
#include "src/common/tagged.h"
#include "src/common/thread_registry.h"
#include "src/tm/config.h"
#include "src/tm/mvcc.h"
#include "src/tm/txdesc.h"
#include "src/tm/valstrategy.h"

namespace spectm {

// The data+lock word, plus the MVCC chain head (PR 9): an indirect, bounded,
// newest-first list of displaced values (src/tm/mvcc.h). The head stays null
// until a kMvcc-policy writer commits over the slot, and no non-snapshot
// engine ever reads or writes it — the one-word in-place protocol on `word`
// is unchanged.
struct ValSlot {
  std::atomic<Word> word{0};
  std::atomic<mvcc::VersionNode*> versions{nullptr};
};

constexpr bool ValIsLocked(Word w) { return (w & kLockBit) != 0; }

inline TxDesc* ValOwnerOf(Word w) {
  return reinterpret_cast<TxDesc*>(static_cast<std::uintptr_t>(w & ~kLockBit));
}

inline Word MakeValLocked(TxDesc* owner) {
  return static_cast<Word>(reinterpret_cast<std::uintptr_t>(owner)) | kLockBit;
}

// --- Validation policies -------------------------------------------------------------
//
// Protocol shared by all writers (short RW commits, full commits, single writes):
// while holding the lock(s), call OnWriterCommit*() BEFORE the value stores that
// release them — and, for commits that validate a read set, BEFORE that final
// validation (bump-before-validate; see the crossing-committer note in
// valstrategy.h — a writer may only skip its commit-time walk when no foreign
// bump lies between its sample anchor and its own bump). A validator whose
// Sample() is stable across a value re-check then knows that any commit it could
// have missed was still holding its locks during the re-check — and a held lock
// always fails the value comparison, because a locked word has bit 0 set and
// recorded values never do.

// `kPrecise` marks policies whose counter genuinely tracks writer commits: for those,
// "counter unchanged since the log was last fully validated" proves no writer
// released any value in between (writers bump while holding their locks, before the
// releasing stores, and lock acquisition precedes the bump — so a writer whose bump
// is not yet visible was still holding its locks during the last value re-check,
// where a held lock always fails the comparison). Engines use it to skip redundant
// per-read revalidation. NonReuseValidation's trivially-stable pseudo-counter proves
// nothing, so it must not enable that fast path.

// `kHasBloomRing` marks policies that additionally publish each writer's write-set
// bloom into a WriterRing (valstrategy.h), enabling the bloom-summary skip: a
// reader whose counter went stale can still avoid the O(read-set) walk when every
// intervening commit's bloom is disjoint from its read bloom. Writer paths call
// OnWriterCommitWithBloom(); policies without a ring ignore the bloom.

// `kPartitioned` marks policies whose counter is additionally sharded into
// per-stripe counters keyed by the metadata word's address region
// (valstrategy.h kCounterStripes): writers pass the stripe mask of their write
// set to OnWriterCommitWithBloom, and readers under ValMode::kPartitioned skip
// walks when every READ-occupied stripe is unchanged. Non-partitioned policies
// ignore the mask; StrategyState compiles the stripe paths out for them.

// `kMvcc` marks the policy whose writers additionally publish every displaced
// value onto the slot's version chain (src/tm/mvcc.h), stamped with their own
// commit index — the precondition for ValMode::kSnapshot's pinned-snapshot
// reads. Engines compile every chain touch out when it is false.

// Case-3 reliance: no tracking at all. Sound when values satisfy non-re-use (or one
// of the other two special cases); this is the paper's default for val-short.
struct NonReuseValidation {
  static constexpr const char* kName = "non-reuse";
  static constexpr bool kPrecise = false;
  static constexpr bool kHasBloomRing = false;
  static constexpr bool kPartitioned = false;
  static constexpr bool kMvcc = false;
  static Word Sample() { return 0; }
  static bool Stable(Word /*sample*/) { return true; }
  static bool BloomAdvance(Word* /*sample*/, const Bloom128& /*read_bloom*/) {
    return true;
  }
  static void OnWriterCommit(TxDesc* /*self*/) {}
  static Word OnWriterCommitWithBloom(TxDesc* /*self*/, const Bloom128& /*bloom*/,
                                      unsigned /*stripe_mask*/ = 0) {
    return 0;
  }
};

// One shared commit counter (Dalessandro et al.): cheap to read, but every writer
// commit contends on one cache line.
struct GlobalCounterValidation {
  static constexpr const char* kName = "global-counter";
  static constexpr bool kPrecise = true;
  static constexpr bool kHasBloomRing = false;
  static constexpr bool kPartitioned = false;
  static constexpr bool kMvcc = false;

  static std::atomic<Word>& Counter() {
    static CacheAligned<std::atomic<Word>> counter;
    return *counter;
  }

  static Word Sample() { return Counter().load(std::memory_order_seq_cst); }
  static bool Stable(Word sample) { return Sample() == sample; }
  static bool BloomAdvance(Word* sample, const Bloom128& /*read_bloom*/) {
    return Stable(*sample);
  }
  static void OnWriterCommit(TxDesc* /*self*/) {
    Counter().fetch_add(1, std::memory_order_seq_cst);
  }
  static Word OnWriterCommitWithBloom(TxDesc* /*self*/, const Bloom128& /*bloom*/,
                                      unsigned /*stripe_mask*/ = 0) {
    return Counter().fetch_add(1, std::memory_order_seq_cst) + 1;
  }
};

// Global counter + write-set bloom ring: the commit bump doubles as the publication
// index for the writer's 32-bit write bloom, so readers can pre-filter stale
// counters. A thin facade over WriterSummary (valstrategy.h) — ONE implementation
// of the counter+ring protocol serves both the orec and the val layouts — on a
// private domain tag, so families on this policy form their own validation domain.
struct GlobalCounterBloomValidation {
  struct RingDomainTag {};
  using Summary = WriterSummary<RingDomainTag>;

  static constexpr const char* kName = "global-counter-bloom";
  static constexpr bool kPrecise = true;
  static constexpr bool kHasBloomRing = true;
  static constexpr bool kPartitioned = Summary::kPartitioned;
  static constexpr bool kMvcc = false;

  static Word Sample() { return Summary::Sample(); }
  static bool Stable(Word sample) { return Summary::Stable(sample); }
  static Word StripeNow(int s) { return Summary::StripeNow(s); }
  static StripeSample StripeSampleNow() { return Summary::StripeSampleNow(); }

  static bool BloomAdvance(Word* sample, const Bloom128& read_bloom) {
    return Summary::BloomAdvance(sample, read_bloom);
  }

  // Returns the writer's own commit index (see WriterSummary::PublishAndBump for
  // the commit-skip contract it feeds and the stripe-mask protocol).
  static Word OnWriterCommitWithBloom(TxDesc* /*self*/, const Bloom128& bloom,
                                      unsigned stripe_mask = kAllCounterStripesMask) {
    return Summary::PublishAndBump(bloom, stripe_mask);
  }

  // A writer path with no cheap write-set enumeration publishes the all-ones
  // bloom and the all-stripes mask: readers then fall back to the walk for that
  // commit, never skip unsoundly.
  static void OnWriterCommit(TxDesc* self) {
    OnWriterCommitWithBloom(self, Bloom128All(), kAllCounterStripesMask);
  }

  // Commit-time bloom pre-filter; the range contract lives in
  // WriterSummary::CommitRangeDisjoint (single source of the off-by-one).
  static bool CommitRangeDisjoint(Word sample, Word own_idx,
                                  const Bloom128& read_bloom) {
    return Summary::CommitRangeDisjoint(sample, own_idx, read_bloom);
  }
};

// MVCC snapshot policy (PR 9): writer-side protocol identical to the
// partitioned counter+bloom policy — same RingDomainTag summary, same stripe
// counters, same ring — plus kMvcc: committing writers publish every displaced
// value onto the slot's version chain stamped with their own commit index
// (src/tm/mvcc.h). Under ValMode::kSnapshot, read-only transactions pin a
// snapshot from this clock and read through the chains with zero validation;
// read-write transactions keep the precise stripe protocol unchanged.
struct SnapshotValidation : GlobalCounterBloomValidation {
  static constexpr const char* kName = "snapshot";
  static constexpr bool kMvcc = true;
};

// One snapshot read against `s` at pinned snapshot stamp `snapshot`: the
// current word if its reign began at or before the snapshot, else the newest
// chain version whose interval [floor, stamp) contains it. Loops past the two
// transient states (commit lock held with no usable version yet; unstamped
// head) — in-flight writers resolve both in a handful of instructions, and on
// a single core the yield hands them the CPU. Returns ok == false only when
// the chain has been truncated below the snapshot (deepest floor > snapshot):
// the caller must refresh its snapshot, never guess.
struct SnapshotReadResult {
  Word value = 0;
  int hops = 0;    // chain nodes dereferenced (0 = in-place fast path)
  bool ok = false;
};

inline SnapshotReadResult SnapshotReadSlot(ValSlot* s, Word snapshot) {
  for (int spins = 0;; ++spins) {
    const Word w = s->word.load(std::memory_order_acquire);
    mvcc::VersionNode* head = s->versions.load(std::memory_order_acquire);
    const Word head_stamp =
        (head != nullptr) ? head->stamp.load(std::memory_order_acquire) : 0;
    if (!ValIsLocked(w)) {
      if (head == nullptr || (head_stamp != mvcc::kUnstamped && head_stamp <= snapshot)) {
        return {w, 0, true};  // current value already reigned at the snapshot
      }
      // head_stamp == kUnstamped here means our two loads straddled a
      // writer's push: retry (the next word load sees its lock or its store).
    } else {
      // Commit lock held. The chain serves the read iff a stamped head with
      // stamp > snapshot exists (the in-flight writer cannot affect versions
      // at or below its own displaced head); otherwise the value this
      // snapshot needs is still in the owner's lock log — wait it out.
      if (head != nullptr && head_stamp != mvcc::kUnstamped && head_stamp > snapshot) {
        // fall through to the walk
      } else {
        if (spins >= kReadLockSpin) {
          std::this_thread::yield();
        }
        SPECTM_SCHED_SPIN(failpoint::Site::kLockAcquire);
        CpuRelax();
        continue;
      }
    }
    if (head_stamp == mvcc::kUnstamped) {
      SPECTM_SCHED_SPIN(failpoint::Site::kLockAcquire);
      CpuRelax();
      continue;
    }
    // Walk newest -> oldest for the node covering the snapshot. Invariant on
    // every node reached: stamp > snapshot (head was checked; each deeper
    // node's stamp equals its predecessor's floor, which exceeded the
    // snapshot for us to descend).
    int hops = 0;
    for (mvcc::VersionNode* n = head; n != nullptr;
         n = n->next.load(std::memory_order_acquire)) {
      ++hops;
      if (n->floor <= snapshot) {
        return {n->word, hops, true};
      }
    }
    return {0, hops, false};  // truncated below the snapshot
  }
}

// Distributed counters (§2.4 last paragraph): each thread bumps its own padded
// counter on commit — "fast to (logically) increment the shared counter, at the cost
// of reading all of the threads' counters" when validating. Counters only increase,
// so an unchanged sum implies every individual counter is unchanged.
struct PerThreadCounterValidation {
  static constexpr const char* kName = "per-thread-counters";
  static constexpr bool kPrecise = true;
  static constexpr bool kHasBloomRing = false;
  static constexpr bool kPartitioned = false;
  static constexpr bool kMvcc = false;

  static Word Sample() {
    const int bound = ThreadRegistry::IdBound();
    Word sum = 0;
    for (int i = 0; i < bound; ++i) {
      sum += Counters()[i]->load(std::memory_order_seq_cst);
    }
    return sum;
  }

  static bool Stable(Word sample) { return Sample() == sample; }
  static bool BloomAdvance(Word* sample, const Bloom128& /*read_bloom*/) {
    return Stable(*sample);
  }

  static void OnWriterCommit(TxDesc* self) {
    Counters()[self->thread_slot]->fetch_add(1, std::memory_order_seq_cst);
  }
  // No single commit index exists for a distributed sum; callers use the uniform
  // "Sample() == sample + 1 after own bump" test instead (sums count all bumps,
  // so anchor+1 means exactly this writer's own).
  static Word OnWriterCommitWithBloom(TxDesc* self, const Bloom128& /*bloom*/,
                                      unsigned /*stripe_mask*/ = 0) {
    OnWriterCommit(self);
    return 0;
  }

 private:
  static CacheAligned<std::atomic<Word>>* Counters() {
    static CacheAligned<std::atomic<Word>> counters[ThreadRegistry::kMaxThreads];
    return counters;
  }
};

}  // namespace spectm

#endif  // SPECTM_TM_VAL_WORD_H_
