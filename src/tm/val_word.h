// The `val` meta-data layout (Figure 3(c)): a transactional location is ONE word in
// which bit 0 is reserved as the STM lock bit.
//
//   unlocked: the 63-bit application value (bit 0 clear — aligned pointer or
//             EncodeInt()-shifted integer, §2.4)
//   locked:   (TxDesc* | 1) — the displaced value is saved in the owner's record
//
// "Traditional STMs need to perform a sequence of three reads (orec, data word and
// then orec again) to get a correct snapshot... When data and meta-data are held in
// the same word, this sequence becomes a single atomic read. Similarly, at
// commit-time, the entire TVar can be updated by an atomic write." (§2.4)
//
// With no version numbers, read-only validation is value-based. The paper identifies
// three cases where that is safe without extra machinery (§2.4): (1) transactions
// that update everything they read (locks pin all of it), (2) "mostly-read-write"
// transactions with a single read-only location (the read is the linearization
// point), (3) locations with the non-re-use property (here: node pointers protected
// by epoch-based reclamation). For the general case, Dalessandro et al.'s global
// commit counter — or the distributed per-thread variant — makes value-based
// validation safe; both are provided as ValidationPolicy implementations and their
// cost is measured in bench/abl_val_validation.
#ifndef SPECTM_TM_VAL_WORD_H_
#define SPECTM_TM_VAL_WORD_H_

#include <atomic>
#include <cstdint>

#include "src/common/cacheline.h"
#include "src/common/tagged.h"
#include "src/common/thread_registry.h"
#include "src/tm/txdesc.h"

namespace spectm {

struct ValSlot {
  std::atomic<Word> word{0};
};

constexpr bool ValIsLocked(Word w) { return (w & kLockBit) != 0; }

inline TxDesc* ValOwnerOf(Word w) {
  return reinterpret_cast<TxDesc*>(static_cast<std::uintptr_t>(w & ~kLockBit));
}

inline Word MakeValLocked(TxDesc* owner) {
  return static_cast<Word>(reinterpret_cast<std::uintptr_t>(owner)) | kLockBit;
}

// --- Validation policies -------------------------------------------------------------
//
// Protocol shared by all writers (short RW commits, full commits, single writes):
// while holding the lock(s), call OnWriterCommit() BEFORE the value stores that
// release them. A validator whose Sample() is stable across a value re-check then
// knows that any commit it could have missed was still holding its locks during the
// re-check — and a held lock always fails the value comparison, because a locked word
// has bit 0 set and recorded values never do.

// `kPrecise` marks policies whose counter genuinely tracks writer commits: for those,
// "counter unchanged since the log was last fully validated" proves no writer
// released any value in between (writers bump while holding their locks, before the
// releasing stores, and lock acquisition precedes the bump — so a writer whose bump
// is not yet visible was still holding its locks during the last value re-check,
// where a held lock always fails the comparison). Engines use it to skip redundant
// per-read revalidation. NonReuseValidation's trivially-stable pseudo-counter proves
// nothing, so it must not enable that fast path.

// Case-3 reliance: no tracking at all. Sound when values satisfy non-re-use (or one
// of the other two special cases); this is the paper's default for val-short.
struct NonReuseValidation {
  static constexpr const char* kName = "non-reuse";
  static constexpr bool kPrecise = false;
  static Word Sample() { return 0; }
  static bool Stable(Word /*sample*/) { return true; }
  static void OnWriterCommit(TxDesc* /*self*/) {}
};

// One shared commit counter (Dalessandro et al.): cheap to read, but every writer
// commit contends on one cache line.
struct GlobalCounterValidation {
  static constexpr const char* kName = "global-counter";
  static constexpr bool kPrecise = true;

  static std::atomic<Word>& Counter() {
    static CacheAligned<std::atomic<Word>> counter;
    return *counter;
  }

  static Word Sample() { return Counter().load(std::memory_order_seq_cst); }
  static bool Stable(Word sample) { return Sample() == sample; }
  static void OnWriterCommit(TxDesc* /*self*/) {
    Counter().fetch_add(1, std::memory_order_seq_cst);
  }
};

// Distributed counters (§2.4 last paragraph): each thread bumps its own padded
// counter on commit — "fast to (logically) increment the shared counter, at the cost
// of reading all of the threads' counters" when validating. Counters only increase,
// so an unchanged sum implies every individual counter is unchanged.
struct PerThreadCounterValidation {
  static constexpr const char* kName = "per-thread-counters";
  static constexpr bool kPrecise = true;

  static Word Sample() {
    const int bound = ThreadRegistry::IdBound();
    Word sum = 0;
    for (int i = 0; i < bound; ++i) {
      sum += Counters()[i]->load(std::memory_order_seq_cst);
    }
    return sum;
  }

  static bool Stable(Word sample) { return Sample() == sample; }

  static void OnWriterCommit(TxDesc* self) {
    Counters()[self->thread_slot]->fetch_add(1, std::memory_order_seq_cst);
  }

 private:
  static CacheAligned<std::atomic<Word>>* Counters() {
    static CacheAligned<std::atomic<Word>> counters[ThreadRegistry::kMaxThreads];
    return counters;
  }
};

}  // namespace spectm

#endif  // SPECTM_TM_VAL_WORD_H_
