// Paper-faithful C-style facade (Figure 2).
//
// The C++ engines expose short transactions through the ShortTx record, where access
// sequence numbers are implicit in call order but statically bounded. This header
// reproduces the paper's exact API surface — explicitly numbered functions such as
// Tx_RW_R1 / Tx_RW_R2 / Tx_RW_2_Commit — for the examples transcribed from the paper
// (the double-ended queue of §2, DCSS of §2.2) and for users porting SpecTM code.
//
// The numbered names are generated over a family chosen by template parameter; the
// default `Val` family gives the paper's preferred val-short behaviour. Sequence
// numbers are validated against the record's actual access count in debug builds
// ("Incorrect uses of the SpecTM interface can typically be detected at runtime. For
// performance, we do not implement such checks in non-debug modes." §2.2).
//
// Contention management rides along automatically: every retry entry point here
// (Restart/Tx_RW_R1/Tx_RO_R1) funnels through ShortTx::Reset/Abort, which apply
// the phase-1 randomized backoff on contention aborts and, past the abort-streak
// threshold, escalate the NEXT attempt to serial-irrevocable mode (src/tm/serial.h)
// — so a paper-style `goto restart` loop is livelock-bounded without any change
// to calling code.
#ifndef SPECTM_TM_COMPAT_H_
#define SPECTM_TM_COMPAT_H_

#include <cassert>
#include <utility>

#include "src/common/tagged.h"
#include "src/tm/txguard.h"
#include "src/tm/variants.h"

namespace spectm {
namespace compat {

using Ptr = void*;

inline Ptr ToPtr(Word w) { return reinterpret_cast<Ptr>(static_cast<std::uintptr_t>(w)); }
inline Word ToWord(Ptr p) { return static_cast<Word>(reinterpret_cast<std::uintptr_t>(p)); }

// The TX_RECORD of Figure 2: fixed-size, stack-allocatable, reusable across restarts.
template <typename Family = Val>
struct TX_RECORD {
  typename Family::ShortTx tx;

  void Restart() { tx.Reset(); }
};

// Exception-safe retry driver for paper-style restart loops (src/tm/txguard.h).
//
// The C facade's `goto restart` idiom has no place to catch: user code between
// the numbered calls may throw (or call CancelAndRetry/CancelTx), and the raw
// loop would then re-enter Tx_RW_R1 on a record whose previous attempt never
// aborted. Tx_Run closes that hole: `body(record)` is run until it returns
// true (committed/validated — the body's contract); TxCancel aborts the
// attempt through ShortTx's ordinary unwind (Reset -> Abort releases every
// encounter lock, the gate flag, and the serial token, in that order) and
// retries or returns false per its policy; any foreign exception propagates
// through ~ShortTx, which aborts the torn attempt before it escapes this
// frame — nothing leaked, nothing published. Returns true iff a body
// execution reported success.
template <typename Family = Val, typename Body>
bool Tx_Run(Body&& body) {
  TX_RECORD<Family> t;
  while (true) {
    try {
      if (body(&t)) {
        return true;
      }
      t.Restart();
    } catch (const TxCancel& cancel) {
      if (cancel.policy == TxCancel::Policy::kAbort) {
        return false;  // the record's destructor runs the abort unwind
      }
      t.Restart();  // abort the torn attempt, re-arm for the next one
    }
  }
}

// --- Single read/write/CAS transactions ----------------------------------------------

template <typename Family = Val>
Ptr Tx_Single_Read(typename Family::Slot* addr) {
  return ToPtr(Family::SingleRead(addr));
}

template <typename Family = Val>
void Tx_Single_Write(typename Family::Slot* addr, Ptr new_val) {
  Family::SingleWrite(addr, ToWord(new_val));
}

template <typename Family = Val>
Ptr Tx_Single_CAS(typename Family::Slot* addr, Ptr old_val, Ptr new_val) {
  return ToPtr(Family::SingleCas(addr, ToWord(old_val), ToWord(new_val)));
}

// --- Read-write short transactions ----------------------------------------------------
//
// Tx_RW_R1 implicitly starts the transaction (§2.2 change (i)); it therefore resets a
// record left over from a previous attempt, matching the paper's `goto restart` use.

// Tx_RW_R1 re-arms a finished/invalid record (the paper's `goto restart`) but NOT a
// live attempt that already performed RO reads: the RO_x_RW_y mixed forms reach
// their first RW access through Tx_RW_R1, and resetting then would discard the RO
// set — later upgrades would index cleared entries (caught by assert in debug
// builds, silent stale reads in release). The one sequence this cannot disambiguate
// is reusing a record for an RW transaction right after a VALIDATED RO-only
// transaction (validation-as-commit leaves the record live with its RO set):
// begin the new attempt with Restart() or Tx_RO_R1, as the examples do.
template <typename Family = Val>
Ptr Tx_RW_R1(TX_RECORD<Family>* t, typename Family::Slot* addr) {
  if (!t->tx.Valid() || t->tx.RoCount() == 0) {
    t->tx.Reset();
  }
  return ToPtr(t->tx.ReadRw(addr));
}

template <typename Family = Val>
Ptr Tx_RW_R2(TX_RECORD<Family>* t, typename Family::Slot* addr) {
  assert(t->tx.RwCount() == 1 && "Tx_RW_R2 must be the second RW access");
  return ToPtr(t->tx.ReadRw(addr));
}

template <typename Family = Val>
Ptr Tx_RW_R3(TX_RECORD<Family>* t, typename Family::Slot* addr) {
  assert(t->tx.RwCount() == 2 && "Tx_RW_R3 must be the third RW access");
  return ToPtr(t->tx.ReadRw(addr));
}

template <typename Family = Val>
Ptr Tx_RW_R4(TX_RECORD<Family>* t, typename Family::Slot* addr) {
  assert(t->tx.RwCount() == 3 && "Tx_RW_R4 must be the fourth RW access");
  return ToPtr(t->tx.ReadRw(addr));
}

template <typename Family = Val>
bool Tx_RW_1_Is_Valid(TX_RECORD<Family>* t) {
  return t->tx.Valid();
}
template <typename Family = Val>
bool Tx_RW_2_Is_Valid(TX_RECORD<Family>* t) {
  return t->tx.Valid();
}
template <typename Family = Val>
bool Tx_RW_3_Is_Valid(TX_RECORD<Family>* t) {
  return t->tx.Valid();
}
template <typename Family = Val>
bool Tx_RW_4_Is_Valid(TX_RECORD<Family>* t) {
  return t->tx.Valid();
}

template <typename Family = Val>
void Tx_RW_1_Commit(TX_RECORD<Family>* t, Ptr v1) {
  t->tx.CommitRw({ToWord(v1)});
}
template <typename Family = Val>
void Tx_RW_2_Commit(TX_RECORD<Family>* t, Ptr v1, Ptr v2) {
  t->tx.CommitRw({ToWord(v1), ToWord(v2)});
}
template <typename Family = Val>
void Tx_RW_3_Commit(TX_RECORD<Family>* t, Ptr v1, Ptr v2, Ptr v3) {
  t->tx.CommitRw({ToWord(v1), ToWord(v2), ToWord(v3)});
}
template <typename Family = Val>
void Tx_RW_4_Commit(TX_RECORD<Family>* t, Ptr v1, Ptr v2, Ptr v3, Ptr v4) {
  t->tx.CommitRw({ToWord(v1), ToWord(v2), ToWord(v3), ToWord(v4)});
}

template <typename Family = Val>
void Tx_RW_1_Abort(TX_RECORD<Family>* t) {
  t->tx.Abort();
}
template <typename Family = Val>
void Tx_RW_2_Abort(TX_RECORD<Family>* t) {
  t->tx.Abort();
}
template <typename Family = Val>
void Tx_RW_3_Abort(TX_RECORD<Family>* t) {
  t->tx.Abort();
}
template <typename Family = Val>
void Tx_RW_4_Abort(TX_RECORD<Family>* t) {
  t->tx.Abort();
}

// --- Read-only short transactions ------------------------------------------------------

template <typename Family = Val>
Ptr Tx_RO_R1(TX_RECORD<Family>* t, typename Family::Slot* addr) {
  // Always an attempt start: no facade form places the FIRST RO read mid-attempt,
  // so an unconditional reset correctly re-arms records left live by a previous
  // validated RO-only transaction (validation serves in place of commit, §2.2).
  t->tx.Reset();
  return ToPtr(t->tx.ReadRo(addr));
}

template <typename Family = Val>
Ptr Tx_RO_R2(TX_RECORD<Family>* t, typename Family::Slot* addr) {
  assert(t->tx.RoCount() == 1 && "Tx_RO_R2 must be the second RO access");
  return ToPtr(t->tx.ReadRo(addr));
}

template <typename Family = Val>
Ptr Tx_RO_R3(TX_RECORD<Family>* t, typename Family::Slot* addr) {
  assert(t->tx.RoCount() == 2 && "Tx_RO_R3 must be the third RO access");
  return ToPtr(t->tx.ReadRo(addr));
}

template <typename Family = Val>
Ptr Tx_RO_R4(TX_RECORD<Family>* t, typename Family::Slot* addr) {
  assert(t->tx.RoCount() == 3 && "Tx_RO_R4 must be the fourth RO access");
  return ToPtr(t->tx.ReadRo(addr));
}

template <typename Family = Val>
bool Tx_RO_1_Is_Valid(TX_RECORD<Family>* t) {
  return t->tx.Valid() && t->tx.ValidateRo();
}
template <typename Family = Val>
bool Tx_RO_2_Is_Valid(TX_RECORD<Family>* t) {
  return t->tx.Valid() && t->tx.ValidateRo();
}
template <typename Family = Val>
bool Tx_RO_3_Is_Valid(TX_RECORD<Family>* t) {
  return t->tx.Valid() && t->tx.ValidateRo();
}
template <typename Family = Val>
bool Tx_RO_4_Is_Valid(TX_RECORD<Family>* t) {
  return t->tx.Valid() && t->tx.ValidateRo();
}

// --- Commit combined read-only & read-write transactions -------------------------------

template <typename Family = Val>
bool Tx_RO_1_RW_1_Commit(TX_RECORD<Family>* t, Ptr v1) {
  return t->tx.CommitMixed({ToWord(v1)});
}
template <typename Family = Val>
bool Tx_RO_1_RW_2_Commit(TX_RECORD<Family>* t, Ptr v1, Ptr v2) {
  return t->tx.CommitMixed({ToWord(v1), ToWord(v2)});
}
template <typename Family = Val>
bool Tx_RO_2_RW_1_Commit(TX_RECORD<Family>* t, Ptr v1) {
  return t->tx.CommitMixed({ToWord(v1)});
}
template <typename Family = Val>
bool Tx_RO_2_RW_2_Commit(TX_RECORD<Family>* t, Ptr v1, Ptr v2) {
  return t->tx.CommitMixed({ToWord(v1), ToWord(v2)});
}

// --- Upgrade a location from RO to RW ---------------------------------------------------
//
// Tx_Upgrade_RO_x_To_RW_y: index x among the reads becomes write index y. The write
// index must be the next free one (§2.2), which the record tracks itself; the name
// carries it only for fidelity with Figure 2.

template <typename Family = Val>
bool Tx_Upgrade_RO_1_To_RW_1(TX_RECORD<Family>* t) {
  assert(t->tx.RwCount() == 0);
  return t->tx.UpgradeRoToRw(0);
}
template <typename Family = Val>
bool Tx_Upgrade_RO_2_To_RW_1(TX_RECORD<Family>* t) {
  assert(t->tx.RwCount() == 0);
  return t->tx.UpgradeRoToRw(1);
}
template <typename Family = Val>
bool Tx_Upgrade_RO_1_To_RW_2(TX_RECORD<Family>* t) {
  assert(t->tx.RwCount() == 1);
  return t->tx.UpgradeRoToRw(0);
}
template <typename Family = Val>
bool Tx_Upgrade_RO_2_To_RW_2(TX_RECORD<Family>* t) {
  assert(t->tx.RwCount() == 1);
  return t->tx.UpgradeRoToRw(1);
}

}  // namespace compat
}  // namespace spectm

#endif  // SPECTM_TM_COMPAT_H_
