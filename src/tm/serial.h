// Phase two of the contention manager: serial-irrevocable escalation.
//
// src/common/backoff.h implements the first phase of SwissTM's two-phase
// contention manager (§4.1, randomized linear backoff). This header adds the
// second phase: a descriptor whose consecutive-abort streak
// (Backoff::attempts()) crosses kSerialEscalationStreak re-runs its
// transaction in SERIAL-IRREVOCABLE mode — it acquires the domain's
// serialization token, waits out every in-flight committer, and then runs the
// completely ordinary commit protocol with the guarantee that no other
// committer can interleave, so it cannot conflict-abort. Livelock-prone
// streaks become bounded: max_abort_streak <= escalation threshold + O(1).
//
// The gate is reader-writer shaped ON PURPOSE, and the asymmetry is the whole
// soundness story (docs/VALIDATION.md "Serial-irrevocable interop"):
//
//   * Only COMMITTERS (lock-acquiring / summary-publishing transactions)
//     participate. Read-only transactions never touch the gate and keep
//     running concurrently with a serial transaction.
//   * The serial transaction still runs the normal publication protocol —
//     commit-counter bump, per-stripe bumps, ring publish, in the normal
//     bump-before-validate order — because concurrent READERS are still
//     relying on those counters for their NOrec / partitioned skip anchors.
//     A serial mode that skipped publication would let a reader "counter
//     unchanged => skip the walk" straight past the serial writer's stores.
//
// Deadlock-freedom: a committer NEVER blocks while inside the gate (every
// lock acquisition on the commit path is fail-fast), so the serial drain
// terminates; and the serial owner acquires its first lock only after the
// drain, so it can never contend with an in-gate committer. Committers that
// arrive while the token is held fail fast at the gate and retry through the
// normal abort/backoff loop, which is bounded by the serial transaction's
// (finite, solo) execution.
//
// Hysteresis: a serial commit starts a cooldown of kSerialCooldownCommits
// optimistic commits during which the escalation threshold is doubled, so one
// contention storm does not pin the system serial (mirrors the GV6 / adaptive
// strategy dead-band pattern).
#ifndef SPECTM_TM_SERIAL_H_
#define SPECTM_TM_SERIAL_H_

#include <atomic>
#include <cstdint>

#include "src/common/cacheline.h"
#include "src/common/failpoint.h"
#include "src/common/health.h"
#include "src/common/thread_registry.h"
#include "src/tm/txdesc.h"

namespace spectm {

// Streak at which a descriptor escalates to serial-irrevocable mode.
inline constexpr std::uint64_t kSerialEscalationStreak = 16;
// Optimistic commits after a serial commit during which the threshold doubles.
inline constexpr std::uint32_t kSerialCooldownCommits = 8;

namespace internal {
inline std::atomic<std::uint64_t>& EscalationStreakVar() {
  static std::atomic<std::uint64_t> v{kSerialEscalationStreak};
  return v;
}
}  // namespace internal

// Runtime-adjustable escalation threshold, process-wide. 0 disables
// escalation entirely (the "unbounded streak" baseline the pathological
// bench contrasts against); tests use small values to force escalation
// deterministically.
inline std::uint64_t SerialEscalationStreak() {
  return internal::EscalationStreakVar().load(std::memory_order_relaxed);
}
inline void SetSerialEscalationStreak(std::uint64_t streak) {
  internal::EscalationStreakVar().store(streak, std::memory_order_relaxed);
}

// Thread-local contention-management counters, one set per TM domain; same
// probe idiom as ValProbe/ClockProbe — tests and benches assert deltas.
template <typename DomainTag>
struct CmProbe {
  struct Counters {
    std::uint64_t escalations = 0;      // serial-mode entries
    std::uint64_t serial_commits = 0;   // commits under the token
    std::uint64_t backoff_spins = 0;    // phase-1 spins actually waited
    std::uint64_t max_abort_streak = 0; // streak high-water since Reset()
    // Replay identity of the LAST descriptor that backed off / escalated on
    // this thread (see TxDesc::NextBackoffSerial): with the fail-point seed,
    // these two values make an injected-schedule failure reproducible from
    // the probe dump alone. Latest-value gauges, not deltas.
    std::uint64_t backoff_serial = 0;
    std::uint64_t backoff_seed = 0;
  };

  static Counters& Tls() {
    thread_local Counters c;
    return c;
  }
  static Counters Get() { return Tls(); }
  static void Reset() { Tls() = Counters{}; }
};

// The serialization token, one per TM domain. Distributed reader-writer
// style: committers announce themselves in a per-thread-slot flag (their own
// cache line — the common no-serial case stays contention-free), the serial
// side owns a single pointer word.
//
// Committer:  flag++ (seq_cst);  owner = load(seq_cst);
//             owner set and not self -> flag--, fail fast.
// Serial:     CAS owner nullptr->desc (seq_cst);  spin until all flags == 0.
//
// Both sides write-then-read with seq_cst, so in the total order either the
// committer sees the owner (and retreats) or the serial side sees the
// committer's flag (and waits him out) — they can never both proceed.
template <typename DomainTag>
class SerialGate {
 public:
  // Committer fast path. Call before the FIRST lock acquisition of the
  // attempt (commit time for the full engines, encounter time for the short
  // ones). False means a serial transaction holds the token: fail fast,
  // abort the attempt, retry through backoff.
  static bool TryEnterCommitter(TxDesc* self) {
    std::atomic<std::uint32_t>& flag = committers_[self->thread_slot].value;
    flag.fetch_add(1, std::memory_order_seq_cst);
    // THE Dekker window: flag raised, owner not yet examined. A serial
    // acquirer interleaved here must see the flag (and drain us) because both
    // sides are seq_cst — the schedule point lets the explorer drive every
    // interleaving through the gap instead of sampling it.
    SPECTM_SCHED_POINT(failpoint::Site::kSerialGateEnter);
    TxDesc* owner = serial_owner_.load(std::memory_order_seq_cst);
    if (owner != nullptr && owner != self) {
      flag.fetch_sub(1, std::memory_order_release);
      return false;
    }
    return true;
  }

  // Blocking variant for single-op writers, which have no abort/retry loop of
  // their own. Bounded by the serial transaction's solo execution.
  static void EnterCommitterWait(TxDesc* self) {
    while (!TryEnterCommitter(self)) {
      SPECTM_SCHED_SPIN(failpoint::Site::kSerialGateEnter);
      CpuRelax();
    }
  }

  // Matches every successful TryEnterCommitter/EnterCommitterWait, on commit
  // AND abort paths. Runs on exception-unwind paths, so the plant is a pure
  // schedule point (never injects, never throws).
  static void ExitCommitter(TxDesc* self) {
    SPECTM_SCHED_POINT(failpoint::Site::kSerialGateExit);
    committers_[self->thread_slot].value.fetch_sub(1, std::memory_order_release);
  }

  // Serial side: take the token (spinning out any other serial owner), then
  // drain every announced committer. After this returns, no other committer
  // can hold or acquire a lock in this domain until ReleaseSerial.
  static void AcquireSerial(TxDesc* self) {
    TxDesc* expected = nullptr;
    while (!serial_owner_.compare_exchange_weak(expected, self,
                                                std::memory_order_seq_cst,
                                                std::memory_order_relaxed)) {
      expected = nullptr;
      SPECTM_SCHED_SPIN(failpoint::Site::kSerialTokenAcquire);
      CpuRelax();
    }
    const int bound = ThreadRegistry::IdBound();
    for (int i = 0; i < bound; ++i) {
      if (i == self->thread_slot) {
        continue;  // never self-drain (defensive; serial attempts skip the gate)
      }
      while (committers_[i].value.load(std::memory_order_seq_cst) != 0) {
        // Forced hand-off, not a decision: under cooperative control the
        // announced committer is parked and must run to retract its flag.
        SPECTM_SCHED_SPIN(failpoint::Site::kSerialTokenAcquire);
        CpuRelax();
      }
    }
    // Token held, drain complete: from here no committer may pass the gate
    // until ReleaseSerial. The explorer asserts exactly that.
    SPECTM_SCHED_POINT(failpoint::Site::kSerialTokenAcquire);
  }

  // Release on EVERY exit from serial mode — commit, user abort, or a forced
  // (fail-point) abort — or the domain wedges. Unwind path: pure plant only.
  static void ReleaseSerial(TxDesc* self) {
    (void)self;
    SPECTM_SCHED_POINT(failpoint::Site::kSerialTokenRelease);
    serial_owner_.store(nullptr, std::memory_order_seq_cst);
  }

  static TxDesc* SerialOwner() {
    return serial_owner_.load(std::memory_order_acquire);
  }

  // Diagnostic/test helper: the sum of every announced committer flag. A
  // cleanly unwound domain reads 0 here — exception_safety_test asserts it
  // after every injected throw, because a leaked flag is invisible to normal
  // traffic right up until the next AcquireSerial spins on it forever.
  static std::uint64_t AnnouncedCommitters() {
    std::uint64_t n = 0;
    const int bound = ThreadRegistry::IdBound();
    for (int i = 0; i < bound; ++i) {
      n += committers_[i].value.load(std::memory_order_acquire);
    }
    return n;
  }

 private:
  static inline std::atomic<TxDesc*> serial_owner_{nullptr};
  static inline CacheAligned<std::atomic<std::uint32_t>>
      committers_[ThreadRegistry::kMaxThreads]{};
};

// Policy glue the engines call. Keeps the watchdog/hysteresis arithmetic in
// one place so all four engines agree on when to escalate.
template <typename DomainTag>
struct SerialCm {
  using Gate = SerialGate<DomainTag>;
  using Probe = CmProbe<DomainTag>;

  // Consult at attempt start: does the streak warrant serial mode? During a
  // cooldown the threshold is doubled (hysteresis), so a descriptor that just
  // went serial must earn the next escalation against a higher bar. While the
  // health watchdog holds the domain degraded, escalation is DECLINED outright
  // (and counted in HealthProbe::throttled_escalations): under an abort storm
  // every streak saturates at once, and serializing them all converts the
  // storm into a gate convoy — widened backoff is the storm response instead.
  static bool ShouldEscalate(const TxDesc& desc) {
    const std::uint64_t threshold = SerialEscalationStreak();
    if (threshold == 0) {
      return false;
    }
    const std::uint64_t effective =
        desc.cm_cooldown > 0 ? threshold * 2 : threshold;
    if (desc.backoff.attempts() < effective) {
      return false;
    }
    if (health::EscalationThrottled<DomainTag>()) {
      return false;
    }
    return true;
  }

  // Call at every attempt start (all four engines' Start/Reset paths route
  // here): feeds the watchdog's serial-gate hold-count signal — K consecutive
  // attempt starts observing a FOREIGN token holder degrade the domain.
  static void NoteAttemptStart(TxDesc& desc) {
#if defined(SPECTM_HEALTH)
    TxDesc* owner = Gate::SerialOwner();
    const bool foreign = owner != nullptr && owner != &desc;
    if (health::NoteAttemptStart<DomainTag>(desc.backoff, foreign) ==
        health::Event::kDegraded) {
      EmitHealthSnapshot(desc);
    }
#else
    static_cast<void>(desc);
#endif
  }

  // Phase-1 backoff plus watchdog accounting, called on every contention
  // abort. Returns the streak so callers can log/assert on it.
  static std::uint64_t NoteAbortBackoff(TxDesc& desc) {
    typename Probe::Counters& probe = Probe::Tls();
    probe.backoff_spins += desc.backoff.OnAbort();
    probe.backoff_serial = desc.backoff_serial;
    probe.backoff_seed = desc.backoff_seed;
    const std::uint64_t streak = desc.backoff.attempts();
    if (streak > probe.max_abort_streak) {
      probe.max_abort_streak = streak;
    }
    if (streak > desc.stats.max_abort_streak.load(std::memory_order_relaxed)) {
      desc.stats.max_abort_streak.store(streak, std::memory_order_relaxed);
    }
#if defined(SPECTM_HEALTH)
    if (health::OnOutcome<DomainTag>(desc.backoff, /*committed=*/false) ==
        health::Event::kDegraded) {
      EmitHealthSnapshot(desc);
    }
#endif
    return streak;
  }

  static void NoteEscalated(TxDesc& desc) {
    typename Probe::Counters& probe = Probe::Tls();
    ++probe.escalations;
    probe.backoff_serial = desc.backoff_serial;
    probe.backoff_seed = desc.backoff_seed;
  }

  static void OnOptimisticCommit(TxDesc& desc) {
    desc.backoff.OnCommit();
    if (desc.cm_cooldown > 0) {
      --desc.cm_cooldown;
    }
#if defined(SPECTM_HEALTH)
    health::OnOutcome<DomainTag>(desc.backoff, /*committed=*/true);
#endif
  }

  static void OnSerialCommit(TxDesc& desc) {
    desc.backoff.OnCommit();
    desc.cm_cooldown = kSerialCooldownCommits;
    ++Probe::Tls().serial_commits;
#if defined(SPECTM_HEALTH)
    health::OnOutcome<DomainTag>(desc.backoff, /*committed=*/true);
#endif
  }

#if defined(SPECTM_HEALTH)
  // Assembled here rather than in health.h because only this layer can see
  // both sides: the generic watchdog state AND the domain's CM/stat probes.
  // Stored per-thread (health::LastSnapshot<DomainTag>()); together with the
  // fail-point seed, backoff_serial + backoff_seed make the failing schedule
  // replayable from this dump alone.
  static void EmitHealthSnapshot(TxDesc& desc) {
    const typename Probe::Counters cm = Probe::Get();
    const health::Counters h = health::HealthProbe<DomainTag>::Get();
    const TxStatsRegistry::Totals totals = TxStatsRegistry::Snapshot();
    health::SnapshotBuilder b;
    b.Add("commits", totals.commits)
        .Add("aborts", totals.aborts)
        .Add("max_abort_streak", totals.max_abort_streak)
        .Add("escalations", cm.escalations)
        .Add("serial_commits", cm.serial_commits)
        .Add("backoff_spins", cm.backoff_spins)
        .Add("probe_max_abort_streak", cm.max_abort_streak)
        .Add("backoff_serial", desc.backoff_serial)
        .Add("backoff_seed", desc.backoff_seed)
        .Add("streak", desc.backoff.attempts())
        .Add("cooldown", desc.cm_cooldown)
        .Add("backoff_widening", desc.backoff.widening())
        .Add("health_samples", h.samples)
        .Add("health_storms", h.storms)
        .Add("degrade_enters", h.degrade_enters)
        .Add("degrade_exits", h.degrade_exits)
        .Add("throttled_escalations", h.throttled_escalations)
        .Add("gate_overruns", h.gate_overruns)
        .Add("ring_saturated_windows", h.ring_saturated_windows)
        .Add("ring_intersect_fails", health::RingGauge<DomainTag>());
    health::StoreSnapshot<DomainTag>(b.Finish());
  }
#endif
};

}  // namespace spectm

#endif  // SPECTM_TM_SERIAL_H_
