#include "src/tm/txdesc.h"

#include <mutex>
#include <vector>

namespace spectm {
namespace {

struct RegistryState {
  std::mutex mu;
  std::vector<TxStats*> live;
  // Counts carried over from descriptors whose threads have exited.
  std::uint64_t retained_commits = 0;
  std::uint64_t retained_aborts = 0;
  std::uint64_t retained_max_streak = 0;
};

RegistryState& State() {
  static RegistryState* s = new RegistryState;  // leaked: outlives TLS destructors
  return *s;
}

}  // namespace

void TxStatsRegistry::Register(TxStats* stats) {
  RegistryState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.live.push_back(stats);
}

void TxStatsRegistry::Unregister(TxStats* stats) {
  RegistryState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  for (std::size_t i = 0; i < s.live.size(); ++i) {
    if (s.live[i] == stats) {
      s.retained_commits += stats->commits.load(std::memory_order_relaxed);
      s.retained_aborts += stats->aborts.load(std::memory_order_relaxed);
      const std::uint64_t streak =
          stats->max_abort_streak.load(std::memory_order_relaxed);
      if (streak > s.retained_max_streak) {
        s.retained_max_streak = streak;
      }
      s.live[i] = s.live.back();
      s.live.pop_back();
      return;
    }
  }
}

TxStatsRegistry::Totals TxStatsRegistry::Snapshot() {
  RegistryState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  Totals t;
  t.commits = s.retained_commits;
  t.aborts = s.retained_aborts;
  t.max_abort_streak = s.retained_max_streak;
  for (const TxStats* stats : s.live) {
    t.commits += stats->commits.load(std::memory_order_relaxed);
    t.aborts += stats->aborts.load(std::memory_order_relaxed);
    const std::uint64_t streak =
        stats->max_abort_streak.load(std::memory_order_relaxed);
    if (streak > t.max_abort_streak) {
      t.max_abort_streak = streak;
    }
  }
  return t;
}

void TxStatsRegistry::ResetMaxStreak() {
  RegistryState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.retained_max_streak = 0;
  for (TxStats* stats : s.live) {
    stats->max_abort_streak.store(0, std::memory_order_relaxed);
  }
}

}  // namespace spectm
