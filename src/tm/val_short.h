// SpecTM short transactions over the `val` layout (§2.4) — the paper's fastest
// variant ("val-short"), matching lock-free CAS-based code within a few percent.
//
// Mechanics relative to short_tm.h:
//   * an RW read is a single CAS (value -> owner|1); the displaced value both *is*
//     the read result and the abort-restore record;
//   * commit is a plain release store per location — data and meta-data update in one
//     atomic write, no version to publish, no clock to increment;
//   * RO validation compares values; a locked word can never equal a recorded value
//     (bit 0), so lock detection is free;
//   * the general-case safety net is the ValidationPolicy commit counter (see
//     val_word.h); the default NonReuseValidation makes it a no-op.
//
// Single-operation transactions collapse to bare atomic instructions: SingleRead is
// one load, SingleCas one compare-and-swap — this is precisely how val-short "closes
// the gap with the performance of the CAS-based implementation" (§2.4).
#ifndef SPECTM_TM_VAL_SHORT_H_
#define SPECTM_TM_VAL_SHORT_H_

#include <atomic>
#include <cassert>
#include <initializer_list>

#include "src/common/cacheline.h"
#include "src/common/failpoint.h"
#include "src/common/inline_vec.h"
#include "src/common/tagged.h"
#include "src/epoch/epoch.h"
#include "src/tm/config.h"
#include "src/tm/mvcc.h"
#include "src/tm/serial.h"
#include "src/tm/txdesc.h"
#include "src/tm/txguard.h"
#include "src/tm/val_word.h"
#include "src/tm/valstrategy.h"

namespace spectm {

struct ValDomainTag {};

template <typename ValidationT, ValMode kMode = ValMode::kCounterSkip>
class ValShortTm {
 public:
  using Validation = ValidationT;
  using Slot = ValSlot;
  using Probe = ValProbe<ValDomainTag>;
  using Cm = SerialCm<ValDomainTag>;
  using Gate = SerialGate<ValDomainTag>;
  static constexpr ValMode kValMode = kMode;
  static constexpr bool kStrategic = Validation::kPrecise;
  static constexpr bool kSnapshotMode = kMode == ValMode::kSnapshot;
  static_assert(!kSnapshotMode || Validation::kMvcc,
                "ValMode::kSnapshot requires a kMvcc validation policy");

  class ShortTx {
   public:
    ShortTx() : desc_(&DescOf<ValDomainTag>()) { StartAttempt(); }
    ~ShortTx() {
      if (!finished_) {
        Abort();
      }
    }
    ShortTx(const ShortTx&) = delete;
    ShortTx& operator=(const ShortTx&) = delete;

    // Encounter-time locking in one CAS; the displaced word is the value read.
    Word ReadRw(Slot* s) {
      assert(!finished_);
      if (!valid_) {
        return 0;
      }
      // Contract violation (§2.2) must not become memory corruption in release
      // builds: invalidate instead of pushing past the InlineVec bound.
      if (rw_.Full()) {
        UnwindForOverflow();
        return 0;
      }
      // First lock makes this attempt a committer: announce at the gate so a
      // serial-irrevocable transaction (src/tm/serial.h) can exclude us; fail
      // fast while the token is held.
      if (!EnterGateForFirstLock()) {
        return 0;
      }
      if (SPECTM_FAILPOINT(failpoint::Site::kLockAcquire)) {
        valid_ = false;
        return 0;
      }
      Word w = s->word.load(std::memory_order_relaxed);
      while (true) {
        if (ValIsLocked(w)) {
          assert(ValOwnerOf(w) != desc_ && "accesses must name distinct locations");
          valid_ = false;  // conservative deadlock avoidance (§2.4)
          return 0;
        }
        if (s->word.compare_exchange_weak(w, MakeValLocked(desc_),
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
          rw_.PushBack(RwEntry{s, w});
          return w;
        }
      }
    }

    // Invisible read; value recorded for later validation. Earlier entries are
    // revalidated so the caller always sees a consistent prefix.
    Word ReadRo(Slot* s) {
      assert(!finished_);
      if (!valid_) {
        return 0;
      }
      if (ro_.Full()) {  // overflow invalidates instead of corrupting (see ReadRw)
        UnwindForOverflow();
        return 0;
      }
      if constexpr (kSnapshotMode) {
        // Snapshot phase: one chain traversal at the pinned stamp — no
        // incremental revalidation of the earlier entries, ever.
        if (snapshot_phase_) {
          return SnapshotReadRo(s);
        }
      }
      const Word w = s->word.load(std::memory_order_acquire);
      if (ValIsLocked(w)) {
        assert(ValOwnerOf(w) != desc_ && "RO and RW sets must be disjoint");
        valid_ = false;
        return 0;
      }
      if (SPECTM_FAILPOINT(failpoint::Site::kPostReadPreSandwich)) {
        valid_ = false;
        return 0;
      }
      // Fast path: the first RO entry is trivially consistent on its own (RW entries
      // are pinned by our locks), so only subsequent reads pay the revalidation.
      const bool first_ro = ro_.Empty();
      ro_.PushBack(RoEntry{s, w, /*upgraded=*/false});
      if constexpr (kStrategic) {
        state_.NoteRead(&s->word);
      }
      if (!first_ro) {
        // Strategy fast paths (valstrategy.h StrategyState): the persistent
        // anchor names a counter value at which the whole RO log was
        // simultaneously valid (every entry was read unlocked, so any writer
        // that bumped before the anchor had already released these words). A
        // stable counter — or all-disjoint intervening write blooms — lets the
        // read-set walk be skipped and the value just read join a still-valid
        // snapshot.
        bool ok;
        if constexpr (kStrategic) {
          ok = state_.TrySkipRead(&desc_->stats) ==
                   StratState::ReadSkip::kSkipped ||
               ValidateRo();
        } else {
          ok = ValidateRo();
        }
        if (!ok) {
          valid_ = false;
          return 0;
        }
      }
      return w;
    }

    bool Valid() const { return valid_; }

    // Value-based validation of the RO set (Tx_RO_k_Is_Valid). Under a counter-based
    // ValidationPolicy this loops until the commit counter is stable across a full
    // value re-check (NOrec-style), re-anchoring the persistent sample so later
    // reads can skip; under NonReuseValidation it is one pass.
    bool ValidateRo() const {
      if (SPECTM_FAILPOINT(failpoint::Site::kPreValidate)) {
        return false;
      }
      ++Probe::Get().validation_walks;
      typename StratState::Snapshot snap = state_.DrawSnapshot();
      while (true) {
        for (const RoEntry& e : ro_) {
          if (e.upgraded) {
            continue;  // pinned by our own lock
          }
          if (e.slot->word.load(std::memory_order_acquire) != e.value) {
            return false;  // changed — or locked, which can never equal a value
          }
        }
        if (Validation::Stable(snap.global)) {
          state_.ReanchorStable(snap);
          return true;
        }
        snap = state_.DrawSnapshot();
      }
    }

    // Tx_Upgrade_RO_x_To_RW_y: lock the location at exactly the value observed.
    bool UpgradeRoToRw(int ro_index) {
      assert(!finished_);
      if (!valid_) {
        return false;
      }
      assert(ro_index >= 0 && static_cast<std::size_t>(ro_index) < ro_.Size());
      if (rw_.Full()) {  // overflow invalidates instead of corrupting (see ReadRw)
        UnwindForOverflow();
        return false;
      }
      if (!EnterGateForFirstLock()) {  // upgrades lock too (see ReadRw)
        return false;
      }
      if (SPECTM_FAILPOINT(failpoint::Site::kLockAcquire)) {
        valid_ = false;
        return false;
      }
      RoEntry& e = ro_[static_cast<std::size_t>(ro_index)];
      Word expected = e.value;
      if (!e.slot->word.compare_exchange_strong(expected, MakeValLocked(desc_),
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
        valid_ = false;
        return false;
      }
      e.upgraded = true;
      rw_.PushBack(RwEntry{e.slot, e.value});
      return true;
    }

    // Tx_RW_k_Commit: one release store per location — store value == release lock.
    // Always succeeds (encounter-time locks pin the read set); bool for interface
    // parity with fine-grained adapters.
    bool CommitRw(std::initializer_list<Word> values) {
      assert(valid_ && !finished_);
      assert(values.size() == rw_.Size() && "commit arity must match RW access count");
      // Before the stores, while locks are held.
      [[maybe_unused]] const Word own_idx = PublishWriterSummary();
      if constexpr (kSnapshotMode) {
        PublishShortVersions(own_idx);
      }
      const Word* v = values.begin();
      for (std::size_t i = 0; i < rw_.Size(); ++i) {
        assert((v[i] & kLockBit) == 0 && "val layout reserves bit 0 (use EncodeInt)");
        rw_[i].slot->word.store(v[i], std::memory_order_release);
      }
      Finish(/*committed=*/true);
      return true;
    }

    // Tx_RO_x_RW_y_Commit: validate the remaining RO entries, then commit.
    //
    // Writer-summary order: bump-and-publish BEFORE the final RO validation
    // (bump-before-validate, valstrategy.h); the own-idx skip test keeps two
    // crossing committers from passing each other. A pure-RO mixed commit holds
    // no locks, publishes nothing, and validates the ordinary way.
    bool CommitMixed(std::initializer_list<Word> values) {
      assert(valid_ && !finished_);
      assert(values.size() == rw_.Size());
      bool ro_ok;
      [[maybe_unused]] Word own_idx = 0;
      if constexpr (kStrategic) {
        if (rw_.Empty()) {
          // A pure-RO snapshot commit never promoted (promotion rides the
          // first lock): the log is simultaneously valid at the pinned stamp
          // by construction — no validation at all, the tentpole property.
          if constexpr (kSnapshotMode) {
            ro_ok = snapshot_phase_ || ValidateRo();
          } else {
            ro_ok = ValidateRo();
          }
        } else {
          unsigned write_stripes = 0;
          own_idx = PublishWriterSummary(&write_stripes);
          ro_ok = state_.TrySkipCommit(own_idx, write_stripes) || ValidateRo();
        }
      } else {
        ro_ok = ValidateRo();
      }
      if (!ro_ok) {
        Abort();
        return false;
      }
      if constexpr (kSnapshotMode) {
        if (!rw_.Empty()) {
          PublishShortVersions(own_idx);  // locks still held
        }
      }
      const Word* v = values.begin();
      for (std::size_t i = 0; i < rw_.Size(); ++i) {
        assert((v[i] & kLockBit) == 0 && "val layout reserves bit 0 (use EncodeInt)");
        rw_[i].slot->word.store(v[i], std::memory_order_release);
      }
      Finish(/*committed=*/true);
      return true;
    }

    // Tx_RW_k_Abort: put the displaced values back. Restores, never publishes: no
    // value was released, so the commit counter must not move.
    void Abort() {
      UnpinIfPinned();
      // After an overflow unwind the displaced values were already restored —
      // re-storing them here would clobber whatever other transactions
      // committed into those slots since.
      if (!unwound_) {
        RestoreDisplacedValues();
      }
      // Values restored BEFORE the gate exit: a draining serial transaction
      // must never observe flags at zero while our locks stand.
      ExitGateIfHeld();
      ReleaseSerialIfHeld();
      const bool untouched = rw_.Empty() && ro_.Empty() && valid_;
      // A still-valid, read-only record being dropped is the paper's normal RO
      // completion/cleanup pattern ("successful validation serves in the place of
      // commit"), not contention — keep it out of the abort-rate EWMA that
      // steers the adaptive engine, while the raw abort statistic keeps its
      // historical meaning.
      const bool contention = !(rw_.Empty() && valid_);
      finished_ = true;
      valid_ = false;
      if (!untouched) {
        desc_->stats.aborts.fetch_add(1, std::memory_order_relaxed);
        if (contention) {
          UpdateAbortEwma(desc_->stats, /*aborted=*/true);
          // Phase-1 backoff + streak watchdog (the seed retried short
          // transactions hot; see short_tm.h).
          Cm::NoteAbortBackoff(*desc_);
        }
      }
    }

    void Reset() {
      if (!finished_) {
        Abort();
      }
      rw_.Clear();
      ro_.Clear();
      valid_ = true;
      finished_ = false;
      unwound_ = false;
      StartAttempt();
    }

    std::size_t RwCount() const { return rw_.Size(); }
    std::size_t RoCount() const { return ro_.Size(); }

   private:
    struct RwEntry {
      Slot* slot;
      Word old_value;
    };
    struct RoEntry {
      Slot* slot;
      Word value;
      bool upgraded;
    };

    // Re-arms the strategy state for a fresh attempt (StrategyState: choose +
    // probe tick + anchor drawn BEFORE any read — the skip soundness argument
    // needs the sample no later than the first read). Also the escalation
    // checkpoint (src/tm/serial.h): past the hysteretic abort-streak threshold
    // the attempt takes the serialization token up front. Serial commits still
    // publish the writer summary below — concurrent readers' skip anchors
    // depend on it (VALIDATION.md "Serial-irrevocable interop").
    void StartAttempt() {
      // Health watchdog attempt-start feed (no-op unless SPECTM_HEALTH):
      // observes foreign serial holds before the escalation decision below,
      // and refreshes the ring-saturation gauge from this thread's intersect
      // failures so the window close in OnOutcome sees the current level.
      Cm::NoteAttemptStart(*desc_);
      if constexpr (health::kEnabled && Validation::kHasBloomRing) {
        health::SetRingGauge<ValDomainTag>(
            Validation::Summary::Fails().intersect);
      }
      if (!serial_ && Cm::ShouldEscalate(*desc_)) {
        Gate::AcquireSerial(desc_);
        serial_ = true;
        Cm::NoteEscalated(*desc_);
      }
      if constexpr (kStrategic) {
        state_.StartAttempt(kMode, Validation::kHasBloomRing, desc_->stats);
      }
      if constexpr (kSnapshotMode) {
        // Two-step pin (epoch.h): announce intent, sample, publish — the
        // done-stamp scan can never miss a pin below its clock bound. The
        // epoch Guard spans the pin so retired chain nodes' memory outlives
        // any pointer this transaction may still dereference (mvcc.h).
        EpochManager& mgr = mvcc::MvccEpoch();
        chain_guard_.Acquire(mgr);
        mgr.BeginSnapshotPin();
        snapshot_ts_ = Validation::Sample();
        mgr.SetSnapshotPin(snapshot_ts_);
        pinned_ = true;
        snapshot_phase_ = true;
      }
    }

    // Restores every displaced value recorded in the RW set. Shared by Abort()
    // and the overflow unwind; the value store is also the lock release.
    void RestoreDisplacedValues() {
      for (const RwEntry& e : rw_) {
        if constexpr (kSnapshotMode) {
          // A throw inside the publish window leaves our unstamped node at
          // the head: tombstone it while the lock still stands (mvcc.h).
          mvcc::TombstoneUnstampedHead(e.slot->versions);
        }
        e.slot->word.store(e.old_value, std::memory_order_release);
      }
    }

    // Contract-overflow unwind (§2.2 violations surfaced safely): restores the
    // displaced values, retracts the gate flag, and releases the serial token —
    // the same mandatory order as Abort() — the moment the overflow is
    // detected, instead of holding every lock until the caller notices
    // Valid() == false and aborts. The recorded access arrays are kept intact
    // (RwCount()/RoCount() still describe the overflowing transaction for
    // diagnosis); Abort() skips its restore loop afterwards, because the
    // released slots may since have been re-locked and committed by others.
    // Kept out of line: this is a cold contract-violation path, and inlining
    // it into the access fast paths only bloats them (and trips GCC's
    // flow-insensitive maybe-uninitialized analysis on the InlineVec storage).
#if defined(__GNUC__)
    __attribute__((cold, noinline))
#endif
    void UnwindForOverflow() {
      RestoreDisplacedValues();
      ExitGateIfHeld();
      ReleaseSerialIfHeld();
      unwound_ = true;
      valid_ = false;
    }

    bool EnterGateForFirstLock() {
      if constexpr (kSnapshotMode) {
        if (snapshot_phase_) {
          // Write promotion: leave the snapshot and bring the read log to
          // "now" — one value-based walk at a stable clock point, after which
          // the ordinary stripe protocol governs the rest of the attempt.
          snapshot_phase_ = false;
          if (!ro_.Empty() && !ValidateRo()) {
            valid_ = false;
            return false;
          }
        }
      }
      if (serial_ || gated_) {
        return true;
      }
      if (!Gate::TryEnterCommitter(desc_)) {
        valid_ = false;  // token held: fail fast, restart via Abort/Reset
        return false;
      }
      gated_ = true;
      return true;
    }

    void ExitGateIfHeld() {
      if (gated_) {
        Gate::ExitCommitter(desc_);
        gated_ = false;
      }
    }

    void ReleaseSerialIfHeld() {
      if (serial_) {
        Gate::ReleaseSerial(desc_);
        serial_ = false;
      }
    }

    // Writer-side summary: bump the commit counter — only the stripes this write
    // set touches, under a partitioned policy — and publish the write-set bloom,
    // while all locks are held, before the releasing stores and before any final
    // commit validation (valstrategy.h ordering). Returns the writer's own commit
    // index (0 when the policy has none) and, via `out_stripes`, the bumped
    // stripe mask for the partitioned commit-skip test. A pure-RO commit (empty
    // RW set) releases nothing and must not move the counter.
    Word PublishWriterSummary(unsigned* out_stripes = nullptr) {
      if (rw_.Empty()) {
        return 0;
      }
      ++Probe::Get().summary_publishes;
      if constexpr (Validation::kHasBloomRing) {
        Bloom128 bloom;
        unsigned stripes = 0;
        for (const RwEntry& e : rw_) {
          bloom |= AddrBloom128(&e.slot->word);
          stripes |= 1u << CounterStripeOf(&e.slot->word);
        }
        if (out_stripes != nullptr) {
          *out_stripes = stripes;
        }
        if constexpr (Validation::kPartitioned) {
          Probe::Get().stripe_bumps +=
              static_cast<std::uint64_t>(CountStripeBits(stripes));
        }
        return Validation::OnWriterCommitWithBloom(desc_, bloom, stripes);
      } else {
        if (out_stripes != nullptr) {
          *out_stripes = kAllCounterStripesMask;
        }
        return Validation::OnWriterCommitWithBloom(desc_, Bloom128All(),
                                                   kAllCounterStripesMask);
      }
    }

    void Finish(bool committed) {
      UnpinIfPinned();
      // The releasing stores already happened; the gate can drop now (and
      // must not before — see Abort()).
      ExitGateIfHeld();
      finished_ = true;
      valid_ = false;
      if (committed) {
        desc_->stats.commits.fetch_add(1, std::memory_order_relaxed);
        UpdateAbortEwma(desc_->stats, /*aborted=*/false);
        if (serial_) {
          Gate::ReleaseSerial(desc_);
          serial_ = false;
          Cm::OnSerialCommit(*desc_);
        } else {
          Cm::OnOptimisticCommit(*desc_);
        }
      } else {
        ReleaseSerialIfHeld();
      }
    }

    // --- MVCC snapshot machinery (compiled only under kSnapshotMode) -------

    // One snapshot-phase RO read: a single chain traversal at the pinned
    // stamp, logged like any other RO entry (promotion revalidates the log at
    // "now", so a stale snapshot value correctly fails the upgrade path).
    Word SnapshotReadRo(Slot* s) {
      while (true) {
        const SnapshotReadResult r = SnapshotReadSlot(s, snapshot_ts_);
        if (r.ok) {
          typename Probe::Counters& probe = Probe::Get();
          ++probe.snapshot_reads;
          probe.version_hops += static_cast<std::uint64_t>(r.hops);
          ro_.PushBack(RoEntry{s, r.value, /*upgraded=*/false});
          if constexpr (kStrategic) {
            state_.NoteRead(&s->word);
          }
          return r.value;
        }
        if (!RefreshShortSnapshot()) {
          valid_ = false;
          return 0;
        }
      }
    }

    // Truncation fallback (see val_full.h RefreshSnapshot): re-pin forward
    // and prove the existing log simultaneously valid at a stable point.
    bool RefreshShortSnapshot() {
      EpochManager& mgr = mvcc::MvccEpoch();
      mgr.BeginSnapshotPin();
      snapshot_ts_ = Validation::Sample();
      mgr.SetSnapshotPin(snapshot_ts_);
      if (ro_.Empty()) {
        return true;
      }
      if (!ValidateRo()) {
        return false;
      }
      snapshot_ts_ = state_.sample();
      return true;
    }

    // Threads every displaced value onto its slot's chain, stamped with this
    // commit's clock index. Locks held for the whole loop.
    void PublishShortVersions(Word own_idx) {
      mvcc::NodePool& pool = mvcc::Pool();
      const Word done =
          mvcc::MvccEpoch().SnapshotDoneStamp(Validation::Sample());
      mvcc::PublishStats pub;
      for (const RwEntry& e : rw_) {
        mvcc::PublishVersion(e.slot->versions, e.old_value, own_idx, done,
                             pool, &pub);
      }
      pool.DrainDeferred(done);
      typename Probe::Counters& probe = Probe::Get();
      probe.versions_retired += static_cast<std::uint64_t>(pub.retired);
      probe.chain_splices += static_cast<std::uint64_t>(pub.splices);
    }

    void UnpinIfPinned() {
      if constexpr (kSnapshotMode) {
        if (pinned_) {
          mvcc::MvccEpoch().UnpinSnapshot();
          pinned_ = false;
          chain_guard_.Release();
        }
      }
    }

    using StratState = StrategyState<Validation, Probe>;

    TxDesc* desc_;
    InlineVec<RwEntry, kMaxShortWrites> rw_;
    InlineVec<RoEntry, kMaxShortReads> ro_;
    StratState state_;
    bool valid_ = true;
    bool finished_ = false;
    bool unwound_ = false;  // overflow unwind already restored the values
    bool serial_ = false;   // this attempt holds the serialization token
    bool gated_ = false;    // this attempt announced itself as a committer
    // Snapshot mode only (dead otherwise): pinned read stamp, pin-published
    // flag, whether reads still run through the chains, and the epoch Guard
    // held for the pin's duration (keeps retired chain nodes' memory alive
    // past any pointer this transaction may still hold).
    Word snapshot_ts_ = 0;
    bool pinned_ = false;
    bool snapshot_phase_ = false;
    EpochManager::GuardSlot chain_guard_;
  };

  // --- Single-operation transactions --------------------------------------------------

  // One atomic load (spinning past transient locks). Under kSnapshotMode the
  // lock may cover a publish window (mvcc.h) and the unstamped head holds the
  // still-current value — but reading it through the chain is unsound without
  // a snapshot pin: node memory is recycled pool-side once selection-dead, so
  // an unpinned dereference can land on a node already reused for a different
  // slot's publish (ABA on the head pointer defeats any revalidation). The
  // window is a handful of owner instructions; spin it out like any lock.
  static Word SingleRead(Slot* s) {
    while (true) {
      const Word w = s->word.load(std::memory_order_acquire);
      if (!ValIsLocked(w)) {
        return w;
      }
      SPECTM_SCHED_SPIN(failpoint::Site::kLockAcquire);
      CpuRelax();
    }
  }

  // One atomic CAS from the observed unlocked value to the new value: never clobbers
  // a concurrent owner's lock word.
  //
  // Counter protocol note: under a precise ValidationPolicy, single-op writers must
  // follow the same lock -> bump -> releasing-store discipline as every other
  // writer. A bare bump around an unlocked CAS is NOT enough: a writer that has
  // bumped but not yet stored is invisible to validators (nothing is locked), so a
  // reader sampling after the bump could log the pre-store value and then
  // counter-skip past the change. Precise policies therefore pay one extra atomic
  // (lock-displace, bump, store-release); NonReuseValidation keeps the paper's
  // single-CAS fast path, which is the whole point of the default val-short mode.
  static void SingleWrite(Slot* s, Word value) {
    assert((value & kLockBit) == 0 && "val layout reserves bit 0 (use EncodeInt)");
    // A committer like any other — including the bare-CAS non-reuse path: an
    // ungated single-op store could invalidate a serial transaction's value
    // log, the one abort serial mode promises away. Waits (no retry loop to
    // fail fast into), bounded by the serial transaction's solo execution.
    TxDesc* self = &DescOf<ValDomainTag>();
    Gate::EnterCommitterWait(self);
    // Unwind guard (src/tm/txguard.h): the bump under a precise policy hosts
    // pause-style fail points that can throw with the value lock displaced and
    // the gate flag announced. Serves the normal return too (never dismissed);
    // the lock guard below is destroyed first, restoring the displaced value
    // before the gate flag drops — the mandatory release order.
    TxUnwindGuard gate_guard([self] { Gate::ExitCommitter(self); });
    if constexpr (Validation::kPrecise) {
      Word w = s->word.load(std::memory_order_relaxed);
      while (true) {
        if (ValIsLocked(w)) {
          SPECTM_SCHED_SPIN(failpoint::Site::kLockAcquire);
          CpuRelax();
          w = s->word.load(std::memory_order_relaxed);
          continue;
        }
        if (s->word.compare_exchange_weak(w, MakeValLocked(self),
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
          break;
        }
      }
      TxUnwindGuard lock_guard([s, w] {
        if constexpr (kSnapshotMode) {
          // A throw inside the publish window below leaves our unstamped
          // node at the head: tombstone it while the lock still stands.
          mvcc::TombstoneUnstampedHead(s->versions);
        }
        s->word.store(w, std::memory_order_release);
      });
      if constexpr (Validation::kPartitioned) {
        ++Probe::Get().stripe_bumps;
      }
      [[maybe_unused]] const Word own_idx = Validation::OnWriterCommitWithBloom(
          self, AddrBloom128(&s->word), 1u << CounterStripeOf(&s->word));
      if constexpr (kSnapshotMode) {
        PublishSingleVersion(s, w, own_idx);
      }
      s->word.store(value, std::memory_order_release);
      lock_guard.Dismiss();  // the value store above was the lock release
      return;
    }
    Validation::OnWriterCommit(self);
    Word w = s->word.load(std::memory_order_relaxed);
    while (true) {
      if (ValIsLocked(w)) {
        SPECTM_SCHED_SPIN(failpoint::Site::kLockAcquire);
        CpuRelax();
        w = s->word.load(std::memory_order_relaxed);
        continue;
      }
      if (s->word.compare_exchange_weak(w, value, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        return;
      }
    }
  }

  // One atomic CAS — identical cost to raw hardware CAS (§2.4) under the default
  // non-reuse policy. Returns the observed value; success iff it equals `expected`.
  // Precise policies use the lock-displace protocol (see SingleWrite).
  static Word SingleCas(Slot* s, Word expected, Word desired) {
    assert((desired & kLockBit) == 0 && "val layout reserves bit 0 (use EncodeInt)");
    // Gated like SingleWrite, non-reuse path included (see the note there).
    TxDesc* self = &DescOf<ValDomainTag>();
    Gate::EnterCommitterWait(self);
    // Same guard pattern as SingleWrite: gate retract on every exit, value
    // restored first when the precise-path bump throws mid-publication.
    TxUnwindGuard gate_guard([self] { Gate::ExitCommitter(self); });
    if constexpr (Validation::kPrecise) {
      while (true) {
        Word w = s->word.load(std::memory_order_acquire);
        if (ValIsLocked(w)) {
          SPECTM_SCHED_SPIN(failpoint::Site::kLockAcquire);
          CpuRelax();
          continue;
        }
        if (w != expected) {
          return w;
        }
        if (s->word.compare_exchange_weak(w, MakeValLocked(self),
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
          // Locked at the expected value: bump (one location -> one stripe),
          // then store == release.
          TxUnwindGuard lock_guard([s, w] {
            if constexpr (kSnapshotMode) {
              // Tombstone a half-published node before the restoring store
              // releases the lock (see SingleWrite).
              mvcc::TombstoneUnstampedHead(s->versions);
            }
            s->word.store(w, std::memory_order_release);
          });
          if constexpr (Validation::kPartitioned) {
            ++Probe::Get().stripe_bumps;
          }
          [[maybe_unused]] const Word own_idx =
              Validation::OnWriterCommitWithBloom(
                  self, AddrBloom128(&s->word), 1u << CounterStripeOf(&s->word));
          if constexpr (kSnapshotMode) {
            PublishSingleVersion(s, w, own_idx);
          }
          s->word.store(desired, std::memory_order_release);
          lock_guard.Dismiss();  // the value store above was the lock release
          return expected;
        }
      }
    }
    Validation::OnWriterCommit(self);
    while (true) {
      Word w = s->word.load(std::memory_order_acquire);
      if (ValIsLocked(w)) {
        SPECTM_SCHED_SPIN(failpoint::Site::kLockAcquire);
        CpuRelax();
        continue;
      }
      if (w != expected) {
        return w;
      }
      if (s->word.compare_exchange_weak(w, desired, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        return expected;
      }
    }
  }

  static TxStats& StatsForCurrentThread() { return DescOf<ValDomainTag>().stats; }

 private:
  // Single-op precise-path version publish: one displaced value onto one
  // chain, stamped with the single-op's own commit index. Caller holds the
  // slot lock; called between the counter bump and the releasing store.
  static void PublishSingleVersion(Slot* s, Word displaced, Word own_idx) {
    mvcc::NodePool& pool = mvcc::Pool();
    const Word done = mvcc::MvccEpoch().SnapshotDoneStamp(Validation::Sample());
    mvcc::PublishStats pub;
    mvcc::PublishVersion(s->versions, displaced, own_idx, done, pool, &pub);
    pool.DrainDeferred(done);
    typename Probe::Counters& probe = Probe::Get();
    probe.versions_retired += static_cast<std::uint64_t>(pub.retired);
    probe.chain_splices += static_cast<std::uint64_t>(pub.splices);
  }
};

}  // namespace spectm

#endif  // SPECTM_TM_VAL_SHORT_H_
