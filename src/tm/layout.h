// Meta-data placement layouts for orec-based engines (Figure 3(a) and 3(b)).
//
// A Layout maps a transactional Slot (the thing data structures embed) to its data
// word and its ownership record:
//
//   OrecLayout — Slot is a bare word; the orec lives in a shared global table reached
//   through a hash of the slot address. Each transactional access touches two cache
//   lines and distinct slots can collide on one orec (§2.3).
//
//   TvarLayout — Slot is a TVar: the orec is co-located with the data word on the
//   same (16-byte-aligned) line, following STM-Haskell's TVar design (§2.3). One
//   cache line per access, one orec per location, no false conflicts.
//
// The `val` layout of Figure 3(c) has no separate orec at all and is implemented by
// dedicated engines (val_short.h / val_full.h).
//
// Layouts are additionally tagged by the clock policy's domain so that, e.g., the
// orec table used by global-clock structures is distinct from the one used by
// local-clock structures (their version-number disciplines are incompatible).
#ifndef SPECTM_TM_LAYOUT_H_
#define SPECTM_TM_LAYOUT_H_

#include <atomic>

#include "src/common/tagged.h"
#include "src/tm/config.h"
#include "src/tm/orec.h"

namespace spectm {

// Striping audit: the table packs eight 8-byte orecs per cache line, so two
// *adjacent table indices* share a line. That is deliberate — padding 2^20 orecs
// to a line each would inflate the table from 8 MB to 64 MB and evict the data it
// protects. What keeps dense packing from becoming systematic false sharing is the
// indexing policy (orec.h): under kHashed the Fibonacci hash scatters memory-
// adjacent slots to table indices ~2^61 apart (collision only at the 8/2^20 base
// probability); under kStriped the low address bits FORCE memory-adjacent slots
// into segment-distant lines. The global clock and per-thread descriptors are
// padded instead (clock.h, txdesc.h) because they are single hot words, not a
// footprint trade.
template <typename DomainTag, OrecStriping kStriping>
struct OrecLayoutBase {
  struct Slot {
    std::atomic<Word> value{0};
  };

  static std::atomic<Word>& Data(Slot& s) { return s.value; }

  static std::atomic<Word>& OrecOf(Slot& s) { return Table().ForAddr(&s); }

  static OrecTableT<kStriping>& Table() {
    // leaked: program-lifetime
    static OrecTableT<kStriping>* table = new OrecTableT<kStriping>(kOrecTableLog2);
    return *table;
  }
};

// The seed layout: hashed indexing, bit-for-bit the original behavior.
template <typename DomainTag>
struct OrecLayout : OrecLayoutBase<DomainTag, OrecStriping::kHashed> {};

// Cache-line-striped indexing ablation (bench/abl_readset_layout).
template <typename DomainTag>
struct OrecLayoutStriped : OrecLayoutBase<DomainTag, OrecStriping::kStriped> {};

template <typename DomainTag>
struct TvarLayout {
  // 2-word-aligned so the whole TVar sits on one cache line (§2.3).
  struct alignas(16) Slot {
    std::atomic<Word> orec{0};
    std::atomic<Word> value{0};
  };

  static std::atomic<Word>& Data(Slot& s) { return s.value; }
  static std::atomic<Word>& OrecOf(Slot& s) { return s.orec; }
};

}  // namespace spectm

#endif  // SPECTM_TM_LAYOUT_H_
