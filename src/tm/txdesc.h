// Per-thread transaction descriptor.
//
// §4.1: "all transactions executed by the same thread use the same per-thread
// transaction descriptor that is allocated and initialized at thread start-up".
// The descriptor owns the full-transaction logs (read log, hash write set, commit
// lock log) so they are allocated once and reused; short transactions keep their
// fixed-size location arrays on the stack (§2.2) and use the descriptor only as the
// lock-owner identity and for statistics.
//
// Each TM domain (meta-data layout x clock policy) has its own descriptor per thread,
// obtained via DescOf<DomainTag>(). Descriptors are never nested: SpecTM transactions
// do not compose (§2.2 "Code complexity"), so a thread runs at most one transaction
// per domain at a time.
#ifndef SPECTM_TM_TXDESC_H_
#define SPECTM_TM_TXDESC_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/backoff.h"
#include "src/common/cacheline.h"
#include "src/common/soa_log.h"
#include "src/common/tagged.h"
#include "src/common/thread_registry.h"
#include "src/common/write_set.h"

namespace spectm {

// Aggregate commit/abort counters, readable cross-thread (relaxed; statistics only).
// `abort_ewma_q16` is the per-descriptor abort-rate EWMA in Q16 fixed point
// (0 = never aborts, 65536 = always aborts). Only the owning thread writes it, on
// every commit/abort outcome; it rides on the same padded stats cache line because
// that line is already dirtied by the outcome counters. Atomic relaxed keeps
// cross-thread peeks (benches, the GV6 clock reading another view of the same
// descriptor) race-free without fencing the hot path.
struct TxStats {
  std::atomic<std::uint64_t> commits{0};
  std::atomic<std::uint64_t> aborts{0};
  std::atomic<std::uint32_t> abort_ewma_q16{0};
  // Validation-skip efficacy EWMA (Q16): fraction of recent skip-eligible
  // validation events that a counter/bloom skip actually absorbed. Starts
  // optimistic so fresh descriptors try the cheap strategies first; decays when
  // the domain's write traffic defeats them, steering the adaptive engine back
  // to the plain incremental walk.
  std::atomic<std::uint32_t> skip_ewma_q16{65536u};
  // High-water mark of the consecutive-abort streak (Backoff::attempts()).
  // Written by the owner via SerialCm::NoteAbortBackoff; rolled up by
  // TxStatsRegistry so benches can report the worst streak a cell produced
  // (bounded by kSerialEscalationStreak + hysteresis when escalation is on).
  std::atomic<std::uint64_t> max_abort_streak{0};
};

// EWMA smoothing: alpha = 1/16 per transaction outcome. ~16 outcomes to move
// half-way toward a new steady state — fast enough to track workload phase shifts
// (the adaptive validation engine re-reads it at every transaction start), slow
// enough not to flap on a single unlucky abort.
inline constexpr int kAbortEwmaShift = 4;

inline void UpdateAbortEwma(TxStats& stats, bool aborted) {
  const std::uint32_t ewma = stats.abort_ewma_q16.load(std::memory_order_relaxed);
  std::uint32_t next;
  if (aborted) {
    next = ewma + ((65536u - ewma) >> kAbortEwmaShift);
  } else {
    // Round the decay up so the EWMA actually reaches 0 under an abort-free run
    // instead of stalling at a small residue.
    next = ewma - ((ewma + (1u << kAbortEwmaShift) - 1) >> kAbortEwmaShift);
  }
  stats.abort_ewma_q16.store(next, std::memory_order_relaxed);
}

inline std::uint32_t AbortEwmaQ16(const TxStats& stats) {
  return stats.abort_ewma_q16.load(std::memory_order_relaxed);
}

inline void UpdateSkipEwma(TxStats& stats, bool skipped) {
  const std::uint32_t ewma = stats.skip_ewma_q16.load(std::memory_order_relaxed);
  std::uint32_t next;
  if (skipped) {
    next = ewma + ((65536u - ewma) >> kAbortEwmaShift);
  } else {
    next = ewma - ((ewma + (1u << kAbortEwmaShift) - 1) >> kAbortEwmaShift);
  }
  stats.skip_ewma_q16.store(next, std::memory_order_relaxed);
}

inline std::uint32_t SkipEwmaQ16(const TxStats& stats) {
  return stats.skip_ewma_q16.load(std::memory_order_relaxed);
}

// Process-wide roll-up of every live descriptor's statistics, for tests and the
// benchmark harness (abort-rate reporting). Registration is cold-path only.
class TxStatsRegistry {
 public:
  static void Register(TxStats* stats);
  static void Unregister(TxStats* stats);

  struct Totals {
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    // Max (not sum) over live + retained descriptors' streak high-water marks.
    std::uint64_t max_abort_streak = 0;
  };
  // Sum over live descriptors plus the retained counts of exited threads.
  static Totals Snapshot();
  // Zeroes every live descriptor's streak high-water mark and the retained
  // max, so benches can measure the worst streak of one timed window via
  // ResetMaxStreak() ... Snapshot().max_abort_streak.
  static void ResetMaxStreak();
};

// Read logs are SoA lanes (src/common/soa_log.h): `read_log` records
// (orec, expected unlocked orec body) pairs for the orec/tvar layouts,
// `val_read_log` records (data word, expected value) pairs for the val layout.
// Both store the EXPECTED WORD directly (an unlocked orec body IS the encoded
// version), so every validation is a raw 64-bit equality the batch kernel
// (validate_batch.h) can gather-compare without re-encoding.

struct LockLogEntry {
  std::atomic<Word>* orec;
  Word old_word;  // pre-lock orec body, restored on abort
};

struct ValLockLogEntry {
  std::atomic<Word>* word;
  Word old_value;  // displaced application value, restored on abort
};

// Field layout is deliberate (hot-path false-sharing audit):
//   * The descriptor address doubles as the lock-owner identity in orecs, and the
//     whole struct is cache-line aligned so two threads' descriptors never share a
//     line.
//   * `stats` lives on its own cache line: it is the only cross-thread-readable
//     state (TxStatsRegistry::Snapshot polls it from the harness thread), and every
//     commit/abort writes it — keeping it apart stops Snapshot polls from stealing
//     the line that holds the owner's log headers mid-transaction.
//   * Everything else is owner-private: thread_slot/backoff and the log headers sit
//     together on the leading lines, touched on every transaction.
struct alignas(kCacheLineSize) TxDesc {
  TxDesc()
      : thread_slot(ThreadRegistry::CurrentId()),
        backoff_serial(NextBackoffSerial()),
        backoff_seed(MixBackoffSeed(thread_slot, backoff_serial)),
        backoff(backoff_seed) {
    lock_log.reserve(64);
    val_lock_log.reserve(64);
    TxStatsRegistry::Register(&stats);
  }

  ~TxDesc() { TxStatsRegistry::Unregister(&stats); }

  // Backoff seed: thread slot alone is not enough — one thread owns one
  // descriptor PER DOMAIN, and two domains' descriptors on the same slot would
  // replay identical delay sequences. A process-wide construction serial
  // (unique per descriptor by definition) mixed with the slot through
  // splitmix64 de-synchronizes them; regression-tested in
  // tests/common/backoff_test.cc. (Deliberately NOT the descriptor address:
  // descriptors are thread_local, and folding a TLS address into seed
  // arithmetic makes the compiler emit the whole mixed constant as one
  // 32-bit TPOFF relocation addend, which overflows at link time.)
  //
  // Both the serial and the resulting seed are RETAINED on the descriptor
  // (and surfaced through CmProbe and the health watchdog's diagnostics
  // snapshot): an injected-schedule failure replays from the fail-point seed
  // plus THESE two values — without them the phase-1 backoff delays of the
  // failing run are unreproducible from the dump alone.
  static std::uint64_t NextBackoffSerial() {
    static std::atomic<std::uint64_t> serial{0};
    return serial.fetch_add(1, std::memory_order_relaxed);
  }
  static std::uint64_t MixBackoffSeed(int slot, std::uint64_t serial) {
    std::uint64_t mix = 0xb0ffULL +
                        static_cast<std::uint64_t>(slot) * 0x9e3779b9ULL +
                        (serial << 32);
    return Xorshift128Plus::SplitMix64(&mix);
  }

  // Owner-private hot fields.
  int thread_slot;
  std::uint64_t backoff_serial;  // process-wide descriptor construction serial
  std::uint64_t backoff_seed;    // the seed backoff's RNG was constructed with
  Backoff backoff;
  // Serial-escalation hysteresis: optimistic commits remaining before the
  // escalation threshold drops back from 2x to 1x after a serial commit
  // (src/tm/serial.h). Owner-private; rides the hot leading line because every
  // commit already touches `backoff` next to it.
  std::uint32_t cm_cooldown = 0;

  // Full-transaction logs (orec/tvar layouts); owner-private. The read log is
  // SoA (one chunk pre-sized, capacity persisted across attempts); the write
  // set carries its own cache-line alignment so its read-path header never
  // shares a line with the log headers around it.
  SoaReadLog read_log;
  WriteSet wset;
  std::vector<LockLogEntry> lock_log;

  // Full-transaction logs (val layout); owner-private.
  SoaReadLog val_read_log;
  std::vector<ValLockLogEntry> val_lock_log;

  // Cross-thread-readable counters, isolated on their own cache line.
  alignas(kCacheLineSize) TxStats stats;
};

// One descriptor per (thread, TM domain). The descriptor address doubles as the lock
// owner identity stored in locked orecs, so it must remain stable for the thread's
// lifetime — guaranteed by thread_local storage duration.
template <typename DomainTag>
TxDesc& DescOf() {
  thread_local TxDesc desc;
  return desc;
}

}  // namespace spectm

#endif  // SPECTM_TM_TXDESC_H_
