// Sequential skip-list integer set (the "sequential" reference of §4.2).
#ifndef SPECTM_STRUCTURES_SKIP_SEQ_H_
#define SPECTM_STRUCTURES_SKIP_SEQ_H_

#include <cstdint>

#include "src/common/rng.h"

namespace spectm {

class SeqSkipList {
 public:
  static constexpr int kMaxLevel = 32;

  explicit SeqSkipList(std::uint64_t seed = 0x5317)
      : rng_(seed), head_(new Node(0, kMaxLevel)) {}

  ~SeqSkipList() {
    Node* curr = head_;
    while (curr != nullptr) {
      Node* next = curr->next[0];
      delete curr;
      curr = next;
    }
  }

  SeqSkipList(const SeqSkipList&) = delete;
  SeqSkipList& operator=(const SeqSkipList&) = delete;

  bool Contains(std::uint64_t key) const {
    const Node* prev = head_;
    for (int lvl = level_ - 1; lvl >= 0; --lvl) {
      while (prev->next[lvl] != nullptr && prev->next[lvl]->key < key) {
        prev = prev->next[lvl];
      }
    }
    const Node* curr = prev->next[0];
    return curr != nullptr && curr->key == key;
  }

  bool Insert(std::uint64_t key) {
    Node* preds[kMaxLevel];
    Node* prev = head_;
    for (int lvl = level_ - 1; lvl >= 0; --lvl) {
      while (prev->next[lvl] != nullptr && prev->next[lvl]->key < key) {
        prev = prev->next[lvl];
      }
      preds[lvl] = prev;
    }
    Node* curr = prev->next[0];
    if (curr != nullptr && curr->key == key) {
      return false;
    }
    const int node_level = rng_.NextSkipListLevel(kMaxLevel);
    for (int lvl = level_; lvl < node_level; ++lvl) {
      preds[lvl] = head_;
    }
    if (node_level > level_) {
      level_ = node_level;
    }
    Node* node = new Node(key, node_level);
    for (int lvl = 0; lvl < node_level; ++lvl) {
      node->next[lvl] = preds[lvl]->next[lvl];
      preds[lvl]->next[lvl] = node;
    }
    ++size_;
    return true;
  }

  bool Remove(std::uint64_t key) {
    Node* preds[kMaxLevel];
    Node* prev = head_;
    for (int lvl = level_ - 1; lvl >= 0; --lvl) {
      while (prev->next[lvl] != nullptr && prev->next[lvl]->key < key) {
        prev = prev->next[lvl];
      }
      preds[lvl] = prev;
    }
    Node* victim = prev->next[0];
    if (victim == nullptr || victim->key != key) {
      return false;
    }
    for (int lvl = 0; lvl < victim->level; ++lvl) {
      if (preds[lvl]->next[lvl] == victim) {
        preds[lvl]->next[lvl] = victim->next[lvl];
      }
    }
    delete victim;
    --size_;
    return true;
  }

  std::size_t Size() const { return size_; }

 private:
  struct Node {
    std::uint64_t key;
    int level;
    Node* next[kMaxLevel];

    Node(std::uint64_t k, int lvl) : key(k), level(lvl) {
      for (int i = 0; i < kMaxLevel; ++i) {
        next[i] = nullptr;
      }
    }
  };

  Xorshift128Plus rng_;
  Node* head_;
  int level_ = 1;
  std::size_t size_ = 0;
};

}  // namespace spectm

#endif  // SPECTM_STRUCTURES_SKIP_SEQ_H_
