// Hash map (key -> 62-bit value) over SpecTM short transactions — the key-value-
// store index shape the paper motivates in §1 ("the central role of these data
// structures in key-value stores and in-memory database indices").
//
// Each node carries TWO transactional words: the value and the next link. The
// interesting operations are the ones a set cannot express:
//   * Get        — a 2-location short RO transaction over {value, next}: validation
//                  proves the value belonged to a node that was not deleted at the
//                  linearization point;
//   * Put        — on an existing key, a mixed transaction: RW on the value, RO on
//                  the next link (the §2.4 "mostly-read-write" case — exactly one
//                  location read but not written);
//   * Update     — atomic read-modify-write of the value through an RW1 short
//                  transaction: lost-update freedom for counters;
//   * insertion/removal — as in SpecHashSet (single-CAS publish; 2-location
//                  unlink+freeze).
#ifndef SPECTM_STRUCTURES_HASH_MAP_TM_H_
#define SPECTM_STRUCTURES_HASH_MAP_TM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/tagged.h"
#include "src/epoch/epoch.h"
#include "src/tm/config.h"

namespace spectm {

template <typename Family>
class SpecHashMap {
 public:
  using Slot = typename Family::Slot;

  explicit SpecHashMap(std::size_t buckets = 16384,
                       EpochManager& epoch = GlobalEpochManager())
      : epoch_(epoch), buckets_(buckets) {}

  ~SpecHashMap() {
    for (Slot& head : buckets_) {
      Node* curr = WordToPtr<Node>(Unmark(Family::RawRead(&head)));
      while (curr != nullptr) {
        Node* next = WordToPtr<Node>(Unmark(Family::RawRead(&curr->next)));
        delete curr;
        curr = next;
      }
    }
  }

  SpecHashMap(const SpecHashMap&) = delete;
  SpecHashMap& operator=(const SpecHashMap&) = delete;

  // Returns true and sets *value_out (decoded) if key is present.
  bool Get(std::uint64_t key, std::uint64_t* value_out) {
    EpochManager::Guard guard(epoch_);
    while (true) {
      const Window w = Search(key);
      if (w.curr == nullptr || w.curr->key != key) {
        return false;
      }
      typename Family::ShortTx t;
      const Word value = t.ReadRo(&w.curr->value);
      const Word next = t.ReadRo(&w.curr->next);
      if (!t.Valid() || !t.ValidateRo()) {
        continue;  // raced with a writer; retry
      }
      if (IsMarked(next)) {
        return false;  // node was deleted; the consistent pair proves it
      }
      *value_out = DecodeInt(value);
      return true;
    }
  }

  // Inserts or overwrites. Returns true if the key was newly inserted.
  bool Put(std::uint64_t key, std::uint64_t value) {
    EpochManager::Guard guard(epoch_);
    Node* node = nullptr;
    while (true) {
      const Window w = Search(key);
      if (w.curr != nullptr && w.curr->key == key) {
        // Existing key: write the value iff the node is still live. RW locks the
        // value; the RO read of the next link is validated at commit (§2.4 case 2).
        typename Family::ShortTx t;
        t.ReadRw(&w.curr->value);
        const Word next = t.ReadRo(&w.curr->next);
        if (!t.Valid()) {
          t.Abort();
          continue;
        }
        if (IsMarked(next)) {
          t.Abort();
          continue;  // concurrently deleted; re-search (may insert fresh)
        }
        if (t.CommitMixed({EncodeInt(value)})) {
          delete node;  // unused pre-allocation from an earlier iteration
          return false;
        }
        continue;
      }
      if (node == nullptr) {
        node = new Node(key);
      }
      Family::RawWrite(&node->value, EncodeInt(value));
      Family::RawWrite(&node->next, PtrToWord(w.curr));
      if (Family::SingleCas(w.prev_link, PtrToWord(w.curr), PtrToWord(node)) ==
          PtrToWord(w.curr)) {
        return true;
      }
    }
  }

  // Atomically applies fn to the current value (lost-update-free read-modify-write).
  // Returns false if the key is absent.
  template <typename Fn>
  bool Update(std::uint64_t key, Fn&& fn) {
    EpochManager::Guard guard(epoch_);
    while (true) {
      const Window w = Search(key);
      if (w.curr == nullptr || w.curr->key != key) {
        return false;
      }
      typename Family::ShortTx t;
      const Word old_value = t.ReadRw(&w.curr->value);
      const Word next = t.ReadRo(&w.curr->next);
      if (!t.Valid()) {
        t.Abort();
        continue;
      }
      if (IsMarked(next)) {
        t.Abort();
        continue;  // deleted; a re-search will report absence
      }
      if (t.CommitMixed({EncodeInt(fn(DecodeInt(old_value)))})) {
        return true;
      }
    }
  }

  bool Contains(std::uint64_t key) {
    std::uint64_t ignored;
    return Get(key, &ignored);
  }

  bool Remove(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    while (true) {
      const Window w = Search(key);
      if (w.curr == nullptr || w.curr->key != key) {
        return false;
      }
      typename Family::ShortTx t;
      const Word prev_val = t.ReadRw(w.prev_link);
      const Word curr_next = t.ReadRw(&w.curr->next);
      if (!t.Valid()) {
        t.Abort();
        continue;
      }
      if (prev_val != PtrToWord(w.curr) || IsMarked(curr_next)) {
        t.Abort();
        continue;
      }
      t.CommitRw({curr_next, Mark(curr_next)});
      epoch_.Retire(w.curr);
      return true;
    }
  }

 private:
  struct Node {
    std::uint64_t key;
    Slot value;
    Slot next;

    explicit Node(std::uint64_t k) : key(k) {}
  };

  struct Window {
    Slot* prev_link;
    Node* curr;
  };

  Window Search(std::uint64_t key) {
    Slot* prev_link = &BucketFor(key);
    Node* curr = WordToPtr<Node>(Unmark(Family::SingleRead(prev_link)));
    while (curr != nullptr && curr->key < key) {
      prev_link = &curr->next;
      curr = WordToPtr<Node>(Unmark(Family::SingleRead(prev_link)));
    }
    return Window{prev_link, curr};
  }

  Slot& BucketFor(std::uint64_t key) {
    std::uint64_t x = key;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return buckets_[static_cast<std::size_t>(x % buckets_.size())];
  }

  EpochManager& epoch_;
  std::vector<Slot> buckets_;
};

}  // namespace spectm

#endif  // SPECTM_STRUCTURES_HASH_MAP_TM_H_
