// Transactional B+-tree integer set — the paper's future-work structure (§6: "use
// SpecTM to implement new, efficient, concurrent data structures—for instance,
// looking at structures such as B-Trees which are more complex than those studied in
// typical research on lock-free algorithms").
//
// Design:
//   * B+-tree with fanout kFanout; every mutable cell (key slots, child pointers,
//     counts, leaf links) is a transactional word of the chosen family, so the whole
//     structure inherits the family's meta-data layout (Figure 3).
//   * Each operation is ONE ordinary transaction. Inserts split full nodes
//     preemptively on the way down, so a single downward pass suffices and the
//     transaction's write set stays bounded by O(height * fanout). Split siblings
//     stay private until the commit publishes them; the left halves are reused in
//     place, so no node is ever freed while the tree is live (lazy deletion never
//     unlinks), and reclamation reduces to the destructor.
//   * Removals use lazy deletion (no merging/borrowing): practical in-memory B-trees
//     commonly accept underfull nodes, and it keeps remove transactions small.
//     Empty leaves remain linked until the tree is destroyed.
//   * RangeCount scans the leaf chain transactionally — a deliberately read-set-heavy
//     operation that stresses exactly the validation costs the paper's -l variants
//     pay (§4.1), measurable in bench/abl_btree.
//
// Unlike the hash table and skip list there is no decomposed short-transaction
// version: node updates move whole runs of keys, far beyond kMaxShortWrites — the
// paper's point that short transactions target a specific niche, with ordinary
// transactions as the general fall-back (§2.2).
#ifndef SPECTM_STRUCTURES_BTREE_TM_H_
#define SPECTM_STRUCTURES_BTREE_TM_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/common/tagged.h"
#include "src/epoch/epoch.h"
#include "src/tm/config.h"

namespace spectm {

template <typename Family, int kFanout = 16>
class TmBTree {
  static_assert(kFanout >= 4 && kFanout % 2 == 0, "fanout must be even and >= 4");

 public:
  using Slot = typename Family::Slot;

  explicit TmBTree(EpochManager& epoch = GlobalEpochManager())
      : epoch_(epoch) {
    Node* root = NewNode(/*leaf=*/true);
    Family::RawWrite(&root_, PtrToWord(root));
  }

  ~TmBTree() { DestroyRecursive(WordToPtr<Node>(Family::RawRead(&root_))); }

  TmBTree(const TmBTree&) = delete;
  TmBTree& operator=(const TmBTree&) = delete;

  bool Contains(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    typename Family::FullTx tx;
    bool found = false;
    do {
      tx.Start();
      found = false;
      Node* leaf = DescendToLeaf(tx, key, /*split_full=*/false);
      if (!tx.ok()) {
        continue;
      }
      const int n = Count(tx, leaf);
      for (int i = 0; i < n && tx.ok(); ++i) {
        if (Key(tx, leaf, i) == key) {
          found = true;
          break;
        }
      }
    } while (!tx.Commit());
    return found;
  }

  bool Insert(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    typename Family::FullTx tx;
    // Nodes allocated for splits this attempt; published on commit, freed on retry
    // (a commit-time abort must not leak the private siblings).
    std::vector<Node*> fresh;
    while (true) {
      for (Node* n : fresh) {
        delete n;
      }
      fresh.clear();
      tx.Start();
      bool inserted = false;
      Node* leaf = DescendToLeaf(tx, key, /*split_full=*/true, &fresh);
      if (tx.ok()) {
        const int n = Count(tx, leaf);
        int pos = 0;
        bool present = false;
        for (; pos < n && tx.ok(); ++pos) {
          const std::uint64_t k = Key(tx, leaf, pos);
          if (k == key) {
            present = true;
            break;
          }
          if (k > key) {
            break;
          }
        }
        if (tx.ok() && !present) {
          // Preemptive splitting guarantees space.
          for (int i = n; i > pos; --i) {
            tx.Write(KeySlot(leaf, i), EncodeInt(Key(tx, leaf, i - 1)));
          }
          tx.Write(KeySlot(leaf, pos), EncodeInt(key));
          tx.Write(CountSlot(leaf), EncodeInt(static_cast<std::uint64_t>(n) + 1));
          inserted = true;
        }
      }
      if (tx.Commit()) {
        return inserted;
      }
    }
  }

  bool Remove(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    typename Family::FullTx tx;
    bool removed = false;
    do {
      tx.Start();
      removed = false;
      Node* leaf = DescendToLeaf(tx, key, /*split_full=*/false);
      if (!tx.ok()) {
        continue;
      }
      const int n = Count(tx, leaf);
      if (!tx.ok()) {
        continue;
      }
      int pos = -1;
      for (int i = 0; i < n && tx.ok(); ++i) {
        if (Key(tx, leaf, i) == key) {
          pos = i;
          break;
        }
      }
      if (!tx.ok() || pos < 0) {
        continue;  // absent: commit the read-only observation
      }
      for (int i = pos; i < n - 1; ++i) {
        tx.Write(KeySlot(leaf, i), EncodeInt(Key(tx, leaf, i + 1)));
      }
      tx.Write(CountSlot(leaf), EncodeInt(static_cast<std::uint64_t>(n) - 1));
      removed = true;  // lazy deletion: underflow tolerated
    } while (!tx.Commit());
    return removed;
  }

  // Number of keys in [lo, hi], via a transactional leaf-chain scan.
  std::uint64_t RangeCount(std::uint64_t lo, std::uint64_t hi) {
    EpochManager::Guard guard(epoch_);
    typename Family::FullTx tx;
    std::uint64_t count = 0;
    do {
      tx.Start();
      count = 0;
      Node* leaf = DescendToLeaf(tx, lo, /*split_full=*/false);
      while (tx.ok() && leaf != nullptr) {
        const int n = Count(tx, leaf);
        bool past_hi = false;
        for (int i = 0; i < n && tx.ok(); ++i) {
          const std::uint64_t k = Key(tx, leaf, i);
          if (k > hi) {
            past_hi = true;
            break;
          }
          if (k >= lo) {
            ++count;
          }
        }
        if (!tx.ok() || past_hi) {
          break;
        }
        leaf = WordToPtr<Node>(tx.Read(NextSlot(leaf)));
      }
    } while (!tx.Commit());
    return count;
  }

  // Tree height (root to leaf), for tests; runs transactionally.
  int Height() {
    EpochManager::Guard guard(epoch_);
    typename Family::FullTx tx;
    int height = 0;
    do {
      tx.Start();
      height = 1;
      Node* node = WordToPtr<Node>(tx.Read(&root_));
      while (tx.ok() && node != nullptr && !node->leaf) {
        node = WordToPtr<Node>(tx.Read(ChildSlot(node, 0)));
        ++height;
      }
    } while (!tx.Commit());
    return height;
  }

 private:
  // Node layout: transactional slots for the count, keys, children (inner) or the
  // next-leaf link (leaf). `leaf` is immutable after construction.
  struct Node {
    bool leaf;
    Slot count;
    Slot keys[kFanout];
    Slot children[kFanout + 1];  // inner: child pointers; leaf: [0] = next link
  };

  static Slot* CountSlot(Node* n) { return &n->count; }
  static Slot* KeySlot(Node* n, int i) { return &n->keys[i]; }
  static Slot* ChildSlot(Node* n, int i) { return &n->children[i]; }
  static Slot* NextSlot(Node* n) { return &n->children[0]; }

  int Count(typename Family::FullTx& tx, Node* n) {
    return static_cast<int>(DecodeInt(tx.Read(CountSlot(n))));
  }
  std::uint64_t Key(typename Family::FullTx& tx, Node* n, int i) {
    return DecodeInt(tx.Read(KeySlot(n, i)));
  }

  Node* NewNode(bool leaf) {
    Node* n = new Node;
    n->leaf = leaf;
    Family::RawWrite(&n->count, EncodeInt(0));
    for (int i = 0; i < kFanout; ++i) {
      Family::RawWrite(&n->keys[i], EncodeInt(0));
    }
    for (int i = 0; i <= kFanout; ++i) {
      Family::RawWrite(&n->children[i], 0);
    }
    return n;
  }

  void DestroyRecursive(Node* n) {
    if (n == nullptr) {
      return;
    }
    if (!n->leaf) {
      const int count = static_cast<int>(DecodeInt(Family::RawRead(CountSlot(n))));
      for (int i = 0; i <= count; ++i) {
        DestroyRecursive(WordToPtr<Node>(Family::RawRead(ChildSlot(n, i))));
      }
    }
    delete n;
  }

  // Walks from the root to the leaf for `key`. With split_full, any full node on the
  // path (including the root) is split before descending into it, so the leaf always
  // has room. Nodes allocated by splits are appended to *fresh; the caller frees
  // them if the transaction ultimately fails and lets them be published otherwise.
  Node* DescendToLeaf(typename Family::FullTx& tx, std::uint64_t key, bool split_full,
                      std::vector<Node*>* fresh = nullptr) {
    Node* root = WordToPtr<Node>(tx.Read(&root_));
    if (!tx.ok()) {
      return nullptr;
    }
    if (split_full && Count(tx, root) == kFanout) {
      if (!tx.ok()) {
        return nullptr;
      }
      Node* new_root = NewNode(/*leaf=*/false);
      fresh->push_back(new_root);
      // new_root is private: initialize raw, then publish transactionally.
      Family::RawWrite(ChildSlot(new_root, 0), PtrToWord(root));
      SplitChild(tx, new_root, 0, root, fresh);
      if (!tx.ok()) {
        return nullptr;
      }
      tx.Write(&root_, PtrToWord(new_root));
      root = new_root;
    }
    Node* node = root;
    while (tx.ok() && !node->leaf) {
      const int n = Count(tx, node);
      int idx = 0;
      while (idx < n && tx.ok() && Key(tx, node, idx) <= key) {
        ++idx;
      }
      if (!tx.ok()) {
        return nullptr;
      }
      Node* child = WordToPtr<Node>(tx.Read(ChildSlot(node, idx)));
      if (!tx.ok()) {
        return nullptr;
      }
      if (split_full && Count(tx, child) == kFanout) {
        if (!tx.ok()) {
          return nullptr;
        }
        SplitChild(tx, node, idx, child, fresh);
        if (!tx.ok()) {
          return nullptr;
        }
        // Re-decide which of the two halves to enter.
        if (Key(tx, node, idx) <= key) {
          ++idx;
        }
        if (!tx.ok()) {
          return nullptr;
        }
        child = WordToPtr<Node>(tx.Read(ChildSlot(node, idx)));
        if (!tx.ok()) {
          return nullptr;
        }
      }
      node = child;
    }
    return tx.ok() ? node : nullptr;
  }

  // Splits `child` (full, kFanout keys) under parent index `idx`. The right sibling
  // is private until the parent's transactional writes publish it. For a leaf split
  // the separator is COPIED up (B+-tree); for an inner split the middle key MOVES up.
  // The sibling is appended to *fresh for failure cleanup by the caller.
  void SplitChild(typename Family::FullTx& tx, Node* parent, int idx, Node* child,
                  std::vector<Node*>* fresh) {
    Node* right = NewNode(child->leaf);
    fresh->push_back(right);
    const int mid = kFanout / 2;
    std::uint64_t separator;
    if (child->leaf) {
      const int moved = kFanout - mid;
      for (int i = 0; i < moved && tx.ok(); ++i) {
        Family::RawWrite(KeySlot(right, i), EncodeInt(Key(tx, child, mid + i)));
      }
      Family::RawWrite(CountSlot(right), EncodeInt(static_cast<std::uint64_t>(moved)));
      if (!tx.ok()) {
        return;
      }
      // Separator = first key of the right half, copied up (B+-tree).
      separator = DecodeInt(Family::RawRead(KeySlot(right, 0)));
      // Chain the leaves: right inherits child's next link.
      const Word child_next = tx.Read(NextSlot(child));
      if (!tx.ok()) {
        return;
      }
      Family::RawWrite(NextSlot(right), child_next);
      tx.Write(NextSlot(child), PtrToWord(right));
      tx.Write(CountSlot(child), EncodeInt(static_cast<std::uint64_t>(mid)));
    } else {
      const int moved = kFanout - mid - 1;
      for (int i = 0; i < moved && tx.ok(); ++i) {
        Family::RawWrite(KeySlot(right, i), EncodeInt(Key(tx, child, mid + 1 + i)));
      }
      for (int i = 0; i <= moved && tx.ok(); ++i) {
        Family::RawWrite(ChildSlot(right, i), tx.Read(ChildSlot(child, mid + 1 + i)));
      }
      Family::RawWrite(CountSlot(right), EncodeInt(static_cast<std::uint64_t>(moved)));
      if (!tx.ok()) {
        return;
      }
      separator = Key(tx, child, mid);  // middle key moves up
      tx.Write(CountSlot(child), EncodeInt(static_cast<std::uint64_t>(mid)));
    }
    if (!tx.ok()) {
      return;
    }
    // Shift the parent's keys/children right of idx and publish the new sibling.
    const int pn = Count(tx, parent);
    for (int i = pn; i > idx && tx.ok(); --i) {
      tx.Write(KeySlot(parent, i), EncodeInt(Key(tx, parent, i - 1)));
      tx.Write(ChildSlot(parent, i + 1), tx.Read(ChildSlot(parent, i)));
    }
    if (!tx.ok()) {
      return;
    }
    tx.Write(KeySlot(parent, idx), EncodeInt(separator));
    tx.Write(ChildSlot(parent, idx + 1), PtrToWord(right));
    tx.Write(CountSlot(parent), EncodeInt(static_cast<std::uint64_t>(pn) + 1));
  }

  EpochManager& epoch_;
  Slot root_;
};

}  // namespace spectm

#endif  // SPECTM_STRUCTURES_BTREE_TM_H_
