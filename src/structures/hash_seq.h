// Sequential hash-table integer set: the paper's "sequential" reference point
// ("optimized sequential code; it is not safe for multi-threaded use, but it provides
// a reference point of the cost of an implementation without concurrency control",
// §4.2). Bucket array with sorted singly-linked chains — structurally identical to
// the concurrent variants so the comparison isolates synchronization cost.
#ifndef SPECTM_STRUCTURES_HASH_SEQ_H_
#define SPECTM_STRUCTURES_HASH_SEQ_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spectm {

class SeqHashSet {
 public:
  explicit SeqHashSet(std::size_t buckets = 16384) : buckets_(buckets, nullptr) {}

  ~SeqHashSet() {
    for (Node* head : buckets_) {
      while (head != nullptr) {
        Node* next = head->next;
        delete head;
        head = next;
      }
    }
  }

  SeqHashSet(const SeqHashSet&) = delete;
  SeqHashSet& operator=(const SeqHashSet&) = delete;

  bool Contains(std::uint64_t key) const {
    const Node* curr = buckets_[Index(key)];
    while (curr != nullptr && curr->key < key) {
      curr = curr->next;
    }
    return curr != nullptr && curr->key == key;
  }

  bool Insert(std::uint64_t key) {
    Node** link = &buckets_[Index(key)];
    while (*link != nullptr && (*link)->key < key) {
      link = &(*link)->next;
    }
    if (*link != nullptr && (*link)->key == key) {
      return false;
    }
    *link = new Node{key, *link};
    ++size_;
    return true;
  }

  bool Remove(std::uint64_t key) {
    Node** link = &buckets_[Index(key)];
    while (*link != nullptr && (*link)->key < key) {
      link = &(*link)->next;
    }
    if (*link == nullptr || (*link)->key != key) {
      return false;
    }
    Node* victim = *link;
    *link = victim->next;
    delete victim;
    --size_;
    return true;
  }

  std::size_t Size() const { return size_; }

 private:
  struct Node {
    std::uint64_t key;
    Node* next;
  };

  std::size_t Index(std::uint64_t key) const {
    std::uint64_t x = key;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x % buckets_.size());
  }

  std::vector<Node*> buckets_;
  std::size_t size_ = 0;
};

}  // namespace spectm

#endif  // SPECTM_STRUCTURES_HASH_SEQ_H_
