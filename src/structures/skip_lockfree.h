// Lock-free skip-list integer set, based on Fraser's design (§2, §4.2 "lock-free...
// based on the designs from Fraser's thesis").
//
// Properties mirrored from Fraser:
//   * a node's "deleted" mark lives in each of its forward pointers (bit 1);
//   * removal marks every level top-down, with the bottom-level mark as the
//     linearization point, then physically unlinks via a full search;
//   * searches help unlink marked nodes at every level they traverse;
//   * insertion links bottom-up (the bottom-level CAS linearizes the insert).
//
// Deviation from pure Fraser, for reclamation soundness: a remover waits until the
// victim's insertion has finished linking all levels (per-node fully_linked flag)
// before marking. Without this, an in-flight inserter could add an upper-level link
// to a node after the remover's unlinking search completed, leaving the node
// reachable after it was retired — a use-after-free under epoch reclamation. The
// wait is bounded by the inserter's remaining linking work and only triggers when a
// key is removed microseconds after insertion. (This is precisely the category of
// partially-inserted/partially-removed subtlety the paper cites as the cost of
// CAS-based skip lists, §3.)
#ifndef SPECTM_STRUCTURES_SKIP_LOCKFREE_H_
#define SPECTM_STRUCTURES_SKIP_LOCKFREE_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "src/common/cacheline.h"
#include "src/common/rng.h"
#include "src/common/tagged.h"
#include "src/epoch/epoch.h"

namespace spectm {

class LockFreeSkipList {
 public:
  static constexpr int kMaxLevel = 32;

  explicit LockFreeSkipList(EpochManager& epoch = GlobalEpochManager())
      : epoch_(epoch), head_(NewNode(0, kMaxLevel)) {
    head_->fully_linked.store(true, std::memory_order_relaxed);
  }

  ~LockFreeSkipList() {
    Node* curr = head_;
    while (curr != nullptr) {
      Node* next = WordToPtr<Node>(Unmark(curr->next[0].load(std::memory_order_relaxed)));
      FreeNode(curr);
      curr = next;
    }
  }

  LockFreeSkipList(const LockFreeSkipList&) = delete;
  LockFreeSkipList& operator=(const LockFreeSkipList&) = delete;

  bool Contains(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    Node* pred = head_;
    Node* curr = nullptr;
    for (int lvl = LevelHint() - 1; lvl >= 0; --lvl) {
      curr = WordToPtr<Node>(Unmark(pred->next[lvl].load(std::memory_order_acquire)));
      while (curr != nullptr) {
        const Word succ = curr->next[lvl].load(std::memory_order_acquire);
        if (IsMarked(succ)) {
          curr = WordToPtr<Node>(Unmark(succ));  // deleted: skip it
          continue;
        }
        if (curr->key < key) {
          pred = curr;
          curr = WordToPtr<Node>(succ);
          continue;
        }
        break;
      }
    }
    return curr != nullptr && curr->key == key;
  }

  bool Insert(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    const int top = ThreadRng().NextSkipListLevel(kMaxLevel);
    RaiseLevelHint(top);  // before any link, so searches cover every linked level
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    Node* node = nullptr;
    while (true) {
      if (Find(key, preds, succs)) {
        FreeNode(node);  // never published
        return false;
      }
      if (node == nullptr) {
        node = NewNode(key, top);
      }
      for (int lvl = 0; lvl < top; ++lvl) {
        node->next[lvl].store(PtrToWord(succs[lvl]), std::memory_order_relaxed);
      }
      // Bottom-level link is the linearization point of a successful insert.
      Word expected = PtrToWord(succs[0]);
      if (!preds[0]->next[0].compare_exchange_strong(expected, PtrToWord(node),
                                                     std::memory_order_acq_rel,
                                                     std::memory_order_relaxed)) {
        continue;  // re-search and retry
      }
      // Link the upper levels. Removers of this node wait on fully_linked, so no
      // level of `node` can be marked during this loop; CAS failures only mean the
      // window moved.
      for (int lvl = 1; lvl < top; ++lvl) {
        while (true) {
          expected = PtrToWord(succs[lvl]);
          if (preds[lvl]->next[lvl].compare_exchange_strong(expected, PtrToWord(node),
                                                            std::memory_order_acq_rel,
                                                            std::memory_order_relaxed)) {
            break;
          }
          const bool still_present = Find(key, preds, succs);
          assert(still_present && "node removed while fully_linked was false");
          (void)still_present;
          node->next[lvl].store(PtrToWord(succs[lvl]), std::memory_order_relaxed);
        }
      }
      node->fully_linked.store(true, std::memory_order_release);
      return true;
    }
  }

  bool Remove(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    if (!Find(key, preds, succs)) {
      return false;
    }
    Node* victim = succs[0];
    // Reclamation handshake: let the inserter finish linking every level first.
    while (!victim->fully_linked.load(std::memory_order_acquire)) {
      CpuRelax();
    }
    // Mark from the top level down to 1; races with other removers are benign.
    for (int lvl = victim->level - 1; lvl >= 1; --lvl) {
      Word succ = victim->next[lvl].load(std::memory_order_acquire);
      while (!IsMarked(succ)) {
        victim->next[lvl].compare_exchange_weak(succ, Mark(succ),
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed);
      }
    }
    // Bottom-level mark: the linearization point; exactly one remover wins.
    Word succ = victim->next[0].load(std::memory_order_acquire);
    while (true) {
      if (IsMarked(succ)) {
        return false;  // another remover won
      }
      if (victim->next[0].compare_exchange_weak(succ, Mark(succ),
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
        // Physically unlink at every level, then reclaim. After this Find returns
        // the node is unreachable: every level was either unlinked by the Find (or
        // a helper), frozen predecessors cannot be re-pointed at it, and its own
        // inserter finished before the marks went up.
        Find(key, preds, succs);
        epoch_.Retire(static_cast<void*>(victim),
                      [](void* p) { FreeNode(static_cast<Node*>(p)); });
        return true;
      }
    }
  }

 private:
  struct Node {
    std::uint64_t key;
    int level;
    std::atomic<bool> fully_linked{false};
    std::atomic<Word> next[1];  // trailing array of `level` entries
  };

  static Node* NewNode(std::uint64_t key, int level) {
    const std::size_t bytes =
        offsetof(Node, next) + static_cast<std::size_t>(level) * sizeof(std::atomic<Word>);
    void* mem = std::malloc(bytes);
    Node* node = static_cast<Node*>(mem);
    node->key = key;
    node->level = level;
    new (&node->fully_linked) std::atomic<bool>(false);
    for (int i = 0; i < level; ++i) {
      new (&node->next[i]) std::atomic<Word>(0);
    }
    return node;
  }

  static void FreeNode(Node* node) { std::free(node); }

  static Xorshift128Plus& ThreadRng() {
    thread_local Xorshift128Plus rng(0x5ca1eULL + ThreadSalt());
    return rng;
  }

  static std::uint64_t ThreadSalt() {
    static std::atomic<std::uint64_t> next{1};
    thread_local std::uint64_t salt = next.fetch_add(1, std::memory_order_relaxed);
    return salt;
  }

  // Fraser search with helping: on return, preds[l]/succs[l] bracket `key` at every
  // level with succs unmarked, and every marked node encountered on the path has
  // been physically unlinked at that level. Returns true iff an unmarked node with
  // `key` sits at the bottom level.
  bool Find(std::uint64_t key, Node** preds, Node** succs) {
  retry:
    Node* pred = head_;
    const int from = LevelHint();
    for (int lvl = kMaxLevel - 1; lvl >= from; --lvl) {
      preds[lvl] = head_;
      succs[lvl] = nullptr;
    }
    for (int lvl = from - 1; lvl >= 0; --lvl) {
      Node* curr = WordToPtr<Node>(Unmark(pred->next[lvl].load(std::memory_order_acquire)));
      while (true) {
        if (curr == nullptr) {
          break;
        }
        const Word succ = curr->next[lvl].load(std::memory_order_acquire);
        if (IsMarked(succ)) {
          // Help unlink curr at this level.
          Word expected = PtrToWord(curr);
          if (!pred->next[lvl].compare_exchange_strong(expected, Unmark(succ),
                                                       std::memory_order_acq_rel,
                                                       std::memory_order_relaxed)) {
            goto retry;
          }
          curr = WordToPtr<Node>(Unmark(succ));
          continue;
        }
        if (curr->key < key) {
          pred = curr;
          curr = WordToPtr<Node>(succ);
          continue;
        }
        break;
      }
      preds[lvl] = pred;
      succs[lvl] = curr;
    }
    return succs[0] != nullptr && succs[0]->key == key;
  }

  // Fraser-style list-level hint: searches start at the highest level in use. The
  // hint is raised BEFORE a tall node links, so it always covers every linked level;
  // it never decreases (a too-high hint only costs null checks).
  int LevelHint() const { return level_hint_->load(std::memory_order_acquire); }

  void RaiseLevelHint(int level) {
    int cur = level_hint_->load(std::memory_order_relaxed);
    while (cur < level && !level_hint_->compare_exchange_weak(
                              cur, level, std::memory_order_acq_rel,
                              std::memory_order_relaxed)) {
    }
  }

  EpochManager& epoch_;
  Node* head_;
  CacheAligned<std::atomic<int>> level_hint_{1};
};

}  // namespace spectm

#endif  // SPECTM_STRUCTURES_SKIP_LOCKFREE_H_
