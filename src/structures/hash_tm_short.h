// Hash-table integer set decomposed into SpecTM short transactions (§2.2): the
// "*-short-*" variants, including the headline val-short configuration.
//
// Decomposition (the paper's methodology: "we start by splitting operations into a
// series of short atomic steps, each of a statically-known size"):
//   * traversal      — Tx_Single_Read per link, ignoring deleted nodes (as in the
//                      skip list of Figure 4);
//   * insert         — one Tx_Single_CAS publishing the privately initialized node;
//   * remove         — one 2-location short RW transaction that simultaneously
//                      unlinks the node and freezes it by marking its next pointer
//                      (an instance of §2.4 case 1: the transaction updates
//                      everything it reads);
//   * lookup         — one extra Tx_Single_Read of the candidate's next pointer to
//                      test the deleted mark.
//
// The deleted mark (bit 1) makes unlinked nodes detectable by concurrent traversals
// that reached them before the unlink, exactly as in the lock-free algorithm — but
// here marking and unlinking are a single atomic step, which removes the lock-free
// version's helping protocol entirely.
//
// Value non-re-use (§2.4 case 3) holds for every transactional word: they only ever
// hold node pointers (fresh allocations, protected by epoch reclamation) or their
// marked forms.
#ifndef SPECTM_STRUCTURES_HASH_TM_SHORT_H_
#define SPECTM_STRUCTURES_HASH_TM_SHORT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/tagged.h"
#include "src/epoch/epoch.h"
#include "src/tm/config.h"

namespace spectm {

template <typename Family>
class SpecHashSet {
 public:
  using Slot = typename Family::Slot;

  explicit SpecHashSet(std::size_t buckets = 16384,
                       EpochManager& epoch = GlobalEpochManager())
      : epoch_(epoch), buckets_(buckets) {}

  ~SpecHashSet() {
    for (Slot& head : buckets_) {
      Node* curr = WordToPtr<Node>(Unmark(Family::RawRead(&head)));
      while (curr != nullptr) {
        Node* next = WordToPtr<Node>(Unmark(Family::RawRead(&curr->next)));
        delete curr;
        curr = next;
      }
    }
  }

  SpecHashSet(const SpecHashSet&) = delete;
  SpecHashSet& operator=(const SpecHashSet&) = delete;

  bool Contains(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    const Window w = Search(key);
    if (w.curr == nullptr || w.curr->key != key) {
      return false;
    }
    // Present iff not logically deleted (the mark read is the linearization point).
    return !IsMarked(Family::SingleRead(&w.curr->next));
  }

  bool Insert(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    Node* node = nullptr;
    while (true) {
      const Window w = Search(key);
      if (w.curr != nullptr && w.curr->key == key) {
        if (!IsMarked(Family::SingleRead(&w.curr->next))) {
          delete node;  // never published
          return false;
        }
        // A deleted node with our key was still on our (stale) path; re-search.
        continue;
      }
      if (node == nullptr) {
        node = new Node(key);
      }
      Family::RawWrite(&node->next, PtrToWord(w.curr));  // private until the CAS
      if (Family::SingleCas(w.prev_link, PtrToWord(w.curr), PtrToWord(node)) ==
          PtrToWord(w.curr)) {
        return true;
      }
    }
  }

  bool Remove(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    while (true) {
      const Window w = Search(key);
      if (w.curr == nullptr || w.curr->key != key) {
        return false;
      }
      typename Family::ShortTx t;
      const Word prev_val = t.ReadRw(w.prev_link);
      const Word curr_next = t.ReadRw(&w.curr->next);
      if (!t.Valid()) {
        t.Abort();
        continue;  // contention on the window; retry
      }
      if (prev_val != PtrToWord(w.curr) || IsMarked(curr_next)) {
        // Window moved, or someone else is removing this node.
        t.Abort();
        if (IsMarked(curr_next)) {
          continue;  // re-search decides: gone -> false, reinserted -> retry
        }
        continue;
      }
      // Atomically: unlink from prev AND freeze the victim (mark its next pointer).
      t.CommitRw({curr_next, Mark(curr_next)});
      epoch_.Retire(w.curr);
      return true;
    }
  }

 private:
  struct Node {
    std::uint64_t key;
    Slot next;

    explicit Node(std::uint64_t k) : key(k) {}
  };

  struct Window {
    Slot* prev_link;
    Node* curr;
  };

  // Single-read traversal; traverses THROUGH deleted nodes (their frozen next
  // pointers remain valid paths) exactly like the paper's skip-list Search.
  Window Search(std::uint64_t key) {
    Slot* prev_link = &BucketFor(key);
    Node* curr = WordToPtr<Node>(Unmark(Family::SingleRead(prev_link)));
    while (curr != nullptr && curr->key < key) {
      prev_link = &curr->next;
      curr = WordToPtr<Node>(Unmark(Family::SingleRead(prev_link)));
    }
    return Window{prev_link, curr};
  }

  Slot& BucketFor(std::uint64_t key) {
    std::uint64_t x = key;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return buckets_[static_cast<std::size_t>(x % buckets_.size())];
  }

  EpochManager& epoch_;
  std::vector<Slot> buckets_;
};

}  // namespace spectm

#endif  // SPECTM_STRUCTURES_HASH_TM_SHORT_H_
