// The paper's running example (§2): a bounded double-ended queue over a circular
// array, with PushLeft/PopLeft/PushRight/PopRight.
//
// Representation (as in §2.1): items live at indexes [left, right) modulo the array
// size; slots hold 0 (the paper's NULL) when empty, so values must be non-zero —
// "Queue elements must be non-NULL, allowing NULL values to be used to indicate the
// presence of empty slots (and to distinguish a completely empty queue from a
// completely full queue)".
//
// TmDequeue  — every operation is one ordinary transaction (§2.1's PopLeft).
// SpecDequeue — every operation is one 2-location short RW transaction (§2.2's
//               PopLeft): read the index, read the slot it denotes, commit both or
//               abort. The index read supplies the address of the second read — the
//               dynamic access pattern that CASN-style primitives cannot express
//               (§5: "Unlike CASN, SpecTM transactions are dynamic").
#ifndef SPECTM_STRUCTURES_DEQUEUE_H_
#define SPECTM_STRUCTURES_DEQUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/tagged.h"
#include "src/tm/config.h"

namespace spectm {

template <typename Family>
class TmDequeue {
 public:
  using Slot = typename Family::Slot;

  explicit TmDequeue(std::size_t capacity = 1024)
      : items_(capacity) {
    Family::RawWrite(&left_, EncodeInt(0));
    Family::RawWrite(&right_, EncodeInt(0));
  }

  // Values must be non-zero with bits 0–1 clear (use EncodeInt or aligned pointers).
  bool PushLeft(Word value) { return Push(value, /*left_end=*/true); }
  bool PushRight(Word value) { return Push(value, /*left_end=*/false); }
  Word PopLeft() { return Pop(/*left_end=*/true); }
  Word PopRight() { return Pop(/*left_end=*/false); }

  std::size_t Capacity() const { return items_.size(); }

 private:
  bool Push(Word value, bool left_end) {
    typename Family::FullTx tx;
    bool pushed = false;
    do {
      tx.Start();
      pushed = false;
      const std::uint64_t n = items_.size();
      Slot* index_slot = left_end ? &left_ : &right_;
      const std::uint64_t idx = DecodeInt(tx.Read(index_slot));
      if (!tx.ok()) {
        continue;
      }
      const std::uint64_t target = left_end ? (idx + n - 1) % n : idx;
      const Word occupant = tx.Read(&items_[target]);
      if (!tx.ok()) {
        continue;
      }
      if (occupant != 0) {
        continue;  // full at this end: commit the read-only observation
      }
      tx.Write(&items_[target], value);
      tx.Write(index_slot, EncodeInt(left_end ? target : (idx + 1) % n));
      pushed = true;
    } while (!tx.Commit());
    return pushed;
  }

  // §2.1's PopLeft, generalized to both ends. Returns 0 when empty.
  Word Pop(bool left_end) {
    typename Family::FullTx tx;
    Word result = 0;
    do {
      tx.Start();
      result = 0;
      const std::uint64_t n = items_.size();
      Slot* index_slot = left_end ? &left_ : &right_;
      const std::uint64_t idx = DecodeInt(tx.Read(index_slot));
      if (!tx.ok()) {
        continue;
      }
      const std::uint64_t target = left_end ? idx : (idx + n - 1) % n;
      result = tx.Read(&items_[target]);
      if (!tx.ok()) {
        result = 0;
        continue;
      }
      if (result != 0) {
        tx.Write(&items_[target], 0);
        tx.Write(index_slot, EncodeInt(left_end ? (idx + 1) % n : target));
      }
    } while (!tx.Commit());
    return result;
  }

  std::vector<Slot> items_;
  Slot left_;
  Slot right_;
};

template <typename Family>
class SpecDequeue {
 public:
  using Slot = typename Family::Slot;

  explicit SpecDequeue(std::size_t capacity = 1024) : items_(capacity) {
    Family::RawWrite(&left_, EncodeInt(0));
    Family::RawWrite(&right_, EncodeInt(0));
  }

  bool PushLeft(Word value) { return Push(value, /*left_end=*/true); }
  bool PushRight(Word value) { return Push(value, /*left_end=*/false); }
  Word PopLeft() { return Pop(/*left_end=*/true); }
  Word PopRight() { return Pop(/*left_end=*/false); }

  std::size_t Capacity() const { return items_.size(); }

 private:
  bool Push(Word value, bool left_end) {
    const std::uint64_t n = items_.size();
    while (true) {
      typename Family::ShortTx t;
      Slot* index_slot = left_end ? &left_ : &right_;
      const std::uint64_t idx = DecodeInt(t.ReadRw(index_slot));
      if (!t.Valid()) {
        t.Abort();
        continue;
      }
      const std::uint64_t target = left_end ? (idx + n - 1) % n : idx;
      const Word occupant = t.ReadRw(&items_[target]);
      if (!t.Valid()) {
        t.Abort();
        continue;
      }
      if (occupant != 0) {
        t.Abort();
        return false;  // full at this end (locks made the observation stable)
      }
      if (t.CommitRw(
              {EncodeInt(left_end ? target : (idx + 1) % n), value})) {
        return true;
      }
    }
  }

  // §2.2's PopLeft, generalized: the second read's address depends on the first
  // read's value; encounter-time locks make the pair stable without validation.
  Word Pop(bool left_end) {
    const std::uint64_t n = items_.size();
    while (true) {
      typename Family::ShortTx t;
      Slot* index_slot = left_end ? &left_ : &right_;
      const std::uint64_t idx = DecodeInt(t.ReadRw(index_slot));
      if (!t.Valid()) {
        t.Abort();
        continue;
      }
      const std::uint64_t target = left_end ? idx : (idx + n - 1) % n;
      const Word result = t.ReadRw(&items_[target]);
      if (!t.Valid()) {
        t.Abort();
        continue;
      }
      if (result == 0) {
        t.Abort();
        return 0;  // empty
      }
      if (t.CommitRw(
              {EncodeInt(left_end ? (idx + 1) % n : target), 0})) {
        return result;
      }
    }
  }

  std::vector<Slot> items_;
  Slot left_;
  Slot right_;
};

}  // namespace spectm

#endif  // SPECTM_STRUCTURES_DEQUEUE_H_
