// The paper's case study (§3, Figure 4): a skip list built from SpecTM short
// transactions for the common cases, with ordinary transactions as the fall-back —
// the "*-short-*" skip-list variants, including val-short.
//
// Decomposition (§3):
//   * Search     — Tx_Single_Read per link, Unmark()-ing to traverse through deleted
//                  nodes (Figure 4 lines 15–29);
//   * Insert     — level-1 towers via one Tx_Single_CAS (AddLevelOne, lines 47–51);
//                  level-2 towers via one 2-location short RW transaction; taller
//                  towers via an ordinary transaction (AddLevelN, lines 52–75),
//                  which also raises the head level when needed. With p = 1/2 level
//                  assignment this "leaves only 25% of insert and remove operations
//                  to be executed using ordinary transactions".
//   * Remove     — a single transaction that atomically marks the node at all
//                  levels AND unlinks it from all of them: short RW (2 or 4
//                  locations) for levels 1–2, ordinary transaction above.
//
// Because insertion and removal touch all levels atomically, towers are never
// partially linked — the invariant whose absence makes the CAS-based skip list hard
// (§3 "Fraser's CAS-based skip list must handle nodes which are partially-removed
// and partially-inserted").
//
// Plugging FineGrainedFamily<F> in as the Family reproduces the "orec-full-g (fine)"
// line of Figure 6(a): same decomposition, ordinary transactions underneath.
#ifndef SPECTM_STRUCTURES_SKIP_TM_SHORT_H_
#define SPECTM_STRUCTURES_SKIP_TM_SHORT_H_

#include <atomic>
#include <cstdint>

#include "src/common/rng.h"
#include "src/common/tagged.h"
#include "src/epoch/epoch.h"
#include "src/structures/skip_node.h"
#include "src/tm/config.h"

namespace spectm {

template <typename Family>
class SpecSkipList {
 public:
  using Slot = typename Family::Slot;
  using Node = SkipNode<Family>;
  static constexpr int kMaxLevel = kSkipListMaxLevel;

  explicit SpecSkipList(EpochManager& epoch = GlobalEpochManager())
      : epoch_(epoch), head_(Node::New(0, kMaxLevel)) {
    Family::RawWrite(&head_level_, EncodeInt(1));
  }

  ~SpecSkipList() {
    Node* curr = head_;
    while (curr != nullptr) {
      Node* next = WordToPtr<Node>(Unmark(Family::RawRead(&curr->next[0])));
      Node::Free(curr);
      curr = next;
    }
  }

  SpecSkipList(const SpecSkipList&) = delete;
  SpecSkipList& operator=(const SpecSkipList&) = delete;

  bool Contains(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    Iterator it;
    const int hl = HeadLevel();
    Node* curr = Search(key, &it, hl);
    if (curr == nullptr || curr->key != key) {
      return false;
    }
    // The deleted-mark read linearizes the lookup.
    return !IsMarked(Family::SingleRead(&curr->next[0]));
  }

  bool Insert(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    const int node_level = ThreadRng().NextSkipListLevel(kMaxLevel);
    Node* node = nullptr;
    while (true) {
      const int hl = HeadLevel();
      Iterator it;
      Node* curr = Search(key, &it, hl);
      if (curr != nullptr && curr->key == key) {
        if (!IsMarked(Family::SingleRead(&curr->next[0]))) {
          if (node != nullptr) {
            Node::Free(node);  // never published
          }
          return false;
        }
        continue;  // a deleted node with our key was on a stale path; re-search
      }
      if (node == nullptr) {
        node = Node::New(key, node_level);
      }
      bool ok = false;
      if (node_level == 1) {
        ok = AddLevelOne(node, it);
      } else if (node_level == 2 && hl >= 2) {
        ok = AddLevelTwo(node, it);
      } else {
        // Levels the search did not visit (the head may rise concurrently) default
        // to an empty window at head; AddLevelN validates every window in any case.
        for (int lvl = hl; lvl < node_level; ++lvl) {
          it.prev[lvl] = head_;
          it.next[lvl] = nullptr;
        }
        ok = AddLevelN(node, it);
      }
      if (ok) {
        return true;
      }
    }
  }

  bool Remove(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    while (true) {
      const int hl = HeadLevel();
      Iterator it;
      Node* curr = Search(key, &it, hl);
      if (curr == nullptr || curr->key != key) {
        return false;
      }
      if (curr->level > hl) {
        continue;  // head rose after our level read; re-search for full windows
      }
      if (IsMarked(Family::SingleRead(&curr->next[0]))) {
        continue;  // being removed by someone else; re-search decides the answer
      }
      bool ok = false;
      if (curr->level <= 2) {
        ok = RemoveShort(curr, it);
      } else {
        ok = RemoveFull(curr, it);
      }
      if (ok) {
        epoch_.Retire(static_cast<void*>(curr), &Node::FreeVoid);
        return true;
      }
    }
  }

 private:
  struct Iterator {
    Node* prev[kMaxLevel];
    Node* next[kMaxLevel];
  };

  int HeadLevel() {
    return static_cast<int>(DecodeInt(Family::SingleRead(&head_level_)));
  }

  // Figure 4 lines 15–29: single-read traversal, ignoring deleted nodes.
  Node* Search(std::uint64_t key, Iterator* it, int from_level) {
    Node* prev = head_;
    Node* curr = nullptr;
    for (int lvl = from_level - 1; lvl >= 0; --lvl) {
      while (true) {
        curr = WordToPtr<Node>(Unmark(Family::SingleRead(&prev->next[lvl])));
        if (curr == nullptr || curr->key >= key) {
          break;
        }
        prev = curr;
      }
      it->prev[lvl] = prev;
      it->next[lvl] = curr;
    }
    return curr;
  }

  // Figure 4 lines 47–51: a level-1 tower needs only a single-CAS transaction.
  bool AddLevelOne(Node* node, const Iterator& it) {
    Family::RawWrite(&node->next[0], PtrToWord(it.next[0]));
    return Family::SingleCas(&it.prev[0]->next[0], PtrToWord(it.next[0]),
                             PtrToWord(node)) == PtrToWord(it.next[0]);
  }

  // Level-2 towers: one short RW transaction over both predecessor links. The reads
  // both fetch and lock; value checks against the search window detect interference.
  bool AddLevelTwo(Node* node, const Iterator& it) {
    typename Family::ShortTx t;
    const Word w0 = t.ReadRw(&it.prev[0]->next[0]);
    const Word w1 = t.ReadRw(&it.prev[1]->next[1]);
    if (!t.Valid()) {
      t.Abort();
      return false;
    }
    if (w0 != PtrToWord(it.next[0]) || w1 != PtrToWord(it.next[1])) {
      t.Abort();
      return false;
    }
    Family::RawWrite(&node->next[0], w0);
    Family::RawWrite(&node->next[1], w1);
    return t.CommitRw({PtrToWord(node), PtrToWord(node)});
  }

  // Figure 4 lines 52–75: taller towers via an ordinary transaction, which may also
  // raise the head level. Returns false (whole-operation restart) when the search
  // window has moved. Every window — including the caller's defaults for levels the
  // search never visited — is validated inside the transaction.
  bool AddLevelN(Node* node, Iterator& it) {
    typename Family::FullTx tx;
    while (true) {
      tx.Start();
      const int hl = static_cast<int>(DecodeInt(tx.Read(&head_level_)));
      if (tx.ok()) {
        if (node->level > hl) {
          tx.Write(&head_level_, EncodeInt(static_cast<std::uint64_t>(node->level)));
        }
        bool window_ok = true;
        for (int lvl = 0; lvl < node->level && tx.ok(); ++lvl) {
          const Word nxt = tx.Read(&it.prev[lvl]->next[lvl]);
          if (!tx.ok()) {
            break;
          }
          if (nxt != PtrToWord(it.next[lvl])) {
            window_ok = false;
            break;
          }
          Family::RawWrite(&node->next[lvl], nxt);  // node is still private
          tx.Write(&it.prev[lvl]->next[lvl], PtrToWord(node));
        }
        if (tx.ok() && !window_ok) {
          tx.AbortTx();
          tx.Commit();
          return false;  // caller restarts with a fresh search
        }
      }
      if (tx.Commit()) {
        return true;
      }
    }
  }

  // Removal of a level-1/2 tower: 2 or 4 locations in one short RW transaction that
  // unlinks the node from every predecessor and freezes all its forward pointers
  // (§2.4 case 1: the transaction updates every location it reads).
  bool RemoveShort(Node* curr, const Iterator& it) {
    const int level = curr->level;
    typename Family::ShortTx t;
    Word prev_vals[2];
    Word curr_vals[2];
    for (int lvl = 0; lvl < level; ++lvl) {
      prev_vals[lvl] = t.ReadRw(&it.prev[lvl]->next[lvl]);
    }
    for (int lvl = 0; lvl < level; ++lvl) {
      curr_vals[lvl] = t.ReadRw(&curr->next[lvl]);
    }
    if (!t.Valid()) {
      t.Abort();
      return false;
    }
    for (int lvl = 0; lvl < level; ++lvl) {
      if (prev_vals[lvl] != PtrToWord(curr) || IsMarked(curr_vals[lvl])) {
        t.Abort();
        return false;
      }
    }
    if (level == 1) {
      return t.CommitRw({curr_vals[0], Mark(curr_vals[0])});
    }
    return t.CommitRw(
        {curr_vals[0], curr_vals[1], Mark(curr_vals[0]), Mark(curr_vals[1])});
  }

  // Removal of taller towers via an ordinary transaction (it writes the same marks,
  // so single-read traversals keep working).
  bool RemoveFull(Node* curr, const Iterator& it) {
    typename Family::FullTx tx;
    while (true) {
      tx.Start();
      bool window_ok = true;
      for (int lvl = 0; lvl < curr->level && tx.ok(); ++lvl) {
        const Word nxt = tx.Read(&it.prev[lvl]->next[lvl]);
        if (!tx.ok()) {
          break;
        }
        if (nxt != PtrToWord(curr)) {
          window_ok = false;
          break;
        }
      }
      if (tx.ok() && window_ok) {
        for (int lvl = 0; lvl < curr->level && tx.ok(); ++lvl) {
          const Word succ = tx.Read(&curr->next[lvl]);
          if (!tx.ok()) {
            break;
          }
          if (IsMarked(succ)) {
            window_ok = false;
            break;
          }
          tx.Write(&it.prev[lvl]->next[lvl], succ);
          tx.Write(&curr->next[lvl], Mark(succ));
        }
      }
      if (tx.ok() && !window_ok) {
        tx.AbortTx();
        tx.Commit();
        return false;  // caller restarts with a fresh search
      }
      if (tx.Commit()) {
        return true;
      }
    }
  }

  static Xorshift128Plus& ThreadRng() {
    static std::atomic<std::uint64_t> salt{1};
    thread_local Xorshift128Plus rng(0x51caULL +
                                     salt.fetch_add(1, std::memory_order_relaxed));
    return rng;
  }

  EpochManager& epoch_;
  Node* head_;
  Slot head_level_;
};

}  // namespace spectm

#endif  // SPECTM_STRUCTURES_SKIP_TM_SHORT_H_
