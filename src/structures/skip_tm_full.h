// Skip-list integer set over the traditional whole-operation transactional API
// (§2.1): the "*-full-*" skip-list variants of Figures 6 and 8.
//
// Each operation is ONE ordinary transaction: search, window checks, and multi-level
// pointer surgery all inside it. The code is the simplest of the three concurrent
// skip lists — the paper's argument for what traditional TM buys you — and needs no
// deleted marks: conflict detection serializes everything.
#ifndef SPECTM_STRUCTURES_SKIP_TM_FULL_H_
#define SPECTM_STRUCTURES_SKIP_TM_FULL_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/tagged.h"
#include "src/epoch/epoch.h"
#include "src/structures/skip_node.h"
#include "src/tm/config.h"

namespace spectm {

template <typename Family>
class TmSkipList {
 public:
  using Slot = typename Family::Slot;
  using Node = SkipNode<Family>;
  static constexpr int kMaxLevel = kSkipListMaxLevel;

  explicit TmSkipList(EpochManager& epoch = GlobalEpochManager())
      : epoch_(epoch), head_(Node::New(0, kMaxLevel)) {
    Family::RawWrite(&head_level_, EncodeInt(1));
  }

  ~TmSkipList() {
    Node* curr = head_;
    while (curr != nullptr) {
      Node* next = WordToPtr<Node>(Family::RawRead(&curr->next[0]));
      Node::Free(curr);
      curr = next;
    }
  }

  TmSkipList(const TmSkipList&) = delete;
  TmSkipList& operator=(const TmSkipList&) = delete;

  bool Contains(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    typename Family::FullTx tx;
    bool found = false;
    do {
      tx.Start();
      found = false;
      const int hl = static_cast<int>(DecodeInt(tx.Read(&head_level_)));
      if (!tx.ok()) {
        continue;
      }
      Node* prev = head_;
      Node* curr = nullptr;
      for (int lvl = hl - 1; lvl >= 0 && tx.ok(); --lvl) {
        curr = WordToPtr<Node>(tx.Read(&prev->next[lvl]));
        while (tx.ok() && curr != nullptr && curr->key < key) {
          prev = curr;
          curr = WordToPtr<Node>(tx.Read(&prev->next[lvl]));
        }
      }
      found = tx.ok() && curr != nullptr && curr->key == key;
    } while (!tx.Commit());
    return found;
  }

  bool Insert(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    const int node_level = ThreadRng().NextSkipListLevel(kMaxLevel);
    Node* node = Node::New(key, node_level);
    typename Family::FullTx tx;
    bool inserted = false;
    do {
      tx.Start();
      inserted = false;
      int hl = static_cast<int>(DecodeInt(tx.Read(&head_level_)));
      if (!tx.ok()) {
        continue;
      }
      Node* preds[kMaxLevel];
      Node* succs[kMaxLevel];
      Node* curr = TraverseRecording(tx, key, hl, preds, succs);
      if (!tx.ok()) {
        continue;
      }
      if (curr != nullptr && curr->key == key) {
        continue;  // present: commit the read-only observation
      }
      if (node_level > hl) {
        tx.Write(&head_level_, EncodeInt(static_cast<std::uint64_t>(node_level)));
        for (int lvl = hl; lvl < node_level; ++lvl) {
          preds[lvl] = head_;
          succs[lvl] = nullptr;
        }
      }
      for (int lvl = 0; lvl < node_level; ++lvl) {
        Family::RawWrite(&node->next[lvl], PtrToWord(succs[lvl]));  // node is private
        tx.Write(&preds[lvl]->next[lvl], PtrToWord(node));
      }
      inserted = true;
    } while (!tx.Commit());
    if (!inserted) {
      Node::Free(node);  // never published
    }
    return inserted;
  }

  bool Remove(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    typename Family::FullTx tx;
    Node* victim = nullptr;
    do {
      tx.Start();
      victim = nullptr;
      const int hl = static_cast<int>(DecodeInt(tx.Read(&head_level_)));
      if (!tx.ok()) {
        continue;
      }
      Node* preds[kMaxLevel];
      Node* succs[kMaxLevel];
      Node* curr = TraverseRecording(tx, key, hl, preds, succs);
      if (!tx.ok()) {
        continue;
      }
      if (curr == nullptr || curr->key != key) {
        continue;  // absent: commit the read-only observation
      }
      bool ok = true;
      for (int lvl = 0; lvl < curr->level && ok; ++lvl) {
        const Word succ = tx.Read(&curr->next[lvl]);
        ok = tx.ok();
        if (ok) {
          tx.Write(&preds[lvl]->next[lvl], succ);
        }
      }
      if (!ok) {
        continue;
      }
      victim = curr;
    } while (!tx.Commit());
    if (victim == nullptr) {
      return false;
    }
    epoch_.Retire(static_cast<void*>(victim), &Node::FreeVoid);
    return true;
  }

 private:
  // Transactional search recording the insertion/removal window. In a consistent
  // snapshot every linked level of a matching node is bracketed by preds/succs.
  Node* TraverseRecording(typename Family::FullTx& tx, std::uint64_t key, int hl,
                          Node** preds, Node** succs) {
    Node* prev = head_;
    Node* curr = nullptr;
    for (int lvl = hl - 1; lvl >= 0 && tx.ok(); --lvl) {
      curr = WordToPtr<Node>(tx.Read(&prev->next[lvl]));
      while (tx.ok() && curr != nullptr && curr->key < key) {
        prev = curr;
        curr = WordToPtr<Node>(tx.Read(&prev->next[lvl]));
      }
      preds[lvl] = prev;
      succs[lvl] = curr;
    }
    return curr;
  }

  static Xorshift128Plus& ThreadRng() {
    static std::atomic<std::uint64_t> salt{1};
    thread_local Xorshift128Plus rng(0x7f00ULL +
                                     salt.fetch_add(1, std::memory_order_relaxed));
    return rng;
  }

  EpochManager& epoch_;
  Node* head_;
  Slot head_level_;
};

}  // namespace spectm

#endif  // SPECTM_STRUCTURES_SKIP_TM_FULL_H_
