// Hash-table integer set over the traditional whole-operation transactional API
// (§2.1): the "*-full-*" variants. Each Contains/Insert/Remove runs as ONE ordinary
// transaction — the straightforward code the paper credits traditional TM for
// ("data structures built using traditional TM implementations" are the simplest).
//
// No deleted marks are needed: transactional conflict detection alone guarantees
// that a removal invalidates any concurrent operation that depended on the unlinked
// node's position.
#ifndef SPECTM_STRUCTURES_HASH_TM_FULL_H_
#define SPECTM_STRUCTURES_HASH_TM_FULL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/tagged.h"
#include "src/epoch/epoch.h"
#include "src/tm/config.h"

namespace spectm {

template <typename Family>
class TmHashSet {
 public:
  using Slot = typename Family::Slot;

  explicit TmHashSet(std::size_t buckets = 16384,
                     EpochManager& epoch = GlobalEpochManager())
      : epoch_(epoch), buckets_(buckets) {}

  ~TmHashSet() {
    for (Slot& head : buckets_) {
      Node* curr = WordToPtr<Node>(Family::RawRead(&head));
      while (curr != nullptr) {
        Node* next = WordToPtr<Node>(Family::RawRead(&curr->next));
        delete curr;
        curr = next;
      }
    }
  }

  TmHashSet(const TmHashSet&) = delete;
  TmHashSet& operator=(const TmHashSet&) = delete;

  bool Contains(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    typename Family::FullTx tx;
    bool found = false;
    do {
      tx.Start();
      found = false;
      Node* curr = WordToPtr<Node>(tx.Read(&BucketFor(key)));
      while (tx.ok() && curr != nullptr) {
        if (curr->key >= key) {
          found = curr->key == key;
          break;
        }
        curr = WordToPtr<Node>(tx.Read(&curr->next));
      }
    } while (!tx.Commit());
    return found;
  }

  bool Insert(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    // Owned until the publishing commit: an exception unwinding out of the
    // transaction (TxCancel, injected fault) aborts the attempt with nothing
    // published, so the node must be reclaimed here, not leaked.
    std::unique_ptr<Node> node(new Node(key));
    typename Family::FullTx tx;
    bool inserted = false;
    do {
      tx.Start();
      inserted = false;
      Slot* prev_link = &BucketFor(key);
      Node* curr = WordToPtr<Node>(tx.Read(prev_link));
      while (tx.ok() && curr != nullptr && curr->key < key) {
        prev_link = &curr->next;
        curr = WordToPtr<Node>(tx.Read(prev_link));
      }
      if (!tx.ok()) {
        continue;
      }
      if (curr != nullptr && curr->key == key) {
        // Present: commit the (read-only) observation.
        continue;
      }
      Family::RawWrite(&node->next, PtrToWord(curr));  // node is still private
      tx.Write(prev_link, PtrToWord(node.get()));
      inserted = true;
    } while (!tx.Commit());
    if (inserted) {
      node.release();  // published: the set owns it now
    }
    return inserted;
  }

  bool Remove(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    typename Family::FullTx tx;
    Node* victim = nullptr;
    do {
      tx.Start();
      victim = nullptr;
      Slot* prev_link = &BucketFor(key);
      Node* curr = WordToPtr<Node>(tx.Read(prev_link));
      while (tx.ok() && curr != nullptr && curr->key < key) {
        prev_link = &curr->next;
        curr = WordToPtr<Node>(tx.Read(prev_link));
      }
      if (!tx.ok()) {
        continue;
      }
      if (curr == nullptr || curr->key != key) {
        continue;  // absent: commit the read-only observation
      }
      const Word succ = tx.Read(&curr->next);
      if (!tx.ok()) {
        continue;
      }
      tx.Write(prev_link, succ);
      victim = curr;
    } while (!tx.Commit());
    if (victim == nullptr) {
      return false;
    }
    epoch_.Retire(victim);
    return true;
  }

 private:
  struct Node {
    std::uint64_t key;
    Slot next;

    explicit Node(std::uint64_t k) : key(k) {}
  };

  Slot& BucketFor(std::uint64_t key) {
    std::uint64_t x = key;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return buckets_[static_cast<std::size_t>(x % buckets_.size())];
  }

  EpochManager& epoch_;
  std::vector<Slot> buckets_;
};

}  // namespace spectm

#endif  // SPECTM_STRUCTURES_HASH_TM_FULL_H_
