// Variable-height skip-list tower shared by the transactional skip-list variants.
// The forward-pointer array is allocated to the node's actual level (as in the
// paper's Figure 4 Tower), so a level-1 node costs one slot, not kMaxLevel.
#ifndef SPECTM_STRUCTURES_SKIP_NODE_H_
#define SPECTM_STRUCTURES_SKIP_NODE_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace spectm {

inline constexpr int kSkipListMaxLevel = 32;

template <typename Family>
struct SkipNode {
  using Slot = typename Family::Slot;

  std::uint64_t key;
  int level;
  Slot next[1];  // trailing array of `level` slots

  static SkipNode* New(std::uint64_t key, int level) {
    const std::size_t bytes =
        offsetof(SkipNode, next) + static_cast<std::size_t>(level) * sizeof(Slot);
    void* mem = nullptr;
    // TVar slots are 16-byte aligned; honor the slot's alignment requirement.
    if (alignof(Slot) > alignof(std::max_align_t)) {
      mem = std::aligned_alloc(alignof(Slot), (bytes + alignof(Slot) - 1) &
                                                  ~(alignof(Slot) - 1));
    } else {
      mem = std::malloc(bytes);
    }
    auto* node = static_cast<SkipNode*>(mem);
    node->key = key;
    node->level = level;
    for (int i = 0; i < level; ++i) {
      new (&node->next[i]) Slot{};
    }
    return node;
  }

  static void Free(SkipNode* node) { std::free(node); }

  // Deleter signature for EpochManager::Retire.
  static void FreeVoid(void* p) { Free(static_cast<SkipNode*>(p)); }
};

}  // namespace spectm

#endif  // SPECTM_STRUCTURES_SKIP_NODE_H_
