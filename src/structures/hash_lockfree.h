// Lock-free hash-table integer set: the paper's "lock-free" comparator, "implemented
// from Fraser's design" (§2) — a bucket array of Harris-style lock-free sorted linked
// lists with marked next pointers and cooperative physical unlinking.
//
// The deleted mark lives in bit 1 of a node's own next pointer (bit 0 stays clear so
// the same node layout works beside val-layout STM words elsewhere in the repo).
// Memory is reclaimed through the epoch manager; a node is retired exactly once, by
// the thread whose CAS physically unlinks it.
#ifndef SPECTM_STRUCTURES_HASH_LOCKFREE_H_
#define SPECTM_STRUCTURES_HASH_LOCKFREE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/tagged.h"
#include "src/epoch/epoch.h"

namespace spectm {

class LockFreeHashSet {
 public:
  explicit LockFreeHashSet(std::size_t buckets = 16384,
                           EpochManager& epoch = GlobalEpochManager())
      : epoch_(epoch), buckets_(buckets) {}

  ~LockFreeHashSet() {
    // Quiescent teardown: reclaim all chains directly.
    for (Bucket& b : buckets_) {
      Node* curr = WordToPtr<Node>(Unmark(b.head.load(std::memory_order_relaxed)));
      while (curr != nullptr) {
        Node* next = WordToPtr<Node>(Unmark(curr->next.load(std::memory_order_relaxed)));
        delete curr;
        curr = next;
      }
    }
  }

  LockFreeHashSet(const LockFreeHashSet&) = delete;
  LockFreeHashSet& operator=(const LockFreeHashSet&) = delete;

  // Wait-free-ish read-only traversal: skips logically deleted nodes.
  bool Contains(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    const Node* curr =
        WordToPtr<Node>(Unmark(BucketFor(key).head.load(std::memory_order_acquire)));
    while (curr != nullptr) {
      const Word succ = curr->next.load(std::memory_order_acquire);
      if (IsMarked(succ)) {
        curr = WordToPtr<Node>(Unmark(succ));  // deleted: skip without comparing
        continue;
      }
      if (curr->key >= key) {
        return curr->key == key;
      }
      curr = WordToPtr<Node>(succ);
    }
    return false;
  }

  bool Insert(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    Bucket& bucket = BucketFor(key);
    Node* node = nullptr;
    while (true) {
      const Window w = Search(&bucket, key);
      if (w.curr != nullptr && w.curr->key == key) {
        delete node;  // never published
        return false;
      }
      if (node == nullptr) {
        node = new Node{key, {}};
      }
      node->next.store(PtrToWord(w.curr), std::memory_order_relaxed);
      Word expected = PtrToWord(w.curr);
      if (w.prev_link->compare_exchange_strong(expected, PtrToWord(node),
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  bool Remove(std::uint64_t key) {
    EpochManager::Guard guard(epoch_);
    Bucket& bucket = BucketFor(key);
    while (true) {
      const Window w = Search(&bucket, key);
      if (w.curr == nullptr || w.curr->key != key) {
        return false;
      }
      const Word succ = w.curr->next.load(std::memory_order_acquire);
      if (IsMarked(succ)) {
        continue;  // another remover is mid-flight; re-search
      }
      // Logical deletion: mark the victim's next pointer. Only one thread can win.
      Word expected = succ;
      if (!w.curr->next.compare_exchange_strong(expected, Mark(succ),
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
        continue;
      }
      // Physical unlink; on failure a helping Search will finish (and retire).
      expected = PtrToWord(w.curr);
      if (w.prev_link->compare_exchange_strong(expected, succ, std::memory_order_acq_rel,
                                               std::memory_order_relaxed)) {
        epoch_.Retire(w.curr);
      } else {
        Search(&bucket, key);
      }
      return true;
    }
  }

 private:
  struct Node {
    std::uint64_t key;
    std::atomic<Word> next{0};
  };

  struct Bucket {
    std::atomic<Word> head{0};
  };

  struct Window {
    std::atomic<Word>* prev_link;  // link whose target is curr
    Node* curr;                    // first unmarked node with key >= target, or null
  };

  // Harris search: returns an unmarked window, physically unlinking any marked nodes
  // encountered (the unlinking CAS winner retires the node).
  Window Search(Bucket* bucket, std::uint64_t key) {
  retry:
    std::atomic<Word>* prev_link = &bucket->head;
    Node* curr = WordToPtr<Node>(prev_link->load(std::memory_order_acquire));
    while (curr != nullptr) {
      const Word succ = curr->next.load(std::memory_order_acquire);
      if (IsMarked(succ)) {
        Word expected = PtrToWord(curr);
        if (!prev_link->compare_exchange_strong(expected, Unmark(succ),
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
          goto retry;  // prev changed under us; restart from the head
        }
        epoch_.Retire(curr);
        curr = WordToPtr<Node>(Unmark(succ));
        continue;
      }
      if (curr->key >= key) {
        break;
      }
      prev_link = &curr->next;
      curr = WordToPtr<Node>(succ);
    }
    return Window{prev_link, curr};
  }

  Bucket& BucketFor(std::uint64_t key) {
    std::uint64_t x = key;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return buckets_[static_cast<std::size_t>(x % buckets_.size())];
  }

  EpochManager& epoch_;
  std::vector<Bucket> buckets_;
};

}  // namespace spectm

#endif  // SPECTM_STRUCTURES_HASH_LOCKFREE_H_
